package flexwan_test

import (
	"fmt"

	"flexwan"
)

// Example plans a two-link backbone with FlexWAN's spacing-variable
// transponders and prints the hardware bill.
func Example() {
	optical := flexwan.NewOptical()
	optical.AddFiber("f1", "A", "B", 250)
	optical.AddFiber("f2", "B", "C", 900)

	ip := &flexwan.IPTopology{}
	ip.AddLink(flexwan.IPLink{ID: "ab", A: "A", B: "B", DemandGbps: 800})
	ip.AddLink(flexwan.IPLink{ID: "ac", A: "A", B: "C", DemandGbps: 400})

	result, err := flexwan.Plan(flexwan.PlanProblem{
		Optical: optical,
		IP:      ip,
		Catalog: flexwan.SVT(),
		Grid:    flexwan.DefaultGrid(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d transponder pairs, %.0f GHz\n", result.Transponders(), result.SpectrumGHz())
	// Output: 2 transponder pairs, 238 GHz
}

// ExampleCatalog_MaxRateAt shows the rate-vs-distance staircase behind
// the paper's Figure 2(b).
func ExampleCatalog_MaxRateAt() {
	svt, bvt := flexwan.SVT(), flexwan.RADWAN()
	for _, km := range []float64{200, 1000, 2000} {
		fmt.Printf("%4.0f km: SVT %d Gbps, BVT %d Gbps\n", km, svt.MaxRateAt(km), bvt.MaxRateAt(km))
	}
	// Output:
	//  200 km: SVT 800 Gbps, BVT 300 Gbps
	// 1000 km: SVT 500 Gbps, BVT 300 Gbps
	// 2000 km: SVT 300 Gbps, BVT 200 Gbps
}

// ExampleRestore walks the paper's Figure 4: after a cut forces the
// wavelength onto a path twice as long, the SVT widens its channel
// spacing and revives the full data rate.
func ExampleRestore() {
	optical := flexwan.NewOptical()
	optical.AddFiber("primary", "A", "B", 600)
	optical.AddFiber("west", "A", "C", 500)
	optical.AddFiber("east", "C", "B", 700)
	ip := &flexwan.IPTopology{}
	ip.AddLink(flexwan.IPLink{ID: "ab", A: "A", B: "B", DemandGbps: 300})

	problem := flexwan.PlanProblem{
		Optical: optical, IP: ip, Catalog: flexwan.SVT(), Grid: flexwan.DefaultGrid(),
	}
	base, err := flexwan.Plan(problem)
	if err != nil {
		panic(err)
	}
	res, err := flexwan.Restore(flexwan.RestoreProblem{
		Optical: optical, IP: ip, Catalog: flexwan.SVT(), Grid: flexwan.DefaultGrid(),
		Base:     base,
		Scenario: flexwan.Scenario{ID: "cut", CutFibers: []string{"primary"}},
	})
	if err != nil {
		panic(err)
	}
	r := res.Restored[0]
	fmt.Printf("revived %d of %d Gbps at %.1f GHz spacing over a %.0f km path\n",
		res.RestoredGbps, res.AffectedGbps, r.Mode.SpacingGHz, r.Path.LengthKm)
	// Output: revived 300 of 300 Gbps at 87.5 GHz spacing over a 1200 km path
}

// ExampleGrid_PixelsFor shows channel spacing landing on the pixel-wise
// WSS grid.
func ExampleGrid_PixelsFor() {
	grid := flexwan.DefaultGrid()
	for _, ghz := range []float64{50, 87.5, 150} {
		n, _ := grid.PixelsFor(ghz)
		fmt.Printf("%.1f GHz -> %d pixels\n", ghz, n)
	}
	// Output:
	// 50.0 GHz -> 4 pixels
	// 87.5 GHz -> 7 pixels
	// 150.0 GHz -> 12 pixels
}
