package flexwan_test

import (
	"testing"

	"flexwan"
)

// buildNetwork assembles a small backbone through the public API only.
func buildNetwork(t testing.TB) (*flexwan.Optical, *flexwan.IPTopology) {
	t.Helper()
	optical := flexwan.NewOptical()
	for _, f := range []struct {
		id   string
		a, b flexwan.NodeID
		km   float64
	}{
		{"f1", "A", "B", 600},
		{"f2", "A", "C", 500},
		{"f3", "C", "B", 700},
	} {
		if err := optical.AddFiber(f.id, f.a, f.b, f.km); err != nil {
			t.Fatal(err)
		}
	}
	ip := &flexwan.IPTopology{}
	// 400G: restorable in full on the 1200 km detour (400G@112.5 GHz
	// reaches 1600 km in Table 2).
	if err := ip.AddLink(flexwan.IPLink{ID: "ab", A: "A", B: "B", DemandGbps: 400}); err != nil {
		t.Fatal(err)
	}
	return optical, ip
}

func TestPublicAPIPlanRestore(t *testing.T) {
	optical, ip := buildNetwork(t)
	problem := flexwan.PlanProblem{
		Optical: optical, IP: ip, Catalog: flexwan.SVT(), Grid: flexwan.DefaultGrid(),
	}
	result, err := flexwan.Plan(problem)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Feasible() || result.Transponders() == 0 {
		t.Fatalf("plan = %d transponders, feasible %v", result.Transponders(), result.Feasible())
	}
	if err := flexwan.VerifyPlan(problem, result); err != nil {
		t.Fatal(err)
	}
	res, err := flexwan.Restore(flexwan.RestoreProblem{
		Optical: optical, IP: ip, Catalog: flexwan.SVT(), Grid: flexwan.DefaultGrid(),
		Base:     result,
		Scenario: flexwan.Scenario{ID: "cut", CutFibers: []string{"f1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RestoredGbps != 400 {
		t.Errorf("restored %d, want 400", res.RestoredGbps)
	}
	// Scenario generators.
	if got := len(flexwan.SingleFiberScenarios(optical)); got != 3 {
		t.Errorf("single-fiber scenarios = %d", got)
	}
	if got := len(flexwan.DoubleFiberScenarios(optical)); got != 3 {
		t.Errorf("double-fiber scenarios = %d", got)
	}
	if got := flexwan.ProbabilisticScenarios(optical, 1, 5, 0.8); len(got) == 0 {
		t.Error("no probabilistic scenarios")
	}
}

func TestPublicAPICatalogsAndPhysics(t *testing.T) {
	if n := len(flexwan.SVT().Modes); n != 36 {
		t.Errorf("SVT modes = %d", n)
	}
	if flexwan.RADWAN().MaxRateAt(600) != 300 {
		t.Error("RADWAN MaxRateAt(600) != 300")
	}
	if flexwan.Fixed100G().Modes[0].ReachKm != 3000 {
		t.Error("100G reach != 3000")
	}
	// Shannon helpers behave per the paper's motivation.
	if flexwan.ShannonMinSNRdB(800, 75) < 30 {
		t.Error("800G at 75 GHz should need > 30 dB")
	}
	link := flexwan.DefaultLink()
	if link.OSNRdB(800) >= link.OSNRdB(80) {
		t.Error("OSNR should degrade with distance")
	}
	grid := flexwan.DefaultGrid()
	if grid.Pixels != 384 {
		t.Errorf("default grid pixels = %d", grid.Pixels)
	}
}

func TestPublicAPIBackbone(t *testing.T) {
	optical, ip := buildNetwork(t)
	backbone, err := flexwan.NewBackbone(flexwan.BackboneConfig{
		Optical: optical, IP: ip, Catalog: flexwan.SVT(), Grid: flexwan.DefaultGrid(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := backbone.Plan(); err != nil {
		t.Fatal(err)
	}
	if _, err := backbone.GrowDemand("ab", 200); err != nil {
		t.Fatal(err)
	}
	head, err := backbone.Headroom()
	if err != nil || head <= 1 {
		t.Errorf("headroom = %v, %v", head, err)
	}
	res, err := backbone.WhatIfCut("f1")
	if err != nil || res.AffectedGbps == 0 {
		t.Errorf("what-if = %+v, %v", res, err)
	}
}

func TestPublicAPIMIPSolver(t *testing.T) {
	m := flexwan.NewMIPModel("knap", flexwan.MaximizeObjective)
	x := m.AddBinVar("x", 60)
	y := m.AddBinVar("y", 100)
	z := m.AddBinVar("z", 120)
	err := m.AddConstraint("w", []flexwan.Term{{Var: x, Coef: 10}, {Var: y, Coef: 20}, {Var: z, Coef: 30}}, flexwan.RelLE, 50)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Solve()
	if s.Objective != 220 {
		t.Errorf("knapsack objective = %v, want 220", s.Objective)
	}
	if s.IntValue(y) != 1 || s.IntValue(z) != 1 || s.IntValue(x) != 0 {
		t.Errorf("selection = %d %d %d", s.IntValue(x), s.IntValue(y), s.IntValue(z))
	}
}

func TestWorkloadsViaPublicAPI(t *testing.T) {
	tb := flexwan.TBackbone(1)
	if tb.Optical.NumNodes() == 0 || tb.IP.TotalDemandGbps() == 0 {
		t.Error("empty T-backbone")
	}
	ce := flexwan.Cernet(1)
	if ce.Optical.NumNodes() == 0 {
		t.Error("empty Cernet")
	}
	var n flexwan.Network = tb
	if n.Name != "T-backbone" {
		t.Errorf("name = %s", n.Name)
	}
}
