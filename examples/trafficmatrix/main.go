// Command trafficmatrix shows the full provisioning pipeline from raw
// offered traffic: a region-to-region traffic matrix is routed over the
// IP links to derive per-link bandwidth-capacity demands (the IP
// TopoMgr's input, §4.4), which then feed FlexWAN's network planning.
package main

import (
	"fmt"
	"log"

	"flexwan"
)

func main() {
	// Optical layer: four regions.
	optical := flexwan.NewOptical()
	for _, f := range []struct {
		id   string
		a, b flexwan.NodeID
		km   float64
	}{
		{"f1", "PEK", "SHA", 1250},
		{"f2", "SHA", "CAN", 1500},
		{"f3", "PEK", "CTU", 1800},
		{"f4", "CTU", "CAN", 1400},
	} {
		if err := optical.AddFiber(f.id, f.a, f.b, f.km); err != nil {
			log.Fatal(err)
		}
	}

	// IP layer: one link per optical adjacency.
	links := []flexwan.IPLinkSpec{
		{ID: "pek-sha", A: "PEK", B: "SHA"},
		{ID: "sha-can", A: "SHA", B: "CAN"},
		{ID: "pek-ctu", A: "PEK", B: "CTU"},
		{ID: "ctu-can", A: "CTU", B: "CAN"},
	}

	// Offered traffic between regions (Gbps, averages from flow logs).
	matrix := flexwan.TrafficMatrix{
		{A: "PEK", B: "SHA", Gbps: 540},
		{A: "PEK", B: "CAN", Gbps: 380}, // multi-hop: routed over two links
		{A: "SHA", B: "CAN", Gbps: 410},
		{A: "PEK", B: "CTU", Gbps: 150},
		{A: "CTU", B: "CAN", Gbps: 90},
	}

	ip, err := flexwan.DeriveDemands(links, matrix, flexwan.TrafficOptions{
		Headroom:         1.5,
		DistanceWeighted: true,
		Optical:          optical,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offered traffic %.0f Gbps over %d region pairs → %d IP links:\n",
		matrix.Total(), len(matrix), len(ip.Links))
	for _, l := range ip.Links {
		fmt.Printf("  %-8s %s–%s  %4d Gbps provisioned\n", l.ID, l.A, l.B, l.DemandGbps)
	}

	result, err := flexwan.Plan(flexwan.PlanProblem{
		Optical: optical, IP: ip, Catalog: flexwan.SVT(), Grid: flexwan.DefaultGrid(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFlexWAN plan: %d transponder pairs, %.0f GHz of spectrum\n",
		result.Transponders(), result.SpectrumGHz())
	for _, w := range result.Wavelengths {
		fmt.Printf("  %-8s %4d Gbps @ %6.1f GHz over %4.0f km\n",
			w.LinkID, w.Mode.DataRateGbps, w.Mode.SpacingGHz, w.Path.LengthKm)
	}
}
