// Command service embeds the FlexWAN controller service in-process: the
// same multi-tenant job API the flexwand daemon serves, here started on
// a loopback listener and driven end to end — submit a planning job and
// a restoration job as two different tenants, follow the event stream,
// and read the audit trail the scheduler leaves behind.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"flexwan"
)

func main() {
	// 1. The service: scheduler + plan cache + config store behind one
	// HTTP handler. Workers and queue depth bound the whole machine —
	// no tenant can starve another past them.
	srv := flexwan.NewAPIServer(flexwan.APIServerOptions{
		QueueDepth: 64,
		Workers:    2,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("service up on %s\n", base)

	// 2. Tenant A plans the CERNET backbone.
	plan := submit(base, "tenant-a", flexwan.JobSpec{
		Type: "plan", Network: "cernet", Seed: 1,
	})
	fmt.Printf("tenant-a submitted %s (plan cernet)\n", plan.ID)

	// 3. Tenant B restores a fiber cut on the same backbone — the cached
	// base plan is shared, the worker pool is shared, the tenants are
	// scheduled fairly.
	restore := submit(base, "tenant-b", flexwan.JobSpec{
		Type: "restore", Network: "cernet", Seed: 1, CutFibers: []string{"cfib010"},
	})
	fmt.Printf("tenant-b submitted %s (restore after cfib010 cut)\n", restore.ID)

	// 4. Long-poll both to their terminal states. ?wait holds the reply
	// until the job finishes — no polling loop needed.
	for _, j := range []flexwan.JobView{plan, restore} {
		v := wait(base, j.ID)
		fmt.Printf("%s (%s): %s\n", v.ID, v.Tenant, v.State)
		if v.State != flexwan.JobOptimal {
			log.Fatalf("job %s failed: %s", v.ID, v.Error)
		}
	}

	// 5. The restoration result, exactly what batch restore.Solve would
	// have produced for the same scenario.
	v := wait(base, restore.ID)
	var res struct {
		RestoredGbps int     `json:"restored_gbps"`
		AffectedGbps int     `json:"affected_gbps"`
		Capability   float64 `json:"capability"`
		Channels     int     `json:"channels"`
	}
	if err := json.Unmarshal(v.Result, &res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restoration: revived %d of %d Gbps over %d channels (capability %.2f)\n",
		res.RestoredGbps, res.AffectedGbps, res.Channels, res.Capability)

	// 6. The job event streams double as an execution narrative.
	var events []struct {
		Seq   int    `json:"seq"`
		Kind  string `json:"kind"`
		State string `json:"state"`
		Msg   string `json:"msg"`
	}
	getJSON(base+"/v1/jobs/"+restore.ID+"/events", &events)
	for _, ev := range events {
		if ev.Kind == "state" {
			fmt.Printf("  event %d: → %s\n", ev.Seq, ev.State)
		} else {
			fmt.Printf("  event %d: %s\n", ev.Seq, ev.Msg)
		}
	}

	// 7. Scheduler counters: per-tenant accounting, queue high-water.
	var stats flexwan.SchedStats
	getJSON(base+"/v1/stats", &stats)
	fmt.Printf("scheduler: %d submitted, %d optimal, max queue depth %d\n",
		stats.Submitted, stats.Optimal, stats.MaxQueueDepth)

	// 8. Graceful stop: queued jobs drain Canceled, in-flight finish.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	_ = hs.Shutdown(ctx)
	fmt.Println("service drained and stopped")
}

func submit(base, tenant string, spec flexwan.JobSpec) flexwan.JobView {
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: status %d", resp.StatusCode)
	}
	var v flexwan.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}

func wait(base, id string) flexwan.JobView {
	for {
		var v flexwan.JobView
		getJSON(base+"/v1/jobs/"+id+"?wait=10s", &v)
		if v.State.Terminal() {
			return v
		}
	}
}

func getJSON(url string, v interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
