// Command evolution demonstrates FlexWAN's smooth backbone evolution
// (§9 of the paper) through the core service layer: demands grow month by
// month and new links appear, but live wavelengths are never disturbed —
// each change only adds channels, and the spectrum-sliced OLS absorbs
// every new channel width without hardware replacement. The demo also
// pre-computes the restoration playbook and reports spectrum headroom
// after each change.
package main

import (
	"fmt"
	"log"

	"flexwan"
)

func main() {
	optical := flexwan.NewOptical()
	for _, f := range []struct {
		id   string
		a, b flexwan.NodeID
		km   float64
	}{
		{"f1", "A", "B", 600},
		{"f2", "A", "C", 500},
		{"f3", "C", "B", 700},
		{"f4", "B", "D", 300},
		{"f5", "C", "D", 450},
	} {
		if err := optical.AddFiber(f.id, f.a, f.b, f.km); err != nil {
			log.Fatal(err)
		}
	}
	ip := &flexwan.IPTopology{}
	for _, l := range []flexwan.IPLink{
		{ID: "ab", A: "A", B: "B", DemandGbps: 800},
		{ID: "bd", A: "B", B: "D", DemandGbps: 400},
	} {
		if err := ip.AddLink(l); err != nil {
			log.Fatal(err)
		}
	}

	backbone, err := flexwan.NewBackbone(flexwan.BackboneConfig{
		Optical: optical, IP: ip, Catalog: flexwan.SVT(), Grid: flexwan.DefaultGrid(), K: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	report := func(event string) {
		res, err := backbone.Result()
		if err != nil {
			log.Fatal(err)
		}
		head, _ := backbone.Headroom()
		bottleneck, _ := backbone.BottleneckFiber()
		fmt.Printf("%-34s %3d wavelengths, %6.0f GHz; bottleneck %s at %.0f/%.0f GHz (headroom %.1fx)\n",
			event, res.Transponders(), res.SpectrumGHz(),
			bottleneck.FiberID, bottleneck.UsedGHz, bottleneck.TotalGHz, head)
	}

	if _, err := backbone.Plan(); err != nil {
		log.Fatal(err)
	}
	report("month 0: initial plan")

	// Month 3: the A–B demand doubles. Only new channels are added.
	added, err := backbone.GrowDemand("ab", 800)
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("month 3: A-B +800G (+%d channels)", len(added)))

	// Month 7: a new data center region comes online at D.
	added, err = backbone.AddLink(flexwan.IPLink{ID: "ad", A: "A", B: "D", DemandGbps: 600})
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("month 7: new link A-D (+%d channels)", len(added)))

	// Month 12: the B–D service is decommissioned; its spectrum frees.
	freed, err := backbone.RemoveLink("bd")
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("month 12: B-D retired (-%d channels)", freed))

	// Offline restoration playbook for the current backbone.
	playbook, err := backbone.PrecomputeRestoration(flexwan.SingleFiberScenarios(optical))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrestoration playbook:")
	for _, sc := range flexwan.SingleFiberScenarios(optical) {
		res := playbook[sc.ID]
		fmt.Printf("  %-8s affected %4d Gbps → restored %4d Gbps (capability %.2f)\n",
			sc.ID, res.AffectedGbps, res.RestoredGbps, res.Capability())
	}
}
