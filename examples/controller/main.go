// Command controller runs the full control plane end to end on one
// machine: simulated multi-vendor devices (SVT transponders, pixel-wise
// WSS, amplifiers) listening on real TCP management endpoints, the
// centralized controller planning and pushing configuration, the
// telemetry data stream detecting a staged fiber cut, and automatic
// optical restoration — the §4 pipeline of the paper in miniature.
package main

import (
	"fmt"
	"log"
	"time"

	"flexwan"
)

func main() {
	grid := flexwan.DefaultGrid()
	fabric := flexwan.NewFabric(flexwan.DefaultLink())
	optical := flexwan.NewOptical()

	fibers := []struct {
		id   string
		a, b flexwan.NodeID
		km   float64
	}{
		{"f-direct", "A", "B", 600},
		{"f-west", "A", "C", 500},
		{"f-east", "C", "B", 700},
	}
	for _, f := range fibers {
		if err := optical.AddFiber(f.id, f.a, f.b, f.km); err != nil {
			log.Fatal(err)
		}
		if err := fabric.AddFiber(f.id, f.km); err != nil {
			log.Fatal(err)
		}
	}
	ip := &flexwan.IPTopology{}
	if err := ip.AddLink(flexwan.IPLink{ID: "a-b", A: "A", B: "B", DemandGbps: 400}); err != nil {
		log.Fatal(err)
	}

	ctrl, err := flexwan.NewController(flexwan.ControllerConfig{
		Optical: optical, IP: ip, Catalog: flexwan.SVT(), Grid: grid, K: 3,
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()

	// Spin up the device fleet on loopback TCP and register everything
	// with the controller; a second session per device feeds telemetry.
	var sources []flexwan.TelemetrySource
	register := func(desc flexwan.DeviceDescriptor, start func(string) (string, error)) {
		addr, err := start("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		desc.Address = addr
		if err := ctrl.DevMgr().Register(desc); err != nil {
			log.Fatal(err)
		}
		session, err := flexwan.DialDevice(addr)
		if err != nil {
			log.Fatal(err)
		}
		sources = append(sources, flexwan.TelemetrySource{Desc: desc, Client: session})
		fmt.Printf("registered %-12s (%s, %s) at %s\n", desc.ID, desc.Class, desc.Vendor, addr)
	}

	for _, site := range []flexwan.NodeID{"A", "B", "C"} {
		for i := 0; i < 2; i++ {
			desc := flexwan.DeviceDescriptor{
				ID: fmt.Sprintf("svt-%s-%d", site, i), Class: flexwan.ClassTransponder,
				Vendor: "vendor-A", Address: "pending", Site: string(site),
			}
			agent := flexwan.NewTransponderAgent(desc, grid, flexwan.SVT(), fabric)
			defer agent.Close()
			register(desc, agent.Start)
		}
	}
	for _, f := range fibers {
		wssDesc := flexwan.DeviceDescriptor{
			ID: "wss-" + f.id, Class: flexwan.ClassWSS,
			Vendor: "vendor-B", Address: "pending", Site: string(f.a), Fiber: f.id,
		}
		wss := flexwan.NewWSSAgent(wssDesc, grid)
		defer wss.Close()
		register(wssDesc, wss.Start)

		ampDesc := flexwan.DeviceDescriptor{
			ID: "edfa-" + f.id, Class: flexwan.ClassAmplifier,
			Vendor: "vendor-C", Address: "pending", Site: string(f.a), Fiber: f.id,
		}
		amp := flexwan.NewAmplifierAgent(ampDesc, fabric, f.id)
		defer amp.Close()
		register(ampDesc, amp.Start)
	}

	// Plan, apply, audit.
	result, err := ctrl.PlanNetwork()
	if err != nil {
		log.Fatal(err)
	}
	if err := ctrl.Apply(result); err != nil {
		log.Fatal(err)
	}
	report, err := ctrl.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied %d wavelengths; audit: %d channels, %d inconsistencies, %d conflicts\n",
		result.Transponders(), report.ChannelsChecked, len(report.Inconsistencies), len(report.Conflicts))
	fmt.Printf("live capacity: %v Gbps\n\n", ctrl.LiveCapacityGbps())

	// Start the data stream and stage a fiber cut.
	store := flexwan.NewTelemetryStore(1024)
	collector := flexwan.NewCollector(store, 100*time.Millisecond, sources)
	collector.Run()
	defer collector.Stop()

	done := make(chan struct{})
	go ctrl.Watch(collector.Events(), func(res *flexwan.RestoreResult) {
		fmt.Printf("restoration complete: revived %d of %d Gbps\n", res.RestoredGbps, res.AffectedGbps)
		close(done)
	})

	time.Sleep(300 * time.Millisecond)
	fmt.Println("*** backhoe cuts fiber f-direct ***")
	fabric.Cut("f-direct")

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		log.Fatal("restoration did not complete")
	}

	report, err = ctrl.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-restoration audit: %d channels, clean = %v\n", report.ChannelsChecked, report.Clean())
	fmt.Printf("live capacity after cut: %v Gbps\n", ctrl.LiveCapacityGbps())
}
