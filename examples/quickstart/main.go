// Command quickstart is the five-minute tour of the FlexWAN library:
// build a small optical backbone, provision its IP demands with the
// spacing-variable transponder catalog, and compare the hardware bill
// against the fixed-grid baselines the paper benchmarks.
package main

import (
	"fmt"
	"log"

	"flexwan"
)

func main() {
	// 1. Optical topology: four ROADM sites, five fiber segments.
	optical := flexwan.NewOptical()
	for _, f := range []struct {
		id   string
		a, b flexwan.NodeID
		km   float64
	}{
		{"sea-pdx", "SEA", "PDX", 280},
		{"pdx-sfo", "PDX", "SFO", 900},
		{"sfo-lax", "SFO", "LAX", 610},
		{"sea-slc", "SEA", "SLC", 1130},
		{"slc-lax", "SLC", "LAX", 940},
	} {
		if err := optical.AddFiber(f.id, f.a, f.b, f.km); err != nil {
			log.Fatal(err)
		}
	}

	// 2. IP layer: three links with bandwidth-capacity demands.
	ip := &flexwan.IPTopology{}
	for _, l := range []flexwan.IPLink{
		{ID: "sea-pdx", A: "SEA", B: "PDX", DemandGbps: 1600},
		{ID: "sea-lax", A: "SEA", B: "LAX", DemandGbps: 800},
		{ID: "sfo-lax", A: "SFO", B: "LAX", DemandGbps: 1200},
	} {
		if err := ip.AddLink(l); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Plan with each transponder family on the C-band pixel grid.
	for _, catalog := range []flexwan.Catalog{flexwan.Fixed100G(), flexwan.RADWAN(), flexwan.SVT()} {
		problem := flexwan.PlanProblem{
			Optical: optical,
			IP:      ip,
			Catalog: catalog,
			Grid:    flexwan.DefaultGrid(),
		}
		result, err := flexwan.Plan(problem)
		if err != nil {
			log.Fatal(err)
		}
		if err := flexwan.VerifyPlan(problem, result); err != nil {
			log.Fatalf("%s: plan failed verification: %v", catalog.Name, err)
		}
		fmt.Printf("%-9s  %3d transponder pairs, %6.0f GHz spectrum, %.2f b/s/Hz mean efficiency\n",
			catalog.Name, result.Transponders(), result.SpectrumGHz(), result.MeanSpectralEfficiency())
	}

	// 4. Inspect FlexWAN's wavelength-level decisions.
	problem := flexwan.PlanProblem{Optical: optical, IP: ip, Catalog: flexwan.SVT(), Grid: flexwan.DefaultGrid()}
	result, err := flexwan.Plan(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFlexWAN wavelengths:")
	for _, w := range result.Wavelengths {
		fmt.Printf("  %-8s %4d Gbps @ %6.1f GHz over %4.0f km (reach %4.0f km, pixels %v)\n",
			w.LinkID, w.Mode.DataRateGbps, w.Mode.SpacingGHz, w.Path.LengthKm, w.Mode.ReachKm, w.Interval)
	}
}
