// Command restoration walks through the paper's Figure 4 scenario: a
// fiber cut forces a wavelength onto a restoration path twice as long as
// its primary. RADWAN's fixed 75 GHz grid must drop the data rate;
// FlexWAN's spacing-variable transponder widens the channel instead and
// revives the full capacity.
package main

import (
	"fmt"
	"log"

	"flexwan"
)

func main() {
	// The Fig. 4 ring: a 600 km primary path A–B and a 1200 km detour
	// via C.
	optical := flexwan.NewOptical()
	for _, f := range []struct {
		id   string
		a, b flexwan.NodeID
		km   float64
	}{
		{"primary", "A", "B", 600},
		{"west", "A", "C", 500},
		{"east", "C", "B", 700},
	} {
		if err := optical.AddFiber(f.id, f.a, f.b, f.km); err != nil {
			log.Fatal(err)
		}
	}
	ip := &flexwan.IPTopology{}
	if err := ip.AddLink(flexwan.IPLink{ID: "a-b", A: "A", B: "B", DemandGbps: 300}); err != nil {
		log.Fatal(err)
	}

	for _, catalog := range []flexwan.Catalog{flexwan.RADWAN(), flexwan.SVT()} {
		problem := flexwan.PlanProblem{
			Optical: optical, IP: ip, Catalog: catalog, Grid: flexwan.DefaultGrid(),
		}
		base, err := flexwan.Plan(problem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s plans the 600 km primary:\n", catalog.Name)
		for _, w := range base.Wavelengths {
			fmt.Printf("  %d Gbps @ %.1f GHz (reach %.0f km)\n",
				w.Mode.DataRateGbps, w.Mode.SpacingGHz, w.Mode.ReachKm)
		}

		res, err := flexwan.Restore(flexwan.RestoreProblem{
			Optical: optical, IP: ip, Catalog: catalog, Grid: flexwan.DefaultGrid(),
			Base:     base,
			Scenario: flexwan.Scenario{ID: "backhoe", CutFibers: []string{"primary"}},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after the cut (1200 km detour): restored %d of %d Gbps (capability %.2f)\n",
			res.RestoredGbps, res.AffectedGbps, res.Capability())
		for _, r := range res.Restored {
			fmt.Printf("  re-modulated to %d Gbps @ %.1f GHz (reach %.0f km), path ×%.1f longer\n",
				r.Mode.DataRateGbps, r.Mode.SpacingGHz, r.Mode.ReachKm, r.PathStretch())
		}
		fmt.Println()
	}

	// Sweep every 1-fiber failure with FlexWAN and report the aggregate.
	problem := flexwan.PlanProblem{
		Optical: optical, IP: ip, Catalog: flexwan.SVT(), Grid: flexwan.DefaultGrid(),
	}
	base, err := flexwan.Plan(problem)
	if err != nil {
		log.Fatal(err)
	}
	sweep, err := flexwan.RestoreSweep(flexwan.RestoreProblem{
		Optical: optical, IP: ip, Catalog: flexwan.SVT(), Grid: flexwan.DefaultGrid(), Base: base,
	}, flexwan.SingleFiberScenarios(optical))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FlexWAN mean restoration capability over all 1-fiber cuts: %.2f\n", sweep.MeanCapability())
}
