// Command testbed reproduces the paper's §6 experiment: a pair of
// spacing-variable transponders on a growing spool of fiber, with the
// controller reading the post-FEC BER after each extension. The maximum
// error-free distance per format regenerates Table 2 / Figure 11.
package main

import (
	"fmt"

	"flexwan"
)

func main() {
	link := flexwan.DefaultLink()
	grid := flexwan.DefaultGrid()
	catalog := flexwan.SVT()

	fmt.Println("SVT testbed sweep: growing fiber until post-FEC BER > 0")
	fmt.Printf("%6s %9s %12s %12s\n", "Gbps", "GHz", "table km", "measured km")
	for _, mode := range catalog.Modes {
		measured := 0.0
		for l := link.SpanKm; l <= 6000; l += link.SpanKm {
			fabric := flexwan.NewFabric(link)
			if err := fabric.AddFiber("spool", l); err != nil {
				panic(err)
			}
			dut := flexwan.NewTransponderAgent(flexwan.DeviceDescriptor{
				ID: "dut", Class: flexwan.ClassTransponder, Vendor: "vendor-A",
				Address: "lab", Site: "lab",
			}, grid, catalog, fabric)
			cfg := flexwan.TransponderConfig{
				Enabled:       true,
				DataRateGbps:  mode.DataRateGbps,
				SpacingGHz:    mode.SpacingGHz,
				BaudGBd:       mode.BaudGBd,
				Modulation:    mode.Modulation.Name,
				FEC:           mode.FEC.Name,
				IntervalStart: 0,
				IntervalCount: mode.Pixels(grid),
				PathFibers:    []string{"spool"},
				Channel:       "lab:1",
			}
			if err := dut.Configure(cfg); err != nil {
				panic(err)
			}
			if dut.State().PostFECBER > 0 {
				break
			}
			measured = l
		}
		fmt.Printf("%6d %9.1f %12.0f %12.0f\n",
			mode.DataRateGbps, mode.SpacingGHz, mode.ReachKm, measured)
	}
	fmt.Println("\n(measurement granularity is one 80 km amplifier span)")
}
