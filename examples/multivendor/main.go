// Command multivendor demonstrates the multi-vendor safety property of
// the candidate/commit protocol (§4.3): a change set spanning a
// pixel-wise (LCoS) WSS vendor and a legacy rigid-grid vendor is staged
// on every device first; the legacy vendor's rejection of an off-grid
// passband rolls the entire network change back, leaving no device — and
// no controller state — half-configured. Swapping the legacy device for
// a pixel-wise one makes the identical change succeed.
package main

import (
	"fmt"
	"log"

	"flexwan"
)

func buildFleet(ctrl *flexwan.Controller, fabric *flexwan.Fabric, legacyF1 bool) (cleanup func()) {
	grid := flexwan.DefaultGrid()
	var closers []func()
	register := func(desc flexwan.DeviceDescriptor, start func(string) (string, error), close func()) {
		addr, err := start("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		closers = append(closers, close)
		desc.Address = addr
		if err := ctrl.DevMgr().Register(desc); err != nil {
			log.Fatal(err)
		}
	}
	for _, site := range []flexwan.NodeID{"A", "B", "C"} {
		for i := 0; i < 2; i++ {
			desc := flexwan.DeviceDescriptor{
				ID: fmt.Sprintf("svt-%s-%d", site, i), Class: flexwan.ClassTransponder,
				Vendor: "vendor-A", Address: "pending", Site: string(site),
			}
			agent := flexwan.NewTransponderAgent(desc, grid, flexwan.SVT(), fabric)
			register(desc, agent.Start, agent.Close)
		}
	}
	for _, f := range []struct {
		id   string
		site flexwan.NodeID
	}{{"f1", "A"}, {"f2", "A"}, {"f3", "C"}} {
		desc := flexwan.DeviceDescriptor{
			ID: "wss-" + f.id, Class: flexwan.ClassWSS,
			Vendor: "vendor-B (LCoS)", Address: "pending", Site: string(f.site), Fiber: f.id,
		}
		if legacyF1 && f.id == "f1" {
			desc.Vendor = "vendor-L (75 GHz fixed grid)"
			w := flexwan.NewFixedGridWSS(desc, grid, 75)
			register(desc, w.Start, w.Close)
			continue
		}
		w := flexwan.NewWSSAgent(desc, grid)
		register(desc, w.Start, w.Close)
	}
	return func() {
		for _, c := range closers {
			c()
		}
	}
}

func run(legacyF1 bool) {
	fabric := flexwan.NewFabric(flexwan.DefaultLink())
	optical := flexwan.NewOptical()
	for _, f := range []struct {
		id   string
		a, b flexwan.NodeID
		km   float64
	}{
		{"f1", "A", "B", 600},
		{"f2", "A", "C", 500},
		{"f3", "C", "B", 700},
	} {
		if err := optical.AddFiber(f.id, f.a, f.b, f.km); err != nil {
			log.Fatal(err)
		}
		if err := fabric.AddFiber(f.id, f.km); err != nil {
			log.Fatal(err)
		}
	}
	ip := &flexwan.IPTopology{}
	// 500 Gbps at 600 km plans as one 500G@87.5 GHz channel — a 7-pixel
	// passband no 75 GHz fixed-grid vendor can provide.
	if err := ip.AddLink(flexwan.IPLink{ID: "a-b", A: "A", B: "B", DemandGbps: 500}); err != nil {
		log.Fatal(err)
	}
	ctrl, err := flexwan.NewController(flexwan.ControllerConfig{
		Optical: optical, IP: ip, Catalog: flexwan.SVT(), Grid: flexwan.DefaultGrid(), K: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	cleanup := buildFleet(ctrl, fabric, legacyF1)
	defer cleanup()

	result, err := ctrl.PlanNetwork()
	if err != nil {
		log.Fatal(err)
	}
	w := result.Wavelengths[0]
	fmt.Printf("plan: %d Gbps @ %.1f GHz on f1 (legacy f1 vendor: %v)\n",
		w.Mode.DataRateGbps, w.Mode.SpacingGHz, legacyF1)
	if err := ctrl.ApplyAtomic(result); err != nil {
		fmt.Printf("  atomic apply REFUSED: %v\n", err)
		fmt.Printf("  rollback: %d live channels, capacity %v\n",
			len(ctrl.Channels()), ctrl.LiveCapacityGbps())
		return
	}
	report, err := ctrl.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  atomic apply committed: capacity %v, audit clean = %v\n",
		ctrl.LiveCapacityGbps(), report.Clean())
}

func main() {
	fmt.Println("--- change set against a legacy fixed-grid vendor on f1 ---")
	run(true)
	fmt.Println("--- same change set with pixel-wise WSS everywhere ---")
	run(false)
}
