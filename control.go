package flexwan

import (
	"flexwan/internal/chaos"
	"flexwan/internal/controller"
	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/telemetry"
	"flexwan/internal/workload"
)

// Standard device model (internal/devmodel).
type (
	// DeviceDescriptor identifies one managed optical device.
	DeviceDescriptor = devmodel.Descriptor
	// DeviceClass is the device class in the standard model.
	DeviceClass = devmodel.Class
	// TransponderConfig is the standard transponder document.
	TransponderConfig = devmodel.TransponderConfig
	// TransponderState is the standard transponder state document.
	TransponderState = devmodel.TransponderState
	// WSSConfig is the standard WSS passband document.
	WSSConfig = devmodel.WSSConfig
	// Passband is one WSS filter-port passband.
	Passband = devmodel.Passband
	// AmplifierState is the standard amplifier state document.
	AmplifierState = devmodel.AmplifierState
)

// Device classes.
const (
	ClassTransponder = devmodel.ClassTransponder
	ClassWSS         = devmodel.ClassWSS
	ClassAmplifier   = devmodel.ClassAmplifier
)

// Simulated hardware agents (internal/device).
type (
	// Fabric is the shared physical-layer simulation.
	Fabric = device.Fabric
	// TransponderAgent is a simulated transponder device.
	TransponderAgent = device.Transponder
	// WSSAgent is a simulated wavelength-selective switch.
	WSSAgent = device.WSS
	// AmplifierAgent is a simulated EDFA.
	AmplifierAgent = device.Amplifier
	// Alarm is an asynchronous device event.
	Alarm = device.Alarm
)

// Hardware constructors.
var (
	NewFabric           = device.NewFabric
	NewTransponderAgent = device.NewTransponder
	NewWSSAgent         = device.NewWSS
	NewFixedGridWSS     = device.NewFixedGridWSS
	NewAmplifierAgent   = device.NewAmplifier
)

// Management protocol (internal/netconf).
type (
	// ManagementClient is a controller-side device session.
	ManagementClient = netconf.Client
	// ManagementServer is a device-side endpoint.
	ManagementServer = netconf.Server
)

// Management protocol options and errors.
type (
	// DialOptions sets per-session dial and call timeouts.
	DialOptions = netconf.DialOptions
	// RPCError is a device NACK: an intentional rejection the
	// controller must not retry.
	RPCError = netconf.RPCError
	// RPCFault is an injectable transport fault kind.
	RPCFault = netconf.RPCFault
	// FaultDecision is one interceptor verdict for one RPC.
	FaultDecision = netconf.FaultDecision
	// RPCInterceptor decides a fault for each RPC a server handles.
	RPCInterceptor = netconf.Interceptor
)

// Management protocol operations and entry points.
var (
	DialDevice            = netconf.Dial
	DialDeviceWithOptions = netconf.DialWithOptions
	// IsTransientRPC reports whether an RPC failure is retryable
	// (timeout or lost session) rather than a device NACK.
	IsTransientRPC = netconf.IsTransient
)

// NETCONF-like protocol operations.
const (
	OpGetConfig  = netconf.OpGetConfig
	OpEditConfig = netconf.OpEditConfig
	OpGetState   = netconf.OpGetState
)

// Data stream (internal/telemetry).
type (
	// TelemetryStore is the online KPI time-series store.
	TelemetryStore = telemetry.Store
	// TelemetryPoint is one sample.
	TelemetryPoint = telemetry.Point
	// TelemetryCollector polls devices and detects fiber events.
	TelemetryCollector = telemetry.Collector
	// TelemetrySource is one device under collection.
	TelemetrySource = telemetry.Source
	// FiberEvent is a detected optical-layer event.
	FiberEvent = telemetry.Event
)

// Telemetry constructors.
var (
	NewTelemetryStore = telemetry.NewStore
	NewCollector      = telemetry.NewCollector
)

// Centralized controller (internal/controller).
type (
	// Controller is the centralized optical controller.
	Controller = controller.Controller
	// ControllerConfig assembles the controller's global view.
	ControllerConfig = controller.Config
	// DevMgr is the device manager.
	DevMgr = controller.DevMgr
	// AuditReport is a network-wide configuration audit outcome.
	AuditReport = controller.AuditReport
	// RestoreReport is the full outcome of handling one fiber event:
	// restoration result, latency breakdown, and degraded-push skips.
	RestoreReport = controller.RestoreReport
	// RetryPolicy governs per-RPC retries in the device manager.
	RetryPolicy = controller.RetryPolicy
	// ChannelInfo describes one live channel and its hardware.
	ChannelInfo = controller.ChannelInfo
)

// Controller entry points.
var (
	// NewController builds a centralized controller.
	NewController = controller.New
	// DefaultRetryPolicy is the device manager's starting retry policy.
	DefaultRetryPolicy = controller.DefaultRetryPolicy
)

// Fault injection and recovery drills (internal/chaos).
type (
	// ChaosTestbed is a fully deployed control plane on loopback TCP.
	ChaosTestbed = chaos.Testbed
	// ChaosOptions tunes testbed construction.
	ChaosOptions = chaos.Options
	// ChaosScenario scripts one recovery drill.
	ChaosScenario = chaos.Scenario
	// ChaosInjector decides, per RPC, whether to inject a fault.
	ChaosInjector = chaos.Injector
	// ChaosFaultConfig sets per-RPC fault probabilities.
	ChaosFaultConfig = chaos.FaultConfig
	// DrillReport is one drill's scorecard.
	DrillReport = chaos.Report
	// DrillLog is a drill's deterministic event log.
	DrillLog = chaos.Log
	// DrillEvent is one entry of a drill's event log.
	DrillEvent = chaos.Event
)

// Chaos entry points.
var (
	NewChaosTestbed  = chaos.NewTestbed
	NewChaosInjector = chaos.NewInjector
	NewDrillLog      = chaos.NewLog
	// RunDrill executes a scenario against a testbed.
	RunDrill = chaos.Run
	// RingNetwork builds the smallest topology with restoration
	// diversity — the drill smoke workload.
	RingNetwork = chaos.RingNetwork
)

// Workloads (internal/workload).
type (
	// Network bundles an optical topology with its IP demand layer.
	Network = workload.Network
)

// Evaluation workload generators and network I/O.
var (
	// TBackbone generates the synthetic production backbone.
	TBackbone = workload.TBackbone
	// Cernet builds the public CERNET topology with generated demands.
	Cernet = workload.Cernet
	// ReadNetwork parses a network from JSON.
	ReadNetwork = workload.ReadNetwork
	// WriteNetwork serializes a network to JSON.
	WriteNetwork = workload.WriteNetwork
)

// FabricFromTopology builds a fabric mirroring an optical topology's
// fiber plant.
var FabricFromTopology = device.FabricFromTopology
