package flexwan

import (
	"flexwan/internal/controller"
	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/telemetry"
	"flexwan/internal/workload"
)

// Standard device model (internal/devmodel).
type (
	// DeviceDescriptor identifies one managed optical device.
	DeviceDescriptor = devmodel.Descriptor
	// DeviceClass is the device class in the standard model.
	DeviceClass = devmodel.Class
	// TransponderConfig is the standard transponder document.
	TransponderConfig = devmodel.TransponderConfig
	// TransponderState is the standard transponder state document.
	TransponderState = devmodel.TransponderState
	// WSSConfig is the standard WSS passband document.
	WSSConfig = devmodel.WSSConfig
	// Passband is one WSS filter-port passband.
	Passband = devmodel.Passband
	// AmplifierState is the standard amplifier state document.
	AmplifierState = devmodel.AmplifierState
)

// Device classes.
const (
	ClassTransponder = devmodel.ClassTransponder
	ClassWSS         = devmodel.ClassWSS
	ClassAmplifier   = devmodel.ClassAmplifier
)

// Simulated hardware agents (internal/device).
type (
	// Fabric is the shared physical-layer simulation.
	Fabric = device.Fabric
	// TransponderAgent is a simulated transponder device.
	TransponderAgent = device.Transponder
	// WSSAgent is a simulated wavelength-selective switch.
	WSSAgent = device.WSS
	// AmplifierAgent is a simulated EDFA.
	AmplifierAgent = device.Amplifier
	// Alarm is an asynchronous device event.
	Alarm = device.Alarm
)

// Hardware constructors.
var (
	NewFabric           = device.NewFabric
	NewTransponderAgent = device.NewTransponder
	NewWSSAgent         = device.NewWSS
	NewFixedGridWSS     = device.NewFixedGridWSS
	NewAmplifierAgent   = device.NewAmplifier
)

// Management protocol (internal/netconf).
type (
	// ManagementClient is a controller-side device session.
	ManagementClient = netconf.Client
	// ManagementServer is a device-side endpoint.
	ManagementServer = netconf.Server
)

// Management protocol operations and entry points.
var (
	DialDevice = netconf.Dial
)

// NETCONF-like protocol operations.
const (
	OpGetConfig  = netconf.OpGetConfig
	OpEditConfig = netconf.OpEditConfig
	OpGetState   = netconf.OpGetState
)

// Data stream (internal/telemetry).
type (
	// TelemetryStore is the online KPI time-series store.
	TelemetryStore = telemetry.Store
	// TelemetryPoint is one sample.
	TelemetryPoint = telemetry.Point
	// TelemetryCollector polls devices and detects fiber events.
	TelemetryCollector = telemetry.Collector
	// TelemetrySource is one device under collection.
	TelemetrySource = telemetry.Source
	// FiberEvent is a detected optical-layer event.
	FiberEvent = telemetry.Event
)

// Telemetry constructors.
var (
	NewTelemetryStore = telemetry.NewStore
	NewCollector      = telemetry.NewCollector
)

// Centralized controller (internal/controller).
type (
	// Controller is the centralized optical controller.
	Controller = controller.Controller
	// ControllerConfig assembles the controller's global view.
	ControllerConfig = controller.Config
	// DevMgr is the device manager.
	DevMgr = controller.DevMgr
	// AuditReport is a network-wide configuration audit outcome.
	AuditReport = controller.AuditReport
)

// NewController builds a centralized controller.
var NewController = controller.New

// Workloads (internal/workload).
type (
	// Network bundles an optical topology with its IP demand layer.
	Network = workload.Network
)

// Evaluation workload generators and network I/O.
var (
	// TBackbone generates the synthetic production backbone.
	TBackbone = workload.TBackbone
	// Cernet builds the public CERNET topology with generated demands.
	Cernet = workload.Cernet
	// ReadNetwork parses a network from JSON.
	ReadNetwork = workload.ReadNetwork
	// WriteNetwork serializes a network to JSON.
	WriteNetwork = workload.WriteNetwork
)

// FabricFromTopology builds a fabric mirroring an optical topology's
// fiber plant.
var FabricFromTopology = device.FabricFromTopology
