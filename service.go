package flexwan

import (
	"flexwan/internal/api"
	"flexwan/internal/controller"
	"flexwan/internal/core"
	"flexwan/internal/devmodel"
	"flexwan/internal/restore"
	"flexwan/internal/traffic"
)

// Service layer (internal/core): the long-lived backbone state machine
// for incremental operations (§9 smooth evolution).
type (
	// Backbone owns topologies, live wavelengths and spectrum state.
	Backbone = core.Backbone
	// BackboneConfig assembles a backbone.
	BackboneConfig = core.Config
	// FiberUtilization is one fiber's occupancy report.
	FiberUtilization = core.FiberUtilization
)

// NewBackbone validates a configuration and returns an unplanned backbone.
var NewBackbone = core.New

// Controller replication (§4.4 fault tolerance) and repair (§9
// zero-touch misconnection recovery).
type (
	// ControllerSnapshot is the replication payload for standby takeover.
	ControllerSnapshot = controller.Snapshot
	// ChannelSnapshot is one live channel in a snapshot.
	ChannelSnapshot = controller.ChannelSnapshot
)

// Snapshot codecs.
var (
	MarshalSnapshot   = controller.MarshalSnapshot
	UnmarshalSnapshot = controller.UnmarshalSnapshot
)

// Failure-scenario generators beyond 1-fiber cuts (§8's k-failure and
// probabilistic models).
var (
	// DoubleFiberScenarios enumerates simultaneous 2-fiber failures.
	DoubleFiberScenarios = restore.DoubleFiberScenarios
	// ProbabilisticScenarios samples length-weighted multi-fiber cuts.
	ProbabilisticScenarios = restore.ProbabilisticScenarios
)

// Traffic-matrix demand derivation (internal/traffic): the input side of
// the IP TopoMgr.
type (
	// TrafficDemand is one region-pair entry of a traffic matrix.
	TrafficDemand = traffic.Demand
	// TrafficMatrix is a region-to-region offered-load matrix.
	TrafficMatrix = traffic.Matrix
	// IPLinkSpec declares an IP link whose capacity is to be derived.
	IPLinkSpec = traffic.LinkSpec
	// TrafficOptions tunes demand derivation.
	TrafficOptions = traffic.Options
)

// DeriveDemands routes a traffic matrix over the IP links and returns the
// demand set the planner consumes.
var DeriveDemands = traffic.Derive

// Standard device model introspection (§4.3).
type (
	// DeviceComponent is one logical block of the standard device model.
	DeviceComponent = devmodel.Component
	// DeviceModelSpec describes a class's components and workflow.
	DeviceModelSpec = devmodel.ModelSpec
)

// StandardDeviceModel returns the vendor-neutral model per device class.
var StandardDeviceModel = devmodel.StandardModel

// Controller-as-a-service (internal/api): the persistent multi-tenant
// HTTP/JSON layer over the planner, restorer, drills, and device fleet.
// See cmd/flexwand for the daemon and examples/service for in-process
// embedding.
type (
	// APIServer hosts the v1 job/device/config API.
	APIServer = api.Server
	// APIServerOptions configures an APIServer.
	APIServerOptions = api.Options
	// JobSpec describes one submitted job (type, network, deadline).
	JobSpec = api.JobSpec
	// JobView is a job's JSON representation.
	JobView = api.JobView
	// JobState is a job's lifecycle position (Queued → ... → Optimal).
	JobState = api.JobState
	// SchedStats is the /v1/stats payload.
	SchedStats = api.SchedStats
	// ConfigStore is the pluggable versioned-config backend.
	ConfigStore = controller.ConfigStore
	// ConfigVersion is one immutable audited config version.
	ConfigVersion = controller.ConfigVersion
	// DeviceHealth is one device's registration + session status.
	DeviceHealth = controller.DeviceHealth
)

// NewAPIServer builds and starts the controller service.
var NewAPIServer = api.New

// NewConfigStore returns the in-memory append-only config store.
var NewConfigStore = controller.NewMemStore

// Job lifecycle states.
const (
	JobQueued   = api.StateQueued
	JobRunning  = api.StateRunning
	JobOptimal  = api.StateOptimal
	JobFailed   = api.StateFailed
	JobCanceled = api.StateCanceled
)
