// Benchmarks regenerating every table and figure of the FlexWAN paper
// (run with `go test -bench=. -benchmem`), plus ablations over the design
// choices called out in DESIGN.md. Custom metrics attach the headline
// result of each experiment to its bench line, so a bench run doubles as
// a summary of the reproduction.
package flexwan_test

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/eval"
	"flexwan/internal/netconf"
	"flexwan/internal/phy"
	"flexwan/internal/plan"
	"flexwan/internal/restore"
	"flexwan/internal/solver"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
	"flexwan/internal/workload"
)

// tb is the shared synthetic backbone; benchmarks must not mutate it.
var tb = workload.TBackbone(1)

func BenchmarkFig2aPathLengths(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		f := eval.Fig2aPathLengthDistribution(tb)
		frac = f.FracUnder200
	}
	b.ReportMetric(frac*100, "%paths<200km")
}

func BenchmarkFig2bMaxRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := eval.Fig2bMaxRateVsDistance()
		if len(f.DistancesKm) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

func BenchmarkFig3Provision800G(b *testing.B) {
	var svtAt250 int
	for i := 0; i < b.N; i++ {
		f := eval.Fig3Provision800G()
		svtAt250 = f.SVTTransponders[1]
	}
	b.ReportMetric(float64(svtAt250), "svt-tx@200km")
}

func BenchmarkTable2Testbed(b *testing.B) {
	matched := 0
	for i := 0; i < b.N; i++ {
		rows := eval.Table2TestbedSweep()
		matched = 0
		for _, r := range rows {
			if r.WithinOneSpan {
				matched++
			}
		}
	}
	b.ReportMetric(float64(matched), "rows-within-1-span")
}

// BenchmarkFig12Planning regenerates Fig 12 at each worker count: the
// (scheme, scale) plans are independent and now run through the pool.
func BenchmarkFig12Planning(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(bName("workers", workers), func(b *testing.B) {
			var flexMax float64
			for i := 0; i < b.N; i++ {
				f, err := eval.Fig12HardwareVsScale(tb, []float64{1, 2, 3, 4, 5, 6, 7, 8}, workers)
				if err != nil {
					b.Fatal(err)
				}
				flexMax = f.MaxScale["FlexWAN"]
			}
			b.ReportMetric(flexMax, "flexwan-max-scale")
		})
	}
}

func BenchmarkFig13aTopologies(b *testing.B) {
	ce := workload.Cernet(1)
	var medianGap float64
	for i := 0; i < b.N; i++ {
		f := eval.Fig13aWeightedPathLengths(tb, ce)
		medianGap = f.Medians["Cernet"] - f.Medians["T-backbone"]
	}
	b.ReportMetric(medianGap, "median-gap-km")
}

func BenchmarkFig13bTopologyGains(b *testing.B) {
	ce := workload.Cernet(1)
	var tbSaved float64
	for i := 0; i < b.N; i++ {
		f, err := eval.Fig13bTopologyGains(tb, ce)
		if err != nil {
			b.Fatal(err)
		}
		tbSaved = f.PerNetwork[0].TxSavedVs100G
	}
	b.ReportMetric(tbSaved, "%tx-saved-vs-100G")
}

func BenchmarkFig14aReachGap(b *testing.B) {
	var p90 float64
	for i := 0; i < b.N; i++ {
		f, err := eval.Fig14WavelengthDistributions(tb)
		if err != nil {
			b.Fatal(err)
		}
		p90 = f.GapKm["FlexWAN"].Percentile(90)
	}
	b.ReportMetric(p90, "flexwan-gap-p90-km")
}

func BenchmarkFig14bSpectralEff(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		f, err := eval.Fig14WavelengthDistributions(tb)
		if err != nil {
			b.Fatal(err)
		}
		mean = f.SpectralEff["FlexWAN"].Mean()
	}
	b.ReportMetric(mean, "flexwan-bps-per-hz")
}

func BenchmarkFig15aRestorePathGap(b *testing.B) {
	var fracLonger float64
	for i := 0; i < b.N; i++ {
		f, err := eval.Fig15aRestoredPathGaps(tb, 0)
		if err != nil {
			b.Fatal(err)
		}
		fracLonger = f.FracLonger
	}
	b.ReportMetric(fracLonger*100, "%restored-longer")
}

// BenchmarkFig15bRestoration regenerates Fig 15b at each worker count so
// a single bench run shows the parallel sweep's wall-clock speedup
// (workers=1 is the sequential path; workers=GOMAXPROCS the full pool).
func BenchmarkFig15bRestoration(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(bName("workers", workers), func(b *testing.B) {
			var flexAt5 float64
			for i := 0; i < b.N; i++ {
				f, err := eval.Fig15bRestorationVsScale(tb, []float64{1, 3, 5}, workers)
				if err != nil {
					b.Fatal(err)
				}
				flexAt5 = f.Capability["FlexWAN"][2]
			}
			b.ReportMetric(flexAt5, "flexwan-capability@5x")
		})
	}
}

// BenchmarkSweepWorkers isolates the scenario sweep itself (one plan,
// all 1-fiber cuts at 3× load) across worker counts — the cleanest
// speedup measurement, with no planning time mixed in.
func BenchmarkSweepWorkers(b *testing.B) {
	base, err := plan.Solve(plan.Problem{
		Optical: tb.Optical, IP: tb.IP.Scale(3), Catalog: transponder.SVT(),
		Grid: spectrum.DefaultGrid(),
	})
	if err != nil {
		b.Fatal(err)
	}
	prob := restore.Problem{
		Optical: tb.Optical, IP: tb.IP.Scale(3), Catalog: transponder.SVT(),
		Grid: spectrum.DefaultGrid(), Base: base,
	}
	scs := restore.SingleFiberScenarios(tb.Optical)
	for _, workers := range benchWorkerCounts() {
		b.Run(bName("workers", workers), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				sweep, err := restore.SweepWithOptions(prob, scs, restore.SweepOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if sweep.Failed() > 0 {
					b.Fatalf("failed scenarios: %v", sweep.FailedIDs())
				}
				mean = sweep.MeanCapability()
			}
			b.ReportMetric(mean, "mean-capability")
		})
	}
}

// benchWorkerCounts is the sweep-parallelism ladder benchmarked above:
// sequential, then doublings up to GOMAXPROCS.
func benchWorkerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	counts := []int{1}
	for w := 2; w < max; w *= 2 {
		counts = append(counts, w)
	}
	if max > 1 {
		counts = append(counts, max)
	}
	return counts
}

func BenchmarkFig16Restoration(b *testing.B) {
	var plusMean float64
	for i := 0; i < b.N; i++ {
		f, err := eval.Fig16RestorationCDF(tb, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		plusMean = f.Capability["FlexWAN+"].Mean()
	}
	b.ReportMetric(plusMean, "flexwan+-mean-capability")
}

// --- Ablations over DESIGN.md's called-out choices ---

// BenchmarkAblationK varies the number of candidate paths per link.
func BenchmarkAblationK(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4} {
		b.Run(bName("K", k), func(b *testing.B) {
			var tx int
			for i := 0; i < b.N; i++ {
				res, err := plan.Solve(plan.Problem{
					Optical: tb.Optical, IP: tb.IP, Catalog: transponder.SVT(),
					Grid: spectrum.DefaultGrid(), K: k,
				})
				if err != nil {
					b.Fatal(err)
				}
				tx = res.Transponders()
			}
			b.ReportMetric(float64(tx), "transponders")
		})
	}
}

// BenchmarkAblationEpsilon varies the spectrum weight in the objective.
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, eps := range []float64{0.0001, 0.001, 0.01, 0.1} {
		b.Run(bFloat("eps", eps), func(b *testing.B) {
			var ghz float64
			for i := 0; i < b.N; i++ {
				res, err := plan.Solve(plan.Problem{
					Optical: tb.Optical, IP: tb.IP, Catalog: transponder.SVT(),
					Grid: spectrum.DefaultGrid(), Epsilon: eps,
				})
				if err != nil {
					b.Fatal(err)
				}
				ghz = res.SpectrumGHz()
			}
			b.ReportMetric(ghz, "spectrum-GHz")
		})
	}
}

// BenchmarkAblationPixelGranularity compares the pixel-wise WSS grid with
// finer slicing and with a rigid 75 GHz grid.
func BenchmarkAblationPixelGranularity(b *testing.B) {
	for _, px := range []float64{6.25, 12.5, 25, 75} {
		grid, err := spectrum.NewGrid(px, spectrum.CBandGHz)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bFloat("pixelGHz", px), func(b *testing.B) {
			var ghz float64
			for i := 0; i < b.N; i++ {
				res, err := plan.Solve(plan.Problem{
					Optical: tb.Optical, IP: tb.IP, Catalog: transponder.SVT(), Grid: grid,
				})
				if err != nil {
					b.Fatal(err)
				}
				ghz = float64(res.Allocator.UsedPixels()) * px
			}
			b.ReportMetric(ghz, "fiber-GHz-occupied")
		})
	}
}

// BenchmarkAblationFit compares first-fit and best-fit spectrum placement.
func BenchmarkAblationFit(b *testing.B) {
	for _, fit := range []spectrum.Fit{spectrum.FirstFit, spectrum.BestFit} {
		b.Run(fit.String(), func(b *testing.B) {
			var tx int
			for i := 0; i < b.N; i++ {
				res, err := plan.Solve(plan.Problem{
					Optical: tb.Optical, IP: tb.IP.Scale(6), Catalog: transponder.SVT(),
					Grid: spectrum.DefaultGrid(), Fit: fit,
				})
				if err != nil {
					b.Fatal(err)
				}
				tx = res.Transponders()
			}
			b.ReportMetric(float64(tx), "transponders@6x")
		})
	}
}

// BenchmarkAblationPlusFraction varies the FlexWAN+ spare fraction.
func BenchmarkAblationPlusFraction(b *testing.B) {
	base, err := plan.Solve(plan.Problem{
		Optical: tb.Optical, IP: tb.IP, Catalog: transponder.SVT(), Grid: spectrum.DefaultGrid(),
	})
	if err != nil {
		b.Fatal(err)
	}
	radBase, err := plan.Solve(plan.Problem{
		Optical: tb.Optical, IP: tb.IP, Catalog: transponder.RADWAN(), Grid: spectrum.DefaultGrid(),
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range []float64{0, 0.25, 0.5, 1} {
		b.Run(bFloat("frac", frac), func(b *testing.B) {
			spares := restore.PlusSpares(base, radBase, frac)
			var capability float64
			for i := 0; i < b.N; i++ {
				sweep, err := restore.Sweep(restore.Problem{
					Optical: tb.Optical, IP: tb.IP, Catalog: transponder.SVT(),
					Grid: spectrum.DefaultGrid(), Base: base, ExtraSpares: spares,
				}, restore.SingleFiberScenarios(tb.Optical))
				if err != nil {
					b.Fatal(err)
				}
				capability = sweep.MeanCapability()
			}
			b.ReportMetric(capability, "mean-capability")
		})
	}
}

// BenchmarkHeuristicVsExact reports the heuristic's optimality against
// the full MIP on an instance the branch-and-bound can solve.
func BenchmarkHeuristicVsExact(b *testing.B) {
	g := topology.New()
	for _, f := range []struct {
		id   string
		a, z topology.NodeID
		km   float64
	}{
		{"f1", "A", "B", 100}, {"f2", "B", "C", 400}, {"f3", "A", "C", 450},
	} {
		if err := g.AddFiber(f.id, f.a, f.z, f.km); err != nil {
			b.Fatal(err)
		}
	}
	ip := &topology.IPTopology{}
	for _, l := range []topology.IPLink{
		{ID: "e1", A: "A", B: "B", DemandGbps: 500},
		{ID: "e2", A: "A", B: "C", DemandGbps: 300},
	} {
		if err := ip.AddLink(l); err != nil {
			b.Fatal(err)
		}
	}
	p := plan.Problem{
		Optical: g, IP: ip, Catalog: transponder.RADWAN(),
		Grid: spectrum.Grid{PixelGHz: 12.5, Pixels: 24}, K: 2,
	}
	for _, workers := range eval.SolverBenchWorkerCounts() {
		b.Run(bName("solver-workers", workers), func(b *testing.B) {
			var gap float64
			for i := 0; i < b.N; i++ {
				h, err := plan.Solve(p)
				if err != nil {
					b.Fatal(err)
				}
				e, err := plan.SolveExact(p, solver.Options{MaxNodes: 50000, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				gap = float64(h.Transponders() - e.Transponders())
			}
			b.ReportMetric(gap, "heuristic-minus-exact-tx")
		})
	}
}

// --- Core-primitive micro-benchmarks ---

func BenchmarkKShortestPaths(b *testing.B) {
	nodes := tb.Optical.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths := tb.Optical.KShortestPaths(nodes[0], nodes[len(nodes)-1], 4)
		if len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkSpectrumAllocate(b *testing.B) {
	path := []spectrum.FiberID{"a", "b", "c"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := spectrum.NewAllocator(spectrum.DefaultGrid())
		for {
			if _, err := a.Allocate(path, 9, spectrum.FirstFit); err != nil {
				break
			}
		}
	}
}

func BenchmarkPlanHeuristic(b *testing.B) {
	for _, cat := range []transponder.Catalog{transponder.Fixed100G(), transponder.RADWAN(), transponder.SVT()} {
		b.Run(cat.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.Solve(plan.Problem{
					Optical: tb.Optical, IP: tb.IP, Catalog: cat, Grid: spectrum.DefaultGrid(),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimplexLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := solver.NewModel("bench", solver.Maximize)
		vars := make([]solver.VarID, 40)
		terms := make([]solver.Term, 40)
		for j := range vars {
			vars[j] = m.AddVar("x", 0, 10, float64(1+j%7))
			terms[j] = solver.Term{Var: vars[j], Coef: float64(1 + j%5)}
		}
		if err := m.AddConstraint("cap", terms, solver.LE, 100); err != nil {
			b.Fatal(err)
		}
		if s := m.SolveLP(); s.Status != solver.Optimal {
			b.Fatalf("status %v", s.Status)
		}
	}
}

func bName(prefix string, v int) string { return prefix + "=" + itoa(v) }
func bFloat(prefix string, v float64) string {
	return prefix + "=" + trimFloat(v)
}

func itoa(v int) string { return trimFloat(float64(v)) }

func trimFloat(v float64) string {
	s := make([]byte, 0, 8)
	if v < 0 {
		s = append(s, '-')
		v = -v
	}
	whole := int(v)
	s = appendInt(s, whole)
	frac := v - float64(whole)
	if frac > 1e-9 {
		s = append(s, '.')
		for i := 0; i < 4 && frac > 1e-9; i++ {
			frac *= 10
			d := int(frac)
			s = append(s, byte('0'+d))
			frac -= float64(d)
		}
	}
	return string(s)
}

func appendInt(s []byte, v int) []byte {
	if v >= 10 {
		s = appendInt(s, v/10)
	}
	return append(s, byte('0'+v%10))
}

// BenchmarkGNCrossCheck runs the a-priori physics validation of Table 2.
func BenchmarkGNCrossCheck(b *testing.B) {
	var within int
	for i := 0; i < b.N; i++ {
		rows := eval.GNCrossCheck()
		within = 0
		for _, r := range rows {
			if r.Ratio >= 0.3 && r.Ratio <= 8 {
				within++
			}
		}
	}
	b.ReportMetric(float64(within), "formats-within-0.3-8x")
}

// BenchmarkProbabilisticRestoration sweeps sampled multi-fiber failures.
func BenchmarkProbabilisticRestoration(b *testing.B) {
	var flex float64
	for i := 0; i < b.N; i++ {
		f, err := eval.ProbabilisticRestorationSweep(tb, 1, 7, 25, 0.3, 0)
		if err != nil {
			b.Fatal(err)
		}
		flex = f.Capability["FlexWAN"]
	}
	b.ReportMetric(flex, "flexwan-expected-capability")
}

// BenchmarkDefragmentation measures spectrum compaction after churn:
// plan, decommission a third of the links, defragment.
func BenchmarkDefragmentation(b *testing.B) {
	var moves int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r, err := plan.Solve(plan.Problem{
			Optical: tb.Optical, IP: tb.IP.Scale(3), Catalog: transponder.SVT(),
			Grid: spectrum.DefaultGrid(),
		})
		if err != nil {
			b.Fatal(err)
		}
		for j, l := range tb.IP.Links {
			if j%3 == 0 {
				if _, err := plan.Decommission(r, l.ID); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StartTimer()
		moves, err = plan.Defragment(plan.Problem{
			Optical: tb.Optical, IP: tb.IP.Scale(3), Catalog: transponder.SVT(),
			Grid: spectrum.DefaultGrid(),
		}, r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(moves), "wavelengths-moved")
}

// BenchmarkIncrementalVsReplan compares growing one link incrementally
// against replanning the whole network — the §9 evolution advantage.
func BenchmarkIncrementalVsReplan(b *testing.B) {
	p := plan.Problem{
		Optical: tb.Optical, IP: tb.IP, Catalog: transponder.SVT(), Grid: spectrum.DefaultGrid(),
	}
	b.Run("extend-one-link", func(b *testing.B) {
		base, err := plan.Solve(p)
		if err != nil {
			b.Fatal(err)
		}
		link := tb.IP.Links[0].ID
		for i := 0; i < b.N; i++ {
			if _, err := plan.Extend(p, base, link, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-replan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Solve(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExactScaling shows how the exact MIP's cost grows with the
// spectrum grid (the paper's Gurobi runs take "hours" at production
// size; the heuristic stays near-instant — this bench quantifies the
// gap on solvable instances). The exact solves run once per branching
// rule and worker count on fixed ladders so the branch-and-bound speedup
// and the branching ablation are visible on any machine; sub-runs also
// cross-check that the objective is bit-identical at every (rule,
// workers) combination — the determinism contract CI's bench smoke
// enforces.
func BenchmarkExactScaling(b *testing.B) {
	for _, pixels := range []int{16, 20, 24, 32} {
		p, err := eval.ExactScalingProblem(pixels)
		if err != nil {
			b.Fatal(err)
		}
		refObjective, haveRef := 0.0, false
		for _, rule := range eval.SolverBenchBranchings() {
			for _, workers := range eval.SolverBenchWorkerCounts() {
				name := "exact/pixels=" + itoa(pixels) + "/branching=" + string(rule) + "/" + bName("workers", workers)
				b.Run(name, func(b *testing.B) {
					var last *plan.Result
					for i := 0; i < b.N; i++ {
						last, err = plan.SolveExact(p, solver.Options{
							MaxNodes: 100000, Workers: workers, Branching: rule,
						})
						if err != nil {
							b.Fatal(err)
						}
					}
					// The first sub-run -bench selects sets the reference;
					// every later (rule, workers) combination must match it
					// exactly.
					if !haveRef {
						refObjective, haveRef = last.Solver.Objective, true
					} else if last.Solver.Objective != refObjective {
						b.Fatalf("objective %v at branching=%s workers=%d differs from reference %v",
							last.Solver.Objective, rule, workers, refObjective)
					}
					b.ReportMetric(float64(last.Solver.Nodes), "bnb-nodes")
					b.ReportMetric(float64(last.Solver.SimplexIters), "simplex-iters")
					if last.Solver.Nodes > 0 {
						b.ReportMetric(float64(last.Solver.WarmStartHits)/float64(last.Solver.Nodes), "warm-hit-rate")
					}
				})
			}
		}
		b.Run("heuristic/pixels="+itoa(pixels), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.Solve(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPresolveAblation runs the exact planning MIP with presolve on
// and off on the same instances and cross-checks that the objectives are
// identical — the presolve correctness contract CI's bench smoke
// enforces — while the ns/op contrast shows what the reductions buy.
func BenchmarkPresolveAblation(b *testing.B) {
	for _, pixels := range []int{16, 24} {
		p, err := eval.ExactScalingProblem(pixels)
		if err != nil {
			b.Fatal(err)
		}
		refObjective, haveRef := 0.0, false
		for _, noPresolve := range []bool{false, true} {
			name := "exact/pixels=" + itoa(pixels) + "/presolve=on"
			if noPresolve {
				name = "exact/pixels=" + itoa(pixels) + "/presolve=off"
			}
			b.Run(name, func(b *testing.B) {
				var last *plan.Result
				for i := 0; i < b.N; i++ {
					last, err = plan.SolveExact(p, solver.Options{
						MaxNodes: 100000, Workers: 1, NoPresolve: noPresolve,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				if !haveRef {
					refObjective, haveRef = last.Solver.Objective, true
				} else if last.Solver.Objective != refObjective {
					b.Fatalf("objective %v with presolve=%v differs from reference %v",
						last.Solver.Objective, !noPresolve, refObjective)
				}
				b.ReportMetric(float64(last.Solver.SimplexIters), "simplex-iters")
				b.ReportMetric(float64(last.Solver.PresolveRows), "presolve-rows")
				b.ReportMetric(float64(last.Solver.PresolveCols), "presolve-cols")
			})
		}
	}
}

// BenchmarkPricingAblation runs the exact planning MIP under each
// dual-simplex pricing rule on the same instances and cross-checks that
// the objectives are identical — the pricing correctness contract CI's
// bench smoke enforces — while the simplex-iters contrast shows what the
// weighted rules buy over the Dantzig baseline.
func BenchmarkPricingAblation(b *testing.B) {
	for _, pixels := range []int{16, 24} {
		p, err := eval.ExactScalingProblem(pixels)
		if err != nil {
			b.Fatal(err)
		}
		refObjective, haveRef := 0.0, false
		for _, pricing := range []solver.PricingRule{solver.PricingDevex, solver.PricingSteepestEdge, solver.PricingDantzig} {
			b.Run("exact/pixels="+itoa(pixels)+"/pricing="+string(pricing), func(b *testing.B) {
				var last *plan.Result
				for i := 0; i < b.N; i++ {
					last, err = plan.SolveExact(p, solver.Options{
						MaxNodes: 100000, Workers: 1, Pricing: pricing,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				if !haveRef {
					refObjective, haveRef = last.Solver.Objective, true
				} else if last.Solver.Objective != refObjective {
					b.Fatalf("objective %v under pricing=%s differs from reference %v",
						last.Solver.Objective, pricing, refObjective)
				}
				b.ReportMetric(float64(last.Solver.SimplexIters), "simplex-iters")
				b.ReportMetric(float64(last.Solver.BoundFlips), "bound-flips")
				b.ReportMetric(float64(last.Solver.WeightResets), "weight-resets")
			})
		}
	}
}

// BenchmarkSolverMemoryBudget enforces a per-instance bytes/op budget on
// the default (revised simplex) exact solve — the memory regression
// guard CI's bench smoke runs. The budgets sit roughly 2x above the
// measured revised-engine allocation and well under half the dense
// tableau's (≈1.5 MB/op at 32 pixels, ≈6 MB/op at 64), so either an
// engine regression or an accidental fall-back to the dense path trips
// them. TotalAlloc deltas are read directly because the testing
// framework's own B/op is not visible from inside the benchmark.
func BenchmarkSolverMemoryBudget(b *testing.B) {
	budgets := []struct {
		pixels int
		bytes  float64
	}{{16, 300_000}, {32, 700_000}, {64, 1_700_000}}
	for _, bu := range budgets {
		b.Run("exact/pixels="+itoa(bu.pixels), func(b *testing.B) {
			p, err := eval.ExactScalingProblem(bu.pixels)
			if err != nil {
				b.Fatal(err)
			}
			opts := solver.Options{MaxNodes: 100000, Workers: 1}
			if _, err := plan.SolveExact(p, opts); err != nil { // warm-up
				b.Fatal(err)
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.SolveExact(p, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			perOp := float64(after.TotalAlloc-before.TotalAlloc) / float64(b.N)
			b.ReportMetric(perOp, "bytes/op-measured")
			if perOp > bu.bytes {
				b.Fatalf("pixels=%d: %.0f bytes/op exceeds budget %.0f", bu.pixels, perOp, bu.bytes)
			}
		})
	}
}

// BenchmarkExactRegressionGuard fails if the default exact solve at
// pixels=64 (revised simplex, Forrest–Tomlin updates, one worker,
// pseudocost branching, all presolve passes on) regresses more than 25%
// against the committed BENCH_solver.json baseline — the performance
// contract CI's bench smoke enforces. Machines differ, so the budget is
// calibrated: the pixels=16 point from the same baseline is re-measured
// here and the 64-pixel budget scaled by how much slower this machine is
// (never scaled down — a faster machine still has to beat the absolute
// bar). Min-of-3 timing on both points keeps scheduler noise out of the
// verdict. Skips when no baseline is committed.
func BenchmarkExactRegressionGuard(b *testing.B) {
	raw, err := os.ReadFile("BENCH_solver.json")
	if err != nil {
		b.Skipf("no committed baseline: %v", err)
	}
	var baseline eval.SolverBench
	if err := json.Unmarshal(raw, &baseline); err != nil {
		b.Fatalf("BENCH_solver.json: %v", err)
	}
	find := func(instance string) *eval.SolverBenchPoint {
		for i, pt := range baseline.Points {
			// The pricing predicate keeps the dantzig ablation points out
			// of the match; "" tolerates baselines recorded before the
			// pricing field existed.
			if pt.Instance == instance && pt.Engine == "revised" && pt.Workers == 1 &&
				pt.Branching == string(solver.BranchPseudocost) && pt.Presolve && pt.NodePresolve &&
				(pt.Pricing == "" || pt.Pricing == string(solver.PricingDevex)) {
				return &baseline.Points[i]
			}
		}
		b.Fatalf("BENCH_solver.json has no revised/workers=1 point for %s", instance)
		return nil
	}
	base16 := find("exact-planning/pixels=16")
	base64 := find("exact-planning/pixels=64")
	opts := solver.Options{MaxNodes: 100000, Workers: 1, Branching: solver.BranchPseudocost}
	problem := func(pixels int) plan.Problem {
		p, err := eval.ExactScalingProblem(pixels)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := plan.SolveExact(p, opts); err != nil { // warm-up
			b.Fatal(err)
		}
		return p
	}
	p16, p64 := problem(16), problem(64)
	timeOnce := func(p plan.Problem) float64 {
		start := time.Now()
		if _, err := plan.SolveExact(p, opts); err != nil {
			b.Fatal(err)
		}
		return float64(time.Since(start).Nanoseconds())
	}
	// The calibration and the guarded measurement run interleaved, with a
	// GC ahead of each round, so both points see the same heap and
	// scheduler conditions — measuring them back-to-back let GC debt from
	// earlier benchmarks in the same process land on one side only.
	best16, got := math.Inf(1), math.Inf(1)
	for r := 0; r < 4; r++ {
		runtime.GC()
		if ns := timeOnce(p16); ns < best16 {
			best16 = ns
		}
		if ns := timeOnce(p64); ns < got {
			got = ns
		}
	}
	scale := best16 / base16.NsPerOp
	if scale < 1 {
		scale = 1
	}
	budget := base64.NsPerOp * scale * 1.25
	b.ReportMetric(got/base64.NsPerOp, "x-vs-baseline")
	b.ReportMetric(scale, "machine-scale")
	if got > budget {
		b.Fatalf("exact solve at pixels=64 took %.0f ns, budget %.0f ns (baseline %.0f x machine scale %.2f x 1.25)",
			got, budget, base64.NsPerOp, scale)
	}
}

// BenchmarkDegeneracyWallGuard re-solves the degeneracy-wall instance —
// the full T-backbone at 32 pixels with three candidate paths per link,
// the instance Dantzig pricing stalls on outright — and fails if the
// default devex-priced solve regresses past a pivot-count budget of 1.5x
// the committed BENCH_solver.json baseline, or stops proving optimality,
// or lands on a different objective. Pivot counts (unlike wall-clock) are
// deterministic at one worker, so the budget needs no machine
// calibration; the 1.5x slack absorbs legitimate future pivot-path
// changes without letting the instance drift back toward the wall. Skips
// when the committed baseline predates the wall instance.
func BenchmarkDegeneracyWallGuard(b *testing.B) {
	const instance = "exact-tbackbone/pixels=32,scale=0.02,k=3"
	raw, err := os.ReadFile("BENCH_solver.json")
	if err != nil {
		b.Skipf("no committed baseline: %v", err)
	}
	var baseline eval.SolverBench
	if err := json.Unmarshal(raw, &baseline); err != nil {
		b.Fatalf("BENCH_solver.json: %v", err)
	}
	var base *eval.SolverBenchPoint
	for i, pt := range baseline.Points {
		if pt.Instance == instance && pt.Engine == "revised" && pt.Workers == 1 &&
			pt.Branching == string(solver.BranchPseudocost) && pt.Presolve && pt.NodePresolve &&
			(pt.Pricing == "" || pt.Pricing == string(solver.PricingDevex)) {
			base = &baseline.Points[i]
			break
		}
	}
	if base == nil {
		b.Skipf("committed BENCH_solver.json has no %s point", instance)
	}
	p, err := eval.ExactTBackboneProblem(1, 0.02, 32, 3)
	if err != nil {
		b.Fatal(err)
	}
	res, err := plan.SolveExact(p, solver.Options{
		MaxNodes: 100000, Workers: 1, Branching: solver.BranchPseudocost,
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.Solver.Status != solver.Optimal {
		b.Fatalf("wall instance no longer proves optimality: status %v", res.Solver.Status)
	}
	if res.Solver.Objective != base.Objective {
		b.Fatalf("wall instance objective %v differs from baseline %v", res.Solver.Objective, base.Objective)
	}
	budget := base.SimplexIters * 3 / 2
	b.ReportMetric(float64(res.Solver.SimplexIters), "pivots")
	b.ReportMetric(float64(res.Solver.SimplexIters)/float64(base.SimplexIters), "x-vs-baseline")
	if res.Solver.SimplexIters > budget {
		b.Fatalf("wall instance took %d pivots, budget %d (baseline %d x 1.5)",
			res.Solver.SimplexIters, budget, base.SimplexIters)
	}
}

// BenchmarkNetconfRPC measures management-protocol round-trip throughput
// (one get-state per iteration against a live transponder agent).
func BenchmarkNetconfRPC(b *testing.B) {
	fabric := device.NewFabric(phy.DefaultLink())
	if err := fabric.AddFiber("f1", 600); err != nil {
		b.Fatal(err)
	}
	agent := device.NewTransponder(devmodel.Descriptor{
		ID: "bench-tx", Class: devmodel.ClassTransponder, Vendor: "v", Address: "x", Site: "A",
	}, spectrum.DefaultGrid(), transponder.SVT(), fabric)
	addr, err := agent.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()
	c, err := netconf.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := agent.Configure(devmodel.TransponderConfig{
		Enabled: true, DataRateGbps: 600, SpacingGHz: 150,
		IntervalStart: 0, IntervalCount: 12, PathFibers: []string{"f1"}, Channel: "b:1",
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st devmodel.TransponderState
		if err := c.Call(netconf.OpGetState, nil, &st); err != nil {
			b.Fatal(err)
		}
	}
}
