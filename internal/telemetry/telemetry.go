// Package telemetry is FlexWAN's data stream module (§4.4 of the paper):
// it periodically collects optical-layer key performance indicators from
// every device, stores them in an online time-series store, and turns
// loss-of-signal transitions into fiber-cut events for the controller.
//
// The paper's production deployment uses a scalable collector with
// one-second granularity feeding an online database (the Kalfa system);
// here the store is an in-memory ring buffer per series and the collector
// is a polling loop plus the devices' asynchronous alarms, which exercises
// the same detection path: power collapse on a fiber's amplifiers →
// fiber-cut event → restoration.
package telemetry

import (
	"encoding/json"
	"sync"
	"time"

	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
)

// Point is one sample of one metric on one device.
type Point struct {
	Device string
	Metric string
	Time   time.Time
	Value  float64
}

// Store keeps a bounded history per (device, metric) series. It is safe
// for concurrent use.
type Store struct {
	capacity int

	mu     sync.Mutex
	series map[seriesKey][]Point
}

type seriesKey struct {
	device, metric string
}

// NewStore returns a store holding up to capacity points per series
// (older points are evicted).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Store{capacity: capacity, series: make(map[seriesKey][]Point)}
}

// Append records a sample.
func (s *Store) Append(p Point) {
	k := seriesKey{p.Device, p.Metric}
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := append(s.series[k], p)
	if len(pts) > s.capacity {
		pts = pts[len(pts)-s.capacity:]
	}
	s.series[k] = pts
}

// Latest returns the most recent sample of the series.
func (s *Store) Latest(deviceID, metric string) (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := s.series[seriesKey{deviceID, metric}]
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}

// Since returns the samples of the series at or after t, oldest first.
func (s *Store) Since(deviceID, metric string, t time.Time) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := s.series[seriesKey{deviceID, metric}]
	var out []Point
	for _, p := range pts {
		if !p.Time.Before(t) {
			out = append(out, p)
		}
	}
	return out
}

// SeriesCount returns the number of distinct (device, metric) series.
func (s *Store) SeriesCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.series)
}

// Event is a detected optical-layer event.
type Event struct {
	// Kind is "fiber-cut" or "fiber-restored".
	Kind string
	// Fiber is the affected fiber segment, localized from the reporting
	// device's descriptor.
	Fiber string
	// Device is the device whose signal transition triggered detection.
	Device string
	Time   time.Time
}

// Source is one device under collection.
type Source struct {
	Desc   devmodel.Descriptor
	Client *netconf.Client
}

// Collector polls sources on a fixed interval, feeds the store, and
// emits fiber events. Detection is double-pathed as in production:
// asynchronous device alarms give sub-interval latency, and the polling
// loop catches anything the alarm stream missed.
type Collector struct {
	store    *Store
	interval time.Duration
	sources  []Source
	events   chan Event

	// DegradeBERThreshold, when positive, arms early-warning detection:
	// a transponder whose pre-FEC BER rises above the threshold (while
	// still decoding) raises a "ber-degradation" event, and a
	// "ber-clear" once it falls back under half the threshold. This is
	// the OpTel-style ephemeral-event detection the paper's data stream
	// is built for — the channel is still error-free post-FEC, but its
	// margin is eroding. Set before Run.
	DegradeBERThreshold float64

	mu       sync.Mutex
	los      map[string]bool // device → last observed LOS
	degraded map[string]bool // device → BER alarm latched
	stopped  chan struct{}
	stopGrp  sync.WaitGroup
	once     sync.Once
}

// NewCollector builds a collector over the given sources. Events are
// delivered on Events(); call Run to start and Stop to halt.
func NewCollector(store *Store, interval time.Duration, sources []Source) *Collector {
	if interval <= 0 {
		interval = time.Second // the paper's one-second granularity
	}
	return &Collector{
		store:    store,
		interval: interval,
		sources:  sources,
		events:   make(chan Event, 256),
		los:      make(map[string]bool),
		degraded: make(map[string]bool),
		stopped:  make(chan struct{}),
	}
}

// Events streams detected fiber events.
func (c *Collector) Events() <-chan Event { return c.events }

// Run starts the polling loop and alarm listeners. It returns
// immediately; collection continues until Stop.
func (c *Collector) Run() {
	for _, src := range c.sources {
		src := src
		c.stopGrp.Add(1)
		go func() {
			defer c.stopGrp.Done()
			c.listenAlarms(src)
		}()
	}
	c.stopGrp.Add(1)
	go func() {
		defer c.stopGrp.Done()
		ticker := time.NewTicker(c.interval)
		defer ticker.Stop()
		c.pollAll() // immediate first sweep
		for {
			select {
			case <-c.stopped:
				return
			case <-ticker.C:
				c.pollAll()
			}
		}
	}()
}

// Stop halts collection. Safe to call more than once.
func (c *Collector) Stop() {
	c.once.Do(func() { close(c.stopped) })
	c.stopGrp.Wait()
}

func (c *Collector) listenAlarms(src Source) {
	for {
		select {
		case <-c.stopped:
			return
		case raw, ok := <-src.Client.Notifications():
			if !ok {
				return
			}
			var al device.Alarm
			if err := json.Unmarshal(raw, &al); err != nil {
				continue
			}
			c.observeLOS(src.Desc, al.Device, al.Fiber, al.Kind == "los")
		}
	}
}

func (c *Collector) pollAll() {
	now := time.Now()
	for _, src := range c.sources {
		switch src.Desc.Class {
		case devmodel.ClassTransponder:
			var st devmodel.TransponderState
			if err := src.Client.Call(netconf.OpGetState, nil, &st); err != nil {
				continue
			}
			c.store.Append(Point{src.Desc.ID, "rx-osnr-db", now, st.RxOSNRdB})
			c.store.Append(Point{src.Desc.ID, "pre-fec-ber", now, st.PreFECBER})
			c.store.Append(Point{src.Desc.ID, "post-fec-ber", now, st.PostFECBER})
			c.store.Append(Point{src.Desc.ID, "rx-power-dbm", now, st.RxPowerDBm})
			c.store.Append(Point{src.Desc.ID, "los", now, boolTo01(st.LossOfSignal)})
			c.observeBER(src.Desc.ID, st)
			// A transponder's LOS cannot localize the cut by itself: its
			// circuit crosses many fibers. Only record it.
		case devmodel.ClassAmplifier:
			var st devmodel.AmplifierState
			if err := src.Client.Call(netconf.OpGetState, nil, &st); err != nil {
				continue
			}
			c.store.Append(Point{src.Desc.ID, "gain-db", now, st.GainDB})
			c.store.Append(Point{src.Desc.ID, "out-power-dbm", now, st.OutPowerDBm})
			c.store.Append(Point{src.Desc.ID, "los", now, boolTo01(st.LossOfSignal)})
			// Amplifiers sit on a known fiber: their LOS localizes it.
			c.observeLOS(src.Desc, src.Desc.ID, src.Desc.Fiber, st.LossOfSignal)
		}
	}
}

// observeLOS updates per-device LOS state and emits a fiber event on
// transitions that carry a fiber localization.
func (c *Collector) observeLOS(desc devmodel.Descriptor, deviceID, fiber string, los bool) {
	c.mu.Lock()
	prev := c.los[deviceID]
	c.los[deviceID] = los
	c.mu.Unlock()
	if prev == los {
		return
	}
	// Only amplifier alarms (or alarms carrying an explicit fiber from a
	// device that owns one) localize a cut.
	if fiber == "" || desc.Class != devmodel.ClassAmplifier {
		return
	}
	kind := "fiber-cut"
	if !los {
		kind = "fiber-restored"
	}
	select {
	case c.events <- Event{Kind: kind, Fiber: fiber, Device: deviceID, Time: time.Now()}:
	default:
	}
}

// observeBER runs the early-warning margin detector with hysteresis:
// latch above the threshold, release below half of it.
func (c *Collector) observeBER(deviceID string, st devmodel.TransponderState) {
	if c.DegradeBERThreshold <= 0 || !st.Config.Enabled || st.LossOfSignal {
		return
	}
	c.mu.Lock()
	latched := c.degraded[deviceID]
	var kind string
	switch {
	case !latched && st.PreFECBER > c.DegradeBERThreshold:
		c.degraded[deviceID] = true
		kind = "ber-degradation"
	case latched && st.PreFECBER < c.DegradeBERThreshold/2:
		c.degraded[deviceID] = false
		kind = "ber-clear"
	}
	c.mu.Unlock()
	if kind == "" {
		return
	}
	select {
	case c.events <- Event{Kind: kind, Device: deviceID, Time: time.Now()}:
	default:
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
