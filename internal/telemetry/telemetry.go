// Package telemetry is FlexWAN's data stream module (§4.4 of the paper):
// it periodically collects optical-layer key performance indicators from
// every device, stores them in an online time-series store, and turns
// loss-of-signal transitions into fiber-cut events for the controller.
//
// The paper's production deployment uses a scalable collector with
// one-second granularity feeding an online database (the Kalfa system);
// here the store is an in-memory ring buffer per series and the collector
// is a polling loop plus the devices' asynchronous alarms, which exercises
// the same detection path: power collapse on a fiber's amplifiers →
// fiber-cut event → restoration.
package telemetry

import (
	"encoding/json"
	"sync"
	"time"

	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
)

// Point is one sample of one metric on one device.
type Point struct {
	Device string
	Metric string
	Time   time.Time
	Value  float64
}

// Store keeps a bounded history per (device, metric) series. It is safe
// for concurrent use.
type Store struct {
	capacity int

	mu     sync.Mutex
	series map[seriesKey][]Point
}

type seriesKey struct {
	device, metric string
}

// NewStore returns a store holding up to capacity points per series
// (older points are evicted).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Store{capacity: capacity, series: make(map[seriesKey][]Point)}
}

// Append records a sample.
func (s *Store) Append(p Point) {
	k := seriesKey{p.Device, p.Metric}
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := append(s.series[k], p)
	if len(pts) > s.capacity {
		pts = pts[len(pts)-s.capacity:]
	}
	s.series[k] = pts
}

// Latest returns the most recent sample of the series.
func (s *Store) Latest(deviceID, metric string) (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := s.series[seriesKey{deviceID, metric}]
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}

// Since returns the samples of the series at or after t, oldest first.
func (s *Store) Since(deviceID, metric string, t time.Time) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := s.series[seriesKey{deviceID, metric}]
	var out []Point
	for _, p := range pts {
		if !p.Time.Before(t) {
			out = append(out, p)
		}
	}
	return out
}

// SeriesCount returns the number of distinct (device, metric) series.
func (s *Store) SeriesCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.series)
}

// Event is a detected optical-layer event.
type Event struct {
	// Kind is "fiber-cut" or "fiber-restored".
	Kind string
	// Fiber is the affected fiber segment, localized from the reporting
	// device's descriptor.
	Fiber string
	// Device is the device whose signal transition triggered detection.
	Device string
	Time   time.Time
}

// Source is one device under collection.
type Source struct {
	Desc   devmodel.Descriptor
	Client *netconf.Client
}

// sourceState is a Source whose session the collector may replace: when
// a device crashes its notification stream closes, and the alarm
// listener redials the registered management address until the device
// answers again. Sessions the collector dialed itself (redialed) are its
// to close; the caller's original Client is left to the caller.
type sourceState struct {
	desc devmodel.Descriptor

	mu       sync.Mutex
	client   *netconf.Client
	redialed bool
}

func (s *sourceState) get() *netconf.Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.client
}

// drop forgets the dead session if it is still current, closing it when
// the collector owned it.
func (s *sourceState) drop(client *netconf.Client) {
	s.mu.Lock()
	owned := false
	if s.client == client {
		owned = s.redialed
		s.client = nil
	}
	s.mu.Unlock()
	if owned {
		client.Close()
	}
}

func (s *sourceState) replace(client *netconf.Client) {
	s.mu.Lock()
	old, owned := s.client, s.redialed
	s.client = client
	s.redialed = true
	s.mu.Unlock()
	if old != nil && owned {
		old.Close()
	}
}

// Collector polls sources on a fixed interval, feeds the store, and
// emits fiber events. Detection is double-pathed as in production:
// asynchronous device alarms give sub-interval latency, and the polling
// loop catches anything the alarm stream missed.
type Collector struct {
	store    *Store
	interval time.Duration
	sources  []*sourceState
	events   chan Event

	// RedialInterval is the pause between reconnection attempts after a
	// source's management session drops (default 100ms). Set before Run.
	RedialInterval time.Duration

	// DegradeBERThreshold, when positive, arms early-warning detection:
	// a transponder whose pre-FEC BER rises above the threshold (while
	// still decoding) raises a "ber-degradation" event, and a
	// "ber-clear" once it falls back under half the threshold. This is
	// the OpTel-style ephemeral-event detection the paper's data stream
	// is built for — the channel is still error-free post-FEC, but its
	// margin is eroding. Set before Run.
	DegradeBERThreshold float64

	mu       sync.Mutex
	los      map[string]bool // device → last observed LOS
	degraded map[string]bool // device → BER alarm latched
	stopped  chan struct{}
	stopGrp  sync.WaitGroup
	once     sync.Once
}

// NewCollector builds a collector over the given sources. Events are
// delivered on Events(); call Run to start and Stop to halt.
func NewCollector(store *Store, interval time.Duration, sources []Source) *Collector {
	if interval <= 0 {
		interval = time.Second // the paper's one-second granularity
	}
	states := make([]*sourceState, len(sources))
	for i, src := range sources {
		states[i] = &sourceState{desc: src.Desc, client: src.Client}
	}
	return &Collector{
		store:    store,
		interval: interval,
		sources:  states,
		events:   make(chan Event, 256),
		los:      make(map[string]bool),
		degraded: make(map[string]bool),
		stopped:  make(chan struct{}),
	}
}

// Events streams detected fiber events.
func (c *Collector) Events() <-chan Event { return c.events }

// Run starts the polling loop and alarm listeners. It returns
// immediately; collection continues until Stop.
func (c *Collector) Run() {
	for _, src := range c.sources {
		src := src
		c.stopGrp.Add(1)
		go func() {
			defer c.stopGrp.Done()
			c.listenAlarms(src)
		}()
	}
	c.stopGrp.Add(1)
	go func() {
		defer c.stopGrp.Done()
		ticker := time.NewTicker(c.interval)
		defer ticker.Stop()
		c.pollAll() // immediate first sweep
		for {
			select {
			case <-c.stopped:
				return
			case <-ticker.C:
				c.pollAll()
			}
		}
	}()
}

// Stop halts collection and closes any sessions the collector redialed
// itself. Safe to call more than once.
func (c *Collector) Stop() {
	c.once.Do(func() { close(c.stopped) })
	c.stopGrp.Wait()
	for _, s := range c.sources {
		s.mu.Lock()
		client, owned := s.client, s.redialed
		s.client = nil
		s.mu.Unlock()
		if owned && client != nil {
			client.Close()
		}
	}
}

func (c *Collector) redialInterval() time.Duration {
	if c.RedialInterval > 0 {
		return c.RedialInterval
	}
	return 100 * time.Millisecond
}

// listenAlarms consumes a source's asynchronous alarms for the life of
// the collector. A closed notification stream means the session died —
// a crashed or restarted device — so the listener redials the
// registered management address until the device answers again, rather
// than going deaf for the rest of the run.
func (c *Collector) listenAlarms(s *sourceState) {
	for {
		if client := s.get(); client != nil {
			if !c.drainAlarms(s, client) {
				return
			}
			s.drop(client)
		}
		select {
		case <-c.stopped:
			return
		case <-time.After(c.redialInterval()):
		}
		if fresh, err := netconf.Dial(s.desc.Address); err == nil {
			s.replace(fresh)
		}
	}
}

// drainAlarms consumes alarms until the collector stops (false) or the
// session drops (true).
func (c *Collector) drainAlarms(s *sourceState, client *netconf.Client) bool {
	for {
		select {
		case <-c.stopped:
			return false
		case raw, ok := <-client.Notifications():
			if !ok {
				return true
			}
			var al device.Alarm
			if err := json.Unmarshal(raw, &al); err != nil {
				continue
			}
			c.observeLOS(s.desc, al.Device, al.Fiber, al.Kind == "los")
		}
	}
}

func (c *Collector) pollAll() {
	now := time.Now()
	for _, src := range c.sources {
		client := src.get()
		if client == nil {
			continue
		}
		switch src.desc.Class {
		case devmodel.ClassTransponder:
			var st devmodel.TransponderState
			if err := client.Call(netconf.OpGetState, nil, &st); err != nil {
				continue
			}
			c.store.Append(Point{src.desc.ID, "rx-osnr-db", now, st.RxOSNRdB})
			c.store.Append(Point{src.desc.ID, "pre-fec-ber", now, st.PreFECBER})
			c.store.Append(Point{src.desc.ID, "post-fec-ber", now, st.PostFECBER})
			c.store.Append(Point{src.desc.ID, "rx-power-dbm", now, st.RxPowerDBm})
			c.store.Append(Point{src.desc.ID, "los", now, boolTo01(st.LossOfSignal)})
			c.observeBER(src.desc.ID, st)
			// A transponder's LOS cannot localize the cut by itself: its
			// circuit crosses many fibers. Only record it.
		case devmodel.ClassAmplifier:
			var st devmodel.AmplifierState
			if err := client.Call(netconf.OpGetState, nil, &st); err != nil {
				continue
			}
			c.store.Append(Point{src.desc.ID, "gain-db", now, st.GainDB})
			c.store.Append(Point{src.desc.ID, "out-power-dbm", now, st.OutPowerDBm})
			c.store.Append(Point{src.desc.ID, "los", now, boolTo01(st.LossOfSignal)})
			// Amplifiers sit on a known fiber: their LOS localizes it.
			c.observeLOS(src.desc, src.desc.ID, src.desc.Fiber, st.LossOfSignal)
		}
	}
}

// observeLOS updates per-device LOS state and emits a fiber event on
// transitions that carry a fiber localization.
func (c *Collector) observeLOS(desc devmodel.Descriptor, deviceID, fiber string, los bool) {
	c.mu.Lock()
	prev := c.los[deviceID]
	c.los[deviceID] = los
	c.mu.Unlock()
	if prev == los {
		return
	}
	// Only amplifier alarms (or alarms carrying an explicit fiber from a
	// device that owns one) localize a cut.
	if fiber == "" || desc.Class != devmodel.ClassAmplifier {
		return
	}
	kind := "fiber-cut"
	if !los {
		kind = "fiber-restored"
	}
	select {
	case c.events <- Event{Kind: kind, Fiber: fiber, Device: deviceID, Time: time.Now()}:
	default:
	}
}

// observeBER runs the early-warning margin detector with hysteresis:
// latch above the threshold, release below half of it.
func (c *Collector) observeBER(deviceID string, st devmodel.TransponderState) {
	if c.DegradeBERThreshold <= 0 || !st.Config.Enabled || st.LossOfSignal {
		return
	}
	c.mu.Lock()
	latched := c.degraded[deviceID]
	var kind string
	switch {
	case !latched && st.PreFECBER > c.DegradeBERThreshold:
		c.degraded[deviceID] = true
		kind = "ber-degradation"
	case latched && st.PreFECBER < c.DegradeBERThreshold/2:
		c.degraded[deviceID] = false
		kind = "ber-clear"
	}
	c.mu.Unlock()
	if kind == "" {
		return
	}
	select {
	case c.events <- Event{Kind: kind, Device: deviceID, Time: time.Now()}:
	default:
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
