package telemetry

import (
	"math"
	"testing"
	"time"

	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/phy"
	"flexwan/internal/spectrum"
	"flexwan/internal/transponder"
)

func TestStoreAppendLatestSince(t *testing.T) {
	s := NewStore(4)
	base := time.Now()
	for i := 0; i < 6; i++ {
		s.Append(Point{Device: "d", Metric: "m", Time: base.Add(time.Duration(i) * time.Second), Value: float64(i)})
	}
	p, ok := s.Latest("d", "m")
	if !ok || p.Value != 5 {
		t.Errorf("Latest = %+v, %v", p, ok)
	}
	// Capacity 4: oldest two evicted.
	pts := s.Since("d", "m", base)
	if len(pts) != 4 || pts[0].Value != 2 {
		t.Errorf("Since = %v", pts)
	}
	pts = s.Since("d", "m", base.Add(4*time.Second))
	if len(pts) != 2 {
		t.Errorf("Since(4s) = %v", pts)
	}
	if _, ok := s.Latest("d", "other"); ok {
		t.Error("Latest for unknown series succeeded")
	}
	if s.SeriesCount() != 1 {
		t.Errorf("SeriesCount = %d", s.SeriesCount())
	}
}

func TestStoreDefaultCapacity(t *testing.T) {
	s := NewStore(0)
	if s.capacity != 1024 {
		t.Errorf("default capacity = %d", s.capacity)
	}
}

// testbed spins up one transponder on f1 and one amplifier per fiber.
func testbed(t *testing.T) (*device.Fabric, []Source) {
	t.Helper()
	fabric := device.NewFabric(phy.DefaultLink())
	for id, km := range map[string]float64{"f1": 600, "f2": 500} {
		if err := fabric.AddFiber(id, km); err != nil {
			t.Fatal(err)
		}
	}
	grid := spectrum.DefaultGrid()
	var sources []Source

	tr := device.NewTransponder(
		devmodel.Descriptor{ID: "t1", Class: devmodel.ClassTransponder, Vendor: "FlexWAN", Address: "x", Site: "A"},
		grid, transponder.SVT(), fabric)
	addr, err := tr.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	c, err := netconf.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	cfg := devmodel.TransponderConfig{
		Enabled: true, DataRateGbps: 600, SpacingGHz: 150,
		IntervalStart: 0, IntervalCount: 12,
		PathFibers: []string{"f1"}, Channel: "e1:1",
	}
	if err := c.Call(netconf.OpEditConfig, cfg, nil); err != nil {
		t.Fatal(err)
	}
	desc := tr.Descriptor()
	sources = append(sources, Source{Desc: desc, Client: c})

	for _, fiber := range []string{"f1", "f2"} {
		amp := device.NewAmplifier(
			devmodel.Descriptor{ID: "amp-" + fiber, Class: devmodel.ClassAmplifier, Vendor: "edfa", Address: "x", Site: "A", Fiber: fiber},
			fabric, fiber)
		addr, err := amp.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(amp.Close)
		ac, err := netconf.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ac.Close() })
		sources = append(sources, Source{Desc: amp.Descriptor(), Client: ac})
	}
	return fabric, sources
}

func TestCollectorGathersMetrics(t *testing.T) {
	_, sources := testbed(t)
	store := NewStore(128)
	col := NewCollector(store, 50*time.Millisecond, sources)
	col.Run()
	defer col.Stop()

	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, ok := store.Latest("t1", "post-fec-ber"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no transponder metrics collected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	p, _ := store.Latest("t1", "post-fec-ber")
	if p.Value != 0 {
		t.Errorf("post-FEC BER = %v, want 0 on healthy 600 km circuit", p.Value)
	}
	if _, ok := store.Latest("amp-f1", "out-power-dbm"); !ok {
		t.Error("no amplifier metrics collected")
	}
}

func TestCollectorDetectsFiberCut(t *testing.T) {
	fabric, sources := testbed(t)
	store := NewStore(128)
	col := NewCollector(store, 50*time.Millisecond, sources)
	col.Run()
	defer col.Stop()

	time.Sleep(100 * time.Millisecond) // let the first sweep establish baselines
	fabric.Cut("f1")

	select {
	case ev := <-col.Events():
		if ev.Kind != "fiber-cut" || ev.Fiber != "f1" {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("fiber cut not detected")
	}

	// Repair produces a restoration event.
	fabric.Repair("f1")
	deadline := time.After(3 * time.Second)
	for {
		select {
		case ev := <-col.Events():
			if ev.Kind == "fiber-restored" && ev.Fiber == "f1" {
				return
			}
		case <-deadline:
			t.Fatal("fiber repair not detected")
		}
	}
}

// TestCollectorRedialsAfterCrash crashes the amplifier watching f1 and
// restarts it on the same address: the collector must redial the alarm
// stream so a cut after the restart is still detected.
func TestCollectorRedialsAfterCrash(t *testing.T) {
	fabric := device.NewFabric(phy.DefaultLink())
	if err := fabric.AddFiber("f1", 600); err != nil {
		t.Fatal(err)
	}
	amp := device.NewAmplifier(
		devmodel.Descriptor{ID: "amp-f1", Class: devmodel.ClassAmplifier, Vendor: "edfa", Address: "x", Site: "A", Fiber: "f1"},
		fabric, "f1")
	addr, err := amp.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(amp.Close)
	c, err := netconf.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	col := NewCollector(NewStore(64), 25*time.Millisecond, []Source{{Desc: amp.Descriptor(), Client: c}})
	col.RedialInterval = 20 * time.Millisecond
	col.Run()
	defer col.Stop()

	time.Sleep(80 * time.Millisecond) // establish baselines on the live session
	amp.Server().Stop()               // crash: drops the collector's alarm session
	time.Sleep(80 * time.Millisecond) // let the redial loop observe the outage
	if _, err := amp.Server().Listen(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	// Give the collector a chance to redial, then cut. Until the redial
	// lands the cut goes unseen, so rearm with a repair and retry.
	deadline := time.Now().Add(3 * time.Second)
	for {
		fabric.Cut("f1")
		select {
		case ev := <-col.Events():
			if ev.Kind == "fiber-cut" && ev.Fiber == "f1" {
				return
			}
			// A fiber-restored from a prior rearm cycle: keep waiting.
		case <-time.After(100 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("fiber cut not detected after device restart")
			}
			fabric.Repair("f1") // rearm and try again once redial lands
			time.Sleep(50 * time.Millisecond)
		}
	}
}

func TestCollectorStopIdempotent(t *testing.T) {
	_, sources := testbed(t)
	col := NewCollector(NewStore(16), 50*time.Millisecond, sources)
	col.Run()
	col.Stop()
	col.Stop()
}

func TestCollectorBERDegradation(t *testing.T) {
	// Two circuits with the same mode: one comfortably inside reach, one
	// at the edge. Pick a detector threshold between their healthy
	// pre-FEC BER readings: only the edge circuit must alarm.
	fabric := device.NewFabric(phy.DefaultLink())
	if err := fabric.AddFiber("short", 160); err != nil {
		t.Fatal(err)
	}
	if err := fabric.AddFiber("edge", 800); err != nil { // 600G@150 reach is 800
		t.Fatal(err)
	}
	grid := spectrum.DefaultGrid()
	var sources []Source
	readings := map[string]float64{}
	for _, tc := range []struct{ id, fiber string }{{"tx-short", "short"}, {"tx-edge", "edge"}} {
		tr := device.NewTransponder(
			devmodel.Descriptor{ID: tc.id, Class: devmodel.ClassTransponder, Vendor: "v", Address: "x", Site: "A"},
			grid, transponder.SVT(), fabric)
		addr, err := tr.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		c, err := netconf.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		cfg := devmodel.TransponderConfig{
			Enabled: true, DataRateGbps: 600, SpacingGHz: 150,
			IntervalStart: 0, IntervalCount: 12,
			PathFibers: []string{tc.fiber}, Channel: tc.id,
		}
		if err := c.Call(netconf.OpEditConfig, cfg, nil); err != nil {
			t.Fatal(err)
		}
		readings[tc.id] = tr.State().PreFECBER
		sources = append(sources, Source{Desc: tr.Descriptor(), Client: c})
	}
	if readings["tx-edge"] <= readings["tx-short"] {
		t.Fatalf("test setup: edge BER %v not above short BER %v", readings["tx-edge"], readings["tx-short"])
	}
	threshold := math.Sqrt(readings["tx-edge"] * readings["tx-short"]) // geometric mean
	col := NewCollector(NewStore(64), 50*time.Millisecond, sources)
	col.DegradeBERThreshold = threshold
	col.Run()
	defer col.Stop()

	select {
	case ev := <-col.Events():
		if ev.Kind != "ber-degradation" || ev.Device != "tx-edge" {
			t.Errorf("event = %+v, want ber-degradation on tx-edge", ev)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no degradation event")
	}
	// No duplicate alarm while latched; short circuit never alarms.
	select {
	case ev := <-col.Events():
		t.Errorf("unexpected second event %+v", ev)
	case <-time.After(300 * time.Millisecond):
	}
}
