// Package core is FlexWAN's service layer: a long-lived Backbone object
// that owns the network state (topologies, catalog, spectrum occupancy,
// live wavelengths) and exposes the lifecycle operations an operator
// performs over years of production (§9 of the paper) — initial planning,
// incremental capacity growth, link decommissioning, failure what-ifs,
// and utilization reporting. The controller package drives devices; core
// drives *decisions* and keeps them consistent.
package core

import (
	"fmt"
	"sort"
	"sync"

	"flexwan/internal/plan"
	"flexwan/internal/restore"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// Config assembles a backbone.
type Config struct {
	Optical *topology.Optical
	IP      *topology.IPTopology
	Catalog transponder.Catalog
	Grid    spectrum.Grid
	K       int
	Epsilon float64
	Fit     spectrum.Fit
}

// Backbone is the FlexWAN network state machine. All methods are safe for
// concurrent use.
type Backbone struct {
	mu      sync.Mutex
	problem plan.Problem
	result  *plan.Result
	planned bool
}

// New validates the configuration and returns an unplanned backbone.
func New(cfg Config) (*Backbone, error) {
	p := plan.Problem{
		Optical: cfg.Optical,
		IP:      cfg.IP,
		Catalog: cfg.Catalog,
		Grid:    cfg.Grid,
		K:       cfg.K,
		Epsilon: cfg.Epsilon,
		Fit:     cfg.Fit,
	}
	// Run the same validation planning would, so construction fails fast.
	if _, err := plan.Solve(plan.Problem{
		Optical: cfg.Optical, IP: &topology.IPTopology{}, Catalog: cfg.Catalog,
		Grid: cfg.Grid, K: cfg.K, Epsilon: cfg.Epsilon, Fit: cfg.Fit,
	}); err != nil {
		return nil, err
	}
	return &Backbone{problem: p}, nil
}

// Plan provisions every IP demand from scratch (Algorithm 1 heuristic)
// and adopts the result as the live state. Planning twice replaces the
// state, as the paper's infrequent offline replans do.
func (b *Backbone) Plan() (*plan.Result, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	res, err := plan.Solve(b.problem)
	if err != nil {
		return nil, err
	}
	if err := plan.Verify(b.problem, res); err != nil {
		return nil, fmt.Errorf("core: self-check failed: %w", err)
	}
	b.result = res
	b.planned = true
	return res, nil
}

// Result returns the live planning state.
func (b *Backbone) Result() (*plan.Result, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.planned {
		return nil, fmt.Errorf("core: backbone not planned yet")
	}
	return b.result, nil
}

// GrowDemand adds capacity to an existing IP link incrementally: live
// wavelengths are untouched; only new channels are provisioned (§9 smooth
// evolution). It returns the newly provisioned wavelengths.
func (b *Backbone) GrowDemand(linkID string, extraGbps int) ([]plan.Wavelength, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.planned {
		return nil, fmt.Errorf("core: backbone not planned yet")
	}
	for i := range b.problem.IP.Links {
		if b.problem.IP.Links[i].ID == linkID {
			added, err := plan.Extend(b.problem, b.result, linkID, extraGbps)
			if err != nil {
				return nil, err
			}
			b.problem.IP.Links[i].DemandGbps += extraGbps
			return added, nil
		}
	}
	return nil, fmt.Errorf("core: unknown IP link %s", linkID)
}

// AddLink introduces a new IP link and provisions its demand.
func (b *Backbone) AddLink(l topology.IPLink) ([]plan.Wavelength, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.planned {
		return nil, fmt.Errorf("core: backbone not planned yet")
	}
	if err := b.problem.IP.AddLink(l); err != nil {
		return nil, err
	}
	added, err := plan.Extend(b.problem, b.result, l.ID, l.DemandGbps)
	if err != nil {
		return nil, err
	}
	// Extend records demand growth on top of the (zero) base; fix the
	// per-link demand to the declared value.
	lp := b.result.PerLink[l.ID]
	lp.DemandGbps = l.DemandGbps
	b.result.PerLink[l.ID] = lp
	return added, nil
}

// RemoveLink decommissions an IP link, releasing all its spectrum. It
// returns the number of transponder pairs freed.
func (b *Backbone) RemoveLink(linkID string) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.planned {
		return 0, fmt.Errorf("core: backbone not planned yet")
	}
	freed, err := plan.Decommission(b.result, linkID)
	if err != nil {
		return freed, err
	}
	kept := b.problem.IP.Links[:0]
	for _, l := range b.problem.IP.Links {
		if l.ID != linkID {
			kept = append(kept, l)
		}
	}
	b.problem.IP.Links = kept
	return freed, nil
}

// WhatIfCut evaluates (without changing live state) how much capacity the
// backbone would revive if the given fibers were cut — the offline
// restoration pre-computation of §4.4 ("the restoration plan for each
// fiber cut scenario can be produced offline").
func (b *Backbone) WhatIfCut(fiberIDs ...string) (*restore.Result, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.planned {
		return nil, fmt.Errorf("core: backbone not planned yet")
	}
	return restore.Solve(restore.Problem{
		Optical:  b.problem.Optical,
		IP:       b.problem.IP,
		Catalog:  b.problem.Catalog,
		Grid:     b.problem.Grid,
		Base:     b.result,
		Scenario: restore.Scenario{ID: "what-if", CutFibers: fiberIDs},
		K:        b.problem.K,
		Fit:      b.problem.Fit,
	})
}

// PrecomputeRestoration builds the offline restoration playbook: one plan
// per scenario, keyed by scenario ID.
func (b *Backbone) PrecomputeRestoration(scenarios []restore.Scenario) (map[string]*restore.Result, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.planned {
		return nil, fmt.Errorf("core: backbone not planned yet")
	}
	out := make(map[string]*restore.Result, len(scenarios))
	for _, sc := range scenarios {
		res, err := restore.Solve(restore.Problem{
			Optical:  b.problem.Optical,
			IP:       b.problem.IP,
			Catalog:  b.problem.Catalog,
			Grid:     b.problem.Grid,
			Base:     b.result,
			Scenario: sc,
			K:        b.problem.K,
			Fit:      b.problem.Fit,
		})
		if err != nil {
			return nil, fmt.Errorf("core: scenario %s: %w", sc.ID, err)
		}
		out[sc.ID] = res
	}
	return out, nil
}

// FiberUtilization is one fiber's spectrum occupancy.
type FiberUtilization struct {
	FiberID       string
	UsedGHz       float64
	TotalGHz      float64
	Fragmentation float64
}

// Utilization reports per-fiber spectrum occupancy, sorted by fiber ID —
// the view an operator watches to decide when to light new fiber (§3.2).
func (b *Backbone) Utilization() ([]FiberUtilization, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.planned {
		return nil, fmt.Errorf("core: backbone not planned yet")
	}
	grid := b.problem.Grid
	var out []FiberUtilization
	for _, f := range b.problem.Optical.Fibers() {
		m := b.result.Allocator.FiberMap(spectrum.FiberID(f.ID))
		out = append(out, FiberUtilization{
			FiberID:       f.ID,
			UsedGHz:       float64(m.UsedPixels()) * grid.PixelGHz,
			TotalGHz:      grid.WidthGHz(),
			Fragmentation: m.Fragmentation(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FiberID < out[j].FiberID })
	return out, nil
}

// BottleneckFiber returns the most occupied fiber — the one that will
// decide the maximum supportable capacity scale.
func (b *Backbone) BottleneckFiber() (FiberUtilization, error) {
	utils, err := b.Utilization()
	if err != nil {
		return FiberUtilization{}, err
	}
	var best FiberUtilization
	for _, u := range utils {
		if u.UsedGHz > best.UsedGHz {
			best = u
		}
	}
	return best, nil
}

// Headroom estimates how much further every demand could scale before the
// bottleneck fiber exhausts, assuming proportional growth: a cheap,
// conservative version of the Fig. 12 max-scale search.
func (b *Backbone) Headroom() (float64, error) {
	bottleneck, err := b.BottleneckFiber()
	if err != nil {
		return 0, err
	}
	if bottleneck.UsedGHz == 0 {
		return 0, fmt.Errorf("core: no spectrum in use")
	}
	return bottleneck.TotalGHz / bottleneck.UsedGHz, nil
}
