package core

import (
	"testing"

	"flexwan/internal/restore"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

func testBackbone(t *testing.T) *Backbone {
	t.Helper()
	g := topology.New()
	for _, f := range []struct {
		id   string
		a, b topology.NodeID
		km   float64
	}{
		{"f1", "A", "B", 600},
		{"f2", "A", "C", 500},
		{"f3", "C", "B", 700},
		{"f4", "B", "D", 300},
	} {
		if err := g.AddFiber(f.id, f.a, f.b, f.km); err != nil {
			t.Fatal(err)
		}
	}
	ip := &topology.IPTopology{}
	for _, l := range []topology.IPLink{
		{ID: "ab", A: "A", B: "B", DemandGbps: 600},
		{ID: "bd", A: "B", B: "D", DemandGbps: 400},
	} {
		if err := ip.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	b, err := New(Config{
		Optical: g, IP: ip, Catalog: transponder.SVT(), Grid: spectrum.DefaultGrid(), K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBackboneLifecycle(t *testing.T) {
	b := testBackbone(t)

	// Operations before planning fail cleanly.
	if _, err := b.Result(); err == nil {
		t.Error("Result before Plan succeeded")
	}
	if _, err := b.GrowDemand("ab", 100); err == nil {
		t.Error("GrowDemand before Plan succeeded")
	}
	if _, err := b.WhatIfCut("f1"); err == nil {
		t.Error("WhatIfCut before Plan succeeded")
	}
	if _, err := b.Utilization(); err == nil {
		t.Error("Utilization before Plan succeeded")
	}

	res, err := b.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("unserved: %v", res.Unserved)
	}
	got, err := b.Result()
	if err != nil || got != res {
		t.Errorf("Result = %v, %v", got, err)
	}
}

func TestBackboneGrowth(t *testing.T) {
	b := testBackbone(t)
	if _, err := b.Plan(); err != nil {
		t.Fatal(err)
	}
	before, _ := b.Result()
	txBefore := before.Transponders()

	added, err := b.GrowDemand("ab", 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) == 0 {
		t.Fatal("no wavelengths added")
	}
	after, _ := b.Result()
	if after.Transponders() != txBefore+len(added) {
		t.Errorf("transponders = %d", after.Transponders())
	}
	if _, err := b.GrowDemand("ghost", 100); err == nil {
		t.Error("growth on unknown link succeeded")
	}
}

func TestBackboneAddRemoveLink(t *testing.T) {
	b := testBackbone(t)
	if _, err := b.Plan(); err != nil {
		t.Fatal(err)
	}
	added, err := b.AddLink(topology.IPLink{ID: "ad", A: "A", B: "D", DemandGbps: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(added) == 0 {
		t.Fatal("no capacity for new link")
	}
	res, _ := b.Result()
	if lp := res.PerLink["ad"]; lp.DemandGbps != 300 || lp.ProvisionedGbps < 300 {
		t.Errorf("new link plan = %+v", lp)
	}
	// Duplicate link rejected.
	if _, err := b.AddLink(topology.IPLink{ID: "ad", A: "A", B: "D", DemandGbps: 100}); err == nil {
		t.Error("duplicate AddLink succeeded")
	}

	freed, err := b.RemoveLink("ad")
	if err != nil {
		t.Fatal(err)
	}
	if freed != len(added) {
		t.Errorf("freed %d, want %d", freed, len(added))
	}
	res, _ = b.Result()
	if _, ok := res.PerLink["ad"]; ok {
		t.Error("removed link still planned")
	}
}

func TestBackboneWhatIf(t *testing.T) {
	b := testBackbone(t)
	if _, err := b.Plan(); err != nil {
		t.Fatal(err)
	}
	res, err := b.WhatIfCut("f1")
	if err != nil {
		t.Fatal(err)
	}
	if res.AffectedGbps != 600 {
		t.Errorf("affected = %d, want 600 (link ab)", res.AffectedGbps)
	}
	if res.RestoredGbps <= 0 {
		t.Error("nothing restored on the detour")
	}
	// What-if must not change live state.
	live, _ := b.Result()
	capacity := 0
	for _, w := range live.Wavelengths {
		capacity += w.Mode.DataRateGbps
	}
	if capacity < 1000 {
		t.Errorf("live capacity mutated by what-if: %d", capacity)
	}
}

func TestBackbonePrecomputeRestoration(t *testing.T) {
	b := testBackbone(t)
	if _, err := b.Plan(); err != nil {
		t.Fatal(err)
	}
	res, _ := b.Result()
	_ = res
	playbook, err := b.PrecomputeRestoration(restore.SingleFiberScenarios(testOptical(t)))
	if err != nil {
		t.Fatal(err)
	}
	if len(playbook) != 4 {
		t.Errorf("playbook size = %d, want 4", len(playbook))
	}
	for id, r := range playbook {
		if r.RestoredGbps > r.AffectedGbps {
			t.Errorf("%s: restored > affected", id)
		}
	}
}

// testOptical mirrors testBackbone's optical topology for scenario
// enumeration.
func testOptical(t *testing.T) *topology.Optical {
	t.Helper()
	g := topology.New()
	for _, f := range []struct {
		id   string
		a, b topology.NodeID
		km   float64
	}{
		{"f1", "A", "B", 600}, {"f2", "A", "C", 500},
		{"f3", "C", "B", 700}, {"f4", "B", "D", 300},
	} {
		if err := g.AddFiber(f.id, f.a, f.b, f.km); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestBackboneUtilization(t *testing.T) {
	b := testBackbone(t)
	if _, err := b.Plan(); err != nil {
		t.Fatal(err)
	}
	utils, err := b.Utilization()
	if err != nil {
		t.Fatal(err)
	}
	if len(utils) != 4 {
		t.Fatalf("utilization rows = %d", len(utils))
	}
	usedSomewhere := false
	for _, u := range utils {
		if u.UsedGHz < 0 || u.UsedGHz > u.TotalGHz {
			t.Errorf("fiber %s: used %v of %v", u.FiberID, u.UsedGHz, u.TotalGHz)
		}
		if u.UsedGHz > 0 {
			usedSomewhere = true
		}
	}
	if !usedSomewhere {
		t.Error("no fiber carries spectrum")
	}
	bn, err := b.BottleneckFiber()
	if err != nil {
		t.Fatal(err)
	}
	if bn.UsedGHz == 0 {
		t.Error("bottleneck has zero usage")
	}
	head, err := b.Headroom()
	if err != nil {
		t.Fatal(err)
	}
	if head <= 1 {
		t.Errorf("headroom = %v, want > 1 on an underloaded network", head)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestHeadroomEmptyBackbone(t *testing.T) {
	// A planned backbone with zero demand has no bottleneck to divide by.
	g := testOptical(t)
	ip := &topology.IPTopology{}
	b, err := New(Config{Optical: g, IP: ip, Catalog: transponder.SVT(), Grid: spectrum.DefaultGrid()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Plan(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Headroom(); err == nil {
		t.Error("Headroom with no spectrum in use should error")
	}
	if _, err := b.PrecomputeRestoration(nil); err != nil {
		t.Errorf("empty playbook precompute: %v", err)
	}
	if _, err := b.RemoveLink("ghost"); err != nil {
		t.Errorf("removing unknown link should be a no-op, got %v", err)
	}
}
