// Package parallel is the reusable parallel-execution layer for the
// repo's embarrassingly parallel sweeps: restoration scenario sweeps
// (one independent solve per fiber-cut case, §8 / Figs. 15–16),
// plan-vs-exact cross-checks, and any future per-item fan-out.
//
// The pool is bounded (default runtime.GOMAXPROCS), honours
// context.Context cancellation, recovers per-item panics into errors,
// and places every result at its input index regardless of completion
// order — so a parallel run is byte-identical to a sequential one as
// long as the per-item function is deterministic and items are
// independent. Workers == 1 bypasses the pool entirely and runs the
// items inline, keeping small instances and tests on the exact
// sequential code path.
//
// Concurrency contract for callers: the per-item function receives only
// its index (and the context); any shared inputs it captures must be
// treated as read-only for the duration of the run, and any mutable
// state (allocators, solver models, result accumulators) must be
// per-item. See DESIGN.md §3 for the repo-wide contract.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Workers resolves a worker-count option: n > 0 is used as-is, anything
// else (0 or negative) defaults to runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError is a panic recovered from a worker, converted into an
// ordinary per-item error so one bad item cannot take down a sweep.
type PanicError struct {
	// Value is the value passed to panic.
	Value interface{}
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v", e.Value)
}

// Map runs fn for every index in [0, n) on up to workers goroutines and
// returns the results and errors, both indexed by input position.
// Exactly one of results[i]/errs[i] is meaningful per item: errs[i] is
// nil on success. A nil ctx means context.Background(). Once ctx is
// cancelled, undispatched items are marked with ctx.Err() and in-flight
// items run to completion.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, []error) {
	results := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		results[i], errs[i] = fn(ctx, i)
	}
	if w == 1 {
		// Sequential path: no goroutines, identical to a plain loop.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			runOne(i)
		}
		return results, errs
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			// Only the dispatcher ever touches an undispatched index.
			errs[i] = ctx.Err()
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()
	return results, errs
}

// ForEach is Map for per-item functions with no result value.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) []error {
	_, errs := Map(ctx, workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return errs
}

// First returns the first non-nil error in errs, or nil.
func First(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
