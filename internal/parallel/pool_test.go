package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolBound: at most Cap tasks run concurrently, and Run gives
// backpressure (blocks) rather than queueing unboundedly.
func TestPoolBound(t *testing.T) {
	p := NewPool(3)
	if p.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", p.Cap())
	}
	var cur, peak, done atomic.Int64
	release := make(chan struct{})
	// Run blocks once the slots fill, so submission must come from its
	// own goroutine — that blocking is exactly the backpressure under
	// test.
	submitted := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if err := p.Run(func() {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				<-release
				cur.Add(-1)
				done.Add(1)
			}); err != nil {
				submitted <- err
				return
			}
		}
		submitted <- nil
	}()
	// Let the pool saturate before opening the gate.
	for cur.Load() < 3 {
		runtime.Gosched()
	}
	close(release)
	if err := <-submitted; err != nil {
		t.Fatalf("Run: %v", err)
	}
	p.Close()
	p.Wait()
	if got := peak.Load(); got > 3 {
		t.Errorf("peak concurrency %d exceeds pool bound 3", got)
	}
	if got := done.Load(); got != 20 {
		t.Errorf("completed %d tasks, want 20", got)
	}
}

// TestPoolCloseStopsAdmission: Run after Close fails without executing,
// and Wait joins the tasks admitted before Close.
func TestPoolCloseStopsAdmission(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	if err := p.Run(func() { defer wg.Done(); ran.Add(1) }); err != nil {
		t.Fatalf("Run before Close: %v", err)
	}
	wg.Wait()
	p.Close()
	p.Close() // idempotent
	if err := p.Run(func() { ran.Add(1) }); err != ErrPoolClosed {
		t.Fatalf("Run after Close = %v, want ErrPoolClosed", err)
	}
	p.Wait()
	if got := ran.Load(); got != 1 {
		t.Errorf("ran %d tasks, want 1 (post-Close task must not execute)", got)
	}
}

// TestPoolPanicReleasesSlot: a panicking task neither crashes the
// process nor leaks its slot — the pool keeps serving at full capacity.
func TestPoolPanicReleasesSlot(t *testing.T) {
	p := NewPool(1)
	for i := 0; i < 3; i++ {
		if err := p.Run(func() { panic("boom") }); err != nil {
			t.Fatalf("Run(%d): %v", i, err)
		}
	}
	var ok atomic.Bool
	if err := p.Run(func() { ok.Store(true) }); err != nil {
		t.Fatalf("Run after panics: %v", err)
	}
	p.Close()
	p.Wait()
	if !ok.Load() {
		t.Error("task after panicking tasks did not run")
	}
}
