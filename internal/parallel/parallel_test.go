package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestMapDeterministicOrdering(t *testing.T) {
	// Results must land at their input index for every worker count,
	// even when completion order is scrambled.
	const n = 64
	for _, workers := range []int{1, 2, 4, 16, 0} {
		results, errs := Map(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
			if i%3 == 0 {
				time.Sleep(time.Duration(i%5) * time.Millisecond)
			}
			return i * i, nil
		})
		if err := First(errs); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range results {
			if r != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestMapPerItemErrors(t *testing.T) {
	sentinel := errors.New("boom")
	results, errs := Map(context.Background(), 4, 10, func(_ context.Context, i int) (string, error) {
		if i%2 == 1 {
			return "", fmt.Errorf("item %d: %w", i, sentinel)
		}
		return fmt.Sprintf("ok-%d", i), nil
	})
	for i := 0; i < 10; i++ {
		if i%2 == 1 {
			if !errors.Is(errs[i], sentinel) {
				t.Errorf("errs[%d] = %v, want sentinel", i, errs[i])
			}
		} else if errs[i] != nil || results[i] != fmt.Sprintf("ok-%d", i) {
			t.Errorf("item %d: result %q err %v", i, results[i], errs[i])
		}
	}
}

func TestMapPanicRecovery(t *testing.T) {
	for _, workers := range []int{1, 4} {
		results, errs := Map(context.Background(), workers, 6, func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic("worker exploded")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(errs[3], &pe) {
			t.Fatalf("workers=%d: errs[3] = %v, want PanicError", workers, errs[3])
		}
		if pe.Value != "worker exploded" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: panic value %v, stack %d bytes", workers, pe.Value, len(pe.Stack))
		}
		for i := range results {
			if i != 3 && (errs[i] != nil || results[i] != i) {
				t.Errorf("workers=%d: item %d corrupted by sibling panic: %d, %v", workers, i, results[i], errs[i])
			}
		}
	}
}

func TestMapContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		_, errs := Map(ctx, workers, 100, func(_ context.Context, i int) (int, error) {
			if ran.Add(1) == 5 {
				cancel()
			}
			return i, nil
		})
		cancel()
		cancelled := 0
		for _, err := range errs {
			if errors.Is(err, context.Canceled) {
				cancelled++
			}
		}
		if cancelled == 0 {
			t.Errorf("workers=%d: no items marked cancelled", workers)
		}
		if int(ran.Load())+cancelled < 100 {
			t.Errorf("workers=%d: ran %d + cancelled %d < 100", workers, ran.Load(), cancelled)
		}
	}
}

func TestMapEmptyAndNilContext(t *testing.T) {
	results, errs := Map[int](nil, 4, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if len(results) != 0 || len(errs) != 0 {
		t.Errorf("empty input returned %d results, %d errs", len(results), len(errs))
	}
	// nil ctx with real work must not crash.
	r, e := Map[int](nil, 2, 3, func(_ context.Context, i int) (int, error) { return i + 1, nil })
	if err := First(e); err != nil {
		t.Fatal(err)
	}
	if r[0] != 1 || r[1] != 2 || r[2] != 3 {
		t.Errorf("results = %v", r)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	errs := ForEach(context.Background(), 0, 50, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	})
	if err := First(errs); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 49*50/2 {
		t.Errorf("sum = %d, want %d", sum.Load(), 49*50/2)
	}
}

func TestFirst(t *testing.T) {
	if First(nil) != nil {
		t.Error("First(nil) non-nil")
	}
	if First([]error{nil, nil}) != nil {
		t.Error("First all-nil non-nil")
	}
	e := errors.New("x")
	if First([]error{nil, e, errors.New("y")}) != e {
		t.Error("First skipped the first error")
	}
}
