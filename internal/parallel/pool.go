package parallel

import (
	"errors"
	"sync"
)

// ErrPoolClosed is returned by Pool.Run after Close: the pool no longer
// admits work.
var ErrPoolClosed = errors.New("parallel: pool closed")

// Pool is a persistent bounded worker pool for long-running services.
// Map and friends are batch-shaped — they fan one slice out and join —
// whereas a service admits independent tasks over its whole lifetime and
// needs one shared concurrency bound across all of them (e.g. every
// tenant's solver jobs drawing from the same CPU budget). Run blocks
// until a worker slot is free, which gives callers natural backpressure
// to build admission control on.
//
// The zero Pool is not usable; construct with NewPool. Close-then-Wait
// is the shutdown sequence: Close stops admission, Wait returns once
// every admitted task has finished.
type Pool struct {
	slots chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool builds a pool running at most workers tasks concurrently
// (workers ≤ 0 defaults to GOMAXPROCS, as everywhere in this package).
func NewPool(workers int) *Pool {
	return &Pool{slots: make(chan struct{}, Workers(workers))}
}

// Cap reports the pool's concurrency bound.
func (p *Pool) Cap() int { return cap(p.slots) }

// Run blocks until a worker slot is free, then executes fn on a new
// goroutine and returns nil. A panic in fn is recovered and swallowed —
// fn must report its own failures through its own channels — so one bad
// task cannot leak the slot or crash the process. After Close, Run
// returns ErrPoolClosed without executing fn.
func (p *Pool) Run(fn func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	// Reserve before releasing the lock so Close/Wait observe the task.
	p.wg.Add(1)
	p.mu.Unlock()

	p.slots <- struct{}{}
	go func() {
		defer func() {
			recover()
			<-p.slots
			p.wg.Done()
		}()
		fn()
	}()
	return nil
}

// Close stops admission: subsequent Run calls fail with ErrPoolClosed.
// Tasks already admitted keep running; use Wait to join them. Close is
// idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
}

// Wait blocks until every admitted task has finished. Callers must
// Close first if they need the count to stop growing.
func (p *Pool) Wait() { p.wg.Wait() }
