package chaos

import (
	"fmt"
	"time"

	"flexwan/internal/controller"
	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/phy"
	"flexwan/internal/plan"
	"flexwan/internal/spectrum"
	"flexwan/internal/telemetry"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
	"flexwan/internal/workload"
)

// Options tunes testbed construction.
type Options struct {
	// SparesPerSite adds headroom transponders beyond what the plan
	// needs (default 2).
	SparesPerSite int
	// CollectInterval is the telemetry polling period (default 25ms —
	// drills want sub-second detection without waiting on the paper's
	// one-second production granularity).
	CollectInterval time.Duration
	// K is the candidate-path count for planning and restoration
	// (default 3).
	K int
	// Dial overrides the controller's session timeouts. Drills shorten
	// CallTimeout (default here 250ms) so dropped RPCs surface as
	// retries quickly instead of hanging for the production 5s.
	Dial netconf.DialOptions
	// Retry overrides the controller's per-RPC retry policy.
	Retry *controller.RetryPolicy
	// PushWorkers bounds the controller's config-push fan-out: 0 (the
	// default) pushes every device pipeline concurrently, 1 is the
	// legacy serial path (the ablation baseline), n > 1 a bounded pool.
	// Worker count never changes a drill's event log — each device sees
	// one batched RPC per push phase regardless of scheduling.
	PushWorkers int
	// ConfigStore, when non-nil, is attached to the controller before
	// the plan is applied, so the testbed's Apply and every drill
	// restoration leave audit versions in it — the service wires one
	// shared store across drill testbeds this way.
	ConfigStore controller.ConfigStore
	// Actor names the audit identity recorded on config versions (only
	// meaningful with ConfigStore; default "controller").
	Actor string
	// Logf receives controller log lines (nil silences them).
	Logf func(format string, args ...interface{})
}

// Testbed is a fully deployed control plane on loopback TCP: fabric,
// device agents, controller with the plan applied, and a telemetry
// collector wired to every transponder and amplifier.
type Testbed struct {
	Net       workload.Network
	Grid      spectrum.Grid
	K         int
	Fabric    *device.Fabric
	Ctrl      *controller.Controller
	Plan      *plan.Result
	Store     *telemetry.Store
	Collector *telemetry.Collector

	// Transponders indexes the transponder agents by device ID — the
	// crash/restart handles.
	Transponders map[string]*device.Transponder

	servers map[string]*netconf.Server
	closers []func()
}

// NewTestbed deploys the network as live agents and applies the plan.
// The collector is built but not started; Run starts it.
func NewTestbed(n workload.Network, opts Options) (*Testbed, error) {
	grid := spectrum.DefaultGrid()
	k := opts.K
	if k <= 0 {
		k = 3
	}
	fabric := device.NewFabric(phy.DefaultLink())
	for _, f := range n.Optical.Fibers() {
		if err := fabric.AddFiber(f.ID, f.LengthKm); err != nil {
			return nil, err
		}
	}
	ctrl, err := controller.New(controller.Config{
		Optical: n.Optical, IP: n.IP, Catalog: transponder.SVT(), Grid: grid, K: k,
		Logf: opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	dial := opts.Dial
	if dial.DialTimeout == 0 {
		dial.DialTimeout = 2 * time.Second
	}
	if dial.CallTimeout == 0 {
		dial.CallTimeout = 250 * time.Millisecond
	}
	ctrl.DevMgr().SetDialOptions(dial)
	if opts.Retry != nil {
		ctrl.DevMgr().SetRetryPolicy(*opts.Retry)
	}
	ctrl.SetPushWorkers(opts.PushWorkers)
	if opts.ConfigStore != nil {
		ctrl.SetConfigStore(opts.ConfigStore)
	}
	if opts.Actor != "" {
		ctrl.SetActor(opts.Actor)
	}

	tb := &Testbed{
		Net: n, Grid: grid, K: k, Fabric: fabric, Ctrl: ctrl,
		Transponders: make(map[string]*device.Transponder),
		servers:      make(map[string]*netconf.Server),
	}
	tb.closers = append(tb.closers, ctrl.Close)

	res, err := ctrl.PlanNetwork()
	if err != nil {
		tb.Close()
		return nil, err
	}
	if !res.Feasible() {
		tb.Close()
		return nil, fmt.Errorf("chaos: plan infeasible, unserved %v", res.Unserved)
	}
	tb.Plan = res

	// Size the per-site transponder pools from the plan, plus spares.
	spares := opts.SparesPerSite
	if spares <= 0 {
		spares = 2
	}
	need := map[string]int{}
	for _, w := range res.Wavelengths {
		need[string(w.Path.Src())]++
		need[string(w.Path.Dst())]++
	}
	var sources []telemetry.Source
	addSource := func(desc devmodel.Descriptor) error {
		client, err := netconf.Dial(desc.Address)
		if err != nil {
			return err
		}
		tb.closers = append(tb.closers, func() { _ = client.Close() })
		sources = append(sources, telemetry.Source{Desc: desc, Client: client})
		return nil
	}
	for _, site := range n.Optical.Nodes() {
		count := need[string(site)] + spares
		for i := 0; i < count; i++ {
			desc := devmodel.Descriptor{
				ID: fmt.Sprintf("tx-%s-%02d", site, i), Class: devmodel.ClassTransponder,
				Vendor: "vendorA", Address: "pending", Site: string(site),
			}
			agent := device.NewTransponder(desc, grid, transponder.SVT(), fabric)
			addr, err := agent.Start("127.0.0.1:0")
			if err != nil {
				tb.Close()
				return nil, err
			}
			tb.closers = append(tb.closers, agent.Close)
			desc.Address = addr
			if err := ctrl.DevMgr().Register(desc); err != nil {
				tb.Close()
				return nil, err
			}
			tb.Transponders[desc.ID] = agent
			tb.servers[desc.ID] = agent.Server()
			if err := addSource(desc); err != nil {
				tb.Close()
				return nil, err
			}
		}
	}
	for _, f := range n.Optical.Fibers() {
		wdesc := devmodel.Descriptor{
			ID: "wss-" + f.ID, Class: devmodel.ClassWSS,
			Vendor: "vendorB", Address: "pending", Site: string(f.A), Fiber: f.ID,
		}
		w := device.NewWSS(wdesc, grid)
		addr, err := w.Start("127.0.0.1:0")
		if err != nil {
			tb.Close()
			return nil, err
		}
		tb.closers = append(tb.closers, w.Close)
		wdesc.Address = addr
		if err := ctrl.DevMgr().Register(wdesc); err != nil {
			tb.Close()
			return nil, err
		}
		tb.servers[wdesc.ID] = w.Server()

		// One amplifier per fiber: the localized LOS detector the
		// collector turns into fiber-cut events.
		adesc := devmodel.Descriptor{
			ID: "amp-" + f.ID, Class: devmodel.ClassAmplifier,
			Vendor: "vendorC", Address: "pending", Site: string(f.A), Fiber: f.ID,
		}
		amp := device.NewAmplifier(adesc, fabric, f.ID)
		aaddr, err := amp.Start("127.0.0.1:0")
		if err != nil {
			tb.Close()
			return nil, err
		}
		tb.closers = append(tb.closers, amp.Close)
		adesc.Address = aaddr
		tb.servers[adesc.ID] = amp.Server()
		if err := addSource(adesc); err != nil {
			tb.Close()
			return nil, err
		}
	}

	if err := ctrl.Apply(res); err != nil {
		tb.Close()
		return nil, err
	}

	interval := opts.CollectInterval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	tb.Store = telemetry.NewStore(4096)
	tb.Collector = telemetry.NewCollector(tb.Store, interval, sources)
	tb.Collector.RedialInterval = interval
	return tb, nil
}

// BindInjector installs the injector on every device server.
func (tb *Testbed) BindInjector(in *Injector) {
	for id, srv := range tb.servers {
		in.Bind(id, srv)
	}
}

// Close stops the collector and tears everything down.
func (tb *Testbed) Close() {
	if tb.Collector != nil {
		tb.Collector.Stop()
	}
	for i := len(tb.closers) - 1; i >= 0; i-- {
		tb.closers[i]()
	}
	tb.closers = nil
}

// RingNetwork builds an n-node ring with one IP link per adjacency —
// the smallest topology with restoration diversity: every pair has a
// second, long-way-around path for the retuned wavelengths.
func RingNetwork(nodes int, spacingKm float64, demandGbps int) workload.Network {
	if nodes < 3 {
		nodes = 3
	}
	g := topology.New()
	ip := &topology.IPTopology{}
	name := func(i int) topology.NodeID {
		return topology.NodeID(fmt.Sprintf("r%02d", i%nodes))
	}
	for i := 0; i < nodes; i++ {
		g.AddNode(name(i))
	}
	for i := 0; i < nodes; i++ {
		if err := g.AddFiber(fmt.Sprintf("rfib%02d", i), name(i), name(i+1), spacingKm); err != nil {
			panic(err)
		}
		if err := ip.AddLink(topology.IPLink{
			ID: fmt.Sprintf("rl%02d", i), A: name(i), B: name(i + 1),
			DemandGbps: demandGbps,
		}); err != nil {
			panic(err)
		}
	}
	return workload.Network{Name: fmt.Sprintf("ring%d", nodes), Optical: g, IP: ip}
}
