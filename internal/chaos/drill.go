package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"flexwan/internal/controller"
	"flexwan/internal/restore"
	"flexwan/internal/transponder"
)

// Scenario scripts one recovery drill: an optional telemetry flap, a
// set of transponder crashes, then a fiber cut handled by the live
// controller loop under injected RPC faults, followed by restarts and
// reconciliation.
type Scenario struct {
	Name string
	// Seed drives every fault decision. Same seed, same event log.
	Seed   int64
	Faults FaultConfig
	// CutFiber is the fiber to cut; empty picks the fiber carrying the
	// most provisioned Gbps (lexicographically first on ties).
	CutFiber string
	// CrashTransponders crashes this many transponders carrying
	// channels through the cut fiber before the cut — they stay dark
	// through the restoration push (forcing the degraded path) and are
	// restarted afterwards for Repair to reconverge.
	CrashTransponders int
	// FlapFiber, when set, cuts and immediately repairs this fiber
	// before the main event: the controller restores it, then the
	// los-clear alarm clears the down mark. Exercises detection
	// hysteresis without polluting the main cut's solve.
	FlapFiber string
	// DetectTimeout bounds each wait for a recovery report (default 30s).
	DetectTimeout time.Duration
	// RepairAttempts bounds the post-restart reconciliation loop
	// (default 20, 50ms apart).
	RepairAttempts int
}

// Report is one drill's scorecard — the BENCH_recovery.json record.
// Latencies live here and only here; the event log stays wall-clock
// free so it can be byte-compared across runs.
type Report struct {
	Name    string `json:"name"`
	Network string `json:"network"`
	Seed    int64  `json:"seed"`
	Fiber   string `json:"fiber"`

	// PushWorkers is the controller's configured push fan-out for this
	// run (0 = one in-flight pipeline per device, 1 = legacy serial) —
	// the ablation axis BENCH_recovery.json records.
	PushWorkers int `json:"push_workers"`

	DetectMs float64 `json:"detect_ms"`
	SolveMs  float64 `json:"solve_ms"`
	PushMs   float64 `json:"push_ms"`
	// PushTxMs and PushWSSMs split the push between the transponder
	// fan-out and the WSS fan-out.
	PushTxMs  float64 `json:"push_tx_ms"`
	PushWSSMs float64 `json:"push_wss_ms"`
	TotalMs   float64 `json:"total_ms"`

	AffectedGbps int  `json:"affected_gbps"`
	RestoredGbps int  `json:"restored_gbps"`
	OracleGbps   int  `json:"oracle_gbps"`
	OracleMatch  bool `json:"oracle_match"`
	Playbook     bool `json:"playbook"`

	Crashed         []string `json:"crashed,omitempty"`
	SkippedDevices  []string `json:"skipped_devices,omitempty"`
	PendingChannels []string `json:"pending_channels,omitempty"`
	FaultsInjected  int      `json:"faults_injected"`
	RepairActions   int      `json:"repair_actions"`
	AuditClean      bool     `json:"audit_clean"`

	Events  int    `json:"events"`
	LogHash string `json:"log_hash"`
}

// Run executes the scenario against the testbed and returns the
// scorecard plus the event log. The testbed is consumed: a drill cuts
// fibers and moves channels, so build a fresh one per scenario.
func Run(tb *Testbed, sc Scenario) (*Report, *Log, error) {
	log := NewLog()
	inj := NewInjector(sc.Seed, sc.Faults, log)
	tb.BindInjector(inj)

	detectTimeout := sc.DetectTimeout
	if detectTimeout <= 0 {
		detectTimeout = 30 * time.Second
	}

	// Start the closed loop: collector → WatchContext → restoration.
	ctx, cancel := context.WithCancel(context.Background())
	reports := make(chan *controller.RestoreReport, 16)
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		tb.Ctrl.WatchContext(ctx, tb.Collector.Events(), func(rep *controller.RestoreReport) {
			reports <- rep
		})
	}()
	tb.Collector.Run()
	defer func() {
		cancel()
		watcher.Wait()
	}()

	// Phase 0 — telemetry flap: a cut that heals. The controller
	// restores it (reversion is a maintenance action, not a reflex) and
	// the los-clear must erase the down mark so the real cut's solve
	// sees exactly one failure.
	if sc.FlapFiber != "" {
		log.Step("flap", sc.FlapFiber)
		tb.Fabric.Cut(sc.FlapFiber)
		rep, err := awaitReport(reports, "fiber-cut", sc.FlapFiber, detectTimeout)
		if err != nil {
			return nil, nil, err
		}
		log.Outcome("flap-restored", fmt.Sprintf("%s gbps=%d/%d",
			sc.FlapFiber, rep.Result.RestoredGbps, rep.Result.AffectedGbps))
		tb.Fabric.Repair(sc.FlapFiber)
		if _, err := awaitReport(reports, "fiber-restored", sc.FlapFiber, detectTimeout); err != nil {
			return nil, nil, err
		}
		log.Outcome("flap-cleared", sc.FlapFiber)
	}

	fiber := sc.CutFiber
	if fiber == "" {
		fiber = busiestFiber(tb)
	}
	if fiber == "" {
		return nil, nil, fmt.Errorf("chaos: no live channels to cut")
	}

	// Phase 1 — crash transponders carrying traffic through the fiber.
	// Pinning crashes before the cut (and restarts after the report)
	// makes the set of devices the degraded push skips a function of
	// the scenario, not of scheduling.
	crashed := pickCrashTargets(tb, fiber, sc.CrashTransponders)
	for _, id := range crashed {
		log.Step("crash", id)
		tb.Transponders[id].Crash()
	}

	// Snapshot the live plan: the offline oracle must solve the same
	// instance the controller is about to.
	base := tb.Ctrl.CurrentPlan()

	// Phase 2 — the main event, under fire.
	inj.Arm()
	log.Step("cut", fiber)
	cutAt := time.Now()
	tb.Fabric.Cut(fiber)
	rep, err := awaitReport(reports, "fiber-cut", fiber, detectTimeout)
	if err != nil {
		return nil, nil, err
	}
	total := time.Since(cutAt)
	inj.Disarm()
	if rep.Result == nil {
		return nil, nil, fmt.Errorf("chaos: fiber-cut report for %s carries no result", fiber)
	}
	log.Outcome("restored", fmt.Sprintf("%s gbps=%d/%d channels=%d",
		fiber, rep.Result.RestoredGbps, rep.Result.AffectedGbps, len(rep.Result.Restored)))
	if rep.Degraded() {
		log.Outcome("degraded", strings.Join(rep.SkippedDevices, ","))
	}
	if len(rep.PendingChannels) > 0 {
		pending := append([]string(nil), rep.PendingChannels...)
		sort.Strings(pending)
		log.Outcome("pending", strings.Join(pending, ","))
	}

	// Phase 3 — restart the crashed hardware and reconcile. Repair
	// re-pushes the recorded intent (including channels the degraded
	// push left pending) until the audit is clean.
	for _, id := range crashed {
		log.Step("restart", id)
		if err := tb.Transponders[id].Restart(); err != nil {
			return nil, nil, fmt.Errorf("chaos: restarting %s: %w", id, err)
		}
	}
	attempts := sc.RepairAttempts
	if attempts <= 0 {
		attempts = 20
	}
	repairActions, auditClean := 0, false
	for i := 0; i < attempts; i++ {
		actions, err := tb.Ctrl.Repair()
		repairActions += len(actions)
		if err == nil {
			if audit, aerr := tb.Ctrl.Audit(); aerr == nil && audit.Clean() {
				auditClean = true
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	log.Outcome("audit", fmt.Sprintf("clean=%v", auditClean))

	// Phase 4 — score against the offline oracle on the same instance.
	oracle, err := restore.Solve(restore.Problem{
		Optical: tb.Net.Optical, IP: tb.Net.IP, Catalog: transponder.SVT(), Grid: tb.Grid,
		Base:     base,
		Scenario: restore.Scenario{ID: "oracle-" + fiber, CutFibers: []string{fiber}},
		K:        tb.K,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: oracle solve: %w", err)
	}
	match := oracle.RestoredGbps == rep.Result.RestoredGbps
	log.Outcome("oracle", fmt.Sprintf("gbps=%d match=%v", oracle.RestoredGbps, match))

	out := &Report{
		Name:            sc.Name,
		Network:         tb.Net.Name,
		Seed:            sc.Seed,
		Fiber:           fiber,
		PushWorkers:     tb.Ctrl.PushWorkers(),
		DetectMs:        ms(rep.Event.Time.Sub(cutAt)),
		SolveMs:         ms(rep.SolveTime),
		PushMs:          ms(rep.PushTime),
		PushTxMs:        ms(rep.PushTxTime),
		PushWSSMs:       ms(rep.PushWSSTime),
		TotalMs:         ms(total),
		AffectedGbps:    rep.Result.AffectedGbps,
		RestoredGbps:    rep.Result.RestoredGbps,
		OracleGbps:      oracle.RestoredGbps,
		OracleMatch:     match,
		Playbook:        rep.Playbook,
		Crashed:         crashed,
		SkippedDevices:  rep.SkippedDevices,
		PendingChannels: rep.PendingChannels,
		FaultsInjected:  inj.Injections(),
		RepairActions:   repairActions,
		AuditClean:      auditClean,
		Events:          log.Len(),
		LogHash:         log.Hash(),
	}
	return out, log, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// awaitReport waits for the recovery report matching (kind, fiber),
// discarding unrelated reports.
func awaitReport(reports <-chan *controller.RestoreReport, kind, fiber string, timeout time.Duration) (*controller.RestoreReport, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case rep := <-reports:
			if rep.Event.Kind == kind && rep.Event.Fiber == fiber {
				return rep, nil
			}
		case <-deadline.C:
			return nil, fmt.Errorf("chaos: no %s report for %s within %v", kind, fiber, timeout)
		}
	}
}

// busiestFiber returns the fiber carrying the most live Gbps,
// tie-broken lexicographically.
func busiestFiber(tb *Testbed) string {
	load := map[string]int{}
	for _, ch := range tb.Ctrl.LiveChannels() {
		for _, f := range ch.Wavelength.Path.Fibers {
			load[f] += ch.Wavelength.Mode.DataRateGbps
		}
	}
	best, bestLoad := "", -1
	for f, g := range load {
		if g > bestLoad || (g == bestLoad && f < best) {
			best, bestLoad = f, g
		}
	}
	return best
}

// pickCrashTargets chooses up to n transponders that carry channels
// through the fiber, in channel-name order (A end before B end) — a
// deterministic pick of hardware the restoration must touch.
func pickCrashTargets(tb *Testbed, fiber string, n int) []string {
	if n <= 0 {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	for _, ch := range tb.Ctrl.LiveChannels() {
		onFiber := false
		for _, f := range ch.Wavelength.Path.Fibers {
			if f == fiber {
				onFiber = true
				break
			}
		}
		if !onFiber {
			continue
		}
		for _, id := range []string{ch.TxA, ch.TxB} {
			if len(out) >= n {
				return out
			}
			if id != "" && !seen[id] && tb.Transponders[id] != nil {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}
