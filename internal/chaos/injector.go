package chaos

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"flexwan/internal/device"
	"flexwan/internal/netconf"
)

// FaultConfig sets per-RPC fault probabilities. Each armed RPC rolls the
// fault kinds in a fixed priority order (reset, drop-request,
// drop-reply, commit-reject, delay); at most one fault fires per RPC.
type FaultConfig struct {
	// ResetProb closes the management connection mid-RPC.
	ResetProb float64
	// DropRequestProb discards the RPC before execution: the device
	// never sees it and the controller times out.
	DropRequestProb float64
	// DropReplyProb executes the RPC but suppresses the reply — the
	// nasty case, where a retried commit must be idempotent.
	DropReplyProb float64
	// CommitRejectProb NACKs candidate-datastore ops (edit-candidate,
	// commit) with an injected error, exercising the atomic push's
	// discard-all path. NACKs are intentional device answers, so the
	// controller must not retry them.
	CommitRejectProb float64
	// DelayProb stalls the RPC by Delay before handling it.
	DelayProb float64
	// Delay is the injected stall (default 10ms). Keep it under the
	// client's call timeout or a delay degenerates into a drop.
	Delay time.Duration
	// Ops restricts injection to these RPC operations; nil means the
	// configuration-plane default (get-config, edit-config,
	// edit-config-batch, edit-candidate, commit, discard). Telemetry's
	// get-state is deliberately outside the default set: poll counts
	// vary with timing, and faulting them would make the event log
	// schedule-dependent. The hello is outside it too — redial counts
	// depend on which retries the faults above force.
	Ops []string
}

func defaultFaultOps() []string {
	return []string{
		netconf.OpGetConfig, netconf.OpEditConfig, netconf.OpEditConfigBatch,
		device.OpEditCandidate, device.OpCommit, device.OpDiscard,
	}
}

// Injector decides, per RPC, whether to inject a fault. Decisions are
// pure functions of (seed, device, op, sequence number), so a drill
// replayed with the same seed injects the same faults at the same
// points in each device's RPC stream regardless of scheduling.
type Injector struct {
	seed int64
	cfg  FaultConfig
	log  *Log
	ops  map[string]bool

	mu    sync.Mutex
	armed bool
	seq   map[seqKey]int
	count int
}

type seqKey struct{ device, op string }

// NewInjector builds an injector for the seed. Injected faults are
// recorded into log (which may be nil).
func NewInjector(seed int64, cfg FaultConfig, log *Log) *Injector {
	ops := cfg.Ops
	if ops == nil {
		ops = defaultFaultOps()
	}
	m := make(map[string]bool, len(ops))
	for _, op := range ops {
		m[op] = true
	}
	return &Injector{seed: seed, cfg: cfg, log: log, ops: m, seq: make(map[seqKey]int)}
}

// Arm starts injecting. Sequence counters keep advancing across
// arm/disarm cycles, so a drill's phases never reuse a decision point.
func (in *Injector) Arm() {
	in.mu.Lock()
	in.armed = true
	in.mu.Unlock()
}

// Disarm stops injecting; the bound servers handle RPCs normally.
func (in *Injector) Disarm() {
	in.mu.Lock()
	in.armed = false
	in.mu.Unlock()
}

// Injections returns how many faults have fired.
func (in *Injector) Injections() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.count
}

// Bind installs the injector on a device's management server. All of a
// testbed's servers share one injector, keyed by device ID.
func (in *Injector) Bind(deviceID string, srv *netconf.Server) {
	srv.SetInterceptor(func(op string) netconf.FaultDecision {
		return in.decide(deviceID, op)
	})
}

// hash01 maps (seed, device, op, seq, kind) to a uniform value in
// [0, 1) — the schedule-independent replacement for a shared RNG.
func hash01(seed int64, deviceID, op string, seq int, kind string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d|%s", seed, deviceID, op, seq, kind)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

func (in *Injector) decide(deviceID, op string) netconf.FaultDecision {
	in.mu.Lock()
	if !in.armed || !in.ops[op] {
		in.mu.Unlock()
		return netconf.FaultDecision{}
	}
	k := seqKey{deviceID, op}
	seq := in.seq[k]
	in.seq[k] = seq + 1
	in.mu.Unlock()

	roll := func(kind string) float64 { return hash01(in.seed, deviceID, op, seq, kind) }
	var d netconf.FaultDecision
	var kind string
	switch {
	case roll("reset") < in.cfg.ResetProb:
		d.Fault, kind = netconf.FaultReset, "reset"
	case roll("drop-request") < in.cfg.DropRequestProb:
		d.Fault, kind = netconf.FaultDropRequest, "drop-request"
	case roll("drop-reply") < in.cfg.DropReplyProb:
		d.Fault, kind = netconf.FaultDropReply, "drop-reply"
	case (op == device.OpEditCandidate || op == device.OpCommit) &&
		roll("commit-reject") < in.cfg.CommitRejectProb:
		d.Err, kind = "chaos: injected commit rejection", "commit-reject"
	case roll("delay") < in.cfg.DelayProb:
		d.Delay, kind = in.cfg.Delay, "delay"
		if d.Delay <= 0 {
			d.Delay = 10 * time.Millisecond
		}
	default:
		return netconf.FaultDecision{}
	}
	in.mu.Lock()
	in.count++
	in.mu.Unlock()
	if in.log != nil {
		in.log.fault(Event{Kind: "fault", Device: deviceID, Op: op, Seq: seq, Fault: kind})
	}
	return d
}
