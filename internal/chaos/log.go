// Package chaos is FlexWAN's fault-injection and recovery-drill engine:
// it wraps the NETCONF transport and the simulated device agents with
// scriptable faults — RPC delay/drop/connection-reset, device crash and
// restart, partial-commit rejection, telemetry flaps, timed fiber cuts —
// and drives the live controller loop (collector → Watch →
// HandleFiberCut → push) through scenario timelines, scoring recovery
// against the offline restoration oracle.
//
// The engine carries the same determinism contract as the solvers: one
// seed produces a byte-identical drill event log at any worker count,
// under -race. Real TCP and goroutine scheduling make *wall-clock*
// nondeterministic, so the contract is enforced structurally: fault
// decisions are pure hashes of (seed, device, op, sequence) rather than
// draws from a shared RNG; the injector only arms configuration-plane
// ops, whose issue order the controller serializes, never telemetry
// polls, whose count varies with timing; and the canonical log orders
// scripted steps by timeline position and injected faults by (device,
// op, seq), not by arrival. Latencies are reported in BENCH_recovery
// records only — they never enter the log.
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"
)

// Event is one entry of a drill's event log.
type Event struct {
	// Kind is "step" (a scripted timeline action), "fault" (an injected
	// transport fault) or "outcome" (an observed recovery result).
	Kind string `json:"kind"`
	// Action labels steps and outcomes ("cut", "crash", "restored", …).
	Action string `json:"action,omitempty"`
	// Device, Op and Seq identify an injected fault: the Seq-th armed
	// RPC of that operation on that device.
	Device string `json:"device,omitempty"`
	Op     string `json:"op,omitempty"`
	Seq    int    `json:"seq"`
	// Fault names the injected fault kind.
	Fault string `json:"fault,omitempty"`
	// Detail carries the step/outcome payload (fiber ID, Gbps, …).
	Detail string `json:"detail,omitempty"`
}

// Log accumulates a drill's events. It is safe for concurrent use: the
// drill goroutine appends steps and outcomes in timeline order while
// device servers report injected faults from their session goroutines.
type Log struct {
	mu       sync.Mutex
	timeline []Event
	faults   []Event
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Step records a scripted timeline action.
func (l *Log) Step(action, detail string) {
	l.append(Event{Kind: "step", Action: action, Detail: detail})
}

// Outcome records an observed recovery result.
func (l *Log) Outcome(action, detail string) {
	l.append(Event{Kind: "outcome", Action: action, Detail: detail})
}

func (l *Log) append(e Event) {
	l.mu.Lock()
	l.timeline = append(l.timeline, e)
	l.mu.Unlock()
}

// fault records an injected fault (called from device session goroutines).
func (l *Log) fault(e Event) {
	l.mu.Lock()
	l.faults = append(l.faults, e)
	l.mu.Unlock()
}

// Canonical returns the log in its canonical order: timeline events as
// scripted, then injected faults sorted by (device, op, seq). The sort
// is what makes the log schedule-independent — faults are *decided*
// deterministically per (device, op, seq) but *observed* in whatever
// order the session goroutines run.
func (l *Log) Canonical() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.timeline)+len(l.faults))
	out = append(out, l.timeline...)
	faults := append([]Event(nil), l.faults...)
	sort.Slice(faults, func(i, j int) bool {
		a, b := faults[i], faults[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Seq < b.Seq
	})
	return append(out, faults...)
}

// Marshal renders the canonical log as JSON lines — the byte stream the
// determinism contract is checked against.
func (l *Log) Marshal() []byte {
	var buf []byte
	for _, e := range l.Canonical() {
		line, err := json.Marshal(e)
		if err != nil {
			continue // Event marshaling cannot fail; defensive only.
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	return buf
}

// Hash returns the hex SHA-256 of the marshaled canonical log.
func (l *Log) Hash() string {
	sum := sha256.Sum256(l.Marshal())
	return hex.EncodeToString(sum[:])
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.timeline) + len(l.faults)
}
