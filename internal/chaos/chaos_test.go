package chaos

import (
	"bytes"
	"testing"
	"time"

	"flexwan/internal/workload"
)

// drillOnce builds a fresh testbed for the network and runs the
// scenario on it.
func drillOnce(t *testing.T, n workload.Network, sc Scenario) (*Report, *Log) {
	t.Helper()
	tb, err := NewTestbed(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	rep, log, err := Run(tb, sc)
	if err != nil {
		t.Fatal(err)
	}
	return rep, log
}

func ringScenario(seed int64) Scenario {
	return Scenario{
		Name: "ring-drill",
		Seed: seed,
		Faults: FaultConfig{
			DropRequestProb: 0.10,
			DropReplyProb:   0.05,
			DelayProb:       0.10,
			Delay:           5 * time.Millisecond,
		},
		CrashTransponders: 1,
	}
}

// TestRingDrillRecovers runs the full closed loop on a small ring:
// detection from the amplifier alarm, live restoration under 10% RPC
// drops with a crashed transponder, restart, Repair reconvergence, and
// oracle equality.
func TestRingDrillRecovers(t *testing.T) {
	rep, log := drillOnce(t, RingNetwork(4, 100, 200), ringScenario(7))
	if rep.AffectedGbps == 0 {
		t.Fatal("drill cut a dark fiber")
	}
	if !rep.OracleMatch {
		t.Errorf("restored %d Gbps, oracle %d", rep.RestoredGbps, rep.OracleGbps)
	}
	if !rep.AuditClean {
		t.Error("audit dirty after repair")
	}
	if len(rep.Crashed) != 1 {
		t.Errorf("crashed %v, want one transponder", rep.Crashed)
	}
	if rep.LogHash != log.Hash() {
		t.Error("report hash does not match log")
	}
	if rep.DetectMs < 0 || rep.TotalMs <= 0 {
		t.Errorf("implausible latencies: %+v", rep)
	}
}

// TestDrillDeterminism is the contract test: the same seed must produce
// a byte-identical canonical event log on a fresh testbed, regardless
// of goroutine scheduling (run under -race in CI).
func TestDrillDeterminism(t *testing.T) {
	n := RingNetwork(4, 100, 200)
	sc := ringScenario(42)
	rep1, log1 := drillOnce(t, n, sc)
	rep2, log2 := drillOnce(t, n, sc)
	if !bytes.Equal(log1.Marshal(), log2.Marshal()) {
		t.Fatalf("event logs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			log1.Marshal(), log2.Marshal())
	}
	if rep1.LogHash != rep2.LogHash {
		t.Fatalf("hashes differ: %s vs %s", rep1.LogHash, rep2.LogHash)
	}
	// A different seed must (for these fault rates) shuffle the fault
	// schedule — byte-identical logs across seeds would mean the seed
	// is ignored.
	_, log3 := drillOnce(t, n, ringScenario(43))
	if bytes.Equal(log1.Marshal(), log3.Marshal()) {
		t.Error("different seeds produced identical logs")
	}
}

// TestDrillFlap exercises the telemetry-flap phase: a cut that heals
// must be restored, then cleared, and must not pollute the main cut's
// solve or the determinism contract.
func TestDrillFlap(t *testing.T) {
	n := RingNetwork(5, 80, 200)
	sc := Scenario{
		Name:      "flap-drill",
		Seed:      11,
		Faults:    FaultConfig{DropRequestProb: 0.10},
		FlapFiber: "rfib00",
		CutFiber:  "rfib02",
	}
	rep1, log1 := drillOnce(t, n, sc)
	if !rep1.OracleMatch || !rep1.AuditClean {
		t.Fatalf("flap drill failed: %+v", rep1)
	}
	_, log2 := drillOnce(t, n, sc)
	if !bytes.Equal(log1.Marshal(), log2.Marshal()) {
		t.Fatalf("flap drill not deterministic:\n%s\nvs\n%s", log1.Marshal(), log2.Marshal())
	}
}

// TestCernetAcceptanceDrill is the issue's acceptance scenario: a
// seeded CERNET drill with a fiber cut, 10% RPC drop, and one
// transponder crash/restart must complete detection → restoration →
// push, restore exactly the offline oracle's Gbps, leave the audit
// clean, and reproduce a byte-identical event log on a second run.
func TestCernetAcceptanceDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("CERNET-scale drill is slow; skipped with -short")
	}
	n := workload.Cernet(1)
	sc := Scenario{
		Name:              "cernet-cut",
		Seed:              1,
		Faults:            FaultConfig{DropRequestProb: 0.10},
		CrashTransponders: 1,
	}
	rep1, log1 := drillOnce(t, n, sc)
	if rep1.AffectedGbps == 0 {
		t.Fatal("busiest CERNET fiber carried nothing")
	}
	if !rep1.OracleMatch {
		t.Errorf("restored %d Gbps, oracle %d", rep1.RestoredGbps, rep1.OracleGbps)
	}
	if !rep1.AuditClean {
		t.Error("audit dirty after repair")
	}
	if len(rep1.Crashed) != 1 {
		t.Errorf("crashed %v, want one transponder", rep1.Crashed)
	}
	t.Logf("detect=%.1fms solve=%.1fms push=%.1fms total=%.1fms faults=%d skipped=%d",
		rep1.DetectMs, rep1.SolveMs, rep1.PushMs, rep1.TotalMs,
		rep1.FaultsInjected, len(rep1.SkippedDevices))

	rep2, log2 := drillOnce(t, n, sc)
	if !bytes.Equal(log1.Marshal(), log2.Marshal()) {
		t.Fatalf("CERNET drill not deterministic (hash %s vs %s)", rep1.LogHash, rep2.LogHash)
	}
}

// TestDrillLogIndependentOfPushWorkers is the parallel-push half of the
// determinism contract: because every device receives exactly one
// batched RPC per push phase, the seeded fault decisions (keyed by
// device, op, seq) cannot depend on scheduling — so the serial path
// (push-workers=1), a bounded pool, and the full fan-out must all
// produce byte-identical event logs and converge to a clean audit,
// under resets as well as drops.
func TestDrillLogIndependentOfPushWorkers(t *testing.T) {
	n := RingNetwork(4, 100, 200)
	sc := Scenario{
		Name: "worker-sweep",
		Seed: 42,
		Faults: FaultConfig{
			DropRequestProb: 0.10,
			DropReplyProb:   0.05,
			ResetProb:       0.05,
		},
		CrashTransponders: 1,
	}
	var base []byte
	var baseHash string
	for _, w := range []int{1, 2, 0} {
		tb, err := NewTestbed(n, Options{PushWorkers: w})
		if err != nil {
			t.Fatal(err)
		}
		rep, lg, err := Run(tb, sc)
		tb.Close()
		if err != nil {
			t.Fatalf("push-workers=%d: %v", w, err)
		}
		if rep.PushWorkers != w {
			t.Errorf("report records push-workers=%d, want %d", rep.PushWorkers, w)
		}
		if !rep.OracleMatch || !rep.AuditClean {
			t.Errorf("push-workers=%d did not converge: oracle=%v audit=%v",
				w, rep.OracleMatch, rep.AuditClean)
		}
		if base == nil {
			base, baseHash = lg.Marshal(), rep.LogHash
			continue
		}
		if !bytes.Equal(base, lg.Marshal()) {
			t.Fatalf("push-workers=%d event log diverged from serial (hash %s vs %s):\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				w, baseHash, rep.LogHash, base, w, lg.Marshal())
		}
	}
}

// TestInjectorDecisionsArePure verifies the injector's core property:
// decisions depend only on (seed, device, op, seq), not on call order.
func TestInjectorDecisionsArePure(t *testing.T) {
	cfg := FaultConfig{DropRequestProb: 0.3, ResetProb: 0.1, DelayProb: 0.2}
	a := NewInjector(99, cfg, nil)
	b := NewInjector(99, cfg, nil)
	a.Arm()
	b.Arm()
	type call struct{ dev, op string }
	calls := []call{
		{"tx-1", "edit-config"}, {"tx-1", "edit-config"}, {"wss-1", "edit-config"},
		{"tx-2", "get-config"}, {"tx-1", "edit-config"}, {"wss-1", "edit-config"},
	}
	var first []interface{}
	for _, c := range calls {
		first = append(first, a.decide(c.dev, c.op))
	}
	// Same calls, interleaved differently per device — per-(device,op)
	// sequences are preserved, so decisions must be identical.
	order := []int{3, 0, 2, 1, 5, 4}
	second := make([]interface{}, len(calls))
	for _, i := range order {
		second[i] = b.decide(calls[i].dev, calls[i].op)
	}
	for i := range calls {
		if first[i] != second[i] {
			t.Errorf("call %d: %v vs %v", i, first[i], second[i])
		}
	}
	// get-state is outside the default op set and must never be
	// faulted or advance a sequence.
	if d := a.decide("tx-1", "get-state"); d != (b.decide("tx-9", "get-state")) {
		t.Error("get-state decisions differ")
	}
}

// TestInjectorDisarmed verifies a disarmed injector is a no-op.
func TestInjectorDisarmed(t *testing.T) {
	in := NewInjector(1, FaultConfig{DropRequestProb: 1}, nil)
	for i := 0; i < 10; i++ {
		if d := in.decide("tx-1", "edit-config"); d.Fault != 0 || d.Delay != 0 || d.Err != "" {
			t.Fatalf("disarmed injector injected %+v", d)
		}
	}
	if in.Injections() != 0 {
		t.Fatal("disarmed injector counted injections")
	}
}
