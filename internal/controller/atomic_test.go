package controller

import (
	"strings"
	"testing"

	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
)

func TestApplyAtomicSuccess(t *testing.T) {
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 800})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.ApplyAtomic(res); err != nil {
		t.Fatal(err)
	}
	report, err := h.ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() || report.ChannelsChecked != len(res.Wavelengths) {
		t.Errorf("audit after atomic apply = %+v", report)
	}
	if got := h.ctrl.LiveCapacityGbps()["e1"]; got < 800 {
		t.Errorf("live capacity = %d", got)
	}
	// No residual staged documents.
	for id, tr := range h.transponders {
		if tr.HasStagedConfig() {
			t.Errorf("%s still has a staged config", id)
		}
	}
	for id, w := range h.wss {
		if w.HasStagedConfig() {
			t.Errorf("wss %s still has a staged config", id)
		}
	}
}

func TestApplyAtomicRollsBackOnVendorRejection(t *testing.T) {
	// Build the standard harness, then replace the controller's view of
	// f1's WSS with a legacy fixed-grid agent. A 500 Gbps demand on the
	// 600 km path plans as one 500G@87.5 GHz wavelength — a 7-pixel
	// passband the rigid 75 GHz vendor cannot slice — so the apply must
	// be refused and fully rolled back.
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 500})

	grid := spectrum.DefaultGrid()
	legacyDesc := devmodel.Descriptor{
		ID: "wss-legacy-f1", Class: devmodel.ClassWSS,
		Vendor: "legacy", Address: "pending", Site: "A", Fiber: "f1-legacy",
	}
	legacy := device.NewFixedGridWSS(legacyDesc, grid, 75)
	addr, err := legacy.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	legacyDesc.Address = addr

	// Swap the ring: a second controller whose "f1" WSS is the legacy
	// one. (The DevMgr maps fiber → WSS at registration; register the
	// legacy device under fiber f1 on a fresh controller.)
	ctrl2, err := New(Config{
		Optical: h.optical, IP: h.ip, Catalog: h.ctrl.cfg.Catalog, Grid: grid, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl2.Close()
	for _, src := range h.sources {
		desc := src.Desc
		if desc.Fiber == "f1" && desc.Class == devmodel.ClassWSS {
			continue // replaced by the legacy vendor
		}
		if err := ctrl2.DevMgr().Register(desc); err != nil {
			t.Fatal(err)
		}
	}
	legacyDesc.Fiber = "f1"
	if err := ctrl2.DevMgr().Register(legacyDesc); err != nil {
		t.Fatal(err)
	}

	res, err := ctrl2.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	// The 800G plan uses one 800G@112.5 GHz wavelength over f1 — a
	// passband the legacy vendor cannot slice.
	err = ctrl2.ApplyAtomic(res)
	if err == nil {
		t.Fatal("ApplyAtomic succeeded against a fixed-grid vendor")
	}
	if !strings.Contains(err.Error(), "rejected staged config") {
		t.Errorf("error = %v", err)
	}
	// Rollback: no channels, no capacity, no staged documents, all
	// transponders free again.
	if len(ctrl2.Channels()) != 0 {
		t.Errorf("channels after rollback: %v", ctrl2.Channels())
	}
	if got := ctrl2.LiveCapacityGbps()["e1"]; got != 0 {
		t.Errorf("live capacity after rollback = %d", got)
	}
	for site, want := range map[string]int{"A": 3, "B": 3, "C": 3} {
		if got := ctrl2.DevMgr().FreeTransponders(site); got != want {
			t.Errorf("site %s free transponders = %d, want %d", site, got, want)
		}
	}
	for id, tr := range h.transponders {
		if tr.HasStagedConfig() {
			t.Errorf("%s has residual staged config", id)
		}
		if tr.State().Config.Enabled {
			t.Errorf("%s was enabled despite rollback", id)
		}
	}
}

func TestApplyAtomicThenRestore(t *testing.T) {
	// The atomic path composes with the rest of the pipeline.
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.ApplyAtomic(res); err != nil {
		t.Fatal(err)
	}
	r, err := h.ctrl.HandleFiberCut("f1")
	if err != nil {
		t.Fatal(err)
	}
	if r.RestoredGbps != 400 {
		t.Errorf("restored %d", r.RestoredGbps)
	}
	report, err := h.ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Errorf("audit = %+v", report)
	}
}
