package controller

import (
	"context"
	"errors"
	"testing"
	"time"

	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/telemetry"
	"flexwan/internal/topology"
)

// TestBackoffDoublesAndCaps verifies the exponential schedule without
// jitter: doubling from the base, clamped at the cap.
func TestBackoffDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 800 * time.Millisecond}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 800 * time.Millisecond, 800 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestBackoffJitterBounds pins the jitter envelope with a deterministic
// Rand: the delay must span exactly [d·(1−J), d·(1+J)).
func TestBackoffJitterBounds(t *testing.T) {
	base := 100 * time.Millisecond
	low := RetryPolicy{BaseDelay: base, JitterFrac: 0.25, Rand: func() float64 { return 0 }}
	if got := low.Backoff(1); got != 75*time.Millisecond {
		t.Errorf("lower jitter bound = %v, want 75ms", got)
	}
	high := RetryPolicy{BaseDelay: base, JitterFrac: 0.25, Rand: func() float64 { return 0.999999 }}
	if got := high.Backoff(1); got < 124*time.Millisecond || got >= 125*time.Millisecond {
		t.Errorf("upper jitter bound = %v, want just under 125ms", got)
	}
	// Default source stays within the envelope too.
	mid := RetryPolicy{BaseDelay: base, JitterFrac: 0.25}
	for i := 0; i < 100; i++ {
		if d := mid.Backoff(1); d < 75*time.Millisecond || d >= 125*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [75ms, 125ms)", d)
		}
	}
}

// TestBackoffDefaults verifies the zero-value policy falls back to the
// documented 50ms base and 2s cap.
func TestBackoffDefaults(t *testing.T) {
	var p RetryPolicy
	if got := p.Backoff(1); got != 50*time.Millisecond {
		t.Errorf("default base = %v, want 50ms", got)
	}
	if got := p.Backoff(20); got != 2*time.Second {
		t.Errorf("default cap = %v, want 2s", got)
	}
	if p.maxAttempts() != 1 {
		t.Errorf("zero MaxAttempts means a single attempt, got %d", p.maxAttempts())
	}
}

// TestCallRetriesTransientFaults drops the first edit-config request
// with the transport's fault hook and proves DevMgr.Call rides it out:
// the retry succeeds, and the fake clock sees exactly the scheduled
// backoffs — no real sleeping.
func TestCallRetriesTransientFaults(t *testing.T) {
	h := newHarness(t, 1, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100})
	d := h.ctrl.DevMgr()
	d.SetDialOptions(netconf.DialOptions{CallTimeout: 100 * time.Millisecond})

	var slept []time.Duration
	d.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
		Sleep: func(dur time.Duration) { slept = append(slept, dur) },
	})
	// The registered session predates SetDialOptions; force a redial so
	// the shortened call timeout applies.
	if client, ok := d.Client("wss-f1"); ok {
		d.invalidate("wss-f1", client)
	}

	drops := 0
	h.wss["f1"].Server().SetInterceptor(func(op string) netconf.FaultDecision {
		if op == netconf.OpGetConfig && drops == 0 {
			drops++
			return netconf.FaultDecision{Fault: netconf.FaultDropRequest}
		}
		return netconf.FaultDecision{}
	})
	var cfg interface{}
	if err := d.Call("wss-f1", netconf.OpGetConfig, nil, &cfg); err != nil {
		t.Fatalf("Call did not recover from a dropped request: %v", err)
	}
	if len(slept) != 1 || slept[0] != 10*time.Millisecond {
		t.Errorf("backoff sleeps = %v, want [10ms]", slept)
	}
}

// TestCallDoesNotRetryNACK proves a device rejection surfaces
// immediately: retrying an intentional NACK cannot succeed.
func TestCallDoesNotRetryNACK(t *testing.T) {
	h := newHarness(t, 1, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100})
	d := h.ctrl.DevMgr()
	slept := 0
	d.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond,
		Sleep: func(time.Duration) { slept++ },
	})
	// An out-of-catalog document is NACKed by the device agent.
	bad := devmodel.TransponderConfig{
		Enabled: true, DataRateGbps: 123, SpacingGHz: 12.5,
		IntervalCount: 1, PathFibers: []string{"f1"}, Channel: "e1:1",
	}
	err := d.Call("tx-A-0", netconf.OpEditConfig, bad, nil)
	var rpcErr *netconf.RPCError
	if !errors.As(err, &rpcErr) {
		t.Fatalf("want RPCError, got %v", err)
	}
	if slept != 0 {
		t.Errorf("NACK was retried %d times", slept)
	}
}

// TestCallExhaustsAttempts verifies the failure shape when the device
// never answers: capped attempts, wrapped transient error.
func TestCallExhaustsAttempts(t *testing.T) {
	h := newHarness(t, 1, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100})
	d := h.ctrl.DevMgr()
	d.SetDialOptions(netconf.DialOptions{CallTimeout: 50 * time.Millisecond})
	slept := 0
	d.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond,
		Sleep: func(time.Duration) { slept++ },
	})
	h.wss["f1"].Server().SetInterceptor(func(op string) netconf.FaultDecision {
		if op == netconf.OpGetConfig {
			return netconf.FaultDecision{Fault: netconf.FaultDropRequest}
		}
		return netconf.FaultDecision{}
	})
	if client, ok := d.Client("wss-f1"); ok {
		d.invalidate("wss-f1", client)
	}
	var cfg interface{}
	err := d.Call("wss-f1", netconf.OpGetConfig, nil, &cfg)
	if err == nil {
		t.Fatal("Call succeeded against a black-holed device")
	}
	if !netconf.IsTransient(err) {
		t.Errorf("exhausted error should stay transient, got %v", err)
	}
	if slept != 2 {
		t.Errorf("slept %d times, want 2 (between 3 attempts)", slept)
	}
}

// TestWatchContextCancel proves the drill/operator loop shuts down on
// context cancellation without needing the events channel to close.
func TestWatchContextCancel(t *testing.T) {
	h := newHarness(t, 1, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100})
	events := make(chan telemetry.Event) // never closed, never written
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		h.ctrl.WatchContext(ctx, events, nil)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WatchContext leaked after cancel")
	}
}
