package controller

import (
	"context"
	"fmt"
	"sort"

	"flexwan/internal/netconf"
	"flexwan/internal/parallel"
)

// This file is the configuration push pipeline: the planner that
// coalesces every document destined for one device into a single
// batched RPC, and the engine that fans the per-device pipelines out
// concurrently. The restoration numbers motivated it — after PR 4 the
// CERNET drill spent ~5.1 s of a ~5.14 s recovery in the serial NETCONF
// push while detect and solve together cost ~3 ms — and the design
// keeps the chaos determinism contract: each device receives a fixed
// RPC sequence regardless of worker count, so seeded fault decisions
// (keyed by device, op, seq) are schedule-independent, and skip/error
// accounting is always reported in sorted device order.

// pushDoc is one configuration document bound for a device, tagged with
// the channel it materializes ("" for teardown and WSS documents) so the
// degraded-mode push can account skipped endpoints to pending channels.
type pushDoc struct {
	cfg     interface{}
	channel string
}

// pushPlan accumulates per-device document pipelines in insertion order.
// All documents for one device travel in a single edit-config-batch RPC
// (a lone document stays a plain edit-config), applied in order — a
// transponder's teardown-then-retune and a WSS's full passband set each
// cost one round trip.
type pushPlan struct {
	docs map[string][]pushDoc
}

func newPushPlan() *pushPlan {
	return &pushPlan{docs: make(map[string][]pushDoc)}
}

// add appends a document to the device's pipeline. channel names the
// live channel this document enables ("" otherwise).
func (p *pushPlan) add(deviceID string, cfg interface{}, channel string) {
	p.docs[deviceID] = append(p.docs[deviceID], pushDoc{cfg: cfg, channel: channel})
}

// devices returns the planned device IDs in sorted order — the
// deterministic iteration order for dispatch and error accounting.
func (p *pushPlan) devices() []string {
	out := make([]string, 0, len(p.docs))
	for id := range p.docs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// empty reports whether the plan has no documents.
func (p *pushPlan) empty() bool { return len(p.docs) == 0 }

// pendingChannels lists, sorted and deduplicated, the channels that have
// a document on any failed device — the channels whose intended
// configuration is recorded but not fully pushed.
func (p *pushPlan) pendingChannels(errs map[string]error) []string {
	seen := make(map[string]bool)
	var out []string
	for id, docs := range p.docs {
		if errs[id] == nil {
			continue
		}
		for _, doc := range docs {
			if doc.channel != "" && !seen[doc.channel] {
				seen[doc.channel] = true
				out = append(out, doc.channel)
			}
		}
	}
	sort.Strings(out)
	return out
}

// SetPushWorkers bounds the configuration push fan-out: n > 1 pushes up
// to n device pipelines concurrently, n == 1 is the legacy serial path
// (devices pushed one at a time in sorted order — the ablation baseline
// BENCH_recovery.json records), and n <= 0 (the default) fans out fully,
// one in-flight pipeline per device. Pushes are IO-bound waits on device
// RPCs, so the fan-out is not CPU-capped.
func (c *Controller) SetPushWorkers(n int) {
	c.pushWorkers.Store(int64(n))
}

// PushWorkers returns the configured push fan-out (0 = one goroutine
// per device).
func (c *Controller) PushWorkers() int {
	return int(c.pushWorkers.Load())
}

// executePush pushes every device's pipeline through the pooled,
// retrying DevMgr.Call sessions, fanning devices out over the
// internal/parallel pool (one in-flight pipeline per device). It
// returns the per-device errors (successful devices are absent).
// Results are deterministic: each device sees exactly one RPC (batch or
// single) regardless of worker count, and callers consume errors via
// the plan's sorted device order. Callers may hold c.mu — the engine
// only touches the DevMgr, which has its own locking.
func (c *Controller) executePush(p *pushPlan) map[string]error {
	devices := p.devices()
	if len(devices) == 0 {
		return nil
	}
	errs := parallel.ForEach(nil, c.readWorkers(len(devices)), len(devices), func(_ context.Context, i int) error {
		return c.pushDevice(devices[i], p.docs[devices[i]])
	})
	out := make(map[string]error)
	for i, err := range errs {
		if err != nil {
			out[devices[i]] = err
		}
	}
	return out
}

// readWorkers resolves the fan-out for n concurrent device RPCs under
// the push policy: the configured worker bound if positive, else one
// goroutine per device (the RPCs are IO-bound waits, not CPU work).
func (c *Controller) readWorkers(n int) int {
	if w := int(c.pushWorkers.Load()); w > 0 {
		return w
	}
	return n
}

// pushDevice sends one device's pipeline: a single document as a plain
// edit-config, several as one edit-config-batch.
func (c *Controller) pushDevice(deviceID string, docs []pushDoc) error {
	if len(docs) == 1 {
		return c.devmgr.Call(deviceID, netconf.OpEditConfig, docs[0].cfg, nil)
	}
	cfgs := make([]interface{}, len(docs))
	for i, d := range docs {
		cfgs[i] = d.cfg
	}
	batch, err := netconf.NewBatchEdit(cfgs...)
	if err != nil {
		return fmt.Errorf("controller: batching %d documents for %s: %w", len(docs), deviceID, err)
	}
	return c.devmgr.Call(deviceID, netconf.OpEditConfigBatch, batch, nil)
}
