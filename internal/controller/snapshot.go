package controller

import (
	"encoding/json"
	"fmt"
	"sort"

	"flexwan/internal/devmodel"
	"flexwan/internal/plan"
)

// Snapshot is the controller's durable state: everything a standby
// replica needs to take over. The paper's controller is cloud-deployed
// with multiple geo-disjoint backups (§4.4, fault tolerance); the
// snapshot is the replication payload. It is JSON-serializable.
type Snapshot struct {
	Channels   map[string]ChannelSnapshot    `json:"channels"`
	WSSConfig  map[string]devmodel.WSSConfig `json:"wss-config"`
	DownFibers []string                      `json:"down-fibers"`
	Seq        map[string]int                `json:"seq"`
}

// ChannelSnapshot is one live channel and its hardware binding.
type ChannelSnapshot struct {
	Wavelength plan.Wavelength `json:"wavelength"`
	TxA        string          `json:"tx-a"`
	TxB        string          `json:"tx-b"`
}

// Snapshot captures the controller's current state.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Controller) snapshotLocked() Snapshot {
	s := Snapshot{
		Channels:  make(map[string]ChannelSnapshot, len(c.channels)),
		WSSConfig: make(map[string]devmodel.WSSConfig, len(c.wssConfig)),
		Seq:       make(map[string]int, len(c.seq)),
	}
	for name, st := range c.channels {
		s.Channels[name] = ChannelSnapshot{Wavelength: st.wavelength, TxA: st.txA, TxB: st.txB}
	}
	for fiber, cfg := range c.wssConfig {
		s.WSSConfig[fiber] = devmodel.WSSConfig{
			Passbands: append([]devmodel.Passband(nil), cfg.Passbands...),
		}
	}
	for f := range c.downFibers {
		s.DownFibers = append(s.DownFibers, f)
	}
	sort.Strings(s.DownFibers)
	for link, n := range c.seq {
		s.Seq[link] = n
	}
	return s
}

// MarshalSnapshot encodes the snapshot for replication.
func MarshalSnapshot(s Snapshot) ([]byte, error) { return json.Marshal(s) }

// UnmarshalSnapshot decodes a replicated snapshot.
func UnmarshalSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	err := json.Unmarshal(data, &s)
	return s, err
}

// LoadSnapshot adopts a snapshot on a (fresh) controller whose DevMgr has
// the fleet registered — the standby-takeover path. Transponder
// assignments are re-claimed from the pools; the controller's intended
// state matches the primary's, so a subsequent Audit against the live
// devices confirms the takeover.
func (c *Controller) LoadSnapshot(s Snapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.channels) != 0 {
		return fmt.Errorf("controller: LoadSnapshot on a non-empty controller")
	}
	names := make([]string, 0, len(s.Channels))
	for name := range s.Channels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ch := s.Channels[name]
		for _, tx := range []string{ch.TxA, ch.TxB} {
			if err := c.devmgr.ClaimSpecific(tx, name); err != nil {
				return fmt.Errorf("controller: reclaiming %s for %s: %w", tx, name, err)
			}
		}
		c.channels[name] = &channelState{wavelength: ch.Wavelength, txA: ch.TxA, txB: ch.TxB}
	}
	for fiber, cfg := range s.WSSConfig {
		c.wssConfig[fiber] = devmodel.WSSConfig{
			Passbands: append([]devmodel.Passband(nil), cfg.Passbands...),
		}
	}
	for _, f := range s.DownFibers {
		c.downFibers[f] = true
	}
	for link, n := range s.Seq {
		c.seq[link] = n
	}
	c.recordLocked("load", fmt.Sprintf("adopted snapshot: %d channels, %d down fibers",
		len(c.channels), len(c.downFibers)))
	return nil
}

// Repair re-asserts the controller's intended configuration on every
// device: transponder pairs get their channel document again and each
// fiber's WSS gets the full passband set. Combined with Audit this is the
// paper's zero-touch misconnection recovery (§9): when a device drifts —
// a field tech re-patches a port, a vendor controller overwrites a
// passband — the centralized intent wins without a site visit. It
// returns the channels that were found inconsistent before the repair.
func (c *Controller) Repair() ([]string, error) {
	before, err := c.Audit()
	if err != nil {
		return nil, err
	}
	if before.Clean() {
		return nil, nil
	}
	c.mu.Lock()
	names := make([]string, 0, len(c.channels))
	for name := range c.channels {
		names = append(names, name)
	}
	sort.Strings(names)
	// Re-assert intent through the same pipelined engine as the push
	// path: every endpoint's channel document, one batched RPC per
	// device, fanned out concurrently.
	txPlan := newPushPlan()
	for _, name := range names {
		st := c.channels[name]
		cfg := transponderConfig(st.wavelength, name)
		txPlan.add(st.txA, cfg, name)
		txPlan.add(st.txB, cfg, name)
	}
	errs := c.executePush(txPlan)
	for _, id := range txPlan.devices() {
		if errs[id] != nil {
			c.mu.Unlock()
			return before.Inconsistencies, fmt.Errorf("controller: repairing %s: %w", id, errs[id])
		}
	}
	err = c.pushWSSLocked()
	c.mu.Unlock()
	if err != nil {
		return before.Inconsistencies, err
	}
	after, err := c.Audit()
	if err != nil {
		return before.Inconsistencies, err
	}
	if !after.Clean() {
		return before.Inconsistencies, fmt.Errorf("controller: repair did not converge: %+v", after)
	}
	c.logf("controller: repaired %d inconsistent channels", len(before.Inconsistencies))
	c.record("repair", fmt.Sprintf("repaired %d inconsistent channels", len(before.Inconsistencies)))
	return before.Inconsistencies, nil
}
