// Package controller implements FlexWAN's centralized optical controller
// (§4.3–4.4 of the paper): the global manager (IP and optical topology
// managers plus the device manager), the network planning and optical
// restoration modules, and the data-stream-driven failure handling loop.
//
// The controller is the single writer of optical configuration. Every
// wavelength it provisions is pushed as one consistent set of documents —
// the transponder pair's mode and spectrum, and an identical passband on
// the WSS of every fiber along the path — which is how the paper achieves
// "zero spectrum inconsistency and conflict" in a multi-vendor backbone.
package controller

import (
	"fmt"
	"sort"
	"sync"

	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
)

// DevMgr is the device manager: the registry of managed devices, their
// management sessions, and the per-site transponder pools the controller
// draws on when materializing wavelengths onto hardware.
type DevMgr struct {
	mu      sync.Mutex
	devices map[string]devmodel.Descriptor
	clients map[string]*netconf.Client
	// freeTx holds unassigned transponder IDs per site, kept sorted for
	// deterministic assignment.
	freeTx map[string][]string
	// wssByFiber maps a fiber segment to the WSS device controlling its
	// spectrum.
	wssByFiber map[string]string
	// assignment maps a transponder ID to the channel it carries.
	assignment map[string]string

	dialOpts netconf.DialOptions
	retry    RetryPolicy
}

// NewDevMgr returns an empty device manager.
func NewDevMgr() *DevMgr {
	return &DevMgr{
		devices:    make(map[string]devmodel.Descriptor),
		clients:    make(map[string]*netconf.Client),
		freeTx:     make(map[string][]string),
		wssByFiber: make(map[string]string),
		assignment: make(map[string]string),
		retry:      DefaultRetryPolicy(),
	}
}

// SetDialOptions changes the timeouts used for device sessions (both
// Register and redials). Drills shorten these so injected RPC drops
// surface quickly.
func (d *DevMgr) SetDialOptions(opts netconf.DialOptions) {
	d.mu.Lock()
	d.dialOpts = opts
	d.mu.Unlock()
}

// SetRetryPolicy changes the per-RPC retry policy used by Call.
func (d *DevMgr) SetRetryPolicy(p RetryPolicy) {
	d.mu.Lock()
	d.retry = p
	d.mu.Unlock()
}

// RetryPolicy returns the active per-RPC retry policy.
func (d *DevMgr) RetryPolicy() RetryPolicy {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.retry
}

// Register validates the descriptor, dials the device's management
// address, and indexes it. The controller locates devices by the IP
// address in the descriptor (§4.3). Every validation runs before any
// index is touched: a rejected registration leaves no phantom entry
// behind and closes its session, so a corrected re-registration under
// the same ID succeeds.
func (d *DevMgr) Register(desc devmodel.Descriptor) error {
	if err := desc.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	opts := d.dialOpts
	d.mu.Unlock()
	client, err := netconf.DialWithOptions(desc.Address, opts)
	if err != nil {
		return fmt.Errorf("controller: dialing %s at %s: %w", desc.ID, desc.Address, err)
	}
	// The device's hello must agree with the registered identity — a
	// mismatch indicates a miswired management network. A hello that
	// cannot be read is a dial failure, not a verified session: skipping
	// the check would silently disable the miswiring defense.
	var hello devmodel.Descriptor
	if err := client.Hello(&hello); err != nil {
		client.Close()
		return fmt.Errorf("controller: hello from %s at %s: %w", desc.ID, desc.Address, err)
	}
	if hello.ID != "" && hello.ID != desc.ID {
		client.Close()
		return fmt.Errorf("controller: device at %s identifies as %s, registered as %s",
			desc.Address, hello.ID, desc.ID)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.devices[desc.ID]; dup {
		client.Close()
		return fmt.Errorf("controller: duplicate device %s", desc.ID)
	}
	// Class-specific validation, still before indexing.
	if desc.Class == devmodel.ClassWSS {
		if desc.Fiber == "" {
			client.Close()
			return fmt.Errorf("controller: WSS %s has no fiber binding", desc.ID)
		}
		if prev, dup := d.wssByFiber[desc.Fiber]; dup {
			client.Close()
			return fmt.Errorf("controller: fiber %s already controlled by WSS %s", desc.Fiber, prev)
		}
	}
	d.devices[desc.ID] = desc
	d.clients[desc.ID] = client
	switch desc.Class {
	case devmodel.ClassTransponder:
		d.freeTx[desc.Site] = insertSorted(d.freeTx[desc.Site], desc.ID)
	case devmodel.ClassWSS:
		d.wssByFiber[desc.Fiber] = desc.ID
	}
	return nil
}

func insertSorted(s []string, v string) []string {
	i := sort.SearchStrings(s, v)
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Client returns the management session for the device.
func (d *DevMgr) Client(id string) (*netconf.Client, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.clients[id]
	return c, ok
}

// Descriptor returns the registered identity of the device.
func (d *DevMgr) Descriptor(id string) (devmodel.Descriptor, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	desc, ok := d.devices[id]
	return desc, ok
}

// Devices returns all registered descriptors sorted by ID.
func (d *DevMgr) Devices() []devmodel.Descriptor {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]devmodel.Descriptor, 0, len(d.devices))
	for _, desc := range d.devices {
		out = append(out, desc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DeviceHealth is one device's fleet-health view: its descriptor, the
// channel assignment (transponders only), and whether the manager holds a
// live NETCONF session right now. SessionUp false does not mean the
// device is down — sessions are dialed lazily and redialed on demand — it
// means the next Call pays a dial.
type DeviceHealth struct {
	devmodel.Descriptor
	Assignment string `json:"assignment,omitempty"`
	SessionUp  bool   `json:"session_up"`
}

// Health reports the fleet's registration and session state, sorted by
// device ID — the backing for the service's /v1/devices endpoint.
func (d *DevMgr) Health() []DeviceHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]DeviceHealth, 0, len(d.devices))
	for id, desc := range d.devices {
		out = append(out, DeviceHealth{
			Descriptor: desc,
			Assignment: d.assignment[id],
			SessionUp:  d.clients[id] != nil,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WSSForFiber returns the WSS device controlling the fiber's spectrum.
func (d *DevMgr) WSSForFiber(fiber string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id, ok := d.wssByFiber[fiber]
	return id, ok
}

// ClaimTransponder takes one free transponder at the site for the
// channel. Assignment is deterministic (lowest ID first).
func (d *DevMgr) ClaimTransponder(site, channel string) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pool := d.freeTx[site]
	if len(pool) == 0 {
		return "", fmt.Errorf("controller: no free transponder at site %s for channel %s", site, channel)
	}
	id := pool[0]
	d.freeTx[site] = pool[1:]
	d.assignment[id] = channel
	return id, nil
}

// ClaimSpecific takes a particular free transponder for the channel —
// the standby-takeover path, where assignments are dictated by a
// snapshot rather than chosen from the pool.
func (d *DevMgr) ClaimSpecific(id, channel string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	desc, ok := d.devices[id]
	if !ok {
		return fmt.Errorf("controller: unknown transponder %s", id)
	}
	if prev, taken := d.assignment[id]; taken {
		return fmt.Errorf("controller: transponder %s already carries %s", id, prev)
	}
	pool := d.freeTx[desc.Site]
	i := sort.SearchStrings(pool, id)
	if i >= len(pool) || pool[i] != id {
		return fmt.Errorf("controller: transponder %s not in site %s free pool", id, desc.Site)
	}
	d.freeTx[desc.Site] = append(pool[:i], pool[i+1:]...)
	d.assignment[id] = channel
	return nil
}

// ReleaseTransponder returns a transponder to its site's free pool.
func (d *DevMgr) ReleaseTransponder(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	desc, ok := d.devices[id]
	if !ok {
		return
	}
	if _, assigned := d.assignment[id]; !assigned {
		return
	}
	delete(d.assignment, id)
	d.freeTx[desc.Site] = insertSorted(d.freeTx[desc.Site], id)
}

// Assignment returns the channel a transponder carries, if any.
func (d *DevMgr) Assignment(id string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ch, ok := d.assignment[id]
	return ch, ok
}

// FreeTransponders reports the free pool size at the site.
func (d *DevMgr) FreeTransponders(site string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.freeTx[site])
}

// Call performs one RPC against the device with the manager's retry
// policy: transient failures (timeouts from dropped RPCs, lost sessions
// from connection resets or device crashes) tear the stale session down
// and retry on a fresh dial after a capped, jittered exponential
// backoff. A device NACK (netconf.RPCError) returns immediately — the
// rejection is intentional and retrying the same document cannot
// succeed. This is the hardened path every configuration push and audit
// read uses.
func (d *DevMgr) Call(id, op string, in, out interface{}) error {
	pol := d.RetryPolicy()
	var lastErr error
	for attempt := 1; ; attempt++ {
		client, err := d.session(id)
		if err != nil {
			lastErr = err
		} else {
			err = client.Call(op, in, out)
			if err == nil {
				return nil
			}
			lastErr = err
			if !netconf.IsTransient(err) {
				return err
			}
			// The session misbehaved; drop it so the next attempt
			// redials. (Another goroutine may already have swapped it —
			// invalidate only our instance.)
			d.invalidate(id, client)
		}
		if attempt >= pol.maxAttempts() {
			return fmt.Errorf("controller: %s on %s failed after %d attempts: %w", op, id, attempt, lastErr)
		}
		pol.sleep(pol.Backoff(attempt))
	}
}

// session returns the device's live management session, redialing its
// registered address if the previous session was invalidated.
func (d *DevMgr) session(id string) (*netconf.Client, error) {
	d.mu.Lock()
	client, ok := d.clients[id]
	desc, known := d.devices[id]
	opts := d.dialOpts
	d.mu.Unlock()
	if ok {
		return client, nil
	}
	if !known {
		return nil, fmt.Errorf("controller: device %s not registered", id)
	}
	fresh, err := netconf.DialWithOptions(desc.Address, opts)
	if err != nil {
		return nil, fmt.Errorf("controller: redialing %s at %s: %w", id, desc.Address, err)
	}
	// Re-verify identity, as Register does: a restart must not silently
	// hand the session to a different device on a recycled address. An
	// unreadable hello is a failed redial (transient — Call retries on a
	// fresh dial), never an unverified session.
	var hello devmodel.Descriptor
	if err := fresh.Hello(&hello); err != nil {
		fresh.Close()
		return nil, fmt.Errorf("controller: hello on redial of %s at %s: %w", id, desc.Address, err)
	}
	if hello.ID != "" && hello.ID != desc.ID {
		fresh.Close()
		return nil, fmt.Errorf("controller: device at %s identifies as %s, registered as %s",
			desc.Address, hello.ID, desc.ID)
	}
	d.mu.Lock()
	if cur, ok := d.clients[id]; ok {
		// Lost the redial race; use the winner.
		d.mu.Unlock()
		fresh.Close()
		return cur, nil
	}
	d.clients[id] = fresh
	d.mu.Unlock()
	return fresh, nil
}

// invalidate removes and closes the device's session if it is still the
// given instance.
func (d *DevMgr) invalidate(id string, client *netconf.Client) {
	d.mu.Lock()
	cur, ok := d.clients[id]
	if ok && cur == client {
		delete(d.clients, id)
	} else {
		ok = false
	}
	d.mu.Unlock()
	if ok {
		client.Close()
	}
}

// Close drops every management session.
func (d *DevMgr) Close() {
	d.mu.Lock()
	clients := make([]*netconf.Client, 0, len(d.clients))
	for _, c := range d.clients {
		clients = append(clients, c)
	}
	d.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}
