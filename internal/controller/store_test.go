package controller

import (
	"testing"
	"time"

	"flexwan/internal/devmodel"
	"flexwan/internal/topology"
)

// TestMemStoreVersioning: Append assigns monotonic versions and stamps
// time, Version/List/Len read back immutably.
func TestMemStoreVersioning(t *testing.T) {
	s := NewMemStore()
	t0 := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	tick := 0
	s.SetClock(func() time.Time {
		tick++
		return t0.Add(time.Duration(tick) * time.Second)
	})
	for i, action := range []string{"apply", "restore", "repair"} {
		v, err := s.Append(ConfigVersion{Actor: "tester", Action: action})
		if err != nil {
			t.Fatalf("Append(%s): %v", action, err)
		}
		if v != i+1 {
			t.Errorf("Append(%s) version = %d, want %d", action, v, i+1)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	v2, ok := s.Version(2)
	if !ok || v2.Action != "restore" || v2.Version != 2 {
		t.Errorf("Version(2) = %+v ok=%v, want restore/2", v2, ok)
	}
	if v2.Time != t0.Add(2*time.Second) {
		t.Errorf("Version(2) time = %v, want clock tick 2", v2.Time)
	}
	if _, ok := s.Version(0); ok {
		t.Error("Version(0) ok, want out of range")
	}
	if _, ok := s.Version(4); ok {
		t.Error("Version(4) ok, want out of range")
	}
	all := s.List(0)
	if len(all) != 3 || all[0].Action != "apply" || all[2].Action != "repair" {
		t.Errorf("List(0) = %+v, want 3 ascending entries", all)
	}
	last := s.List(2)
	if len(last) != 2 || last[0].Version != 2 || last[1].Version != 3 {
		t.Errorf("List(2) = %+v, want versions [2 3]", last)
	}
}

// TestControllerAuditTrail: every state-changing controller action leaves
// one immutable ConfigVersion carrying actor, action, summary, and a
// loadable snapshot of the post-change state.
func TestControllerAuditTrail(t *testing.T) {
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 600})
	store := NewMemStore()
	h.ctrl.SetConfigStore(store)
	h.ctrl.SetActor("tenant-a/job-1")

	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("after Apply: %d versions, want 1", store.Len())
	}
	v1, _ := store.Version(1)
	if v1.Action != "apply" || v1.Actor != "tenant-a/job-1" {
		t.Errorf("v1 = %s by %s, want apply by tenant-a/job-1", v1.Action, v1.Actor)
	}
	if v1.Channels != len(res.Wavelengths) {
		t.Errorf("v1 channels = %d, want %d", v1.Channels, len(res.Wavelengths))
	}
	snap, err := UnmarshalSnapshot(v1.Snapshot)
	if err != nil {
		t.Fatalf("v1 snapshot does not decode: %v", err)
	}
	if len(snap.Channels) != len(res.Wavelengths) {
		t.Errorf("v1 snapshot has %d channels, want %d", len(snap.Channels), len(res.Wavelengths))
	}

	if _, err := h.ctrl.HandleFiberCutReport("f1"); err != nil {
		t.Fatal(err)
	}
	v2, ok := store.Version(2)
	if !ok || v2.Action != "restore" {
		t.Fatalf("after cut: version 2 = %+v ok=%v, want restore", v2, ok)
	}
	if len(v2.DownFibers) != 1 || v2.DownFibers[0] != "f1" {
		t.Errorf("v2 down fibers = %v, want [f1]", v2.DownFibers)
	}

	if !h.ctrl.HandleFiberRestored("f1") {
		t.Fatal("HandleFiberRestored(f1) = false")
	}
	v3, ok := store.Version(3)
	if !ok || v3.Action != "fiber-restored" || len(v3.DownFibers) != 0 {
		t.Errorf("version 3 = %+v ok=%v, want fiber-restored with no down fibers", v3, ok)
	}
}

// TestDevMgrHealth: Health reports every registered device sorted by ID
// with its class, assignment, and session state.
func TestDevMgrHealth(t *testing.T) {
	h := newHarness(t, 2, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 600})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	health := h.ctrl.DevMgr().Health()
	if len(health) != len(h.ctrl.DevMgr().Devices()) {
		t.Fatalf("health has %d entries, fleet has %d", len(health), len(h.ctrl.DevMgr().Devices()))
	}
	assigned, sessions := 0, 0
	for i, dh := range health {
		if i > 0 && health[i-1].ID >= dh.ID {
			t.Errorf("health not sorted: %s after %s", dh.ID, health[i-1].ID)
		}
		if dh.Assignment != "" {
			if dh.Class != devmodel.ClassTransponder {
				t.Errorf("%s: assignment on class %s", dh.ID, dh.Class)
			}
			assigned++
		}
		if dh.SessionUp {
			sessions++
		}
	}
	if want := 2 * len(res.Wavelengths); assigned != want {
		t.Errorf("%d assigned transponders, want %d", assigned, want)
	}
	if sessions == 0 {
		t.Error("no live sessions after Apply")
	}
}
