package controller

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/phy"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// TestRegisterRejectionLeavesNoPhantom is the regression test for the
// registration-ordering bug: a WSS whose descriptor fails validation
// after the dial (no fiber binding, duplicate fiber) used to be indexed
// before the check fired, leaving a phantom device, a leaked session,
// and a permanently blocked re-registration. Every rejection must leave
// the registry untouched so a corrected descriptor succeeds.
func TestRegisterRejectionLeavesNoPhantom(t *testing.T) {
	d := NewDevMgr()
	grid := spectrum.DefaultGrid()
	agent := device.NewWSS(devmodel.Descriptor{ID: "wss-x", Class: devmodel.ClassWSS}, grid)
	addr, err := agent.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)

	noFiber := devmodel.Descriptor{
		ID: "wss-x", Class: devmodel.ClassWSS, Vendor: "v", Address: addr, Site: "A",
	}
	if err := d.Register(noFiber); err == nil {
		t.Fatal("WSS with no fiber binding registered")
	}
	if _, ok := d.Descriptor("wss-x"); ok {
		t.Fatal("rejected WSS left a phantom descriptor")
	}
	if _, ok := d.Client("wss-x"); ok {
		t.Fatal("rejected WSS left a live session in the registry")
	}

	good := noFiber
	good.Fiber = "f-x"
	if err := d.Register(good); err != nil {
		t.Fatalf("corrected re-registration under the same ID failed: %v", err)
	}
	if id, ok := d.WSSForFiber("f-x"); !ok || id != "wss-x" {
		t.Fatalf("fiber index = (%q, %v), want wss-x", id, ok)
	}

	// A duplicate fiber binding is rejected without stealing the index
	// or leaving a phantom under the new ID.
	agent2 := device.NewWSS(devmodel.Descriptor{ID: "wss-y", Class: devmodel.ClassWSS}, grid)
	addr2, err := agent2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent2.Close)
	dupFiber := devmodel.Descriptor{
		ID: "wss-y", Class: devmodel.ClassWSS, Vendor: "v", Address: addr2, Site: "A", Fiber: "f-x",
	}
	if err := d.Register(dupFiber); err == nil {
		t.Fatal("duplicate fiber binding registered")
	}
	if _, ok := d.Descriptor("wss-y"); ok {
		t.Fatal("rejected duplicate left a phantom descriptor")
	}
	dupFiber.Fiber = "f-y"
	if err := d.Register(dupFiber); err != nil {
		t.Fatalf("corrected fiber binding failed: %v", err)
	}
}

// TestRegisterRejectsUnreadableHello is the regression test for the
// hello-verification bug: a device whose greeting cannot be decoded
// used to be accepted as "identity verified" because only a clean read
// with a mismatched ID was rejected. An unreadable hello is a failed
// dial — and must not leave a phantom entry blocking a retry.
func TestRegisterRejectsUnreadableHello(t *testing.T) {
	// A server whose hello document is not a Descriptor.
	bogus := netconf.NewServer("not-a-descriptor", func(string, json.RawMessage) (interface{}, error) {
		return nil, nil
	})
	addr, err := bogus.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bogus.Close)

	d := NewDevMgr()
	desc := devmodel.Descriptor{
		ID: "tx-x", Class: devmodel.ClassTransponder, Vendor: "v", Address: addr, Site: "A",
	}
	err = d.Register(desc)
	if err == nil {
		t.Fatal("registration with an unreadable hello succeeded")
	}
	if !strings.Contains(err.Error(), "hello") {
		t.Errorf("error %v does not name the hello exchange", err)
	}
	if _, ok := d.Descriptor("tx-x"); ok {
		t.Fatal("failed registration left a phantom descriptor")
	}

	// The same ID registers fine against a device that greets properly.
	agent := device.NewTransponder(devmodel.Descriptor{ID: "tx-x", Class: devmodel.ClassTransponder},
		spectrum.DefaultGrid(), transponder.SVT(), device.NewFabric(phy.DefaultLink()))
	good, err := agent.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)
	desc.Address = good
	if err := d.Register(desc); err != nil {
		t.Fatalf("re-registration after hello failure: %v", err)
	}
	if d.FreeTransponders("A") != 1 {
		t.Fatal("re-registered transponder missing from the free pool")
	}
}

// TestCallRedialsAfterHelloDrop is the regression test for the redial
// half of the hello bug: a dropped greeting on a redial used to hand
// Call an unverified session; it must instead count as a failed dial
// attempt that the retry loop rides out.
func TestCallRedialsAfterHelloDrop(t *testing.T) {
	h := newHarness(t, 1, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100})
	d := h.ctrl.DevMgr()
	d.SetDialOptions(netconf.DialOptions{DialTimeout: 150 * time.Millisecond, CallTimeout: 150 * time.Millisecond})
	d.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond,
		Sleep: func(time.Duration) {},
	})
	var helloDrops int32
	h.wss["f1"].Server().SetInterceptor(func(op string) netconf.FaultDecision {
		if op == netconf.OpHello && atomic.CompareAndSwapInt32(&helloDrops, 0, 1) {
			return netconf.FaultDecision{Fault: netconf.FaultDropRequest}
		}
		return netconf.FaultDecision{}
	})
	// Force the next Call onto the redial path.
	if client, ok := d.Client("wss-f1"); ok {
		d.invalidate("wss-f1", client)
	}
	var cfg devmodel.WSSConfig
	if err := d.Call("wss-f1", netconf.OpGetConfig, nil, &cfg); err != nil {
		t.Fatalf("Call did not recover from a dropped redial hello: %v", err)
	}
	if atomic.LoadInt32(&helloDrops) != 1 {
		t.Fatal("the hello drop never fired; the test proved nothing")
	}
}

// TestApplyRollbackDisablesConfiguredPeer is the regression test for
// the half-provisioned-channel leak: when txB's edit-config is NACKed
// after txA already accepted an enabled document, the rollback must
// push a disable to txA — not just release the pair and leave a live
// laser the audit's conflict check can't even see.
func TestApplyRollbackDisablesConfiguredPeer(t *testing.T) {
	h := newHarness(t, 1, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	// The B-side transponder NACKs every configuration push.
	h.transponders["tx-B-0"].Server().SetInterceptor(func(op string) netconf.FaultDecision {
		if op == netconf.OpEditConfig || op == netconf.OpEditConfigBatch {
			return netconf.FaultDecision{Err: "vendor: unsupported mode"}
		}
		return netconf.FaultDecision{}
	})
	if err := h.ctrl.Apply(res); err == nil {
		t.Fatal("Apply succeeded with a NACKing endpoint")
	}
	// Both transponders back in the pool, nothing assigned.
	for _, site := range []string{"A", "B"} {
		if free := h.ctrl.DevMgr().FreeTransponders(site); free != 1 {
			t.Errorf("site %s free pool = %d, want 1", site, free)
		}
	}
	if ch, ok := h.ctrl.DevMgr().Assignment("tx-A-0"); ok {
		t.Errorf("tx-A-0 still assigned to %s after rollback", ch)
	}
	// The survivor's laser is off.
	var cfg devmodel.TransponderConfig
	if err := h.ctrl.DevMgr().Call("tx-A-0", netconf.OpGetConfig, nil, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Enabled {
		t.Fatal("rolled-back endpoint tx-A-0 is still enabled on the device")
	}
	if len(h.ctrl.LiveChannels()) != 0 {
		t.Fatal("failed Apply left live channels")
	}
	audit, err := h.ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Clean() {
		t.Fatalf("audit dirty after rollback: %+v", audit)
	}
}

// TestParallelPushConvergesUnderFaults drives the fan-out push through
// injected first-attempt drops on several devices at once (run under
// -race in CI): Apply must converge, the audit must come back clean,
// and the DevMgr's pool/assignment books must balance.
func TestParallelPushConvergesUnderFaults(t *testing.T) {
	h := newHarness(t, 2,
		topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100},
		topology.IPLink{ID: "e2", A: "A", B: "C", DemandGbps: 100},
		topology.IPLink{ID: "e3", A: "C", B: "B", DemandGbps: 100},
	)
	d := h.ctrl.DevMgr()
	d.SetDialOptions(netconf.DialOptions{CallTimeout: 150 * time.Millisecond})
	d.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}})
	// Every device drops its first configuration push; retries succeed.
	for _, tr := range h.transponders {
		srv := tr.Server()
		var dropped int32
		srv.SetInterceptor(func(op string) netconf.FaultDecision {
			if (op == netconf.OpEditConfig || op == netconf.OpEditConfigBatch) &&
				atomic.CompareAndSwapInt32(&dropped, 0, 1) {
				return netconf.FaultDecision{Fault: netconf.FaultDropRequest}
			}
			return netconf.FaultDecision{}
		})
	}
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatalf("parallel Apply under faults: %v", err)
	}
	audit, err := h.ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Clean() {
		t.Fatalf("audit dirty after faulted parallel push: %+v", audit)
	}
	// Book-keeping: every live channel's endpoints are assigned to it,
	// and free + assigned accounts for every registered transponder.
	assigned := 0
	for _, ch := range h.ctrl.LiveChannels() {
		for _, tx := range []string{ch.TxA, ch.TxB} {
			got, ok := d.Assignment(tx)
			if !ok || got != ch.Name {
				t.Errorf("endpoint %s of %s assigned to (%q, %v)", tx, ch.Name, got, ok)
			}
			assigned++
		}
	}
	free := 0
	for _, site := range []string{"A", "B", "C"} {
		free += d.FreeTransponders(site)
	}
	if free+assigned != len(h.transponders) {
		t.Errorf("pool books don't balance: %d free + %d assigned != %d registered",
			free, assigned, len(h.transponders))
	}
}
