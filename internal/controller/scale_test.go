package controller

import (
	"fmt"
	"testing"

	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/phy"
	"flexwan/internal/plan"
	"flexwan/internal/spectrum"
	"flexwan/internal/transponder"
	"flexwan/internal/workload"
)

// TestProductionScaleDeployment deploys the full synthetic T-backbone as
// live device agents — hundreds of transponders, one WSS and one
// amplifier per fiber, all on loopback TCP — and drives the whole
// pipeline: plan, apply, audit, cut the busiest fiber, restore, re-audit.
// This is the control plane at production shape rather than toy size.
func TestProductionScaleDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("production-scale deployment is slow; skipped with -short")
	}
	n := workload.TBackbone(1)
	grid := spectrum.DefaultGrid()
	fabric := device.NewFabric(phy.DefaultLink())
	for _, f := range n.Optical.Fibers() {
		if err := fabric.AddFiber(f.ID, f.LengthKm); err != nil {
			t.Fatal(err)
		}
	}
	ctrl, err := New(Config{
		Optical: n.Optical, IP: n.IP, Catalog: transponder.SVT(), Grid: grid, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// Size the per-site transponder pools from the plan itself.
	pre, err := plan.Solve(plan.Problem{
		Optical: n.Optical, IP: n.IP, Catalog: transponder.SVT(), Grid: grid, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	need := map[string]int{}
	for _, w := range pre.Wavelengths {
		need[string(w.Path.Src())]++
		need[string(w.Path.Dst())]++
	}
	total := 0
	for _, site := range n.Optical.Nodes() {
		// Spares for restoration retunes plus headroom.
		count := need[string(site)] + 2
		for i := 0; i < count; i++ {
			desc := devmodel.Descriptor{
				ID: fmt.Sprintf("tx-%s-%02d", site, i), Class: devmodel.ClassTransponder,
				Vendor: "vendorA", Address: "pending", Site: string(site),
			}
			agent := device.NewTransponder(desc, grid, transponder.SVT(), fabric)
			addr, err := agent.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(agent.Close)
			desc.Address = addr
			if err := ctrl.DevMgr().Register(desc); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	for _, f := range n.Optical.Fibers() {
		desc := devmodel.Descriptor{
			ID: "wss-" + f.ID, Class: devmodel.ClassWSS,
			Vendor: "vendorB", Address: "pending", Site: string(f.A), Fiber: f.ID,
		}
		w := device.NewWSS(desc, grid)
		addr, err := w.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		desc.Address = addr
		if err := ctrl.DevMgr().Register(desc); err != nil {
			t.Fatal(err)
		}
		total++
	}
	t.Logf("registered %d devices for %d wavelengths", total, len(pre.Wavelengths))

	res, err := ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("unserved: %v", res.Unserved)
	}
	if err := ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	report, err := ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() || report.ChannelsChecked != len(res.Wavelengths) {
		t.Fatalf("audit = %+v", report)
	}

	// Cut the fiber carrying the most channels.
	load := map[string]int{}
	for _, w := range res.Wavelengths {
		for _, f := range w.Path.Fibers {
			load[f]++
		}
	}
	busiest, best := "", 0
	for f, l := range load {
		if l > best || (l == best && f < busiest) {
			busiest, best = f, l
		}
	}
	t.Logf("cutting busiest fiber %s (%d channels)", busiest, best)
	rres, err := ctrl.HandleFiberCut(busiest)
	if err != nil {
		t.Fatal(err)
	}
	if rres.AffectedGbps == 0 {
		t.Fatal("busiest fiber carried nothing?")
	}
	if rres.Capability() < 0.5 {
		t.Errorf("restoration capability %.2f on an underloaded network", rres.Capability())
	}
	report, err = ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Errorf("post-restoration audit dirty: %d inconsistencies, %d conflicts",
			len(report.Inconsistencies), len(report.Conflicts))
	}
}
