package controller

import (
	"fmt"
	"sort"

	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/plan"
)

// ApplyAtomic pushes a planning result through the NETCONF-style
// candidate/commit protocol: every device first validates and *stages*
// its configuration document; only when the whole fleet has accepted does
// the controller commit. If any device rejects — a fixed-grid vendor
// refusing an off-grid passband, a BVT refusing a spacing change — all
// staged documents are discarded and neither hardware nor controller
// state changes. This is the multi-vendor safety property §4.3 needs
// when a change set spans devices with different capabilities.
func (c *Controller) ApplyAtomic(res *plan.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	// 1. Build the complete intended change set without touching state.
	type edit struct {
		deviceID string
		cfg      interface{}
	}
	type chanRec struct {
		name     string
		w        plan.Wavelength
		txA, txB string
	}
	var edits []edit
	var chans []chanRec
	var claims []string
	releaseClaims := func() {
		for _, id := range claims {
			c.devmgr.ReleaseTransponder(id)
		}
	}
	seq := make(map[string]int, len(c.seq))
	for k, v := range c.seq {
		seq[k] = v
	}
	wssIntent := make(map[string]devmodel.WSSConfig, len(c.wssConfig))
	for fiber, cfg := range c.wssConfig {
		wssIntent[fiber] = devmodel.WSSConfig{
			Passbands: append([]devmodel.Passband(nil), cfg.Passbands...),
		}
	}
	for _, w := range res.Wavelengths {
		seq[w.LinkID]++
		name := fmt.Sprintf("%s:%d", w.LinkID, seq[w.LinkID])
		txA, err := c.devmgr.ClaimTransponder(string(w.Path.Src()), name)
		if err != nil {
			releaseClaims()
			return err
		}
		claims = append(claims, txA)
		txB, err := c.devmgr.ClaimTransponder(string(w.Path.Dst()), name)
		if err != nil {
			releaseClaims()
			return err
		}
		claims = append(claims, txB)
		cfg := transponderConfig(w, name)
		edits = append(edits, edit{txA, cfg}, edit{txB, cfg})
		for _, fiber := range w.Path.Fibers {
			wc := wssIntent[fiber]
			wc.Passbands = append(wc.Passbands, devmodel.Passband{
				Channel: name, Start: w.Interval.Start, Count: w.Interval.Count,
			})
			wssIntent[fiber] = wc
		}
		chans = append(chans, chanRec{name: name, w: w, txA: txA, txB: txB})
	}
	fibers := make([]string, 0, len(wssIntent))
	for fiber := range wssIntent {
		fibers = append(fibers, fiber)
	}
	sort.Strings(fibers)
	for _, fiber := range fibers {
		wssID, ok := c.devmgr.WSSForFiber(fiber)
		if !ok {
			releaseClaims()
			return fmt.Errorf("controller: no WSS registered for fiber %s", fiber)
		}
		cfg := wssIntent[fiber]
		sort.Slice(cfg.Passbands, func(i, j int) bool { return cfg.Passbands[i].Start < cfg.Passbands[j].Start })
		wssIntent[fiber] = cfg
		edits = append(edits, edit{wssID, cfg})
	}

	// 2. Stage everywhere; discard everything on the first rejection.
	var staged []string
	discard := func() {
		for _, id := range staged {
			_ = c.devmgr.Call(id, device.OpDiscard, nil, nil)
		}
	}
	for _, e := range edits {
		if err := c.devmgr.Call(e.deviceID, device.OpEditCandidate, e.cfg, nil); err != nil {
			discard()
			releaseClaims()
			return fmt.Errorf("controller: %s rejected staged config: %w", e.deviceID, err)
		}
		staged = append(staged, e.deviceID)
	}

	// 3. Commit. After a successful network-wide stage, a commit failure
	// indicates a device raced its own running state; surface it (the
	// audit/repair loop will reconverge the stragglers).
	var commitErr error
	for _, id := range staged {
		if err := c.devmgr.Call(id, device.OpCommit, nil, nil); err != nil && commitErr == nil {
			commitErr = fmt.Errorf("controller: commit on %s: %w", id, err)
		}
	}

	// 4. Adopt the intended state.
	c.seq = seq
	c.wssConfig = wssIntent
	for _, ch := range chans {
		c.channels[ch.name] = &channelState{wavelength: ch.w, txA: ch.txA, txB: ch.txB}
	}
	c.basePlan = res
	c.logf("controller: atomically applied %d wavelengths (%d staged documents)",
		len(res.Wavelengths), len(edits))
	return commitErr
}
