package controller

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/parallel"
	"flexwan/internal/plan"
	"flexwan/internal/restore"
	"flexwan/internal/spectrum"
	"flexwan/internal/telemetry"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// Config assembles the controller's global view: both topology layers,
// the hardware family, and the spectrum grid.
type Config struct {
	Optical *topology.Optical
	IP      *topology.IPTopology
	Catalog transponder.Catalog
	Grid    spectrum.Grid
	// K is the candidate-path count for planning and restoration.
	K int
	// Epsilon is the planning objective's spectrum weight.
	Epsilon float64
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...interface{})
}

// channelState tracks one live wavelength and the hardware carrying it.
type channelState struct {
	wavelength plan.Wavelength
	txA, txB   string // transponder device IDs at the two ends
}

// Controller is the centralized optical controller.
type Controller struct {
	cfg    Config
	devmgr *DevMgr

	// pushWorkers bounds the concurrent push fan-out (see
	// SetPushWorkers); atomic so the push engine can read it whether or
	// not the caller holds mu.
	pushWorkers atomic.Int64

	mu sync.Mutex
	// channels maps channel name ("link:seq") → live state.
	channels map[string]*channelState
	// wssConfig accumulates the passband document per fiber.
	wssConfig map[string]devmodel.WSSConfig
	// downFibers tracks fibers currently marked cut.
	downFibers map[string]bool
	// basePlan is the last applied planning result.
	basePlan *plan.Result
	// seq numbers channels per link.
	seq map[string]int
	// playbook holds precomputed restoration plans per fiber (§4.4).
	playbook map[string]*restore.Result
	// store, when non-nil, receives one immutable ConfigVersion per
	// state-changing action (see store.go); actor names who drove it.
	store ConfigStore
	actor string
}

// New builds a controller. Devices are added via DevMgr().Register.
func New(cfg Config) (*Controller, error) {
	if cfg.Optical == nil || cfg.IP == nil {
		return nil, fmt.Errorf("controller: nil topology")
	}
	if len(cfg.Catalog.Modes) == 0 {
		return nil, fmt.Errorf("controller: empty catalog")
	}
	if cfg.Grid.Pixels <= 0 {
		return nil, fmt.Errorf("controller: invalid grid")
	}
	return &Controller{
		cfg:        cfg,
		devmgr:     NewDevMgr(),
		channels:   make(map[string]*channelState),
		wssConfig:  make(map[string]devmodel.WSSConfig),
		downFibers: make(map[string]bool),
		seq:        make(map[string]int),
	}, nil
}

// DevMgr exposes the device manager for registration.
func (c *Controller) DevMgr() *DevMgr { return c.devmgr }

// Close drops all device sessions.
func (c *Controller) Close() { c.devmgr.Close() }

func (c *Controller) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// PlanNetwork runs the network planning module (Algorithm 1 heuristic)
// against the global view and returns the result without applying it.
func (c *Controller) PlanNetwork() (*plan.Result, error) {
	p := plan.Problem{
		Optical: c.cfg.Optical,
		IP:      c.cfg.IP,
		Catalog: c.cfg.Catalog,
		Grid:    c.cfg.Grid,
		K:       c.cfg.K,
		Epsilon: c.cfg.Epsilon,
	}
	res, err := plan.Solve(p)
	if err != nil {
		return nil, err
	}
	if err := plan.Verify(p, res); err != nil {
		return nil, fmt.Errorf("controller: planning self-check failed: %w", err)
	}
	return res, nil
}

// Apply pushes a planning result to the hardware: for every wavelength it
// claims a transponder pair, configures both ends, and installs the
// identical passband on the WSS of every fiber along the path. The push
// is coordinated per §4.3 — one source of configuration for all devices,
// so consistency and conflict-freedom hold network-wide — and pipelined:
// the full per-device document set is built first, then pushed
// concurrently, one batched RPC per device.
func (c *Controller) Apply(res *plan.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	// Phase 1 — claim hardware and build the complete per-device
	// document set without touching the wire. Claims are all-or-nothing:
	// an exhausted pool releases everything claimed here and changes no
	// state.
	type chanRec struct {
		name     string
		w        plan.Wavelength
		txA, txB string
	}
	var chans []chanRec
	var claims []string
	releaseClaims := func() {
		for _, id := range claims {
			c.devmgr.ReleaseTransponder(id)
		}
	}
	txPlan := newPushPlan()
	for _, w := range res.Wavelengths {
		c.seq[w.LinkID]++
		channel := fmt.Sprintf("%s:%d", w.LinkID, c.seq[w.LinkID])
		txA, err := c.devmgr.ClaimTransponder(string(w.Path.Src()), channel)
		if err != nil {
			releaseClaims()
			return err
		}
		claims = append(claims, txA)
		txB, err := c.devmgr.ClaimTransponder(string(w.Path.Dst()), channel)
		if err != nil {
			releaseClaims()
			return err
		}
		claims = append(claims, txB)
		cfg := transponderConfig(w, channel)
		txPlan.add(txA, cfg, channel)
		txPlan.add(txB, cfg, channel)
		chans = append(chans, chanRec{name: channel, w: w, txA: txA, txB: txB})
	}

	// Phase 2 — concurrent transponder push. A channel with a failed
	// endpoint is unwound: the endpoint that did take the enabled
	// document is pushed a disable (best-effort — never leave a device
	// lit on spectrum the controller does not track), and the pair goes
	// back to the pool.
	errs := c.executePush(txPlan)
	var firstErr error
	for _, rec := range chans {
		errA, errB := errs[rec.txA], errs[rec.txB]
		if errA == nil && errB == nil {
			for _, fiber := range rec.w.Path.Fibers {
				wc := c.wssConfig[fiber]
				wc.Passbands = append(wc.Passbands, devmodel.Passband{
					Channel: rec.name,
					Start:   rec.w.Interval.Start,
					Count:   rec.w.Interval.Count,
				})
				c.wssConfig[fiber] = wc
			}
			c.channels[rec.name] = &channelState{wavelength: rec.w, txA: rec.txA, txB: rec.txB}
			continue
		}
		if firstErr == nil {
			id, err := rec.txA, errA
			if err == nil {
				id, err = rec.txB, errB
			}
			firstErr = fmt.Errorf("controller: configuring %s for %s: %w", id, rec.name, err)
		}
		if errA == nil {
			c.disableTransponder(rec.txA, rec.name)
		}
		if errB == nil {
			c.disableTransponder(rec.txB, rec.name)
		}
		c.devmgr.ReleaseTransponder(rec.txA)
		c.devmgr.ReleaseTransponder(rec.txB)
	}

	// Phase 3 — concurrent WSS push for every committed channel, so the
	// surviving configuration is consistent end to end even when some
	// channels were unwound.
	if err := c.pushWSSLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return firstErr
	}
	c.basePlan = res
	c.logf("controller: applied plan with %d wavelengths over %d links",
		len(res.Wavelengths), len(res.PerLink))
	c.recordLocked("apply", fmt.Sprintf("applied plan: %d wavelengths over %d links",
		len(res.Wavelengths), len(res.PerLink)))
	return nil
}

// disableTransponder pushes a disable document to a transponder whose
// channel failed to materialize — the unwind path. Best-effort: an
// unreachable device is already dark, so failure is only logged.
func (c *Controller) disableTransponder(id, channel string) {
	if err := c.editConfig(id, devmodel.TransponderConfig{Enabled: false}); err != nil {
		c.logf("controller: unwinding %s for %s (degraded, device stays dark): %v", id, channel, err)
	}
}

// transponderConfig builds the standard config document for a wavelength.
func transponderConfig(w plan.Wavelength, channel string) devmodel.TransponderConfig {
	return devmodel.TransponderConfig{
		Enabled:       true,
		DataRateGbps:  w.Mode.DataRateGbps,
		SpacingGHz:    w.Mode.SpacingGHz,
		BaudGBd:       w.Mode.BaudGBd,
		Modulation:    w.Mode.Modulation.Name,
		FEC:           w.Mode.FEC.Name,
		IntervalStart: w.Interval.Start,
		IntervalCount: w.Interval.Count,
		PathFibers:    append([]string(nil), w.Path.Fibers...),
		Channel:       channel,
	}
}

// pushWSSLocked pushes every fiber's accumulated passband document to
// its WSS, returning the first failure (remaining fibers are still
// pushed). Callers hold c.mu.
func (c *Controller) pushWSSLocked() error {
	var firstErr error
	err := c.pushWSSDegradedLocked(func(wssID string, err error) {
		if firstErr == nil {
			firstErr = fmt.Errorf("controller: configuring WSS %s: %w", wssID, err)
		}
	})
	if err != nil {
		return err
	}
	return firstErr
}

// pushWSSDegradedLocked pushes every fiber's accumulated passband
// document to its WSS — concurrently, one document per device —
// reporting unreachable devices through skip (invoked in sorted device
// order) instead of aborting. A fiber with no registered WSS is still an
// error: that is a deployment wiring bug, not an outage. Callers hold
// c.mu.
func (c *Controller) pushWSSDegradedLocked(skip func(deviceID string, err error)) error {
	plan, err := c.wssPlanLocked()
	if err != nil {
		return err
	}
	errs := c.executePush(plan)
	for _, id := range plan.devices() {
		if errs[id] != nil {
			skip(id, errs[id])
		}
	}
	return nil
}

// wssPlanLocked builds the per-WSS push plan from the accumulated
// passband intent: each WSS gets its fiber's full document. Callers
// hold c.mu.
func (c *Controller) wssPlanLocked() (*pushPlan, error) {
	fibers := make([]string, 0, len(c.wssConfig))
	for f := range c.wssConfig {
		fibers = append(fibers, f)
	}
	sort.Strings(fibers)
	plan := newPushPlan()
	for _, fiber := range fibers {
		wssID, ok := c.devmgr.WSSForFiber(fiber)
		if !ok {
			return nil, fmt.Errorf("controller: no WSS registered for fiber %s", fiber)
		}
		cfg := c.wssConfig[fiber]
		sort.Slice(cfg.Passbands, func(i, j int) bool { return cfg.Passbands[i].Start < cfg.Passbands[j].Start })
		plan.add(wssID, cfg, "")
	}
	return plan, nil
}

// editConfig pushes one configuration document through the retrying,
// reconnecting DevMgr.Call path.
func (c *Controller) editConfig(deviceID string, cfg interface{}) error {
	return c.devmgr.Call(deviceID, netconf.OpEditConfig, cfg, nil)
}

// CurrentPlan synthesizes a plan.Result from the live channels — the
// same view restoration solves against. Drills use it to run the offline
// restoration oracle on exactly the state the controller will see.
func (c *Controller) CurrentPlan() *plan.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.currentPlanLocked()
}

// ChannelInfo describes one live channel and its hardware binding.
type ChannelInfo struct {
	Name       string
	Wavelength plan.Wavelength
	TxA, TxB   string
}

// LiveChannels returns every live channel with its wavelength and
// transponder pair, sorted by name.
func (c *Controller) LiveChannels() []ChannelInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ChannelInfo, 0, len(c.channels))
	for name, st := range c.channels {
		out = append(out, ChannelInfo{Name: name, Wavelength: st.wavelength, TxA: st.txA, TxB: st.txB})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Channels returns the live channel names, sorted.
func (c *Controller) Channels() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.channels))
	for ch := range c.channels {
		out = append(out, ch)
	}
	sort.Strings(out)
	return out
}

// LiveCapacityGbps sums the data rates of live channels per IP link.
func (c *Controller) LiveCapacityGbps() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int)
	for _, st := range c.channels {
		out[st.wavelength.LinkID] += st.wavelength.Mode.DataRateGbps
	}
	return out
}

// AuditReport is the outcome of a network-wide configuration audit.
type AuditReport struct {
	ChannelsChecked int
	// Inconsistencies lists channels whose transponder spectrum and WSS
	// passbands disagree somewhere along the path (Figure 5a failures).
	Inconsistencies []string
	// Conflicts lists fiber pixels claimed by more than one channel
	// (Figure 5b failures).
	Conflicts []string
}

// Clean reports a fully consistent, conflict-free configuration.
func (r AuditReport) Clean() bool {
	return len(r.Inconsistencies) == 0 && len(r.Conflicts) == 0
}

// Audit reads back the configuration of every device and verifies the two
// §4.3 invariants: channel consistency (the wavelength's spectrum equals
// the passband on every fiber of its path, end to end) and channel
// conflict freedom (no pixel of any fiber serves two channels). This is
// the check behind the paper's "zero spectrum inconsistency and conflict"
// operational result.
func (c *Controller) Audit() (AuditReport, error) {
	c.mu.Lock()
	channels := make(map[string]*channelState, len(c.channels))
	for k, v := range c.channels {
		channels[k] = v
	}
	c.mu.Unlock()

	var report AuditReport
	report.ChannelsChecked = len(channels)

	// Collect the read set — each distinct fiber's WSS and every channel
	// endpoint with a registered descriptor — then fan the get-config
	// reads out concurrently, one session per device. Errors surface in
	// sorted device order, so a dead device fails the audit
	// deterministically.
	fibers := make([]string, 0)
	fiberSeen := make(map[string]bool)
	for _, st := range channels {
		for _, fiber := range st.wavelength.Path.Fibers {
			if !fiberSeen[fiber] {
				fiberSeen[fiber] = true
				fibers = append(fibers, fiber)
			}
		}
	}
	sort.Strings(fibers)
	for _, fiber := range fibers {
		if _, ok := c.devmgr.WSSForFiber(fiber); !ok {
			return report, fmt.Errorf("controller: no WSS for fiber %s", fiber)
		}
	}
	txIDs := make([]string, 0, 2*len(channels))
	txSeen := make(map[string]bool)
	for _, st := range channels {
		for _, txID := range []string{st.txA, st.txB} {
			if txSeen[txID] {
				continue
			}
			txSeen[txID] = true
			if _, ok := c.devmgr.Descriptor(txID); ok {
				txIDs = append(txIDs, txID)
			}
		}
	}
	sort.Strings(txIDs)

	wssCfg := make(map[string]devmodel.WSSConfig)
	{
		cfgs, errs := parallel.Map(nil, c.readWorkers(len(fibers)), len(fibers),
			func(_ context.Context, i int) (devmodel.WSSConfig, error) {
				wssID, _ := c.devmgr.WSSForFiber(fibers[i])
				var cfg devmodel.WSSConfig
				err := c.devmgr.Call(wssID, netconf.OpGetConfig, nil, &cfg)
				return cfg, err
			})
		if err := parallel.First(errs); err != nil {
			return report, err
		}
		for i, fiber := range fibers {
			wssCfg[fiber] = cfgs[i]
		}
	}
	txCfg := make(map[string]devmodel.TransponderConfig)
	{
		cfgs, errs := parallel.Map(nil, c.readWorkers(len(txIDs)), len(txIDs),
			func(_ context.Context, i int) (devmodel.TransponderConfig, error) {
				var cfg devmodel.TransponderConfig
				err := c.devmgr.Call(txIDs[i], netconf.OpGetConfig, nil, &cfg)
				return cfg, err
			})
		if err := parallel.First(errs); err != nil {
			return report, err
		}
		for i, id := range txIDs {
			txCfg[id] = cfgs[i]
		}
	}

	names := make([]string, 0, len(channels))
	for name := range channels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := channels[name]
		want := st.wavelength.Interval
		// Transponder ends must carry the same spectrum.
		consistent := true
		for _, txID := range []string{st.txA, st.txB} {
			cfg, ok := txCfg[txID]
			if !ok {
				consistent = false
				continue
			}
			if cfg.Interval() != want || !cfg.Enabled {
				consistent = false
			}
		}
		// Every fiber's WSS must pass exactly the same interval.
		for _, fiber := range st.wavelength.Path.Fibers {
			pb, ok := wssCfg[fiber].Find(name)
			if !ok || pb.Interval() != want {
				consistent = false
			}
		}
		if !consistent {
			report.Inconsistencies = append(report.Inconsistencies, name)
		}
	}

	// Conflict check: per fiber, passbands must be pairwise disjoint.
	for _, fiber := range fibers {
		pbs := wssCfg[fiber].Passbands
		for i := range pbs {
			for j := i + 1; j < len(pbs); j++ {
				if pbs[i].Interval().Overlaps(pbs[j].Interval()) {
					report.Conflicts = append(report.Conflicts,
						fmt.Sprintf("%s: %s vs %s", fiber, pbs[i].Channel, pbs[j].Channel))
				}
			}
		}
	}
	return report, nil
}

// currentPlanLocked synthesizes a plan.Result from the live channels, so
// restoration always runs against what the network is actually carrying.
// Callers hold c.mu.
func (c *Controller) currentPlanLocked() *plan.Result {
	res := &plan.Result{
		PerLink:   make(map[string]plan.LinkPlan),
		Allocator: spectrum.NewAllocator(c.cfg.Grid),
	}
	names := make([]string, 0, len(c.channels))
	for name := range c.channels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := c.channels[name]
		res.Wavelengths = append(res.Wavelengths, st.wavelength)
		lp := res.PerLink[st.wavelength.LinkID]
		lp.Wavelengths++
		lp.ProvisionedGbps += st.wavelength.Mode.DataRateGbps
		res.PerLink[st.wavelength.LinkID] = lp
	}
	return res
}

// RestoreReport is the full outcome of handling one fiber event: the
// restoration result, the latency breakdown of the recovery path, and
// the devices the degraded push had to skip. The chaos drill engine
// (internal/chaos) scores recovery with these numbers.
type RestoreReport struct {
	// Event is the telemetry event that triggered the handling (zero
	// when HandleFiberCutReport was invoked directly).
	Event telemetry.Event
	// Result is the restoration outcome; nil on fiber-restored events.
	Result *restore.Result
	// Playbook reports whether a precomputed plan short-circuited the
	// live solve.
	Playbook bool
	// SolveTime and PushTime split the recovery latency into computing
	// the restoration plan and pushing it to the hardware.
	SolveTime time.Duration
	PushTime  time.Duration
	// PushTxTime and PushWSSTime break PushTime into its two pipeline
	// phases: the concurrent transponder push (teardown + retune, one
	// batched RPC per device) and the concurrent WSS passband push.
	PushTxTime  time.Duration
	PushWSSTime time.Duration
	// SkippedDevices lists devices that stayed unreachable through the
	// retry policy during the push — the degraded-mode escape hatch:
	// restoration proceeds for every vendor that answers, and the
	// audit/Repair loop reconverges the stragglers once they return.
	SkippedDevices []string
	// PendingChannels lists channels whose intended configuration is
	// recorded but not fully pushed because an endpoint was skipped.
	PendingChannels []string
}

// Degraded reports whether any device was skipped during the push.
func (r *RestoreReport) Degraded() bool { return len(r.SkippedDevices) > 0 }

// HandleFiberCut runs the optical restoration module for a detected cut
// and returns the restoration result for reporting. It is
// HandleFiberCutReport without the latency/degradation detail.
func (c *Controller) HandleFiberCut(fiber string) (*restore.Result, error) {
	rep, err := c.HandleFiberCutReport(fiber)
	if err != nil {
		return nil, err
	}
	return rep.Result, nil
}

// HandleFiberCutReport runs the optical restoration module for a
// detected cut: it computes the restoration plan (playbook hit or live
// solve), retunes the affected transponder pairs onto their new
// paths/modes/spectrum, and updates the WSS passbands along both old and
// new paths. The push is degraded-mode: a device that stays unreachable
// through the retry policy is skipped and reported rather than aborting
// the restoration of every other channel; the controller still records
// the full intended state, so a later Repair converges the skipped
// devices once they come back.
func (c *Controller) HandleFiberCutReport(fiber string) (*RestoreReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.downFibers[fiber] {
		return nil, fmt.Errorf("controller: fiber %s already marked down", fiber)
	}
	c.downFibers[fiber] = true
	cut := make([]string, 0, len(c.downFibers))
	for f := range c.downFibers {
		cut = append(cut, f)
	}
	sort.Strings(cut)

	rep := &RestoreReport{}
	solveStart := time.Now()
	if pre, ok := c.playbookEntryLocked(fiber); ok {
		rep.Result = pre
		rep.Playbook = true
		c.logf("controller: applying precomputed restoration plan for %s", fiber)
	} else {
		base := c.currentPlanLocked()
		live, err := restore.Solve(restore.Problem{
			Optical:  c.cfg.Optical,
			IP:       c.cfg.IP,
			Catalog:  c.cfg.Catalog,
			Grid:     c.cfg.Grid,
			Base:     base,
			Scenario: restore.Scenario{ID: "live-" + fiber, CutFibers: cut},
			K:        c.cfg.K,
		})
		if err != nil {
			return nil, err
		}
		rep.Result = live
	}
	rep.SolveTime = time.Since(solveStart)
	res := rep.Result

	pushStart := time.Now()
	skipped := make(map[string]bool)
	skip := func(deviceID string, err error) {
		if !skipped[deviceID] {
			skipped[deviceID] = true
			rep.SkippedDevices = append(rep.SkippedDevices, deviceID)
		}
		c.logf("controller: degraded push: skipping %s: %v", deviceID, err)
	}

	// Build the full per-device document set first: teardown documents
	// for every failed channel, then retune documents for the restored
	// ones re-provisioned on their original hardware (the "spare
	// transponders whose original wavelengths are passing through the
	// cut fiber", §8). A transponder torn down and immediately retuned
	// gets both documents in one batched RPC, applied in order.
	failedNames := c.failedChannelsLocked(cut)
	type hw struct{ txA, txB string }
	spares := make(map[string][]hw) // linkID → freed transponder pairs
	txPlan := newPushPlan()
	off := devmodel.TransponderConfig{Enabled: false}
	for _, name := range failedNames {
		st := c.channels[name]
		c.removePassbandsLocked(name, st.wavelength.Path.Fibers)
		delete(c.channels, name)
		spares[st.wavelength.LinkID] = append(spares[st.wavelength.LinkID], hw{st.txA, st.txB})
		// Disable both ends; a dark transponder stops alarming. An
		// unreachable end is already dark — it is skipped and reported.
		txPlan.add(st.txA, off, "")
		txPlan.add(st.txB, off, "")
	}

	for _, r := range res.Restored {
		pool := spares[r.LinkID]
		if len(pool) == 0 {
			return nil, fmt.Errorf("controller: restoration for %s needs more transponders than failed", r.LinkID)
		}
		pair := pool[0]
		spares[r.LinkID] = pool[1:]
		c.seq[r.LinkID]++
		channel := fmt.Sprintf("%s:%d", r.LinkID, c.seq[r.LinkID])
		w := plan.Wavelength{
			LinkID:   r.LinkID,
			Path:     r.Path,
			Mode:     r.Mode,
			Interval: r.Interval,
		}
		cfg := transponderConfig(w, channel)
		txPlan.add(pair.txA, cfg, channel)
		txPlan.add(pair.txB, cfg, channel)
		// Record the full intent even when an endpoint ends up skipped:
		// Repair re-pushes exactly this state once the device returns.
		for _, f := range w.Path.Fibers {
			wc := c.wssConfig[f]
			wc.Passbands = append(wc.Passbands, devmodel.Passband{
				Channel: channel, Start: w.Interval.Start, Count: w.Interval.Count,
			})
			c.wssConfig[f] = wc
		}
		c.channels[channel] = &channelState{wavelength: w, txA: pair.txA, txB: pair.txB}
	}
	// Unused spares go back to the pool.
	for _, pool := range spares {
		for _, pair := range pool {
			c.devmgr.ReleaseTransponder(pair.txA)
			c.devmgr.ReleaseTransponder(pair.txB)
		}
	}

	// Push the transponder pipelines concurrently; devices that stay
	// unreachable through the retry policy are skipped and reported in
	// sorted device order, and the channels they should have lit are
	// surfaced as pending for Repair to converge.
	txErrs := c.executePush(txPlan)
	for _, id := range txPlan.devices() {
		if txErrs[id] != nil {
			skip(id, txErrs[id])
		}
	}
	rep.PendingChannels = append(rep.PendingChannels, txPlan.pendingChannels(txErrs)...)
	rep.PushTxTime = time.Since(pushStart)

	wssStart := time.Now()
	if err := c.pushWSSDegradedLocked(skip); err != nil {
		return nil, err
	}
	rep.PushWSSTime = time.Since(wssStart)
	rep.PushTime = time.Since(pushStart)
	sort.Strings(rep.SkippedDevices)
	c.logf("controller: fiber %s cut — restored %d/%d Gbps over %d channels (%d devices skipped)",
		fiber, res.RestoredGbps, res.AffectedGbps, len(res.Restored), len(rep.SkippedDevices))
	c.recordLocked("restore", fmt.Sprintf("fiber %s cut: restored %d/%d Gbps over %d channels",
		fiber, res.RestoredGbps, res.AffectedGbps, len(res.Restored)))
	return rep, nil
}

// HandleFiberRestored clears the down mark of a fiber whose light came
// back — the other half of the telemetry loop, and what keeps a
// flapping fiber from polluting every later restoration solve with a
// stale cut. Channels moved off the fiber stay where they are (reversion
// is a planned maintenance action, not a reflex). It reports whether the
// fiber was marked down.
func (c *Controller) HandleFiberRestored(fiber string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.downFibers[fiber] {
		return false
	}
	delete(c.downFibers, fiber)
	c.logf("controller: fiber %s back in service", fiber)
	c.recordLocked("fiber-restored", fmt.Sprintf("fiber %s back in service", fiber))
	return true
}

// failedChannelsLocked lists channels whose path crosses any cut fiber.
func (c *Controller) failedChannelsLocked(cut []string) []string {
	cutSet := make(map[string]bool, len(cut))
	for _, f := range cut {
		cutSet[f] = true
	}
	var out []string
	for name, st := range c.channels {
		for _, f := range st.wavelength.Path.Fibers {
			if cutSet[f] {
				out = append(out, name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// removePassbandsLocked strips the channel's passband from the given
// fibers' accumulated configs.
func (c *Controller) removePassbandsLocked(channel string, fibers []string) {
	for _, f := range fibers {
		wc := c.wssConfig[f]
		kept := wc.Passbands[:0]
		for _, pb := range wc.Passbands {
			if pb.Channel != channel {
				kept = append(kept, pb)
			}
		}
		wc.Passbands = kept
		c.wssConfig[f] = wc
	}
}

// Watch consumes fiber events from the data stream and drives restoration
// until the events channel closes. Each handled event is reported through
// the callback (which may be nil).
func (c *Controller) Watch(events <-chan telemetry.Event, onRestore func(*restore.Result)) {
	c.WatchContext(context.Background(), events, func(rep *RestoreReport) {
		if rep.Result != nil && onRestore != nil {
			onRestore(rep.Result)
		}
	})
}

// WatchContext consumes fiber events from the data stream and drives
// restoration until the events channel closes or the context is
// cancelled — the cancellable form drills and operator tooling use to
// shut the loop down without leaking the goroutine. Fiber-cut events run
// HandleFiberCutReport; fiber-restored events clear the down mark. Each
// handled event produces one report through the callback (which may be
// nil); fiber-restored reports carry a nil Result.
func (c *Controller) WatchContext(ctx context.Context, events <-chan telemetry.Event, onReport func(*RestoreReport)) {
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			switch ev.Kind {
			case "fiber-cut":
				rep, err := c.HandleFiberCutReport(ev.Fiber)
				if err != nil {
					c.logf("controller: restoration for %s failed: %v", ev.Fiber, err)
					continue
				}
				rep.Event = ev
				if onReport != nil {
					onReport(rep)
				}
			case "fiber-restored":
				if !c.HandleFiberRestored(ev.Fiber) {
					continue
				}
				if onReport != nil {
					onReport(&RestoreReport{Event: ev})
				}
			}
		}
	}
}

// SetPlaybook installs precomputed restoration plans keyed by fiber ID —
// §4.4's offline pre-computation ("the restoration plan for each fiber
// cut scenario can be produced offline"). HandleFiberCut consults the
// playbook before solving live: if an entry exists for the cut fiber and
// the network still matches the state the plan was computed against (no
// prior failures), it is applied directly, shaving the solver latency off
// the recovery path.
func (c *Controller) SetPlaybook(plans map[string]*restore.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.playbook = plans
}

// playbookEntryLocked returns the precomputed plan for the fiber when it
// is still applicable. Callers hold c.mu.
func (c *Controller) playbookEntryLocked(fiber string) (*restore.Result, bool) {
	if c.playbook == nil {
		return nil, false
	}
	// A precomputed plan assumed the full pre-failure network; once any
	// other fiber is already down, the live solver must run instead.
	if len(c.downFibers) > 1 {
		return nil, false
	}
	res, ok := c.playbook[fiber]
	return res, ok
}
