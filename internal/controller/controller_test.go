package controller

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/phy"
	"flexwan/internal/restore"
	"flexwan/internal/spectrum"
	"flexwan/internal/telemetry"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// harness is a complete simulated deployment: optical topology, physical
// fabric, device agents, and a controller wired to all of them.
type harness struct {
	fabric       *device.Fabric
	optical      *topology.Optical
	ip           *topology.IPTopology
	ctrl         *Controller
	transponders map[string]*device.Transponder
	wss          map[string]*device.WSS
	sources      []telemetry.Source
}

// ringFibers is the Fig. 4 ring: A–B direct plus a longer detour via C.
var ringFibers = []struct {
	id   string
	a, b topology.NodeID
	l    float64
}{
	{"f1", "A", "B", 600},
	{"f2", "A", "C", 500},
	{"f3", "C", "B", 700},
}

// newHarness builds the ring with nTx transponders per site and one
// pixel-wise WSS plus one amplifier per fiber.
func newHarness(t *testing.T, nTx int, demands ...topology.IPLink) *harness {
	t.Helper()
	h := &harness{
		fabric:       device.NewFabric(phy.DefaultLink()),
		optical:      topology.New(),
		ip:           &topology.IPTopology{},
		transponders: make(map[string]*device.Transponder),
		wss:          make(map[string]*device.WSS),
	}
	grid := spectrum.DefaultGrid()
	for _, f := range ringFibers {
		if err := h.optical.AddFiber(f.id, f.a, f.b, f.l); err != nil {
			t.Fatal(err)
		}
		if err := h.fabric.AddFiber(f.id, f.l); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range demands {
		if err := h.ip.AddLink(d); err != nil {
			t.Fatal(err)
		}
	}
	ctrl, err := New(Config{
		Optical: h.optical,
		IP:      h.ip,
		Catalog: transponder.SVT(),
		Grid:    grid,
		K:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl = ctrl
	t.Cleanup(ctrl.Close)

	register := func(desc devmodel.Descriptor, start func(string) (string, error), close func()) {
		t.Helper()
		addr, err := start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(close)
		desc.Address = addr
		if err := ctrl.DevMgr().Register(desc); err != nil {
			t.Fatal(err)
		}
		// A second session feeds the telemetry collector (production
		// separates config and data-stream sessions).
		c, err := netconf.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		h.sources = append(h.sources, telemetry.Source{Desc: desc, Client: c})
	}

	for _, site := range []topology.NodeID{"A", "B", "C"} {
		for i := 0; i < nTx; i++ {
			desc := devmodel.Descriptor{
				ID: fmt.Sprintf("tx-%s-%d", site, i), Class: devmodel.ClassTransponder,
				Vendor: "vendorA", Address: "pending", Site: string(site),
			}
			tr := device.NewTransponder(desc, grid, transponder.SVT(), h.fabric)
			h.transponders[desc.ID] = tr
			register(desc, tr.Start, tr.Close)
		}
	}
	for _, f := range ringFibers {
		desc := devmodel.Descriptor{
			ID: "wss-" + f.id, Class: devmodel.ClassWSS,
			Vendor: "vendorB", Address: "pending", Site: string(f.a), Fiber: f.id,
		}
		w := device.NewWSS(desc, grid)
		h.wss[f.id] = w
		register(desc, w.Start, w.Close)

		ampDesc := devmodel.Descriptor{
			ID: "amp-" + f.id, Class: devmodel.ClassAmplifier,
			Vendor: "vendorC", Address: "pending", Site: string(f.a), Fiber: f.id,
		}
		amp := device.NewAmplifier(ampDesc, h.fabric, f.id)
		register(ampDesc, amp.Start, amp.Close)
	}
	return h
}

func TestPlanApplyAudit(t *testing.T) {
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 600})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("plan infeasible: %v", res.Unserved)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	report, err := h.ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Errorf("audit dirty: %+v", report)
	}
	if report.ChannelsChecked != len(res.Wavelengths) {
		t.Errorf("audited %d channels, plan has %d", report.ChannelsChecked, len(res.Wavelengths))
	}
	// Live capacity covers the demand.
	if got := h.ctrl.LiveCapacityGbps()["e1"]; got < 600 {
		t.Errorf("live capacity = %d, want ≥ 600", got)
	}
	// The hardware decodes cleanly: every enabled transponder reports
	// post-FEC BER 0.
	for id, tr := range h.transponders {
		st := tr.State()
		if st.Config.Enabled && st.PostFECBER != 0 {
			t.Errorf("%s: post-FEC BER %v on healthy plan", id, st.PostFECBER)
		}
	}
	// The WSS on f1 passes the wavelength's interval.
	for _, ch := range h.ctrl.Channels() {
		st := h.ctrl.channels[ch]
		for _, f := range st.wavelength.Path.Fibers {
			if !h.wss[f].PassesInterval(st.wavelength.Interval) {
				t.Errorf("WSS on %s does not pass %v for %s", f, st.wavelength.Interval, ch)
			}
		}
	}
}

func TestApplyExhaustsTransponderPool(t *testing.T) {
	// 1 transponder per site cannot carry 1600 Gbps (needs ≥ 2 channels).
	h := newHarness(t, 1, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 1600})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	err = h.ctrl.Apply(res)
	if err == nil || !strings.Contains(err.Error(), "no free transponder") {
		t.Errorf("Apply with exhausted pool: %v", err)
	}
}

func TestEndToEndFiberCutRestoration(t *testing.T) {
	// 400 Gbps planned on the 600 km f1 path; after the cut the SVT
	// re-modulates to 400G@112.5 GHz (reach 1600 km) on the 1200 km
	// detour — full revival, the Fig. 4 mechanism.
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	// All channels ride the 600 km f1 path (shortest).
	for _, ch := range h.ctrl.Channels() {
		if got := h.ctrl.channels[ch].wavelength.Path.Fibers; len(got) != 1 || got[0] != "f1" {
			t.Fatalf("channel %s path = %v, want [f1]", ch, got)
		}
	}

	store := telemetry.NewStore(256)
	col := telemetry.NewCollector(store, 50*time.Millisecond, h.sources)
	col.Run()
	defer col.Stop()
	time.Sleep(100 * time.Millisecond)

	restored := make(chan struct{})
	go func() {
		for ev := range col.Events() {
			if ev.Kind != "fiber-cut" {
				continue
			}
			if _, err := h.ctrl.HandleFiberCut(ev.Fiber); err != nil {
				t.Errorf("HandleFiberCut: %v", err)
			}
			close(restored)
			return
		}
	}()

	h.fabric.Cut("f1")
	select {
	case <-restored:
	case <-time.After(5 * time.Second):
		t.Fatal("cut was not detected and restored")
	}

	// The link's capacity must be fully revived over the 1200 km detour.
	if got := h.ctrl.LiveCapacityGbps()["e1"]; got != 400 {
		t.Errorf("restored capacity = %d, want 400", got)
	}
	for _, ch := range h.ctrl.Channels() {
		w := h.ctrl.channels[ch].wavelength
		if len(w.Path.Fibers) != 2 {
			t.Errorf("channel %s path = %v, want the f2+f3 detour", ch, w.Path.Fibers)
		}
	}
	// Post-restoration audit is clean and hardware decodes error-free.
	report, err := h.ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Errorf("post-restoration audit dirty: %+v", report)
	}
	for id, tr := range h.transponders {
		st := tr.State()
		if st.Config.Enabled && st.PostFECBER != 0 {
			t.Errorf("%s: post-FEC BER %v after restoration", id, st.PostFECBER)
		}
	}
}

func TestHandleFiberCutIdempotent(t *testing.T) {
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ctrl.HandleFiberCut("f1"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ctrl.HandleFiberCut("f1"); err == nil {
		t.Error("second cut of the same fiber accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	h := newHarness(t, 1, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100})
	dm := h.ctrl.DevMgr()
	if err := dm.Register(devmodel.Descriptor{}); err == nil {
		t.Error("empty descriptor accepted")
	}
	if err := dm.Register(devmodel.Descriptor{
		ID: "x", Class: devmodel.ClassTransponder, Address: "127.0.0.1:1", Site: "A",
	}); err == nil {
		t.Error("unreachable device accepted")
	}
	// Identity mismatch: register a live agent under the wrong ID.
	tr := device.NewTransponder(devmodel.Descriptor{
		ID: "real-id", Class: devmodel.ClassTransponder, Vendor: "v", Address: "x", Site: "A",
	}, spectrum.DefaultGrid(), transponder.SVT(), h.fabric)
	addr, err := tr.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	err = dm.Register(devmodel.Descriptor{
		ID: "claimed-id", Class: devmodel.ClassTransponder, Address: addr, Site: "A",
	})
	if err == nil || !strings.Contains(err.Error(), "identifies as") {
		t.Errorf("identity mismatch error = %v", err)
	}
}

func TestClaimReleaseTransponder(t *testing.T) {
	h := newHarness(t, 2, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100})
	dm := h.ctrl.DevMgr()
	if n := dm.FreeTransponders("A"); n != 2 {
		t.Fatalf("free at A = %d, want 2", n)
	}
	id, err := dm.ClaimTransponder("A", "e1:1")
	if err != nil {
		t.Fatal(err)
	}
	if ch, ok := dm.Assignment(id); !ok || ch != "e1:1" {
		t.Errorf("assignment = %q, %v", ch, ok)
	}
	if n := dm.FreeTransponders("A"); n != 1 {
		t.Errorf("free after claim = %d", n)
	}
	dm.ReleaseTransponder(id)
	if n := dm.FreeTransponders("A"); n != 2 {
		t.Errorf("free after release = %d", n)
	}
	// Double release is a no-op.
	dm.ReleaseTransponder(id)
	if n := dm.FreeTransponders("A"); n != 2 {
		t.Errorf("free after double release = %d", n)
	}
	if _, err := dm.ClaimTransponder("nowhere", "c"); err == nil {
		t.Error("claim at unknown site succeeded")
	}
}

func TestControllerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	g := topology.New()
	ip := &topology.IPTopology{}
	if _, err := New(Config{Optical: g, IP: ip, Grid: spectrum.DefaultGrid()}); err == nil {
		t.Error("empty catalog accepted")
	}
	if _, err := New(Config{Optical: g, IP: ip, Catalog: transponder.SVT()}); err == nil {
		t.Error("zero grid accepted")
	}
}

func TestWatchDrivesRestoration(t *testing.T) {
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	events := make(chan telemetry.Event, 4)
	restored := make(chan *restore.Result, 1)
	done := make(chan struct{})
	go func() {
		h.ctrl.Watch(events, func(r *restore.Result) { restored <- r })
		close(done)
	}()
	events <- telemetry.Event{Kind: "noise"} // ignored
	events <- telemetry.Event{Kind: "fiber-cut", Fiber: "f1", Time: time.Now()}
	select {
	case r := <-restored:
		if r.RestoredGbps != 400 {
			t.Errorf("restored = %d, want 400", r.RestoredGbps)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Watch did not drive restoration")
	}
	close(events)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Watch did not return after channel close")
	}
}

// TestConcurrentReadsDuringRestoration hammers the controller's read
// paths while a fiber cut is being handled; run with -race in CI.
func TestConcurrentReadsDuringRestoration(t *testing.T) {
	h := newHarness(t, 4, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 800})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = h.ctrl.Channels()
					_ = h.ctrl.LiveCapacityGbps()
					if _, err := h.ctrl.Audit(); err != nil {
						t.Errorf("audit: %v", err)
						return
					}
				}
			}
		}()
	}
	if _, err := h.ctrl.HandleFiberCut("f1"); err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()
	report, err := h.ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Errorf("final audit dirty: %+v", report)
	}
}

func TestPlaybookUsedForFirstFailure(t *testing.T) {
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	// Precompute the f1 plan offline, as §4.4 prescribes.
	pre, err := restore.Solve(restore.Problem{
		Optical: h.optical, IP: h.ip, Catalog: transponder.SVT(),
		Grid: h.ctrl.cfg.Grid, Base: res,
		Scenario: restore.Scenario{ID: "pre-f1", CutFibers: []string{"f1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl.SetPlaybook(map[string]*restore.Result{"f1": pre})

	got, err := h.ctrl.HandleFiberCut("f1")
	if err != nil {
		t.Fatal(err)
	}
	if got != pre {
		t.Error("controller did not use the precomputed plan")
	}
	report, err := h.ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Errorf("audit after playbook restoration: %+v", report)
	}
	if h.ctrl.LiveCapacityGbps()["e1"] != 400 {
		t.Errorf("capacity = %d", h.ctrl.LiveCapacityGbps()["e1"])
	}
	// Second failure (f2) must NOT use any playbook entry: the network
	// state has diverged from the pre-failure assumption.
	pre2, err := restore.Solve(restore.Problem{
		Optical: h.optical, IP: h.ip, Catalog: transponder.SVT(),
		Grid: h.ctrl.cfg.Grid, Base: res,
		Scenario: restore.Scenario{ID: "pre-f2", CutFibers: []string{"f2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl.SetPlaybook(map[string]*restore.Result{"f2": pre2})
	got2, err := h.ctrl.HandleFiberCut("f2")
	if err != nil {
		t.Fatal(err)
	}
	if got2 == pre2 {
		t.Error("stale playbook entry used after a prior failure")
	}
}

func TestSequentialDoubleFailure(t *testing.T) {
	// Cut f1 (restored onto the detour), then cut f3 (severs the detour):
	// A and B are now disconnected, so the second restoration revives
	// nothing — and the controller stays consistent throughout.
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	first, err := h.ctrl.HandleFiberCut("f1")
	if err != nil {
		t.Fatal(err)
	}
	if first.RestoredGbps != 400 {
		t.Fatalf("first restoration = %d", first.RestoredGbps)
	}
	second, err := h.ctrl.HandleFiberCut("f3")
	if err != nil {
		t.Fatal(err)
	}
	if second.RestoredGbps != 0 {
		t.Errorf("second restoration revived %d Gbps on a disconnected pair", second.RestoredGbps)
	}
	if got := h.ctrl.LiveCapacityGbps()["e1"]; got != 0 {
		t.Errorf("live capacity = %d after total isolation", got)
	}
	report, err := h.ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Errorf("audit dirty after double failure: %+v", report)
	}
	// All transponder pairs must have been returned to the pool.
	for site, want := range map[string]int{"A": 3, "B": 3, "C": 3} {
		if got := h.ctrl.DevMgr().FreeTransponders(site); got != want {
			t.Errorf("site %s free = %d, want %d", site, got, want)
		}
	}
}

func TestDevMgrIntrospection(t *testing.T) {
	h := newHarness(t, 1, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100})
	dm := h.ctrl.DevMgr()
	devices := dm.Devices()
	// 3 transponders + 3 WSS + 3 amplifiers.
	if len(devices) != 9 {
		t.Fatalf("devices = %d, want 9", len(devices))
	}
	for i := 1; i < len(devices); i++ {
		if devices[i-1].ID >= devices[i].ID {
			t.Fatal("Devices not sorted by ID")
		}
	}
	desc, ok := dm.Descriptor("wss-f1")
	if !ok || desc.Fiber != "f1" || desc.Class != devmodel.ClassWSS {
		t.Errorf("Descriptor(wss-f1) = %+v, %v", desc, ok)
	}
	if _, ok := dm.Descriptor("ghost"); ok {
		t.Error("Descriptor(ghost) succeeded")
	}
	if _, ok := dm.WSSForFiber("nonexistent"); ok {
		t.Error("WSSForFiber(nonexistent) succeeded")
	}
}

func TestControllerLogf(t *testing.T) {
	var lines []string
	h := newHarness(t, 2, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100})
	h.ctrl.cfg.Logf = func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("no log lines emitted")
	}
}

func TestAuditReportsDeadDevice(t *testing.T) {
	h := newHarness(t, 2, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	// Kill the WSS on the active path: the audit must surface the outage
	// as an error rather than report a clean network.
	h.wss["f1"].Close()
	if _, err := h.ctrl.Audit(); err == nil {
		t.Error("audit succeeded against a dead WSS")
	}
}
