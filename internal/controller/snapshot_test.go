package controller

import (
	"testing"

	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

func TestSnapshotRoundTrip(t *testing.T) {
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 800})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	snap := h.ctrl.Snapshot()
	if len(snap.Channels) != len(res.Wavelengths) {
		t.Errorf("snapshot channels = %d, want %d", len(snap.Channels), len(res.Wavelengths))
	}
	data, err := MarshalSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Channels) != len(snap.Channels) || len(back.WSSConfig) != len(snap.WSSConfig) {
		t.Errorf("round trip lost state: %d/%d channels, %d/%d WSS",
			len(back.Channels), len(snap.Channels), len(back.WSSConfig), len(snap.WSSConfig))
	}
	for name, ch := range snap.Channels {
		got := back.Channels[name]
		if got.TxA != ch.TxA || got.TxB != ch.TxB || got.Wavelength.Mode != ch.Wavelength.Mode {
			t.Errorf("channel %s differs after round trip", name)
		}
	}
}

func TestStandbyFailover(t *testing.T) {
	// Primary plans and applies; a standby with its own sessions loads
	// the snapshot and carries on: audit clean, restoration works.
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	snap := h.ctrl.Snapshot()

	standby, err := New(Config{
		Optical: h.optical, IP: h.ip, Catalog: transponder.SVT(),
		Grid: h.ctrl.cfg.Grid, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()
	// The standby dials the same fleet.
	for _, src := range h.sources {
		if err := standby.DevMgr().Register(src.Desc); err != nil {
			t.Fatal(err)
		}
	}
	// Primary dies.
	h.ctrl.Close()

	if err := standby.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	report, err := standby.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() || report.ChannelsChecked != len(snap.Channels) {
		t.Errorf("standby audit = %+v", report)
	}
	// The standby can drive restoration.
	r, err := standby.HandleFiberCut("f1")
	if err != nil {
		t.Fatal(err)
	}
	if r.RestoredGbps != 400 {
		t.Errorf("standby restored %d, want 400", r.RestoredGbps)
	}
	if got := standby.LiveCapacityGbps()["e1"]; got != 400 {
		t.Errorf("live capacity after standby restoration = %d", got)
	}
}

func TestLoadSnapshotValidation(t *testing.T) {
	h := newHarness(t, 2, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	snap := h.ctrl.Snapshot()
	// Loading onto a non-empty controller is rejected.
	if err := h.ctrl.LoadSnapshot(snap); err == nil {
		t.Error("LoadSnapshot on live controller accepted")
	}
	// A snapshot referencing unknown hardware is rejected.
	standby, err := New(Config{
		Optical: h.optical, IP: h.ip, Catalog: transponder.SVT(), Grid: h.ctrl.cfg.Grid,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()
	if err := standby.LoadSnapshot(snap); err == nil {
		t.Error("LoadSnapshot without registered fleet accepted")
	}
}

func TestRepairMisconnection(t *testing.T) {
	h := newHarness(t, 3, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400})
	res, err := h.ctrl.PlanNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctrl.Apply(res); err != nil {
		t.Fatal(err)
	}
	// Clean state: Repair is a no-op.
	fixed, err := h.ctrl.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 0 {
		t.Errorf("repair on clean state fixed %v", fixed)
	}

	// Sabotage: a vendor tool wipes the WSS passbands on f1 (the kind of
	// drift §9's misconnection lesson describes).
	wssAddr := h.wss["f1"].Descriptor().Address
	rogue, err := netconf.Dial(wssAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	if err := rogue.Call(netconf.OpEditConfig, devmodel.WSSConfig{}, nil); err != nil {
		t.Fatal(err)
	}
	report, err := h.ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if report.Clean() {
		t.Fatal("audit missed the sabotage")
	}

	fixed, err = h.ctrl.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) == 0 {
		t.Error("repair reported nothing fixed")
	}
	report, err = h.ctrl.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Errorf("audit still dirty after repair: %+v", report)
	}
	// The signal actually passes again.
	for _, ch := range h.ctrl.Channels() {
		st := h.ctrl.channels[ch]
		for _, f := range st.wavelength.Path.Fibers {
			if !h.wss[f].PassesInterval(st.wavelength.Interval) {
				t.Errorf("WSS on %s still clips %s after repair", f, ch)
			}
		}
	}
}

func TestClaimSpecific(t *testing.T) {
	h := newHarness(t, 2, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100})
	dm := h.ctrl.DevMgr()
	if err := dm.ClaimSpecific("tx-A-1", "chan"); err != nil {
		t.Fatal(err)
	}
	if ch, ok := dm.Assignment("tx-A-1"); !ok || ch != "chan" {
		t.Errorf("assignment = %q, %v", ch, ok)
	}
	if err := dm.ClaimSpecific("tx-A-1", "other"); err == nil {
		t.Error("double claim accepted")
	}
	if err := dm.ClaimSpecific("ghost", "chan"); err == nil {
		t.Error("unknown device accepted")
	}
	if n := dm.FreeTransponders("A"); n != 1 {
		t.Errorf("free at A = %d, want 1", n)
	}
}
