package controller

import (
	"sync"
	"time"
)

// ConfigVersion is one immutable entry in the controller's audit
// history: who changed the network intent, when, through which action,
// and the full state snapshot after the change. Versions are assigned by
// the store, monotonically from 1. The paper's controller keeps "one
// source of configuration for all devices" (§4.3); the version log is
// that source made auditable — every Apply, restoration, and Repair
// leaves a record an operator (or the /v1/configs API) can replay.
type ConfigVersion struct {
	Version int       `json:"version"`
	Time    time.Time `json:"time"`
	// Actor names who drove the change: "controller" by default, a
	// tenant/job identity when driven through the service API.
	Actor string `json:"actor"`
	// Action is the mutation kind: "apply", "restore", "fiber-restored",
	// "repair", or "load".
	Action  string `json:"action"`
	Summary string `json:"summary"`
	// Channels and DownFibers summarize the post-change state without
	// forcing clients to decode the full snapshot.
	Channels   int      `json:"channels"`
	DownFibers []string `json:"down_fibers,omitempty"`
	// Snapshot is the marshaled controller Snapshot after the change —
	// the replication payload, so any version can seed a standby via
	// UnmarshalSnapshot + LoadSnapshot.
	Snapshot []byte `json:"snapshot,omitempty"`
}

// ConfigStore is the pluggable audit-history backend. The in-memory
// MemStore is the default; a durable implementation (file, kv) plugs in
// behind the same interface. Implementations must be safe for concurrent
// use and must treat appended versions as immutable.
type ConfigStore interface {
	// Append stamps v with the next version number (and the current time
	// if v.Time is zero) and stores it, returning the assigned version.
	Append(v ConfigVersion) (int, error)
	// Version returns entry n (1-based), ok=false when out of range.
	Version(n int) (ConfigVersion, bool)
	// List returns the newest limit entries in ascending version order
	// (limit ≤ 0: all).
	List(limit int) []ConfigVersion
	// Len reports the number of stored versions.
	Len() int
}

// MemStore is the in-memory ConfigStore: an append-only slice under an
// RWMutex. It is the swappable default backend for the service.
type MemStore struct {
	mu       sync.RWMutex
	versions []ConfigVersion
	now      func() time.Time // injectable for deterministic tests
}

// NewMemStore builds an empty in-memory config store.
func NewMemStore() *MemStore { return &MemStore{now: time.Now} }

// SetClock replaces the timestamp source (tests only).
func (s *MemStore) SetClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// Append implements ConfigStore.
func (s *MemStore) Append(v ConfigVersion) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v.Version = len(s.versions) + 1
	if v.Time.IsZero() {
		v.Time = s.now()
	}
	s.versions = append(s.versions, v)
	return v.Version, nil
}

// Version implements ConfigStore.
func (s *MemStore) Version(n int) (ConfigVersion, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n < 1 || n > len(s.versions) {
		return ConfigVersion{}, false
	}
	return s.versions[n-1], true
}

// List implements ConfigStore.
func (s *MemStore) List(limit int) []ConfigVersion {
	s.mu.RLock()
	defer s.mu.RUnlock()
	start := 0
	if limit > 0 && limit < len(s.versions) {
		start = len(s.versions) - limit
	}
	return append([]ConfigVersion(nil), s.versions[start:]...)
}

// Len implements ConfigStore.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.versions)
}

// SetConfigStore attaches an audit store; every subsequent state-changing
// action (Apply, HandleFiberCutReport, HandleFiberRestored, Repair,
// LoadSnapshot) appends a ConfigVersion. nil detaches.
func (c *Controller) SetConfigStore(s ConfigStore) {
	c.mu.Lock()
	c.store = s
	c.mu.Unlock()
}

// SetActor names the identity recorded on subsequent versions (default
// "controller"); the service API sets it to the driving tenant/job.
func (c *Controller) SetActor(actor string) {
	c.mu.Lock()
	c.actor = actor
	c.mu.Unlock()
}

// recordLocked appends one audit entry for the action just performed.
// Callers hold c.mu. A store failure is logged, never fatal: the network
// change has already happened, and audit must not unwind it.
func (c *Controller) recordLocked(action, summary string) {
	if c.store == nil {
		return
	}
	snap := c.snapshotLocked()
	data, err := MarshalSnapshot(snap)
	if err != nil {
		c.logf("controller: audit: marshal snapshot: %v", err)
		data = nil
	}
	actor := c.actor
	if actor == "" {
		actor = "controller"
	}
	if _, err := c.store.Append(ConfigVersion{
		Actor:      actor,
		Action:     action,
		Summary:    summary,
		Channels:   len(snap.Channels),
		DownFibers: snap.DownFibers,
		Snapshot:   data,
	}); err != nil {
		c.logf("controller: audit: append: %v", err)
	}
}

// record is recordLocked for callers that do not hold c.mu.
func (c *Controller) record(action, summary string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordLocked(action, summary)
}
