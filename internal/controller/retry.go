package controller

import (
	"math/rand"
	"time"
)

// RetryPolicy governs per-RPC retries in DevMgr.Call: transient
// management-plane failures (timeouts, lost sessions, refused redials)
// are retried with capped exponential backoff plus jitter, which is how
// the controller rides out RPC loss and device restarts without
// abandoning a restoration push. Device NACKs (netconf.RPCError) are
// never retried — the device meant it.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	// Values below 1 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 2s).
	MaxDelay time.Duration
	// JitterFrac spreads each backoff uniformly over
	// [d·(1−J), d·(1+J)] so a fleet-wide outage does not produce a
	// synchronized retry storm. Zero means no jitter.
	JitterFrac float64
	// Sleep, when non-nil, replaces time.Sleep — the injectable clock
	// that makes backoff unit tests instant.
	Sleep func(time.Duration)
	// Rand, when non-nil, replaces the jitter source with a
	// deterministic one; it must return values in [0, 1).
	Rand func() float64
}

// DefaultRetryPolicy is the policy DevMgr starts with: three attempts,
// 50ms base, 1s cap, ±25% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, JitterFrac: 0.25}
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the jittered delay before retry number retry (1 is the
// first retry). It is exported so drills can log the schedule they run
// under.
func (p RetryPolicy) Backoff(retry int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= max {
			break
		}
	}
	if d > max {
		d = max
	}
	if p.JitterFrac > 0 {
		r := rand.Float64
		if p.Rand != nil {
			r = p.Rand
		}
		// Uniform over [d·(1−J), d·(1+J)].
		f := 1 - p.JitterFrac + 2*p.JitterFrac*r()
		d = time.Duration(float64(d) * f)
	}
	return d
}

func (p RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}
