package device

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Candidate-datastore operations, mirroring NETCONF's candidate
// configuration and commit model: the controller stages a validated
// configuration on every device of a change set, then commits them all —
// or discards them all if any device rejects its document. This is what
// makes a network-wide configuration push atomic across vendors.
const (
	// OpEditCandidate validates a configuration document and stages it
	// without applying.
	OpEditCandidate = "edit-candidate"
	// OpCommit applies the staged document (no-op when nothing staged).
	OpCommit = "commit"
	// OpDiscard drops the staged document.
	OpDiscard = "discard"
)

// candidate holds one staged configuration document.
type candidate struct {
	mu     sync.Mutex
	staged json.RawMessage
}

// handleCandidateOp implements the three candidate ops generically:
// validate checks a document without side effects; apply installs it.
// It reports whether the op was a candidate op (handled=false lets the
// caller dispatch its other ops).
func (c *candidate) handleCandidateOp(op string, payload json.RawMessage,
	validate func(json.RawMessage) error, apply func(json.RawMessage) error) (handled bool, err error) {
	switch op {
	case OpEditCandidate:
		if err := validate(payload); err != nil {
			return true, err
		}
		c.mu.Lock()
		c.staged = append(json.RawMessage(nil), payload...)
		c.mu.Unlock()
		return true, nil
	case OpCommit:
		c.mu.Lock()
		staged := c.staged
		c.staged = nil
		c.mu.Unlock()
		if staged == nil {
			return true, nil
		}
		if err := apply(staged); err != nil {
			// Validation passed at stage time; failure here means the
			// running state changed in between — surface it loudly.
			return true, fmt.Errorf("device: commit failed after successful stage: %w", err)
		}
		return true, nil
	case OpDiscard:
		c.mu.Lock()
		c.staged = nil
		c.mu.Unlock()
		return true, nil
	default:
		return false, nil
	}
}

// clear drops any staged document — the device-crash path, where the
// candidate datastore is volatile and does not survive a reboot.
func (c *candidate) clear() {
	c.mu.Lock()
	c.staged = nil
	c.mu.Unlock()
}

// HasStaged reports whether a document is currently staged (test hook).
func (c *candidate) HasStaged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.staged != nil
}
