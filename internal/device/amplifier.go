package device

import (
	"encoding/json"
	"fmt"
	"sync"

	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
)

// Amplifier is a simulated EDFA line amplifier on one fiber segment. Its
// state document is what the data stream module watches to localize fiber
// cuts: an amplifier whose input goes dark reports loss of signal within
// one collection interval (§4.4: "the transmitted and received power of
// two terminal devices at each end of a fiber cable could be used to
// identify the status of the fiber cable").
type Amplifier struct {
	desc   devmodel.Descriptor
	fabric *Fabric
	fiber  string
	srv    *netconf.Server

	mu sync.Mutex
}

// NewAmplifier builds an EDFA agent attached to the given fiber.
func NewAmplifier(desc devmodel.Descriptor, fabric *Fabric, fiber string) *Amplifier {
	a := &Amplifier{desc: desc, fabric: fabric, fiber: fiber}
	a.srv = netconf.NewServer(desc, a.handle)
	fabric.OnChange(a.onFiberChange)
	return a
}

// Start listens on addr and returns the bound management address.
func (a *Amplifier) Start(addr string) (string, error) {
	bound, err := a.srv.Listen(addr)
	if err != nil {
		return "", err
	}
	a.mu.Lock()
	a.desc.Address = bound
	a.mu.Unlock()
	return bound, nil
}

// Close shuts the management endpoint down.
func (a *Amplifier) Close() { a.srv.Close() }

// Server exposes the management endpoint so fault injectors can wrap its
// RPC handling.
func (a *Amplifier) Server() *netconf.Server { return a.srv }

// Descriptor returns the device's identity document.
func (a *Amplifier) Descriptor() devmodel.Descriptor {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.desc
}

// State evaluates the amplifier's standard state document.
func (a *Amplifier) State() devmodel.AmplifierState {
	link := a.fabric.Link()
	if a.fabric.IsCut(a.fiber) {
		return devmodel.AmplifierState{GainDB: 0, OutPowerDBm: -60, LossOfSignal: true}
	}
	return devmodel.AmplifierState{
		GainDB:       link.SpanLossDB(),
		OutPowerDBm:  link.LaunchPowerDBm,
		LossOfSignal: false,
	}
}

func (a *Amplifier) handle(op string, payload json.RawMessage) (interface{}, error) {
	switch op {
	case netconf.OpGetState, netconf.OpGetConfig:
		return a.State(), nil
	case netconf.OpEditConfig, OpEditCandidate, OpCommit, OpDiscard:
		// Amplifiers are not configured by the planning pipeline; accept
		// and ignore, as gain is auto-controlled in the line system.
		return nil, nil
	default:
		return nil, fmt.Errorf("device: unknown op %q", op)
	}
}

func (a *Amplifier) onFiberChange(fiberID string, cut bool) {
	if fiberID != a.fiber {
		return
	}
	kind := "los"
	if !cut {
		kind = "los-clear"
	}
	a.srv.Notify(Alarm{Device: a.desc.ID, Kind: kind, Fiber: fiberID})
}
