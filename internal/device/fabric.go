// Package device implements simulated optical hardware agents — the
// spacing-variable transponder (SVT), the pixel-wise wavelength selective
// switch (WSS) of the spectrum-sliced OLS, and line amplifiers — each
// exposing FlexWAN's standard device model over the NETCONF-like
// management protocol (§4.2–4.3 of the paper).
//
// The agents stand in for the multi-vendor production hardware the paper
// controls: every agent enforces its own vendor capabilities (a fixed-grid
// vendor rejects off-grid passbands; a BVT-only vendor rejects spacing
// changes) while speaking the same protocol and documents, which is
// exactly the property the centralized controller relies on.
//
// The Fabric ties agents to a shared physical-layer simulation (package
// phy): fiber lengths, amplifier chains, and cut state determine the OSNR
// and post-FEC BER every transponder reports, so the §6 testbed sweep and
// the fiber-cut detection pipeline exercise the same code paths as the
// paper's production system.
package device

import (
	"fmt"
	"sync"

	"flexwan/internal/phy"
	"flexwan/internal/topology"
)

// Fabric is the shared physical layer: fiber segments with lengths and
// cut state, evaluated under one link model. Agents query it for the OSNR
// of their configured path; the test harness (or a failure injector) cuts
// and repairs fibers. Fabric is safe for concurrent use.
type Fabric struct {
	link phy.LinkModel

	mu        sync.Mutex
	lengthKm  map[string]float64
	cut       map[string]bool
	observers []func(fiberID string, cut bool)
}

// NewFabric returns an empty fabric under the given link model.
func NewFabric(link phy.LinkModel) *Fabric {
	return &Fabric{
		link:     link,
		lengthKm: make(map[string]float64),
		cut:      make(map[string]bool),
	}
}

// Link returns the fabric's link model.
func (f *Fabric) Link() phy.LinkModel { return f.link }

// AddFiber registers a fiber segment.
func (f *Fabric) AddFiber(id string, lengthKm float64) error {
	if id == "" || lengthKm <= 0 {
		return fmt.Errorf("device: invalid fiber %q length %v", id, lengthKm)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.lengthKm[id]; dup {
		return fmt.Errorf("device: duplicate fiber %s", id)
	}
	f.lengthKm[id] = lengthKm
	return nil
}

// OnChange registers a callback invoked (synchronously) whenever a
// fiber's cut state flips. Agents use it to raise loss-of-signal alarms.
func (f *Fabric) OnChange(fn func(fiberID string, cut bool)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.observers = append(f.observers, fn)
}

// Cut marks the fiber as severed.
func (f *Fabric) Cut(id string) { f.setCut(id, true) }

// Repair restores a severed fiber.
func (f *Fabric) Repair(id string) { f.setCut(id, false) }

func (f *Fabric) setCut(id string, cut bool) {
	f.mu.Lock()
	if _, ok := f.lengthKm[id]; !ok || f.cut[id] == cut {
		f.mu.Unlock()
		return
	}
	f.cut[id] = cut
	observers := append([]func(string, bool){}, f.observers...)
	f.mu.Unlock()
	for _, fn := range observers {
		fn(id, cut)
	}
}

// IsCut reports the fiber's cut state. Unknown fibers read as cut — a
// signal routed over a fiber the fabric does not know is dark.
func (f *Fabric) IsCut(id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.lengthKm[id]; !ok {
		return true
	}
	return f.cut[id]
}

// PathState evaluates a fiber path: total length, received OSNR under the
// link model, and whether the light is lost (any segment cut or unknown).
func (f *Fabric) PathState(fibers []string) (lengthKm, osnrDB float64, los bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(fibers) == 0 {
		return 0, 0, true
	}
	for _, id := range fibers {
		l, ok := f.lengthKm[id]
		if !ok || f.cut[id] {
			return 0, 0, true
		}
		lengthKm += l
	}
	return lengthKm, f.link.OSNRdB(lengthKm), false
}

// Alarm is the asynchronous event document agents push when their signal
// state changes — the raw input of the controller's data stream module.
type Alarm struct {
	Device string `json:"device"`
	Kind   string `json:"kind"` // "los" | "los-clear"
	Fiber  string `json:"fiber,omitempty"`
}

// FabricFromTopology builds a fabric mirroring an optical topology's
// fiber plant — the usual way simulations wire the physical layer to the
// planning layer.
func FabricFromTopology(g *topology.Optical, link phy.LinkModel) (*Fabric, error) {
	f := NewFabric(link)
	for _, fiber := range g.Fibers() {
		if err := f.AddFiber(fiber.ID, fiber.LengthKm); err != nil {
			return nil, err
		}
	}
	return f, nil
}
