package device

import (
	"encoding/json"
	"fmt"
	"sync"

	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/spectrum"
)

// WSS is a simulated wavelength selective switch — the filtering element
// inside a MUX or ROADM. A pixel-wise (LCoS) WSS accepts any passband
// aligned to the pixel grid (§4.2's spectrum-sliced OLS); a legacy
// fixed-grid vendor only accepts passbands that start and end on its
// rigid grid, which is how the reproduction models the hardware FlexWAN
// replaces.
type WSS struct {
	desc devmodel.Descriptor
	grid spectrum.Grid
	// fixedGridGHz, when nonzero, constrains every passband to the rigid
	// grid: width and start must be multiples of it.
	fixedGridGHz float64
	srv          *netconf.Server

	mu     sync.Mutex
	config devmodel.WSSConfig

	candidate candidate
}

// NewWSS builds a pixel-wise WSS agent for one fiber's spectrum.
func NewWSS(desc devmodel.Descriptor, grid spectrum.Grid) *WSS {
	w := &WSS{desc: desc, grid: grid}
	w.srv = netconf.NewServer(desc, w.handle)
	return w
}

// NewFixedGridWSS builds a legacy rigid-grid WSS agent (e.g. 75 GHz).
func NewFixedGridWSS(desc devmodel.Descriptor, grid spectrum.Grid, gridGHz float64) *WSS {
	w := &WSS{desc: desc, grid: grid, fixedGridGHz: gridGHz}
	w.srv = netconf.NewServer(desc, w.handle)
	return w
}

// Start listens on addr and returns the bound management address.
func (w *WSS) Start(addr string) (string, error) {
	bound, err := w.srv.Listen(addr)
	if err != nil {
		return "", err
	}
	w.mu.Lock()
	w.desc.Address = bound
	w.mu.Unlock()
	return bound, nil
}

// Close shuts the management endpoint down.
func (w *WSS) Close() { w.srv.Close() }

// Server exposes the management endpoint so fault injectors can wrap its
// RPC handling.
func (w *WSS) Server() *netconf.Server { return w.srv }

// Descriptor returns the device's identity document.
func (w *WSS) Descriptor() devmodel.Descriptor {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.desc
}

// Config returns the currently applied passband set.
func (w *WSS) Config() devmodel.WSSConfig {
	w.mu.Lock()
	defer w.mu.Unlock()
	cfg := devmodel.WSSConfig{Passbands: append([]devmodel.Passband(nil), w.config.Passbands...)}
	return cfg
}

func (w *WSS) handle(op string, payload json.RawMessage) (interface{}, error) {
	if handled, err := w.candidate.handleCandidateOp(op, payload, w.validateRaw, w.applyRaw); handled {
		return nil, err
	}
	switch op {
	case netconf.OpGetConfig, netconf.OpGetState:
		return w.Config(), nil
	case netconf.OpEditConfig:
		return nil, w.applyRaw(payload)
	default:
		return nil, fmt.Errorf("device: unknown op %q", op)
	}
}

// checkConfig validates a passband set against the grid and the vendor's
// grid restriction, with no side effects.
func (w *WSS) checkConfig(cfg devmodel.WSSConfig) error {
	if err := cfg.Validate(w.grid); err != nil {
		return err
	}
	if w.fixedGridGHz > 0 {
		for _, p := range cfg.Passbands {
			if err := w.checkFixedGrid(p); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *WSS) validateRaw(payload json.RawMessage) error {
	var cfg devmodel.WSSConfig
	if err := json.Unmarshal(payload, &cfg); err != nil {
		return fmt.Errorf("device: bad WSS config: %w", err)
	}
	return w.checkConfig(cfg)
}

func (w *WSS) applyRaw(payload json.RawMessage) error {
	var cfg devmodel.WSSConfig
	if err := json.Unmarshal(payload, &cfg); err != nil {
		return fmt.Errorf("device: bad WSS config: %w", err)
	}
	if err := w.checkConfig(cfg); err != nil {
		return err
	}
	w.mu.Lock()
	w.config = cfg
	w.mu.Unlock()
	return nil
}

// HasStagedConfig reports whether a candidate document is staged.
func (w *WSS) HasStagedConfig() bool { return w.candidate.HasStaged() }

// checkFixedGrid enforces the rigid-grid vendor restriction.
func (w *WSS) checkFixedGrid(p devmodel.Passband) error {
	pixelsPerGrid := w.fixedGridGHz / w.grid.PixelGHz
	if pixelsPerGrid != float64(int(pixelsPerGrid)) {
		return fmt.Errorf("device: fixed grid %v GHz not pixel-aligned", w.fixedGridGHz)
	}
	n := int(pixelsPerGrid)
	if p.Start%n != 0 || p.Count != n {
		return fmt.Errorf("device: %s (%s) is fixed-grid %v GHz: passband %s [%d,+%d) rejected",
			w.desc.ID, w.desc.Vendor, w.fixedGridGHz, p.Channel, p.Start, p.Count)
	}
	return nil
}

// PassesInterval reports whether the WSS currently passes the entire
// interval — the signal survives this hop only if some passband covers
// its spectrum. A partially covered signal is clipped and lost (channel
// inconsistency, Figure 5a).
func (w *WSS) PassesInterval(iv spectrum.Interval) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, p := range w.config.Passbands {
		if p.Start <= iv.Start && iv.End() <= p.Interval().End() {
			return true
		}
	}
	return false
}
