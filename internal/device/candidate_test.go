package device

import (
	"testing"

	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/spectrum"
	"flexwan/internal/transponder"
)

func TestTransponderCandidateLifecycle(t *testing.T) {
	f := testFabric(t)
	tr, c := startTransponder(t, f, transponder.SVT())

	cfg := svtConfig()
	// Stage: validated but not applied.
	if err := c.Call(OpEditCandidate, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if !tr.HasStagedConfig() {
		t.Error("nothing staged after edit-candidate")
	}
	var running devmodel.TransponderConfig
	if err := c.Call(netconf.OpGetConfig, nil, &running); err != nil {
		t.Fatal(err)
	}
	if running.Enabled {
		t.Error("candidate leaked into running config before commit")
	}
	// Commit applies.
	if err := c.Call(OpCommit, nil, nil); err != nil {
		t.Fatal(err)
	}
	if tr.HasStagedConfig() {
		t.Error("staged config remains after commit")
	}
	if err := c.Call(netconf.OpGetConfig, nil, &running); err != nil {
		t.Fatal(err)
	}
	if !running.Enabled || running.DataRateGbps != cfg.DataRateGbps {
		t.Errorf("running config after commit = %+v", running)
	}
	// Commit with nothing staged is a no-op.
	if err := c.Call(OpCommit, nil, nil); err != nil {
		t.Errorf("empty commit: %v", err)
	}
}

func TestTransponderCandidateDiscard(t *testing.T) {
	f := testFabric(t)
	tr, c := startTransponder(t, f, transponder.SVT())
	if err := c.Call(OpEditCandidate, svtConfig(), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(OpDiscard, nil, nil); err != nil {
		t.Fatal(err)
	}
	if tr.HasStagedConfig() {
		t.Error("staged config survived discard")
	}
	if err := c.Call(OpCommit, nil, nil); err != nil {
		t.Fatal(err)
	}
	var running devmodel.TransponderConfig
	if err := c.Call(netconf.OpGetConfig, nil, &running); err != nil {
		t.Fatal(err)
	}
	if running.Enabled {
		t.Error("discarded config was applied")
	}
}

func TestTransponderCandidateValidatesAtStageTime(t *testing.T) {
	f := testFabric(t)
	tr, c := startTransponder(t, f, transponder.RADWAN())
	// A BVT vendor must reject a spacing-variable document at stage time.
	if err := c.Call(OpEditCandidate, svtConfig(), nil); err == nil {
		t.Fatal("BVT vendor staged a 150 GHz mode")
	}
	if tr.HasStagedConfig() {
		t.Error("rejected document left staged state")
	}
	// Malformed JSON rejected too.
	if err := c.Call(OpEditCandidate, "not-a-config", nil); err == nil {
		t.Error("malformed candidate accepted")
	}
}

func TestWSSCandidateLifecycle(t *testing.T) {
	grid := spectrum.DefaultGrid()
	desc := devmodel.Descriptor{ID: "w1", Class: devmodel.ClassWSS, Vendor: "lcos", Address: "x", Site: "A", Fiber: "f1"}
	w := NewWSS(desc, grid)
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c, err := netconf.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cfg := devmodel.WSSConfig{Passbands: []devmodel.Passband{{Channel: "e1:1", Start: 0, Count: 12}}}
	if err := c.Call(OpEditCandidate, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if !w.HasStagedConfig() {
		t.Error("nothing staged")
	}
	if got := w.Config(); len(got.Passbands) != 0 {
		t.Error("candidate visible in running WSS config")
	}
	if err := c.Call(OpCommit, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := w.Config(); len(got.Passbands) != 1 || got.Passbands[0].Channel != "e1:1" {
		t.Errorf("running config after commit = %+v", got)
	}
	// Overlapping passbands rejected at stage time.
	bad := devmodel.WSSConfig{Passbands: []devmodel.Passband{
		{Channel: "a", Start: 0, Count: 8}, {Channel: "b", Start: 4, Count: 8},
	}}
	if err := c.Call(OpEditCandidate, bad, nil); err == nil {
		t.Error("conflicting candidate accepted")
	}
	// Fixed-grid vendor restriction applies to candidates too.
	legacy := NewFixedGridWSS(devmodel.Descriptor{
		ID: "w2", Class: devmodel.ClassWSS, Vendor: "legacy", Address: "x", Site: "A", Fiber: "f2",
	}, grid, 75)
	addr2, err := legacy.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	c2, err := netconf.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	off := devmodel.WSSConfig{Passbands: []devmodel.Passband{{Channel: "x", Start: 3, Count: 7}}}
	if err := c2.Call(OpEditCandidate, off, nil); err == nil {
		t.Error("fixed-grid vendor staged an off-grid passband")
	}
}

func TestAmplifierCandidateOpsNoOp(t *testing.T) {
	f := testFabric(t)
	desc := devmodel.Descriptor{ID: "a1", Class: devmodel.ClassAmplifier, Vendor: "edfa", Address: "x", Site: "A", Fiber: "f1"}
	a := NewAmplifier(desc, f, "f1")
	addr, err := a.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	c, err := netconf.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, op := range []string{OpEditCandidate, OpCommit, OpDiscard} {
		if err := c.Call(op, map[string]int{"x": 1}, nil); err != nil {
			t.Errorf("%s on amplifier: %v", op, err)
		}
	}
	// Descriptor accessors.
	if a.Descriptor().ID != "a1" {
		t.Error("amplifier descriptor wrong")
	}
}

func TestDescriptorAccessors(t *testing.T) {
	f := testFabric(t)
	tr, _ := startTransponder(t, f, transponder.SVT())
	if tr.Descriptor().ID != "t1" {
		t.Error("transponder descriptor wrong")
	}
	w := NewWSS(devmodel.Descriptor{ID: "w9", Class: devmodel.ClassWSS, Vendor: "v", Address: "x", Site: "A", Fiber: "f1"}, spectrum.DefaultGrid())
	if w.Descriptor().ID != "w9" {
		t.Error("WSS descriptor wrong")
	}
}
