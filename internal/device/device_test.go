package device

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/phy"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

func testFabric(t *testing.T) *Fabric {
	t.Helper()
	f := NewFabric(phy.DefaultLink())
	for id, km := range map[string]float64{"f1": 600, "f2": 500, "f3": 700} {
		if err := f.AddFiber(id, km); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestFabricValidation(t *testing.T) {
	f := NewFabric(phy.DefaultLink())
	if err := f.AddFiber("", 100); err == nil {
		t.Error("empty fiber ID accepted")
	}
	if err := f.AddFiber("x", 0); err == nil {
		t.Error("zero length accepted")
	}
	if err := f.AddFiber("x", 100); err != nil {
		t.Fatal(err)
	}
	if err := f.AddFiber("x", 200); err == nil {
		t.Error("duplicate fiber accepted")
	}
}

func TestFabricPathState(t *testing.T) {
	f := testFabric(t)
	length, osnr, los := f.PathState([]string{"f2", "f3"})
	if los {
		t.Fatal("healthy path reports LOS")
	}
	if length != 1200 {
		t.Errorf("length = %v, want 1200", length)
	}
	if want := phy.DefaultLink().OSNRdB(1200); osnr != want {
		t.Errorf("OSNR = %v, want %v", osnr, want)
	}
	// Cut in the middle.
	f.Cut("f3")
	if _, _, los := f.PathState([]string{"f2", "f3"}); !los {
		t.Error("cut path does not report LOS")
	}
	f.Repair("f3")
	if _, _, los := f.PathState([]string{"f2", "f3"}); los {
		t.Error("repaired path still reports LOS")
	}
	// Unknown fiber and empty path are dark.
	if _, _, los := f.PathState([]string{"ghost"}); !los {
		t.Error("unknown fiber path not dark")
	}
	if _, _, los := f.PathState(nil); !los {
		t.Error("empty path not dark")
	}
}

func TestFabricObservers(t *testing.T) {
	f := testFabric(t)
	var events []string
	f.OnChange(func(id string, cut bool) {
		if cut {
			events = append(events, "cut-"+id)
		} else {
			events = append(events, "fix-"+id)
		}
	})
	f.Cut("f1")
	f.Cut("f1") // idempotent: no second event
	f.Repair("f1")
	f.Cut("ghost") // unknown: no event
	if len(events) != 2 || events[0] != "cut-f1" || events[1] != "fix-f1" {
		t.Errorf("events = %v", events)
	}
}

func startTransponder(t *testing.T, f *Fabric, cat transponder.Catalog) (*Transponder, *netconf.Client) {
	t.Helper()
	desc := devmodel.Descriptor{ID: "t1", Class: devmodel.ClassTransponder, Vendor: cat.Name, Address: "pending", Site: "A"}
	tr := NewTransponder(desc, spectrum.DefaultGrid(), cat, f)
	addr, err := tr.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	c, err := netconf.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return tr, c
}

func svtConfig() devmodel.TransponderConfig {
	// 600G@150GHz has 800 km reach; path f1 is 600 km: decodes cleanly.
	return devmodel.TransponderConfig{
		Enabled: true, DataRateGbps: 600, SpacingGHz: 150,
		IntervalStart: 0, IntervalCount: 12,
		PathFibers: []string{"f1"}, Channel: "e1:0",
	}
}

func TestTransponderConfigureAndState(t *testing.T) {
	f := testFabric(t)
	_, c := startTransponder(t, f, transponder.SVT())
	if err := c.Call(netconf.OpEditConfig, svtConfig(), nil); err != nil {
		t.Fatal(err)
	}
	var got devmodel.TransponderConfig
	if err := c.Call(netconf.OpGetConfig, nil, &got); err != nil {
		t.Fatal(err)
	}
	if got.DataRateGbps != 600 || got.Channel != "e1:0" {
		t.Errorf("round-tripped config = %+v", got)
	}
	var st devmodel.TransponderState
	if err := c.Call(netconf.OpGetState, nil, &st); err != nil {
		t.Fatal(err)
	}
	if st.LossOfSignal {
		t.Error("healthy circuit reports LOS")
	}
	if st.PostFECBER != 0 {
		t.Errorf("post-FEC BER = %v, want 0 (600 km ≤ 800 km reach)", st.PostFECBER)
	}
	if st.PreFECBER <= 0 || st.PreFECBER >= 0.5 {
		t.Errorf("pre-FEC BER = %v, want in (0, 0.5)", st.PreFECBER)
	}
}

func TestTransponderBeyondReach(t *testing.T) {
	f := testFabric(t)
	_, c := startTransponder(t, f, transponder.SVT())
	cfg := svtConfig()
	cfg.PathFibers = []string{"f2", "f3"} // 1200 km > 800 km reach
	if err := c.Call(netconf.OpEditConfig, cfg, nil); err != nil {
		t.Fatal(err)
	}
	var st devmodel.TransponderState
	if err := c.Call(netconf.OpGetState, nil, &st); err != nil {
		t.Fatal(err)
	}
	if st.PostFECBER <= 0 {
		t.Errorf("post-FEC BER = %v, want positive beyond reach (§6)", st.PostFECBER)
	}
	if st.LossOfSignal {
		t.Error("long path is noisy, not dark")
	}
}

func TestTransponderVendorCapability(t *testing.T) {
	// A RADWAN (BVT) vendor must reject a spacing-variable mode.
	f := testFabric(t)
	_, c := startTransponder(t, f, transponder.RADWAN())
	err := c.Call(netconf.OpEditConfig, svtConfig(), nil)
	if err == nil {
		t.Fatal("BVT vendor accepted a 150 GHz mode")
	}
	if !strings.Contains(err.Error(), "does not support") {
		t.Errorf("error = %v", err)
	}
	// Its own catalog mode is fine.
	cfg := devmodel.TransponderConfig{
		Enabled: true, DataRateGbps: 300, SpacingGHz: 75,
		IntervalStart: 0, IntervalCount: 6,
		PathFibers: []string{"f1"}, Channel: "e1:0",
	}
	if err := c.Call(netconf.OpEditConfig, cfg, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransponderInvalidConfigRejected(t *testing.T) {
	f := testFabric(t)
	_, c := startTransponder(t, f, transponder.SVT())
	cfg := svtConfig()
	cfg.IntervalCount = 5 // 150 GHz needs 12 pixels
	if err := c.Call(netconf.OpEditConfig, cfg, nil); err == nil {
		t.Error("interval/spacing mismatch accepted")
	}
}

func TestTransponderLOSAlarm(t *testing.T) {
	f := testFabric(t)
	_, c := startTransponder(t, f, transponder.SVT())
	if err := c.Call(netconf.OpEditConfig, svtConfig(), nil); err != nil {
		t.Fatal(err)
	}
	f.Cut("f1")
	select {
	case raw := <-c.Notifications():
		var al Alarm
		if err := json.Unmarshal(raw, &al); err != nil {
			t.Fatal(err)
		}
		if al.Kind != "los" || al.Fiber != "f1" || al.Device != "t1" {
			t.Errorf("alarm = %+v", al)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no LOS alarm after cut")
	}
	var st devmodel.TransponderState
	if err := c.Call(netconf.OpGetState, nil, &st); err != nil {
		t.Fatal(err)
	}
	if !st.LossOfSignal || st.PostFECBER != 0.5 {
		t.Errorf("state after cut = %+v", st)
	}
	// Repair clears.
	f.Repair("f1")
	select {
	case raw := <-c.Notifications():
		var al Alarm
		_ = json.Unmarshal(raw, &al)
		if al.Kind != "los-clear" {
			t.Errorf("alarm = %+v", al)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no clear alarm after repair")
	}
}

func TestTransponderUnrelatedCutNoAlarm(t *testing.T) {
	f := testFabric(t)
	_, c := startTransponder(t, f, transponder.SVT())
	if err := c.Call(netconf.OpEditConfig, svtConfig(), nil); err != nil {
		t.Fatal(err)
	}
	f.Cut("f3") // not on the circuit
	select {
	case raw := <-c.Notifications():
		t.Errorf("unexpected alarm: %s", raw)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestWSSPixelwiseVsFixedGrid(t *testing.T) {
	grid := spectrum.DefaultGrid()
	descP := devmodel.Descriptor{ID: "wss-p", Class: devmodel.ClassWSS, Vendor: "lcos", Address: "p", Site: "A", Fiber: "f1"}
	pixel := NewWSS(descP, grid)
	addrP, err := pixel.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pixel.Close()

	descF := devmodel.Descriptor{ID: "wss-f", Class: devmodel.ClassWSS, Vendor: "legacy", Address: "f", Site: "A", Fiber: "f1"}
	fixed := NewFixedGridWSS(descF, grid, 75)
	addrF, err := fixed.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()

	cp, err := netconf.Dial(addrP)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	cf, err := netconf.Dial(addrF)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()

	// A 150 GHz passband starting at pixel 3: pixel-wise accepts, the
	// 75 GHz fixed-grid vendor rejects (off-grid start and width).
	flexCfg := devmodel.WSSConfig{Passbands: []devmodel.Passband{{Channel: "e1:0", Start: 3, Count: 12}}}
	if err := cp.Call(netconf.OpEditConfig, flexCfg, nil); err != nil {
		t.Errorf("pixel-wise WSS rejected valid passband: %v", err)
	}
	if err := cf.Call(netconf.OpEditConfig, flexCfg, nil); err == nil {
		t.Error("fixed-grid WSS accepted an off-grid passband")
	}
	// An aligned 75 GHz passband is fine for both.
	rigid := devmodel.WSSConfig{Passbands: []devmodel.Passband{{Channel: "e1:0", Start: 6, Count: 6}}}
	if err := cf.Call(netconf.OpEditConfig, rigid, nil); err != nil {
		t.Errorf("fixed-grid WSS rejected aligned passband: %v", err)
	}

	// PassesInterval reflects the applied config.
	if !pixel.PassesInterval(spectrum.Interval{Start: 4, Count: 10}) {
		t.Error("pixel WSS should pass an interval inside its passband")
	}
	if pixel.PassesInterval(spectrum.Interval{Start: 0, Count: 6}) {
		t.Error("pixel WSS passes an unconfigured interval")
	}
}

func TestWSSOverlapRejected(t *testing.T) {
	grid := spectrum.DefaultGrid()
	desc := devmodel.Descriptor{ID: "w", Class: devmodel.ClassWSS, Vendor: "lcos", Address: "x", Site: "A", Fiber: "f1"}
	w := NewWSS(desc, grid)
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c, err := netconf.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := devmodel.WSSConfig{Passbands: []devmodel.Passband{
		{Channel: "a", Start: 0, Count: 8},
		{Channel: "b", Start: 4, Count: 8},
	}}
	if err := c.Call(netconf.OpEditConfig, bad, nil); err == nil {
		t.Error("overlapping passbands accepted")
	}
}

func TestAmplifierState(t *testing.T) {
	f := testFabric(t)
	desc := devmodel.Descriptor{ID: "amp1", Class: devmodel.ClassAmplifier, Vendor: "edfa", Address: "x", Site: "A", Fiber: "f1"}
	a := NewAmplifier(desc, f, "f1")
	addr, err := a.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	c, err := netconf.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var st devmodel.AmplifierState
	if err := c.Call(netconf.OpGetState, nil, &st); err != nil {
		t.Fatal(err)
	}
	if st.LossOfSignal {
		t.Error("healthy amplifier reports LOS")
	}
	f.Cut("f1")
	select {
	case raw := <-c.Notifications():
		var al Alarm
		_ = json.Unmarshal(raw, &al)
		if al.Kind != "los" || al.Device != "amp1" {
			t.Errorf("alarm = %+v", al)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no amplifier alarm")
	}
	if err := c.Call(netconf.OpGetState, nil, &st); err != nil {
		t.Fatal(err)
	}
	if !st.LossOfSignal {
		t.Error("cut amplifier does not report LOS")
	}
}

func TestFabricFromTopology(t *testing.T) {
	g := topology.New()
	if err := g.AddFiber("x1", "A", "B", 120); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFiber("x2", "B", "C", 340); err != nil {
		t.Fatal(err)
	}
	f, err := FabricFromTopology(g, phy.DefaultLink())
	if err != nil {
		t.Fatal(err)
	}
	length, _, los := f.PathState([]string{"x1", "x2"})
	if los || length != 460 {
		t.Errorf("path state = %v km, los %v", length, los)
	}
}
