package device

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"flexwan/internal/devmodel"
	"flexwan/internal/netconf"
	"flexwan/internal/phy"
	"flexwan/internal/spectrum"
	"flexwan/internal/transponder"
)

// Transponder is a simulated optical transponder agent. Its vendor
// capability is the transponder.Catalog it was built with: an SVT vendor
// accepts every Table 2 mode, a RADWAN vendor only the three fixed-spacing
// BVT modes. Configuration outside the catalog is rejected at
// edit-config time, as real hardware NACKs an unsupported Yang document.
type Transponder struct {
	desc    devmodel.Descriptor
	grid    spectrum.Grid
	catalog transponder.Catalog
	fabric  *Fabric
	srv     *netconf.Server

	mu     sync.Mutex
	config devmodel.TransponderConfig
	los    bool

	candidate candidate
}

// NewTransponder builds the agent. Call Start to expose it on the
// management network.
func NewTransponder(desc devmodel.Descriptor, grid spectrum.Grid, catalog transponder.Catalog, fabric *Fabric) *Transponder {
	t := &Transponder{desc: desc, grid: grid, catalog: catalog, fabric: fabric}
	t.srv = netconf.NewServer(desc, t.handle)
	fabric.OnChange(t.onFiberChange)
	return t
}

// Start listens on addr (use "127.0.0.1:0") and returns the bound
// management address, recorded into the descriptor.
func (t *Transponder) Start(addr string) (string, error) {
	bound, err := t.srv.Listen(addr)
	if err != nil {
		return "", err
	}
	t.mu.Lock()
	t.desc.Address = bound
	t.mu.Unlock()
	return bound, nil
}

// Close shuts the management endpoint down.
func (t *Transponder) Close() { t.srv.Close() }

// Server exposes the management endpoint so fault injectors can wrap its
// RPC handling.
func (t *Transponder) Server() *netconf.Server { return t.srv }

// Crash simulates a power loss: every management session drops and the
// volatile state — running and candidate configuration, alarm latch — is
// lost, exactly as a cold transponder boots unconfigured.
func (t *Transponder) Crash() {
	t.srv.Stop()
	t.mu.Lock()
	t.config = devmodel.TransponderConfig{}
	t.los = false
	t.mu.Unlock()
	t.candidate.clear()
}

// Restart brings a crashed transponder back on its previous management
// address. Its configuration is still empty — the controller's Repair
// pass detects the divergence and re-pushes the intended document.
func (t *Transponder) Restart() error {
	t.mu.Lock()
	addr := t.desc.Address
	t.mu.Unlock()
	_, err := t.srv.Listen(addr)
	return err
}

// Descriptor returns the device's identity document.
func (t *Transponder) Descriptor() devmodel.Descriptor {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.desc
}

func (t *Transponder) handle(op string, payload json.RawMessage) (interface{}, error) {
	if handled, err := t.candidate.handleCandidateOp(op, payload, t.validateRaw, t.applyRaw); handled {
		return nil, err
	}
	switch op {
	case netconf.OpGetConfig:
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.config, nil
	case netconf.OpEditConfig:
		var cfg devmodel.TransponderConfig
		if err := json.Unmarshal(payload, &cfg); err != nil {
			return nil, fmt.Errorf("device: bad transponder config: %w", err)
		}
		return nil, t.Configure(cfg)
	case netconf.OpGetState:
		return t.State(), nil
	default:
		return nil, fmt.Errorf("device: unknown op %q", op)
	}
}

// checkConfig is the validation half of Configure: grid consistency and
// vendor capability, with no side effects.
func (t *Transponder) checkConfig(cfg devmodel.TransponderConfig) error {
	if err := cfg.Validate(t.grid); err != nil {
		return err
	}
	if cfg.Enabled {
		if _, ok := t.findMode(cfg); !ok {
			return fmt.Errorf("device: %s (%s) does not support %dG at %v GHz",
				t.desc.ID, t.catalog.Name, cfg.DataRateGbps, cfg.SpacingGHz)
		}
	}
	return nil
}

// Configure validates and applies a configuration document — the same
// semantics as an edit-config RPC, callable in-process (the simulated §6
// testbed drives thousands of configurations through it).
func (t *Transponder) Configure(cfg devmodel.TransponderConfig) error {
	if err := t.checkConfig(cfg); err != nil {
		return err
	}
	t.mu.Lock()
	t.config = cfg
	t.los = false // re-evaluated on next state read
	t.mu.Unlock()
	return nil
}

func (t *Transponder) validateRaw(payload json.RawMessage) error {
	var cfg devmodel.TransponderConfig
	if err := json.Unmarshal(payload, &cfg); err != nil {
		return fmt.Errorf("device: bad transponder config: %w", err)
	}
	return t.checkConfig(cfg)
}

func (t *Transponder) applyRaw(payload json.RawMessage) error {
	var cfg devmodel.TransponderConfig
	if err := json.Unmarshal(payload, &cfg); err != nil {
		return fmt.Errorf("device: bad transponder config: %w", err)
	}
	return t.Configure(cfg)
}

// HasStagedConfig reports whether a candidate document is staged.
func (t *Transponder) HasStagedConfig() bool { return t.candidate.HasStaged() }

// findMode matches the configured (rate, spacing) against the vendor
// catalog.
func (t *Transponder) findMode(cfg devmodel.TransponderConfig) (transponder.Mode, bool) {
	for _, m := range t.catalog.Modes {
		if m.DataRateGbps == cfg.DataRateGbps && math.Abs(m.SpacingGHz-cfg.SpacingGHz) < 1e-9 {
			return m, true
		}
	}
	return transponder.Mode{}, false
}

// State evaluates the transponder's standard state document against the
// fabric: received OSNR over the configured circuit, pre-FEC BER from the
// constellation, and post-FEC BER zero exactly when the OSNR meets the
// mode's datasheet threshold — the §6 testbed observable.
func (t *Transponder) State() devmodel.TransponderState {
	t.mu.Lock()
	cfg := t.config
	t.mu.Unlock()

	st := devmodel.TransponderState{Config: cfg}
	if !cfg.Enabled {
		st.LossOfSignal = false
		st.RxPowerDBm = -60
		return st
	}
	_, osnr, los := t.fabric.PathState(cfg.PathFibers)
	if los {
		st.LossOfSignal = true
		st.RxPowerDBm = -60
		st.PreFECBER = 0.5
		st.PostFECBER = 0.5
		return st
	}
	link := t.fabric.Link()
	st.RxOSNRdB = osnr
	st.RxPowerDBm = link.LaunchPowerDBm

	mode, ok := t.findMode(cfg)
	if !ok {
		// Config slipped past validation (disabled-then-enabled race):
		// report an uncorrectable signal.
		st.PreFECBER = 0.5
		st.PostFECBER = 0.5
		return st
	}
	snr := phy.FromDB(osnr + 10*math.Log10(phy.RefNoiseBandwidthGHz/mode.BaudGBd))
	st.PreFECBER = phy.PreFECBER(mode.Modulation, snr)
	if osnr+1e-9 >= mode.RequiredOSNRdB(link) {
		st.PostFECBER = 0
	} else {
		// The decoder collapses: residual errors leak through.
		st.PostFECBER = math.Max(st.PreFECBER, 1e-6)
	}
	return st
}

// onFiberChange raises or clears a loss-of-signal alarm when a fiber on
// the configured circuit flips state.
func (t *Transponder) onFiberChange(fiberID string, cut bool) {
	t.mu.Lock()
	cfg := t.config
	affected := false
	for _, f := range cfg.PathFibers {
		if f == fiberID {
			affected = true
			break
		}
	}
	if !affected || !cfg.Enabled {
		t.mu.Unlock()
		return
	}
	changed := t.los != cut
	t.los = cut
	id := t.desc.ID
	t.mu.Unlock()
	if !changed {
		return
	}
	kind := "los"
	if !cut {
		kind = "los-clear"
	}
	t.srv.Notify(Alarm{Device: id, Kind: kind, Fiber: fiberID})
}
