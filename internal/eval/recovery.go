package eval

import (
	"fmt"

	"flexwan/internal/chaos"
	"flexwan/internal/workload"
)

// RecoveryBenchRecord is one drill scorecard as recorded in
// BENCH_recovery.json: the latency breakdown of the live recovery loop
// (detection, solve, push), the restored capacity against the offline
// oracle, and the determinism hash of the drill's event log.
type RecoveryBenchRecord = chaos.Report

// RecoveryDrill pairs a network with the scenario to run on it.
type RecoveryDrill struct {
	Network  workload.Network
	Scenario chaos.Scenario
}

// RecoveryDrillLadder is the fixed ladder recorded in
// BENCH_recovery.json: a small ring smoke drill and the CERNET
// acceptance scenario — busiest-fiber cut under 10% RPC request drops
// with one transponder crash/restart — at the given seed. The scenarios
// are fixed (rather than derived from the machine) so records from
// different machines stay comparable; only the latencies vary.
func RecoveryDrillLadder(seed int64) []RecoveryDrill {
	faults := chaos.FaultConfig{DropRequestProb: 0.10}
	return []RecoveryDrill{
		{
			Network: chaos.RingNetwork(4, 100, 200),
			Scenario: chaos.Scenario{
				Name: "ring4-cut-drop10-crash1", Seed: seed,
				Faults: faults, CrashTransponders: 1,
			},
		},
		{
			Network: workload.Cernet(seed),
			Scenario: chaos.Scenario{
				Name: "cernet-cut-drop10-crash1", Seed: seed,
				Faults: faults, CrashTransponders: 1,
			},
		},
	}
}

// RecoveryRunOptions tunes how the drill ladder executes.
type RecoveryRunOptions struct {
	// PushWorkers is the controller's config-push fan-out for the
	// primary record of each drill (0 = one in-flight pipeline per
	// device, the default; 1 = legacy serial).
	PushWorkers int
	// SerialAblation re-runs every drill on a fresh testbed with
	// PushWorkers=1 and appends the serial record after the parallel
	// one, so BENCH_recovery.json carries a serial-vs-parallel ablation
	// point per drill. Fault decisions are schedule-independent, so the
	// pair must produce byte-identical event logs — a mismatch is an
	// error, not a footnote.
	SerialAblation bool
	// Logf receives per-drill progress lines (nil silences them).
	Logf func(format string, args ...interface{})
}

// RunRecoveryDrills executes the drills, one fresh testbed per record,
// and returns their scorecards.
func RunRecoveryDrills(drills []RecoveryDrill, opts RecoveryRunOptions) ([]*RecoveryBenchRecord, error) {
	runOne := func(d RecoveryDrill, pushWorkers int) (*RecoveryBenchRecord, error) {
		tb, err := chaos.NewTestbed(d.Network, chaos.Options{PushWorkers: pushWorkers})
		if err != nil {
			return nil, fmt.Errorf("eval: building %s testbed: %w", d.Network.Name, err)
		}
		rep, _, err := chaos.Run(tb, d.Scenario)
		tb.Close()
		if err != nil {
			return nil, fmt.Errorf("eval: drill %s (push-workers %d): %w", d.Scenario.Name, pushWorkers, err)
		}
		if opts.Logf != nil {
			opts.Logf("drill %s on %s (push-workers %d): restored %d/%d Gbps, oracle match %v, audit clean %v, detect=%.1fms solve=%.1fms push=%.1fms (tx=%.1fms wss=%.1fms, %d faults, hash %.12s)",
				rep.Name, rep.Network, rep.PushWorkers, rep.RestoredGbps, rep.AffectedGbps,
				rep.OracleMatch, rep.AuditClean, rep.DetectMs, rep.SolveMs, rep.PushMs,
				rep.PushTxMs, rep.PushWSSMs, rep.FaultsInjected, rep.LogHash)
		}
		return rep, nil
	}
	var out []*RecoveryBenchRecord
	for _, d := range drills {
		rep, err := runOne(d, opts.PushWorkers)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
		if !opts.SerialAblation || opts.PushWorkers == 1 {
			continue
		}
		serial, err := runOne(d, 1)
		if err != nil {
			return nil, err
		}
		if serial.LogHash != rep.LogHash {
			return nil, fmt.Errorf("eval: drill %s event log diverged across push fan-out: serial %s vs parallel %s — fault decisions are no longer schedule-independent",
				d.Scenario.Name, serial.LogHash, rep.LogHash)
		}
		out = append(out, serial)
	}
	return out, nil
}
