package eval

import (
	"fmt"

	"flexwan/internal/chaos"
	"flexwan/internal/workload"
)

// RecoveryBenchRecord is one drill scorecard as recorded in
// BENCH_recovery.json: the latency breakdown of the live recovery loop
// (detection, solve, push), the restored capacity against the offline
// oracle, and the determinism hash of the drill's event log.
type RecoveryBenchRecord = chaos.Report

// RecoveryDrill pairs a network with the scenario to run on it.
type RecoveryDrill struct {
	Network  workload.Network
	Scenario chaos.Scenario
}

// RecoveryDrillLadder is the fixed ladder recorded in
// BENCH_recovery.json: a small ring smoke drill and the CERNET
// acceptance scenario — busiest-fiber cut under 10% RPC request drops
// with one transponder crash/restart — at the given seed. The scenarios
// are fixed (rather than derived from the machine) so records from
// different machines stay comparable; only the latencies vary.
func RecoveryDrillLadder(seed int64) []RecoveryDrill {
	faults := chaos.FaultConfig{DropRequestProb: 0.10}
	return []RecoveryDrill{
		{
			Network: chaos.RingNetwork(4, 100, 200),
			Scenario: chaos.Scenario{
				Name: "ring4-cut-drop10-crash1", Seed: seed,
				Faults: faults, CrashTransponders: 1,
			},
		},
		{
			Network: workload.Cernet(seed),
			Scenario: chaos.Scenario{
				Name: "cernet-cut-drop10-crash1", Seed: seed,
				Faults: faults, CrashTransponders: 1,
			},
		},
	}
}

// RunRecoveryDrills executes the drills, one fresh testbed each, and
// returns their scorecards.
func RunRecoveryDrills(drills []RecoveryDrill, logf func(format string, args ...interface{})) ([]*RecoveryBenchRecord, error) {
	var out []*RecoveryBenchRecord
	for _, d := range drills {
		tb, err := chaos.NewTestbed(d.Network, chaos.Options{})
		if err != nil {
			return nil, fmt.Errorf("eval: building %s testbed: %w", d.Network.Name, err)
		}
		rep, _, err := chaos.Run(tb, d.Scenario)
		tb.Close()
		if err != nil {
			return nil, fmt.Errorf("eval: drill %s: %w", d.Scenario.Name, err)
		}
		if logf != nil {
			logf("drill %s on %s: restored %d/%d Gbps, oracle match %v, audit clean %v, detect=%.1fms solve=%.1fms push=%.1fms (%d faults, hash %.12s)",
				rep.Name, rep.Network, rep.RestoredGbps, rep.AffectedGbps,
				rep.OracleMatch, rep.AuditClean, rep.DetectMs, rep.SolveMs, rep.PushMs,
				rep.FaultsInjected, rep.LogHash)
		}
		out = append(out, rep)
	}
	return out, nil
}
