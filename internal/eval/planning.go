package eval

import (
	"context"
	"fmt"
	"strings"

	"flexwan/internal/parallel"
	"flexwan/internal/plan"
	"flexwan/internal/spectrum"
	"flexwan/internal/transponder"
	"flexwan/internal/workload"
)

// Schemes returns the three backbone designs the paper compares, in the
// order they appear in every figure.
func Schemes() []transponder.Catalog {
	return []transponder.Catalog{
		transponder.Fixed100G(),
		transponder.RADWAN(),
		transponder.SVT(),
	}
}

// planScheme runs the planning heuristic for one scheme on a network.
func planScheme(n workload.Network, cat transponder.Catalog) (*plan.Result, error) {
	return plan.Solve(plan.Problem{
		Optical: n.Optical,
		IP:      n.IP,
		Catalog: cat,
		Grid:    spectrum.DefaultGrid(),
	})
}

// Fig12 is the hardware-cost-versus-scale sweep (paper Figure 12):
// transponder count and spectrum usage per scheme as demands grow, and
// the maximum scale each scheme can serve with the existing fiber plant.
type Fig12 struct {
	Network      string
	Scales       []float64
	Transponders map[string][]int     // −1 where the scale is infeasible
	SpectrumGHz  map[string][]float64 // −1 where infeasible
	MaxScale     map[string]float64
}

// Fig12HardwareVsScale sweeps demands from 1× upward in the given
// scales (e.g. 1..8). The (scheme, scale) points are independent plans,
// so they run through the shared worker pool (workers ≤ 0 = GOMAXPROCS).
func Fig12HardwareVsScale(n workload.Network, scales []float64, workers int) (Fig12, error) {
	out := Fig12{
		Network:      n.Name,
		Scales:       scales,
		Transponders: make(map[string][]int),
		SpectrumGHz:  make(map[string][]float64),
		MaxScale:     make(map[string]float64),
	}
	schemes := Schemes()
	type point struct {
		cat   transponder.Catalog
		scale float64
	}
	points := make([]point, 0, len(schemes)*len(scales))
	for _, cat := range schemes {
		for _, scale := range scales {
			points = append(points, point{cat, scale})
		}
	}
	results, errs := parallel.Map(context.Background(), parallel.Workers(workers), len(points),
		func(_ context.Context, i int) (*plan.Result, error) {
			pt := points[i]
			res, err := planScheme(n.Scale(pt.scale), pt.cat)
			if err != nil {
				return nil, fmt.Errorf("eval: %s at %gx: %w", pt.cat.Name, pt.scale, err)
			}
			return res, nil
		})
	for _, err := range errs {
		if err != nil {
			return Fig12{}, err
		}
	}
	for i, res := range results {
		pt := points[i]
		if res.Feasible() {
			out.Transponders[pt.cat.Name] = append(out.Transponders[pt.cat.Name], res.Transponders())
			out.SpectrumGHz[pt.cat.Name] = append(out.SpectrumGHz[pt.cat.Name], res.SpectrumGHz())
			if pt.scale > out.MaxScale[pt.cat.Name] {
				out.MaxScale[pt.cat.Name] = pt.scale
			}
		} else {
			out.Transponders[pt.cat.Name] = append(out.Transponders[pt.cat.Name], -1)
			out.SpectrumGHz[pt.cat.Name] = append(out.SpectrumGHz[pt.cat.Name], -1)
		}
	}
	return out, nil
}

func (f Fig12) String() string {
	header := []string{"scale"}
	for _, cat := range Schemes() {
		header = append(header, cat.Name+" tx", cat.Name+" GHz")
	}
	rows := make([][]string, len(f.Scales))
	for i, s := range f.Scales {
		row := []string{fmt.Sprintf("%g", s)}
		for _, cat := range Schemes() {
			tx := f.Transponders[cat.Name][i]
			sp := f.SpectrumGHz[cat.Name][i]
			if tx < 0 {
				row = append(row, "infeasible", "-")
			} else {
				row = append(row, fmt.Sprintf("%d", tx), fmt.Sprintf("%.0f", sp))
			}
		}
		rows[i] = row
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 12 — hardware vs capacity scale, %s\n", f.Network)
	b.WriteString(renderTable(header, rows))
	for _, cat := range Schemes() {
		fmt.Fprintf(&b, "max supported scale, %s: %gx\n", cat.Name, f.MaxScale[cat.Name])
	}
	return b.String()
}

// Savings reports the paper's §7.1 headline percentages at one scale:
// FlexWAN's reduction in transponders and spectrum versus each baseline.
type Savings struct {
	Network                 string
	Scale                   float64
	TxSavedVs100G           float64 // paper: 85%
	TxSavedVsRADWAN         float64 // paper: 57%
	SpectrumSavedVs100G     float64 // paper: 67%
	SpectrumSavedVsRADWAN   float64 // paper: 36%
	SpectralEffGainVs100G   float64 // paper: up to 215%
	SpectralEffGainVsRADWAN float64
}

// HeadlineSavings computes the §7.1 comparisons on a network.
func HeadlineSavings(n workload.Network, scale float64) (Savings, error) {
	scaled := n.Scale(scale)
	results := make(map[string]*plan.Result, 3)
	for _, cat := range Schemes() {
		res, err := planScheme(scaled, cat)
		if err != nil {
			return Savings{}, err
		}
		if !res.Feasible() {
			return Savings{}, fmt.Errorf("eval: %s infeasible at %gx on %s", cat.Name, scale, n.Name)
		}
		results[cat.Name] = res
	}
	fx, rad, flex := results["100G-WAN"], results["RADWAN"], results["FlexWAN"]
	saved := func(base, ours float64) float64 {
		if base == 0 {
			return 0
		}
		return (base - ours) / base * 100
	}
	gain := func(base, ours float64) float64 {
		if base == 0 {
			return 0
		}
		return (ours - base) / base * 100
	}
	return Savings{
		Network:                 n.Name,
		Scale:                   scale,
		TxSavedVs100G:           saved(float64(fx.Transponders()), float64(flex.Transponders())),
		TxSavedVsRADWAN:         saved(float64(rad.Transponders()), float64(flex.Transponders())),
		SpectrumSavedVs100G:     saved(fx.SpectrumGHz(), flex.SpectrumGHz()),
		SpectrumSavedVsRADWAN:   saved(rad.SpectrumGHz(), flex.SpectrumGHz()),
		SpectralEffGainVs100G:   gain(fx.MeanSpectralEfficiency(), flex.MeanSpectralEfficiency()),
		SpectralEffGainVsRADWAN: gain(rad.MeanSpectralEfficiency(), flex.MeanSpectralEfficiency()),
	}, nil
}

func (s Savings) String() string {
	return fmt.Sprintf(`§7.1 headline savings, %s at %gx
  transponders saved vs 100G-WAN: %.0f%% (paper 85%%)   vs RADWAN: %.0f%% (paper 57%%)
  spectrum saved vs 100G-WAN:     %.0f%% (paper 67%%)   vs RADWAN: %.0f%% (paper 36%%)
  spectral-efficiency gain vs 100G-WAN: %.0f%% (paper ≤215%%)  vs RADWAN: %.0f%%
`, s.Network, s.Scale,
		s.TxSavedVs100G, s.TxSavedVsRADWAN,
		s.SpectrumSavedVs100G, s.SpectrumSavedVsRADWAN,
		s.SpectralEffGainVs100G, s.SpectralEffGainVsRADWAN)
}

// Fig13a is the capacity-weighted path-length comparison of the two
// topologies (paper Figure 13a).
type Fig13a struct {
	Medians map[string]float64 // network → capacity-weighted median km
	CDFs    map[string]CDF     // network → weighted sample (expanded)
}

// Fig13aWeightedPathLengths computes weighted distributions for the
// networks.
func Fig13aWeightedPathLengths(networks ...workload.Network) Fig13a {
	out := Fig13a{Medians: make(map[string]float64), CDFs: make(map[string]CDF)}
	for _, n := range networks {
		lengths, weights := n.WeightedPathLengthsKm()
		// Expand by demand in 100G units to weight the empirical CDF.
		var sample []float64
		for i, l := range lengths {
			units := int(weights[i] / 100)
			if units < 1 {
				units = 1
			}
			for u := 0; u < units; u++ {
				sample = append(sample, l)
			}
		}
		cdf := NewCDF(sample)
		out.CDFs[n.Name] = cdf
		out.Medians[n.Name] = cdf.Percentile(50)
	}
	return out
}

func (f Fig13a) String() string {
	var b strings.Builder
	b.WriteString("Fig 13(a) — capacity-weighted optical path lengths\n")
	for name, cdf := range f.CDFs {
		fmt.Fprintf(&b, "  %-11s %s\n", name+":", cdf.Summary())
	}
	return b.String()
}

// Fig13b carries the per-topology gains (paper Figure 13b): both
// networks' savings side by side.
type Fig13b struct {
	PerNetwork []Savings
}

// Fig13bTopologyGains computes scale-1 savings on each network.
func Fig13bTopologyGains(networks ...workload.Network) (Fig13b, error) {
	var out Fig13b
	for _, n := range networks {
		s, err := HeadlineSavings(n, 1)
		if err != nil {
			return Fig13b{}, err
		}
		out.PerNetwork = append(out.PerNetwork, s)
	}
	return out, nil
}

func (f Fig13b) String() string {
	var b strings.Builder
	b.WriteString("Fig 13(b) — FlexWAN gains per topology\n")
	for _, s := range f.PerNetwork {
		b.WriteString(s.String())
	}
	return b.String()
}

// Fig14 carries the per-wavelength distributions of the configured
// backbone (paper Figure 14): reach−length gaps and spectral efficiency.
type Fig14 struct {
	Network     string
	GapKm       map[string]CDF // scheme → gap distribution (Fig 14a)
	SpectralEff map[string]CDF // scheme → bps/Hz distribution (Fig 14b)
}

// Fig14WavelengthDistributions plans each scheme at scale 1 and collects
// per-wavelength metrics.
func Fig14WavelengthDistributions(n workload.Network) (Fig14, error) {
	out := Fig14{
		Network:     n.Name,
		GapKm:       make(map[string]CDF),
		SpectralEff: make(map[string]CDF),
	}
	for _, cat := range Schemes() {
		res, err := planScheme(n, cat)
		if err != nil {
			return Fig14{}, err
		}
		var gaps, effs []float64
		for _, w := range res.Wavelengths {
			gaps = append(gaps, w.GapKm())
			effs = append(effs, w.Mode.SpectralEfficiency())
		}
		out.GapKm[cat.Name] = NewCDF(gaps)
		out.SpectralEff[cat.Name] = NewCDF(effs)
	}
	return out, nil
}

func (f Fig14) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14(a) — reach − path length (km), %s\n", f.Network)
	for _, cat := range Schemes() {
		cdf := f.GapKm[cat.Name]
		fmt.Fprintf(&b, "  %-9s %s  (≤100 km: %.0f%%)\n", cat.Name+":", cdf.Summary(), cdf.FractionBelow(100)*100)
	}
	fmt.Fprintf(&b, "Fig 14(b) — link spectral efficiency (b/s/Hz), %s\n", f.Network)
	for _, cat := range Schemes() {
		fmt.Fprintf(&b, "  %-9s %s\n", cat.Name+":", f.SpectralEff[cat.Name].Summary())
	}
	return b.String()
}
