package eval

import (
	"context"
	"fmt"
	"strings"

	"flexwan/internal/parallel"
	"flexwan/internal/plan"
	"flexwan/internal/restore"
	"flexwan/internal/spectrum"
	"flexwan/internal/transponder"
	"flexwan/internal/workload"
)

// sweepOpts maps an experiment's worker knob onto restore.SweepOptions.
// workers == 0 uses all cores; 1 forces the sequential path.
func sweepOpts(workers int) restore.SweepOptions {
	return restore.SweepOptions{Workers: workers}
}

// restorationSweep plans the network with one scheme, then restores every
// 1-fiber failure scenario against that base, workers scenarios at a time.
func restorationSweep(n workload.Network, cat transponder.Catalog, extraSpares map[string]int, workers int) (restore.SweepResult, *plan.Result, error) {
	base, err := planScheme(n, cat)
	if err != nil {
		return restore.SweepResult{}, nil, err
	}
	sweep, err := restore.SweepWithOptions(restore.Problem{
		Optical:     n.Optical,
		IP:          n.IP,
		Catalog:     cat,
		Grid:        spectrum.DefaultGrid(),
		Base:        base,
		ExtraSpares: extraSpares,
	}, restore.SingleFiberScenarios(n.Optical), sweepOpts(workers))
	if err != nil {
		return restore.SweepResult{}, nil, err
	}
	return sweep, base, nil
}

// Fig15a is the distribution of restored-path/original-path length
// ratios over all 1-failure scenarios (paper Figure 15a: 90% of restored
// paths are longer; extremes exceed 10×).
type Fig15a struct {
	Network    string
	Stretch    CDF
	FracLonger float64
	// FailedScenarios counts 1-failure cases whose restoration solve
	// failed and were excluded from the distribution.
	FailedScenarios int
}

// Fig15aRestoredPathGaps measures FlexWAN's restoration path stretch.
// workers bounds the concurrent scenario solves (0 = all cores).
func Fig15aRestoredPathGaps(n workload.Network, workers int) (Fig15a, error) {
	sweep, _, err := restorationSweep(n, transponder.SVT(), nil, workers)
	if err != nil {
		return Fig15a{}, err
	}
	cdf := NewCDF(sweep.PathStretches())
	return Fig15a{
		Network:         n.Name,
		Stretch:         cdf,
		FracLonger:      1 - cdf.FractionBelow(1),
		FailedScenarios: sweep.Failed(),
	}, nil
}

func (f Fig15a) String() string {
	return fmt.Sprintf("Fig 15(a) — restored/original path length, %s\n  %s\n  restored longer than original: %.0f%% (paper: ≈90%%)\n",
		f.Network, f.Stretch.Summary(), f.FracLonger*100)
}

// Fig15b is mean restoration capability versus capacity scale for the
// three schemes (paper Figure 15b).
type Fig15b struct {
	Network    string
	Scales     []float64
	Capability map[string][]float64 // scheme → mean capability per scale; −1 when planning infeasible
}

// Fig15bRestorationVsScale sweeps scales and schemes. The (scheme, scale)
// points run through the worker pool; the scenario sweeps inside each
// point then run sequentially, so the total concurrency stays bounded by
// workers (0 = all cores).
func Fig15bRestorationVsScale(n workload.Network, scales []float64, workers int) (Fig15b, error) {
	out := Fig15b{
		Network:    n.Name,
		Scales:     scales,
		Capability: make(map[string][]float64),
	}
	schemes := Schemes()
	type point struct {
		cat   transponder.Catalog
		scale float64
	}
	points := make([]point, 0, len(schemes)*len(scales))
	for _, cat := range schemes {
		for _, scale := range scales {
			points = append(points, point{cat, scale})
		}
	}
	caps, errs := parallel.Map(context.Background(), parallel.Workers(workers), len(points),
		func(ctx context.Context, i int) (float64, error) {
			pt := points[i]
			scaled := n.Scale(pt.scale)
			base, err := planScheme(scaled, pt.cat)
			if err != nil {
				return 0, err
			}
			if !base.Feasible() {
				return -1, nil
			}
			sweep, err := restore.SweepWithOptions(restore.Problem{
				Optical: n.Optical, IP: scaled.IP, Catalog: pt.cat,
				Grid: spectrum.DefaultGrid(), Base: base,
			}, restore.SingleFiberScenarios(n.Optical),
				restore.SweepOptions{Workers: 1, Context: ctx})
			if err != nil {
				return 0, err
			}
			return sweep.MeanCapability(), nil
		})
	for _, err := range errs {
		if err != nil {
			return Fig15b{}, err
		}
	}
	for i, c := range caps {
		out.Capability[points[i].cat.Name] = append(out.Capability[points[i].cat.Name], c)
	}
	return out, nil
}

func (f Fig15b) String() string {
	header := []string{"scale"}
	for _, cat := range Schemes() {
		header = append(header, cat.Name)
	}
	rows := make([][]string, len(f.Scales))
	for i, s := range f.Scales {
		row := []string{fmt.Sprintf("%g", s)}
		for _, cat := range Schemes() {
			c := f.Capability[cat.Name][i]
			if c < 0 {
				row = append(row, "infeasible")
			} else {
				row = append(row, fmt.Sprintf("%.3f", c))
			}
		}
		rows[i] = row
	}
	return fmt.Sprintf("Fig 15(b) — mean restoration capability vs scale, %s\n%s",
		f.Network, renderTable(header, rows))
}

// Fig16 is the distribution of restoration capability over all failure
// scenarios, under- and overloaded, including FlexWAN+ (paper Figure 16).
type Fig16 struct {
	Network string
	Scale   float64
	// Capability maps scheme → per-scenario capability CDF. Schemes are
	// the three standard ones plus "FlexWAN+".
	Capability map[string]CDF
}

// Fig16RestorationCDF sweeps all 1-failure scenarios at the given scale.
// FlexWAN+ gives every link extra spares equal to half the transponders
// FlexWAN saved against RADWAN (§8). workers bounds the concurrent
// scenario solves (0 = all cores).
func Fig16RestorationCDF(n workload.Network, scale float64, workers int) (Fig16, error) {
	scaled := n.Scale(scale)
	out := Fig16{
		Network:    n.Name,
		Scale:      scale,
		Capability: make(map[string]CDF),
	}
	var flexBase, radBase *plan.Result
	for _, cat := range Schemes() {
		base, err := planScheme(scaled, cat)
		if err != nil {
			return Fig16{}, err
		}
		if !base.Feasible() {
			continue // scheme cannot even serve the load; omitted as in Fig 12
		}
		sweep, err := restore.SweepWithOptions(restore.Problem{
			Optical: n.Optical, IP: scaled.IP, Catalog: cat,
			Grid: spectrum.DefaultGrid(), Base: base,
		}, restore.SingleFiberScenarios(n.Optical), sweepOpts(workers))
		if err != nil {
			return Fig16{}, err
		}
		out.Capability[cat.Name] = NewCDF(sweep.Capabilities())
		switch cat.Name {
		case "FlexWAN":
			flexBase = base
		case "RADWAN":
			radBase = base
		}
	}
	if flexBase != nil && radBase != nil {
		spares := restore.PlusSpares(flexBase, radBase, 0.5)
		sweep, err := restore.SweepWithOptions(restore.Problem{
			Optical: n.Optical, IP: scaled.IP, Catalog: transponder.SVT(),
			Grid: spectrum.DefaultGrid(), Base: flexBase, ExtraSpares: spares,
		}, restore.SingleFiberScenarios(n.Optical), sweepOpts(workers))
		if err != nil {
			return Fig16{}, err
		}
		out.Capability["FlexWAN+"] = NewCDF(sweep.Capabilities())
	}
	return out, nil
}

func (f Fig16) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 16 — restoration capability CDF, %s at %gx\n", f.Network, f.Scale)
	order := []string{"100G-WAN", "RADWAN", "FlexWAN", "FlexWAN+"}
	for _, name := range order {
		cdf, ok := f.Capability[name]
		if !ok {
			fmt.Fprintf(&b, "  %-9s (infeasible at this scale)\n", name+":")
			continue
		}
		fmt.Fprintf(&b, "  %-9s mean %.3f  %s\n", name+":", cdf.Mean(), cdf.Summary())
	}
	return b.String()
}

// ProbabilisticRestoration is the extension experiment over the paper's
// probabilistic failure model (§8 adopts TEAVAR-style scenarios):
// expected restoration capability under sampled multi-fiber failures,
// per scheme, at one capacity scale.
type ProbabilisticRestoration struct {
	Network   string
	Scale     float64
	Scenarios int
	// Capability maps scheme → probability-weighted mean capability.
	Capability map[string]float64
}

// ProbabilisticRestorationSweep samples n multi-fiber scenarios and
// restores each against every scheme's plan, workers scenarios at a
// time (0 = all cores).
func ProbabilisticRestorationSweep(n workload.Network, scale float64, seed int64, scenarios int, cutsPerThousandKm float64, workers int) (ProbabilisticRestoration, error) {
	scaled := n.Scale(scale)
	out := ProbabilisticRestoration{
		Network:    n.Name,
		Scale:      scale,
		Capability: make(map[string]float64),
	}
	scs := restore.ProbabilisticScenarios(n.Optical, seed, scenarios, cutsPerThousandKm)
	out.Scenarios = len(scs)
	for _, cat := range Schemes() {
		base, err := planScheme(scaled, cat)
		if err != nil {
			return ProbabilisticRestoration{}, err
		}
		if !base.Feasible() {
			out.Capability[cat.Name] = -1
			continue
		}
		sweep, err := restore.SweepWithOptions(restore.Problem{
			Optical: n.Optical, IP: scaled.IP, Catalog: cat,
			Grid: spectrum.DefaultGrid(), Base: base,
		}, scs, sweepOpts(workers))
		if err != nil {
			return ProbabilisticRestoration{}, err
		}
		out.Capability[cat.Name] = sweep.MeanCapability()
	}
	return out, nil
}

func (f ProbabilisticRestoration) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Probabilistic failures (extension) — expected capability, %s at %gx over %d scenarios\n",
		f.Network, f.Scale, f.Scenarios)
	for _, cat := range Schemes() {
		c, ok := f.Capability[cat.Name]
		if !ok || c < 0 {
			fmt.Fprintf(&b, "  %-9s infeasible\n", cat.Name+":")
			continue
		}
		fmt.Fprintf(&b, "  %-9s %.3f\n", cat.Name+":", c)
	}
	return b.String()
}
