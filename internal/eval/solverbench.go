package eval

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"flexwan/internal/plan"
	"flexwan/internal/solver"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// ExactScalingProblem builds the seed exact-planning instance used by
// BenchmarkExactScaling and the `bench` experiment mode: a two-fiber line
// A—B—C with two IP links on the RADWAN catalog over a pixels-wide grid.
// More pixels means more starting-pixel γ variables, hence a harder MIP.
// The instance grows roughly six variables per pixel, so the whole
// benchmark ladder (up to 96 pixels) sits far below the build caps of
// both LP engines (solver.DefaultMaxVars / DefaultDenseMaxVars).
func ExactScalingProblem(pixels int) (plan.Problem, error) {
	g := topology.New()
	if err := g.AddFiber("f1", "A", "B", 100); err != nil {
		return plan.Problem{}, err
	}
	if err := g.AddFiber("f2", "B", "C", 400); err != nil {
		return plan.Problem{}, err
	}
	ip := &topology.IPTopology{}
	for _, l := range []topology.IPLink{
		{ID: "e1", A: "A", B: "B", DemandGbps: 300},
		{ID: "e2", A: "A", B: "C", DemandGbps: 200},
	} {
		if err := ip.AddLink(l); err != nil {
			return plan.Problem{}, err
		}
	}
	return plan.Problem{
		Optical: g, IP: ip, Catalog: transponder.RADWAN(),
		Grid: spectrum.Grid{PixelGHz: 12.5, Pixels: pixels}, K: 1,
	}, nil
}

// SolverBenchWorkerCounts is the fixed worker ladder benchmarked and
// recorded in BENCH_solver.json: 1, 2, 4, plus GOMAXPROCS when the
// machine has more cores. Fixed (rather than derived from the local core
// count) so results from different machines stay comparable.
func SolverBenchWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	return counts
}

// SolverBenchBranchings is the fixed branching-rule ladder benchmarked
// and recorded in BENCH_solver.json: both rules always, so every record
// carries the ablation.
func SolverBenchBranchings() []solver.BranchRule {
	return []solver.BranchRule{solver.BranchPseudocost, solver.BranchMostFractional}
}

// SolverBenchPoint is one (instance, engine, branching-rule,
// worker-count, presolve) measurement. GoMaxProcs is the effective
// GOMAXPROCS the sub-run executed under — pinned to at least Workers so
// worker-scaling points are honest measurements rather than time-sliced
// onto fewer threads than the sweep claims. Engine is "revised" (the
// default LU-factorized revised simplex) or "dense" (the
// Options.DenseSimplex tableau ablation).
type SolverBenchPoint struct {
	Instance      string  `json:"instance"`
	Pixels        int     `json:"pixels"`
	Engine        string  `json:"engine"`
	Branching     string  `json:"branching"`
	Workers       int     `json:"workers"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	Presolve      bool    `json:"presolve"`
	PresolveRows  int     `json:"presolve_rows"`
	PresolveCols  int     `json:"presolve_cols"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	Objective     float64 `json:"objective"`
	Nodes         int     `json:"nodes"`
	SimplexIters  int     `json:"simplex_iters"`
	WarmStartHits int     `json:"warm_start_hits"`
	WarmStartRate float64 `json:"warm_start_rate"`
	SpeedupVs1    float64 `json:"speedup_vs_1"`
}

// SolverBench is the headline solver benchmark record, serialized to
// BENCH_solver.json by `flexwan-experiments -fig bench`.
type SolverBench struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Workers    []int              `json:"worker_counts"`
	Branchings []string           `json:"branching_rules"`
	Points     []SolverBenchPoint `json:"points"`
}

// SolverBenchmarks times the exact planning MIP on the BenchmarkExactScaling
// instances for each branching rule and worker count, plus two ablation
// points per instance at the default rule and one worker: presolve off,
// and the dense-tableau engine (Options.DenseSimplex) — the memory
// baseline the revised simplex is measured against. Each point runs until both minIters
// iterations and minTime have elapsed (a hand-rolled testing.B: the
// experiment binary cannot import package testing). Every sub-run is
// pinned to GOMAXPROCS ≥ workers — so a workers=4 point on a
// GOMAXPROCS=1 process is a real 4-way run, not time-slicing dressed up
// as scaling — and the effective value is recorded per point. It
// verifies the objective is identical across every configuration per
// instance — the determinism contract, presolve included — and returns
// an error if not. Speedups are relative to the same rule at one worker.
func SolverBenchmarks(pixelSizes, workerCounts []int, minIters int, minTime time.Duration) (SolverBench, error) {
	if minIters < 1 {
		minIters = 1
	}
	rules := SolverBenchBranchings()
	base := runtime.GOMAXPROCS(0)
	out := SolverBench{GoMaxProcs: base, Workers: workerCounts}
	for _, r := range rules {
		out.Branchings = append(out.Branchings, string(r))
	}
	for _, pixels := range pixelSizes {
		p, err := ExactScalingProblem(pixels)
		if err != nil {
			return SolverBench{}, err
		}
		instance := fmt.Sprintf("exact-planning/pixels=%d", pixels)
		refObjective, haveRef := 0.0, false

		measure := func(rule solver.BranchRule, workers int, noPresolve, dense bool) (SolverBenchPoint, error) {
			opts := solver.Options{MaxNodes: 100000, Workers: workers, Branching: rule, NoPresolve: noPresolve, DenseSimplex: dense}
			engine := "revised"
			if dense {
				engine = "dense"
			}
			label := fmt.Sprintf("%s engine=%s branching=%s workers=%d presolve=%v", instance, engine, rule, workers, !noPresolve)
			eff := base
			if workers > eff {
				runtime.GOMAXPROCS(workers)
				eff = workers
				defer runtime.GOMAXPROCS(base)
			}
			// Warm-up solve: page in the instance and the scratch
			// pools, and capture the objective for the determinism
			// check.
			warm, err := plan.SolveExact(p, opts)
			if err != nil {
				return SolverBenchPoint{}, fmt.Errorf("eval: %s: %w", label, err)
			}
			if !haveRef {
				refObjective, haveRef = warm.Solver.Objective, true
			} else if warm.Solver.Objective != refObjective {
				return SolverBenchPoint{}, fmt.Errorf("eval: %s objective diverged: got %v, want %v (branching=%s workers=%d presolve on)",
					label, warm.Solver.Objective, refObjective, rules[0], workerCounts[0])
			}

			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			iters := 0
			var last *plan.Result
			for iters < minIters || time.Since(start) < minTime {
				last, err = plan.SolveExact(p, opts)
				if err != nil {
					return SolverBenchPoint{}, fmt.Errorf("eval: %s: %w", label, err)
				}
				iters++
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)

			pt := SolverBenchPoint{
				Instance:      instance,
				Pixels:        pixels,
				Engine:        engine,
				Branching:     string(rule),
				Workers:       workers,
				GoMaxProcs:    eff,
				Presolve:      !noPresolve,
				PresolveRows:  last.Solver.PresolveRows,
				PresolveCols:  last.Solver.PresolveCols,
				Iterations:    iters,
				NsPerOp:       float64(elapsed.Nanoseconds()) / float64(iters),
				AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(iters),
				BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
				Objective:     last.Solver.Objective,
				Nodes:         last.Solver.Nodes,
				SimplexIters:  last.Solver.SimplexIters,
				WarmStartHits: last.Solver.WarmStartHits,
			}
			if pt.Nodes > 0 {
				pt.WarmStartRate = float64(pt.WarmStartHits) / float64(pt.Nodes)
			}
			return pt, nil
		}

		for _, rule := range rules {
			var nsAt1 float64
			for _, workers := range workerCounts {
				pt, err := measure(rule, workers, false, false)
				if err != nil {
					return SolverBench{}, err
				}
				if workers == 1 {
					nsAt1 = pt.NsPerOp
				}
				if nsAt1 > 0 {
					pt.SpeedupVs1 = nsAt1 / pt.NsPerOp
				}
				out.Points = append(out.Points, pt)
			}
		}
		// Presolve ablation: same instance with presolve disabled, at the
		// default rule and one worker so the on/off pair differs only in
		// presolve. Objective identity is enforced by measure above.
		off, err := measure(rules[0], 1, true, false)
		if err != nil {
			return SolverBench{}, err
		}
		off.SpeedupVs1 = 1
		out.Points = append(out.Points, off)
		// Engine ablation: the dense-tableau path on the same instance,
		// default rule, one worker, presolve on — the pair against the
		// matching revised point isolates the engine. Objective identity
		// across engines is enforced by measure above.
		dense, err := measure(rules[0], 1, false, true)
		if err != nil {
			return SolverBench{}, err
		}
		dense.SpeedupVs1 = 1
		out.Points = append(out.Points, dense)
	}
	return out, nil
}

func (s SolverBench) String() string {
	header := []string{"instance", "engine", "branching", "workers", "gmp", "presolve", "rows-/cols-", "iters", "ns/op", "allocs/op", "nodes", "pivots", "warm%", "speedup"}
	rows := make([][]string, len(s.Points))
	for i, pt := range s.Points {
		presolve := "off"
		if pt.Presolve {
			presolve = "on"
		}
		rows[i] = []string{
			pt.Instance,
			pt.Engine,
			pt.Branching,
			fmt.Sprintf("%d", pt.Workers),
			fmt.Sprintf("%d", pt.GoMaxProcs),
			presolve,
			fmt.Sprintf("%d/%d", pt.PresolveRows, pt.PresolveCols),
			fmt.Sprintf("%d", pt.Iterations),
			fmt.Sprintf("%.0f", pt.NsPerOp),
			fmt.Sprintf("%.0f", pt.AllocsPerOp),
			fmt.Sprintf("%d", pt.Nodes),
			fmt.Sprintf("%d", pt.SimplexIters),
			fmt.Sprintf("%.0f%%", 100*pt.WarmStartRate),
			fmt.Sprintf("%.2fx", pt.SpeedupVs1),
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Solver benchmarks (GOMAXPROCS=%d)\n", s.GoMaxProcs)
	b.WriteString(renderTable(header, rows))
	return b.String()
}

// ExactCheck is one row of the exact-vs-heuristic cross-check.
type ExactCheck struct {
	Instance     string
	HeuristicTx  int
	ExactTx      int
	ExactNodes   int
	ExactWorkers int
	ExactGap     float64
	Branching    solver.BranchRule
	SimplexIters int
	WarmHits     int
	PresolveRows int
	PresolveCols int
}

// ExactCrossCheck solves the scaling instances both heuristically and
// exactly (with the given solver worker count, branching rule, and
// presolve setting) and reports transponder counts side by side — the
// planning-quality check behind Fig 12's claim that the heuristic
// tracks the optimum.
func ExactCrossCheck(pixelSizes []int, solverWorkers int, branching solver.BranchRule, noPresolve bool) ([]ExactCheck, error) {
	var out []ExactCheck
	for _, pixels := range pixelSizes {
		p, err := ExactScalingProblem(pixels)
		if err != nil {
			return nil, err
		}
		h, err := plan.Solve(p)
		if err != nil {
			return nil, err
		}
		e, err := plan.SolveExact(p, solver.Options{MaxNodes: 100000, Workers: solverWorkers, Branching: branching, NoPresolve: noPresolve})
		if err != nil {
			return nil, err
		}
		out = append(out, ExactCheck{
			Instance:     fmt.Sprintf("exact-planning/pixels=%d", pixels),
			HeuristicTx:  h.Transponders(),
			ExactTx:      e.Transponders(),
			ExactNodes:   e.Solver.Nodes,
			ExactWorkers: e.Solver.Workers,
			ExactGap:     e.Solver.Gap,
			Branching:    e.Solver.Branching,
			SimplexIters: e.Solver.SimplexIters,
			WarmHits:     e.Solver.WarmStartHits,
			PresolveRows: e.Solver.PresolveRows,
			PresolveCols: e.Solver.PresolveCols,
		})
	}
	return out, nil
}

// ExactCheckString renders the cross-check rows.
func ExactCheckString(rows []ExactCheck) string {
	header := []string{"instance", "heuristic tx", "exact tx", "nodes", "workers", "branching", "pivots", "warm hits", "rows-/cols-", "gap"}
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Instance,
			fmt.Sprintf("%d", r.HeuristicTx),
			fmt.Sprintf("%d", r.ExactTx),
			fmt.Sprintf("%d", r.ExactNodes),
			fmt.Sprintf("%d", r.ExactWorkers),
			string(r.Branching),
			fmt.Sprintf("%d", r.SimplexIters),
			fmt.Sprintf("%d", r.WarmHits),
			fmt.Sprintf("%d/%d", r.PresolveRows, r.PresolveCols),
			fmt.Sprintf("%.2g", r.ExactGap),
		}
	}
	return "Exact vs heuristic planning cross-check\n" + renderTable(header, table)
}
