package eval

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"flexwan/internal/plan"
	"flexwan/internal/solver"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
	"flexwan/internal/workload"
)

// ExactScalingProblem builds the seed exact-planning instance used by
// BenchmarkExactScaling and the `bench` experiment mode: a two-fiber line
// A—B—C with two IP links on the RADWAN catalog over a pixels-wide grid.
// More pixels means more starting-pixel γ variables, hence a harder MIP.
// The instance grows roughly six variables per pixel, so the whole
// benchmark ladder (up to 96 pixels) sits far below the build caps of
// both LP engines (solver.DefaultMaxVars / DefaultDenseMaxVars).
func ExactScalingProblem(pixels int) (plan.Problem, error) {
	g := topology.New()
	if err := g.AddFiber("f1", "A", "B", 100); err != nil {
		return plan.Problem{}, err
	}
	if err := g.AddFiber("f2", "B", "C", 400); err != nil {
		return plan.Problem{}, err
	}
	ip := &topology.IPTopology{}
	for _, l := range []topology.IPLink{
		{ID: "e1", A: "A", B: "B", DemandGbps: 300},
		{ID: "e2", A: "A", B: "C", DemandGbps: 200},
	} {
		if err := ip.AddLink(l); err != nil {
			return plan.Problem{}, err
		}
	}
	return plan.Problem{
		Optical: g, IP: ip, Catalog: transponder.RADWAN(),
		Grid: spectrum.Grid{PixelGHz: 12.5, Pixels: pixels}, K: 1,
	}, nil
}

// ExactTBackboneProblem builds a full-T-backbone exact-planning instance:
// the complete synthetic backbone of workload.TBackbone(seed) — all eight
// metro clusters, the long-haul core, and every IP link — with demands
// multiplied by scale so the wavelength count per link stays within exact
// reach, on a pixels-wide RADWAN grid with K candidate paths per link.
// Unlike the two-link ExactScalingProblem line, the MIP here carries the
// real topology's structure: shared metro fibers, long-haul transit, and
// per-fiber conflict rows across 36 fibers.
func ExactTBackboneProblem(seed int64, scale float64, pixels, k int) (plan.Problem, error) {
	n := workload.TBackbone(seed).Scale(scale)
	return plan.Problem{
		Optical: n.Optical, IP: n.IP, Catalog: transponder.RADWAN(),
		Grid: spectrum.Grid{PixelGHz: 12.5, Pixels: pixels}, K: k,
	}, nil
}

// SolverBenchInstance names one exact-planning instance of the benchmark
// ladder. Line instances are ExactScalingProblem at Pixels; T-backbone
// instances (TBackbone true) are ExactTBackboneProblem at Scale, Pixels,
// and K candidate paths. SkipDense marks instances too large for the
// dense-tableau ablation (its memory is quadratic in the standard-form
// size); SkipPresolveOff marks instances whose LP bound is useless without
// the presolve coefficient tightening — the presolve-off ablation would
// exhaust the node budget with no incumbent instead of measuring anything.
// SkipNodePresolveOff does the same for the node-presolve ablation, needed
// on the hardest T-backbone instance where per-node propagation is what
// keeps the search from drowning in start-pixel symmetries.
type SolverBenchInstance struct {
	Name                string
	Pixels              int
	TBackbone           bool
	Scale               float64
	K                   int
	SkipDense           bool
	SkipPresolveOff     bool
	SkipNodePresolveOff bool
	// SkipDantzig skips the Dantzig pricing ablation point: set on
	// instances whose degeneracy stalls unweighted pricing for the whole
	// node budget — the wall instance is IN the ladder precisely because
	// only the weighted rules get through it.
	SkipDantzig bool
}

// Problem builds the instance.
func (si SolverBenchInstance) Problem() (plan.Problem, error) {
	if si.TBackbone {
		k := si.K
		if k <= 0 {
			k = 1
		}
		return ExactTBackboneProblem(1, si.Scale, si.Pixels, k)
	}
	return ExactScalingProblem(si.Pixels)
}

// DefaultSolverBenchInstances is the ladder recorded in BENCH_solver.json:
// the two-link line from 16 to 128 pixels, then full T-backbone instances
// — the complete synthetic backbone (36 fibers, 38 IP links) at demand
// scale 0.02, once at 32 pixels with the single shortest path per link and
// once at 24 pixels with three candidate paths (the hardest instance the
// exact ladder proves optimal; the k=3 spectrum packing at 24 pixels is
// where the FT-vs-eta-file gap is widest).
func DefaultSolverBenchInstances() []SolverBenchInstance {
	out := []SolverBenchInstance{}
	for _, px := range []int{16, 20, 24, 32, 48, 64, 96, 128} {
		out = append(out, SolverBenchInstance{
			Name: fmt.Sprintf("exact-planning/pixels=%d", px), Pixels: px,
		})
	}
	for _, ti := range []SolverBenchInstance{
		{Pixels: 32, Scale: 0.02, K: 1},
		// The k=3 spectrum packing only stays solvable with node
		// presolve on: without it the 100000-node budget finds no
		// incumbent at all, so that ablation is skipped here.
		{Pixels: 24, Scale: 0.02, K: 3, SkipNodePresolveOff: true},
		// The degeneracy wall: 32 pixels and three candidate paths per
		// link. The start-pixel symmetries at this width stall the
		// Dantzig-priced dual simplex (hence SkipDantzig — that ablation
		// would never finish); the weighted pricing rules walk through
		// it (see DESIGN.md), which is why this instance is in the
		// ladder at all.
		{Pixels: 32, Scale: 0.02, K: 3, SkipNodePresolveOff: true, SkipDantzig: true},
	} {
		ti.Name = fmt.Sprintf("exact-tbackbone/pixels=%d,scale=%g,k=%d", ti.Pixels, ti.Scale, ti.K)
		ti.TBackbone = true
		ti.SkipDense = true       // thousands of columns: far past the dense tableau's range
		ti.SkipPresolveOff = true // without coefficient tightening the LP bound prunes nothing
		out = append(out, ti)
	}
	return out
}

// SolverBenchWorkerCounts is the fixed worker ladder benchmarked and
// recorded in BENCH_solver.json: 1, 2, 4, plus GOMAXPROCS when the
// machine has more cores. Fixed (rather than derived from the local core
// count) so results from different machines stay comparable.
func SolverBenchWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	return counts
}

// SolverBenchBranchings is the fixed branching-rule ladder benchmarked
// and recorded in BENCH_solver.json: both rules always, so every record
// carries the ablation.
func SolverBenchBranchings() []solver.BranchRule {
	return []solver.BranchRule{solver.BranchPseudocost, solver.BranchMostFractional}
}

// SolverBenchPoint is one (instance, engine, pricing, branching-rule,
// worker-count, presolve, node-presolve) measurement. GoMaxProcs is the
// effective GOMAXPROCS the sub-run executed under — pinned to at least
// Workers so worker-scaling points are honest measurements rather than
// time-sliced onto fewer threads than the sweep claims. Engine is
// "revised" (the default revised simplex with Forrest–Tomlin basis
// updates), "revised-eta" (the Options.EtaFileUpdates product-form
// ablation), or "dense" (the Options.DenseSimplex tableau ablation).
// Pricing is the dual-simplex pricing rule the point ran under (always
// "dantzig" for the dense engine). WarmStartRate is nil — not a
// misleading 0 — when the search never left the root node (Nodes <= 1:
// there are no dives whose warm starts could hit or miss). The LU-health
// block (refactorizations through np_fixings) comes from the solver's
// SolveStats and is zero for the dense engine.
type SolverBenchPoint struct {
	Instance         string   `json:"instance"`
	Pixels           int      `json:"pixels"`
	Engine           string   `json:"engine"`
	Pricing          string   `json:"pricing"`
	Branching        string   `json:"branching"`
	Workers          int      `json:"workers"`
	GoMaxProcs       int      `json:"gomaxprocs"`
	Presolve         bool     `json:"presolve"`
	NodePresolve     bool     `json:"node_presolve"`
	PresolveRows     int      `json:"presolve_rows"`
	PresolveCols     int      `json:"presolve_cols"`
	Iterations       int      `json:"iterations"`
	NsPerOp          float64  `json:"ns_per_op"`
	AllocsPerOp      float64  `json:"allocs_per_op"`
	BytesPerOp       float64  `json:"bytes_per_op"`
	Objective        float64  `json:"objective"`
	Nodes            int      `json:"nodes"`
	SimplexIters     int      `json:"simplex_iters"`
	PivotsPerSec     float64  `json:"pivots_per_sec"`
	BoundFlips       int      `json:"bound_flips"`
	WeightResets     int      `json:"weight_resets"`
	WarmStartHits    int      `json:"warm_start_hits"`
	WarmStartRate    *float64 `json:"warm_start_rate,omitempty"`
	Refactorizations int      `json:"refactorizations"`
	BasisUpdates     int      `json:"basis_updates"`
	PeakUFill        int      `json:"peak_u_fill"`
	DenseFallbacks   int      `json:"dense_fallbacks"`
	NPFixings        int      `json:"np_fixings"`
	SpeedupVs1       float64  `json:"speedup_vs_1"`
}

// SolverBench is the headline solver benchmark record, serialized to
// BENCH_solver.json by `flexwan-experiments -fig bench`.
type SolverBench struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Workers    []int              `json:"worker_counts"`
	Branchings []string           `json:"branching_rules"`
	Points     []SolverBenchPoint `json:"points"`
}

// SolverBenchmarks times the exact planning MIP on the given instance
// ladder for each branching rule and worker count, plus four ablation
// points per instance at the default rule and one worker: presolve off,
// node presolve off (Options.NoNodePresolve), the product-form eta-file
// basis maintenance (Options.EtaFileUpdates, engine "revised-eta") — the
// PR 7 baseline the Forrest–Tomlin default is measured against — and the
// dense-tableau engine (Options.DenseSimplex, skipped on instances marked
// SkipDense; the presolve-off point is likewise skipped on instances
// marked SkipPresolveOff). Each point runs until both minIters
// iterations and minTime have elapsed (a hand-rolled testing.B: the
// experiment binary cannot import package testing). Every sub-run is
// pinned to GOMAXPROCS ≥ workers — so a workers=4 point on a
// GOMAXPROCS=1 process is a real 4-way run, not time-slicing dressed up
// as scaling — and the effective value is recorded per point. It
// verifies the objective is identical across every configuration per
// instance — the determinism contract, presolve/node-presolve/basis-
// maintenance included — and returns
// an error if not. Speedups are relative to the same rule at one worker.
func SolverBenchmarks(instances []SolverBenchInstance, workerCounts []int, minIters int, minTime time.Duration) (SolverBench, error) {
	if minIters < 1 {
		minIters = 1
	}
	rules := SolverBenchBranchings()
	base := runtime.GOMAXPROCS(0)
	out := SolverBench{GoMaxProcs: base, Workers: workerCounts}
	for _, r := range rules {
		out.Branchings = append(out.Branchings, string(r))
	}
	for _, inst := range instances {
		p, err := inst.Problem()
		if err != nil {
			return SolverBench{}, err
		}
		instance := inst.Name
		pixels := inst.Pixels
		refObjective, haveRef := 0.0, false

		measure := func(rule solver.BranchRule, workers int, noPresolve, noNodePresolve, etaFile, dense bool, pricing solver.PricingRule) (SolverBenchPoint, error) {
			opts := solver.Options{
				MaxNodes: 100000, Workers: workers, Branching: rule,
				NoPresolve: noPresolve, NoNodePresolve: noNodePresolve,
				EtaFileUpdates: etaFile, DenseSimplex: dense,
				Pricing: pricing,
			}
			engine := "revised"
			if etaFile {
				engine = "revised-eta"
			}
			if dense {
				engine = "dense"
			}
			label := fmt.Sprintf("%s engine=%s pricing=%s branching=%s workers=%d presolve=%v node-presolve=%v", instance, engine, opts.EffectivePricing(), rule, workers, !noPresolve, !noNodePresolve)
			eff := base
			if workers > eff {
				runtime.GOMAXPROCS(workers)
				eff = workers
				defer runtime.GOMAXPROCS(base)
			}
			// Warm-up solve: page in the instance and the scratch
			// pools, and capture the objective for the determinism
			// check.
			warm, err := plan.SolveExact(p, opts)
			if err != nil {
				return SolverBenchPoint{}, fmt.Errorf("eval: %s: %w", label, err)
			}
			if !haveRef {
				refObjective, haveRef = warm.Solver.Objective, true
			} else if warm.Solver.Objective != refObjective {
				return SolverBenchPoint{}, fmt.Errorf("eval: %s objective diverged: got %v, want %v (branching=%s workers=%d presolve on)",
					label, warm.Solver.Objective, refObjective, rules[0], workerCounts[0])
			}

			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			iters := 0
			var last *plan.Result
			for iters < minIters || time.Since(start) < minTime {
				last, err = plan.SolveExact(p, opts)
				if err != nil {
					return SolverBenchPoint{}, fmt.Errorf("eval: %s: %w", label, err)
				}
				iters++
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)

			pt := SolverBenchPoint{
				Instance:         instance,
				Pixels:           pixels,
				Engine:           engine,
				Pricing:          string(opts.EffectivePricing()),
				Branching:        string(rule),
				Workers:          workers,
				GoMaxProcs:       eff,
				Presolve:         !noPresolve,
				NodePresolve:     !noNodePresolve,
				PresolveRows:     last.Solver.PresolveRows,
				PresolveCols:     last.Solver.PresolveCols,
				Iterations:       iters,
				NsPerOp:          float64(elapsed.Nanoseconds()) / float64(iters),
				AllocsPerOp:      float64(after.Mallocs-before.Mallocs) / float64(iters),
				BytesPerOp:       float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
				Objective:        last.Solver.Objective,
				Nodes:            last.Solver.Nodes,
				SimplexIters:     last.Solver.SimplexIters,
				BoundFlips:       last.Solver.BoundFlips,
				WeightResets:     last.Solver.WeightResets,
				WarmStartHits:    last.Solver.WarmStartHits,
				Refactorizations: last.Solver.Refactorizations,
				BasisUpdates:     last.Solver.BasisUpdates,
				PeakUFill:        last.Solver.PeakUFill,
				DenseFallbacks:   last.Solver.DenseFallbacks,
				NPFixings:        last.Solver.NodePresolveFixings,
			}
			if pt.NsPerOp > 0 {
				pt.PivotsPerSec = float64(pt.SimplexIters) / (pt.NsPerOp / 1e9)
			}
			// A single-node search never dives, so a warm-start rate is
			// undefined there — omitted rather than recorded as 0.
			if pt.Nodes > 1 {
				rate := float64(pt.WarmStartHits) / float64(pt.Nodes)
				pt.WarmStartRate = &rate
			}
			return pt, nil
		}

		for _, rule := range rules {
			var nsAt1 float64
			for _, workers := range workerCounts {
				pt, err := measure(rule, workers, false, false, false, false, "")
				if err != nil {
					return SolverBench{}, err
				}
				if workers == 1 {
					nsAt1 = pt.NsPerOp
				}
				if nsAt1 > 0 {
					pt.SpeedupVs1 = nsAt1 / pt.NsPerOp
				}
				out.Points = append(out.Points, pt)
			}
		}
		// Ablations, each at the default rule and one worker so the pair
		// against the matching revised point isolates exactly one change.
		// Objective identity across all of them is enforced by measure.
		for _, abl := range []struct {
			noPresolve, noNodePresolve, etaFile, dense bool
			pricing                                    solver.PricingRule
			skip                                       bool
		}{
			// Presolve off. Skipped where the untightened LP bound is so
			// weak the node budget runs out without an incumbent.
			{noPresolve: true, skip: inst.SkipPresolveOff},
			// Node presolve off: what the per-node propagation pass buys.
			{noNodePresolve: true, skip: inst.SkipNodePresolveOff},
			// Product-form eta file: the basis-maintenance scheme before
			// Forrest–Tomlin, isolating the update algebra.
			{etaFile: true},
			// Dense tableau: the memory baseline the revised simplex is
			// measured against; meaningless past a few thousand columns.
			{dense: true, skip: inst.SkipDense},
			// Dantzig pricing: the unweighted baseline the devex default
			// is measured against — the pivot-count delta against the
			// matching revised point is the pricing result, and measure's
			// objective check is the cross-pricing identity contract.
			// Skipped where degeneracy stalls unweighted pricing outright.
			{pricing: solver.PricingDantzig, skip: inst.SkipDantzig},
		} {
			if abl.skip {
				continue
			}
			pt, err := measure(rules[0], 1, abl.noPresolve, abl.noNodePresolve, abl.etaFile, abl.dense, abl.pricing)
			if err != nil {
				return SolverBench{}, err
			}
			pt.SpeedupVs1 = 1
			out.Points = append(out.Points, pt)
		}
	}
	return out, nil
}

func (s SolverBench) String() string {
	header := []string{"instance", "engine", "pricing", "branching", "workers", "gmp", "presolve", "np", "rows-/cols-", "iters", "ns/op", "nodes", "pivots", "pivots/s", "flips", "wreset", "refac", "updates", "fill", "fb", "npfix", "warm%", "speedup"}
	rows := make([][]string, len(s.Points))
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	for i, pt := range s.Points {
		warm := "n/a"
		if pt.WarmStartRate != nil {
			warm = fmt.Sprintf("%.0f%%", 100**pt.WarmStartRate)
		}
		rows[i] = []string{
			pt.Instance,
			pt.Engine,
			pt.Pricing,
			pt.Branching,
			fmt.Sprintf("%d", pt.Workers),
			fmt.Sprintf("%d", pt.GoMaxProcs),
			onOff(pt.Presolve),
			onOff(pt.NodePresolve),
			fmt.Sprintf("%d/%d", pt.PresolveRows, pt.PresolveCols),
			fmt.Sprintf("%d", pt.Iterations),
			fmt.Sprintf("%.0f", pt.NsPerOp),
			fmt.Sprintf("%d", pt.Nodes),
			fmt.Sprintf("%d", pt.SimplexIters),
			fmt.Sprintf("%.0f", pt.PivotsPerSec),
			fmt.Sprintf("%d", pt.BoundFlips),
			fmt.Sprintf("%d", pt.WeightResets),
			fmt.Sprintf("%d", pt.Refactorizations),
			fmt.Sprintf("%d", pt.BasisUpdates),
			fmt.Sprintf("%d", pt.PeakUFill),
			fmt.Sprintf("%d", pt.DenseFallbacks),
			fmt.Sprintf("%d", pt.NPFixings),
			warm,
			fmt.Sprintf("%.2fx", pt.SpeedupVs1),
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Solver benchmarks (GOMAXPROCS=%d)\n", s.GoMaxProcs)
	b.WriteString(renderTable(header, rows))
	return b.String()
}

// ExactCheck is one row of the exact-vs-heuristic cross-check.
type ExactCheck struct {
	Instance     string
	HeuristicTx  int
	ExactTx      int
	ExactNodes   int
	ExactWorkers int
	ExactGap     float64
	Branching    solver.BranchRule
	SimplexIters int
	WarmHits     int
	PresolveRows int
	PresolveCols int
}

// ExactCrossCheck solves the scaling instances both heuristically and
// exactly (with the given solver worker count, branching rule, pricing
// rule, and presolve setting) and reports transponder counts side by
// side — the planning-quality check behind Fig 12's claim that the
// heuristic tracks the optimum.
func ExactCrossCheck(pixelSizes []int, solverWorkers int, branching solver.BranchRule, pricing solver.PricingRule, noPresolve bool) ([]ExactCheck, error) {
	var out []ExactCheck
	for _, pixels := range pixelSizes {
		p, err := ExactScalingProblem(pixels)
		if err != nil {
			return nil, err
		}
		h, err := plan.Solve(p)
		if err != nil {
			return nil, err
		}
		e, err := plan.SolveExact(p, solver.Options{MaxNodes: 100000, Workers: solverWorkers, Branching: branching, Pricing: pricing, NoPresolve: noPresolve})
		if err != nil {
			return nil, err
		}
		out = append(out, ExactCheck{
			Instance:     fmt.Sprintf("exact-planning/pixels=%d", pixels),
			HeuristicTx:  h.Transponders(),
			ExactTx:      e.Transponders(),
			ExactNodes:   e.Solver.Nodes,
			ExactWorkers: e.Solver.Workers,
			ExactGap:     e.Solver.Gap,
			Branching:    e.Solver.Branching,
			SimplexIters: e.Solver.SimplexIters,
			WarmHits:     e.Solver.WarmStartHits,
			PresolveRows: e.Solver.PresolveRows,
			PresolveCols: e.Solver.PresolveCols,
		})
	}
	return out, nil
}

// ExactCheckString renders the cross-check rows.
func ExactCheckString(rows []ExactCheck) string {
	header := []string{"instance", "heuristic tx", "exact tx", "nodes", "workers", "branching", "pivots", "warm hits", "rows-/cols-", "gap"}
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Instance,
			fmt.Sprintf("%d", r.HeuristicTx),
			fmt.Sprintf("%d", r.ExactTx),
			fmt.Sprintf("%d", r.ExactNodes),
			fmt.Sprintf("%d", r.ExactWorkers),
			string(r.Branching),
			fmt.Sprintf("%d", r.SimplexIters),
			fmt.Sprintf("%d", r.WarmHits),
			fmt.Sprintf("%d/%d", r.PresolveRows, r.PresolveCols),
			fmt.Sprintf("%.2g", r.ExactGap),
		}
	}
	return "Exact vs heuristic planning cross-check\n" + renderTable(header, table)
}
