package eval

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
)

// CSVData is implemented by every figure result that can emit a
// plotting-ready table: a header row followed by data rows. The
// experiments CLI writes one file per figure so the paper's plots can be
// regenerated with any charting tool.
type CSVData interface {
	CSV() [][]string
}

// WriteCSV renders rows to w in RFC 4180 form.
func WriteCSV(w io.Writer, data CSVData) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(data.CSV()); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
func itoaCSV(v int) string  { return strconv.Itoa(v) }

// CSV emits the per-link path lengths (one row per link).
func (f Fig2a) CSV() [][]string {
	rows := [][]string{{"path_km"}}
	for _, l := range f.Lengths.Sorted {
		rows = append(rows, []string{ftoa(l)})
	}
	return rows
}

// CSV emits distance, SVT and BVT max rates.
func (f Fig2b) CSV() [][]string {
	rows := [][]string{{"distance_km", "svt_gbps", "bvt_gbps"}}
	for i := range f.DistancesKm {
		rows = append(rows, []string{ftoa(f.DistancesKm[i]), itoaCSV(f.SVTGbps[i]), itoaCSV(f.BVTGbps[i])})
	}
	return rows
}

// CSV emits the 800G provisioning sweep.
func (f Fig3) CSV() [][]string {
	rows := [][]string{{"distance_km", "svt_tx", "bvt_tx", "svt_ghz", "bvt_ghz"}}
	for i := range f.DistancesKm {
		rows = append(rows, []string{
			ftoa(f.DistancesKm[i]),
			itoaCSV(f.SVTTransponders[i]), itoaCSV(f.BVTTransponders[i]),
			ftoa(f.SVTSpectrumGHz[i]), ftoa(f.BVTSpectrumGHz[i]),
		})
	}
	return rows
}

// Table2CSV renders the testbed sweep rows.
type Table2CSV []Table2Row

// CSV emits rate, spacing, datasheet and measured reach.
func (rows Table2CSV) CSV() [][]string {
	out := [][]string{{"rate_gbps", "spacing_ghz", "table_km", "measured_km"}}
	for _, r := range rows {
		out = append(out, []string{
			itoaCSV(r.RateGbps), ftoa(r.SpacingGHz), ftoa(r.DatasheetKm), ftoa(r.MeasuredKm),
		})
	}
	return out
}

// CSV emits scale rows with per-scheme transponders and spectrum
// (−1 marks infeasible points).
func (f Fig12) CSV() [][]string {
	header := []string{"scale"}
	for _, cat := range Schemes() {
		header = append(header, cat.Name+"_tx", cat.Name+"_ghz")
	}
	rows := [][]string{header}
	for i, s := range f.Scales {
		row := []string{ftoa(s)}
		for _, cat := range Schemes() {
			row = append(row, itoaCSV(f.Transponders[cat.Name][i]), ftoa(f.SpectrumGHz[cat.Name][i]))
		}
		rows = append(rows, row)
	}
	return rows
}

// CSV emits the weighted path-length samples, one row per (network, km).
func (f Fig13a) CSV() [][]string {
	rows := [][]string{{"network", "path_km"}}
	names := make([]string, 0, len(f.CDFs))
	for name := range f.CDFs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, l := range f.CDFs[name].Sorted {
			rows = append(rows, []string{name, ftoa(l)})
		}
	}
	return rows
}

// CSV emits per-wavelength gaps and spectral efficiencies per scheme.
func (f Fig14) CSV() [][]string {
	rows := [][]string{{"scheme", "metric", "value"}}
	for _, cat := range Schemes() {
		for _, v := range f.GapKm[cat.Name].Sorted {
			rows = append(rows, []string{cat.Name, "gap_km", ftoa(v)})
		}
		for _, v := range f.SpectralEff[cat.Name].Sorted {
			rows = append(rows, []string{cat.Name, "bps_per_hz", ftoa(v)})
		}
	}
	return rows
}

// CSV emits the restored-path stretch sample.
func (f Fig15a) CSV() [][]string {
	rows := [][]string{{"stretch"}}
	for _, v := range f.Stretch.Sorted {
		rows = append(rows, []string{ftoa(v)})
	}
	return rows
}

// CSV emits mean capability per scheme per scale (−1 = infeasible).
func (f Fig15b) CSV() [][]string {
	header := []string{"scale"}
	for _, cat := range Schemes() {
		header = append(header, cat.Name)
	}
	rows := [][]string{header}
	for i, s := range f.Scales {
		row := []string{ftoa(s)}
		for _, cat := range Schemes() {
			row = append(row, ftoa(f.Capability[cat.Name][i]))
		}
		rows = append(rows, row)
	}
	return rows
}

// CSV emits per-scenario capabilities per scheme.
func (f Fig16) CSV() [][]string {
	rows := [][]string{{"scheme", "capability"}}
	for _, name := range []string{"100G-WAN", "RADWAN", "FlexWAN", "FlexWAN+"} {
		cdf, ok := f.Capability[name]
		if !ok {
			continue
		}
		for _, v := range cdf.Sorted {
			rows = append(rows, []string{name, ftoa(v)})
		}
	}
	return rows
}

// GNCheckCSV renders the GN cross-check rows.
type GNCheckCSV []GNCheckRow

// CSV emits the cross-check per format.
func (rows GNCheckCSV) CSV() [][]string {
	out := [][]string{{"rate_gbps", "spacing_ghz", "table_km", "gn_km", "ratio"}}
	for _, r := range rows {
		out = append(out, []string{
			itoaCSV(r.RateGbps), ftoa(r.SpacingGHz), ftoa(r.TableKm), ftoa(r.GNKm), ftoa(r.Ratio),
		})
	}
	return out
}

// Compile-time interface conformance.
var (
	_ CSVData = Fig2a{}
	_ CSVData = Fig2b{}
	_ CSVData = Fig3{}
	_ CSVData = Table2CSV(nil)
	_ CSVData = Fig12{}
	_ CSVData = Fig13a{}
	_ CSVData = Fig14{}
	_ CSVData = Fig15a{}
	_ CSVData = Fig15b{}
	_ CSVData = Fig16{}
	_ CSVData = GNCheckCSV(nil)
)
