// Package eval regenerates every table and figure of the FlexWAN paper's
// motivation and evaluation sections (§3, §6–§8) from the reproduction's
// own machinery: the workload generators, the planning and restoration
// algorithms, and the simulated hardware testbed. Each Fig*/Table*
// function returns a structured result whose String method prints the
// same rows or series the paper reports; cmd/flexwan-experiments and
// bench_test.go drive them.
package eval

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	// Sorted holds the sample in ascending order.
	Sorted []float64
}

// NewCDF copies and sorts the sample.
func NewCDF(sample []float64) CDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return CDF{Sorted: s}
}

// FractionBelow returns P(X ≤ x).
func (c CDF) FractionBelow(x float64) float64 {
	if len(c.Sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.Sorted, x)
	// Include equal values.
	for i < len(c.Sorted) && c.Sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.Sorted))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank.
func (c CDF) Percentile(p float64) float64 {
	if len(c.Sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.Sorted[0]
	}
	if p >= 100 {
		return c.Sorted[len(c.Sorted)-1]
	}
	rank := int(p / 100 * float64(len(c.Sorted)))
	if rank >= len(c.Sorted) {
		rank = len(c.Sorted) - 1
	}
	return c.Sorted[rank]
}

// Mean returns the sample mean.
func (c CDF) Mean() float64 {
	if len(c.Sorted) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.Sorted {
		sum += v
	}
	return sum / float64(len(c.Sorted))
}

// Len returns the sample size.
func (c CDF) Len() int { return len(c.Sorted) }

// Summary renders min / p25 / p50 / p75 / p90 / max on one line.
func (c CDF) Summary() string {
	if len(c.Sorted) == 0 {
		return "(empty)"
	}
	return fmt.Sprintf("min %.2f  p25 %.2f  p50 %.2f  p75 %.2f  p90 %.2f  max %.2f",
		c.Percentile(0), c.Percentile(25), c.Percentile(50),
		c.Percentile(75), c.Percentile(90), c.Percentile(100))
}

// renderTable formats rows with aligned columns for terminal output.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
