package eval

import (
	"fmt"
	"strings"

	"flexwan/internal/transponder"
	"flexwan/internal/workload"
)

// Fig2a is the distribution of optical path lengths across a production
// WAN's IP links (paper §3.1, Figure 2a).
type Fig2a struct {
	Network      string
	Lengths      CDF
	FracUnder200 float64
}

// Fig2aPathLengthDistribution measures the network's primary optical
// paths.
func Fig2aPathLengthDistribution(n workload.Network) Fig2a {
	cdf := NewCDF(n.PathLengthsKm())
	return Fig2a{
		Network:      n.Name,
		Lengths:      cdf,
		FracUnder200: cdf.FractionBelow(200),
	}
}

func (f Fig2a) String() string {
	return fmt.Sprintf("Fig 2(a) — optical path lengths, %s\n  %s\n  fraction < 200 km: %.0f%% (paper: ≈50%%)\n",
		f.Network, f.Lengths.Summary(), f.FracUnder200*100)
}

// Fig2b compares the maximum data rate supported by RADWAN's BVT and
// FlexWAN's SVT at each traveling distance (paper Figure 2b).
type Fig2b struct {
	DistancesKm []float64
	SVTGbps     []int
	BVTGbps     []int
}

// Fig2bMaxRateVsDistance sweeps the catalogs.
func Fig2bMaxRateVsDistance() Fig2b {
	var out Fig2b
	svt, bvt := transponder.SVT(), transponder.RADWAN()
	for d := 100.0; d <= 5000; d += 100 {
		out.DistancesKm = append(out.DistancesKm, d)
		out.SVTGbps = append(out.SVTGbps, svt.MaxRateAt(d))
		out.BVTGbps = append(out.BVTGbps, bvt.MaxRateAt(d))
	}
	return out
}

func (f Fig2b) String() string {
	rows := make([][]string, 0, len(f.DistancesKm))
	for i, d := range f.DistancesKm {
		if int(d)%500 != 0 && d != 100 && d != 200 && d != 300 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", d),
			fmt.Sprintf("%d", f.SVTGbps[i]),
			fmt.Sprintf("%d", f.BVTGbps[i]),
		})
	}
	return "Fig 2(b) — max data rate vs distance\n" +
		renderTable([]string{"km", "SVT Gbps", "BVT Gbps"}, rows)
}

// Fig3 is the single-demand cost study: hardware needed to provision
// 800 Gbps at each optical path length (paper Figure 3).
type Fig3 struct {
	DistancesKm                      []float64
	SVTTransponders, BVTTransponders []int
	SVTSpectrumGHz, BVTSpectrumGHz   []float64
}

// Fig3Provision800G sweeps path lengths for an 800 Gbps demand.
func Fig3Provision800G() Fig3 {
	var out Fig3
	svt, bvt := transponder.SVT(), transponder.RADWAN()
	for d := 100.0; d <= 2000; d += 100 {
		ps, okS := svt.MinProvision(800, d)
		pb, okB := bvt.MinProvision(800, d)
		if !okS || !okB {
			break
		}
		out.DistancesKm = append(out.DistancesKm, d)
		out.SVTTransponders = append(out.SVTTransponders, ps.Transponders())
		out.BVTTransponders = append(out.BVTTransponders, pb.Transponders())
		out.SVTSpectrumGHz = append(out.SVTSpectrumGHz, ps.SpectrumGHz())
		out.BVTSpectrumGHz = append(out.BVTSpectrumGHz, pb.SpectrumGHz())
	}
	return out
}

func (f Fig3) String() string {
	rows := make([][]string, len(f.DistancesKm))
	for i, d := range f.DistancesKm {
		rows[i] = []string{
			fmt.Sprintf("%.0f", d),
			fmt.Sprintf("%d", f.SVTTransponders[i]),
			fmt.Sprintf("%d", f.BVTTransponders[i]),
			fmt.Sprintf("%.1f", f.SVTSpectrumGHz[i]),
			fmt.Sprintf("%.1f", f.BVTSpectrumGHz[i]),
		}
	}
	var b strings.Builder
	b.WriteString("Fig 3 — provisioning 800 Gbps: transponder pairs and spectrum\n")
	b.WriteString(renderTable([]string{"km", "SVT tx", "BVT tx", "SVT GHz", "BVT GHz"}, rows))
	return b.String()
}
