package eval

import (
	"flexwan/internal/workload"
	"fmt"
	"sort"

	"flexwan/internal/phy"
	"flexwan/internal/transponder"
)

// GNCheckRow compares one SVT format's measured reach (Table 2) against
// the first-principles Gaussian-noise-model prediction — the independent
// physics plausibility check of the testbed numbers.
type GNCheckRow struct {
	RateGbps   int
	SpacingGHz float64
	TableKm    float64
	GNKm       float64
	Ratio      float64 // GN / table
}

// GNCrossCheck evaluates every SVT mode under the default GN parameters:
// required SNR from the mode's constellation and FEC via BER inversion,
// reach at the GN-optimal launch power in the mode's signal bandwidth.
func GNCrossCheck() []GNCheckRow {
	gn := phy.DefaultGN()
	var rows []GNCheckRow
	for _, m := range transponder.SVT().Modes {
		req := phy.RequiredSNRdB(m.Modulation, m.FEC)
		reach := gn.MaxReachKm(req, m.BaudGBd)
		ratio := 0.0
		if m.ReachKm > 0 {
			ratio = reach / m.ReachKm
		}
		rows = append(rows, GNCheckRow{
			RateGbps:   m.DataRateGbps,
			SpacingGHz: m.SpacingGHz,
			TableKm:    m.ReachKm,
			GNKm:       reach,
			Ratio:      ratio,
		})
	}
	return rows
}

// GNCheckString renders the cross-check with a median-ratio summary.
func GNCheckString(rows []GNCheckRow) string {
	table := make([][]string, len(rows))
	ratios := make([]float64, 0, len(rows))
	for i, r := range rows {
		table[i] = []string{
			fmt.Sprintf("%d", r.RateGbps),
			fmt.Sprintf("%.1f", r.SpacingGHz),
			fmt.Sprintf("%.0f", r.TableKm),
			fmt.Sprintf("%.0f", r.GNKm),
			fmt.Sprintf("%.2f", r.Ratio),
		}
		if r.Ratio > 0 {
			ratios = append(ratios, r.Ratio)
		}
	}
	sort.Float64s(ratios)
	median := 0.0
	if len(ratios) > 0 {
		median = ratios[len(ratios)/2]
	}
	return "GN-model cross-check of Table 2 (a-priori physics vs measured reach)\n" +
		renderTable([]string{"Gbps", "GHz", "table km", "GN km", "GN/table"}, table) +
		fmt.Sprintf("median GN/table ratio: %.2f (1.0 = perfect; deployed margins put measured below ideal)\n", median)
}

// GNDerivedCatalog returns the SVT catalog with every reach replaced by
// the GN-model prediction — what planning would look like if the operator
// trusted physics instead of testbed measurements.
func GNDerivedCatalog() transponder.Catalog {
	gn := phy.DefaultGN()
	return transponder.SVT().WithReaches("FlexWAN-GN", func(m transponder.Mode) float64 {
		return gn.MaxReachKm(phy.RequiredSNRdB(m.Modulation, m.FEC), m.BaudGBd)
	})
}

// ReachSensitivity compares planning outcomes under measured (Table 2)
// and GN-derived reaches on one network — the sensitivity of the paper's
// cost results to the reach model.
type ReachSensitivity struct {
	Network                      string
	MeasuredTx, GNTx             int
	MeasuredGHz, GNGHz           float64
	MeasuredFeasible, GNFeasible bool
}

// ReachSensitivityStudy plans the network with both catalogs.
func ReachSensitivityStudy(n workload.Network) (ReachSensitivity, error) {
	out := ReachSensitivity{Network: n.Name}
	measured, err := planScheme(n, transponder.SVT())
	if err != nil {
		return out, err
	}
	gnRes, err := planScheme(n, GNDerivedCatalog())
	if err != nil {
		return out, err
	}
	out.MeasuredTx, out.GNTx = measured.Transponders(), gnRes.Transponders()
	out.MeasuredGHz, out.GNGHz = measured.SpectrumGHz(), gnRes.SpectrumGHz()
	out.MeasuredFeasible, out.GNFeasible = measured.Feasible(), gnRes.Feasible()
	return out, nil
}

func (r ReachSensitivity) String() string {
	return fmt.Sprintf(`Reach-model sensitivity, %s at 1x
  Table 2 reaches:   %d transponders, %.0f GHz (feasible %v)
  GN-model reaches:  %d transponders, %.0f GHz (feasible %v)
`, r.Network, r.MeasuredTx, r.MeasuredGHz, r.MeasuredFeasible, r.GNTx, r.GNGHz, r.GNFeasible)
}
