package eval

import (
	"fmt"
	"math"

	"flexwan/internal/device"
	"flexwan/internal/devmodel"
	"flexwan/internal/phy"
	"flexwan/internal/spectrum"
	"flexwan/internal/transponder"
)

// Table2Row is one testbed measurement: an SVT format and the maximum
// error-free distance found by sweeping fiber length until the post-FEC
// BER turns positive (paper §6 / Table 2 / Figure 11).
type Table2Row struct {
	RateGbps      int
	SpacingGHz    float64
	DatasheetKm   float64 // Table 2's measured reach
	MeasuredKm    float64 // reach recovered by the simulated sweep
	WithinOneSpan bool    // measurement granularity is one amplifier span
}

// Table2TestbedSweep reproduces the §6 experiment with the simulated
// hardware: for every SVT format, a transponder agent is attached to a
// fiber whose length grows span by span; the reach is the longest length
// whose post-FEC BER reads exactly zero. The sweep goes through the same
// device code path the controller uses (configuration document → state
// document), so it validates the full hardware model, not a formula.
func Table2TestbedSweep() []Table2Row {
	link := phy.DefaultLink()
	grid := spectrum.DefaultGrid()
	catalog := transponder.SVT()
	rows := make([]Table2Row, 0, len(catalog.Modes))
	for _, mode := range catalog.Modes {
		measured := 0.0
		for l := link.SpanKm; l <= 6000; l += link.SpanKm {
			fabric := device.NewFabric(link)
			fiberID := "spool"
			if err := fabric.AddFiber(fiberID, l); err != nil {
				panic(err) // generator-controlled inputs
			}
			agent := device.NewTransponder(devmodel.Descriptor{
				ID: "dut", Class: devmodel.ClassTransponder, Vendor: "vendorA",
				Address: "testbed", Site: "lab",
			}, grid, catalog, fabric)
			cfg := devmodel.TransponderConfig{
				Enabled:       true,
				DataRateGbps:  mode.DataRateGbps,
				SpacingGHz:    mode.SpacingGHz,
				BaudGBd:       mode.BaudGBd,
				Modulation:    mode.Modulation.Name,
				FEC:           mode.FEC.Name,
				IntervalStart: 0,
				IntervalCount: mode.Pixels(grid),
				PathFibers:    []string{fiberID},
				Channel:       "testbed:1",
			}
			if err := applyDirect(agent, cfg); err != nil {
				panic(err)
			}
			st := agent.State()
			if st.PostFECBER > 0 {
				break
			}
			measured = l
		}
		rows = append(rows, Table2Row{
			RateGbps:      mode.DataRateGbps,
			SpacingGHz:    mode.SpacingGHz,
			DatasheetKm:   mode.ReachKm,
			MeasuredKm:    measured,
			WithinOneSpan: math.Abs(measured-mode.ReachKm) <= link.SpanKm,
		})
	}
	return rows
}

// applyDirect pushes a config into an agent through its management
// handler without a TCP session (the sweep runs thousands of configs).
func applyDirect(agent *device.Transponder, cfg devmodel.TransponderConfig) error {
	return agent.Configure(cfg)
}

// Table2String renders the sweep against the datasheet.
func Table2String(rows []Table2Row) string {
	table := make([][]string, len(rows))
	for i, r := range rows {
		ok := "yes"
		if !r.WithinOneSpan {
			ok = "NO"
		}
		table[i] = []string{
			fmt.Sprintf("%d", r.RateGbps),
			fmt.Sprintf("%.1f", r.SpacingGHz),
			fmt.Sprintf("%.0f", r.DatasheetKm),
			fmt.Sprintf("%.0f", r.MeasuredKm),
			ok,
		}
	}
	return "Table 2 / Fig 11 — SVT testbed sweep (reach at post-FEC BER = 0)\n" +
		renderTable([]string{"Gbps", "GHz", "table km", "measured km", "within 1 span"}, table)
}
