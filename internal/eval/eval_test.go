package eval

import (
	"strings"
	"testing"

	"flexwan/internal/workload"
)

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3, 2, 4})
	if c.Len() != 5 {
		t.Errorf("Len = %d", c.Len())
	}
	if got := c.FractionBelow(3); got != 0.6 {
		t.Errorf("FractionBelow(3) = %v, want 0.6", got)
	}
	if got := c.FractionBelow(0); got != 0 {
		t.Errorf("FractionBelow(0) = %v", got)
	}
	if got := c.FractionBelow(10); got != 1 {
		t.Errorf("FractionBelow(10) = %v", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := c.Percentile(100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := c.Percentile(50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := c.Mean(); got != 3 {
		t.Errorf("Mean = %v", got)
	}
	empty := NewCDF(nil)
	if empty.Mean() != 0 || empty.Percentile(50) != 0 || empty.FractionBelow(1) != 0 {
		t.Error("empty CDF accessors should return 0")
	}
	if empty.Summary() != "(empty)" {
		t.Errorf("empty Summary = %q", empty.Summary())
	}
}

func TestFig2a(t *testing.T) {
	f := Fig2aPathLengthDistribution(workload.TBackbone(1))
	if f.FracUnder200 < 0.4 || f.FracUnder200 > 0.7 {
		t.Errorf("frac under 200 km = %v, want ≈ 0.5", f.FracUnder200)
	}
	if !strings.Contains(f.String(), "Fig 2(a)") {
		t.Error("String missing title")
	}
}

func TestFig2b(t *testing.T) {
	f := Fig2bMaxRateVsDistance()
	if len(f.DistancesKm) == 0 {
		t.Fatal("empty sweep")
	}
	for i := range f.DistancesKm {
		if f.SVTGbps[i] < f.BVTGbps[i] {
			t.Errorf("at %v km SVT %d < BVT %d", f.DistancesKm[i], f.SVTGbps[i], f.BVTGbps[i])
		}
	}
	// The paper's headline gap: at short distances SVT hits 800 while
	// BVT caps at 300.
	if f.SVTGbps[0] != 800 || f.BVTGbps[0] != 300 {
		t.Errorf("at 100 km: SVT %d (want 800), BVT %d (want 300)", f.SVTGbps[0], f.BVTGbps[0])
	}
	_ = f.String()
}

func TestFig3(t *testing.T) {
	f := Fig3Provision800G()
	if len(f.DistancesKm) == 0 {
		t.Fatal("empty sweep")
	}
	for i, d := range f.DistancesKm {
		if f.SVTTransponders[i] > f.BVTTransponders[i] {
			t.Errorf("at %v km SVT uses more transponders", d)
		}
		if f.SVTSpectrumGHz[i] > f.BVTSpectrumGHz[i]+1e-9 {
			t.Errorf("at %v km SVT uses more spectrum (%v > %v)", d, f.SVTSpectrumGHz[i], f.BVTSpectrumGHz[i])
		}
		// Paper: ≤ 300 km needs 1 SVT vs 3 BVT, 225 GHz for BVT.
		if d <= 300 {
			if f.SVTTransponders[i] != 1 || f.BVTTransponders[i] != 3 {
				t.Errorf("at %v km: SVT %d (want 1), BVT %d (want 3)", d, f.SVTTransponders[i], f.BVTTransponders[i])
			}
		}
		// Paper: at 1800 km SVT count is half of BVT's.
		if d == 1800 && f.SVTTransponders[i]*2 != f.BVTTransponders[i] {
			t.Errorf("at 1800 km: SVT %d, BVT %d (want 1:2)", f.SVTTransponders[i], f.BVTTransponders[i])
		}
	}
	_ = f.String()
}

func TestTable2Sweep(t *testing.T) {
	rows := Table2TestbedSweep()
	if len(rows) != 36 {
		t.Fatalf("rows = %d, want 36", len(rows))
	}
	for _, r := range rows {
		if !r.WithinOneSpan {
			t.Errorf("%dG@%vGHz: measured %v km vs datasheet %v km (off by more than a span)",
				r.RateGbps, r.SpacingGHz, r.MeasuredKm, r.DatasheetKm)
		}
		if r.MeasuredKm < r.DatasheetKm-1e-9 && r.DatasheetKm-r.MeasuredKm > 80 {
			t.Errorf("%dG@%vGHz under-measures reach: %v < %v", r.RateGbps, r.SpacingGHz, r.MeasuredKm, r.DatasheetKm)
		}
	}
	if !strings.Contains(Table2String(rows), "Table 2") {
		t.Error("Table2String missing title")
	}
}

func TestFig12AndHeadlines(t *testing.T) {
	n := workload.TBackbone(1)
	f, err := Fig12HardwareVsScale(n, []float64{1, 2, 3, 4, 5, 6, 7, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Ordering of max supported scale: 100G-WAN < RADWAN < FlexWAN
	// (paper: 3× / 5× / 8×).
	mf, mr, mx := f.MaxScale["100G-WAN"], f.MaxScale["RADWAN"], f.MaxScale["FlexWAN"]
	if !(mf < mr && mr < mx) {
		t.Errorf("max scales: 100G %gx, RADWAN %gx, FlexWAN %gx — ordering violated", mf, mr, mx)
	}
	if mx < 6 {
		t.Errorf("FlexWAN max scale = %gx, want ≥ 6 (paper 8×)", mx)
	}
	if mf > 4 {
		t.Errorf("100G-WAN max scale = %gx, want ≤ 4 (paper 3×)", mf)
	}
	// At every feasible scale the cost ordering holds.
	for i := range f.Scales {
		fx, rad, flex := f.Transponders["100G-WAN"][i], f.Transponders["RADWAN"][i], f.Transponders["FlexWAN"][i]
		if fx > 0 && rad > 0 && !(flex <= rad && rad <= fx) {
			t.Errorf("scale %g: transponders FlexWAN %d, RADWAN %d, 100G %d", f.Scales[i], flex, rad, fx)
		}
	}
	// Transponders grow roughly linearly with scale for FlexWAN.
	tx := f.Transponders["FlexWAN"]
	if tx[3] < 3*tx[0] || tx[3] > 5*tx[0] {
		t.Errorf("FlexWAN transponders at 4x = %d, not ≈ 4 × %d", tx[3], tx[0])
	}
	_ = f.String()

	s, err := HeadlineSavings(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Shape targets: large savings vs 100G-WAN, moderate vs RADWAN.
	if s.TxSavedVs100G < 60 || s.TxSavedVs100G > 95 {
		t.Errorf("tx saved vs 100G = %.0f%%, paper ≈ 85%%", s.TxSavedVs100G)
	}
	if s.TxSavedVsRADWAN < 30 || s.TxSavedVsRADWAN > 75 {
		t.Errorf("tx saved vs RADWAN = %.0f%%, paper ≈ 57%%", s.TxSavedVsRADWAN)
	}
	if s.SpectrumSavedVs100G < 40 {
		t.Errorf("spectrum saved vs 100G = %.0f%%, paper ≈ 67%%", s.SpectrumSavedVs100G)
	}
	if s.SpectrumSavedVsRADWAN < 15 {
		t.Errorf("spectrum saved vs RADWAN = %.0f%%, paper ≈ 36%%", s.SpectrumSavedVsRADWAN)
	}
	_ = s.String()
}

func TestFig13(t *testing.T) {
	tb, ce := workload.TBackbone(1), workload.Cernet(1)
	a := Fig13aWeightedPathLengths(tb, ce)
	if a.Medians["T-backbone"] >= a.Medians["Cernet"] {
		t.Errorf("weighted medians: T-backbone %v ≥ Cernet %v", a.Medians["T-backbone"], a.Medians["Cernet"])
	}
	_ = a.String()

	b, err := Fig13bTopologyGains(tb, ce)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.PerNetwork) != 2 {
		t.Fatalf("gains for %d networks", len(b.PerNetwork))
	}
	// Paper: gains on the short-path T-backbone exceed gains on Cernet.
	if b.PerNetwork[0].TxSavedVs100G <= b.PerNetwork[1].TxSavedVs100G {
		t.Errorf("tx savings: T-backbone %.0f%% ≤ Cernet %.0f%%",
			b.PerNetwork[0].TxSavedVs100G, b.PerNetwork[1].TxSavedVs100G)
	}
	// Both positive on every axis.
	for _, s := range b.PerNetwork {
		if s.TxSavedVs100G <= 0 || s.TxSavedVsRADWAN < 0 || s.SpectrumSavedVs100G <= 0 {
			t.Errorf("%s: non-positive savings %+v", s.Network, s)
		}
	}
	_ = b.String()
}

func TestFig14(t *testing.T) {
	f, err := Fig14WavelengthDistributions(workload.TBackbone(1))
	if err != nil {
		t.Fatal(err)
	}
	// Fig 14a: most FlexWAN gaps are small; most 100G-WAN gaps exceed
	// 1000 km (paper: 80%). The paper reports 90% of FlexWAN gaps under
	// 100 km; our synthetic metro paths sit further from Table 2's reach
	// steps than the production mix, so the shape assertion is "small
	// relative to the rigid schemes" rather than the absolute 100 km.
	flexSmall := f.GapKm["FlexWAN"].FractionBelow(300)
	if flexSmall < 0.6 {
		t.Errorf("FlexWAN gaps ≤ 300 km = %.0f%%, want ≥ 60%%", flexSmall*100)
	}
	if f.GapKm["FlexWAN"].Percentile(90) >= f.GapKm["100G-WAN"].Percentile(90) {
		t.Error("FlexWAN p90 gap should be far below 100G-WAN's")
	}
	fxBig := 1 - f.GapKm["100G-WAN"].FractionBelow(1000)
	if fxBig < 0.5 {
		t.Errorf("100G-WAN gaps > 1000 km = %.0f%%, paper ≈ 80%%", fxBig*100)
	}
	// Fig 14b: 100G-WAN pinned at 2.0; FlexWAN dominates RADWAN.
	fx := f.SpectralEff["100G-WAN"]
	if fx.Percentile(0) != 2 || fx.Percentile(100) != 2 {
		t.Errorf("100G-WAN spectral efficiency not fixed at 2: %s", fx.Summary())
	}
	if f.SpectralEff["FlexWAN"].Mean() <= f.SpectralEff["RADWAN"].Mean() {
		t.Error("FlexWAN mean spectral efficiency does not exceed RADWAN's")
	}
	_ = f.String()
}

func TestFig15a(t *testing.T) {
	f, err := Fig15aRestoredPathGaps(workload.TBackbone(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stretch.Len() == 0 {
		t.Fatal("no restored paths measured")
	}
	// Paper: ~90% of restored paths are longer than the original.
	if f.FracLonger < 0.6 {
		t.Errorf("restored-longer fraction = %.0f%%, paper ≈ 90%%", f.FracLonger*100)
	}
	_ = f.String()
}

func TestFig15b(t *testing.T) {
	f, err := Fig15bRestorationVsScale(workload.TBackbone(1), []float64{1, 3, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Underloaded: the rigid schemes restore nearly everything (their
	// reach margin is huge).
	if c := f.Capability["RADWAN"][0]; c < 0.85 {
		t.Errorf("RADWAN capability at 1x = %v, paper ≈ 1.0", c)
	}
	if c := f.Capability["100G-WAN"][0]; c < 0.85 {
		t.Errorf("100G-WAN capability at 1x = %v, paper ≈ 1.0", c)
	}
	// Overloaded at 5×: either the rigid schemes are already infeasible
	// (cannot even serve the demand — the stronger failure) or FlexWAN
	// restores more (paper: +15% vs RADWAN).
	flex5 := f.Capability["FlexWAN"][2]
	if flex5 < 0 {
		t.Fatal("FlexWAN infeasible at 5x — workload calibration broken")
	}
	rad5 := f.Capability["RADWAN"][2]
	if rad5 >= 0 && flex5 <= rad5 {
		t.Errorf("at 5x: FlexWAN %.3f ≤ RADWAN %.3f", flex5, rad5)
	}
	_ = f.String()
}

func TestFig16(t *testing.T) {
	n := workload.TBackbone(1)
	under, err := Fig16RestorationCDF(n, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// FlexWAN+ must dominate plain FlexWAN (extra spares only help).
	plus, ok1 := under.Capability["FlexWAN+"]
	flex, ok2 := under.Capability["FlexWAN"]
	if !ok1 || !ok2 {
		t.Fatal("missing FlexWAN/FlexWAN+ series")
	}
	if plus.Mean() < flex.Mean()-1e-9 {
		t.Errorf("FlexWAN+ mean %.3f < FlexWAN %.3f at 1x", plus.Mean(), flex.Mean())
	}
	_ = under.String()

	over, err := Fig16RestorationCDF(n, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := over.Capability["FlexWAN"]; !ok {
		t.Error("FlexWAN missing at 5x")
	}
	_ = over.String()
}

func TestGNCrossCheck(t *testing.T) {
	rows := GNCrossCheck()
	if len(rows) != 36 {
		t.Fatalf("rows = %d, want 36", len(rows))
	}
	inBand := 0
	for _, r := range rows {
		if r.GNKm < 0 {
			t.Errorf("%dG@%v: negative GN reach", r.RateGbps, r.SpacingGHz)
		}
		if r.Ratio >= 0.3 && r.Ratio <= 8 {
			inBand++
		}
	}
	// The GN model is an ideal-physics bound with a fixed margin; most
	// Table 2 points should land within a small factor of it.
	if frac := float64(inBand) / float64(len(rows)); frac < 0.6 {
		t.Errorf("only %.0f%% of formats within 0.3–8x of the GN prediction", frac*100)
	}
	if got := GNCheckString(rows); len(got) == 0 {
		t.Error("empty rendering")
	}
}

func TestProbabilisticRestorationSweep(t *testing.T) {
	f, err := ProbabilisticRestorationSweep(workload.TBackbone(1), 1, 7, 12, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Scenarios == 0 {
		t.Fatal("no scenarios")
	}
	for _, cat := range Schemes() {
		c := f.Capability[cat.Name]
		if c < 0 || c > 1 {
			t.Errorf("%s capability = %v", cat.Name, c)
		}
	}
	_ = f.String()
}

func TestReachSensitivityStudy(t *testing.T) {
	r, err := ReachSensitivityStudy(workload.TBackbone(1))
	if err != nil {
		t.Fatal(err)
	}
	if !r.MeasuredFeasible {
		t.Fatal("measured catalog infeasible at 1x")
	}
	if !r.GNFeasible {
		t.Fatal("GN-derived catalog infeasible at 1x")
	}
	if r.GNTx <= 0 || r.MeasuredTx <= 0 {
		t.Errorf("transponder counts: measured %d, GN %d", r.MeasuredTx, r.GNTx)
	}
	// The two reach models must agree within a small factor on total
	// hardware — the paper's conclusions are not an artifact of the
	// specific reach table.
	ratio := float64(r.GNTx) / float64(r.MeasuredTx)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("GN/measured transponder ratio = %.2f, want within 2x", ratio)
	}
	_ = r.String()
	// The derived catalog is structurally sound.
	cat := GNDerivedCatalog()
	if len(cat.Modes) == 0 {
		t.Fatal("empty GN catalog")
	}
	for _, m := range cat.Modes {
		if m.ReachKm <= 0 {
			t.Errorf("mode %v has nonpositive reach", m)
		}
	}
}

func TestCSVEmitters(t *testing.T) {
	n := workload.TBackbone(1)
	var emitters = map[string]CSVData{
		"fig2a":  Fig2aPathLengthDistribution(n),
		"fig2b":  Fig2bMaxRateVsDistance(),
		"fig3":   Fig3Provision800G(),
		"table2": Table2CSV(Table2TestbedSweep()),
		"gn":     GNCheckCSV(GNCrossCheck()),
		"fig13a": Fig13aWeightedPathLengths(n, workload.Cernet(1)),
	}
	f14, err := Fig14WavelengthDistributions(n)
	if err != nil {
		t.Fatal(err)
	}
	emitters["fig14"] = f14
	f15a, err := Fig15aRestoredPathGaps(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	emitters["fig15a"] = f15a

	for name, e := range emitters {
		rows := e.CSV()
		if len(rows) < 2 {
			t.Errorf("%s: only %d rows", name, len(rows))
			continue
		}
		width := len(rows[0])
		if width == 0 {
			t.Errorf("%s: empty header", name)
		}
		for i, r := range rows {
			if len(r) != width {
				t.Errorf("%s: row %d has %d cells, header has %d", name, i, len(r), width)
				break
			}
		}
		var buf strings.Builder
		if err := WriteCSV(&buf, e); err != nil {
			t.Errorf("%s: WriteCSV: %v", name, err)
		}
		if !strings.Contains(buf.String(), "\n") {
			t.Errorf("%s: no rows written", name)
		}
	}
}
