package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"flexwan/internal/api"
)

// ServiceLoadOptions configures the controller-service load generator.
type ServiceLoadOptions struct {
	// Addr is the service base URL, e.g. "http://127.0.0.1:8422".
	Addr string
	// Tenants is the number of concurrent tenants (default 4).
	Tenants int
	// Jobs is the total job count across all tenants (default 1000).
	Jobs int
	// Concurrency is the in-flight submissions per tenant (default 16) —
	// enough to keep the admission queue under pressure so the 429
	// backpressure path actually exercises.
	Concurrency int
	// Network is the backbone the restoration jobs target (default
	// "cernet"); each job cuts one fiber, rotating through the topology.
	Network string
	// K is the candidate-path count (0: planner default).
	K int
	// Logf receives progress lines (nil silences them).
	Logf func(format string, args ...interface{})
}

// ServiceLoadRecord is one BENCH_service.json entry: throughput and
// latency of the controller service under concurrent multi-tenant
// restoration load, plus the fairness and zero-loss checks.
type ServiceLoadRecord struct {
	Network     string `json:"network"`
	Tenants     int    `json:"tenants"`
	Jobs        int    `json:"jobs"`
	Concurrency int    `json:"concurrency"`

	// Lost counts accepted jobs that never reached a terminal state —
	// the invariant is zero.
	Lost int `json:"lost"`
	// Rejected429 counts submissions the admission queue refused; each
	// was retried until accepted, so it measures backpressure, not loss.
	Rejected429 int `json:"rejected_429"`
	Optimal     int `json:"optimal"`
	Failed      int `json:"failed"`
	Canceled    int `json:"canceled"`

	WallSec              float64 `json:"wall_sec"`
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	// Latency is submission-accepted → terminal-observed, queueing
	// included.
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`

	// PerTenantMeanMs is each tenant's mean latency; FairnessRatio is
	// max/min of those means — near 1.0 means round-robin dequeue gave
	// every tenant the same service.
	PerTenantMeanMs map[string]float64 `json:"per_tenant_mean_ms"`
	FairnessRatio   float64            `json:"fairness_ratio"`
	MaxQueueDepth   int                `json:"max_queue_depth"`
}

// RunServiceLoad drives a live flexwand service with Jobs restoration
// submissions from Tenants concurrent tenants and reports latency,
// throughput, and fairness. 429 responses are retried with backoff —
// accepted-but-unfinished jobs are the only thing counted as lost.
func RunServiceLoad(opts ServiceLoadOptions) (*ServiceLoadRecord, error) {
	if opts.Tenants <= 0 {
		opts.Tenants = 4
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 1000
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 16
	}
	if opts.Network == "" {
		opts.Network = "cernet"
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	n, err := api.ResolveNetwork(opts.Network, 0, 1)
	if err != nil {
		return nil, err
	}
	fibers := n.Optical.Fibers()
	if len(fibers) == 0 {
		return nil, fmt.Errorf("eval: network %s has no fibers to cut", opts.Network)
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	type sample struct {
		tenant string
		ms     float64
		state  api.JobState
	}
	var (
		mu       sync.Mutex
		samples  []sample
		rejected int
		lost     int
	)

	perTenant := opts.Jobs / opts.Tenants
	extra := opts.Jobs % opts.Tenants
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < opts.Tenants; t++ {
		tenant := fmt.Sprintf("tenant-%d", t)
		jobs := perTenant
		if t < extra {
			jobs++
		}
		work := make(chan int)
		for c := 0; c < opts.Concurrency; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					fiber := fibers[i%len(fibers)].ID
					ms, state, rej, err := submitAndWait(client, opts, tenant, fiber)
					mu.Lock()
					rejected += rej
					if err != nil {
						lost++
					} else {
						samples = append(samples, sample{tenant, ms, state})
					}
					mu.Unlock()
				}
			}()
		}
		wg.Add(1)
		go func(jobs, offset int) {
			defer wg.Done()
			for i := 0; i < jobs; i++ {
				work <- offset + i
			}
			close(work)
		}(jobs, t*perTenant)
	}
	wg.Wait()
	wall := time.Since(start)

	rec := &ServiceLoadRecord{
		Network: opts.Network, Tenants: opts.Tenants, Jobs: opts.Jobs,
		Concurrency: opts.Concurrency,
		Lost:        lost, Rejected429: rejected,
		WallSec:              wall.Seconds(),
		ThroughputJobsPerSec: float64(len(samples)) / wall.Seconds(),
		PerTenantMeanMs:      make(map[string]float64),
	}
	var all []float64
	perTenantLat := make(map[string][]float64)
	for _, s := range samples {
		all = append(all, s.ms)
		perTenantLat[s.tenant] = append(perTenantLat[s.tenant], s.ms)
		switch s.state {
		case api.StateOptimal:
			rec.Optimal++
		case api.StateFailed:
			rec.Failed++
		case api.StateCanceled:
			rec.Canceled++
		}
	}
	sort.Float64s(all)
	rec.MeanMs = mean(all)
	rec.P50Ms = quantileSorted(all, 0.50)
	rec.P95Ms = quantileSorted(all, 0.95)
	rec.P99Ms = quantileSorted(all, 0.99)
	minMean, maxMean := math.Inf(1), 0.0
	for tenant, lats := range perTenantLat {
		m := mean(lats)
		rec.PerTenantMeanMs[tenant] = m
		if m < minMean {
			minMean = m
		}
		if m > maxMean {
			maxMean = m
		}
	}
	if minMean > 0 && !math.IsInf(minMean, 1) {
		rec.FairnessRatio = maxMean / minMean
	}

	// The service's own high-water mark for the admission queue.
	if resp, err := client.Get(opts.Addr + "/v1/stats"); err == nil {
		var st api.SchedStats
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			rec.MaxQueueDepth = st.MaxQueueDepth
		}
		resp.Body.Close()
	}
	logf("service load: %d jobs in %.1fs (%.1f/s), p50 %.1fms p99 %.1fms, lost %d, 429s %d",
		len(samples), rec.WallSec, rec.ThroughputJobsPerSec, rec.P50Ms, rec.P99Ms, lost, rejected)
	return rec, nil
}

// submitAndWait pushes one restoration job and long-polls it to a
// terminal state. 429s are retried with linear backoff and counted.
func submitAndWait(client *http.Client, opts ServiceLoadOptions, tenant, fiber string) (ms float64, state api.JobState, rejected int, err error) {
	spec := api.JobSpec{Type: "restore", Network: opts.Network, K: opts.K, CutFibers: []string{fiber}}
	body, _ := json.Marshal(spec)
	start := time.Now()
	var view api.JobView
	for attempt := 0; ; attempt++ {
		req, rerr := http.NewRequest("POST", opts.Addr+"/v1/jobs", bytes.NewReader(body))
		if rerr != nil {
			return 0, "", rejected, rerr
		}
		req.Header.Set("X-Tenant", tenant)
		resp, rerr := client.Do(req)
		if rerr != nil {
			return 0, "", rejected, rerr
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			rejected++
			time.Sleep(time.Duration(2+attempt%8) * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			resp.Body.Close()
			return 0, "", rejected, fmt.Errorf("submit: status %d", resp.StatusCode)
		}
		rerr = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if rerr != nil {
			return 0, "", rejected, rerr
		}
		break
	}
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, rerr := client.Get(opts.Addr + "/v1/jobs/" + view.ID + "?wait=10s")
		if rerr != nil {
			return 0, "", rejected, rerr
		}
		var v api.JobView
		rerr = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if rerr != nil {
			return 0, "", rejected, rerr
		}
		if v.State.Terminal() {
			return float64(time.Since(start)) / float64(time.Millisecond), v.State, rejected, nil
		}
	}
	return 0, "", rejected, fmt.Errorf("job %s never reached a terminal state", view.ID)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// quantileSorted reads the q-quantile from an ascending slice.
func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
