package eval

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"flexwan/internal/plan"
	"flexwan/internal/solver"
)

// TestEngineDifferentialLadder is the end-to-end engine differential on
// the real planning MIP: across the benchmark scaling ladder, the dense
// tableau, the revised simplex under Forrest–Tomlin updates, and the
// revised simplex under the product-form eta file must reach the SAME
// optimal objective (exact float equality — every engine proves
// optimality, and the acceptance bar for this instance family is
// bitwise-identical objective values), with presolve and node presolve
// each toggled. The reported plan is also checked for internal
// consistency: provisioned capacity covers demand.
func TestEngineDifferentialLadder(t *testing.T) {
	ladder := []int{16, 24, 32, 48, 64}
	if testing.Short() {
		ladder = []int{16, 24}
	}
	type cfg struct {
		dense, etaFile, noPresolve, noNodePresolve bool
	}
	cfgs := []cfg{
		{},                     // default: revised + Forrest–Tomlin, all passes on
		{etaFile: true},        // product-form eta file
		{dense: true},          // dense tableau
		{noPresolve: true},     // global presolve off
		{noNodePresolve: true}, // node presolve off
		{etaFile: true, noPresolve: true},
		{dense: true, noPresolve: true},
	}
	for _, pixels := range ladder {
		p, err := ExactScalingProblem(pixels)
		if err != nil {
			t.Fatal(err)
		}
		var ref float64
		haveRef := false
		for _, c := range cfgs {
			label := fmt.Sprintf("pixels=%d dense=%v eta=%v presolve=%v np=%v",
				pixels, c.dense, c.etaFile, !c.noPresolve, !c.noNodePresolve)
			res, err := plan.SolveExact(p, solver.Options{
				MaxNodes: 100000, Workers: 1,
				DenseSimplex: c.dense, EtaFileUpdates: c.etaFile,
				NoPresolve: c.noPresolve, NoNodePresolve: c.noNodePresolve,
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if res.Solver.Status != solver.Optimal {
				t.Fatalf("%s: status %v", label, res.Solver.Status)
			}
			if !haveRef {
				ref, haveRef = res.Solver.Objective, true
			} else if res.Solver.Objective != ref {
				t.Fatalf("%s: objective %v, want %v (engines diverged)", label, res.Solver.Objective, ref)
			}
			for id, lp := range res.PerLink {
				if lp.ProvisionedGbps < lp.DemandGbps {
					t.Fatalf("%s: link %s provisioned %d < demand %d",
						label, id, lp.ProvisionedGbps, lp.DemandGbps)
				}
			}
		}
	}
}

// TestExactTBackbone solves a full T-backbone instance exactly — all
// clusters, core, and IP links of the synthetic backbone — and checks the
// plan against demand, plus the FT/eta objective identity on a real
// (non-line) topology. Kept at a small grid so it stays a unit test; the
// benchmark ladder runs the bigger ones.
func TestExactTBackbone(t *testing.T) {
	p, err := ExactTBackboneProblem(1, 0.02, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ref float64
	haveRef := false
	for _, etaFile := range []bool{false, true} {
		res, err := plan.SolveExact(p, solver.Options{
			MaxNodes: 200000, Workers: 1, EtaFileUpdates: etaFile,
		})
		if err != nil {
			t.Fatalf("etaFile=%v: %v", etaFile, err)
		}
		if res.Solver.Status != solver.Optimal {
			t.Fatalf("etaFile=%v: status %v", etaFile, res.Solver.Status)
		}
		if !haveRef {
			ref, haveRef = res.Solver.Objective, true
		} else if res.Solver.Objective != ref {
			t.Fatalf("etaFile=%v: objective %v, want %v", etaFile, res.Solver.Objective, ref)
		}
		for id, lp := range res.PerLink {
			if lp.ProvisionedGbps < lp.DemandGbps {
				t.Fatalf("etaFile=%v: link %s provisioned %d < demand %d",
					etaFile, id, lp.ProvisionedGbps, lp.DemandGbps)
			}
		}
	}
}

// TestSolverBenchmarksSmoke runs the benchmark harness at minimal
// iteration counts and checks the ablation dimensions: every instance
// must contribute one dense, one revised-eta, and one node-presolve-off
// point (dense skipped on SkipDense instances), engines must be labelled,
// and bytes/op must be reported nonzero.
func TestSolverBenchmarksSmoke(t *testing.T) {
	instances := []SolverBenchInstance{{Name: "exact-planning/pixels=12", Pixels: 12}}
	bench, err := SolverBenchmarks(instances, []int{1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var denseN, etaN, revisedN, npOffN int
	for _, pt := range bench.Points {
		switch pt.Engine {
		case "dense":
			denseN++
		case "revised-eta":
			etaN++
		case "revised":
			revisedN++
		default:
			t.Fatalf("point %s has unknown engine %q", pt.Instance, pt.Engine)
		}
		if !pt.NodePresolve {
			npOffN++
		}
		if pt.BytesPerOp <= 0 || math.IsNaN(pt.BytesPerOp) {
			t.Fatalf("point %s engine=%s: BytesPerOp = %v", pt.Instance, pt.Engine, pt.BytesPerOp)
		}
		if pt.Engine != "dense" && pt.Refactorizations == 0 {
			t.Fatalf("point %s engine=%s: Refactorizations = 0", pt.Instance, pt.Engine)
		}
	}
	if denseN != 1 {
		t.Fatalf("dense ablation points = %d, want 1 per instance", denseN)
	}
	if etaN != 1 {
		t.Fatalf("revised-eta ablation points = %d, want 1 per instance", etaN)
	}
	if npOffN != 1 {
		t.Fatalf("node-presolve-off ablation points = %d, want 1 per instance", npOffN)
	}
	if revisedN < 3 {
		t.Fatalf("revised points = %d, want >= 3 (sweep + presolve + node-presolve ablations)", revisedN)
	}
	if !strings.Contains(bench.String(), "dense") {
		t.Fatal("rendered table missing the engine column")
	}
}

// TestSolverBenchSkipDense checks the dense ablation is skipped on
// instances marked too large for the tableau.
func TestSolverBenchSkipDense(t *testing.T) {
	instances := []SolverBenchInstance{{Name: "exact-planning/pixels=12", Pixels: 12, SkipDense: true}}
	bench, err := SolverBenchmarks(instances, []int{1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range bench.Points {
		if pt.Engine == "dense" {
			t.Fatalf("SkipDense instance produced a dense point: %+v", pt)
		}
	}
}
