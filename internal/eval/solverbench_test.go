package eval

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"flexwan/internal/plan"
	"flexwan/internal/solver"
)

// TestEngineDifferentialLadder is the end-to-end engine differential on
// the real planning MIP: across the benchmark scaling ladder, the dense
// tableau and the revised simplex must reach the SAME optimal objective
// (exact float equality — both engines prove optimality, and the
// acceptance bar for this instance family is bitwise-identical objective
// values), with presolve on and off. The reported plan is also checked
// for internal consistency: provisioned capacity covers demand.
func TestEngineDifferentialLadder(t *testing.T) {
	ladder := []int{16, 24, 32, 48, 64}
	if testing.Short() {
		ladder = []int{16, 24}
	}
	for _, pixels := range ladder {
		p, err := ExactScalingProblem(pixels)
		if err != nil {
			t.Fatal(err)
		}
		var ref float64
		haveRef := false
		for _, dense := range []bool{false, true} {
			for _, noPresolve := range []bool{false, true} {
				label := fmt.Sprintf("pixels=%d dense=%v presolve=%v", pixels, dense, !noPresolve)
				res, err := plan.SolveExact(p, solver.Options{
					MaxNodes: 100000, Workers: 1,
					DenseSimplex: dense, NoPresolve: noPresolve,
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if res.Solver.Status != solver.Optimal {
					t.Fatalf("%s: status %v", label, res.Solver.Status)
				}
				if !haveRef {
					ref, haveRef = res.Solver.Objective, true
				} else if res.Solver.Objective != ref {
					t.Fatalf("%s: objective %v, want %v (engines diverged)", label, res.Solver.Objective, ref)
				}
				for id, lp := range res.PerLink {
					if lp.ProvisionedGbps < lp.DemandGbps {
						t.Fatalf("%s: link %s provisioned %d < demand %d",
							label, id, lp.ProvisionedGbps, lp.DemandGbps)
					}
				}
			}
		}
	}
}

// TestSolverBenchmarksSmoke runs the benchmark harness at minimal
// iteration counts and checks the new engine dimension: every instance
// must contribute exactly one dense-ablation point, engines must be
// labelled, and the dense point's bytes/op on the same instance must not
// be reported as zero (the memory comparison the PR's 4x criterion reads
// off BENCH_solver.json).
func TestSolverBenchmarksSmoke(t *testing.T) {
	bench, err := SolverBenchmarks([]int{12}, []int{1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var denseN, revisedN int
	for _, pt := range bench.Points {
		switch pt.Engine {
		case "dense":
			denseN++
		case "revised":
			revisedN++
		default:
			t.Fatalf("point %s has unknown engine %q", pt.Instance, pt.Engine)
		}
		if pt.BytesPerOp <= 0 || math.IsNaN(pt.BytesPerOp) {
			t.Fatalf("point %s engine=%s: BytesPerOp = %v", pt.Instance, pt.Engine, pt.BytesPerOp)
		}
	}
	if denseN != 1 {
		t.Fatalf("dense ablation points = %d, want 1 per instance", denseN)
	}
	if revisedN < 2 {
		t.Fatalf("revised points = %d, want >= 2 (sweep + presolve ablation)", revisedN)
	}
	if !strings.Contains(bench.String(), "dense") {
		t.Fatal("rendered table missing the engine column")
	}
}
