package eval

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"flexwan/internal/plan"
	"flexwan/internal/solver"
)

// TestEngineDifferentialLadder is the end-to-end engine differential on
// the real planning MIP: across the benchmark scaling ladder, the dense
// tableau, the revised simplex under Forrest–Tomlin updates, and the
// revised simplex under the product-form eta file must reach the SAME
// optimal objective (exact float equality — every engine proves
// optimality, and the acceptance bar for this instance family is
// bitwise-identical objective values), with presolve and node presolve
// each toggled. The reported plan is also checked for internal
// consistency: provisioned capacity covers demand.
func TestEngineDifferentialLadder(t *testing.T) {
	ladder := []int{16, 24, 32, 48, 64}
	if testing.Short() {
		ladder = []int{16, 24}
	}
	type cfg struct {
		dense, etaFile, noPresolve, noNodePresolve bool
		pricing                                    solver.PricingRule
	}
	cfgs := []cfg{
		{},                     // default: revised + Forrest–Tomlin, devex, all passes on
		{etaFile: true},        // product-form eta file
		{dense: true},          // dense tableau
		{noPresolve: true},     // global presolve off
		{noNodePresolve: true}, // node presolve off
		{etaFile: true, noPresolve: true},
		{dense: true, noPresolve: true},
		{pricing: solver.PricingDantzig},      // pricing must not change the answer
		{pricing: solver.PricingSteepestEdge}, // (devex is the default cfg above)
	}
	for _, pixels := range ladder {
		p, err := ExactScalingProblem(pixels)
		if err != nil {
			t.Fatal(err)
		}
		var ref float64
		haveRef := false
		for _, c := range cfgs {
			label := fmt.Sprintf("pixels=%d dense=%v eta=%v presolve=%v np=%v pricing=%s",
				pixels, c.dense, c.etaFile, !c.noPresolve, !c.noNodePresolve, c.pricing)
			res, err := plan.SolveExact(p, solver.Options{
				MaxNodes: 100000, Workers: 1,
				DenseSimplex: c.dense, EtaFileUpdates: c.etaFile,
				NoPresolve: c.noPresolve, NoNodePresolve: c.noNodePresolve,
				Pricing: c.pricing,
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if res.Solver.Status != solver.Optimal {
				t.Fatalf("%s: status %v", label, res.Solver.Status)
			}
			wantPricing := solver.Options{DenseSimplex: c.dense, Pricing: c.pricing}.EffectivePricing()
			if res.Solver.PricingMode != wantPricing {
				t.Fatalf("%s: stats report pricing %q, want %q", label, res.Solver.PricingMode, wantPricing)
			}
			if !haveRef {
				ref, haveRef = res.Solver.Objective, true
			} else if res.Solver.Objective != ref {
				t.Fatalf("%s: objective %v, want %v (engines diverged)", label, res.Solver.Objective, ref)
			}
			for id, lp := range res.PerLink {
				if lp.ProvisionedGbps < lp.DemandGbps {
					t.Fatalf("%s: link %s provisioned %d < demand %d",
						label, id, lp.ProvisionedGbps, lp.DemandGbps)
				}
			}
		}
	}
}

// TestExactTBackbone solves a full T-backbone instance exactly — all
// clusters, core, and IP links of the synthetic backbone — and checks the
// plan against demand, plus the FT/eta objective identity on a real
// (non-line) topology. Kept at a small grid so it stays a unit test; the
// benchmark ladder runs the bigger ones.
func TestExactTBackbone(t *testing.T) {
	p, err := ExactTBackboneProblem(1, 0.02, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ref float64
	haveRef := false
	for _, etaFile := range []bool{false, true} {
		res, err := plan.SolveExact(p, solver.Options{
			MaxNodes: 200000, Workers: 1, EtaFileUpdates: etaFile,
		})
		if err != nil {
			t.Fatalf("etaFile=%v: %v", etaFile, err)
		}
		if res.Solver.Status != solver.Optimal {
			t.Fatalf("etaFile=%v: status %v", etaFile, res.Solver.Status)
		}
		if !haveRef {
			ref, haveRef = res.Solver.Objective, true
		} else if res.Solver.Objective != ref {
			t.Fatalf("etaFile=%v: objective %v, want %v", etaFile, res.Solver.Objective, ref)
		}
		for id, lp := range res.PerLink {
			if lp.ProvisionedGbps < lp.DemandGbps {
				t.Fatalf("etaFile=%v: link %s provisioned %d < demand %d",
					etaFile, id, lp.ProvisionedGbps, lp.DemandGbps)
			}
		}
	}
}

// TestSolverBenchmarksSmoke runs the benchmark harness at minimal
// iteration counts and checks the ablation dimensions: every instance
// must contribute one dense, one revised-eta, and one node-presolve-off
// point (dense skipped on SkipDense instances), engines must be labelled,
// and bytes/op must be reported nonzero.
func TestSolverBenchmarksSmoke(t *testing.T) {
	instances := []SolverBenchInstance{{Name: "exact-planning/pixels=12", Pixels: 12}}
	bench, err := SolverBenchmarks(instances, []int{1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var denseN, etaN, revisedN, npOffN, dantzigN int
	for _, pt := range bench.Points {
		switch pt.Engine {
		case "dense":
			denseN++
			if pt.Pricing != string(solver.PricingDantzig) {
				t.Fatalf("dense point %s: pricing %q, want %q (the tableau knows only Dantzig)", pt.Instance, pt.Pricing, solver.PricingDantzig)
			}
		case "revised-eta":
			etaN++
		case "revised":
			revisedN++
			if pt.Pricing == string(solver.PricingDantzig) {
				dantzigN++
			}
		default:
			t.Fatalf("point %s has unknown engine %q", pt.Instance, pt.Engine)
		}
		if pt.Pricing == "" {
			t.Fatalf("point %s engine=%s: pricing not recorded", pt.Instance, pt.Engine)
		}
		if !pt.NodePresolve {
			npOffN++
		}
		if pt.BytesPerOp <= 0 || math.IsNaN(pt.BytesPerOp) {
			t.Fatalf("point %s engine=%s: BytesPerOp = %v", pt.Instance, pt.Engine, pt.BytesPerOp)
		}
		if pt.Engine != "dense" && pt.Refactorizations == 0 {
			t.Fatalf("point %s engine=%s: Refactorizations = 0", pt.Instance, pt.Engine)
		}
		// A single-node solve has no dives to warm-start: the rate must
		// be omitted (nil), not recorded as a misleading zero.
		if pt.Nodes <= 1 && pt.WarmStartRate != nil {
			t.Fatalf("point %s engine=%s: nodes=%d but warm_start_rate=%v, want omitted", pt.Instance, pt.Engine, pt.Nodes, *pt.WarmStartRate)
		}
		if pt.Nodes > 1 && pt.WarmStartRate == nil {
			t.Fatalf("point %s engine=%s: nodes=%d but warm_start_rate omitted", pt.Instance, pt.Engine, pt.Nodes)
		}
	}
	if denseN != 1 {
		t.Fatalf("dense ablation points = %d, want 1 per instance", denseN)
	}
	if etaN != 1 {
		t.Fatalf("revised-eta ablation points = %d, want 1 per instance", etaN)
	}
	if npOffN != 1 {
		t.Fatalf("node-presolve-off ablation points = %d, want 1 per instance", npOffN)
	}
	if dantzigN != 1 {
		t.Fatalf("dantzig pricing ablation points = %d, want 1 per instance", dantzigN)
	}
	if revisedN < 4 {
		t.Fatalf("revised points = %d, want >= 4 (sweep + presolve + node-presolve + pricing ablations)", revisedN)
	}
	if !strings.Contains(bench.String(), "dense") {
		t.Fatal("rendered table missing the engine column")
	}
}

// TestSolverBenchSkipDense checks the dense ablation is skipped on
// instances marked too large for the tableau.
func TestSolverBenchSkipDense(t *testing.T) {
	instances := []SolverBenchInstance{{Name: "exact-planning/pixels=12", Pixels: 12, SkipDense: true}}
	bench, err := SolverBenchmarks(instances, []int{1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range bench.Points {
		if pt.Engine == "dense" {
			t.Fatalf("SkipDense instance produced a dense point: %+v", pt)
		}
	}
}

// TestExactCrossCheckPricing drives the backend of `flexwan-experiments
// -fig exact -pricing <rule>`: every rule must reach the same exact
// transponder count (matching the heuristic on these instances), so the
// CLI's pricing switch can never change reported planning quality.
func TestExactCrossCheckPricing(t *testing.T) {
	var refTx int
	for i, rule := range []solver.PricingRule{solver.PricingDantzig, solver.PricingDevex, solver.PricingSteepestEdge} {
		rows, err := ExactCrossCheck([]int{16}, 1, solver.BranchPseudocost, rule, false)
		if err != nil {
			t.Fatalf("pricing=%s: %v", rule, err)
		}
		if len(rows) != 1 {
			t.Fatalf("pricing=%s: %d rows, want 1", rule, len(rows))
		}
		if rows[0].HeuristicTx != rows[0].ExactTx {
			t.Fatalf("pricing=%s: heuristic %d vs exact %d transponders", rule, rows[0].HeuristicTx, rows[0].ExactTx)
		}
		if i == 0 {
			refTx = rows[0].ExactTx
		} else if rows[0].ExactTx != refTx {
			t.Fatalf("pricing=%s: exact tx %d, want %d (pricing changed the answer)", rule, rows[0].ExactTx, refTx)
		}
	}
}

// TestSolverBenchSkipDantzig checks the Dantzig pricing ablation is
// skipped on instances whose degeneracy stalls unweighted pricing.
func TestSolverBenchSkipDantzig(t *testing.T) {
	instances := []SolverBenchInstance{{Name: "exact-planning/pixels=12", Pixels: 12, SkipDense: true, SkipDantzig: true}}
	bench, err := SolverBenchmarks(instances, []int{1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range bench.Points {
		if pt.Pricing == string(solver.PricingDantzig) {
			t.Fatalf("SkipDantzig instance produced a dantzig point: %+v", pt)
		}
	}
}
