package api

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"flexwan/internal/chaos"
	"flexwan/internal/plan"
	"flexwan/internal/restore"
	"flexwan/internal/solver"
)

// PlanResult is the JSON payload of a completed plan job.
type PlanResult struct {
	Network                string           `json:"network"`
	Scheme                 string           `json:"scheme"`
	K                      int              `json:"k"`
	Feasible               bool             `json:"feasible"`
	Wavelengths            int              `json:"wavelengths"`
	SpectrumGHz            float64          `json:"spectrum_ghz"`
	MeanSpectralEfficiency float64          `json:"mean_spectral_efficiency"`
	Unserved               []string         `json:"unserved,omitempty"`
	Solver                 *plan.SolveStats `json:"solver,omitempty"`
}

// RestoreResult is the JSON payload of a completed restore job. It is a
// pure function of the restore.Result, so an API job and the equivalent
// batch restore.Solve call produce byte-identical payloads.
type RestoreResult struct {
	Scenario     string            `json:"scenario"`
	CutFibers    []string          `json:"cut_fibers"`
	AffectedGbps int               `json:"affected_gbps"`
	RestoredGbps int               `json:"restored_gbps"`
	Capability   float64           `json:"capability"`
	Channels     int               `json:"channels"`
	PerLink      map[string][2]int `json:"per_link,omitempty"`
	Solver       *plan.SolveStats  `json:"solver,omitempty"`
}

// SweepResult is the JSON payload of a completed sweep job.
type SweepResult struct {
	Scenarios      int      `json:"scenarios"`
	Failed         int      `json:"failed"`
	FailedIDs      []string `json:"failed_ids,omitempty"`
	MeanCapability float64  `json:"mean_capability"`
}

// RestoreScenario is the canonical scenario a restore job solves for the
// given cut set. Exported so clients (and the bit-identity tests) can
// construct the exact batch-equivalent restore.Problem.
func RestoreScenario(cutFibers []string) restore.Scenario {
	return restore.Scenario{
		ID:        "cut-" + strings.Join(cutFibers, "+"),
		CutFibers: cutFibers,
	}
}

// RestoreResultJSON renders a restore.Result as the API's job payload.
// Both the executor and the equivalence tests go through this one
// function — byte-identity is by construction.
func RestoreResultJSON(res *restore.Result) (json.RawMessage, error) {
	return json.Marshal(RestoreResult{
		Scenario:     res.Scenario.ID,
		CutFibers:    res.Scenario.CutFibers,
		AffectedGbps: res.AffectedGbps,
		RestoredGbps: res.RestoredGbps,
		Capability:   res.Capability(),
		Channels:     len(res.Restored),
		PerLink:      res.PerLink,
		Solver:       res.Solver,
	})
}

// executeJob is the scheduler's Executor: it dispatches on JobSpec.Type.
func (s *Server) executeJob(ctx context.Context, j *Job) (json.RawMessage, error) {
	switch j.Spec.Type {
	case "plan":
		return s.runPlan(ctx, j)
	case "restore":
		return s.runRestore(ctx, j)
	case "sweep":
		return s.runSweep(ctx, j)
	case "drill":
		return s.runDrill(ctx, j)
	}
	return nil, fmt.Errorf("unknown job type %q (want plan, restore, sweep, or drill)", j.Spec.Type)
}

func (s *Server) runPlan(ctx context.Context, j *Job) (json.RawMessage, error) {
	spec := j.Spec
	e, err := s.plans.base(specKey(spec))
	if err != nil {
		return nil, err
	}
	res := e.res
	if spec.Exact {
		j.Logf("solving exact MIP on %s", spec.Network)
		res, err = plan.SolveExact(plan.Problem{
			Optical: e.net.Optical, IP: e.net.IP,
			Catalog: e.catalog, Grid: e.grid, K: spec.K,
		}, solver.Options{Context: ctx, Workers: spec.Workers, Pricing: solver.PricingRule(spec.Pricing)})
		if err != nil {
			return nil, err
		}
		if res.Solver != nil && res.Solver.Status != solver.Optimal && ctx.Err() != nil {
			// The deadline aborted the search (possibly mid-LP, see the
			// solver's pivot-interval context check): Canceled, not a
			// stale Optimal.
			return nil, ctx.Err()
		}
	}
	scheme := spec.Scheme
	if scheme == "" {
		scheme = "flexwan"
	}
	return json.Marshal(PlanResult{
		Network: spec.Network, Scheme: scheme, K: spec.K,
		Feasible:               res.Feasible(),
		Wavelengths:            len(res.Wavelengths),
		SpectrumGHz:            res.SpectrumGHz(),
		MeanSpectralEfficiency: res.MeanSpectralEfficiency(),
		Unserved:               res.Unserved,
		Solver:                 res.Solver,
	})
}

func (s *Server) runRestore(ctx context.Context, j *Job) (json.RawMessage, error) {
	spec := j.Spec
	if len(spec.CutFibers) == 0 {
		return nil, fmt.Errorf("restore job needs cut_fibers")
	}
	e, err := s.plans.base(specKey(spec))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := restore.Solve(restore.Problem{
		Optical: e.net.Optical, IP: e.net.IP,
		Catalog: e.catalog, Grid: e.grid,
		Base:     e.res,
		Scenario: RestoreScenario(spec.CutFibers),
		K:        spec.K,
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return RestoreResultJSON(res)
}

func (s *Server) runSweep(ctx context.Context, j *Job) (json.RawMessage, error) {
	spec := j.Spec
	e, err := s.plans.base(specKey(spec))
	if err != nil {
		return nil, err
	}
	scenarios := restore.SingleFiberScenarios(e.net.Optical)
	j.Logf("sweeping %d single-fiber scenarios", len(scenarios))
	workers := spec.Workers
	if workers <= 0 {
		// The scheduler's pool is the concurrency budget; keep a job's
		// internal fan-out sequential unless the client asks.
		workers = 1
	}
	sw, err := restore.SweepWithOptions(restore.Problem{
		Optical: e.net.Optical, IP: e.net.IP,
		Catalog: e.catalog, Grid: e.grid,
		Base: e.res, K: spec.K,
	}, scenarios, restore.SweepOptions{Workers: workers, Context: ctx})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return json.Marshal(SweepResult{
		Scenarios:      len(scenarios),
		Failed:         sw.Failed(),
		FailedIDs:      sw.FailedIDs(),
		MeanCapability: sw.MeanCapability(),
	})
}

// runDrill builds a fresh loopback testbed (a drill consumes its fleet),
// runs the closed-loop chaos drill, and records every controller action
// in the service's shared config store under the job's identity. Drills
// are serialized: each one stands up dozens of TCP device agents.
func (s *Server) runDrill(ctx context.Context, j *Job) (json.RawMessage, error) {
	spec := j.Spec
	net, err := ResolveNetwork(spec.Network, spec.Scale, spec.Seed)
	if err != nil {
		return nil, err
	}
	s.drillMu.Lock()
	defer s.drillMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	j.Logf("deploying %s testbed", net.Name)
	tb, err := chaos.NewTestbed(net, chaos.Options{
		K:           spec.K,
		ConfigStore: s.store,
		Actor:       j.Tenant + "/" + j.ID,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	sc := chaos.Scenario{Name: j.ID, Seed: spec.Seed}
	if len(spec.CutFibers) > 0 {
		sc.CutFiber = spec.CutFibers[0]
	}
	j.Logf("running drill (seed %d)", spec.Seed)
	rep, _, err := chaos.Run(tb, sc)
	if err != nil {
		return nil, err
	}
	payload, merr := json.Marshal(rep)
	if merr != nil {
		return nil, merr
	}
	if !rep.OracleMatch || !rep.AuditClean {
		return payload, fmt.Errorf("drill failed: oracle_match=%v audit_clean=%v", rep.OracleMatch, rep.AuditClean)
	}
	return payload, nil
}
