package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// gateExec is a stub executor whose jobs block until release is closed,
// recording execution order — the scheduler harness for the fairness,
// queue-bound, and shutdown tests.
type gateExec struct {
	mu      sync.Mutex
	order   []string // job IDs in execution-start order
	started map[string]chan struct{}
	release chan struct{}
}

func newGateExec() *gateExec {
	return &gateExec{
		started: make(map[string]chan struct{}),
		release: make(chan struct{}),
	}
}

func (g *gateExec) run(ctx context.Context, j *Job) (json.RawMessage, error) {
	g.mu.Lock()
	g.order = append(g.order, j.ID)
	if ch, ok := g.started[j.ID]; ok {
		close(ch)
	}
	g.mu.Unlock()
	select {
	case <-g.release:
		return json.RawMessage(`{"ok":true}`), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// expectStart registers a channel closed when the job starts executing.
func (g *gateExec) expectStart(id string) chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch := make(chan struct{})
	g.started[id] = ch
	return ch
}

func (g *gateExec) execOrder() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.order...)
}

func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		_, state, change := j.watch(1)
		if state == want {
			return
		}
		if state.Terminal() {
			t.Fatalf("job %s: state %s, want %s", j.ID, state, want)
		}
		select {
		case <-change:
		case <-deadline:
			t.Fatalf("job %s: timed out waiting for %s (at %s)", j.ID, want, j.State())
		}
	}
}

func waitTerminal(t *testing.T, j *Job) JobState {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		_, state, change := j.watch(1)
		if state.Terminal() {
			return state
		}
		select {
		case <-change:
		case <-deadline:
			t.Fatalf("job %s: timed out waiting for terminal state (at %s)", j.ID, j.State())
		}
	}
}

// TestSchedulerQueueFull: the admission queue is a hard bound — past it,
// Submit refuses with ErrQueueFull and counts the rejection.
func TestSchedulerQueueFull(t *testing.T) {
	g := newGateExec()
	s := NewScheduler(SchedOptions{QueueDepth: 2, Workers: 1, Executor: g.run})
	started := make(chan struct{})
	g.mu.Lock()
	g.started["j-000001"] = started
	g.mu.Unlock()

	var accepted []*Job
	j1, err := s.Submit("a", JobSpec{})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	accepted = append(accepted, j1)
	<-started // worker occupied; dispatcher may park one more in pool.Run

	var full bool
	for i := 0; i < 20 && !full; i++ {
		j, err := s.Submit("a", JobSpec{})
		switch {
		case err == nil:
			accepted = append(accepted, j)
		case errors.Is(err, ErrQueueFull):
			full = true
		default:
			t.Fatalf("submit: %v", err)
		}
	}
	if !full {
		t.Fatalf("never hit ErrQueueFull after 20 submissions past a depth-2 queue")
	}
	// Depth 2 plus the running job and at most one parked in dispatch.
	if len(accepted) > 4 {
		t.Fatalf("accepted %d jobs with queue depth 2, want <= 4", len(accepted))
	}
	if st := s.Stats(); st.Rejected < 1 {
		t.Fatalf("stats.Rejected = %d, want >= 1", st.Rejected)
	}

	close(g.release)
	for _, j := range accepted {
		if got := waitTerminal(t, j); got != StateOptimal {
			t.Fatalf("job %s finished %s, want Optimal", j.ID, got)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestSchedulerFairness: tenant B's two jobs must not wait behind tenant
// A's flood. With round-robin dequeue they land in the first six
// executions; FIFO would run them last.
func TestSchedulerFairness(t *testing.T) {
	g := newGateExec()
	s := NewScheduler(SchedOptions{QueueDepth: 64, Workers: 1, Executor: g.run})
	started := g.expectStart("j-000001")

	blocker, err := s.Submit("tenant-a", JobSpec{})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-started // the single worker is now held

	var aJobs, bJobs []*Job
	for i := 0; i < 8; i++ {
		j, err := s.Submit("tenant-a", JobSpec{})
		if err != nil {
			t.Fatalf("submit a#%d: %v", i, err)
		}
		aJobs = append(aJobs, j)
	}
	for i := 0; i < 2; i++ {
		j, err := s.Submit("tenant-b", JobSpec{})
		if err != nil {
			t.Fatalf("submit b#%d: %v", i, err)
		}
		bJobs = append(bJobs, j)
	}

	close(g.release)
	for _, j := range append(append([]*Job{blocker}, aJobs...), bJobs...) {
		if got := waitTerminal(t, j); got != StateOptimal {
			t.Fatalf("job %s finished %s, want Optimal", j.ID, got)
		}
	}

	pos := map[string]int{}
	for i, id := range g.execOrder() {
		pos[id] = i + 1
	}
	// 11 jobs total; under FIFO tenant B would execute 10th and 11th.
	// Round-robin interleaves them right after the jobs the dispatcher
	// had already committed, so both land in the first six.
	for _, j := range bJobs {
		if pos[j.ID] > 6 {
			t.Fatalf("tenant-b job %s executed %dth of %d — starved behind tenant-a's flood (order %v)",
				j.ID, pos[j.ID], len(pos), g.execOrder())
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestSchedulerDeadlineWhileQueued: a job whose deadline expires before
// a worker picks it up is reported Canceled — never run, never Optimal.
func TestSchedulerDeadlineWhileQueued(t *testing.T) {
	g := newGateExec()
	s := NewScheduler(SchedOptions{QueueDepth: 8, Workers: 1, Executor: g.run})
	started := g.expectStart("j-000001")
	blocker, err := s.Submit("a", JobSpec{})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-started
	// Sacrificial second submit: the dispatcher parks it in pool.Run so
	// the deadline job genuinely sits in the queue.
	parked, err := s.Submit("a", JobSpec{})
	if err != nil {
		t.Fatalf("submit parked: %v", err)
	}
	doomed, err := s.Submit("a", JobSpec{DeadlineMs: 30})
	if err != nil {
		t.Fatalf("submit doomed: %v", err)
	}
	<-doomed.Context().Done() // deadline fires while queued
	close(g.release)

	if got := waitTerminal(t, doomed); got != StateCanceled {
		t.Fatalf("deadline-expired job finished %s, want Canceled", got)
	}
	v := doomed.View(true)
	if v.Error == "" {
		t.Fatalf("canceled job has no error message")
	}
	for _, id := range g.execOrder() {
		if id == doomed.ID {
			t.Fatalf("deadline-expired job %s was executed", id)
		}
	}
	for _, j := range []*Job{blocker, parked} {
		if got := waitTerminal(t, j); got != StateOptimal {
			t.Fatalf("job %s finished %s, want Optimal", j.ID, got)
		}
	}
	st := s.Stats()
	if st.Canceled != 1 || st.Optimal != 2 {
		t.Fatalf("stats optimal=%d canceled=%d, want 2/1", st.Optimal, st.Canceled)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestSchedulerGracefulShutdown: in-flight jobs run to completion,
// queued jobs drain with an explicit Canceled status, and submission
// after shutdown refuses with ErrShuttingDown.
func TestSchedulerGracefulShutdown(t *testing.T) {
	g := newGateExec()
	s := NewScheduler(SchedOptions{QueueDepth: 16, Workers: 1, Executor: g.run})
	started := g.expectStart("j-000001")
	inflight, err := s.Submit("a", JobSpec{})
	if err != nil {
		t.Fatalf("submit inflight: %v", err)
	}
	<-started
	var queued []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit("b", JobSpec{})
		if err != nil {
			t.Fatalf("submit queued#%d: %v", i, err)
		}
		queued = append(queued, j)
	}

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(context.Background()) }()

	// Queued jobs drain Canceled without waiting for the in-flight job.
	// The dispatcher may have already committed one of them to the pool
	// (parked waiting for a worker) — that one runs to completion instead.
	deadline := time.After(10 * time.Second)
	var parked *Job
	for {
		drained := 0
		parked = nil
		for _, j := range queued {
			if j.State() == StateCanceled {
				drained++
			} else {
				parked = j
			}
		}
		if drained >= len(queued)-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d of %d queued jobs drained Canceled", drained, len(queued))
		case <-time.After(2 * time.Millisecond):
		}
	}
	for _, j := range queued {
		if j.State() != StateCanceled {
			continue
		}
		if v := j.View(true); v.Error != "server shutting down before start" {
			t.Fatalf("drained job %s error = %q", j.ID, v.Error)
		}
	}

	close(g.release) // let the in-flight (and any parked) job finish
	if got := waitTerminal(t, inflight); got != StateOptimal {
		t.Fatalf("in-flight job finished %s, want Optimal — shutdown killed it", got)
	}
	if parked != nil {
		if got := waitTerminal(t, parked); got != StateOptimal {
			t.Fatalf("parked job %s finished %s, want Optimal", parked.ID, got)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := s.Submit("a", JobSpec{}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown: err = %v, want ErrShuttingDown", err)
	}
	for _, j := range append([]*Job{inflight}, queued...) {
		if !j.State().Terminal() {
			t.Fatalf("job %s left non-terminal after shutdown: %s", j.ID, j.State())
		}
	}
}

// TestSchedulerManyTenantsNoLoss: saturate with hundreds of fast jobs
// from several tenants; every accepted job must reach a terminal state
// (the zero-lost-jobs invariant the load generator also checks).
func TestSchedulerManyTenantsNoLoss(t *testing.T) {
	exec := func(ctx context.Context, j *Job) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	}
	s := NewScheduler(SchedOptions{QueueDepth: 512, Workers: 4, Executor: exec})
	var jobs []*Job
	var mu sync.Mutex
	var wg sync.WaitGroup
	for tnum := 0; tnum < 4; tnum++ {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				for {
					j, err := s.Submit(tenant, JobSpec{})
					if errors.Is(err, ErrQueueFull) {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					mu.Lock()
					jobs = append(jobs, j)
					mu.Unlock()
					break
				}
			}
		}(fmt.Sprintf("tenant-%d", tnum))
	}
	wg.Wait()
	for _, j := range jobs {
		if got := waitTerminal(t, j); got != StateOptimal {
			t.Fatalf("job %s finished %s, want Optimal", j.ID, got)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := s.Stats()
	if st.Optimal != 400 {
		t.Fatalf("stats.Optimal = %d, want 400", st.Optimal)
	}
	for tnum := 0; tnum < 4; tnum++ {
		ts := st.PerTenant[fmt.Sprintf("tenant-%d", tnum)]
		if ts == nil || ts.Completed != 100 {
			t.Fatalf("tenant-%d stats = %+v, want 100 completed", tnum, ts)
		}
	}
}
