package api

import (
	"fmt"
	"sync"

	"flexwan/internal/chaos"
	"flexwan/internal/plan"
	"flexwan/internal/spectrum"
	"flexwan/internal/transponder"
	"flexwan/internal/workload"
)

// ResolveCatalog maps a scheme name to its transponder catalog.
func ResolveCatalog(scheme string) (transponder.Catalog, error) {
	switch scheme {
	case "", "flexwan", "svt":
		return transponder.SVT(), nil
	case "radwan", "bvt":
		return transponder.RADWAN(), nil
	case "100g", "fixed":
		return transponder.Fixed100G(), nil
	}
	return transponder.Catalog{}, fmt.Errorf("unknown scheme %q (want flexwan, radwan, or 100g)", scheme)
}

// ResolveNetwork maps a network name (+ demand scale and seed) to a
// topology. The ring sizes mirror the chaos drill networks.
func ResolveNetwork(name string, scale float64, seed int64) (workload.Network, error) {
	var n workload.Network
	switch name {
	case "ring4":
		n = chaos.RingNetwork(4, 500, 400)
	case "ring6":
		n = chaos.RingNetwork(6, 400, 400)
	case "cernet":
		n = workload.Cernet(seed)
	case "tbackbone":
		n = workload.TBackbone(seed)
	default:
		return workload.Network{}, fmt.Errorf("unknown network %q (want ring4, ring6, cernet, or tbackbone)", name)
	}
	if scale > 0 && scale != 1 {
		n = n.Scale(scale)
	}
	return n, nil
}

// planKey identifies one cached base plan. Everything that feeds
// plan.Solve is in the key, so equal keys mean byte-identical plans —
// which is what makes a thousand restoration jobs against the same
// backbone bit-identical to their batch equivalents.
type planKey struct {
	network string
	scale   float64
	scheme  string
	k       int
	seed    int64
}

// planEntry is one cache slot; once guards the single solve.
type planEntry struct {
	once    sync.Once
	net     workload.Network
	catalog transponder.Catalog
	grid    spectrum.Grid
	res     *plan.Result
	err     error
}

// planCache memoizes heuristic base plans per (network, scale, scheme,
// k, seed). plan.Solve is deterministic, so the cache only saves time,
// never changes results.
type planCache struct {
	mu      sync.Mutex
	entries map[planKey]*planEntry
}

func newPlanCache() *planCache {
	return &planCache{entries: make(map[planKey]*planEntry)}
}

// base returns the cached plan for the key, solving on first use. The
// per-entry sync.Once keeps concurrent first requests from racing N
// identical solves.
func (c *planCache) base(key planKey) (*planEntry, error) {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &planEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.net, e.err = ResolveNetwork(key.network, key.scale, key.seed)
		if e.err != nil {
			return
		}
		e.catalog, e.err = ResolveCatalog(key.scheme)
		if e.err != nil {
			return
		}
		e.grid = spectrum.DefaultGrid()
		e.res, e.err = plan.Solve(plan.Problem{
			Optical: e.net.Optical, IP: e.net.IP,
			Catalog: e.catalog, Grid: e.grid, K: key.k,
		})
	})
	return e, e.err
}

func specKey(spec JobSpec) planKey {
	return planKey{network: spec.Network, scale: spec.Scale, scheme: spec.Scheme, k: spec.K, seed: spec.Seed}
}
