package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"flexwan/internal/controller"
	"flexwan/internal/devmodel"
)

// Options configures the service.
type Options struct {
	// QueueDepth bounds the admission queue (default 256).
	QueueDepth int
	// Workers bounds concurrently running jobs (default GOMAXPROCS).
	Workers int
	// Controller, when non-nil, is the live fleet the /v1/devices
	// endpoints front (typically a standing chaos testbed's controller).
	// Nil leaves the device endpoints answering 503.
	Controller *controller.Controller
	// Store is the versioned config store behind /v1/configs. Nil gets a
	// fresh in-memory store; any controller.ConfigStore implementation
	// (a durable one, say) drops in.
	Store controller.ConfigStore
	// Logf receives service log lines (nil silences them).
	Logf func(format string, args ...interface{})

	// executor overrides the real job executor — test seam only.
	executor Executor
}

// Server is the controller service: job scheduler, plan cache, config
// store, and fleet view behind one HTTP handler.
type Server struct {
	opts  Options
	sched *Scheduler
	plans *planCache
	store controller.ConfigStore
	ctrl  *controller.Controller
	mux   *http.ServeMux

	// drillMu serializes drill jobs — each stands up a full loopback
	// device fleet, which is too heavy to overlap.
	drillMu sync.Mutex
}

// New builds and starts a Server. Shutdown stops it.
func New(opts Options) *Server {
	s := &Server{
		opts:  opts,
		plans: newPlanCache(),
		store: opts.Store,
		ctrl:  opts.Controller,
	}
	if s.store == nil {
		s.store = controller.NewMemStore()
	}
	exec := opts.executor
	if exec == nil {
		exec = s.executeJob
	}
	s.sched = NewScheduler(SchedOptions{
		QueueDepth: opts.QueueDepth,
		Workers:    opts.Workers,
		Executor:   exec,
		Logf:       opts.Logf,
	})
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Scheduler exposes the job scheduler (the load generator and tests
// submit through it directly).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Store exposes the config store.
func (s *Server) Store() controller.ConfigStore { return s.store }

// Handler returns the HTTP handler serving the v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the scheduler gracefully (see Scheduler.Shutdown).
func (s *Server) Shutdown(ctx context.Context) error {
	return s.sched.Shutdown(ctx)
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/devices", s.handleListDevices)
	s.mux.HandleFunc("POST /v1/devices", s.handleRegisterDevice)
	s.mux.HandleFunc("GET /v1/configs", s.handleListConfigs)
	s.mux.HandleFunc("GET /v1/configs/{n}", s.handleGetConfig)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// tenant extracts the caller's tenant from the X-Tenant header
// ("default" when absent — single-tenant callers need no headers).
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	j, err := s.sched.Submit(tenant(r), spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.View(false))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View(false))
	}
	writeJSON(w, http.StatusOK, views)
}

// handleGetJob returns one job. ?wait=<duration> long-polls: the reply
// is delayed until the job is terminal or the wait expires, whichever
// comes first — one request replaces a polling loop.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad wait %q: %v", waitStr, err)
			return
		}
		deadline := time.NewTimer(wait)
		defer deadline.Stop()
	poll:
		for {
			_, state, change := j.watch(1)
			if state.Terminal() {
				break
			}
			select {
			case <-change:
			case <-deadline.C:
				break poll
			case <-r.Context().Done():
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, j.View(true))
}

// handleJobEvents streams a job's event log from ?from=N (1-based,
// default 1). With Accept: text/event-stream the reply is SSE — one
// `event: <kind>` + JSON data line per JobEvent, streamed until the job
// is terminal. Otherwise it long-polls once: if no events at or past
// `from` exist yet, the reply waits (up to ?wait, default 30s) for the
// next one, then returns a JSON array.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	from := 1
	if f := r.URL.Query().Get("from"); f != "" {
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad from %q", f)
			return
		}
		from = n
	}
	if r.Header.Get("Accept") == "text/event-stream" {
		s.streamEvents(w, r, j, from)
		return
	}
	wait := 30 * time.Second
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad wait %q: %v", waitStr, err)
			return
		}
		wait = d
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		evs, state, change := j.watch(from)
		if len(evs) > 0 || state.Terminal() {
			writeJSON(w, http.StatusOK, evs)
			return
		}
		select {
		case <-change:
		case <-deadline.C:
			writeJSON(w, http.StatusOK, []JobEvent{})
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, j *Job, from int) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		evs, state, change := j.watch(from)
		for _, ev := range evs {
			data, _ := json.Marshal(ev)
			fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Kind, ev.Seq, data)
			from = ev.Seq + 1
		}
		fl.Flush()
		if state.Terminal() {
			return
		}
		select {
		case <-change:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleListDevices(w http.ResponseWriter, r *http.Request) {
	if s.ctrl == nil {
		writeError(w, http.StatusServiceUnavailable, "no device fleet attached (start flexwand with -fleet)")
		return
	}
	writeJSON(w, http.StatusOK, s.ctrl.DevMgr().Health())
}

func (s *Server) handleRegisterDevice(w http.ResponseWriter, r *http.Request) {
	if s.ctrl == nil {
		writeError(w, http.StatusServiceUnavailable, "no device fleet attached (start flexwand with -fleet)")
		return
	}
	var desc devmodel.Descriptor
	if err := json.NewDecoder(r.Body).Decode(&desc); err != nil {
		writeError(w, http.StatusBadRequest, "bad descriptor: %v", err)
		return
	}
	if err := s.ctrl.DevMgr().Register(desc); err != nil {
		writeError(w, http.StatusBadRequest, "register %s: %v", desc.ID, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": desc.ID, "status": "registered"})
}

// handleListConfigs returns the audit history, newest-last. ?limit=N
// caps it to the newest N versions. Snapshots are omitted from the list
// view (fetch one version for its full snapshot).
func (s *Server) handleListConfigs(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", l)
			return
		}
		limit = n
	}
	versions := s.store.List(limit)
	for i := range versions {
		versions[i].Snapshot = nil
	}
	writeJSON(w, http.StatusOK, versions)
}

func (s *Server) handleGetConfig(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad version %q", r.PathValue("n"))
		return
	}
	v, ok := s.store.Version(n)
	if !ok {
		writeError(w, http.StatusNotFound, "no config version %d (store has %d)", n, s.store.Len())
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Stats())
}
