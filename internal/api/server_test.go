package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flexwan/internal/controller"
	"flexwan/internal/plan"
	"flexwan/internal/restore"
	"flexwan/internal/spectrum"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{QueueDepth: 64, Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func submitJob(t *testing.T, ts *httptest.Server, tenant string, spec JobSpec) JobView {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode submit reply: %v", err)
	}
	return v
}

func waitJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "?wait=5s")
		if err != nil {
			t.Fatalf("get job: %v", err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job: %v", err)
		}
		if v.State.Terminal() {
			return v
		}
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobView{}
}

// TestServicePlanJob: submit a plan job over HTTP, long-poll it to the
// terminal Optimal, and check the result payload — the CI smoke test's
// in-process twin.
func TestServicePlanJob(t *testing.T) {
	_, ts := newTestServer(t)
	v := submitJob(t, ts, "tenant-a", JobSpec{Type: "plan", Network: "ring4"})
	if v.State != StateQueued && v.State != StateRunning {
		t.Fatalf("fresh job state = %s", v.State)
	}
	if v.Tenant != "tenant-a" {
		t.Fatalf("tenant = %q", v.Tenant)
	}
	done := waitJob(t, ts, v.ID)
	if done.State != StateOptimal {
		t.Fatalf("job finished %s (error %q), want Optimal", done.State, done.Error)
	}
	var res PlanResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if !res.Feasible || res.Wavelengths == 0 {
		t.Fatalf("plan result not feasible: %+v", res)
	}
}

// TestServiceRestoreBitIdentical: a restoration job through the service
// must produce a payload byte-identical to the equivalent batch
// restore.Solve call — the cache and scheduler may change timing, never
// results.
func TestServiceRestoreBitIdentical(t *testing.T) {
	_, ts := newTestServer(t)
	spec := JobSpec{Type: "restore", Network: "ring4", CutFibers: []string{"rfib00"}}
	v := submitJob(t, ts, "tenant-a", spec)
	done := waitJob(t, ts, v.ID)
	if done.State != StateOptimal {
		t.Fatalf("job finished %s (error %q), want Optimal", done.State, done.Error)
	}

	// The batch equivalent, built from scratch.
	net, err := ResolveNetwork(spec.Network, spec.Scale, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := ResolveCatalog(spec.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	grid := spectrum.DefaultGrid()
	base, err := plan.Solve(plan.Problem{Optical: net.Optical, IP: net.IP, Catalog: catalog, Grid: grid, K: spec.K})
	if err != nil {
		t.Fatal(err)
	}
	res, err := restore.Solve(restore.Problem{
		Optical: net.Optical, IP: net.IP, Catalog: catalog, Grid: grid,
		Base: base, Scenario: RestoreScenario(spec.CutFibers), K: spec.K,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RestoreResultJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	// The stored payload is exactly RestoreResultJSON's bytes; the HTTP
	// encoder re-indents in transit, so compare in compact form.
	var gotC, wantC bytes.Buffer
	if err := json.Compact(&gotC, done.Result); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&wantC, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotC.Bytes(), wantC.Bytes()) {
		t.Fatalf("service result differs from batch restore.Solve:\nservice: %s\nbatch:   %s", gotC.Bytes(), wantC.Bytes())
	}
}

// TestServiceQueueFull429: overflowing the admission queue answers 429.
// A gated executor holds the single worker so the queue genuinely fills.
func TestServiceQueueFull429(t *testing.T) {
	g := newGateExec()
	s := New(Options{QueueDepth: 1, Workers: 1, executor: g.run})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		close(g.release)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	body, _ := json.Marshal(JobSpec{Type: "plan", Network: "ring4"})
	started := g.expectStart("j-000001")
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post blocker: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post blocker: status %d", resp.StatusCode)
	}
	<-started // worker held; everything else queues

	got429 := false
	for i := 0; i < 10 && !got429; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			got429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("429 without Retry-After")
			}
		default:
			t.Fatalf("post: status %d", resp.StatusCode)
		}
	}
	if !got429 {
		t.Fatalf("never saw 429 past a depth-1 queue")
	}
}

// TestServiceEvents: the event log is readable as JSON (with from-cursor)
// and as an SSE stream, and ends with the terminal transition.
func TestServiceEvents(t *testing.T) {
	_, ts := newTestServer(t)
	v := submitJob(t, ts, "tenant-a", JobSpec{Type: "plan", Network: "ring4"})
	waitJob(t, ts, v.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events?from=1&wait=5s")
	if err != nil {
		t.Fatalf("get events: %v", err)
	}
	var evs []JobEvent
	err = json.NewDecoder(resp.Body).Decode(&evs)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode events: %v", err)
	}
	if len(evs) < 2 {
		t.Fatalf("only %d events", len(evs))
	}
	if evs[0].State != StateQueued || evs[len(evs)-1].State != StateOptimal {
		t.Fatalf("event log %v: want Queued first, Optimal last", evs)
	}
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}

	// SSE: same stream, one data: line per event, ends at terminal.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+v.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("sse: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("sse content-type %q", ct)
	}
	var dataLines int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			dataLines++
		}
	}
	if dataLines != len(evs) {
		t.Fatalf("sse streamed %d events, json had %d", dataLines, len(evs))
	}
}

// TestServiceConfigsAndDevices: without a fleet the device endpoints
// answer 503; the config store starts empty and serves appended versions
// with snapshots elided from the list view.
func TestServiceConfigsAndDevices(t *testing.T) {
	s, ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/v1/devices")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("devices without fleet: status %d, want 503", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/configs")
	if err != nil {
		t.Fatal(err)
	}
	var list []json.RawMessage
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list) != 0 {
		t.Fatalf("fresh config list = %v (err %v), want empty", list, err)
	}

	if _, err := s.Store().Append(controller.ConfigVersion{Actor: "op", Action: "apply", Summary: "test version"}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/configs/1")
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]interface{}
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got["actor"] != "op" || got["version"] != float64(1) {
		t.Fatalf("config version 1 = %v", got)
	}

	resp, err = http.Get(ts.URL + "/v1/configs/7")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing config version: status %d, want 404", resp.StatusCode)
	}
}

// TestServiceBadRequests: unknown jobs 404, bad specs 400, unknown job
// types fail the job rather than the request.
func TestServiceBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{bad json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d, want 400", resp.StatusCode)
	}

	v := submitJob(t, ts, "t", JobSpec{Type: "nonsense", Network: "ring4"})
	done := waitJob(t, ts, v.ID)
	if done.State != StateFailed || !strings.Contains(done.Error, "unknown job type") {
		t.Fatalf("nonsense job: state %s error %q, want Failed/unknown job type", done.State, done.Error)
	}

	v = submitJob(t, ts, "t", JobSpec{Type: "plan", Network: "atlantis"})
	done = waitJob(t, ts, v.ID)
	if done.State != StateFailed || !strings.Contains(done.Error, "unknown network") {
		t.Fatalf("bad network job: state %s error %q, want Failed/unknown network", done.State, done.Error)
	}
}
