package api

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// JobState is a job's lifecycle position. Terminal success is named
// Optimal to match the solver vocabulary the rest of the repo reports —
// a client polling a planning job sees the same word the batch CLI
// prints.
type JobState string

const (
	StateQueued  JobState = "Queued"
	StateRunning JobState = "Running"
	// StateOptimal is terminal success: the job ran to completion and
	// its result is attached.
	StateOptimal JobState = "Optimal"
	// StateFailed is terminal failure: the job ran and errored.
	StateFailed JobState = "Failed"
	// StateCanceled is terminal cancellation: the job's deadline expired
	// (possibly before it ever started) or the service shut down while
	// it was queued.
	StateCanceled JobState = "Canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateOptimal || s == StateFailed || s == StateCanceled
}

// JobSpec is the client-provided description of one job: what to solve,
// on which topology, under which deadline.
type JobSpec struct {
	// Type selects the work: "plan" (heuristic network planning),
	// "restore" (one restoration solve; requires CutFibers), "sweep"
	// (all single-fiber scenarios), or "drill" (a closed-loop chaos
	// drill on a fresh loopback testbed).
	Type string `json:"type"`
	// Network names the topology: "ring4", "ring6", "cernet",
	// "tbackbone".
	Network string `json:"network"`
	// Scale multiplies every IP demand (0 or 1: unscaled).
	Scale float64 `json:"scale,omitempty"`
	// Scheme selects the transponder catalog: "flexwan" (SVT, default),
	// "radwan", "100g".
	Scheme string `json:"scheme,omitempty"`
	// K is the candidate-path count (0: the planner default).
	K int `json:"k,omitempty"`
	// Seed drives the topology's demand randomization and, for drills,
	// every fault decision.
	Seed int64 `json:"seed,omitempty"`
	// Exact switches plan jobs to the exact MIP (per-job deadline
	// recommended: the context is wired into solver.Options.Context).
	Exact bool `json:"exact,omitempty"`
	// Pricing selects the exact MIP's dual-simplex pricing rule:
	// "dantzig", "devex", or "steepest-edge" ("": the solver default).
	Pricing string `json:"pricing,omitempty"`
	// CutFibers are the fibers to cut (restore: required; drill: the
	// first entry overrides the default busiest-fiber choice).
	CutFibers []string `json:"cut_fibers,omitempty"`
	// Workers bounds intra-job parallelism (sweep fan-out, exact-solver
	// workers). 0 keeps jobs single-threaded so the scheduler's shared
	// pool stays the only concurrency source.
	Workers int `json:"workers,omitempty"`
	// DeadlineMs is the end-to-end budget from submission, queueing
	// included. 0 means no deadline.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// JobEvent is one entry in a job's progress stream.
type JobEvent struct {
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	// Kind is "state" (State carries the transition) or "log" (Msg
	// carries solver/executor progress).
	Kind  string   `json:"kind"`
	State JobState `json:"state,omitempty"`
	Msg   string   `json:"msg,omitempty"`
}

// JobView is the JSON representation of a job returned by the API.
type JobView struct {
	ID          string          `json:"id"`
	Tenant      string          `json:"tenant"`
	Spec        JobSpec         `json:"spec"`
	State       JobState        `json:"state"`
	Error       string          `json:"error,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	Events      int             `json:"events"`
	Result      json.RawMessage `json:"result,omitempty"`
}

// Job is one submitted unit of work. All mutable state sits behind mu;
// every mutation appends a JobEvent and wakes the watchers, which is
// what the long-poll and SSE endpoints block on.
type Job struct {
	ID     string
	Tenant string
	Spec   JobSpec

	// ctx carries the per-job deadline into the executor (and from
	// there into solver.Options.Context); cancel releases its timer.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     JobState
	err       string
	result    json.RawMessage
	submitted time.Time
	started   time.Time
	finished  time.Time
	events    []JobEvent
	// change is closed and replaced on every mutation: watchers grab
	// the current channel and block until it closes.
	change chan struct{}
}

func newJob(id, tenant string, spec JobSpec, now time.Time) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	if spec.DeadlineMs > 0 {
		ctx, cancel = context.WithDeadline(ctx, now.Add(time.Duration(spec.DeadlineMs)*time.Millisecond))
	}
	j := &Job{
		ID: id, Tenant: tenant, Spec: spec,
		ctx: ctx, cancel: cancel,
		state: StateQueued, submitted: now,
		change: make(chan struct{}),
	}
	j.appendEventLocked(JobEvent{Kind: "state", State: StateQueued, Time: now})
	return j
}

// Context is the job's deadline context — executors thread it into
// solver options and long-running loops.
func (j *Job) Context() context.Context { return j.ctx }

// appendEventLocked numbers and stores ev and wakes watchers. Callers
// either hold j.mu or (newJob only) have exclusive access.
func (j *Job) appendEventLocked(ev JobEvent) {
	ev.Seq = len(j.events) + 1
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	j.events = append(j.events, ev)
	close(j.change)
	j.change = make(chan struct{})
}

// Logf appends a progress event visible on the events stream — the
// executor's narration channel.
func (j *Job) Logf(format string, args ...interface{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEventLocked(JobEvent{Kind: "log", Msg: fmt.Sprintf(format, args...)})
}

func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = now
	j.appendEventLocked(JobEvent{Kind: "state", State: StateRunning, Time: now})
}

// finishLocked moves the job to a terminal state exactly once.
func (j *Job) finish(state JobState, result json.RawMessage, errMsg string, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = result
	j.err = errMsg
	j.finished = now
	j.appendEventLocked(JobEvent{Kind: "state", State: state, Msg: errMsg, Time: now})
}

// State returns the current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// View snapshots the job for JSON. withResult false omits the (possibly
// large) result payload — the list endpoint's shape.
func (j *Job) View(withResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.ID, Tenant: j.Tenant, Spec: j.Spec,
		State: j.state, Error: j.err,
		SubmittedAt: j.submitted, Events: len(j.events),
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// watch returns the events from seq from (1-based) onward plus a channel
// that closes on the next mutation — the building block for long-poll
// and SSE streaming.
func (j *Job) watch(from int) ([]JobEvent, JobState, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []JobEvent
	if from < 1 {
		from = 1
	}
	if from <= len(j.events) {
		evs = append(evs, j.events[from-1:]...)
	}
	return evs, j.state, j.change
}
