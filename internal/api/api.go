// Package api is the controller-as-a-service layer: a persistent
// multi-tenant HTTP/JSON API over the planner, restorer, chaos drills,
// and device fleet.
//
// The batch tools (flexwanctl's plan/restore/drill modes) rebuild the
// world per invocation; this package keeps it resident. A Server owns:
//
//   - a bounded multi-tenant Scheduler: fixed admission queue with an
//     explicit 429 on overflow, per-tenant round-robin fair dequeue, and
//     one shared worker pool (internal/parallel) executing jobs across
//     every tenant;
//   - a plan cache memoizing deterministic heuristic base plans per
//     (network, scale, scheme, k, seed), so a thousand restoration jobs
//     against the same backbone share one solve and return results
//     byte-identical to their batch restore.Solve equivalents;
//   - a versioned config store (controller.ConfigStore) recording every
//     controller Apply/restore/Repair as an immutable audited version;
//   - optionally, a live device fleet (controller.Controller) fronted by
//     the /v1/devices endpoints.
//
// The surface, all JSON, tenancy via the X-Tenant header:
//
//	POST /v1/jobs             submit a JobSpec (plan|restore|sweep|drill) → 202 JobView
//	GET  /v1/jobs             list jobs (no result payloads)
//	GET  /v1/jobs/{id}        one job; ?wait=5s long-polls until terminal
//	GET  /v1/jobs/{id}/events event log from ?from=N; SSE under Accept: text/event-stream
//	GET  /v1/devices          fleet health (controller.DeviceHealth)
//	POST /v1/devices          register a devmodel.Descriptor
//	GET  /v1/configs          audit history (?limit=N, snapshots elided)
//	GET  /v1/configs/{n}      one immutable version, snapshot included
//	GET  /v1/stats            scheduler counters (SchedStats)
//	GET  /healthz             liveness
//
// Jobs carry their deadline end to end: DeadlineMs starts at submission,
// queue time counts against it, and the job context reaches
// solver.Options.Context — the simplex engines poll it at pivot
// intervals, so even a single long LP aborts promptly. A job whose
// deadline fires is reported Canceled, never a stale Optimal.
package api
