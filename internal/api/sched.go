package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"flexwan/internal/parallel"
)

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull: the fixed admission queue is at capacity → 429.
	ErrQueueFull = errors.New("api: admission queue full")
	// ErrShuttingDown: the scheduler is draining → 503.
	ErrShuttingDown = errors.New("api: scheduler shutting down")
)

// Executor runs one job and returns its result payload. The contract:
// observe ctx (it carries the job's deadline) and return ctx.Err() when
// aborted by it — the scheduler maps context errors to Canceled, other
// errors to Failed, nil to Optimal.
type Executor func(ctx context.Context, job *Job) (json.RawMessage, error)

// SchedOptions configures the scheduler.
type SchedOptions struct {
	// QueueDepth bounds the jobs waiting for a worker, across all
	// tenants (default 256). Submissions past it get ErrQueueFull — the
	// explicit 429 that tells a load generator to back off.
	QueueDepth int
	// Workers bounds concurrently running jobs (default GOMAXPROCS):
	// one shared parallel.Pool across every tenant, so solver work is
	// CPU-bounded no matter how many tenants are pushing.
	Workers int
	// Executor runs each job.
	Executor Executor
	// Logf receives scheduler log lines (nil silences them).
	Logf func(format string, args ...interface{})
}

// TenantStats counts one tenant's traffic.
type TenantStats struct {
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
}

// SchedStats is the /v1/stats payload.
type SchedStats struct {
	Workers       int                     `json:"workers"`
	QueueDepth    int                     `json:"queue_depth"`
	Queued        int                     `json:"queued"`
	Running       int                     `json:"running"`
	Submitted     int                     `json:"submitted"`
	Rejected      int                     `json:"rejected"`
	Optimal       int                     `json:"optimal"`
	Failed        int                     `json:"failed"`
	Canceled      int                     `json:"canceled"`
	MaxQueueDepth int                     `json:"max_queue_depth"`
	PerTenant     map[string]*TenantStats `json:"per_tenant"`
}

// Scheduler is the bounded multi-tenant job scheduler: a fixed admission
// queue split per tenant, a round-robin fair dequeue over tenants with
// waiting work, and one shared worker pool executing the dequeued jobs.
// Fairness is at dequeue: a tenant that floods the queue only ever gets
// one job picked per rotation, so a second tenant's first job never waits
// behind the flood.
type Scheduler struct {
	opts SchedOptions
	pool *parallel.Pool

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string][]*Job // per-tenant FIFO of queued jobs
	ring   []string          // tenants with non-empty queues, rotation order
	next   int               // ring position of the next dequeue
	queued int
	jobs   map[string]*Job
	order  []string // job IDs in admission order
	nextID int

	draining bool
	stats    SchedStats

	dispatcherDone chan struct{}
}

// NewScheduler builds and starts a scheduler.
func NewScheduler(opts SchedOptions) *Scheduler {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.Executor == nil {
		panic("api: NewScheduler without Executor")
	}
	s := &Scheduler{
		opts:           opts,
		pool:           parallel.NewPool(opts.Workers),
		queues:         make(map[string][]*Job),
		jobs:           make(map[string]*Job),
		dispatcherDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.stats.Workers = s.pool.Cap()
	s.stats.QueueDepth = opts.QueueDepth
	s.stats.PerTenant = make(map[string]*TenantStats)
	go s.dispatch()
	return s
}

func (s *Scheduler) logf(format string, args ...interface{}) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Scheduler) tenantStats(tenant string) *TenantStats {
	ts := s.stats.PerTenant[tenant]
	if ts == nil {
		ts = &TenantStats{}
		s.stats.PerTenant[tenant] = ts
	}
	return ts
}

// Submit admits one job for tenant, or refuses with ErrQueueFull /
// ErrShuttingDown. The job's deadline clock starts now — queueing time
// counts against it.
func (s *Scheduler) Submit(tenant string, spec JobSpec) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrShuttingDown
	}
	if s.queued >= s.opts.QueueDepth {
		s.stats.Rejected++
		return nil, ErrQueueFull
	}
	s.nextID++
	j := newJob(fmt.Sprintf("j-%06d", s.nextID), tenant, spec, time.Now())
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if len(s.queues[tenant]) == 0 {
		s.ring = append(s.ring, tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], j)
	s.queued++
	if s.queued > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = s.queued
	}
	s.stats.Submitted++
	s.tenantStats(tenant).Submitted++
	s.cond.Signal()
	return j, nil
}

// Job looks a job up by ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job in admission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Stats snapshots the counters.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = s.queued
	st.PerTenant = make(map[string]*TenantStats, len(s.stats.PerTenant))
	for t, ts := range s.stats.PerTenant {
		c := *ts
		st.PerTenant[t] = &c
	}
	return st
}

// dequeue blocks until a job is available (returned) or the scheduler is
// draining with an empty queue (nil). Tenant rotation: one job from the
// ring tenant at next, then advance.
func (s *Scheduler) dequeue() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.queued > 0 {
			if s.next >= len(s.ring) {
				s.next = 0
			}
			tenant := s.ring[s.next]
			q := s.queues[tenant]
			j := q[0]
			s.queues[tenant] = q[1:]
			s.queued--
			if len(s.queues[tenant]) == 0 {
				delete(s.queues, tenant)
				s.ring = append(s.ring[:s.next], s.ring[s.next+1:]...)
				// next now points at the following tenant already.
			} else {
				s.next++
			}
			if len(s.ring) > 0 {
				s.next %= len(s.ring)
			} else {
				s.next = 0
			}
			return j
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// dispatch feeds dequeued jobs into the shared pool. pool.Run blocks
// while all workers are busy — that is the concurrency bound, and the
// queue keeps filling (up to QueueDepth) behind it.
func (s *Scheduler) dispatch() {
	defer close(s.dispatcherDone)
	for {
		j := s.dequeue()
		if j == nil {
			return
		}
		job := j
		if err := s.pool.Run(func() { s.execute(job) }); err != nil {
			s.finishJob(job, StateCanceled, nil, "scheduler stopped")
		}
	}
}

// execute runs one job on a pool worker. A job whose deadline already
// expired while queued is reported Canceled without running — never a
// stale Optimal.
func (s *Scheduler) execute(j *Job) {
	defer j.cancel()
	if err := j.ctx.Err(); err != nil {
		s.finishJob(j, StateCanceled, nil, "deadline expired while queued: "+err.Error())
		return
	}
	j.setRunning(time.Now())
	s.mu.Lock()
	s.stats.Running++
	s.mu.Unlock()
	result, err := s.opts.Executor(j.ctx, j)
	s.mu.Lock()
	s.stats.Running--
	s.mu.Unlock()
	switch {
	case err == nil:
		s.finishJob(j, StateOptimal, result, "")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.finishJob(j, StateCanceled, result, err.Error())
	default:
		s.finishJob(j, StateFailed, result, err.Error())
	}
}

func (s *Scheduler) finishJob(j *Job, state JobState, result json.RawMessage, errMsg string) {
	j.finish(state, result, errMsg, time.Now())
	s.mu.Lock()
	switch state {
	case StateOptimal:
		s.stats.Optimal++
	case StateFailed:
		s.stats.Failed++
	case StateCanceled:
		s.stats.Canceled++
	}
	s.tenantStats(j.Tenant).Completed++
	s.mu.Unlock()
}

// Shutdown drains gracefully: admission stops (ErrShuttingDown), every
// still-queued job is finished Canceled with an explicit reason, and
// in-flight jobs run to completion. If ctx expires first, in-flight job
// contexts are canceled and Shutdown returns ctx.Err() — the jobs then
// finish Canceled through the executor contract.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		var drained []*Job
		for _, q := range s.queues {
			drained = append(drained, q...)
		}
		s.queues = make(map[string][]*Job)
		s.ring = nil
		s.queued = 0
		s.cond.Broadcast()
		s.mu.Unlock()
		for _, j := range drained {
			j.cancel()
			s.finishJob(j, StateCanceled, nil, "server shutting down before start")
		}
	} else {
		s.mu.Unlock()
	}

	// Dispatcher exits once the queue is empty; only then is it safe to
	// close the pool (Run on a closed pool would cancel a job).
	select {
	case <-s.dispatcherDone:
	case <-ctx.Done():
		s.cancelRunning()
		<-s.dispatcherDone
	}
	s.pool.Close()

	done := make(chan struct{})
	go func() {
		s.pool.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelRunning()
		<-done
		return ctx.Err()
	}
}

// cancelRunning force-cancels every non-terminal job's context.
func (s *Scheduler) cancelRunning() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if !j.State().Terminal() {
			j.cancel()
		}
	}
}
