package plan

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// randomNetwork builds a connected random instance: ring + chords with
// random demands between random site pairs.
func randomNetwork(rng *rand.Rand) (*topology.Optical, *topology.IPTopology) {
	n := 5 + rng.Intn(6)
	g := topology.New()
	names := make([]topology.NodeID, n)
	for i := range names {
		names[i] = topology.NodeID(fmt.Sprintf("n%02d", i))
	}
	fid := 0
	addFiber := func(a, b topology.NodeID) {
		fid++
		_ = g.AddFiber(fmt.Sprintf("f%03d", fid), a, b, 60+rng.Float64()*700)
	}
	for i := 0; i < n; i++ {
		addFiber(names[i], names[(i+1)%n])
	}
	for i := 0; i < n/2; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			addFiber(names[a], names[b])
		}
	}
	ip := &topology.IPTopology{}
	nLinks := 2 + rng.Intn(6)
	for i := 0; i < nLinks; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		_ = ip.AddLink(topology.IPLink{
			ID: fmt.Sprintf("e%02d", i), A: names[a], B: names[b],
			DemandGbps: (1 + rng.Intn(20)) * 100,
		})
	}
	return g, ip
}

// Property: on any random connected instance, for every catalog, Solve
// either serves a link fully or reports it unserved, never violates a
// constraint (Verify), and FlexWAN never uses more transponders than
// RADWAN, which never uses more than 100G-WAN (on links all can serve).
func TestSolvePropertyRandomNetworks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ip := randomNetwork(rng)
		if len(ip.Links) == 0 {
			return true
		}
		counts := map[string]int{}
		feasible := map[string]bool{}
		for _, cat := range []transponder.Catalog{transponder.Fixed100G(), transponder.RADWAN(), transponder.SVT()} {
			p := Problem{Optical: g, IP: ip, Catalog: cat, Grid: spectrum.DefaultGrid()}
			r, err := Solve(p)
			if err != nil {
				return false
			}
			if err := Verify(p, r); err != nil {
				t.Logf("seed %d %s: %v", seed, cat.Name, err)
				return false
			}
			counts[cat.Name] = r.Transponders()
			feasible[cat.Name] = r.Feasible()
		}
		// Cost ordering only comparable when all three serve everything.
		if feasible["100G-WAN"] && feasible["RADWAN"] && feasible["FlexWAN"] {
			if !(counts["FlexWAN"] <= counts["RADWAN"] && counts["RADWAN"] <= counts["100G-WAN"]) {
				t.Logf("seed %d: counts %v", seed, counts)
				return false
			}
		}
		// SVT feasibility dominates RADWAN's (superset catalog).
		if feasible["RADWAN"] && !feasible["FlexWAN"] {
			t.Logf("seed %d: RADWAN feasible but FlexWAN not", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Extend never disturbs existing wavelengths and keeps the
// allocator consistent, on random instances and random growth sequences.
func TestExtendPropertyRandomGrowth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ip := randomNetwork(rng)
		if len(ip.Links) == 0 {
			return true
		}
		p := Problem{Optical: g, IP: ip, Catalog: transponder.SVT(), Grid: spectrum.DefaultGrid()}
		r, err := Solve(p)
		if err != nil {
			return false
		}
		for step := 0; step < 4; step++ {
			link := ip.Links[rng.Intn(len(ip.Links))]
			before := make(map[int]Wavelength, len(r.Wavelengths))
			for i, w := range r.Wavelengths {
				before[i] = w
			}
			if _, err := Extend(p, r, link.ID, (1+rng.Intn(8))*100); err != nil {
				return false
			}
			for i, w := range before {
				got := r.Wavelengths[i]
				if got.LinkID != w.LinkID || got.Interval != w.Interval || got.Mode != w.Mode {
					return false // existing wavelength disturbed
				}
			}
			if err := r.Allocator.Verify(allAllocations(r)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: restoration on random failures never exceeds affected
// capacity, never reuses occupied spectrum, and exact ≥ heuristic does
// not need checking here (covered in restore tests); instead check that
// Decommission+Extend round-trips leave a verifiable plan.
func TestDecommissionExtendRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ip := randomNetwork(rng)
		if len(ip.Links) < 2 {
			return true
		}
		p := Problem{Optical: g, IP: ip, Catalog: transponder.SVT(), Grid: spectrum.DefaultGrid()}
		r, err := Solve(p)
		if err != nil {
			return false
		}
		victim := ip.Links[rng.Intn(len(ip.Links))]
		if _, err := Decommission(r, victim.ID); err != nil {
			return false
		}
		if _, err := Extend(p, r, victim.ID, victim.DemandGbps); err != nil {
			return false
		}
		return r.Allocator.Verify(allAllocations(r)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
