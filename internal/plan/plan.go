// Package plan implements FlexWAN's network planning (Algorithm 1 of the
// paper): provisioning the bandwidth capacity of every IP link over
// optical paths with the minimum hardware cost, defined as
//
//	minimize  Σ λ  +  ε · Σ λ·Y
//
// (transponder count plus ε-weighted spectrum usage), subject to
//
//	(1) capacity     — each link's wavelengths sum to ≥ its demand,
//	(2) optical reach — a mode is usable only when reach ≥ path length,
//	(3) conflict     — a fiber pixel carries at most one wavelength,
//	(4) consistency  — a wavelength occupies identical pixels on every
//	                   fiber of its path,
//	(5,6) bookkeeping between wavelengths, slots and transponder counts.
//
// Two solvers are provided. SolveExact builds the paper's mixed-integer
// program verbatim and solves it with the internal branch-and-bound — the
// substitute for the paper's Gurobi runs, practical for small and medium
// instances. Solve is the scalable heuristic used at production size:
// greedy per-wavelength mode selection with first-fit spectrum
// assignment, validated against the exact solver (see plan tests and the
// ablation benchmarks). Both enforce constraints (2)–(6) by construction;
// when spectrum runs out, the result reports the unserved demand instead
// of silently violating (3).
package plan

import (
	"fmt"
	"sort"

	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// Problem is one planning instance: both topology layers, the demand set,
// the transponder family, and the spectrum grid.
type Problem struct {
	Optical *topology.Optical
	IP      *topology.IPTopology
	Catalog transponder.Catalog
	Grid    spectrum.Grid
	// K is the number of candidate shortest optical paths per IP link
	// (the paper's KSP pre-computation). Zero means DefaultK.
	K int
	// Epsilon weighs spectrum against transponders in the objective.
	// Zero means DefaultEpsilon.
	Epsilon float64
	// Fit selects the spectrum placement strategy of the heuristic.
	Fit spectrum.Fit
}

// Defaults for Problem fields left zero.
const (
	DefaultK       = 3
	DefaultEpsilon = 0.001
)

func (p Problem) k() int {
	if p.K <= 0 {
		return DefaultK
	}
	return p.K
}

func (p Problem) epsilon() float64 {
	if p.Epsilon <= 0 {
		return DefaultEpsilon
	}
	return p.Epsilon
}

// Wavelength is one provisioned optical channel: a transponder pair
// operating in Mode over Path, occupying Interval on every fiber.
type Wavelength struct {
	LinkID    string
	PathIndex int // index into the link's candidate path list
	Path      topology.Path
	Mode      transponder.Mode
	Interval  spectrum.Interval
}

// GapKm returns optical reach − path length, the over-provisioning margin
// of the wavelength (Fig. 14a).
func (w Wavelength) GapKm() float64 { return w.Mode.ReachKm - w.Path.LengthKm }

// LinkPlan summarizes provisioning for one IP link.
type LinkPlan struct {
	DemandGbps      int
	ProvisionedGbps int
	Wavelengths     int
}

// Served reports whether the link's demand is fully provisioned.
func (lp LinkPlan) Served() bool { return lp.ProvisionedGbps >= lp.DemandGbps }

// Result is a complete planning outcome.
type Result struct {
	Wavelengths []Wavelength
	PerLink     map[string]LinkPlan
	// Paths caches the candidate optical paths per link, as computed by
	// KSP on the problem's optical topology.
	Paths map[string][]topology.Path
	// Allocator holds the final per-fiber spectrum occupancy.
	Allocator *spectrum.Allocator
	// Unserved lists IDs of links whose demand could not be fully met
	// (spectrum or reach exhaustion). Empty means a feasible plan.
	Unserved []string
	// Solver records how the exact MIP terminated; nil on heuristic plans.
	Solver *SolveStats
}

// Feasible reports whether every demand was fully provisioned.
func (r *Result) Feasible() bool { return len(r.Unserved) == 0 }

// Transponders returns the total number of transponder pairs (the paper's
// primary hardware cost, Σλ).
func (r *Result) Transponders() int { return len(r.Wavelengths) }

// SpectrumGHz returns the total channel spacing across wavelengths (the
// paper's spectrum usage, Σ λ·Y).
func (r *Result) SpectrumGHz() float64 {
	total := 0.0
	for _, w := range r.Wavelengths {
		total += w.Mode.SpacingGHz
	}
	return total
}

// Objective returns Σλ + ε·Σλ·Y, Algorithm 1's objective value.
func (r *Result) Objective(epsilon float64) float64 {
	return float64(r.Transponders()) + epsilon*r.SpectrumGHz()
}

// MeanSpectralEfficiency returns the mean data rate per spacing over all
// wavelengths (b/s/Hz).
func (r *Result) MeanSpectralEfficiency() float64 {
	if len(r.Wavelengths) == 0 {
		return 0
	}
	total := 0.0
	for _, w := range r.Wavelengths {
		total += w.Mode.SpectralEfficiency()
	}
	return total / float64(len(r.Wavelengths))
}

// candidatePaths computes the KSP path set for every link, failing when a
// link's endpoints are disconnected in the optical topology.
func candidatePaths(p Problem) (map[string][]topology.Path, error) {
	paths := make(map[string][]topology.Path, len(p.IP.Links))
	for _, l := range p.IP.Links {
		ps := p.Optical.KShortestPaths(l.A, l.B, p.k())
		if len(ps) == 0 {
			return nil, fmt.Errorf("plan: no optical path for IP link %s (%s–%s)", l.ID, l.A, l.B)
		}
		paths[l.ID] = ps
	}
	return paths, nil
}

// Solve runs the scalable planning heuristic.
//
// Links are processed hardest-first (longest shortest path, then largest
// demand): long paths have the fewest feasible modes and cross the most
// fibers, so they face the tightest spectrum contention. Per link the
// heuristic walks candidate paths in length order and provisions one
// wavelength at a time, preferring the mode multiset a cost-optimal
// single-link provision would use (transponder.MinProvision) and falling
// back to any feasible mode when the preferred channel cannot find
// contiguous spectrum. Every allocation goes through spectrum.Allocator,
// which enforces the conflict and consistency constraints by construction.
func Solve(p Problem) (*Result, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	paths, err := candidatePaths(p)
	if err != nil {
		return nil, err
	}
	res := &Result{
		PerLink:   make(map[string]LinkPlan, len(p.IP.Links)),
		Paths:     paths,
		Allocator: spectrum.NewAllocator(p.Grid),
	}

	order := make([]topology.IPLink, len(p.IP.Links))
	copy(order, p.IP.Links)
	sort.SliceStable(order, func(i, j int) bool {
		li, lj := paths[order[i].ID][0].LengthKm, paths[order[j].ID][0].LengthKm
		if li != lj {
			return li > lj
		}
		if order[i].DemandGbps != order[j].DemandGbps {
			return order[i].DemandGbps > order[j].DemandGbps
		}
		return order[i].ID < order[j].ID
	})

	for _, link := range order {
		lp := LinkPlan{DemandGbps: link.DemandGbps}
		remaining := link.DemandGbps
		for remaining > 0 {
			w, ok := placeOne(p, res, link.ID, paths[link.ID], remaining)
			if !ok {
				break
			}
			res.Wavelengths = append(res.Wavelengths, w)
			lp.Wavelengths++
			lp.ProvisionedGbps += w.Mode.DataRateGbps
			remaining -= w.Mode.DataRateGbps
		}
		res.PerLink[link.ID] = lp
		if remaining > 0 {
			res.Unserved = append(res.Unserved, link.ID)
		}
	}
	sort.Strings(res.Unserved)
	return res, nil
}

// placeOne provisions a single wavelength toward the remaining demand of
// a link, trying candidate paths in order. It returns false when no
// (path, mode, spectrum) combination works.
func placeOne(p Problem, res *Result, linkID string, paths []topology.Path, remainingGbps int) (Wavelength, bool) {
	for pi, path := range paths {
		fibers := fiberIDs(path)
		// Preferred modes: what a cost-optimal provision of the whole
		// remaining demand at this length would use, widest first so the
		// hardest channel claims contiguous spectrum earliest.
		if prov, ok := p.Catalog.MinProvision(remainingGbps, path.LengthKm); ok {
			modes := expandProvision(prov)
			sort.SliceStable(modes, func(i, j int) bool {
				return modes[i].SpacingGHz > modes[j].SpacingGHz
			})
			for _, mode := range modes {
				if w, ok := tryAllocate(p, res, linkID, pi, path, fibers, mode); ok {
					return w, true
				}
			}
		}
		// Fallback: any feasible mode, highest rate then narrowest
		// spacing — spectrum is fragmented, so try every width.
		feasible := p.Catalog.FeasibleModes(path.LengthKm)
		sort.SliceStable(feasible, func(i, j int) bool {
			if feasible[i].DataRateGbps != feasible[j].DataRateGbps {
				return feasible[i].DataRateGbps > feasible[j].DataRateGbps
			}
			return feasible[i].SpacingGHz < feasible[j].SpacingGHz
		})
		for _, mode := range feasible {
			if w, ok := tryAllocate(p, res, linkID, pi, path, fibers, mode); ok {
				return w, true
			}
		}
	}
	return Wavelength{}, false
}

func tryAllocate(p Problem, res *Result, linkID string, pathIndex int, path topology.Path, fibers []spectrum.FiberID, mode transponder.Mode) (Wavelength, bool) {
	pixels := mode.Pixels(p.Grid)
	if pixels > p.Grid.Pixels {
		return Wavelength{}, false
	}
	al, err := res.Allocator.Allocate(fibers, pixels, p.Fit)
	if err != nil {
		return Wavelength{}, false
	}
	return Wavelength{
		LinkID:    linkID,
		PathIndex: pathIndex,
		Path:      path,
		Mode:      mode,
		Interval:  al.Interval,
	}, true
}

func fiberIDs(path topology.Path) []spectrum.FiberID {
	out := make([]spectrum.FiberID, len(path.Fibers))
	for i, f := range path.Fibers {
		out[i] = spectrum.FiberID(f)
	}
	return out
}

// expandProvision flattens a mode multiset into individual wavelengths.
func expandProvision(prov transponder.Provision) []transponder.Mode {
	var out []transponder.Mode
	for i, n := range prov.Counts {
		for j := 0; j < n; j++ {
			out = append(out, prov.Modes[i])
		}
	}
	return out
}

func validate(p Problem) error {
	if p.Optical == nil || p.IP == nil {
		return fmt.Errorf("plan: nil topology")
	}
	if len(p.Catalog.Modes) == 0 {
		return fmt.Errorf("plan: empty transponder catalog")
	}
	if p.Grid.Pixels <= 0 || p.Grid.PixelGHz <= 0 {
		return fmt.Errorf("plan: invalid spectrum grid %+v", p.Grid)
	}
	for _, l := range p.IP.Links {
		if !p.Optical.HasNode(l.A) || !p.Optical.HasNode(l.B) {
			return fmt.Errorf("plan: IP link %s references unknown optical site", l.ID)
		}
	}
	return nil
}

// Verify re-checks every paper constraint on a result against the
// problem: capacity (unless listed unserved), reach, conflict,
// consistency, and interval validity. It returns nil for a sound plan.
// The controller runs this before pushing configurations (§4.3's "zero
// inconsistency and conflict" audit).
func Verify(p Problem, r *Result) error {
	// Reach (2) and grid validity.
	for i, w := range r.Wavelengths {
		if !w.Mode.Feasible(w.Path.LengthKm) {
			return fmt.Errorf("plan: wavelength %d violates reach: %v over %.0f km", i, w.Mode, w.Path.LengthKm)
		}
		if !w.Interval.Valid(p.Grid) {
			return fmt.Errorf("plan: wavelength %d interval %v outside grid", i, w.Interval)
		}
		if w.Interval.Count != w.Mode.Pixels(p.Grid) {
			return fmt.Errorf("plan: wavelength %d interval %v does not match spacing %v GHz",
				i, w.Interval, w.Mode.SpacingGHz)
		}
	}
	// Conflict (3) and consistency (4): rebuild occupancy and compare.
	allocs := make([]spectrum.Allocation, len(r.Wavelengths))
	for i, w := range r.Wavelengths {
		allocs[i] = spectrum.Allocation{Fibers: fiberIDs(w.Path), Interval: w.Interval}
	}
	if err := r.Allocator.Verify(allocs); err != nil {
		return fmt.Errorf("plan: %w", err)
	}
	// Capacity (1).
	unserved := make(map[string]bool, len(r.Unserved))
	for _, id := range r.Unserved {
		unserved[id] = true
	}
	capacity := make(map[string]int)
	for _, w := range r.Wavelengths {
		capacity[w.LinkID] += w.Mode.DataRateGbps
	}
	for _, l := range p.IP.Links {
		if unserved[l.ID] {
			continue
		}
		if capacity[l.ID] < l.DemandGbps {
			return fmt.Errorf("plan: link %s provisioned %d < demand %d Gbps", l.ID, capacity[l.ID], l.DemandGbps)
		}
	}
	return nil
}
