package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// fragmentedPlan builds a plan with two links, removes the first, and
// returns the holey result.
func fragmentedPlan(t *testing.T) (Problem, *Result) {
	t.Helper()
	p := Problem{
		Optical: lineTopology(t),
		IP: ipLinks(t,
			topology.IPLink{ID: "low", A: "A", B: "B", DemandGbps: 1200},
			topology.IPLink{ID: "high", A: "A", B: "B", DemandGbps: 1200},
		),
		Catalog: transponder.SVT(),
		Grid:    spectrum.DefaultGrid(),
		K:       1,
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatalf("unserved: %v", r.Unserved)
	}
	// Remove whichever link got the lower spectrum, creating a hole.
	victim := "low"
	minStart := map[string]int{}
	for _, w := range r.Wavelengths {
		if cur, ok := minStart[w.LinkID]; !ok || w.Interval.Start < cur {
			minStart[w.LinkID] = w.Interval.Start
		}
	}
	if minStart["high"] < minStart["low"] {
		victim = "high"
	}
	if _, err := Decommission(r, victim); err != nil {
		t.Fatal(err)
	}
	return p, r
}

func TestDefragmentCompacts(t *testing.T) {
	p, r := fragmentedPlan(t)
	// Before: surviving wavelengths start above the hole.
	lowestBefore := p.Grid.Pixels
	for _, w := range r.Wavelengths {
		if w.Interval.Start < lowestBefore {
			lowestBefore = w.Interval.Start
		}
	}
	if lowestBefore == 0 {
		t.Fatal("test setup: no hole at the bottom of the spectrum")
	}
	moves, err := Defragment(p, r)
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("nothing moved")
	}
	// After: the lowest wavelength sits at pixel 0 and the set is packed
	// on the single shared path (total pixels == span of occupied run).
	lowestAfter := p.Grid.Pixels
	for _, w := range r.Wavelengths {
		if w.Interval.Start < lowestAfter {
			lowestAfter = w.Interval.Start
		}
	}
	if lowestAfter != 0 {
		t.Errorf("lowest start after defrag = %d, want 0", lowestAfter)
	}
	if err := r.Allocator.Verify(allAllocations(r)); err != nil {
		t.Errorf("allocator inconsistent after defrag: %v", err)
	}
	// Idempotent once compacted.
	again, err := Defragment(p, r)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Errorf("second defrag moved %d wavelengths", again)
	}
	// Fragmentation strictly improved on the path's fiber.
	m := r.Allocator.FiberMap("f1")
	if m.LargestFreeRun().Count == 0 {
		t.Error("no free run after defrag")
	}
}

func TestDefragmentValidation(t *testing.T) {
	p, _ := fragmentedPlan(t)
	if _, err := Defragment(p, nil); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := Defragment(p, &Result{}); err == nil {
		t.Error("result without allocator accepted")
	}
}

// Property: defragmentation never changes capacity, modes, or paths; it
// only lowers interval starts, and Verify stays clean.
func TestDefragmentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, ip := randomNetwork(rng)
		if len(ip.Links) < 2 {
			return true
		}
		p := Problem{Optical: g, IP: ip, Catalog: transponder.SVT(), Grid: spectrum.DefaultGrid()}
		r, err := Solve(p)
		if err != nil {
			return false
		}
		// Punch random holes.
		if _, err := Decommission(r, ip.Links[rng.Intn(len(ip.Links))].ID); err != nil {
			return false
		}
		type key struct {
			link string
			mode transponder.Mode
		}
		countBefore := map[key]int{}
		startSum := 0
		for _, w := range r.Wavelengths {
			countBefore[key{w.LinkID, w.Mode}]++
			startSum += w.Interval.Start
		}
		if _, err := Defragment(p, r); err != nil {
			return false
		}
		countAfter := map[key]int{}
		startSumAfter := 0
		for _, w := range r.Wavelengths {
			countAfter[key{w.LinkID, w.Mode}]++
			startSumAfter += w.Interval.Start
		}
		if len(countBefore) != len(countAfter) {
			return false
		}
		for k, n := range countBefore {
			if countAfter[k] != n {
				return false
			}
		}
		if startSumAfter > startSum {
			return false // defrag may only move wavelengths down
		}
		return r.Allocator.Verify(allAllocations(r)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
