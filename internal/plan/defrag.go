package plan

import (
	"fmt"
	"sort"

	"flexwan/internal/spectrum"
)

// Defragment compacts the plan's spectrum: each wavelength is re-placed
// at the lowest-indexed interval available on its path, repeatedly, until
// no wavelength can move down. Years of growth and decommissioning
// (§9's evolution) fragment the C-band into slivers no wide channel fits;
// periodic defragmentation restores contiguous headroom. Every move is a
// make-before-break retune: the new interval is claimed before the old
// one is released, so a concurrent reader of the allocator never sees the
// channel unplaced, and each intermediate state remains conflict-free and
// consistent.
//
// It returns the number of wavelengths moved. The result remains Verify-
// clean afterwards.
func Defragment(p Problem, r *Result) (int, error) {
	if err := validate(p); err != nil {
		return 0, err
	}
	if r == nil || r.Allocator == nil {
		return 0, fmt.Errorf("plan: Defragment needs a result produced by Solve")
	}
	moves := 0
	// Lowest-first processing lets early moves open space for later ones.
	for pass := 0; pass < 16; pass++ {
		order := make([]int, len(r.Wavelengths))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return r.Wavelengths[order[a]].Interval.Start < r.Wavelengths[order[b]].Interval.Start
		})
		movedThisPass := 0
		for _, i := range order {
			w := r.Wavelengths[i]
			fibers := fiberIDs(w.Path)
			// Make-before-break needs the new interval to be free while
			// the old one is still held; Find naturally excludes the
			// channel's own pixels, so only strictly disjoint, lower
			// placements are candidates.
			target, err := r.Allocator.Find(fibers, w.Interval.Count, p.Fit)
			if err != nil || target.Start >= w.Interval.Start {
				continue
			}
			if err := r.Allocator.AllocateExact(fibers, target); err != nil {
				continue // raced by an earlier move in this pass
			}
			if err := r.Allocator.Release(allocationOf(w)); err != nil {
				// Undo the make half; state stays as before.
				_ = r.Allocator.Release(spectrum.Allocation{Fibers: fibers, Interval: target})
				return moves, fmt.Errorf("plan: defragment break failed: %w", err)
			}
			r.Wavelengths[i].Interval = target
			moves++
			movedThisPass++
		}
		if movedThisPass == 0 {
			break
		}
	}
	return moves, nil
}
