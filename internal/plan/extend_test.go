package plan

import (
	"testing"

	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

func basePlan(t *testing.T, demand int) (Problem, *Result) {
	t.Helper()
	p := Problem{
		Optical: lineTopology(t),
		IP:      ipLinks(t, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: demand}),
		Catalog: transponder.SVT(),
		Grid:    spectrum.DefaultGrid(),
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func TestExtendAddsCapacity(t *testing.T) {
	p, r := basePlan(t, 400)
	before := r.Transponders()
	beforeIntervals := map[spectrum.Interval]bool{}
	for _, w := range r.Wavelengths {
		beforeIntervals[w.Interval] = true
	}

	added, err := Extend(p, r, "e1", 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) == 0 {
		t.Fatal("no wavelengths added")
	}
	total := 0
	for _, w := range added {
		total += w.Mode.DataRateGbps
	}
	if total < 800 {
		t.Errorf("added %d Gbps, want ≥ 800", total)
	}
	if r.Transponders() != before+len(added) {
		t.Errorf("transponders = %d, want %d", r.Transponders(), before+len(added))
	}
	// Existing wavelengths untouched.
	for iv := range beforeIntervals {
		found := false
		for _, w := range r.Wavelengths {
			if w.Interval == iv {
				found = true
			}
		}
		if !found {
			t.Errorf("pre-existing interval %v disappeared", iv)
		}
	}
	// The extended result still verifies against the grown demand.
	p.IP = ipLinks(t, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 1200})
	if err := Verify(p, r); err != nil {
		t.Errorf("Verify after Extend: %v", err)
	}
	if lp := r.PerLink["e1"]; lp.DemandGbps != 1200 || lp.ProvisionedGbps < 1200 {
		t.Errorf("PerLink after Extend = %+v", lp)
	}
}

func TestExtendNewLink(t *testing.T) {
	p, r := basePlan(t, 400)
	// Grow the IP topology with a link the base plan never saw.
	p.IP = ipLinks(t,
		topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400},
		topology.IPLink{ID: "e2", A: "B", B: "C", DemandGbps: 200},
	)
	added, err := Extend(p, r, "e2", 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) == 0 || added[0].LinkID != "e2" {
		t.Fatalf("added = %+v", added)
	}
	if err := Verify(p, r); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestExtendValidation(t *testing.T) {
	p, r := basePlan(t, 400)
	if _, err := Extend(p, r, "e1", 0); err == nil {
		t.Error("zero addition accepted")
	}
	if _, err := Extend(p, r, "ghost", 100); err == nil {
		t.Error("unknown link accepted")
	}
	if _, err := Extend(p, nil, "e1", 100); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := Extend(p, &Result{}, "e1", 100); err == nil {
		t.Error("result without allocator accepted")
	}
}

func TestExtendSpectrumExhaustion(t *testing.T) {
	p := Problem{
		Optical: lineTopology(t),
		IP:      ipLinks(t, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400}),
		Catalog: transponder.SVT(),
		Grid:    spectrum.Grid{PixelGHz: 12.5, Pixels: 8}, // one 75 GHz channel + crumbs
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatalf("base infeasible: %v", r.Unserved)
	}
	added, err := Extend(p, r, "e1", 100000)
	if err != nil {
		t.Fatal(err)
	}
	_ = added
	if r.Feasible() {
		t.Error("impossible extension not recorded as unserved")
	}
	// Partial capacity is retained and consistent.
	if err := r.Allocator.Verify(allAllocations(r)); err != nil {
		t.Errorf("allocator inconsistent after failed extension: %v", err)
	}
}

func TestDecommission(t *testing.T) {
	p, r := basePlan(t, 1600)
	used := r.Allocator.UsedPixels()
	if used == 0 {
		t.Fatal("no pixels used by base plan")
	}
	freed, err := Decommission(r, "e1")
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 {
		t.Error("nothing freed")
	}
	if r.Allocator.UsedPixels() != 0 {
		t.Errorf("pixels still used after decommission: %d", r.Allocator.UsedPixels())
	}
	if len(r.Wavelengths) != 0 {
		t.Errorf("wavelengths remain: %d", len(r.Wavelengths))
	}
	if _, ok := r.PerLink["e1"]; ok {
		t.Error("PerLink entry remains")
	}
	// Freed spectrum is reusable.
	if _, err := Extend(p, r, "e1", 400); err != nil {
		t.Errorf("Extend after Decommission: %v", err)
	}
}

func TestDecommissionUnknownLinkNoOp(t *testing.T) {
	_, r := basePlan(t, 400)
	freed, err := Decommission(r, "ghost")
	if err != nil || freed != 0 {
		t.Errorf("Decommission(ghost) = %d, %v", freed, err)
	}
	if len(r.Wavelengths) == 0 {
		t.Error("existing wavelengths removed")
	}
}

func allAllocations(r *Result) []spectrum.Allocation {
	out := make([]spectrum.Allocation, len(r.Wavelengths))
	for i, w := range r.Wavelengths {
		out[i] = allocationOf(w)
	}
	return out
}
