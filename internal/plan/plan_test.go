package plan

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"flexwan/internal/parallel"
	"flexwan/internal/solver"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// lineTopology builds A --f1(100km)-- B --f2(400km)-- C --f3(800km)-- D.
func lineTopology(t *testing.T) *topology.Optical {
	t.Helper()
	g := topology.New()
	for _, f := range []struct {
		id   string
		a, b topology.NodeID
		l    float64
	}{
		{"f1", "A", "B", 100},
		{"f2", "B", "C", 400},
		{"f3", "C", "D", 800},
	} {
		if err := g.AddFiber(f.id, f.a, f.b, f.l); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// meshTopology builds a 5-node mesh with path diversity.
func meshTopology(t *testing.T) *topology.Optical {
	t.Helper()
	g := topology.New()
	for _, f := range []struct {
		id   string
		a, b topology.NodeID
		l    float64
	}{
		{"f1", "A", "B", 150},
		{"f2", "B", "C", 200},
		{"f3", "C", "D", 250},
		{"f4", "D", "E", 180},
		{"f5", "E", "A", 300},
		{"f6", "B", "E", 220},
		{"f7", "A", "C", 500},
	} {
		if err := g.AddFiber(f.id, f.a, f.b, f.l); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func ipLinks(t *testing.T, links ...topology.IPLink) *topology.IPTopology {
	t.Helper()
	ip := &topology.IPTopology{}
	for _, l := range links {
		if err := ip.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	return ip
}

func TestSolveSingleLink(t *testing.T) {
	p := Problem{
		Optical: lineTopology(t),
		IP:      ipLinks(t, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400}),
		Catalog: transponder.SVT(),
		Grid:    spectrum.DefaultGrid(),
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatalf("plan infeasible: unserved %v", r.Unserved)
	}
	// 400G over 100 km: one 400G@75GHz channel is the single-transponder,
	// minimum-spectrum choice.
	if r.Transponders() != 1 {
		t.Errorf("transponders = %d, want 1", r.Transponders())
	}
	w := r.Wavelengths[0]
	if w.Mode.DataRateGbps != 400 || w.Mode.SpacingGHz != 75 {
		t.Errorf("mode = %v, want 400G@75GHz", w.Mode)
	}
	if err := Verify(p, r); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestSolveMultiWavelength(t *testing.T) {
	p := Problem{
		Optical: lineTopology(t),
		IP:      ipLinks(t, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 2000}),
		Catalog: transponder.SVT(),
		Grid:    spectrum.DefaultGrid(),
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatalf("unserved: %v", r.Unserved)
	}
	if r.Transponders() != 3 {
		t.Errorf("transponders = %d, want 3 (ceil(2000/800))", r.Transponders())
	}
	if lp := r.PerLink["e1"]; lp.ProvisionedGbps < 2000 {
		t.Errorf("provisioned %d < 2000", lp.ProvisionedGbps)
	}
	if err := Verify(p, r); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestSolveRespectsReach(t *testing.T) {
	// A–D is 1300 km: no 800G mode reaches; the best is 500G@100 (2000)…
	// actually 500G@112.5 reaches 1100 < 1300, 500G@125 reaches 1200,
	// 500G@137.5 reaches 1300. Every placed mode must have reach ≥ 1300.
	p := Problem{
		Optical: lineTopology(t),
		IP:      ipLinks(t, topology.IPLink{ID: "e1", A: "A", B: "D", DemandGbps: 1000}),
		Catalog: transponder.SVT(),
		Grid:    spectrum.DefaultGrid(),
		K:       1,
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatalf("unserved: %v", r.Unserved)
	}
	for _, w := range r.Wavelengths {
		if w.Mode.ReachKm < w.Path.LengthKm {
			t.Errorf("wavelength %v violates reach on %.0f km path", w.Mode, w.Path.LengthKm)
		}
	}
	if err := Verify(p, r); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestSolveSharedFiberConflictFree(t *testing.T) {
	// Two links both crossing fiber f2 must receive disjoint spectrum.
	p := Problem{
		Optical: lineTopology(t),
		IP: ipLinks(t,
			topology.IPLink{ID: "e1", A: "A", B: "C", DemandGbps: 800},
			topology.IPLink{ID: "e2", A: "B", B: "C", DemandGbps: 800},
		),
		Catalog: transponder.SVT(),
		Grid:    spectrum.DefaultGrid(),
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatalf("unserved: %v", r.Unserved)
	}
	if err := Verify(p, r); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Explicit pairwise overlap check on f2.
	var onF2 []Wavelength
	for _, w := range r.Wavelengths {
		for _, f := range w.Path.Fibers {
			if f == "f2" {
				onF2 = append(onF2, w)
			}
		}
	}
	if len(onF2) < 2 {
		t.Fatalf("expected ≥ 2 wavelengths on f2, got %d", len(onF2))
	}
	for i := range onF2 {
		for j := i + 1; j < len(onF2); j++ {
			if onF2[i].Interval.Overlaps(onF2[j].Interval) {
				t.Errorf("wavelengths %d and %d overlap on f2: %v vs %v",
					i, j, onF2[i].Interval, onF2[j].Interval)
			}
		}
	}
}

func TestSolveSpectrumExhaustion(t *testing.T) {
	// A 4-pixel grid (50 GHz) cannot carry 200 Gbps over 400 km with SVT
	// (200G needs ≥ 50 GHz and the second channel has nowhere to go).
	p := Problem{
		Optical: lineTopology(t),
		IP:      ipLinks(t, topology.IPLink{ID: "e1", A: "B", B: "C", DemandGbps: 10000}),
		Catalog: transponder.SVT(),
		Grid:    spectrum.Grid{PixelGHz: 12.5, Pixels: 4},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible() {
		t.Fatal("plan should be infeasible on a 50 GHz band")
	}
	if len(r.Unserved) != 1 || r.Unserved[0] != "e1" {
		t.Errorf("Unserved = %v", r.Unserved)
	}
	// Partial provisioning is still conflict-free.
	if err := Verify(p, r); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestSolveUsesAlternatePaths(t *testing.T) {
	// Demand that exceeds one path's spectrum must spill to the K=2 path.
	// Grid of 8 pixels (100 GHz): one 400G@75 (6 px) fills a path; the
	// next wavelength must take the second path.
	p := Problem{
		Optical: meshTopology(t),
		IP:      ipLinks(t, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 800}),
		Catalog: transponder.SVT(),
		Grid:    spectrum.Grid{PixelGHz: 12.5, Pixels: 8},
		K:       3,
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatalf("unserved: %v", r.Unserved)
	}
	pathsUsed := map[int]bool{}
	for _, w := range r.Wavelengths {
		pathsUsed[w.PathIndex] = true
	}
	if len(pathsUsed) < 2 {
		t.Errorf("expected multiple candidate paths in use, got %v", pathsUsed)
	}
	if err := Verify(p, r); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestSolveSchemeOrdering(t *testing.T) {
	// FlexWAN ≤ RADWAN ≤ 100G-WAN in both transponders and spectrum on a
	// short-path-rich instance (the paper's core claim, Fig. 12).
	ip := ipLinks(t,
		topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 1600},
		topology.IPLink{ID: "e2", A: "B", B: "C", DemandGbps: 800},
		topology.IPLink{ID: "e3", A: "A", B: "C", DemandGbps: 1200},
		topology.IPLink{ID: "e4", A: "C", B: "D", DemandGbps: 600},
	)
	results := map[string]*Result{}
	for _, cat := range []transponder.Catalog{transponder.Fixed100G(), transponder.RADWAN(), transponder.SVT()} {
		p := Problem{
			Optical: meshTopology(t),
			IP:      ip,
			Catalog: cat,
			Grid:    spectrum.DefaultGrid(),
		}
		r, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Feasible() {
			t.Fatalf("%s infeasible: %v", cat.Name, r.Unserved)
		}
		if err := Verify(p, r); err != nil {
			t.Fatalf("%s Verify: %v", cat.Name, err)
		}
		results[cat.Name] = r
	}
	fx, rad, flex := results["100G-WAN"], results["RADWAN"], results["FlexWAN"]
	if !(flex.Transponders() <= rad.Transponders() && rad.Transponders() <= fx.Transponders()) {
		t.Errorf("transponders: FlexWAN %d, RADWAN %d, 100G-WAN %d — ordering violated",
			flex.Transponders(), rad.Transponders(), fx.Transponders())
	}
	if !(flex.SpectrumGHz() <= rad.SpectrumGHz() && rad.SpectrumGHz() <= fx.SpectrumGHz()) {
		t.Errorf("spectrum: FlexWAN %v, RADWAN %v, 100G-WAN %v — ordering violated",
			flex.SpectrumGHz(), rad.SpectrumGHz(), fx.SpectrumGHz())
	}
	if flex.MeanSpectralEfficiency() <= rad.MeanSpectralEfficiency() {
		t.Errorf("spectral efficiency: FlexWAN %v ≤ RADWAN %v",
			flex.MeanSpectralEfficiency(), rad.MeanSpectralEfficiency())
	}
}

func TestSolveDeterministic(t *testing.T) {
	p := Problem{
		Optical: meshTopology(t),
		IP: ipLinks(t,
			topology.IPLink{ID: "e1", A: "A", B: "D", DemandGbps: 900},
			topology.IPLink{ID: "e2", A: "B", B: "E", DemandGbps: 700},
		),
		Catalog: transponder.SVT(),
		Grid:    spectrum.DefaultGrid(),
	}
	r1, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Wavelengths) != len(r2.Wavelengths) {
		t.Fatalf("nondeterministic wavelength count: %d vs %d", len(r1.Wavelengths), len(r2.Wavelengths))
	}
	for i := range r1.Wavelengths {
		a, b := r1.Wavelengths[i], r2.Wavelengths[i]
		if a.LinkID != b.LinkID || a.Mode != b.Mode || a.Interval != b.Interval || !a.Path.Equal(b.Path) {
			t.Errorf("wavelength %d differs between runs: %+v vs %+v", i, a, b)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	good := Problem{
		Optical: lineTopology(t),
		IP:      ipLinks(t, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 100}),
		Catalog: transponder.SVT(),
		Grid:    spectrum.DefaultGrid(),
	}
	bad := good
	bad.Optical = nil
	if _, err := Solve(bad); err == nil {
		t.Error("nil optical accepted")
	}
	bad = good
	bad.Catalog = transponder.Catalog{}
	if _, err := Solve(bad); err == nil {
		t.Error("empty catalog accepted")
	}
	bad = good
	bad.Grid = spectrum.Grid{}
	if _, err := Solve(bad); err == nil {
		t.Error("zero grid accepted")
	}
	bad = good
	bad.IP = ipLinks(t, topology.IPLink{ID: "ghost", A: "X", B: "Y", DemandGbps: 100})
	if _, err := Solve(bad); err == nil {
		t.Error("IP link over unknown sites accepted")
	}
	// Disconnected endpoints fail at KSP time.
	g := lineTopology(t)
	g.AddNode("Z")
	bad = good
	bad.Optical = g
	bad.IP = ipLinks(t, topology.IPLink{ID: "e1", A: "A", B: "Z", DemandGbps: 100})
	if _, err := Solve(bad); err == nil || !strings.Contains(err.Error(), "no optical path") {
		t.Errorf("disconnected link error = %v", err)
	}
}

func TestSolveExactSmall(t *testing.T) {
	// Single link, 300 Gbps at 100 km, RADWAN, 12-pixel grid: the optimum
	// is one 8QAM 300G channel.
	p := Problem{
		Optical: lineTopology(t),
		IP:      ipLinks(t, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 300}),
		Catalog: transponder.RADWAN(),
		Grid:    spectrum.Grid{PixelGHz: 12.5, Pixels: 12},
		K:       1,
	}
	r, err := SolveExact(p, solver.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Transponders() != 1 {
		t.Errorf("exact transponders = %d, want 1", r.Transponders())
	}
	if err := Verify(p, r); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestSolveExactConflict(t *testing.T) {
	// Two links sharing fiber f2, 12-pixel grid (150 GHz): two 75 GHz
	// channels exactly fill it; the MIP must pack them disjointly.
	p := Problem{
		Optical: lineTopology(t),
		IP: ipLinks(t,
			topology.IPLink{ID: "e1", A: "A", B: "C", DemandGbps: 200},
			topology.IPLink{ID: "e2", A: "B", B: "C", DemandGbps: 200},
		),
		Catalog: transponder.RADWAN(),
		Grid:    spectrum.Grid{PixelGHz: 12.5, Pixels: 12},
		K:       1,
	}
	r, err := SolveExact(p, solver.Options{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Transponders() != 2 {
		t.Errorf("exact transponders = %d, want 2", r.Transponders())
	}
	if err := Verify(p, r); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// TestSolveExactWorkersDeterministic: the seed planning MIP must report
// identical objective and status for any solver worker count (run under
// -race in CI to exercise the concurrent frontier).
func TestSolveExactWorkersDeterministic(t *testing.T) {
	p := Problem{
		Optical: lineTopology(t),
		IP: ipLinks(t,
			topology.IPLink{ID: "e1", A: "A", B: "C", DemandGbps: 200},
			topology.IPLink{ID: "e2", A: "B", B: "C", DemandGbps: 200},
		),
		Catalog: transponder.RADWAN(),
		Grid:    spectrum.Grid{PixelGHz: 12.5, Pixels: 12},
		K:       1,
	}
	ref, err := SolveExact(p, solver.Options{MaxNodes: 50000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Solver == nil || ref.Solver.Workers != 1 {
		t.Fatalf("reference SolveStats = %+v, want Workers 1", ref.Solver)
	}
	for _, w := range []int{2, 8} {
		r, err := SolveExact(p, solver.Options{MaxNodes: 50000, Workers: w})
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if r.Solver.Status != ref.Solver.Status || r.Solver.Objective != ref.Solver.Objective {
			t.Errorf("Workers=%d solve = (%v, %v), want (%v, %v)", w,
				r.Solver.Status, r.Solver.Objective, ref.Solver.Status, ref.Solver.Objective)
		}
		if r.Solver.Workers != w {
			t.Errorf("Workers=%d SolveStats.Workers = %d", w, r.Solver.Workers)
		}
		if r.Transponders() != ref.Transponders() {
			t.Errorf("Workers=%d transponders = %d, want %d", w, r.Transponders(), ref.Transponders())
		}
		if err := Verify(p, r); err != nil {
			t.Errorf("Workers=%d Verify: %v", w, err)
		}
	}
}

func TestHeuristicMatchesExactCount(t *testing.T) {
	// On instances the exact solver can handle, the heuristic must find
	// the same transponder count (its mode choice is provably count-
	// optimal per link when spectrum is plentiful).
	cases := []struct {
		demand int
		want   int
	}{
		{100, 1}, {300, 1}, {500, 2}, {600, 2}, {900, 3},
	}
	// Problems are built on the test goroutine (the helpers may t.Fatal);
	// the independent heuristic-vs-exact solves then run concurrently,
	// which also exercises Solve/SolveExact under -race.
	probs := make([]Problem, len(cases))
	for i, tc := range cases {
		probs[i] = Problem{
			Optical: lineTopology(t),
			IP:      ipLinks(t, topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: tc.demand}),
			Catalog: transponder.RADWAN(),
			Grid:    spectrum.Grid{PixelGHz: 12.5, Pixels: 24},
			K:       1,
		}
	}
	errs := parallel.ForEach(context.Background(), 0, len(cases), func(_ context.Context, i int) error {
		tc := cases[i]
		h, err := Solve(probs[i])
		if err != nil {
			return fmt.Errorf("demand %d: heuristic: %w", tc.demand, err)
		}
		e, err := SolveExact(probs[i], solver.Options{MaxNodes: 50000})
		if err != nil {
			return fmt.Errorf("demand %d: exact: %w", tc.demand, err)
		}
		if h.Transponders() != e.Transponders() {
			return fmt.Errorf("demand %d: heuristic %d vs exact %d transponders",
				tc.demand, h.Transponders(), e.Transponders())
		}
		if e.Transponders() != tc.want {
			return fmt.Errorf("demand %d: exact = %d, want %d", tc.demand, e.Transponders(), tc.want)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func TestSolveExactTooLarge(t *testing.T) {
	// A default-grid SVT instance explodes past the build cap and must be
	// refused, not attempted. The cap is per-engine (Options.MaxBuildVars):
	// the dense tableau refuses at its 8000-column default, and an explicit
	// Options.MaxVars binds regardless of engine.
	ip := &topology.IPTopology{}
	for i := 0; i < 10; i++ {
		id := string(rune('a' + i))
		if err := ip.AddLink(topology.IPLink{ID: id, A: "A", B: "D", DemandGbps: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	p := Problem{
		Optical: lineTopology(t),
		IP:      ip,
		Catalog: transponder.SVT(),
		Grid:    spectrum.DefaultGrid(),
		K:       3,
	}
	if _, err := SolveExact(p, solver.Options{DenseSimplex: true}); err == nil {
		t.Error("oversized exact MIP accepted by the dense engine cap")
	}
	if _, err := SolveExact(p, solver.Options{MaxVars: 100}); err == nil {
		t.Error("oversized exact MIP accepted despite explicit MaxVars")
	}
}

func TestWavelengthGap(t *testing.T) {
	w := Wavelength{
		Path: topology.Path{LengthKm: 400},
		Mode: transponder.Mode{ReachKm: 600},
	}
	if g := w.GapKm(); g != 200 {
		t.Errorf("GapKm = %v, want 200", g)
	}
}

func TestResultObjective(t *testing.T) {
	r := &Result{Wavelengths: []Wavelength{
		{Mode: transponder.Mode{DataRateGbps: 400, SpacingGHz: 75}},
		{Mode: transponder.Mode{DataRateGbps: 800, SpacingGHz: 150}},
	}}
	if r.Transponders() != 2 {
		t.Errorf("Transponders = %d", r.Transponders())
	}
	if r.SpectrumGHz() != 225 {
		t.Errorf("SpectrumGHz = %v", r.SpectrumGHz())
	}
	want := 2 + 0.01*225
	if got := r.Objective(0.01); got != want {
		t.Errorf("Objective = %v, want %v", got, want)
	}
}
