package plan

import (
	"fmt"
	"sort"

	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
)

// allocationOf rebuilds the spectrum allocation record of a wavelength.
func allocationOf(w Wavelength) spectrum.Allocation {
	return spectrum.Allocation{Fibers: fiberIDs(w.Path), Interval: w.Interval}
}

// Extend provisions additional capacity for one IP link on top of an
// existing plan, without disturbing any provisioned wavelength: the
// incremental-growth operation behind FlexWAN's smooth backbone evolution
// (§9 — demands grow monthly; replanning the whole network would churn
// live channels). New wavelengths are chosen exactly as Solve chooses
// them and placed in the plan's live allocator, so all Algorithm 1
// constraints keep holding; Verify accepts the extended result.
//
// The result is mutated in place; the newly provisioned wavelengths are
// also returned. When the addition cannot be fully served the link is
// recorded in r.Unserved and the partial wavelengths are kept (they carry
// real capacity), mirroring Solve's semantics.
func Extend(p Problem, r *Result, linkID string, extraGbps int) ([]Wavelength, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	if r == nil || r.Allocator == nil {
		return nil, fmt.Errorf("plan: Extend needs a result produced by Solve")
	}
	if extraGbps <= 0 {
		return nil, fmt.Errorf("plan: nonpositive capacity addition %d", extraGbps)
	}
	paths, ok := r.Paths[linkID]
	if !ok {
		// The link may be new since the base plan: compute its paths.
		var link *topology.IPLink
		for i := range p.IP.Links {
			if p.IP.Links[i].ID == linkID {
				link = &p.IP.Links[i]
				break
			}
		}
		if link == nil {
			return nil, fmt.Errorf("plan: unknown IP link %s", linkID)
		}
		ps := p.Optical.KShortestPaths(link.A, link.B, p.k())
		if len(ps) == 0 {
			return nil, fmt.Errorf("plan: no optical path for IP link %s", linkID)
		}
		if r.Paths == nil {
			r.Paths = make(map[string][]topology.Path)
		}
		r.Paths[linkID] = ps
		paths = ps
	}

	var added []Wavelength
	remaining := extraGbps
	for remaining > 0 {
		w, ok := placeOne(p, r, linkID, paths, remaining)
		if !ok {
			break
		}
		r.Wavelengths = append(r.Wavelengths, w)
		added = append(added, w)
		remaining -= w.Mode.DataRateGbps
	}
	lp := r.PerLink[linkID]
	lp.DemandGbps += extraGbps
	for _, w := range added {
		lp.Wavelengths++
		lp.ProvisionedGbps += w.Mode.DataRateGbps
	}
	r.PerLink[linkID] = lp
	if remaining > 0 {
		found := false
		for _, id := range r.Unserved {
			if id == linkID {
				found = true
				break
			}
		}
		if !found {
			r.Unserved = append(r.Unserved, linkID)
			sort.Strings(r.Unserved)
		}
	}
	return added, nil
}

// Decommission releases all wavelengths of an IP link, returning their
// spectrum to the allocator — the tear-down half of backbone evolution.
// It returns the number of transponder pairs freed.
func Decommission(r *Result, linkID string) (int, error) {
	if r == nil || r.Allocator == nil {
		return 0, fmt.Errorf("plan: Decommission needs a result produced by Solve")
	}
	kept := r.Wavelengths[:0]
	freed := 0
	for _, w := range r.Wavelengths {
		if w.LinkID != linkID {
			kept = append(kept, w)
			continue
		}
		if err := r.Allocator.Release(allocationOf(w)); err != nil {
			return freed, fmt.Errorf("plan: releasing %s: %w", linkID, err)
		}
		freed++
	}
	r.Wavelengths = kept
	delete(r.PerLink, linkID)
	remaining := r.Unserved[:0]
	for _, id := range r.Unserved {
		if id != linkID {
			remaining = append(remaining, id)
		}
	}
	r.Unserved = remaining
	return freed, nil
}
