package plan

import (
	"fmt"
	"sort"

	"flexwan/internal/solver"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// MaxExactVars bounds the size of the exact MIP. Beyond this the
// formulation is handed to the heuristic in practice; SolveExact refuses
// rather than thrash. The dense-tableau simplex underneath handles a few
// thousand columns comfortably; production-scale instances (hundreds of
// links on a 384-pixel grid) are far past it, exactly as the paper's
// Gurobi runs take "hours of runtime" on theirs.
const MaxExactVars = 8000

// SolveStats records how an exact MIP search terminated: final solver
// status, branch-and-bound nodes explored, workers used, the proven
// optimality gap, and the LP work underneath (simplex pivots, dual-simplex
// warm-start hits, branching rule, presolve reductions). Nil on heuristic
// results.
type SolveStats struct {
	Status        solver.Status
	Objective     float64
	Nodes         int
	Workers       int
	Gap           float64
	SimplexIters  int
	WarmStartHits int
	Branching     solver.BranchRule
	PresolveRows  int
	PresolveCols  int
}

// NewSolveStats copies the search statistics out of a solver Solution.
func NewSolveStats(sol solver.Solution) *SolveStats {
	return &SolveStats{
		Status: sol.Status, Objective: sol.Objective,
		Nodes: sol.Nodes, Workers: sol.Workers, Gap: sol.Gap,
		SimplexIters: sol.SimplexIters, WarmStartHits: sol.WarmStartHits,
		Branching:    sol.Branching,
		PresolveRows: sol.PresolveRows, PresolveCols: sol.PresolveCols,
	}
}

// gammaVar mirrors the paper's γ^{e,k}_{j,q}: link e uses, on its k-th
// candidate path, a transponder at format j whose channel starts at pixel
// q.
type gammaVar struct {
	linkID    string
	pathIndex int
	path      topology.Path
	mode      transponder.Mode
	startQ    int
	pixels    int
	id        solver.VarID
}

// SolveExact builds Algorithm 1 as a mixed-integer program and solves it
// with the internal branch-and-bound. The formulation follows the paper
// exactly, with one standard encoding observation: fixing a wavelength's
// format j and starting pixel q determines its slot occupancy s_w^{j,q}
// on every fiber of its path, so constraints (4)–(6) (consistency,
// status, transponder count) hold by construction and only (1) capacity
// and (3) conflict appear as rows. Constraint (2) reach is enforced by
// never creating infeasible (path, format) variables.
func SolveExact(p Problem, opts solver.Options) (*Result, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	paths, err := candidatePaths(p)
	if err != nil {
		return nil, err
	}

	m := solver.NewModel("flexwan-planning", solver.Minimize)
	var gammas []gammaVar
	// slotUsers[fiber][w] lists variables occupying pixel w on the fiber.
	slotUsers := make(map[string][][]solver.VarID)

	// A channel of the same format may be needed more than once per
	// (link, path): the binary γ encoding expresses multiplicity through
	// distinct starting pixels q, exactly as the paper defines the q-th
	// order.
	for _, link := range p.IP.Links {
		var linkTerms []solver.Term
		for pi, path := range paths[link.ID] {
			for _, mode := range p.Catalog.FeasibleModes(path.LengthKm) {
				pixels := mode.Pixels(p.Grid)
				if pixels > p.Grid.Pixels {
					continue
				}
				for q := 0; q+pixels <= p.Grid.Pixels; q++ {
					name := fmt.Sprintf("g[%s,%d,%s,%d]", link.ID, pi, mode, q)
					obj := 1 + p.epsilon()*mode.SpacingGHz
					id := m.AddBinVar(name, obj)
					gammas = append(gammas, gammaVar{
						linkID: link.ID, pathIndex: pi, path: path,
						mode: mode, startQ: q, pixels: pixels, id: id,
					})
					linkTerms = append(linkTerms, solver.Term{Var: id, Coef: float64(mode.DataRateGbps)})
					for _, f := range path.Fibers {
						rows, ok := slotUsers[f]
						if !ok {
							rows = make([][]solver.VarID, p.Grid.Pixels)
							slotUsers[f] = rows
						}
						for w := q; w < q+pixels; w++ {
							rows[w] = append(rows[w], id)
						}
					}
					if m.NumVars() > MaxExactVars {
						return nil, fmt.Errorf("plan: exact MIP exceeds %d variables; use the heuristic Solve", MaxExactVars)
					}
				}
			}
		}
		if len(linkTerms) == 0 {
			return nil, fmt.Errorf("plan: no feasible (path, mode) for link %s", link.ID)
		}
		// Constraint (1): capacity.
		if err := m.AddConstraint("cap["+link.ID+"]", linkTerms, solver.GE, float64(link.DemandGbps)); err != nil {
			return nil, err
		}
	}

	// Constraint (3): each pixel of each fiber used at most once.
	fibers := make([]string, 0, len(slotUsers))
	for f := range slotUsers {
		fibers = append(fibers, f)
	}
	sort.Strings(fibers)
	for _, f := range fibers {
		for w, users := range slotUsers[f] {
			if len(users) < 2 {
				continue // a single candidate cannot conflict
			}
			terms := make([]solver.Term, len(users))
			for i, id := range users {
				terms[i] = solver.Term{Var: id, Coef: 1}
			}
			name := fmt.Sprintf("slot[%s,%d]", f, w)
			if err := m.AddConstraint(name, terms, solver.LE, 1); err != nil {
				return nil, err
			}
		}
	}

	sol, err := m.SolveWithOptions(opts)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	switch sol.Status {
	case solver.Infeasible:
		return nil, fmt.Errorf("plan: exact MIP infeasible (demand exceeds spectrum or reach)")
	case solver.Unbounded:
		return nil, fmt.Errorf("plan: exact MIP unbounded — formulation bug")
	case solver.LimitReached:
		if len(sol.Values) == 0 {
			return nil, fmt.Errorf("plan: node limit reached with no incumbent")
		}
		// Fall through with the incumbent: still a valid plan, possibly
		// suboptimal; Gap reports how far.
	}

	res := &Result{
		PerLink:   make(map[string]LinkPlan, len(p.IP.Links)),
		Paths:     paths,
		Allocator: spectrum.NewAllocator(p.Grid),
		Solver:    NewSolveStats(sol),
	}
	for _, l := range p.IP.Links {
		res.PerLink[l.ID] = LinkPlan{DemandGbps: l.DemandGbps}
	}
	for _, g := range gammas {
		if sol.IntValue(g.id) != 1 {
			continue
		}
		iv := spectrum.Interval{Start: g.startQ, Count: g.pixels}
		if err := res.Allocator.AllocateExact(fiberIDs(g.path), iv); err != nil {
			return nil, fmt.Errorf("plan: MIP solution violates spectrum constraints: %w", err)
		}
		res.Wavelengths = append(res.Wavelengths, Wavelength{
			LinkID:    g.linkID,
			PathIndex: g.pathIndex,
			Path:      g.path,
			Mode:      g.mode,
			Interval:  iv,
		})
		lp := res.PerLink[g.linkID]
		lp.Wavelengths++
		lp.ProvisionedGbps += g.mode.DataRateGbps
		res.PerLink[g.linkID] = lp
	}
	return res, nil
}
