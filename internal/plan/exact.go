package plan

import (
	"fmt"
	"sort"
	"strconv"

	"flexwan/internal/solver"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// SolveStats records how an exact MIP search terminated: final solver
// status, branch-and-bound nodes explored, workers used, the proven
// optimality gap, and the LP work underneath (simplex pivots, dual-simplex
// warm-start hits, branching rule, presolve reductions). Nil on heuristic
// results.
type SolveStats struct {
	Status        solver.Status
	Objective     float64
	Nodes         int
	Workers       int
	Gap           float64
	SimplexIters  int
	WarmStartHits int
	Branching     solver.BranchRule
	PresolveRows  int
	PresolveCols  int

	// PricingMode is the dual-simplex pricing rule the LP engines ran
	// under; BoundFlips and WeightResets are its companion counters (boxed
	// nonbasic variables the long-step ratio test flipped bound-to-bound,
	// and pricing-weight reference resets).
	PricingMode  solver.PricingRule
	BoundFlips   int
	WeightResets int

	// LU/basis health of the revised-simplex engines underneath the search:
	// full refactorizations, in-place basis updates (Forrest–Tomlin or eta
	// append), FTRAN/BTRAN counts, peak U fill, solves that fell back to the
	// dense tableau, and bounds tightened by per-node presolve propagation.
	Refactorizations    int
	BasisUpdates        int
	FTRANCount          int
	BTRANCount          int
	PeakUFill           int
	DenseFallbacks      int
	NodePresolveFixings int
}

// NewSolveStats copies the search statistics out of a solver Solution.
func NewSolveStats(sol solver.Solution) *SolveStats {
	return &SolveStats{
		Status: sol.Status, Objective: sol.Objective,
		Nodes: sol.Nodes, Workers: sol.Workers, Gap: sol.Gap,
		SimplexIters: sol.SimplexIters, WarmStartHits: sol.WarmStartHits,
		Branching:    sol.Branching,
		PricingMode:  sol.Pricing, BoundFlips: sol.BoundFlips, WeightResets: sol.WeightResets,
		PresolveRows: sol.PresolveRows, PresolveCols: sol.PresolveCols,
		Refactorizations: sol.Refactorizations, BasisUpdates: sol.BasisUpdates,
		FTRANCount: sol.FTRANCount, BTRANCount: sol.BTRANCount,
		PeakUFill: sol.PeakUFill, DenseFallbacks: sol.DenseFallbacks,
		NodePresolveFixings: sol.NodePresolveFixings,
	}
}

// gammaVar mirrors the paper's γ^{e,k}_{j,q}: link e uses, on its k-th
// candidate path, a transponder at format j whose channel starts at pixel
// q.
type gammaVar struct {
	linkID    string
	pathIndex int
	path      topology.Path
	mode      transponder.Mode
	startQ    int
	pixels    int
	id        solver.VarID
}

// SolveExact builds Algorithm 1 as a mixed-integer program and solves it
// with the internal branch-and-bound. The formulation follows the paper
// exactly, with one standard encoding observation: fixing a wavelength's
// format j and starting pixel q determines its slot occupancy s_w^{j,q}
// on every fiber of its path, so constraints (4)–(6) (consistency,
// status, transponder count) hold by construction and only (1) capacity
// and (3) conflict appear as rows. Constraint (2) reach is enforced by
// never creating infeasible (path, format) variables.
//
// The build refuses — rather than thrash — once the variable count
// passes opts.MaxBuildVars(): 8000 columns under Options.DenseSimplex
// (the dense tableau's memory is quadratic in the standard-form size),
// 250000 under the default revised engine, or Options.MaxVars verbatim
// when set. Production-scale instances (hundreds of links on a 384-pixel
// grid) still belong to the heuristic Solve, exactly as the paper's
// Gurobi runs take "hours of runtime" on theirs.
func SolveExact(p Problem, opts solver.Options) (*Result, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	paths, err := candidatePaths(p)
	if err != nil {
		return nil, err
	}

	m := solver.NewModel("flexwan-planning", solver.Minimize)
	// slotUsers[fiber][w] lists variables occupying pixel w on the fiber.
	slotUsers := make(map[string][][]solver.VarID)

	// Pre-pass: resolve the feasible (path, mode) sets once and count the
	// γ variables, so the over-cap refusal happens before any model is
	// built and every append target below is allocated at final size —
	// append doubling otherwise dominates build garbage on large grids.
	type pathModes struct {
		path  topology.Path
		modes []transponder.Mode
	}
	maxVars := opts.MaxBuildVars()
	feas := make(map[string][]pathModes, len(p.IP.Links))
	perLink := make(map[string]int, len(p.IP.Links))
	nGamma := 0
	for _, link := range p.IP.Links {
		pms := make([]pathModes, 0, len(paths[link.ID]))
		n := 0
		for _, path := range paths[link.ID] {
			modes := p.Catalog.FeasibleModes(path.LengthKm)
			pms = append(pms, pathModes{path: path, modes: modes})
			for _, mode := range modes {
				if px := mode.Pixels(p.Grid); px <= p.Grid.Pixels {
					n += p.Grid.Pixels - px + 1
				}
			}
		}
		feas[link.ID] = pms
		perLink[link.ID] = n
		nGamma += n
	}
	if nGamma > maxVars {
		return nil, fmt.Errorf("plan: exact MIP exceeds %d variables (Options.MaxVars; default per LP engine); use the heuristic Solve or raise the cap", maxVars)
	}
	m.Grow(nGamma, len(p.IP.Links))
	gammas := make([]gammaVar, 0, nGamma)

	// A channel of the same format may be needed more than once per
	// (link, path): the binary γ encoding expresses multiplicity through
	// distinct starting pixels q, exactly as the paper defines the q-th
	// order.
	for _, link := range p.IP.Links {
		linkTerms := make([]solver.Term, 0, perLink[link.ID])
		for pi, pm := range feas[link.ID] {
			path := pm.path
			for _, mode := range pm.modes {
				pixels := mode.Pixels(p.Grid)
				if pixels > p.Grid.Pixels {
					continue
				}
				// One name prefix per (link, path, mode): the per-variable
				// name is then a single concatenation, not an fmt.Sprintf —
				// variable naming used to dominate build allocations.
				prefix := "g[" + link.ID + "," + strconv.Itoa(pi) + "," + mode.String() + ","
				for q := 0; q+pixels <= p.Grid.Pixels; q++ {
					name := prefix + strconv.Itoa(q) + "]"
					obj := 1 + p.epsilon()*mode.SpacingGHz
					id := m.AddBinVar(name, obj)
					gammas = append(gammas, gammaVar{
						linkID: link.ID, pathIndex: pi, path: path,
						mode: mode, startQ: q, pixels: pixels, id: id,
					})
					linkTerms = append(linkTerms, solver.Term{Var: id, Coef: float64(mode.DataRateGbps)})
					for _, f := range path.Fibers {
						rows, ok := slotUsers[f]
						if !ok {
							rows = make([][]solver.VarID, p.Grid.Pixels)
							slotUsers[f] = rows
						}
						for w := q; w < q+pixels; w++ {
							rows[w] = append(rows[w], id)
						}
					}
				}
			}
		}
		if len(linkTerms) == 0 {
			return nil, fmt.Errorf("plan: no feasible (path, mode) for link %s", link.ID)
		}
		// Constraint (1): capacity.
		if err := m.AddConstraint("cap["+link.ID+"]", linkTerms, solver.GE, float64(link.DemandGbps)); err != nil {
			return nil, err
		}
	}

	// Constraint (3): each pixel of each fiber used at most once.
	fibers := make([]string, 0, len(slotUsers))
	for f := range slotUsers {
		fibers = append(fibers, f)
	}
	sort.Strings(fibers)
	var terms []solver.Term // reused row buffer; AddConstraint copies
	for _, f := range fibers {
		for w, users := range slotUsers[f] {
			if len(users) < 2 {
				continue // a single candidate cannot conflict
			}
			terms = terms[:0]
			for _, id := range users {
				terms = append(terms, solver.Term{Var: id, Coef: 1})
			}
			name := "slot[" + f + "," + strconv.Itoa(w) + "]"
			if err := m.AddConstraint(name, terms, solver.LE, 1); err != nil {
				return nil, err
			}
		}
	}

	sol, err := m.SolveWithOptions(opts)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	switch sol.Status {
	case solver.Infeasible:
		return nil, fmt.Errorf("plan: exact MIP infeasible (demand exceeds spectrum or reach)")
	case solver.Unbounded:
		return nil, fmt.Errorf("plan: exact MIP unbounded — formulation bug")
	case solver.LimitReached, solver.IterLimit:
		if len(sol.Values) == 0 {
			return nil, fmt.Errorf("plan: solve limit (%s) reached with no incumbent", sol.Status)
		}
		// Fall through with the incumbent: still a valid plan, possibly
		// suboptimal; Gap reports how far.
	}

	res := &Result{
		PerLink:   make(map[string]LinkPlan, len(p.IP.Links)),
		Paths:     paths,
		Allocator: spectrum.NewAllocator(p.Grid),
		Solver:    NewSolveStats(sol),
	}
	for _, l := range p.IP.Links {
		res.PerLink[l.ID] = LinkPlan{DemandGbps: l.DemandGbps}
	}
	for _, g := range gammas {
		if sol.IntValue(g.id) != 1 {
			continue
		}
		iv := spectrum.Interval{Start: g.startQ, Count: g.pixels}
		if err := res.Allocator.AllocateExact(fiberIDs(g.path), iv); err != nil {
			return nil, fmt.Errorf("plan: MIP solution violates spectrum constraints: %w", err)
		}
		res.Wavelengths = append(res.Wavelengths, Wavelength{
			LinkID:    g.linkID,
			PathIndex: g.pathIndex,
			Path:      g.path,
			Mode:      g.mode,
			Interval:  iv,
		})
		lp := res.PerLink[g.linkID]
		lp.Wavelengths++
		lp.ProvisionedGbps += g.mode.DataRateGbps
		res.PerLink[g.linkID] = lp
	}
	return res, nil
}
