// Package devmodel defines FlexWAN's standard device model (§4.3 of the
// paper): a uniform, vendor-agnostic abstraction of heterogeneous optical
// devices. Every vendor maps its hardware onto the same logical
// components and configuration documents, so one centralized controller
// can interface with all of them.
//
// The paper issues YANG documents over NETCONF; in this stdlib-only
// reproduction the documents are the JSON-encoded structures below,
// carried by the NETCONF-like RPC protocol in internal/netconf. The
// semantics — typed per-device-class configs, validation before apply,
// and uniform state retrieval — match.
package devmodel

import (
	"fmt"

	"flexwan/internal/spectrum"
)

// Class is the device class in the standard model.
type Class string

// Device classes of the optical layer (Figure 1 of the paper).
const (
	ClassTransponder Class = "transponder"
	ClassWSS         Class = "wss"       // pixel-wise WSS inside MUX/ROADM
	ClassAmplifier   Class = "amplifier" // EDFA line amplifier
)

// Descriptor identifies one managed device. Each device is allocated an
// IP address the controller uses to locate it (§4.3).
type Descriptor struct {
	ID      string `json:"id"`
	Class   Class  `json:"class"`
	Vendor  string `json:"vendor"`
	Address string `json:"address"` // host:port of the management endpoint
	// Site is the ROADM site hosting the device (optical TopoMgr key).
	Site string `json:"site"`
	// Fiber, for WSS/amplifier devices, names the fiber whose spectrum
	// the device filters or amplifies.
	Fiber string `json:"fiber,omitempty"`
}

// Validate checks the descriptor's required fields.
func (d Descriptor) Validate() error {
	if d.ID == "" {
		return fmt.Errorf("devmodel: empty device ID")
	}
	switch d.Class {
	case ClassTransponder, ClassWSS, ClassAmplifier:
	default:
		return fmt.Errorf("devmodel: device %s has unknown class %q", d.ID, d.Class)
	}
	if d.Address == "" {
		return fmt.Errorf("devmodel: device %s has no management address", d.ID)
	}
	return nil
}

// TransponderConfig is the standard configuration document for a
// transponder: the operating mode of the generated wavelength and the
// spectrum it occupies. The control unit inside the device maps these
// parameters onto its FEC module, DSP and EOM (§4.2).
type TransponderConfig struct {
	Enabled      bool    `json:"enabled"`
	DataRateGbps int     `json:"data-rate-gbps"`
	SpacingGHz   float64 `json:"spacing-ghz"`
	BaudGBd      float64 `json:"baud-gbd"`
	Modulation   string  `json:"modulation"`
	FEC          string  `json:"fec"`
	// Interval is the pixel interval of the wavelength in the fiber.
	IntervalStart int `json:"interval-start"`
	IntervalCount int `json:"interval-count"`
	// PathFibers is the provisioned optical circuit: the fiber segments
	// the wavelength traverses, in order. The device measures its
	// received OSNR over this route.
	PathFibers []string `json:"path-fibers"`
	// Channel names the wavelength for cross-device correlation
	// ("<link>:<index>", matching the WSS passband channel).
	Channel string `json:"channel"`
}

// Interval returns the configured spectrum interval.
func (c TransponderConfig) Interval() spectrum.Interval {
	return spectrum.Interval{Start: c.IntervalStart, Count: c.IntervalCount}
}

// Validate checks internal consistency of the document against a grid.
func (c TransponderConfig) Validate(grid spectrum.Grid) error {
	if !c.Enabled {
		return nil
	}
	if c.DataRateGbps <= 0 {
		return fmt.Errorf("devmodel: transponder data rate %d invalid", c.DataRateGbps)
	}
	if c.SpacingGHz <= 0 {
		return fmt.Errorf("devmodel: transponder spacing %v invalid", c.SpacingGHz)
	}
	iv := c.Interval()
	if !iv.Valid(grid) {
		return fmt.Errorf("devmodel: transponder interval %v outside grid", iv)
	}
	need, err := grid.PixelsFor(c.SpacingGHz)
	if err != nil {
		return err
	}
	if iv.Count != need {
		return fmt.Errorf("devmodel: interval %v (%d px) does not carry spacing %v GHz (%d px)",
			iv, iv.Count, c.SpacingGHz, need)
	}
	return nil
}

// Passband is one filter-port passband of a WSS: the contiguous pixel
// range it passes for one wavelength.
type Passband struct {
	// Channel names the wavelength this passband serves (the controller
	// uses "<link>:<index>" identifiers).
	Channel string `json:"channel"`
	Start   int    `json:"start"`
	Count   int    `json:"count"`
}

// Interval returns the passband's pixel interval.
func (p Passband) Interval() spectrum.Interval {
	return spectrum.Interval{Start: p.Start, Count: p.Count}
}

// WSSConfig is the standard configuration document for a pixel-wise WSS
// (inside a MUX or ROADM): the set of passbands on one fiber's spectrum.
type WSSConfig struct {
	Passbands []Passband `json:"passbands"`
}

// Validate checks that all passbands lie on the grid and do not overlap —
// an overlapping WSS configuration is exactly the channel-conflict
// failure of Figure 5(b).
func (c WSSConfig) Validate(grid spectrum.Grid) error {
	for i, p := range c.Passbands {
		if p.Channel == "" {
			return fmt.Errorf("devmodel: passband %d has no channel", i)
		}
		if !p.Interval().Valid(grid) {
			return fmt.Errorf("devmodel: passband %s interval %v outside grid", p.Channel, p.Interval())
		}
		for j := 0; j < i; j++ {
			if p.Interval().Overlaps(c.Passbands[j].Interval()) {
				return fmt.Errorf("devmodel: passbands %s and %s overlap (%v vs %v)",
					c.Passbands[j].Channel, p.Channel, c.Passbands[j].Interval(), p.Interval())
			}
		}
	}
	return nil
}

// Find returns the passband serving the channel.
func (c WSSConfig) Find(channel string) (Passband, bool) {
	for _, p := range c.Passbands {
		if p.Channel == channel {
			return p, true
		}
	}
	return Passband{}, false
}

// TransponderState is the standard state document a transponder reports:
// the §6 testbed reads PostFECBER to find maximum reach, and the data
// stream module (§4.4) collects these at one-second granularity.
type TransponderState struct {
	Config     TransponderConfig `json:"config"`
	RxOSNRdB   float64           `json:"rx-osnr-db"`
	PreFECBER  float64           `json:"pre-fec-ber"`
	PostFECBER float64           `json:"post-fec-ber"`
	RxPowerDBm float64           `json:"rx-power-dbm"`
	// LossOfSignal is raised when the line is dark (fiber cut upstream).
	LossOfSignal bool `json:"loss-of-signal"`
}

// AmplifierState is the standard state document an EDFA reports. The
// controller's data stream uses the output-power collapse of the
// amplifiers on a fiber to localize cuts.
type AmplifierState struct {
	GainDB      float64 `json:"gain-db"`
	OutPowerDBm float64 `json:"out-power-dbm"`
	// LossOfSignal is raised when no light arrives at the input.
	LossOfSignal bool `json:"loss-of-signal"`
}
