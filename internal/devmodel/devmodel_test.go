package devmodel

import (
	"testing"

	"flexwan/internal/spectrum"
)

func grid() spectrum.Grid { return spectrum.DefaultGrid() }

func TestDescriptorValidate(t *testing.T) {
	good := Descriptor{ID: "t1", Class: ClassTransponder, Vendor: "A", Address: "127.0.0.1:1", Site: "S"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid descriptor rejected: %v", err)
	}
	bad := good
	bad.ID = ""
	if bad.Validate() == nil {
		t.Error("empty ID accepted")
	}
	bad = good
	bad.Class = "router"
	if bad.Validate() == nil {
		t.Error("unknown class accepted")
	}
	bad = good
	bad.Address = ""
	if bad.Validate() == nil {
		t.Error("missing address accepted")
	}
}

func TestTransponderConfigValidate(t *testing.T) {
	good := TransponderConfig{
		Enabled: true, DataRateGbps: 400, SpacingGHz: 75,
		IntervalStart: 0, IntervalCount: 6,
	}
	if err := good.Validate(grid()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// Disabled configs skip validation entirely.
	disabled := TransponderConfig{Enabled: false, DataRateGbps: -1}
	if err := disabled.Validate(grid()); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
	bad := good
	bad.DataRateGbps = 0
	if bad.Validate(grid()) == nil {
		t.Error("zero rate accepted")
	}
	bad = good
	bad.SpacingGHz = -75
	if bad.Validate(grid()) == nil {
		t.Error("negative spacing accepted")
	}
	bad = good
	bad.IntervalCount = 5 // 75 GHz needs 6 pixels
	if bad.Validate(grid()) == nil {
		t.Error("interval/spacing mismatch accepted")
	}
	bad = good
	bad.IntervalStart = 380 // runs past pixel 384
	if bad.Validate(grid()) == nil {
		t.Error("out-of-grid interval accepted")
	}
}

func TestWSSConfigValidate(t *testing.T) {
	good := WSSConfig{Passbands: []Passband{
		{Channel: "e1:0", Start: 0, Count: 6},
		{Channel: "e2:0", Start: 6, Count: 8},
	}}
	if err := good.Validate(grid()); err != nil {
		t.Errorf("valid WSS config rejected: %v", err)
	}
	overlap := WSSConfig{Passbands: []Passband{
		{Channel: "a", Start: 0, Count: 6},
		{Channel: "b", Start: 5, Count: 6},
	}}
	if overlap.Validate(grid()) == nil {
		t.Error("overlapping passbands accepted (channel conflict)")
	}
	unnamed := WSSConfig{Passbands: []Passband{{Start: 0, Count: 6}}}
	if unnamed.Validate(grid()) == nil {
		t.Error("unnamed passband accepted")
	}
	outside := WSSConfig{Passbands: []Passband{{Channel: "x", Start: 382, Count: 6}}}
	if outside.Validate(grid()) == nil {
		t.Error("out-of-grid passband accepted")
	}
}

func TestWSSConfigFind(t *testing.T) {
	cfg := WSSConfig{Passbands: []Passband{{Channel: "e1:0", Start: 4, Count: 6}}}
	p, ok := cfg.Find("e1:0")
	if !ok || p.Start != 4 {
		t.Errorf("Find = %+v, %v", p, ok)
	}
	if _, ok := cfg.Find("missing"); ok {
		t.Error("Find(missing) succeeded")
	}
}

func TestIntervalHelpers(t *testing.T) {
	c := TransponderConfig{IntervalStart: 3, IntervalCount: 6}
	if iv := c.Interval(); iv.Start != 3 || iv.Count != 6 {
		t.Errorf("Interval = %v", iv)
	}
	p := Passband{Start: 2, Count: 4}
	if iv := p.Interval(); iv.Start != 2 || iv.Count != 4 {
		t.Errorf("Passband.Interval = %v", iv)
	}
}

func TestStandardModel(t *testing.T) {
	m := StandardModel()
	for _, class := range []Class{ClassTransponder, ClassWSS, ClassAmplifier} {
		spec, ok := m[class]
		if !ok {
			t.Errorf("no model for %s", class)
			continue
		}
		if spec.Class != class {
			t.Errorf("%s spec carries class %s", class, spec.Class)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s model invalid: %v", class, err)
		}
		if len(spec.Components) == 0 || len(spec.Workflow) == 0 {
			t.Errorf("%s model empty", class)
		}
	}
	// The transponder model mirrors Figure 7: control unit + FEC/DSP/EOM.
	names := map[string]bool{}
	for _, c := range m[ClassTransponder].Components {
		names[c.Name] = true
	}
	for _, want := range []string{"control-unit", "fec", "dsp", "eom"} {
		if !names[want] {
			t.Errorf("transponder model missing %s", want)
		}
	}
}

func TestModelSpecValidate(t *testing.T) {
	bad := ModelSpec{Class: ClassWSS, Components: []Component{{Name: "a"}}, Workflow: [][2]string{{"a", "ghost"}}}
	if bad.Validate() == nil {
		t.Error("dangling workflow edge accepted")
	}
	dup := ModelSpec{Class: ClassWSS, Components: []Component{{Name: "a"}, {Name: "a"}}}
	if dup.Validate() == nil {
		t.Error("duplicate component accepted")
	}
	unnamed := ModelSpec{Class: ClassWSS, Components: []Component{{}}}
	if unnamed.Validate() == nil {
		t.Error("unnamed component accepted")
	}
}
