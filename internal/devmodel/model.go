package devmodel

import "fmt"

// Component is one logical block of the standard device model — the
// vendor-neutral abstraction every vendor maps its hardware onto (§4.3:
// "heterogeneous devices across vendors are uniformly abstracted into a
// group of logic components").
type Component struct {
	Name string `json:"name"`
	Role string `json:"role"`
}

// ModelSpec describes one device class in the standard model: its logic
// components and the signal workflow between them ("the device model
// provides the mapping of these abstracted logic components to specify
// the detailed workflow between them").
type ModelSpec struct {
	Class      Class       `json:"class"`
	Components []Component `json:"components"`
	// Workflow lists directed component-name pairs: signal or control
	// flow from the first to the second.
	Workflow [][2]string `json:"workflow"`
}

// Validate checks that every workflow edge references declared
// components.
func (m ModelSpec) Validate() error {
	names := make(map[string]bool, len(m.Components))
	for _, c := range m.Components {
		if c.Name == "" {
			return fmt.Errorf("devmodel: %s model has unnamed component", m.Class)
		}
		if names[c.Name] {
			return fmt.Errorf("devmodel: %s model duplicates component %s", m.Class, c.Name)
		}
		names[c.Name] = true
	}
	for _, e := range m.Workflow {
		if !names[e[0]] || !names[e[1]] {
			return fmt.Errorf("devmodel: %s workflow edge %v references unknown component", m.Class, e)
		}
	}
	return nil
}

// StandardModel returns the standard device model for every class — the
// component structure of Figure 7 (transponder: control unit over FEC,
// DSP, EOM) and §4.2's spectrum-sliced OLS elements. Vendors whose
// devices expose these components under this mapping can be managed by
// the centralized controller without vendor-specific code.
func StandardModel() map[Class]ModelSpec {
	return map[Class]ModelSpec{
		ClassTransponder: {
			Class: ClassTransponder,
			Components: []Component{
				{Name: "control-unit", Role: "receives configuration parameters from the controller and programs each module"},
				{Name: "fec", Role: "forward error correction with selectable redundancy ratios"},
				{Name: "dsp", Role: "meshed baud-rate and modulation-format workflows, including PCS"},
				{Name: "eom", Role: "electro-optic modulator generating the wavelength at the configured channel spacing"},
			},
			Workflow: [][2]string{
				{"control-unit", "fec"},
				{"control-unit", "dsp"},
				{"control-unit", "eom"},
				{"fec", "dsp"},
				{"dsp", "eom"},
			},
		},
		ClassWSS: {
			Class: ClassWSS,
			Components: []Component{
				{Name: "control-unit", Role: "maps passband documents onto pixel selections"},
				{Name: "pixel-array", Role: "LCoS pixel matrix slicing the grid at 12.5 GHz or finer"},
				{Name: "filter-ports", Role: "per-channel passbands built from contiguous pixels"},
			},
			Workflow: [][2]string{
				{"control-unit", "pixel-array"},
				{"pixel-array", "filter-ports"},
			},
		},
		ClassAmplifier: {
			Class: ClassAmplifier,
			Components: []Component{
				{Name: "gain-block", Role: "erbium-doped fiber stage compensating span loss"},
				{Name: "monitor", Role: "input/output photodiodes feeding the data stream"},
			},
			Workflow: [][2]string{
				{"gain-block", "monitor"},
			},
		},
	}
}
