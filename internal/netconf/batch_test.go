package netconf

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// startRecorder runs a server whose handler records every (op, payload)
// it sees, rejecting any document equal to rejectDoc.
func startRecorder(t *testing.T, rejectDoc string) (*Server, string, func() []string) {
	t.Helper()
	var mu sync.Mutex
	var applied []string
	srv := NewServer(echoHello{Name: "dev1"}, func(op string, payload json.RawMessage) (interface{}, error) {
		var doc string
		if err := json.Unmarshal(payload, &doc); err != nil {
			return nil, err
		}
		if rejectDoc != "" && doc == rejectDoc {
			return nil, fmt.Errorf("unsupported document %q", doc)
		}
		mu.Lock()
		applied = append(applied, op+":"+doc)
		mu.Unlock()
		return nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), applied...)
	}
}

// TestBatchEditAppliesInOrder proves one edit-config-batch RPC applies
// every document, in order, as individual edit-configs — the device
// sees the same pipeline a serial push would send, in one round trip.
func TestBatchEditAppliesInOrder(t *testing.T) {
	_, addr, applied := startRecorder(t, "")
	c := dialFast(t, addr)
	batch, err := NewBatchEdit("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Call(OpEditConfigBatch, batch, nil); err != nil {
		t.Fatal(err)
	}
	want := []string{OpEditConfig + `:a`, OpEditConfig + `:b`, OpEditConfig + `:c`}
	got := applied()
	if len(got) != len(want) {
		t.Fatalf("applied %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("applied %v, want %v", got, want)
		}
	}
}

// TestBatchEditRejectionAborts proves the first rejected document stops
// the batch: earlier documents stay applied (absolute documents make
// the re-push idempotent), later ones never run, and the error is a
// device NACK naming the offending position — not a transient failure.
func TestBatchEditRejectionAborts(t *testing.T) {
	_, addr, applied := startRecorder(t, "b")
	c := dialFast(t, addr)
	batch, err := NewBatchEdit("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	callErr := c.Call(OpEditConfigBatch, batch, nil)
	var rpcErr *RPCError
	if !errors.As(callErr, &rpcErr) {
		t.Fatalf("batch rejection returned %v, want RPCError", callErr)
	}
	if IsTransient(callErr) {
		t.Error("batch NACK misclassified as transient")
	}
	if !strings.Contains(rpcErr.Msg, "batch document 2/3") {
		t.Errorf("NACK %q does not name the rejected position", rpcErr.Msg)
	}
	got := applied()
	if len(got) != 1 || got[0] != OpEditConfig+`:a` {
		t.Fatalf("applied %v, want only document a", got)
	}
}

// TestBatchEditSingleDocEquivalent proves a one-document batch behaves
// exactly like a plain edit-config.
func TestBatchEditSingleDocEquivalent(t *testing.T) {
	_, addr, applied := startRecorder(t, "")
	c := dialFast(t, addr)
	batch, err := NewBatchEdit("solo")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Call(OpEditConfigBatch, batch, nil); err != nil {
		t.Fatal(err)
	}
	if got := applied(); len(got) != 1 || got[0] != OpEditConfig+`:solo` {
		t.Fatalf("applied %v, want one edit-config", got)
	}
}

// TestHelloDropFailsDial proves a dropped hello greeting fails the dial
// instead of yielding a half-open session — the fault the DevMgr must
// classify as a transient dial failure, never a verified session.
func TestHelloDropFailsDial(t *testing.T) {
	srv, addr := startEcho(t)
	srv.SetInterceptor(func(op string) FaultDecision {
		if op == OpHello {
			return FaultDecision{Fault: FaultDropRequest}
		}
		return FaultDecision{}
	})
	if c, err := DialWithOptions(addr, DialOptions{DialTimeout: 100 * time.Millisecond}); err == nil {
		c.Close()
		t.Fatal("dial succeeded despite dropped hello")
	}
	// Clearing the fault heals the dial path.
	srv.SetInterceptor(nil)
	c := dialFast(t, addr)
	var out string
	if err := c.Call("echo", "hi", &out); err != nil || out != "hi" {
		t.Fatalf("post-heal call: %v (out %q)", err, out)
	}
}

// TestHelloResetFailsDial proves a connection reset during the greeting
// fails the dial cleanly.
func TestHelloResetFailsDial(t *testing.T) {
	srv, addr := startEcho(t)
	srv.SetInterceptor(func(op string) FaultDecision {
		if op == OpHello {
			return FaultDecision{Fault: FaultReset}
		}
		return FaultDecision{}
	})
	if c, err := DialWithOptions(addr, DialOptions{DialTimeout: 100 * time.Millisecond}); err == nil {
		c.Close()
		t.Fatal("dial succeeded despite reset hello")
	}
}
