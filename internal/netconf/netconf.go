// Package netconf implements the NETCONF-like management protocol the
// FlexWAN controller uses to configure and monitor optical devices
// (§4.3–4.4 of the paper: the DevMgr "issues a Yang file containing
// detailed configuration parameters to configure the device through the
// Netconf protocol").
//
// The reproduction keeps NETCONF's session semantics — a hello exchange,
// request/reply RPCs (get-config, edit-config, get-state), and
// asynchronous notifications — over newline-delimited JSON on TCP, since
// the standard library ships no XML-RPC stack and the paper's point is
// the vendor-agnostic single protocol, not the wire syntax.
package netconf

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Well-known RPC operations, mirroring NETCONF's protocol operations.
const (
	OpGetConfig  = "get-config"
	OpEditConfig = "edit-config"
	OpGetState   = "get-state"
)

// message is the wire frame.
type message struct {
	Kind    string          `json:"kind"` // hello | rpc | reply | notification
	ID      uint64          `json:"id,omitempty"`
	Op      string          `json:"op,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Err     string          `json:"error,omitempty"`
}

const (
	kindHello        = "hello"
	kindRPC          = "rpc"
	kindReply        = "reply"
	kindNotification = "notification"
)

// Handler processes one RPC on the server (device) side. The returned
// value is JSON-encoded into the reply payload.
type Handler func(op string, payload json.RawMessage) (interface{}, error)

// Server is a device-side management endpoint: it answers RPCs with the
// Handler and can push notifications to every connected session.
type Server struct {
	hello   interface{}
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	sessions map[*session]struct{}
	closed   bool
	wg       sync.WaitGroup
}

type session struct {
	conn net.Conn
	enc  *json.Encoder
	mu   sync.Mutex // serializes writes
}

func (s *session) send(m message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(m)
}

// NewServer returns a server that greets each session with the hello
// document (typically the device's Descriptor) and dispatches RPCs to h.
func NewServer(hello interface{}, h Handler) *Server {
	return &Server{hello: hello, handler: h, sessions: make(map[*session]struct{})}
}

// Listen starts serving on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the bound address. Serving continues until Close.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return "", errors.New("netconf: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		sess := &session{conn: conn, enc: json.NewEncoder(conn)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveSession(sess)
	}
}

func (s *Server) serveSession(sess *session) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		sess.conn.Close()
	}()

	helloPayload, err := json.Marshal(s.hello)
	if err != nil {
		return
	}
	if err := sess.send(message{Kind: kindHello, Payload: helloPayload}); err != nil {
		return
	}
	dec := json.NewDecoder(bufio.NewReader(sess.conn))
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			return
		}
		if m.Kind != kindRPC {
			continue
		}
		reply := message{Kind: kindReply, ID: m.ID, Op: m.Op}
		result, err := s.handler(m.Op, m.Payload)
		if err != nil {
			reply.Err = err.Error()
		} else if result != nil {
			data, err := json.Marshal(result)
			if err != nil {
				reply.Err = fmt.Sprintf("netconf: encoding reply: %v", err)
			} else {
				reply.Payload = data
			}
		}
		if err := sess.send(reply); err != nil {
			return
		}
	}
}

// Notify pushes an asynchronous notification to every connected session
// (NETCONF's <notification>). Sessions that fail to accept the write are
// dropped.
func (s *Server) Notify(event interface{}) {
	data, err := json.Marshal(event)
	if err != nil {
		return
	}
	m := message{Kind: kindNotification, Payload: data}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		if err := sess.send(m); err != nil {
			sess.conn.Close()
		}
	}
}

// Close stops the listener and drops every session.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, sess := range sessions {
		sess.conn.Close()
	}
	s.wg.Wait()
}

// Client is a controller-side management session to one device.
type Client struct {
	conn  net.Conn
	enc   *json.Encoder
	hello json.RawMessage

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan message
	closed  bool

	notifications chan json.RawMessage
	readErr       error
	done          chan struct{}
}

// DialTimeout is the default connect/RPC deadline.
const DialTimeout = 5 * time.Second

// Dial opens a management session and completes the hello exchange.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:          conn,
		enc:           json.NewEncoder(conn),
		pending:       make(map[uint64]chan message),
		notifications: make(chan json.RawMessage, 256),
		done:          make(chan struct{}),
	}
	// The server speaks first.
	dec := json.NewDecoder(bufio.NewReader(conn))
	conn.SetReadDeadline(time.Now().Add(DialTimeout))
	var hello message
	if err := dec.Decode(&hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netconf: hello: %w", err)
	}
	if hello.Kind != kindHello {
		conn.Close()
		return nil, fmt.Errorf("netconf: expected hello, got %q", hello.Kind)
	}
	conn.SetReadDeadline(time.Time{})
	c.hello = hello.Payload
	go c.readLoop(dec)
	return c, nil
}

// Hello returns the raw hello document the device sent (its Descriptor).
func (c *Client) Hello(out interface{}) error {
	return json.Unmarshal(c.hello, out)
}

func (c *Client) readLoop(dec *json.Decoder) {
	defer close(c.done)
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			close(c.notifications)
			return
		}
		switch m.Kind {
		case kindReply:
			c.mu.Lock()
			ch, ok := c.pending[m.ID]
			if ok {
				delete(c.pending, m.ID)
			}
			c.mu.Unlock()
			if ok {
				ch <- m
			}
		case kindNotification:
			select {
			case c.notifications <- m.Payload:
			default:
				// Slow consumer: drop rather than stall the session.
			}
		}
	}
}

// Notifications streams asynchronous device events. The channel closes
// when the session ends.
func (c *Client) Notifications() <-chan json.RawMessage { return c.notifications }

// Call performs one RPC. in is JSON-encoded into the request payload
// (nil for none); the reply payload is decoded into out (out may be nil).
func (c *Client) Call(op string, in, out interface{}) error {
	var payload json.RawMessage
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("netconf: encoding %s request: %w", op, err)
		}
		payload = data
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("netconf: session closed")
	}
	c.nextID++
	id := c.nextID
	ch := make(chan message, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.enc.Encode(message{Kind: kindRPC, ID: id, Op: op, Payload: payload}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("netconf: sending %s: %w", op, err)
	}
	select {
	case m, ok := <-ch:
		if !ok {
			return fmt.Errorf("netconf: session lost during %s: %v", op, c.readErr)
		}
		if m.Err != "" {
			return fmt.Errorf("netconf: %s: %s", op, m.Err)
		}
		if out != nil && m.Payload != nil {
			if err := json.Unmarshal(m.Payload, out); err != nil {
				return fmt.Errorf("netconf: decoding %s reply: %w", op, err)
			}
		}
		return nil
	case <-time.After(DialTimeout):
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("netconf: %s timed out", op)
	}
}

// Close ends the session.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
