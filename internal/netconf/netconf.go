// Package netconf implements the NETCONF-like management protocol the
// FlexWAN controller uses to configure and monitor optical devices
// (§4.3–4.4 of the paper: the DevMgr "issues a Yang file containing
// detailed configuration parameters to configure the device through the
// Netconf protocol").
//
// The reproduction keeps NETCONF's session semantics — a hello exchange,
// request/reply RPCs (get-config, edit-config, get-state), and
// asynchronous notifications — over newline-delimited JSON on TCP, since
// the standard library ships no XML-RPC stack and the paper's point is
// the vendor-agnostic single protocol, not the wire syntax.
package netconf

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Well-known RPC operations, mirroring NETCONF's protocol operations.
const (
	OpGetConfig  = "get-config"
	OpEditConfig = "edit-config"
	OpGetState   = "get-state"
	// OpEditConfigBatch applies an ordered list of edit-config documents
	// in one round trip — the session-batching primitive the controller
	// uses to coalesce every document destined for one device (a WSS's
	// full passband set, a transponder's teardown-then-retune) into a
	// single RPC. The server splits the BatchEdit payload and dispatches
	// each document through the ordinary OpEditConfig handler, stopping
	// at the first rejection.
	OpEditConfigBatch = "edit-config-batch"
	// OpHello names the server→client hello greeting for fault
	// interception. It is not a callable RPC: interceptors see it once
	// per accepted session, before the greeting is sent.
	OpHello = "hello"
)

// BatchEdit is the OpEditConfigBatch payload: edit-config documents
// applied in order within one RPC.
type BatchEdit struct {
	Configs []json.RawMessage `json:"configs"`
}

// NewBatchEdit marshals the documents into a batch payload.
func NewBatchEdit(cfgs ...interface{}) (BatchEdit, error) {
	b := BatchEdit{Configs: make([]json.RawMessage, 0, len(cfgs))}
	for _, cfg := range cfgs {
		data, err := json.Marshal(cfg)
		if err != nil {
			return BatchEdit{}, fmt.Errorf("netconf: encoding batch document: %w", err)
		}
		b.Configs = append(b.Configs, data)
	}
	return b, nil
}

// message is the wire frame.
type message struct {
	Kind    string          `json:"kind"` // hello | rpc | reply | notification
	ID      uint64          `json:"id,omitempty"`
	Op      string          `json:"op,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Err     string          `json:"error,omitempty"`
}

const (
	kindHello        = "hello"
	kindRPC          = "rpc"
	kindReply        = "reply"
	kindNotification = "notification"
)

// Handler processes one RPC on the server (device) side. The returned
// value is JSON-encoded into the reply payload.
type Handler func(op string, payload json.RawMessage) (interface{}, error)

// RPCFault tells a server how to mistreat one inbound RPC — the hook the
// chaos engine (internal/chaos) uses to inject management-plane faults
// without touching the wire protocol.
type RPCFault int

const (
	// FaultNone handles the RPC normally.
	FaultNone RPCFault = iota
	// FaultDropRequest discards the RPC without executing it or
	// replying; the client sees a timeout.
	FaultDropRequest
	// FaultDropReply executes the RPC (side effects apply) but
	// suppresses the reply; the client sees a timeout. Retrying an
	// idempotent document must converge.
	FaultDropReply
	// FaultReset closes the session's connection mid-RPC.
	FaultReset
)

// FaultDecision is an Interceptor's verdict for one inbound RPC.
type FaultDecision struct {
	Fault RPCFault
	// Delay is slept before acting on the RPC (still within the
	// session's serving goroutine, so it also delays later RPCs on the
	// same session, as a congested device would).
	Delay time.Duration
	// Err, when non-empty, replies with this RPC error instead of
	// executing — an injected device NACK (e.g. a commit rejection).
	Err string
}

// Interceptor inspects every inbound RPC before the Handler runs and
// decides its fate. A nil interceptor (the default) passes everything.
type Interceptor func(op string) FaultDecision

// Server is a device-side management endpoint: it answers RPCs with the
// Handler and can push notifications to every connected session.
type Server struct {
	hello   interface{}
	handler Handler

	mu          sync.Mutex
	listener    net.Listener
	sessions    map[*session]struct{}
	closed      bool
	wg          sync.WaitGroup
	interceptor Interceptor
}

type session struct {
	conn net.Conn
	enc  *json.Encoder
	mu   sync.Mutex // serializes writes
}

func (s *session) send(m message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(m)
}

// NewServer returns a server that greets each session with the hello
// document (typically the device's Descriptor) and dispatches RPCs to h.
func NewServer(hello interface{}, h Handler) *Server {
	return &Server{hello: hello, handler: h, sessions: make(map[*session]struct{})}
}

// SetInterceptor installs (or, with nil, removes) the RPC fault
// interceptor. It survives Stop/Listen cycles, so an injector bound to a
// device persists across simulated crashes.
func (s *Server) SetInterceptor(i Interceptor) {
	s.mu.Lock()
	s.interceptor = i
	s.mu.Unlock()
}

func (s *Server) currentInterceptor() Interceptor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.interceptor
}

// Listen starts serving on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the bound address. Serving continues until Close.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return "", errors.New("netconf: server closed")
	}
	if s.listener != nil {
		s.mu.Unlock()
		l.Close()
		return "", errors.New("netconf: server already listening")
	}
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		sess := &session{conn: conn, enc: json.NewEncoder(conn)}
		s.mu.Lock()
		// A stale listener means Stop/Close raced the accept: this
		// server instance is down, so the connection dies with it.
		if s.closed || s.listener != l {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveSession(sess)
	}
}

// dispatch routes one RPC to the handler, splitting a batch edit into
// its ordered edit-config documents. The first rejected document aborts
// the batch; documents already applied stay applied, which is safe
// because edit-config documents are absolute (idempotent re-push
// converges the device).
func (s *Server) dispatch(op string, payload json.RawMessage) (interface{}, error) {
	if op != OpEditConfigBatch {
		return s.handler(op, payload)
	}
	var b BatchEdit
	if err := json.Unmarshal(payload, &b); err != nil {
		return nil, fmt.Errorf("netconf: bad batch payload: %w", err)
	}
	for i, doc := range b.Configs {
		if _, err := s.handler(OpEditConfig, doc); err != nil {
			return nil, fmt.Errorf("netconf: batch document %d/%d: %w", i+1, len(b.Configs), err)
		}
	}
	return nil, nil
}

func (s *Server) serveSession(sess *session) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		sess.conn.Close()
	}()

	helloPayload, err := json.Marshal(s.hello)
	if err != nil {
		return
	}
	// The greeting passes through the interceptor as pseudo-op OpHello so
	// drills can exercise the dial path: a dropped or reset hello makes
	// the client's dial fail, which the controller must treat as a
	// transient dial failure — never as a verified session.
	if icpt := s.currentInterceptor(); icpt != nil {
		d := icpt(OpHello)
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		switch d.Fault {
		case FaultDropRequest, FaultDropReply:
			// Session stays open but never greets; the client times out
			// waiting for the hello.
			var m message
			_ = json.NewDecoder(bufio.NewReader(sess.conn)).Decode(&m)
			return
		case FaultReset:
			return
		}
	}
	if err := sess.send(message{Kind: kindHello, Payload: helloPayload}); err != nil {
		return
	}
	dec := json.NewDecoder(bufio.NewReader(sess.conn))
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			return
		}
		if m.Kind != kindRPC {
			continue
		}
		reply := message{Kind: kindReply, ID: m.ID, Op: m.Op}
		if icpt := s.currentInterceptor(); icpt != nil {
			d := icpt(m.Op)
			if d.Delay > 0 {
				time.Sleep(d.Delay)
			}
			switch d.Fault {
			case FaultDropRequest:
				continue
			case FaultReset:
				return
			}
			if d.Err != "" {
				reply.Err = d.Err
				if err := sess.send(reply); err != nil {
					return
				}
				continue
			}
			if d.Fault == FaultDropReply {
				_, _ = s.dispatch(m.Op, m.Payload)
				continue
			}
		}
		result, err := s.dispatch(m.Op, m.Payload)
		if err != nil {
			reply.Err = err.Error()
		} else if result != nil {
			data, err := json.Marshal(result)
			if err != nil {
				reply.Err = fmt.Sprintf("netconf: encoding reply: %v", err)
			} else {
				reply.Payload = data
			}
		}
		if err := sess.send(reply); err != nil {
			return
		}
	}
}

// Notify pushes an asynchronous notification to every connected session
// (NETCONF's <notification>). Sessions that fail to accept the write are
// dropped.
func (s *Server) Notify(event interface{}) {
	data, err := json.Marshal(event)
	if err != nil {
		return
	}
	m := message{Kind: kindNotification, Payload: data}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		if err := sess.send(m); err != nil {
			sess.conn.Close()
		}
	}
}

// Stop drops the listener and every session but leaves the server
// reusable: a later Listen (typically on the same address) brings it
// back. This is the crash half of a simulated device crash/restart.
func (s *Server) Stop() {
	s.mu.Lock()
	l := s.listener
	s.listener = nil
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, sess := range sessions {
		sess.conn.Close()
	}
	s.wg.Wait()
}

// Close stops the listener and drops every session, permanently.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.Stop()
}

// Client is a controller-side management session to one device.
type Client struct {
	conn        net.Conn
	enc         *json.Encoder
	hello       json.RawMessage
	callTimeout time.Duration

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan message
	closed  bool

	notifications chan json.RawMessage
	readErr       error
	done          chan struct{}
}

// DialTimeout is the default connect/RPC deadline.
const DialTimeout = 5 * time.Second

// DialOptions tunes one management session's timeouts. The zero value
// uses the package defaults.
type DialOptions struct {
	// DialTimeout bounds the TCP connect plus the hello exchange
	// (default DialTimeout).
	DialTimeout time.Duration
	// CallTimeout bounds each RPC round trip (default DialTimeout). A
	// fault-injection drill shortens this so dropped RPCs surface —
	// and retry — quickly.
	CallTimeout time.Duration
}

func (o DialOptions) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return DialTimeout
	}
	return o.DialTimeout
}

func (o DialOptions) callTimeout() time.Duration {
	if o.CallTimeout <= 0 {
		return DialTimeout
	}
	return o.CallTimeout
}

// Transient session errors: a Call that fails with one of these may
// succeed if retried (possibly on a fresh session), in contrast to an
// *RPCError, which is the device deliberately rejecting the request.
var (
	// ErrTimeout marks an RPC whose reply did not arrive in time.
	ErrTimeout = errors.New("rpc timed out")
	// ErrSessionLost marks an RPC interrupted by session failure.
	ErrSessionLost = errors.New("session lost")
	// ErrClosed marks use of a locally closed client.
	ErrClosed = errors.New("session closed")
)

// RPCError is an error the device itself reported in its reply — an
// application-level NACK (unsupported config, rejected commit). It is
// not transient: retrying the identical request will fail again.
type RPCError struct {
	Op  string
	Msg string
}

func (e *RPCError) Error() string { return fmt.Sprintf("netconf: %s: %s", e.Op, e.Msg) }

// IsTransient reports whether err is a transport-level failure worth
// retrying (timeout or lost session), as opposed to a device NACK or a
// local usage error.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrSessionLost)
}

// Dial opens a management session with default timeouts and completes
// the hello exchange.
func Dial(addr string) (*Client, error) {
	return DialWithOptions(addr, DialOptions{})
}

// DialWithOptions opens a management session with explicit timeouts.
func DialWithOptions(addr string, opts DialOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.dialTimeout())
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:          conn,
		enc:           json.NewEncoder(conn),
		callTimeout:   opts.callTimeout(),
		pending:       make(map[uint64]chan message),
		notifications: make(chan json.RawMessage, 256),
		done:          make(chan struct{}),
	}
	// The server speaks first.
	dec := json.NewDecoder(bufio.NewReader(conn))
	if err := conn.SetReadDeadline(time.Now().Add(opts.dialTimeout())); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netconf: arming hello deadline: %w", err)
	}
	var hello message
	if err := dec.Decode(&hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netconf: hello: %w", err)
	}
	if hello.Kind != kindHello {
		conn.Close()
		return nil, fmt.Errorf("netconf: expected hello, got %q", hello.Kind)
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netconf: clearing hello deadline: %w", err)
	}
	c.hello = hello.Payload
	go c.readLoop(dec)
	return c, nil
}

// Hello returns the raw hello document the device sent (its Descriptor).
func (c *Client) Hello(out interface{}) error {
	return json.Unmarshal(c.hello, out)
}

func (c *Client) readLoop(dec *json.Decoder) {
	defer close(c.done)
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			close(c.notifications)
			return
		}
		switch m.Kind {
		case kindReply:
			c.mu.Lock()
			ch, ok := c.pending[m.ID]
			if ok {
				delete(c.pending, m.ID)
			}
			c.mu.Unlock()
			if ok {
				ch <- m
			}
		case kindNotification:
			select {
			case c.notifications <- m.Payload:
			default:
				// Slow consumer: drop rather than stall the session.
			}
		}
	}
}

// Notifications streams asynchronous device events. The channel closes
// when the session ends.
func (c *Client) Notifications() <-chan json.RawMessage { return c.notifications }

// Call performs one RPC. in is JSON-encoded into the request payload
// (nil for none); the reply payload is decoded into out (out may be nil).
func (c *Client) Call(op string, in, out interface{}) error {
	var payload json.RawMessage
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("netconf: encoding %s request: %w", op, err)
		}
		payload = data
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("netconf: %w", ErrClosed)
	}
	c.nextID++
	id := c.nextID
	ch := make(chan message, 1)
	c.pending[id] = ch
	timeout := c.callTimeout
	c.mu.Unlock()
	if timeout <= 0 {
		timeout = DialTimeout
	}

	if err := c.enc.Encode(message{Kind: kindRPC, ID: id, Op: op, Payload: payload}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("netconf: sending %s (%v): %w", op, err, ErrSessionLost)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m, ok := <-ch:
		if !ok {
			return fmt.Errorf("netconf: during %s (%v): %w", op, c.readErr, ErrSessionLost)
		}
		if m.Err != "" {
			return &RPCError{Op: op, Msg: m.Err}
		}
		if out != nil && m.Payload != nil {
			if err := json.Unmarshal(m.Payload, out); err != nil {
				return fmt.Errorf("netconf: decoding %s reply: %w", op, err)
			}
		}
		return nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("netconf: %s: %w", op, ErrTimeout)
	}
}

// SetCallTimeout changes the per-RPC deadline for subsequent Calls.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	c.callTimeout = d
	c.mu.Unlock()
}

// Close ends the session.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
