package netconf

import (
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func dialFast(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := DialWithOptions(addr, DialOptions{CallTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestInterceptorDropRequest proves a dropped request surfaces as a
// transient timeout and that clearing the interceptor heals the session.
func TestInterceptorDropRequest(t *testing.T) {
	srv, addr := startEcho(t)
	c := dialFast(t, addr)
	srv.SetInterceptor(func(op string) FaultDecision {
		return FaultDecision{Fault: FaultDropRequest}
	})
	var out string
	err := c.Call("echo", "hi", &out)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("dropped request returned %v, want ErrTimeout", err)
	}
	if !IsTransient(err) {
		t.Error("timeout should be transient")
	}
	srv.SetInterceptor(nil)
	if err := c.Call("echo", "hi", &out); err != nil || out != "hi" {
		t.Fatalf("session did not heal: %v (out %q)", err, out)
	}
}

// TestInterceptorReset proves a connection reset surfaces as a
// transient lost-session error.
func TestInterceptorReset(t *testing.T) {
	srv, addr := startEcho(t)
	c := dialFast(t, addr)
	srv.SetInterceptor(func(op string) FaultDecision {
		return FaultDecision{Fault: FaultReset}
	})
	var out string
	err := c.Call("echo", "hi", &out)
	if !errors.Is(err, ErrSessionLost) {
		t.Fatalf("reset returned %v, want ErrSessionLost", err)
	}
	if !IsTransient(err) {
		t.Error("lost session should be transient")
	}
}

// TestInterceptorDropReplyExecutes proves the nasty fault: the RPC's
// side effects apply even though the caller times out — the case that
// forces idempotent re-pushes.
func TestInterceptorDropReplyExecutes(t *testing.T) {
	var handled int64
	srv := NewServer(echoHello{Name: "dev1"}, func(op string, payload json.RawMessage) (interface{}, error) {
		atomic.AddInt64(&handled, 1)
		return nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dialFast(t, addr)
	srv.SetInterceptor(func(op string) FaultDecision {
		return FaultDecision{Fault: FaultDropReply}
	})
	if err := c.Call("apply", nil, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("dropped reply returned %v, want ErrTimeout", err)
	}
	if n := atomic.LoadInt64(&handled); n != 1 {
		t.Fatalf("handler ran %d times, want 1 (executed despite dropped reply)", n)
	}
	// The idempotent retry applies again and this time is acknowledged.
	srv.SetInterceptor(nil)
	if err := c.Call("apply", nil, nil); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt64(&handled); n != 2 {
		t.Fatalf("handler ran %d times after retry, want 2", n)
	}
}

// TestInterceptorInjectedError proves an injected NACK is a device
// answer — an RPCError, not a transient failure.
func TestInterceptorInjectedError(t *testing.T) {
	srv, addr := startEcho(t)
	c := dialFast(t, addr)
	srv.SetInterceptor(func(op string) FaultDecision {
		return FaultDecision{Err: "chaos: injected rejection"}
	})
	var out string
	err := c.Call("echo", "hi", &out)
	var rpcErr *RPCError
	if !errors.As(err, &rpcErr) {
		t.Fatalf("injected error returned %v, want RPCError", err)
	}
	if rpcErr.Op != "echo" || IsTransient(err) {
		t.Errorf("NACK misclassified: %+v transient=%v", rpcErr, IsTransient(err))
	}
}

// TestInterceptorDelay proves delays stall the RPC without failing it.
func TestInterceptorDelay(t *testing.T) {
	srv, addr := startEcho(t)
	c := dialFast(t, addr)
	srv.SetInterceptor(func(op string) FaultDecision {
		return FaultDecision{Delay: 30 * time.Millisecond}
	})
	start := time.Now()
	var out string
	if err := c.Call("echo", "hi", &out); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("call returned in %v, want ≥ 30ms", elapsed)
	}
}

// TestServerStopRestart proves a stopped server can re-listen on its
// old address — the device crash/restart cycle.
func TestServerStopRestart(t *testing.T) {
	srv, addr := startEcho(t)
	c1 := dialFast(t, addr)
	var out string
	if err := c1.Call("echo", "a", &out); err != nil {
		t.Fatal(err)
	}
	srv.Stop()
	if err := c1.Call("echo", "b", &out); err == nil {
		t.Fatal("call on a crashed server succeeded")
	}
	if _, err := srv.Listen(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	c2 := dialFast(t, addr)
	if err := c2.Call("echo", "c", &out); err != nil || out != "c" {
		t.Fatalf("post-restart call: %v (out %q)", err, out)
	}
}

// TestDoubleListenRejected proves a second concurrent Listen is an
// error rather than a silent second endpoint.
func TestDoubleListenRejected(t *testing.T) {
	srv, _ := startEcho(t)
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("second Listen succeeded while first is live")
	}
}

// TestCallTimeoutConfigurable proves the per-session call timeout is
// honored rather than the hardcoded default.
func TestCallTimeoutConfigurable(t *testing.T) {
	srv, addr := startEcho(t)
	srv.SetInterceptor(func(op string) FaultDecision {
		if op == OpHello {
			// Let the session establish; only the RPC should be dropped.
			return FaultDecision{}
		}
		return FaultDecision{Fault: FaultDropRequest}
	})
	c, err := DialWithOptions(addr, DialOptions{CallTimeout: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	start := time.Now()
	var out string
	if err := c.Call("echo", "x", &out); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	elapsed := time.Since(start)
	if elapsed < 60*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("timed out after %v, want ≈60ms", elapsed)
	}
}
