package netconf

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

type echoHello struct {
	Name string `json:"name"`
}

func startEcho(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(echoHello{Name: "dev1"}, func(op string, payload json.RawMessage) (interface{}, error) {
		switch op {
		case "echo":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return nil, err
			}
			return s, nil
		case "fail":
			return nil, errors.New("boom")
		case "nil":
			return nil, nil
		default:
			return nil, fmt.Errorf("unknown op %q", op)
		}
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

func TestHelloExchange(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var hello echoHello
	if err := c.Hello(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Name != "dev1" {
		t.Errorf("hello name = %q, want dev1", hello.Name)
	}
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out string
	if err := c.Call("echo", "ping", &out); err != nil {
		t.Fatal(err)
	}
	if out != "ping" {
		t.Errorf("echo = %q", out)
	}
	// nil in / nil out.
	if err := c.Call("nil", nil, nil); err != nil {
		t.Errorf("nil op: %v", err)
	}
}

func TestCallError(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("fail", nil, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if got := err.Error(); got != "netconf: fail: boom" {
		t.Errorf("error = %q", got)
	}
	// The session survives an RPC error.
	var out string
	if err := c.Call("echo", "still-alive", &out); err != nil || out != "still-alive" {
		t.Errorf("session dead after RPC error: %v, %q", err, out)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := fmt.Sprintf("msg-%d", i)
			var out string
			if err := c.Call("echo", in, &out); err != nil {
				errs <- err
				return
			}
			if out != in {
				errs <- fmt.Errorf("mismatch: %q != %q", out, in)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestNotifications(t *testing.T) {
	srv, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Notify(map[string]string{"event": "los"})
	select {
	case raw := <-c.Notifications():
		var ev map[string]string
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatal(err)
		}
		if ev["event"] != "los" {
			t.Errorf("event = %v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("notification not received")
	}
}

func TestMultipleSessionsGetNotifications(t *testing.T) {
	srv, addr := startEcho(t)
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	srv.Notify("broadcast")
	for i, c := range clients {
		select {
		case <-c.Notifications():
		case <-time.After(2 * time.Second):
			t.Fatalf("client %d missed broadcast", i)
		}
	}
}

func TestServerCloseEndsSessions(t *testing.T) {
	srv, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()
	// Calls after server shutdown fail.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if err := c.Call("echo", "x", nil); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("calls kept succeeding after server close")
		}
	}
	// Notification channel closes.
	select {
	case _, ok := <-c.Notifications():
		if ok {
			t.Error("unexpected notification")
		}
	case <-time.After(2 * time.Second):
		t.Error("notification channel did not close")
	}
}

func TestClientCloseIdempotent(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("first close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := c.Call("echo", "x", nil); err == nil {
		t.Error("call on closed client succeeded")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestListenAfterClose(t *testing.T) {
	srv := NewServer("x", func(string, json.RawMessage) (interface{}, error) { return nil, nil })
	srv.Close()
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("Listen after Close succeeded")
	}
}
