package netconf

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// TestServerSurvivesGarbageBytes: a client writing non-JSON must only
// kill its own session, not the server.
func TestServerSurvivesGarbageBytes(t *testing.T) {
	_, addr := startEcho(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n{{{\n")); err != nil {
		t.Fatal(err)
	}
	// The server should have dropped that session; a fresh client works.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out string
	if err := c.Call("echo", "alive", &out); err != nil || out != "alive" {
		t.Errorf("server unusable after garbage session: %v %q", err, out)
	}
}

// TestServerIgnoresUnknownKinds: frames with unexpected kinds are skipped.
func TestServerIgnoresUnknownKinds(t *testing.T) {
	_, addr := startEcho(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dec := json.NewDecoder(conn)
	var hello message
	if err := dec.Decode(&hello); err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(conn)
	// Unknown kind, then a real RPC on the same session.
	if err := enc.Encode(message{Kind: "frobnicate", ID: 1}); err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal("ping")
	if err := enc.Encode(message{Kind: kindRPC, ID: 2, Op: "echo", Payload: payload}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var reply message
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Kind != kindReply || reply.ID != 2 {
		t.Errorf("reply = %+v", reply)
	}
}

// TestLargePayloadRoundTrip: configuration documents can be sizeable
// (hundreds of passbands); the framing must not truncate them.
func TestLargePayloadRoundTrip(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := strings.Repeat("x", 1<<20) // 1 MiB
	var out string
	if err := c.Call("echo", big, &out); err != nil {
		t.Fatal(err)
	}
	if out != big {
		t.Errorf("payload corrupted: %d bytes back, want %d", len(out), len(big))
	}
}

// TestSlowNotificationConsumerDoesNotBlockRPC: a client that never reads
// notifications must still complete calls (drops, not deadlock).
func TestSlowNotificationConsumerDoesNotBlockRPC(t *testing.T) {
	srv, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 1000; i++ { // far beyond the 256 buffer
		srv.Notify(fmt.Sprintf("event-%d", i))
	}
	done := make(chan error, 1)
	go func() {
		var out string
		done <- c.Call("echo", "still-works", &out)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("call after notification flood: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("RPC blocked behind unread notifications")
	}
}

// TestHelloTimeout: a server that accepts but never speaks must not hang
// Dial forever.
func TestHelloTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(10 * time.Second) // mute server
	}()
	start := time.Now()
	if _, err := Dial(l.Addr().String()); err == nil {
		t.Fatal("Dial succeeded against a mute server")
	}
	if time.Since(start) > DialTimeout+2*time.Second {
		t.Errorf("Dial took %v, deadline not applied", time.Since(start))
	}
}

// TestConcurrentNotifyAndCalls exercises write interleaving on the
// server side.
func TestConcurrentNotifyAndCalls(t *testing.T) {
	srv, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				srv.Notify("tick")
				time.Sleep(time.Millisecond)
			}
		}
	}()
	go func() {
		for range c.Notifications() {
		}
	}()
	for i := 0; i < 200; i++ {
		in := fmt.Sprintf("m%d", i)
		var out string
		if err := c.Call("echo", in, &out); err != nil || out != in {
			t.Fatalf("call %d: %v %q", i, err, out)
		}
	}
	close(stop)
}
