package solver

import (
	"math"
	"sort"
)

// Presolve tolerances. preFeasTol matches the simplex feasTol so presolve
// never declares infeasible a model the simplex would accept; preIntTol
// matches the branch-and-bound intTol for the same reason on integrality.
const (
	preFeasTol = 1e-7
	preIntTol  = 1e-6
	// preMaxPasses caps the reduction fixpoint loop; each pass is O(nnz)
	// and the loop exits early once a pass changes nothing.
	preMaxPasses = 10
	// preDominatedCap bounds the O(rows²·terms) dominated-row sweep: past
	// this many live inequality rows the sweep is skipped rather than risk
	// quadratic blowup on huge models.
	preDominatedCap = 1024
)

// preRow is one constraint under reduction: a working copy of the model
// row whose terms shrink as variables are fixed and whose live flag drops
// when the row is eliminated (empty, singleton-folded, redundant, or
// dominated).
type preRow struct {
	name  string
	terms []Term
	rel   Rel
	rhs   float64
	live  bool
}

// presolved is the outcome of Model.presolve: the reduced model plus the
// mapping postsolve needs to rehydrate a reduced-space Solution against
// the original VarIDs. All reductions preserve the MILP's optimal
// objective and its feasibility/unboundedness status:
//
//   - bound tightenings (propagation, singleton folding, integer
//     rounding) are implied by the constraints, so the integer-feasible
//     set is untouched;
//   - fixed-variable substitution and empty/redundant/dominated-row
//     removal delete only rows no feasible point can violate;
//   - dual fixing moves any optimum to an equally good one with the
//     variable at its bound, and is skipped when that bound is infinite
//     so an unbounded model stays visibly unbounded in the reduced LP;
//   - duplicate-column merging replaces x_j + x_k (identical columns,
//     objective, integrality, finite bounds) by one variable over the
//     Minkowski-sum bounds, which postsolve splits back.
type presolved struct {
	orig    *Model
	reduced *Model

	// infeasible reports that presolve proved the model infeasible before
	// any simplex ran (conflicting bounds or an unsatisfiable row).
	infeasible bool

	rowsRemoved int // original minus reduced constraint count
	colsRemoved int // original minus reduced variable count

	lb, ub []float64 // tightened working bounds, original indexing
	fixed  []bool    // variable forced to a single value
	fixVal []float64 // the forced value (valid when fixed)
	newID  []int     // original var → reduced column, -1 when eliminated
	groups [][]int   // duplicate-column groups, ascending; [0] is the rep
	grpOf  []int     // original var → index into groups, -1
}

// presolve reduces the model. The returned mapping is valid even when no
// reduction fired (identity); callers solve p.reduced and pass the result
// through p.postsolve.
func (m *Model) presolve(logf func(format string, args ...interface{})) *presolved {
	nv := len(m.vars)
	p := &presolved{
		orig:   m,
		lb:     make([]float64, nv),
		ub:     make([]float64, nv),
		fixed:  make([]bool, nv),
		fixVal: make([]float64, nv),
		grpOf:  make([]int, nv),
	}
	for i := range m.vars {
		p.lb[i], p.ub[i] = m.vars[i].lb, m.vars[i].ub
		p.grpOf[i] = -1
	}
	rows := make([]preRow, len(m.cons))
	// One arena for every row's working term copy instead of a slice
	// allocation per row. Passes only ever shrink a row's terms in place,
	// so the sub-slices never collide; the capacity is pre-counted so the
	// arena never reallocates under them.
	nnz := 0
	for i := range m.cons {
		nnz += len(m.cons[i].terms)
	}
	arena := make([]Term, 0, nnz)
	for i := range m.cons {
		c := &m.cons[i]
		start := len(arena)
		arena = append(arena, c.terms...)
		rows[i] = preRow{
			name:  c.name,
			terms: arena[start:len(arena):len(arena)],
			rel:   c.rel,
			rhs:   c.rhs,
			live:  true,
		}
	}

	if !p.roundIntegerBounds() {
		p.infeasible = true
		return p
	}
	p.detectFixed()

	for pass := 0; pass < preMaxPasses; pass++ {
		changed := false
		for r := range rows {
			row := &rows[r]
			if !row.live {
				continue
			}
			if p.substituteFixed(row) {
				changed = true
			}
			switch p.reduceRow(row) {
			case preInfeasible:
				p.infeasible = true
				return p
			case preChanged:
				changed = true
			}
			if row.live && p.tightenCoefs(row) {
				changed = true
			}
		}
		if !p.roundIntegerBounds() {
			p.infeasible = true
			return p
		}
		if p.detectFixed() {
			changed = true
		}
		if p.dualFix(rows) {
			changed = true
			// Dual fixing collapses bounds; record the fixes now so the
			// next pass substitutes them out of the rows.
			p.detectFixed()
		}
		if !changed {
			break
		}
	}

	p.removeDominated(rows)
	p.mergeDuplicates(rows)
	p.build(rows)
	if p.infeasible {
		return p
	}
	if logf != nil && (p.rowsRemoved > 0 || p.colsRemoved > 0) {
		logf("solver: presolve removed %d/%d rows and %d/%d columns",
			p.rowsRemoved, len(m.cons), p.colsRemoved, nv)
	}
	return p
}

type preOutcome int

const (
	preNone preOutcome = iota
	preChanged
	preInfeasible
)

// roundIntegerBounds snaps integer-variable bounds onto the integer grid
// (only fractional range is cut, so the integer-feasible set is
// unchanged). Returns false when any variable's bounds now contradict.
func (p *presolved) roundIntegerBounds() bool {
	for i := range p.orig.vars {
		if p.orig.vars[i].integer {
			p.lb[i] = math.Ceil(p.lb[i] - preIntTol)
			p.ub[i] = math.Floor(p.ub[i] + preIntTol)
		}
		if p.lb[i] > p.ub[i]+preFeasTol {
			return false
		}
	}
	return true
}

// detectFixed marks variables whose bounds have collapsed and records the
// forced value. Reports whether any new variable was fixed.
func (p *presolved) detectFixed() bool {
	changed := false
	for i := range p.orig.vars {
		if p.fixed[i] {
			continue
		}
		if math.IsInf(p.lb[i], -1) || math.IsInf(p.ub[i], 1) {
			continue
		}
		width := p.ub[i] - p.lb[i]
		if width > 1e-9*math.Max(1, math.Abs(p.lb[i])) {
			continue
		}
		v := p.lb[i]
		if p.orig.vars[i].integer {
			v = math.Round(v)
		}
		p.fixed[i] = true
		p.fixVal[i] = v
		changed = true
	}
	return changed
}

// substituteFixed folds fixed variables into the row's rhs and drops
// their terms.
func (p *presolved) substituteFixed(row *preRow) bool {
	changed := false
	out := row.terms[:0]
	for _, t := range row.terms {
		if p.fixed[t.Var] {
			row.rhs -= t.Coef * p.fixVal[t.Var]
			changed = true
			continue
		}
		out = append(out, t)
	}
	row.terms = out
	return changed
}

// reduceRow applies the per-row reductions: empty-row elimination,
// singleton folding into bounds, activity-based redundancy/infeasibility,
// and bound propagation onto integer variables.
func (p *presolved) reduceRow(row *preRow) preOutcome {
	tol := preFeasTol * math.Max(1, math.Abs(row.rhs))
	if len(row.terms) == 0 {
		ok := false
		switch row.rel {
		case LE:
			ok = row.rhs >= -tol
		case GE:
			ok = row.rhs <= tol
		case EQ:
			ok = math.Abs(row.rhs) <= tol
		}
		if !ok {
			return preInfeasible
		}
		row.live = false
		return preChanged
	}
	if len(row.terms) == 1 {
		return p.foldSingleton(row)
	}

	minAct, maxAct, minInf, maxInf := p.activity(row.terms)
	switch row.rel {
	case LE:
		if minInf == 0 && minAct > row.rhs+tol {
			return preInfeasible
		}
		if maxInf == 0 && maxAct <= row.rhs+tol {
			row.live = false
			return preChanged
		}
	case GE:
		if maxInf == 0 && maxAct < row.rhs-tol {
			return preInfeasible
		}
		if minInf == 0 && minAct >= row.rhs-tol {
			row.live = false
			return preChanged
		}
	case EQ:
		if (minInf == 0 && minAct > row.rhs+tol) || (maxInf == 0 && maxAct < row.rhs-tol) {
			return preInfeasible
		}
		if minInf == 0 && maxInf == 0 && minAct >= row.rhs-tol && maxAct <= row.rhs+tol {
			// Every point in the box already satisfies the equation.
			row.live = false
			return preChanged
		}
	}

	out := preNone
	if row.rel != GE { // LE and EQ propagate the ≤ direction
		switch p.propagate(row.terms, row.rhs, 1, minAct, minInf) {
		case preInfeasible:
			return preInfeasible
		case preChanged:
			out = preChanged
		}
	}
	if row.rel != LE { // GE and EQ propagate the ≥ direction as −a·x ≤ −b
		switch p.propagate(row.terms, -row.rhs, -1, -maxAct, maxInf) {
		case preInfeasible:
			return preInfeasible
		case preChanged:
			out = preChanged
		}
	}
	return out
}

// foldSingleton eliminates a one-term row by folding it into the
// variable's bounds.
func (p *presolved) foldSingleton(row *preRow) preOutcome {
	t := row.terms[0]
	v := int(t.Var)
	limit := row.rhs / t.Coef
	upper := t.Coef > 0 // a·x ≤ b tightens ub when a > 0, lb when a < 0
	changed := false
	tightenUB := func(val float64) {
		if p.orig.vars[v].integer {
			val = math.Floor(val + preIntTol)
		}
		if val < p.ub[v] {
			p.ub[v] = val
			changed = true
		}
	}
	tightenLB := func(val float64) {
		if p.orig.vars[v].integer {
			val = math.Ceil(val - preIntTol)
		}
		if val > p.lb[v] {
			p.lb[v] = val
			changed = true
		}
	}
	switch row.rel {
	case LE:
		if upper {
			tightenUB(limit)
		} else {
			tightenLB(limit)
		}
	case GE:
		if upper {
			tightenLB(limit)
		} else {
			tightenUB(limit)
		}
	case EQ:
		tightenUB(limit)
		tightenLB(limit)
	}
	if p.lb[v] > p.ub[v]+preFeasTol {
		return preInfeasible
	}
	row.live = false
	if changed {
		return preChanged
	}
	return preChanged // the row itself was eliminated either way
}

// activity returns the row's minimum and maximum activity over the
// current bounds, with the count of infinite contributions to each side.
func (p *presolved) activity(terms []Term) (minAct, maxAct float64, minInf, maxInf int) {
	return rowActivity(terms, p.lb, p.ub)
}

// rowActivity computes a row's activity bounds over arbitrary bound
// vectors. Shared by the global presolve and the per-node presolve pass.
func rowActivity(terms []Term, lb, ub []float64) (minAct, maxAct float64, minInf, maxInf int) {
	for _, t := range terms {
		l, u := lb[t.Var], ub[t.Var]
		if t.Coef > 0 {
			if math.IsInf(l, -1) {
				minInf++
			} else {
				minAct += t.Coef * l
			}
			if math.IsInf(u, 1) {
				maxInf++
			} else {
				maxAct += t.Coef * u
			}
		} else {
			if math.IsInf(u, 1) {
				minInf++
			} else {
				minAct += t.Coef * u
			}
			if math.IsInf(l, -1) {
				maxInf++
			} else {
				maxAct += t.Coef * l
			}
		}
	}
	return minAct, maxAct, minInf, maxInf
}

// propagate tightens integer-variable bounds from the row sign·(a·x) ≤
// sign·rhs using the minimum activity of the remaining terms. Only
// integer variables are tightened — their bounds round onto the integer
// grid, which cuts fractional range only — so continuous bounds are never
// perturbed by activity roundoff. minAct/minInf describe the signed row.
func (p *presolved) propagate(terms []Term, rhs, sign, minAct float64, minInf int) preOutcome {
	if minInf > 1 {
		return preNone
	}
	out := preNone
	for _, t := range terms {
		v := int(t.Var)
		if !p.orig.vars[v].integer {
			continue
		}
		coef := sign * t.Coef
		l, u := p.lb[v], p.ub[v]
		contrib, contribInf := 0.0, false
		if coef > 0 {
			if math.IsInf(l, -1) {
				contribInf = true
			} else {
				contrib = coef * l
			}
		} else {
			if math.IsInf(u, 1) {
				contribInf = true
			} else {
				contrib = coef * u
			}
		}
		var rest float64
		if contribInf {
			if minInf != 1 {
				continue
			}
			rest = minAct
		} else {
			if minInf != 0 {
				continue
			}
			rest = minAct - contrib
		}
		limit := (rhs - rest) / coef
		if coef > 0 {
			nb := math.Floor(limit + preIntTol)
			if math.IsInf(u, 1) || nb < u {
				if nb < l-preFeasTol {
					return preInfeasible
				}
				p.ub[v] = nb
				out = preChanged
			}
		} else {
			nb := math.Ceil(limit - preIntTol)
			if math.IsInf(l, -1) || nb > l {
				if nb > u+preFeasTol {
					return preInfeasible
				}
				p.lb[v] = nb
				out = preChanged
			}
		}
	}
	return out
}

// tightenCoefs strengthens binary-variable coefficients against the row's
// activity bounds (classic MIP coefficient tightening). In ≤-normalized
// form Σc·x ≤ B, consider a binary x_j and the maximum activity M of the
// other terms: with x_j = 1 the row demands rest ≤ B − c_j, so whenever
// c_j < B − M that demand is weaker than what the box already guarantees
// (rest ≤ M) — raising c_j to B − M cuts no feasible point with
// x_j ∈ {0, 1} (the x_j = 0 side is untouched; the x_j = 1 side still
// admits every rest ≤ M) but strictly tightens the LP relaxation. The
// continuous/general-integer terms sit in "rest", so their feasible set
// is preserved exactly for either binary value.
//
// This is what makes the full-T-backbone exact MIP tractable: its
// capacity rows Σ rate·γ ≥ demand admit LP points that cover a demand
// with a tiny fraction of one high-rate channel, putting the LP bound
// near zero transponders per link. Capping each rate at the demand (the
// GE image of the rule) makes the LP count one transponder per link — the
// integer optimum — so branch-and-bound prunes instead of enumerating
// start-pixel symmetries. A welcome side effect: RADWAN's equal-spacing
// modes then produce bitwise-identical columns at each (path, pixel),
// which mergeDuplicates collapses.
func (p *presolved) tightenCoefs(row *preRow) bool {
	if row.rel == EQ || len(row.terms) < 2 {
		return false
	}
	sign := 1.0
	if row.rel == GE {
		sign = -1
	}
	B := sign * row.rhs
	// Signed maximum activity over the whole row; any infinite bound on a
	// participating variable makes every binary's "rest" unbounded too
	// (binaries themselves always contribute finitely).
	maxAct := 0.0
	for _, t := range row.terms {
		c := sign * t.Coef
		if c > 0 {
			if math.IsInf(p.ub[t.Var], 1) {
				return false
			}
			maxAct += c * p.ub[t.Var]
		} else {
			if math.IsInf(p.lb[t.Var], -1) {
				return false
			}
			maxAct += c * p.lb[t.Var]
		}
	}
	tol := preFeasTol * math.Max(1, math.Abs(B))
	changed := false
	for i := range row.terms {
		t := &row.terms[i]
		v := t.Var
		if !p.orig.vars[v].integer || p.lb[v] != 0 || p.ub[v] != 1 {
			continue
		}
		c := sign * t.Coef
		contrib := 0.0 // c·lb = 0 for c < 0; c·ub = c for c > 0
		if c > 0 {
			contrib = c
		}
		target := B - (maxAct - contrib)
		if target <= c+tol || math.Abs(target) <= tol {
			continue
		}
		t.Coef = sign * target
		// The tightened coefficient's max contribution is target·1 when
		// positive, 0 when negative; keep maxAct consistent for later terms.
		newContrib := 0.0
		if target > 0 {
			newContrib = target
		}
		maxAct += newContrib - contrib
		changed = true
	}
	return changed
}

// dualFix fixes variables whose objective and column signs make one bound
// direction always at least as good: in minimization, a variable with
// c_j ≥ 0 whose decrease relaxes every live row (a_ij ≥ 0 in LE rows,
// ≤ 0 in GE rows, absent from EQ rows) can sit at its lower bound in some
// optimum. The fix is skipped when the target bound is infinite, so a
// model whose LP is unbounded keeps the unbounded ray visible to the
// simplex instead of presolve misreporting it.
func (p *presolved) dualFix(rows []preRow) bool {
	nv := len(p.orig.vars)
	downSafe := make([]bool, nv)
	upSafe := make([]bool, nv)
	for i := range downSafe {
		downSafe[i] = true
		upSafe[i] = true
	}
	for r := range rows {
		if !rows[r].live {
			continue
		}
		for _, t := range rows[r].terms {
			v := t.Var
			switch rows[r].rel {
			case LE:
				if t.Coef < 0 {
					downSafe[v] = false
				} else {
					upSafe[v] = false
				}
			case GE:
				if t.Coef > 0 {
					downSafe[v] = false
				} else {
					upSafe[v] = false
				}
			case EQ:
				downSafe[v] = false
				upSafe[v] = false
			}
		}
	}
	sign := 1.0
	if p.orig.sense == Maximize {
		sign = -1
	}
	changed := false
	for i := range p.orig.vars {
		if p.fixed[i] || p.lb[i] >= p.ub[i] {
			continue
		}
		c := sign * p.orig.vars[i].obj
		switch {
		case c >= 0 && downSafe[i] && !math.IsInf(p.lb[i], -1):
			p.ub[i] = p.lb[i]
			changed = true
		case c <= 0 && upSafe[i] && !math.IsInf(p.ub[i], 1):
			p.lb[i] = p.ub[i]
			changed = true
		}
	}
	return changed
}

// removeDominated drops inequality rows implied by another row plus the
// bounds: normalizing both rows to a·x ≤ b form, row r dominates row s
// when b_r + max(a_s − a_r)·x over the box ≤ b_s, since then any point
// satisfying r satisfies s. This is what eliminates the nested
// slot-conflict rows the planning MIP generates: a fiber whose users at a
// pixel are a subset of another fiber's users at that pixel contributes a
// dominated ≤ 1 row.
func (p *presolved) removeDominated(rows []preRow) {
	var idx []int
	for r := range rows {
		if rows[r].live && rows[r].rel != EQ {
			idx = append(idx, r)
		}
	}
	if len(idx) < 2 || len(idx) > preDominatedCap {
		return
	}
	// Occurrence lists over the live inequality rows. A dominating row
	// almost always shares variables with the dominated one (a dominator
	// over disjoint support would have to win on bounds alone), so each
	// row is tested only against the rows containing its least-frequent
	// variable — on the planning MIP this turns the all-pairs sweep into
	// a handful of same-pixel comparisons per slot row.
	// Flat CSR layout (counts → offsets → fill) so the lists cost two
	// allocations total instead of one per variable.
	nv := len(p.orig.vars)
	cnt := make([]int, nv+1)
	total := 0
	for _, ri := range idx {
		for _, t := range rows[ri].terms {
			cnt[t.Var+1]++
			total++
		}
	}
	for v := 0; v < nv; v++ {
		cnt[v+1] += cnt[v]
	}
	flat := make([]int32, total)
	fill := make([]int, nv)
	copy(fill, cnt[:nv])
	for _, ri := range idx {
		for _, t := range rows[ri].terms {
			flat[fill[t.Var]] = int32(ri)
			fill[t.Var]++
		}
	}
	occ := func(v int) []int32 { return flat[cnt[v]:cnt[v+1]] }
	// contrib is one variable's share of max(d·x) over the box: d·ub for
	// positive d, d·lb for negative. ok is false when the needed bound is
	// infinite.
	contrib := func(d float64, v VarID) (c float64, ok bool) {
		switch {
		case d > 0:
			if math.IsInf(p.ub[v], 1) {
				return 0, false
			}
			return d * p.ub[v], true
		case d < 0:
			if math.IsInf(p.lb[v], -1) {
				return 0, false
			}
			return d * p.lb[v], true
		}
		return 0, true
	}
	as := make([]float64, nv)         // candidate row s scattered dense (normalized)
	csv := make([]float64, nv)        // per-var contribution of s alone
	norm := func(r *preRow) float64 { // sign normalizing the row to ≤
		if r.rel == GE {
			return -1
		}
		return 1
	}
	for _, si := range idx {
		s := &rows[si]
		if !s.live {
			continue
		}
		rare := -1
		for _, t := range s.terms {
			if rare < 0 || len(occ(int(t.Var))) < len(occ(rare)) {
				rare = int(t.Var)
			}
		}
		if rare < 0 {
			continue
		}
		// Scatter s once; each candidate pair then costs O(|r|): walking
		// r's terms corrects the s-only total sAll to the true
		// max-activity of (a_s − a_r) — for v in both rows the corrected
		// diff replaces s's own contribution, for v only in r it adds on
		// top. Rows touching an infinite bound just skip the sweep (no
		// finite max activity to compare).
		ss := norm(s)
		sAll, sFinite := 0.0, true
		for _, t := range s.terms {
			d := ss * t.Coef
			as[t.Var] = d
			c, ok := contrib(d, t.Var)
			if !ok {
				sFinite = false
			}
			csv[t.Var] = c
			sAll += c
		}
		if sFinite {
			bs := ss * s.rhs
			tol := preFeasTol * math.Max(1, math.Abs(bs))
			for _, ri32 := range occ(rare) {
				ri := int(ri32)
				if ri == si || !rows[ri].live {
					continue
				}
				r := &rows[ri]
				rs := norm(r)
				maxAct, finite := sAll, true
				for _, t := range r.terms {
					c, ok := contrib(as[t.Var]-rs*t.Coef, t.Var)
					if !ok {
						finite = false
						break
					}
					maxAct += c - csv[t.Var]
				}
				if finite && rs*r.rhs+maxAct <= bs+tol {
					s.live = false
					break
				}
			}
		}
		for _, t := range s.terms {
			as[t.Var], csv[t.Var] = 0, 0
		}
	}
}

// mergeDuplicates groups columns that are identical in every live row and
// in the objective, share integrality, and have finite bounds; each group
// collapses to its lowest-VarID representative over the summed bounds.
// Postsolve splits the representative's value back lexicographically
// minimally.
func (p *presolved) mergeDuplicates(rows []preRow) {
	nv := len(p.orig.vars)
	type sig struct {
		hash uint64
		n    int // term count, quick reject
	}
	sigs := make([]sig, nv)
	// Order-dependent multiply-xor mix (splitmix-style finalizer): the
	// signature must distinguish (row, coef) sequences, not be
	// cryptographic, and it runs once per nonzero — collisions are
	// resolved by the exact pairwise verification below.
	mix := func(h uint64, x uint64) uint64 {
		h ^= x
		h *= 0x9e3779b97f4a7c15
		h ^= h >> 29
		return h
	}
	for i := range sigs {
		sigs[i].hash = 14695981039346656037
	}
	for r := range rows {
		if !rows[r].live {
			continue
		}
		for _, t := range rows[r].terms {
			sigs[t.Var].hash = mix(mix(sigs[t.Var].hash, uint64(r)), math.Float64bits(t.Coef))
			sigs[t.Var].n++
		}
	}
	// Sort (hash, var) pairs and walk adjacent equal-hash runs: the same
	// grouping the map of slices produced, without an allocation per
	// bucket and with a deterministic group order.
	type cand struct {
		hash uint64
		v    int
	}
	cands := make([]cand, 0, nv)
	for i := range p.orig.vars {
		if p.fixed[i] || math.IsInf(p.lb[i], -1) || math.IsInf(p.ub[i], 1) {
			continue
		}
		h := mix(sigs[i].hash, math.Float64bits(p.orig.vars[i].obj))
		if p.orig.vars[i].integer {
			h = mix(h, 1)
		}
		cands = append(cands, cand{h, i})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].hash != cands[b].hash {
			return cands[a].hash < cands[b].hash
		}
		return cands[a].v < cands[b].v
	})
	// Verify buckets exactly: collect each candidate's (row, coef) list
	// lazily and compare representatives pairwise within the bucket.
	colOf := func(v int) []Term {
		var col []Term
		for r := range rows {
			if !rows[r].live {
				continue
			}
			for _, t := range rows[r].terms {
				if int(t.Var) == v {
					col = append(col, Term{Var: VarID(r), Coef: t.Coef})
				}
			}
		}
		return col
	}
	sameCol := func(a, b []Term) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	var bucket []int
	for lo := 0; lo < len(cands); {
		hi := lo + 1
		for hi < len(cands) && cands[hi].hash == cands[lo].hash {
			hi++
		}
		bucket = bucket[:0]
		for _, c := range cands[lo:hi] {
			bucket = append(bucket, c.v)
		}
		lo = hi
		if len(bucket) < 2 {
			continue
		}
		cols := make([][]Term, len(bucket))
		used := make([]bool, len(bucket))
		for i := range bucket {
			cols[i] = colOf(bucket[i])
		}
		for i := 0; i < len(bucket); i++ {
			if used[i] {
				continue
			}
			vi := bucket[i]
			var grp []int
			for j := i + 1; j < len(bucket); j++ {
				if used[j] {
					continue
				}
				vj := bucket[j]
				if p.orig.vars[vi].obj != p.orig.vars[vj].obj ||
					p.orig.vars[vi].integer != p.orig.vars[vj].integer ||
					!sameCol(cols[i], cols[j]) {
					continue
				}
				if grp == nil {
					grp = []int{vi}
				}
				grp = append(grp, vj)
				used[j] = true
			}
			if grp != nil {
				for _, v := range grp {
					p.grpOf[v] = len(p.groups)
				}
				p.groups = append(p.groups, grp)
			}
		}
	}
}

// build assembles the reduced model and the original→reduced column map.
// Straggler fixed terms (a fix discovered on the final pass) are folded
// into the rhs here, and a row emptied by that folding is checked and
// dropped like any other empty row.
func (p *presolved) build(rows []preRow) {
	m := p.orig
	nv := len(m.vars)
	p.newID = make([]int, nv)
	red := NewModel(m.name, m.sense)
	for i := range m.vars {
		p.newID[i] = -1
		if p.fixed[i] {
			continue
		}
		if g := p.grpOf[i]; g >= 0 && p.groups[g][0] != i {
			continue // merged into its group's representative
		}
		lb, ub := p.lb[i], p.ub[i]
		if g := p.grpOf[i]; g >= 0 {
			for _, k := range p.groups[g][1:] {
				lb += p.lb[k]
				ub += p.ub[k]
			}
		}
		v := &m.vars[i]
		if v.integer {
			p.newID[i] = int(red.AddIntVar(v.name, lb, ub, v.obj))
		} else {
			p.newID[i] = int(red.AddVar(v.name, lb, ub, v.obj))
		}
	}
	// Feed rows into the reduced model directly: every surviving term list
	// is already merged (each reduced column at most once — duplicate-group
	// non-representatives are skipped) with nonzero coefficients, so
	// AddConstraint's duplicate scan and per-call copy are pure overhead.
	// One pre-counted arena backs every reduced row's term slice.
	nnz := 0
	for r := range rows {
		if rows[r].live {
			nnz += len(rows[r].terms)
		}
	}
	arena := make([]Term, 0, nnz)
	for r := range rows {
		row := &rows[r]
		if !row.live {
			continue
		}
		start := len(arena)
		rhs := row.rhs
		for _, t := range row.terms {
			if p.fixed[t.Var] {
				rhs -= t.Coef * p.fixVal[t.Var]
				continue
			}
			id := p.newID[t.Var]
			if id < 0 {
				continue // non-representative duplicate: the rep's term carries it
			}
			arena = append(arena, Term{Var: VarID(id), Coef: t.Coef})
		}
		terms := arena[start:len(arena):len(arena)]
		if len(terms) == 0 {
			tol := preFeasTol * math.Max(1, math.Abs(rhs))
			ok := false
			switch row.rel {
			case LE:
				ok = rhs >= -tol
			case GE:
				ok = rhs <= tol
			case EQ:
				ok = math.Abs(rhs) <= tol
			}
			if !ok {
				p.infeasible = true
				return
			}
			continue
		}
		red.cons = append(red.cons, constraint{name: row.name, terms: terms, rel: row.rel, rhs: rhs})
	}
	p.reduced = red
	p.rowsRemoved = len(m.cons) - red.NumConstraints()
	p.colsRemoved = nv - red.NumVars()
}

// postsolve rehydrates a reduced-space solution against the original
// model: kept variables copy through, fixed variables take their forced
// values, and merged duplicate groups split the representative's value
// lexicographically minimally (each member takes the least value the
// remaining members' upper bounds allow). The objective is recomputed
// from the rehydrated values in original variable order — the same
// summation order the search itself uses for incumbents — so
// integer-data objectives are bit-identical with presolve on or off.
func (p *presolved) postsolve(sol Solution) Solution {
	sol.PresolveRows = p.rowsRemoved
	sol.PresolveCols = p.colsRemoved
	if len(sol.Values) != p.reduced.NumVars() ||
		(sol.Status != Optimal && sol.Status != GapLimit &&
			sol.Status != LimitReached && sol.Status != IterLimit) {
		return sol
	}
	vals := make([]float64, len(p.orig.vars))
	for i := range p.orig.vars {
		switch {
		case p.fixed[i]:
			vals[i] = p.fixVal[i]
		case p.grpOf[i] >= 0:
			// Filled by the group split below.
		default:
			vals[i] = sol.Values[p.newID[i]]
		}
	}
	for _, grp := range p.groups {
		s := sol.Values[p.newID[grp[0]]]
		for i, v := range grp {
			ubLater := 0.0
			for _, k := range grp[i+1:] {
				ubLater += p.ub[k]
			}
			val := s - ubLater
			if val < p.lb[v] {
				val = p.lb[v]
			}
			vals[v] = val
			s -= val
		}
	}
	obj := 0.0
	for i := range p.orig.vars {
		obj += p.orig.vars[i].obj * vals[i]
	}
	sol.Values = vals
	sol.Objective = obj
	return sol
}
