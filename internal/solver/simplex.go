package solver

import (
	"math"
)

// Numerical tolerances for the dense tableau simplex.
const (
	pivotTol = 1e-9 // minimum magnitude of a usable pivot element
	feasTol  = 1e-7 // feasibility / optimality tolerance
)

// SolveLP solves the linear relaxation of the model (integrality dropped)
// with a two-phase dense simplex.
func (m *Model) SolveLP() Solution {
	return m.solveLPWithBounds(nil, nil)
}

// solveLPWithBounds solves the LP relaxation with optional per-variable
// bound overrides (used by branch-and-bound). A nil map entry means "use
// the model bound".
func (m *Model) solveLPWithBounds(lbOverride, ubOverride map[VarID]float64) Solution {
	sf, ok := m.buildStandardForm(lbOverride, ubOverride)
	if !ok {
		return Solution{Status: Infeasible}
	}
	status, x := sf.solve()
	switch status {
	case Infeasible:
		return Solution{Status: Infeasible}
	case Unbounded:
		return Solution{Status: Unbounded}
	}
	// Map standard-form values back to model variables.
	values := make([]float64, len(m.vars))
	obj := 0.0
	for i := range m.vars {
		v := sf.varValue(i, x)
		values[i] = v
		obj += m.vars[i].obj * v
	}
	return Solution{Status: Optimal, Objective: obj, Values: values}
}

// standardForm is min c·y s.t. Ay = b, y ≥ 0 with a Phase-1 artificial
// basis, plus the mapping back to model variables.
type standardForm struct {
	a     [][]float64 // m×n constraint matrix
	b     []float64   // rhs, normalized nonnegative
	c     []float64   // phase-2 costs
	nVars int         // total standard-form columns
	nArt  int         // number of artificial columns (last nArt columns)

	// Per model variable: column index of its shifted value (y = x − lb),
	// and the shift. Free variables use a split pair (posCol, negCol).
	col    []int
	negCol []int
	shift  []float64

	// initialBasis holds, per row, the column that starts basic (slack or
	// artificial).
	initialBasis []int
}

// buildStandardForm converts the model. Returns ok=false when a variable's
// effective bounds are already contradictory (lb > ub).
func (m *Model) buildStandardForm(lbOverride, ubOverride map[VarID]float64) (*standardForm, bool) {
	sf := &standardForm{
		col:    make([]int, len(m.vars)),
		negCol: make([]int, len(m.vars)),
		shift:  make([]float64, len(m.vars)),
	}
	type rowSpec struct {
		terms []Term
		rel   Rel
		rhs   float64
	}
	var rows []rowSpec
	for _, c := range m.cons {
		rows = append(rows, rowSpec{terms: c.terms, rel: c.rel, rhs: c.rhs})
	}

	effLB := func(i int) float64 {
		if v, ok := lbOverride[VarID(i)]; ok {
			return v
		}
		return m.vars[i].lb
	}
	effUB := func(i int) float64 {
		if v, ok := ubOverride[VarID(i)]; ok {
			return v
		}
		return m.vars[i].ub
	}

	// Assign columns.
	n := 0
	for i := range m.vars {
		lb, ub := effLB(i), effUB(i)
		if lb > ub+feasTol {
			return nil, false
		}
		if math.IsInf(lb, -1) {
			// Free (or upper-bounded-only) variable: split x = x⁺ − x⁻.
			sf.col[i] = n
			sf.negCol[i] = n + 1
			sf.shift[i] = 0
			n += 2
		} else {
			sf.col[i] = n
			sf.negCol[i] = -1
			sf.shift[i] = lb
			n++
		}
		// Finite upper bound becomes a row: x ≤ ub.
		if !math.IsInf(ub, 1) {
			rows = append(rows, rowSpec{terms: []Term{{Var: VarID(i), Coef: 1}}, rel: LE, rhs: ub})
		}
	}

	// Count slack/surplus/artificial columns.
	mRows := len(rows)
	// Build dense rows over the variable columns first; slacks appended after.
	a := make([][]float64, mRows)
	b := make([]float64, mRows)
	rels := make([]Rel, mRows)
	for r, spec := range rows {
		row := make([]float64, n)
		rhs := spec.rhs
		for _, t := range spec.terms {
			i := int(t.Var)
			row[sf.col[i]] += t.Coef
			if sf.negCol[i] >= 0 {
				row[sf.negCol[i]] -= t.Coef
			}
			rhs -= t.Coef * sf.shift[i]
		}
		rel := spec.rel
		if rhs < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		a[r], b[r], rels[r] = row, rhs, rel
	}

	// Append slack/surplus columns, then artificials.
	nSlack := 0
	for _, rel := range rels {
		if rel != EQ {
			nSlack++
		}
	}
	nArt := 0
	for _, rel := range rels {
		if rel != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	slackAt := n
	artAt := n + nSlack
	basis := make([]int, mRows)
	for r := range a {
		row := make([]float64, total)
		copy(row, a[r])
		switch rels[r] {
		case LE:
			row[slackAt] = 1
			basis[r] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			basis[r] = artAt
			artAt++
		case EQ:
			row[artAt] = 1
			basis[r] = artAt
			artAt++
		}
		a[r] = row
	}

	// Phase-2 costs (minimization; Maximize flips sign).
	c := make([]float64, total)
	sign := 1.0
	if m.sense == Maximize {
		sign = -1
	}
	for i := range m.vars {
		c[sf.col[i]] += sign * m.vars[i].obj
		if sf.negCol[i] >= 0 {
			c[sf.negCol[i]] -= sign * m.vars[i].obj
		}
	}

	sf.a, sf.b, sf.c = a, b, c
	sf.nVars = total
	sf.nArt = nArt
	sf.initialBasis = basis
	return sf, true
}

// varValue recovers model variable i from the standard-form point x.
func (sf *standardForm) varValue(i int, x []float64) float64 {
	v := x[sf.col[i]] + sf.shift[i]
	if sf.negCol[i] >= 0 {
		v -= x[sf.negCol[i]]
	}
	return v
}

// tableau carries the dense simplex state.
type tableau struct {
	a      [][]float64 // m×n
	b      []float64   // m
	cost   []float64   // reduced-cost row (length n)
	obj    float64     // negative of current objective value offset
	basis  []int
	barred []bool // columns that may never enter (phase-2 artificials)
}

func (sf *standardForm) solve() (Status, []float64) {
	mRows := len(sf.a)
	t := &tableau{
		a:     make([][]float64, mRows),
		b:     append([]float64(nil), sf.b...),
		basis: append([]int(nil), sf.initialBasis...),
	}
	for r := range sf.a {
		t.a[r] = append([]float64(nil), sf.a[r]...)
	}

	// Phase 1: minimize the sum of artificials.
	if sf.nArt > 0 {
		phase1 := make([]float64, sf.nVars)
		for j := sf.nVars - sf.nArt; j < sf.nVars; j++ {
			phase1[j] = 1
		}
		t.setCosts(phase1)
		if status := t.iterate(); status == Unbounded {
			// Phase 1 objective is bounded below by 0; unbounded here
			// signals numerical trouble — treat as infeasible.
			return Infeasible, nil
		}
		if -t.obj > feasTol {
			return Infeasible, nil
		}
		// Pivot any artificial still in the basis out (degenerate rows).
		artStart := sf.nVars - sf.nArt
		for r, bv := range t.basis {
			if bv < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[r][j]) > pivotTol {
					t.pivot(r, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is all zeros over structural columns: redundant
				// constraint; the artificial stays basic at value 0 and
				// is harmless as long as its column never re-enters.
				_ = r
			}
		}
	}

	// Phase 2: original costs; artificial columns may never re-enter.
	artStart := sf.nVars - sf.nArt
	t.barred = make([]bool, sf.nVars)
	for j := artStart; j < sf.nVars; j++ {
		t.barred[j] = true
	}
	t.setCosts(append([]float64(nil), sf.c...))
	if status := t.iterate(); status == Unbounded {
		return Unbounded, nil
	}
	// Extract the point.
	x := make([]float64, sf.nVars)
	for r, bv := range t.basis {
		if bv < len(x) {
			x[bv] = t.b[r]
		}
	}
	return Optimal, x
}

// setCosts installs a cost vector and prices it out against the current
// basis so the reduced-cost row is valid.
func (t *tableau) setCosts(c []float64) {
	t.cost = append([]float64(nil), c...)
	t.obj = 0
	for r, bv := range t.basis {
		cb := c[bv]
		if cb == 0 {
			continue
		}
		for j := range t.cost {
			t.cost[j] -= cb * t.a[r][j]
		}
		t.obj -= cb * t.b[r]
	}
}

// iterate runs primal simplex pivots to optimality, switching from
// Dantzig's rule to Bland's rule when iterations exceed a threshold, which
// guarantees termination.
func (t *tableau) iterate() Status {
	mRows := len(t.a)
	nCols := len(t.cost)
	maxIter := 200*(mRows+nCols) + 5000
	blandAfter := 20 * (mRows + nCols)
	for iter := 0; iter < maxIter; iter++ {
		// Entering column.
		enter := -1
		if iter < blandAfter {
			best := -feasTol
			for j := 0; j < nCols; j++ {
				if t.barredCol(j) {
					continue
				}
				if t.cost[j] < best {
					best = t.cost[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < nCols; j++ {
				if t.barredCol(j) {
					continue
				}
				if t.cost[j] < -feasTol {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < mRows; r++ {
			if t.a[r][enter] > pivotTol {
				ratio := t.b[r] / t.a[r][enter]
				if ratio < bestRatio-feasTol ||
					(ratio < bestRatio+feasTol && (leave < 0 || t.basis[r] < t.basis[leave])) {
					bestRatio = ratio
					leave = r
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
	// Iteration budget exhausted: report the current (feasible) point as
	// optimal-so-far; callers treat this as optimal since Bland's rule
	// makes non-termination practically unreachable.
	return Optimal
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	inv := 1 / p
	for j := range t.a[row] {
		t.a[row][j] *= inv
	}
	t.b[row] *= inv
	for r := range t.a {
		if r == row {
			continue
		}
		f := t.a[r][col]
		if f == 0 {
			continue
		}
		for j := range t.a[r] {
			t.a[r][j] -= f * t.a[row][j]
		}
		t.b[r] -= f * t.b[row]
		if t.b[r] < 0 && t.b[r] > -feasTol {
			t.b[r] = 0
		}
	}
	f := t.cost[col]
	if f != 0 {
		for j := range t.cost {
			t.cost[j] -= f * t.a[row][j]
		}
		t.obj -= f * t.b[row]
	}
	t.basis[row] = col
}

// barredCol reports whether column j is excluded from entering the basis.
func (t *tableau) barredCol(j int) bool {
	return t.barred != nil && t.barred[j]
}
