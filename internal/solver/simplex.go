package solver

import (
	"context"
	"math"
)

// Numerical tolerances for the dense tableau simplex.
const (
	pivotTol = 1e-9 // minimum magnitude of a usable pivot element
	feasTol  = 1e-7 // feasibility / optimality tolerance
)

// ctxCheckMask gates how often the pivot loops poll Options.Context:
// every ctxCheckMask+1 iterations, including iteration 0 (a power-of-two
// mask so the test is one AND). Cancellation surfaces as IterLimit — the
// current point is feasible for the phase being solved but carries no
// certificate, exactly as if the pivot budget had run out — so one long
// LP can no longer overrun a caller's deadline.
const ctxCheckMask = 63

// SolveLP solves the linear relaxation of the model (integrality
// dropped) with the default engine: the LU-factorized revised simplex,
// falling back to the dense two-phase tableau on the rare solves the
// revised path cannot certify. Use SolveWithOptions with
// Options.DenseSimplex to force the dense path.
func (m *Model) SolveLP() Solution {
	return m.solveRelaxation(Options{})
}

// lpScratch is reusable simplex workspace: the dense tableau, basis,
// bound, and cost buffers one LP solve needs. Buffers grow to the largest
// instance seen and are then reused, so a branch-and-bound worker solving
// thousands of node relaxations stops re-allocating dense matrices on
// every node. A scratch must not be shared between concurrent solves;
// each B&B worker owns one.
type lpScratch struct {
	lb, ub []float64 // effective per-variable bounds for this solve

	col, negCol []int     // model var → structural column (+ split column)
	shift       []float64 // model var → lower-bound shift

	rels []Rel  // per-row relation after rhs normalization
	neg  []bool // per-row: coefficients negated during normalization

	flat  []float64   // dense tableau backing storage (rows × total)
	a     [][]float64 // row views into flat
	b     []float64   // rhs, normalized nonnegative (cold) or parent-signed (warm)
	basis []int       // per-row basic column

	cobj    []float64 // phase-2 cost vector (model objective)
	phase1  []float64 // phase-1 cost vector (artificial sum)
	cost    []float64 // working reduced-cost row
	barred  []bool    // columns banned from entering (phase-2 artificials)
	inst    []bool    // basis-installation progress (warm starts)
	slackOf []int     // per-row slack/surplus column, -1 for EQ rows

	x      []float64 // standard-form point
	values []float64 // model-variable values (aliased by returned Solutions)

	nz tabSparse // compressed sparse row structure of the fresh tableau

	maxIter    int             // per-call pivot cap (0 = size-derived default)
	ctx        context.Context // cancellation observed at pivot intervals (nil = never)
	lastRows   int             // rows of the most recent tableau build
	lastTotal  int             // columns of the most recent tableau build
	lastArt    int             // first artificial column of the most recent build
	lastPivots int             // simplex pivots performed by the most recent solve
}

// tabSparse is the compressed-sparse-row companion of the dense tableau:
// per-row nonzero column lists recorded when the tableau is built. The
// FlexWAN formulations are extremely sparse — a slot-conflict or capacity
// row touches a handful of the hundreds of columns — so scans restricted
// to a row's list skip almost the whole dense row. A list stays valid
// only until a pivot writes into its row (clean flag); dirty rows fall
// back to dense scans, and every use skips exact zeros only, so the
// arithmetic is bit-identical to the fully dense code path.
type tabSparse struct {
	idx   []int32 // concatenated nonzero column indices, row-major, ascending
	off   []int   // per-row offsets into idx (len rows+1)
	clean []bool  // row's idx list still matches its dense row
	buf   []int32 // pivot-row gather scratch
}

// rowList returns row r's nonzero columns as recorded at build time.
func (s *tabSparse) rowList(r int) []int32 { return s.idx[s.off[r]:s.off[r+1]] }

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growRels(s []Rel, n int) []Rel {
	if cap(s) < n {
		return make([]Rel, n)
	}
	return s[:n]
}

func growRows(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		return make([][]float64, n)
	}
	return s[:n]
}

// resolveModelBounds fills lb/ub with the model's own bounds.
func (sc *lpScratch) resolveModelBounds(m *Model) {
	n := len(m.vars)
	sc.lb = growFloats(sc.lb, n)
	sc.ub = growFloats(sc.ub, n)
	for i := range m.vars {
		sc.lb[i] = m.vars[i].lb
		sc.ub[i] = m.vars[i].ub
	}
}

// buildColumns assigns structural columns for the effective bounds in
// sc.lb/sc.ub: shifted columns for lower-bounded variables, split x⁺ − x⁻
// pairs for free ones. Returns the structural column count, or ok=false
// when some variable's effective bounds contradict each other (the
// subproblem is infeasible before any pivoting).
func (m *Model) buildColumns(sc *lpScratch) (int, bool) {
	nv := len(m.vars)
	sc.col = growInts(sc.col, nv)
	sc.negCol = growInts(sc.negCol, nv)
	sc.shift = growFloats(sc.shift, nv)
	n := 0
	for i := 0; i < nv; i++ {
		lb, ub := sc.lb[i], sc.ub[i]
		if lb > ub+feasTol {
			return 0, false
		}
		if math.IsInf(lb, -1) {
			// Free (or upper-bounded-only) variable: split x = x⁺ − x⁻.
			sc.col[i] = n
			sc.negCol[i] = n + 1
			sc.shift[i] = 0
			n += 2
		} else {
			sc.col[i] = n
			sc.negCol[i] = -1
			sc.shift[i] = lb
			n++
		}
	}
	return n, true
}

// countAux counts the slack/surplus and artificial columns the normalized
// rows in sc.rels[:mRows] need.
func countAux(sc *lpScratch, mRows int) (nSlack, nArt int) {
	for r := 0; r < mRows; r++ {
		if sc.rels[r] != EQ {
			nSlack++
		}
		if sc.rels[r] != LE {
			nArt++
		}
	}
	return nSlack, nArt
}

// fillTableau writes the dense standard form into the scratch-owned
// backing array: constraint rows first, then one x ≤ ub row per finite
// upper bound, with slack and artificial columns appended per sc.rels.
// sc.b, sc.rels, and sc.neg must already hold the row data; the initial
// basis is the slack (LE) or artificial (GE/EQ) column of each row.
func (m *Model) fillTableau(sc *lpScratch, n, mRows, total, nArt int) {
	sc.flat = growFloats(sc.flat, mRows*total)
	clear(sc.flat)
	sc.a = growRows(sc.a, mRows)
	for r := 0; r < mRows; r++ {
		sc.a[r] = sc.flat[r*total : (r+1)*total]
	}
	sc.basis = growInts(sc.basis, mRows)
	fill := func(r int, v VarID, coef float64) {
		if sc.neg[r] {
			coef = -coef
		}
		row := sc.a[r]
		row[sc.col[v]] += coef
		if sc.negCol[v] >= 0 {
			row[sc.negCol[v]] -= coef
		}
	}
	for ci := range m.cons {
		for _, t := range m.cons[ci].terms {
			fill(ci, t.Var, t.Coef)
		}
	}
	ur := len(m.cons)
	for i := range m.vars {
		if !math.IsInf(sc.ub[i], 1) {
			fill(ur, VarID(i), 1)
			ur++
		}
	}
	sc.slackOf = growInts(sc.slackOf, mRows)
	slackAt, artAt := n, total-nArt
	for r := 0; r < mRows; r++ {
		sc.slackOf[r] = -1
		switch sc.rels[r] {
		case LE:
			sc.a[r][slackAt] = 1
			sc.slackOf[r] = slackAt
			sc.basis[r] = slackAt
			slackAt++
		case GE:
			sc.a[r][slackAt] = -1
			sc.slackOf[r] = slackAt
			slackAt++
			sc.a[r][artAt] = 1
			sc.basis[r] = artAt
			artAt++
		case EQ:
			sc.a[r][artAt] = 1
			sc.basis[r] = artAt
			artAt++
		}
	}
	sc.cost = growFloats(sc.cost, total)
	// Record the fresh tableau's row sparsity: ascending nonzero column
	// lists per row, valid until a pivot dirties the row.
	sc.nz.off = growInts(sc.nz.off, mRows+1)
	sc.nz.clean = growBools(sc.nz.clean, mRows)
	sc.nz.idx = sc.nz.idx[:0]
	for r := 0; r < mRows; r++ {
		sc.nz.off[r] = len(sc.nz.idx)
		for j, v := range sc.a[r] {
			if v != 0 {
				sc.nz.idx = append(sc.nz.idx, int32(j))
			}
		}
		sc.nz.clean[r] = true
	}
	sc.nz.off[mRows] = len(sc.nz.idx)
	if cap(sc.nz.buf) < total {
		sc.nz.buf = make([]int32, 0, total)
	}
	sc.lastRows, sc.lastTotal, sc.lastArt = mRows, total, total-nArt
}

// buildCosts fills sc.cobj with the phase-2 cost vector (minimization;
// Maximize flips sign).
func (m *Model) buildCosts(sc *lpScratch, total int) {
	sc.cobj = growFloats(sc.cobj, total)
	clear(sc.cobj)
	sign := 1.0
	if m.sense == Maximize {
		sign = -1
	}
	for i := range m.vars {
		sc.cobj[sc.col[i]] += sign * m.vars[i].obj
		if sc.negCol[i] >= 0 {
			sc.cobj[sc.negCol[i]] -= sign * m.vars[i].obj
		}
	}
}

// extract maps the tableau's basic point back to model variables.
func (m *Model) extract(sc *lpScratch, t *tableau, total int) Solution {
	nv := len(m.vars)
	sc.x = growFloats(sc.x, total)
	clear(sc.x)
	for r, bv := range t.basis {
		if bv < total {
			sc.x[bv] = t.b[r]
		}
	}
	sc.values = growFloats(sc.values, nv)
	obj := 0.0
	for i := 0; i < nv; i++ {
		v := sc.x[sc.col[i]] + sc.shift[i]
		if sc.negCol[i] >= 0 {
			v -= sc.x[sc.negCol[i]]
		}
		sc.values[i] = v
		obj += m.vars[i].obj * v
	}
	return Solution{Status: Optimal, Objective: obj, Values: sc.values}
}

// solveLPBounds solves the LP relaxation under the effective bounds in
// sc.lb/sc.ub with a two-phase dense simplex, reusing sc's buffers
// throughout: the standard form (min c·y s.t. Ay = b, y ≥ 0 with a
// Phase-1 artificial basis) is written directly into the scratch-owned
// tableau, so a solve allocates nothing once the scratch has warmed up.
//
// The returned Solution's Values slice aliases sc.values: callers that
// keep a solution across solves must copy it first.
func (m *Model) solveLPBounds(sc *lpScratch) Solution {
	sc.lastPivots = 0
	nv := len(m.vars)
	n, ok := m.buildColumns(sc)
	if !ok {
		return Solution{Status: Infeasible}
	}

	// Pass 1: per-row shifted rhs and normalized relation. Rows are the
	// model constraints followed by one x ≤ ub row per finite upper bound.
	maxRows := len(m.cons) + nv
	sc.b = growFloats(sc.b, maxRows)
	sc.rels = growRels(sc.rels, maxRows)
	sc.neg = growBools(sc.neg, maxRows)
	mRows := 0
	addRow := func(rhs float64, rel Rel) {
		negated := rhs < 0
		if negated {
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		sc.b[mRows], sc.rels[mRows], sc.neg[mRows] = rhs, rel, negated
		mRows++
	}
	for ci := range m.cons {
		c := &m.cons[ci]
		rhs := c.rhs
		for _, t := range c.terms {
			rhs -= t.Coef * sc.shift[t.Var]
		}
		addRow(rhs, c.rel)
	}
	for i := 0; i < nv; i++ {
		if !math.IsInf(sc.ub[i], 1) {
			addRow(sc.ub[i]-sc.shift[i], LE)
		}
	}

	nSlack, nArt := countAux(sc, mRows)
	total := n + nSlack + nArt
	m.fillTableau(sc, n, mRows, total, nArt)
	m.buildCosts(sc, total)

	t := &tableau{a: sc.a, b: sc.b[:mRows], cost: sc.cost, basis: sc.basis, nz: &sc.nz, maxIter: sc.maxIter, ctx: sc.ctx}

	// Phase 1: minimize the sum of artificials.
	artStart := total - nArt
	if nArt > 0 {
		sc.phase1 = growFloats(sc.phase1, total)
		clear(sc.phase1)
		for j := artStart; j < total; j++ {
			sc.phase1[j] = 1
		}
		t.setCosts(sc.phase1)
		switch t.iterate() {
		case Unbounded:
			// Phase 1 objective is bounded below by 0; unbounded here
			// signals numerical trouble — treat as infeasible.
			sc.lastPivots = t.pivots
			return Solution{Status: Infeasible}
		case IterLimit:
			sc.lastPivots = t.pivots
			return Solution{Status: IterLimit}
		}
		if -t.obj > feasTol {
			sc.lastPivots = t.pivots
			return Solution{Status: Infeasible}
		}
		// Pivot any artificial still in the basis out (degenerate rows).
		// A row that is all zeros over structural columns is a redundant
		// constraint; its artificial stays basic at value 0 and is
		// harmless as long as its column never re-enters (barred below).
		for r, bv := range t.basis {
			if bv < artStart {
				continue
			}
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[r][j]) > pivotTol {
					t.pivot(r, j)
					break
				}
			}
		}
	}

	// Phase 2: original costs; artificial columns may never re-enter.
	sc.barred = growBools(sc.barred, total)
	clear(sc.barred)
	for j := artStart; j < total; j++ {
		sc.barred[j] = true
	}
	t.barred = sc.barred
	t.setCosts(sc.cobj)
	switch t.iterate() {
	case Unbounded:
		sc.lastPivots = t.pivots
		return Solution{Status: Unbounded}
	case IterLimit:
		sc.lastPivots = t.pivots
		return Solution{Status: IterLimit}
	}
	sc.lastPivots = t.pivots
	return m.extract(sc, t, total)
}

// tableau carries the dense simplex state. All fields are views into an
// lpScratch; the tableau mutates them in place.
type tableau struct {
	a       [][]float64 // m×n
	b       []float64   // m
	cost    []float64   // reduced-cost row (length n)
	obj     float64     // negative of current objective value offset
	basis   []int
	barred  []bool          // columns that may never enter (phase-2 artificials)
	nz      *tabSparse      // build-time row sparsity (nil: always scan dense)
	maxIter int             // per-call pivot cap (0 = size-derived default)
	ctx     context.Context // cancellation observed every ctxCheckMask+1 pivots
	pivots  int             // Gauss-Jordan pivots performed (all phases)
}

// setCosts installs a cost vector (copied into the working row) and
// prices it out against the current basis so the reduced-cost row is
// valid. Rows still clean since the tableau build price out over their
// nonzero lists only — entries off the list are exactly zero, so the
// skipped subtractions are no-ops and the result is bit-identical.
func (t *tableau) setCosts(c []float64) {
	copy(t.cost, c)
	t.obj = 0
	for r, bv := range t.basis {
		cb := c[bv]
		if cb == 0 {
			continue
		}
		row := t.a[r]
		if t.nz != nil && t.nz.clean[r] {
			for _, j := range t.nz.rowList(r) {
				t.cost[j] -= cb * row[j]
			}
		} else {
			for j := range t.cost {
				t.cost[j] -= cb * row[j]
			}
		}
		t.obj -= cb * t.b[r]
	}
}

// iterate runs primal simplex pivots to optimality, switching from
// Dantzig's rule to Bland's rule when iterations exceed a threshold, which
// guarantees termination within the pivot budget. The budget counts
// cumulative tableau pivots (t.pivots), so phase 1, the inter-phase
// artificial pivot-out, and phase 2 all draw from the same cap instead of
// each phase getting a fresh one. Exhausting the budget returns IterLimit:
// the current point is feasible for the phase being solved but carries no
// optimality certificate.
func (t *tableau) iterate() Status {
	mRows := len(t.a)
	nCols := len(t.cost)
	maxIter := t.maxIter
	if maxIter <= 0 {
		maxIter = 200*(mRows+nCols) + 5000
	}
	blandAfter := 20 * (mRows + nCols)
	for iter := 0; t.pivots < maxIter; iter++ {
		if iter&ctxCheckMask == 0 && t.ctx != nil && t.ctx.Err() != nil {
			return IterLimit
		}
		// Entering column.
		enter := -1
		if iter < blandAfter {
			best := -feasTol
			for j := 0; j < nCols; j++ {
				if t.barredCol(j) {
					continue
				}
				if t.cost[j] < best {
					best = t.cost[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < nCols; j++ {
				if t.barredCol(j) {
					continue
				}
				if t.cost[j] < -feasTol {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < mRows; r++ {
			if t.a[r][enter] > pivotTol {
				ratio := t.b[r] / t.a[r][enter]
				if ratio < bestRatio-feasTol ||
					(ratio < bestRatio+feasTol && (leave < 0 || t.basis[r] < t.basis[leave])) {
					bestRatio = ratio
					leave = r
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
	// Iteration budget exhausted: surface it instead of passing the
	// current point off as optimal — callers propagate IterLimit so the
	// lack of a certificate is visible in the solve status.
	return IterLimit
}

// pivot performs a Gauss-Jordan pivot on (row, col). The scaled pivot
// row's nonzero columns are gathered once — from its build-time sparsity
// list when the row is still clean, from a dense scan otherwise — and
// every elimination then touches only those columns. Skipped entries are
// exactly zero, so x − f·0 never runs and the arithmetic is bit-identical
// to a fully dense elimination.
func (t *tableau) pivot(row, col int) {
	t.pivots++
	prow := t.a[row]
	inv := 1 / prow[col]
	for j := range prow {
		prow[j] *= inv
	}
	t.b[row] *= inv
	var nz []int32
	if t.nz != nil {
		nz = t.nz.buf[:0]
		if t.nz.clean[row] {
			for _, j := range t.nz.rowList(row) {
				if prow[j] != 0 {
					nz = append(nz, j)
				}
			}
		} else {
			for j, v := range prow {
				if v != 0 {
					nz = append(nz, int32(j))
				}
			}
		}
		t.nz.buf = nz
	}
	for r := range t.a {
		if r == row {
			continue
		}
		f := t.a[r][col]
		if f == 0 {
			continue
		}
		arow := t.a[r]
		if nz != nil {
			for _, j := range nz {
				arow[j] -= f * prow[j]
			}
		} else {
			for j := range arow {
				arow[j] -= f * prow[j]
			}
		}
		t.b[r] -= f * t.b[row]
		if t.b[r] < 0 && t.b[r] > -feasTol {
			t.b[r] = 0
		}
		if t.nz != nil {
			t.nz.clean[r] = false
		}
	}
	f := t.cost[col]
	if f != 0 {
		if nz != nil {
			for _, j := range nz {
				t.cost[j] -= f * prow[j]
			}
		} else {
			for j := range t.cost {
				t.cost[j] -= f * prow[j]
			}
		}
		t.obj -= f * t.b[row]
	}
	if t.nz != nil {
		t.nz.clean[row] = false
	}
	t.basis[row] = col
}

// barredCol reports whether column j is excluded from entering the basis.
func (t *tableau) barredCol(j int) bool {
	return t.barred != nil && t.barred[j]
}
