package solver

import (
	"math"
)

// installTol is the minimum pivot magnitude accepted while re-installing a
// snapshot basis into a freshly built tableau. Looser than pivotTol: a
// near-singular install is better refused (falling back to the cold
// two-phase solve) than performed.
const installTol = 1e-7

// basisSnap is the compact per-node basis snapshot a branch-and-bound node
// carries so its children can warm-start from the parent's optimum. It
// records the optimal basis plus the row orientation (neg) the parent's
// tableau was normalized with, and the tableau dimensions as a structural
// fingerprint: any bound change that alters the standard form's shape — a
// lower bound leaving −∞ removes a split column, an upper bound leaving
// +∞ adds a row — changes rows or cols and disqualifies the snapshot.
// Snapshots are immutable after creation and shared by both children.
type basisSnap struct {
	rows, cols int
	basis      []int32
	neg        []bool
}

// snapshot captures the basis of the most recent solve in sc. Call only
// after solveLPBounds or solveLPWarm returned Optimal.
func (sc *lpScratch) snapshot() *basisSnap {
	s := &basisSnap{
		rows:  sc.lastRows,
		cols:  sc.lastTotal,
		basis: make([]int32, sc.lastRows),
		neg:   append([]bool(nil), sc.neg[:sc.lastRows]...),
	}
	for r := 0; r < sc.lastRows; r++ {
		s.basis[r] = int32(sc.basis[r])
	}
	return s
}

func flipRel(rel Rel) Rel {
	switch rel {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// solveLPWarm re-optimizes the LP under sc.lb/sc.ub starting from the
// parent basis in snap, using dual simplex to repair the primal
// infeasibility a tightened bound introduces. Since branching only
// changes one variable's bound — A and c are untouched — the parent's
// optimal basis stays dual feasible for the child, and the dual simplex
// typically needs a handful of pivots where the cold two-phase primal
// needs hundreds.
//
// The bool result reports whether the warm start resolved the node: when
// false the caller must fall back to solveLPBounds. Fallback triggers
// (all safe, never wrong-answer): the tableau layout no longer matches
// the snapshot, the snapshot basis is singular in the rebuilt tableau,
// the priced-out costs are not dual feasible, the dual pivot budget runs
// out, or a redundant parent row turned binding (detectable only as a
// basic artificial with positive value, which phase 1 must re-decide).
func (m *Model) solveLPWarm(sc *lpScratch, snap *basisSnap) (Solution, bool) {
	sc.lastPivots = 0
	nv := len(m.vars)
	n, ok := m.buildColumns(sc)
	if !ok {
		// Bound contradiction (e.g. branching pushed lb above ub): the
		// child is infeasible with no pivoting at all.
		return Solution{Status: Infeasible}, true
	}

	mRows := len(m.cons)
	for i := 0; i < nv; i++ {
		if !math.IsInf(sc.ub[i], 1) {
			mRows++
		}
	}
	if mRows != snap.rows {
		return Solution{}, false
	}

	// Rebuild the rows in the parent's orientation: reuse the parent's
	// neg flags instead of re-deriving them from the child's rhs signs,
	// so the rebuilt matrix is the one snap.basis is a basis of. The rhs
	// may come out negative — that is exactly the primal infeasibility
	// the dual simplex repairs.
	sc.b = growFloats(sc.b, mRows)
	sc.rels = growRels(sc.rels, mRows)
	sc.neg = growBools(sc.neg, mRows)
	row := 0
	addRow := func(rhs float64, rel Rel) {
		if snap.neg[row] {
			rhs = -rhs
			rel = flipRel(rel)
		}
		sc.b[row], sc.rels[row], sc.neg[row] = rhs, rel, snap.neg[row]
		row++
	}
	for ci := range m.cons {
		c := &m.cons[ci]
		rhs := c.rhs
		for _, t := range c.terms {
			rhs -= t.Coef * sc.shift[t.Var]
		}
		addRow(rhs, c.rel)
	}
	for i := 0; i < nv; i++ {
		if !math.IsInf(sc.ub[i], 1) {
			addRow(sc.ub[i]-sc.shift[i], LE)
		}
	}

	nSlack, nArt := countAux(sc, mRows)
	total := n + nSlack + nArt
	if total != snap.cols {
		return Solution{}, false
	}
	m.fillTableau(sc, n, mRows, total, nArt)

	t := &tableau{a: sc.a, b: sc.b[:mRows], cost: sc.cost, basis: sc.basis, nz: &sc.nz, maxIter: sc.maxIter, ctx: sc.ctx}
	sc.inst = growBools(sc.inst, mRows)
	if !t.installBasis(snap.basis, sc.inst) {
		sc.lastPivots = t.pivots
		return Solution{}, false
	}

	m.buildCosts(sc, total)
	artStart := total - nArt
	sc.barred = growBools(sc.barred, total)
	clear(sc.barred)
	for j := artStart; j < total; j++ {
		sc.barred[j] = true
	}
	t.barred = sc.barred
	t.setCosts(sc.cobj)

	// The parent basis should price out dual feasible (only b changed);
	// if roundoff broke that, a dual pivot could loop — refuse instead.
	for j := 0; j < total; j++ {
		if !sc.barred[j] && t.cost[j] < -feasTol {
			sc.lastPivots = t.pivots
			return Solution{}, false
		}
	}

	status, done := t.dualIterate()
	sc.lastPivots = t.pivots
	if !done {
		return Solution{}, false
	}
	if status == Infeasible {
		return Solution{Status: Infeasible}, true
	}
	// A parent-redundant row (basic artificial at 0) that became binding
	// shows up as a basic artificial with positive value: the dual
	// simplex cannot price artificials back out, so let phase 1 decide.
	for r, bv := range t.basis {
		if bv >= artStart && t.b[r] > feasTol {
			return Solution{}, false
		}
	}
	return m.extract(sc, t, total), true
}

// solveLPDive re-optimizes the tableau still sitting in sc — the caller
// guarantees it is the node's parent's optimal tableau — after applying
// the bound changes as O(rows) rhs updates each, then repairing with dual
// simplex once. No rebuild, no basis re-installation: tightening an upper
// bound by δ shifts the original rhs of that variable's ub row by δ, so
// the current rhs moves by δ·B⁻¹e_r, and B⁻¹e_r is exactly the tableau
// column of that row's slack; raising a lower bound by δ grows the
// variable's shift, which moves the current rhs by −δ·B⁻¹A·e_v — the
// tableau column of the variable itself. The reduced-cost row does not
// depend on the rhs, so the basis stays dual feasible and the dual
// simplex can start immediately. Changes may arrive in any order (they
// all tighten, so min/max against the current bounds makes each δ exact)
// and typically hold the node's branching plus its parent's reduced-cost
// fixings.
//
// On ok=false the caller must re-solve cold (sc.lb/sc.ub may have been
// partially updated but the tableau is no longer meaningful; the cold
// path re-resolves bounds from the model and the full chain anyway).
func (m *Model) solveLPDive(sc *lpScratch, changes []*boundChange) (Solution, bool) {
	sc.lastPivots = 0
	rows, total := sc.lastRows, sc.lastTotal
	for _, c := range changes {
		v := c.v
		if c.upper {
			if math.IsInf(sc.ub[v], 1) {
				// The ub row does not exist yet: structural change, rebuild.
				return Solution{}, false
			}
			newUb := math.Min(sc.ub[v], c.val)
			if newUb < sc.lb[v]-feasTol {
				return Solution{Status: Infeasible}, true
			}
			delta := newUb - sc.ub[v]
			if delta == 0 {
				continue // already at least this tight
			}
			sc.ub[v] = newUb
			// Row index of v's ub row: cons rows first, then finite-ub vars
			// in variable order.
			r := len(m.cons)
			for i := 0; i < int(v); i++ {
				if !math.IsInf(sc.ub[i], 1) {
					r++
				}
			}
			sCol := sc.slackOf[r]
			if sCol < 0 {
				return Solution{}, false
			}
			for i := 0; i < rows; i++ {
				sc.b[i] += delta * sc.a[i][sCol]
			}
		} else {
			if math.IsInf(sc.lb[v], -1) {
				// The variable is split x⁺ − x⁻: structural change, rebuild.
				return Solution{}, false
			}
			newLb := math.Max(sc.lb[v], c.val)
			if newLb > sc.ub[v]+feasTol {
				return Solution{Status: Infeasible}, true
			}
			delta := newLb - sc.lb[v]
			if delta == 0 {
				continue
			}
			sc.lb[v] = newLb
			sc.shift[v] = newLb
			col := sc.col[v]
			for i := 0; i < rows; i++ {
				sc.b[i] -= delta * sc.a[i][col]
			}
		}
	}

	t := &tableau{a: sc.a, b: sc.b[:rows], cost: sc.cost, basis: sc.basis, barred: sc.barred, nz: &sc.nz, maxIter: sc.maxIter, ctx: sc.ctx}
	status, done := t.dualIterate()
	sc.lastPivots = t.pivots
	if !done {
		return Solution{}, false
	}
	if status == Infeasible {
		return Solution{Status: Infeasible}, true
	}
	for r, bv := range t.basis {
		if bv >= sc.lastArt && t.b[r] > feasTol {
			return Solution{}, false
		}
	}
	return m.extract(sc, t, total), true
}

// installBasis pivots the tableau's initial slack/artificial basis into
// the target basis with multi-pass Gauss-Jordan. Rows whose initial basic
// column already matches the target are skipped outright: an initial
// basic column is a unit column touched by no other row, and pivots at
// other rows cannot disturb it (the pivot row holds a zero there).
// Returns false if the passes stall before every row is installed — the
// target basis is singular (or numerically near-singular) in this
// tableau.
func (t *tableau) installBasis(target []int32, inst []bool) bool {
	remaining := 0
	for r := range target {
		if t.basis[r] == int(target[r]) {
			inst[r] = true
		} else {
			inst[r] = false
			remaining++
		}
	}
	for remaining > 0 {
		progress := false
		for r := range target {
			if inst[r] {
				continue
			}
			j := int(target[r])
			if math.Abs(t.a[r][j]) > installTol {
				t.pivot(r, j)
				inst[r] = true
				remaining--
				progress = true
			}
		}
		if !progress {
			return false
		}
	}
	return true
}

// dualIterate runs dual simplex pivots: pick the most-negative rhs row,
// enter the column that keeps the cost row dual feasible (min ratio over
// negative entries of the leaving row), and pivot, until the rhs is
// nonnegative (Optimal) or some negative row has no negative entry
// (Infeasible). Switches to first-index row selection after a Bland-style
// threshold. The budget counts cumulative tableau pivots (t.pivots), so
// warm-start basis re-installation pivots draw from the same cap. Returns
// (IterLimit, false) if the pivot budget runs out, in which case the
// caller must fall back to a cold solve.
func (t *tableau) dualIterate() (Status, bool) {
	mRows := len(t.a)
	nCols := len(t.cost)
	maxIter := t.maxIter
	if maxIter <= 0 {
		maxIter = 100*(mRows+nCols) + 2000
	}
	blandAfter := 20 * (mRows + nCols)
	for iter := 0; t.pivots < maxIter; iter++ {
		if iter&ctxCheckMask == 0 && t.ctx != nil && t.ctx.Err() != nil {
			return IterLimit, false
		}
		leave := -1
		if iter < blandAfter {
			worst := -feasTol
			for r := 0; r < mRows; r++ {
				if t.b[r] < worst {
					worst = t.b[r]
					leave = r
				}
			}
		} else {
			for r := 0; r < mRows; r++ {
				if t.b[r] < -feasTol {
					leave = r
					break
				}
			}
		}
		if leave < 0 {
			return Optimal, true
		}
		row := t.a[leave]
		enter := -1
		bestRatio := math.Inf(1)
		if t.nz != nil && t.nz.clean[leave] {
			// Ratio-test candidates restricted to the leaving row's
			// build-time nonzeros: entries off the list are exactly zero
			// and fail the row[j] < -pivotTol test anyway, and the list is
			// in ascending column order, so the selected column matches
			// the dense scan's bit for bit.
			for _, j32 := range t.nz.rowList(leave) {
				j := int(j32)
				if t.barredCol(j) || row[j] >= -pivotTol {
					continue
				}
				ratio := t.cost[j] / -row[j]
				if ratio < bestRatio-feasTol {
					bestRatio = ratio
					enter = j
				}
			}
		} else {
			for j := 0; j < nCols; j++ {
				if t.barredCol(j) || row[j] >= -pivotTol {
					continue
				}
				ratio := t.cost[j] / -row[j]
				if ratio < bestRatio-feasTol {
					bestRatio = ratio
					enter = j
				}
			}
		}
		if enter < 0 {
			// Row reads Σ aj·xj = b with every aj ≥ 0 (over admissible
			// columns) and b < 0: no nonnegative point satisfies it.
			return Infeasible, true
		}
		t.pivot(leave, enter)
	}
	return IterLimit, false
}
