package solver

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randomFactorModel builds a model whose constraint matrix is dense enough
// for basis factorization exercises: nRows rows over nCols variables with
// the given nonzero density. Bounds and relations are irrelevant to the
// factorization itself; only the matrix and the slack columns matter.
func randomFactorModel(t *testing.T, rng *rand.Rand, nRows, nCols int, density float64) *Model {
	t.Helper()
	m := NewModel("lu-prop", Minimize)
	vars := make([]VarID, nCols)
	for i := range vars {
		vars[i] = m.AddVar(fmt.Sprintf("x%d", i), 0, 10, 1)
	}
	for r := 0; r < nRows; r++ {
		var terms []Term
		for i := range vars {
			if rng.Float64() < density {
				c := rng.NormFloat64() * 4
				if math.Abs(c) < 0.1 {
					c = 1
				}
				terms = append(terms, Term{Var: vars[i], Coef: c})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: vars[rng.Intn(nCols)], Coef: 1})
		}
		if err := m.AddConstraint(fmt.Sprintf("r%d", r), terms, LE, 100); err != nil {
			t.Fatalf("AddConstraint: %v", err)
		}
	}
	return m
}

// scatterBasisCol writes basis column col (structural, or cols+r for row
// r's slack) into the dense original-row vector x (must be zero on entry).
func scatterBasisCol(csc *cscMatrix, col int32, x []float64) {
	if int(col) >= csc.cols {
		x[col-int32(csc.cols)] = 1
		return
	}
	for k := csc.colPtr[col]; k < csc.colPtr[col+1]; k++ {
		x[csc.rowIdx[k]] = csc.val[k]
	}
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// TestForrestTomlinDifferential drives three factorizations of the same
// evolving basis through random pivot sequences — Forrest–Tomlin updates,
// the legacy product-form eta file, and a reference that refactorizes from
// scratch after every pivot — and checks that FTRAN and BTRAN agree on all
// three after every step. This is the correctness contract of the update
// algebra: an updated factor must solve the same linear systems as a fresh
// factorization of the updated basis.
func TestForrestTomlinDifferential(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(900 + int64(trial)))
		m := randomFactorModel(t, rng, 25, 50, 0.25)
		csc := m.cscMatrixOf()
		nRows, nCols := csc.rows, csc.cols

		// All-slack starting basis.
		basis := make([]int32, nRows)
		inBasis := make(map[int32]bool, nRows)
		for r := 0; r < nRows; r++ {
			basis[r] = int32(nCols + r)
			inBasis[basis[r]] = true
		}

		ft := &luFactor{ft: true}
		eta := &luFactor{}
		ref := &luFactor{}
		x := make([]float64, nRows)
		refactorAll := func() {
			for _, f := range []*luFactor{ft, eta, ref} {
				if !f.factorize(basis, csc, x) {
					t.Fatalf("trial %d: factorize failed on nonsingular basis", trial)
				}
			}
		}
		refactorAll()

		wFT := make([]float64, nRows)
		wEta := make([]float64, nRows)
		wRef := make([]float64, nRows)
		c := make([]float64, nRows)
		bFT := make([]float64, nRows)
		bEta := make([]float64, nRows)
		bRef := make([]float64, nRows)

		steps := 0
		for attempt := 0; attempt < 400 && steps < 120; attempt++ {
			enter := int32(rng.Intn(nCols + nRows))
			if inBasis[enter] {
				continue
			}
			p := rng.Intn(nRows)

			// FTRAN the entering column through all three factors.
			for _, pair := range []struct {
				f   *luFactor
				out []float64
			}{{ft, wFT}, {eta, wEta}, {ref, wRef}} {
				scatterBasisCol(csc, enter, x)
				pair.f.ftran(x, pair.out)
			}
			if d := maxAbsDiff(wFT, wRef); d > 1e-6 {
				t.Fatalf("trial %d step %d: FT ftran diverges from fresh factorization by %g", trial, steps, d)
			}
			if d := maxAbsDiff(wEta, wRef); d > 1e-6 {
				t.Fatalf("trial %d step %d: eta-file ftran diverges from fresh factorization by %g", trial, steps, d)
			}
			alphaP := wRef[p]
			if math.Abs(alphaP) < 1e-2 {
				continue // replacement would be near-singular; pick another
			}

			// Apply the pivot to each maintenance scheme, mirroring the
			// production policy on update refusal.
			leave := basis[p]
			basis[p] = enter
			delete(inBasis, leave)
			inBasis[enter] = true
			if ft.needRefactor() || !ft.ftUpdate(p, wFT[p]) {
				if !ft.factorize(basis, csc, x) {
					t.Fatalf("trial %d step %d: FT refactorize failed", trial, steps)
				}
			}
			if eta.nEtas() >= luMaxEtas {
				if !eta.factorize(basis, csc, x) {
					t.Fatalf("trial %d step %d: eta refactorize failed", trial, steps)
				}
			} else {
				eta.appendEta(p, wEta)
			}
			if !ref.factorize(basis, csc, x) {
				t.Fatalf("trial %d step %d: reference refactorize failed — basis became singular", trial, steps)
			}
			steps++

			// BTRAN a random dual vector through all three.
			for i := 0; i < nRows; i++ {
				c[i] = rng.NormFloat64()
			}
			for _, pair := range []struct {
				f   *luFactor
				out []float64
			}{{ft, bFT}, {eta, bEta}, {ref, bRef}} {
				cc := make([]float64, nRows)
				copy(cc, c)
				pair.f.btran(cc, pair.out)
			}
			if d := maxAbsDiff(bFT, bRef); d > 1e-6 {
				t.Fatalf("trial %d step %d: FT btran diverges from fresh factorization by %g", trial, steps, d)
			}
			if d := maxAbsDiff(bEta, bRef); d > 1e-6 {
				t.Fatalf("trial %d step %d: eta-file btran diverges from fresh factorization by %g", trial, steps, d)
			}
		}
		if steps < 40 {
			t.Fatalf("trial %d: only %d pivot steps exercised", trial, steps)
		}
		if ft.nUpdate == 0 {
			t.Fatalf("trial %d: Forrest–Tomlin path never applied an in-place update", trial)
		}
	}
}

// TestFTvsEtaFileObjectiveIdentity solves random MILPs under both basis
// maintenance schemes (and the dense tableau as arbiter) and requires
// identical status and objective: the update scheme is an implementation
// detail of the LP engine and must never change what the search proves.
func TestFTvsEtaFileObjectiveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		m := randomMILP(rng, true)
		ftSol := mustSolveOpts(t, m, Options{Workers: 1})
		etaSol := mustSolveOpts(t, m, Options{Workers: 1, EtaFileUpdates: true})
		denseSol := mustSolveOpts(t, m, Options{Workers: 1, DenseSimplex: true})
		if ftSol.Status != etaSol.Status || ftSol.Status != denseSol.Status {
			t.Fatalf("trial %d: status FT=%v eta=%v dense=%v", trial, ftSol.Status, etaSol.Status, denseSol.Status)
		}
		if ftSol.Status != Optimal {
			continue
		}
		tol := 1e-6 * math.Max(1, math.Abs(denseSol.Objective))
		if math.Abs(ftSol.Objective-denseSol.Objective) > tol {
			t.Fatalf("trial %d: FT objective %v != dense %v", trial, ftSol.Objective, denseSol.Objective)
		}
		if math.Abs(etaSol.Objective-denseSol.Objective) > tol {
			t.Fatalf("trial %d: eta objective %v != dense %v", trial, etaSol.Objective, denseSol.Objective)
		}
		checkFeasible(t, m, ftSol, fmt.Sprintf("trial %d (FT)", trial))
	}
}

// TestNodePresolveObjectiveIdentity is the soundness property of per-node
// presolve: propagating branching bounds through constraint activities
// removes no feasible point of any subtree, so the proven optimum with the
// pass on must equal the optimum with it off, on every random instance.
func TestNodePresolveObjectiveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		m := randomMILP(rng, true)
		on := mustSolveOpts(t, m, Options{Workers: 1})
		off := mustSolveOpts(t, m, Options{Workers: 1, NoNodePresolve: true})
		if on.Status != off.Status {
			t.Fatalf("trial %d: status with node presolve %v, without %v", trial, on.Status, off.Status)
		}
		if on.Status != Optimal {
			continue
		}
		tol := 1e-6 * math.Max(1, math.Abs(off.Objective))
		if math.Abs(on.Objective-off.Objective) > tol {
			t.Fatalf("trial %d: objective with node presolve %v, without %v", trial, on.Objective, off.Objective)
		}
		checkFeasible(t, m, on, fmt.Sprintf("trial %d (node presolve)", trial))
	}
}

// TestNodePresolveFixingsReported checks the counter plumbing on an
// instance where branching provably triggers propagation: once the search
// branches on y, the row 3x + 3y ≤ 8 tightens x through the activity
// bounds, so NodePresolveFixings must be nonzero with the pass on and zero
// with it off.
func TestNodePresolveFixingsReported(t *testing.T) {
	build := func() *Model {
		m := NewModel("np-count", Maximize)
		x := m.AddIntVar("x", 0, 5, 2)
		y := m.AddIntVar("y", 0, 5, 3)
		z := m.AddIntVar("z", 0, 5, 1)
		mustCon(t, m, "c1", []Term{{x, 3}, {y, 3}}, LE, 8)
		mustCon(t, m, "c2", []Term{{x, 2}, {y, 5}, {z, 4}}, LE, 19)
		mustCon(t, m, "c3", []Term{{y, 2}, {z, 3}}, LE, 11)
		return m
	}
	on := mustSolveOpts(t, build(), Options{Workers: 1, NoPresolve: true})
	off := mustSolveOpts(t, build(), Options{Workers: 1, NoPresolve: true, NoNodePresolve: true})
	if on.Status != Optimal || off.Status != Optimal {
		t.Fatalf("status on=%v off=%v", on.Status, off.Status)
	}
	if math.Abs(on.Objective-off.Objective) > 1e-9 {
		t.Fatalf("objective diverged: on=%v off=%v", on.Objective, off.Objective)
	}
	if off.NodePresolveFixings != 0 {
		t.Fatalf("NoNodePresolve run reported %d fixings", off.NodePresolveFixings)
	}
	if on.Nodes > 1 && on.NodePresolveFixings == 0 {
		t.Fatalf("search branched (%d nodes) but node presolve reported no propagated tightenings", on.Nodes)
	}
}

// TestDenseFallbackCountedAndLogged forces the revised engine's dense
// fallback: x and y are unbounded above with costs that pull them along
// the recession ray y = x + 3, so the artificial box binds at the LP
// optimum, binds again after the grow-retry, and the engine must hand the
// solve to the dense tableau. Before this counter existed the handoff left
// no trace anywhere. The integer variable forces an actual search on top.
func TestDenseFallbackCountedAndLogged(t *testing.T) {
	var logs []string
	m := NewModel("fallback", Minimize)
	x := m.AddVar("x", 0, math.Inf(1), 1)
	y := m.AddVar("y", 0, math.Inf(1), -1)
	z := m.AddIntVar("z", 0, 5, 1)
	mustCon(t, m, "ray", []Term{{y, 1}, {x, -1}}, LE, 3)
	mustCon(t, m, "zmin", []Term{{z, 2}}, GE, 1)
	sol := mustSolveOpts(t, m, Options{
		Workers:    1,
		NoPresolve: true, // presolve would round z up and solve the rest as a pure LP
		Logf:       func(f string, a ...interface{}) { logs = append(logs, fmt.Sprintf(f, a...)) },
	})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// min x − y + z over y ≤ x+3, 2z ≥ 1: the continuous part contributes
	// −3 anywhere on the ray, and z must round up to 1.
	if math.Abs(sol.Objective-(-2)) > 1e-6 {
		t.Fatalf("objective = %v, want -2", sol.Objective)
	}
	if sol.DenseFallbacks == 0 {
		t.Fatal("artificial-box fallback left DenseFallbacks at 0")
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "dense") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no dense-fallback log line emitted; logs: %q", logs)
	}
}

// TestSolveStatsPopulated checks the basis-health counters surface through
// an ordinary MILP solve on the default engine.
func TestSolveStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomMILP(rng, true)
	sol := mustSolveOpts(t, m, Options{Workers: 1})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Refactorizations == 0 {
		t.Error("Refactorizations = 0 after a revised-engine solve")
	}
	if sol.FTRANCount == 0 || sol.BTRANCount == 0 {
		t.Errorf("FTRAN/BTRAN counts = %d/%d, want both > 0", sol.FTRANCount, sol.BTRANCount)
	}
	if sol.PeakUFill == 0 {
		t.Error("PeakUFill = 0 after a revised-engine solve")
	}
	dense := mustSolveOpts(t, m, Options{Workers: 1, DenseSimplex: true})
	if dense.Refactorizations != 0 || dense.PeakUFill != 0 {
		t.Errorf("dense engine reported LU stats: %d refactorizations, %d fill", dense.Refactorizations, dense.PeakUFill)
	}
}
