// Package solver is a pure-Go mixed-integer linear programming stack: a
// dense two-phase simplex for linear programs and a best-first
// branch-and-bound for integrality.
//
// The FlexWAN paper solves its planning and restoration formulations with
// Gurobi (§7: "Julia ... and the Gurobi solver", with LP relaxation and a
// < 0.1% gap). This package is the stdlib-only substitute: exact on the
// small and medium instances used to validate the planning heuristic, with
// the same relaxation-based bounding strategy. It is a general MILP
// solver — models are built from variables, linear constraints, and a
// linear objective — not a FlexWAN-specific routine.
package solver

import (
	"context"
	"fmt"
	"math"
	"sync"
)

// Sense selects minimization or maximization of the objective.
type Sense int

const (
	Minimize Sense = iota
	Maximize
)

func (s Sense) String() string {
	if s == Maximize {
		return "maximize"
	}
	return "minimize"
}

// Rel is a constraint relation.
type Rel int

const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// VarID indexes a variable within its model.
type VarID int

// Term is one coefficient·variable product in a linear expression.
type Term struct {
	Var  VarID
	Coef float64
}

type variable struct {
	name    string
	lb, ub  float64
	integer bool
	obj     float64
}

type constraint struct {
	name  string
	terms []Term
	rel   Rel
	rhs   float64
}

// Model is a mixed-integer linear program under construction. Build with
// NewModel, add variables and constraints, then call Solve.
type Model struct {
	name  string
	sense Sense
	vars  []variable
	cons  []constraint

	// cscOnce/csc cache the column-compressed constraint matrix the
	// revised simplex works on: built once on first solve and shared
	// read-only by every branch-and-bound worker. Mutating the model after
	// a solve started is already undefined, so the cache never invalidates.
	cscOnce sync.Once
	csc     *cscMatrix
}

// NewModel returns an empty model.
func NewModel(name string, sense Sense) *Model {
	return &Model{name: name, sense: sense}
}

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints returns the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.cons) }

// Grow pre-allocates capacity for nVars additional variables and nCons
// additional constraints. Semantics never change; builders that can
// count their size cheaply up front (the exact MIP formulations) call it
// to avoid append-doubling garbage on large models.
func (m *Model) Grow(nVars, nCons int) {
	if c := len(m.vars) + nVars; c > cap(m.vars) {
		vars := make([]variable, len(m.vars), c)
		copy(vars, m.vars)
		m.vars = vars
	}
	if c := len(m.cons) + nCons; c > cap(m.cons) {
		cons := make([]constraint, len(m.cons), c)
		copy(cons, m.cons)
		m.cons = cons
	}
}

// AddVar adds a continuous variable with bounds [lb, ub] and objective
// coefficient obj. Use math.Inf(1) for an unbounded ub.
func (m *Model) AddVar(name string, lb, ub, obj float64) VarID {
	m.vars = append(m.vars, variable{name: name, lb: lb, ub: ub, obj: obj})
	return VarID(len(m.vars) - 1)
}

// AddIntVar adds an integer variable with bounds [lb, ub].
func (m *Model) AddIntVar(name string, lb, ub, obj float64) VarID {
	id := m.AddVar(name, lb, ub, obj)
	m.vars[id].integer = true
	return id
}

// AddBinVar adds a 0/1 variable.
func (m *Model) AddBinVar(name string, obj float64) VarID {
	return m.AddIntVar(name, 0, 1, obj)
}

// dupScanMax is the term-slice length up to which AddConstraint detects
// duplicate variables with a quadratic linear scan instead of a map. The
// common case — a short, duplicate-free term list — then builds zero
// intermediate structures beyond the merged slice itself.
const dupScanMax = 32

// AddConstraint adds Σ terms rel rhs. Terms referencing the same variable
// are accumulated.
func (m *Model) AddConstraint(name string, terms []Term, rel Rel, rhs float64) error {
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(m.vars) {
			return fmt.Errorf("solver: constraint %s references unknown variable %d", name, t.Var)
		}
	}
	merged := make([]Term, 0, len(terms))
	if len(terms) <= dupScanMax {
		// Accumulate duplicates with a linear scan: for small slices the
		// O(k²) compare is far cheaper than a map allocation per call.
		for _, t := range terms {
			found := false
			for i := range merged {
				if merged[i].Var == t.Var {
					merged[i].Coef += t.Coef
					found = true
					break
				}
			}
			if !found {
				merged = append(merged, t)
			}
		}
	} else {
		// Large term lists fall back to the map accumulator.
		acc := make(map[VarID]float64, len(terms))
		for _, t := range terms {
			if _, seen := acc[t.Var]; !seen {
				merged = append(merged, Term{Var: t.Var})
			}
			acc[t.Var] += t.Coef
		}
		for i := range merged {
			merged[i].Coef = acc[merged[i].Var]
		}
	}
	// Drop terms whose coefficients cancelled so downstream code sees each
	// variable once, with a nonzero coefficient.
	out := merged[:0]
	for _, t := range merged {
		if t.Coef != 0 {
			out = append(out, t)
		}
	}
	m.cons = append(m.cons, constraint{name: name, terms: out, rel: rel, rhs: rhs})
	return nil
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal (or within-gap) solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective improves without limit.
	Unbounded
	// LimitReached means the node or iteration budget ran out before the
	// search completed; Solution carries the incumbent if one exists.
	LimitReached
	// GapLimit means branch-and-bound stopped at the requested relative
	// optimality gap (Options.RelGap) with a nonzero proven gap: the
	// incumbent is within that gap of optimal but not proven optimal.
	// Solution.Gap carries the proven gap.
	GapLimit
	// IterLimit means a simplex solve exhausted its pivot budget before
	// proving optimality: the point reached is feasible for the phase it
	// stopped in but carries no optimality certificate. LP solves surface
	// it directly; branch-and-bound treats a node hitting it like a node
	// budget stop and finishes with LimitReached plus the incumbent.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case GapLimit:
		return "gap-limit"
	case IterLimit:
		return "iteration-limit"
	default:
		return "limit-reached"
	}
}

// Solution is the result of solving a model.
type Solution struct {
	Status    Status
	Objective float64
	// Values holds one entry per variable, indexed by VarID.
	Values []float64
	// Gap is the relative optimality gap proven at termination (MILP
	// only; 0 for LPs).
	Gap float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Workers is the number of branch-and-bound workers used (0 for LPs).
	Workers int
	// SimplexIters is the total number of simplex pivots performed across
	// the solve: cold primal iterations (both phases), warm-start basis
	// re-installation pivots, and dual-simplex repair pivots.
	SimplexIters int
	// WarmStartHits counts branch-and-bound node relaxations resolved by
	// the dual-simplex warm start (including children proven infeasible by
	// it) rather than a cold two-phase primal solve. 0 for LPs.
	WarmStartHits int
	// Branching is the branching rule the search used (MILP only).
	Branching BranchRule
	// Pricing is the dual-simplex pricing rule the solve ran under
	// (PricingDantzig when Options.DenseSimplex forced the dense tableau,
	// which prices by largest violation only).
	Pricing PricingRule
	// BoundFlips counts nonbasic boxed variables the long-step dual ratio
	// test moved bound-to-bound instead of pivoting on — each one walks
	// through a degenerate vertex at the cost of one FTRAN instead of a
	// basis change. 0 under Options.DenseSimplex.
	BoundFlips int
	// WeightResets counts pricing-weight reference resets: devex resets on
	// every refactorization, steepest-edge only when numerical trouble
	// invalidates the reference framework (falling back to Dantzig row
	// selection until the next solve reinitializes the weights). 0 under
	// PricingDantzig.
	WeightResets int
	// PresolveRows and PresolveCols count the constraint rows and variable
	// columns the presolve layer eliminated before the search. Both are 0
	// when Options.NoPresolve is set or presolve removed nothing; Values
	// are always reported against the original model's VarIDs either way
	// (postsolve rehydrates eliminated columns).
	PresolveRows int
	PresolveCols int
	// LU/basis health, summed over the root solve and every worker engine
	// (all zero under Options.DenseSimplex, which keeps no factorization):
	// Refactorizations counts full basis factorizations, BasisUpdates the
	// in-place pivot updates (Forrest–Tomlin, or eta appends under
	// Options.EtaFileUpdates), FTRANCount/BTRANCount the triangular solves
	// against the factorization, and PeakUFill the largest U-plus-eta
	// nonzero count any worker's factor reached.
	Refactorizations int
	BasisUpdates     int
	FTRANCount       int
	BTRANCount       int
	PeakUFill        int
	// DenseFallbacks counts LP solves the revised engine could not certify
	// (singular basis, numerical giveup, or a binding artificial box) and
	// handed to the dense two-phase engine mid-search.
	DenseFallbacks int
	// NodePresolveFixings counts the bound tightenings node presolve
	// propagated from branching decisions before node LP solves (0 when
	// Options.NoNodePresolve is set or for pure LPs).
	NodePresolveFixings int
}

// Value returns the solution value of v.
func (s Solution) Value(v VarID) float64 {
	if int(v) < 0 || int(v) >= len(s.Values) {
		return math.NaN()
	}
	return s.Values[v]
}

// IntValue returns the solution value of v rounded to the nearest integer.
func (s Solution) IntValue(v VarID) int {
	return int(math.Round(s.Value(v)))
}

// BranchRule selects how branch-and-bound picks the variable to branch
// on at a fractional node.
type BranchRule string

const (
	// BranchMostFractional branches on the integer variable whose
	// relaxation value is farthest from an integer — the classic textbook
	// rule, cheap but blind to objective impact.
	BranchMostFractional BranchRule = "most-fractional"
	// BranchPseudocost branches on the variable with the best pseudocost
	// score: the product of the per-unit objective degradations observed
	// on past down/up branches of that variable, weighted by the current
	// fractionality. Unreliable estimates (fewer than one observation per
	// side) borrow the tree-wide average. Usually explores far fewer
	// nodes than most-fractional on hard instances.
	BranchPseudocost BranchRule = "pseudocost"
)

// PricingRule selects how the revised dual simplex picks the leaving row
// at each pivot. The rule never changes what a solve proves — status and
// objective at proven optimality are identical across rules — only how
// many pivots it takes to get there.
type PricingRule string

const (
	// PricingDantzig picks the row with the largest bound violation — the
	// textbook rule the engine used before weighted pricing existed. Cheap
	// per pivot but blind to the geometry, so degenerate instances can
	// oscillate through long sequences of near-zero steps.
	PricingDantzig PricingRule = "dantzig"
	// PricingDevex scores each row's violation against an approximate
	// reference weight maintained by the devex recurrence, resetting the
	// reference framework on every refactorization. Nearly steepest-edge
	// quality at no extra FTRAN/BTRAN work per pivot. The default.
	PricingDevex PricingRule = "devex"
	// PricingSteepestEdge maintains exact dual steepest-edge weights
	// ‖B⁻ᵀe_i‖² via the Forrest–Goldfarb update, at the cost of one extra
	// FTRAN per pivot. Fewest pivots per solve; worth it on instances
	// where degeneracy, not factorization cost, is the bottleneck.
	PricingSteepestEdge PricingRule = "steepest-edge"
)

// Options tune the MILP search.
type Options struct {
	// MaxNodes bounds branch-and-bound nodes (0 = default 200000).
	MaxNodes int
	// RelGap stops the search once the relative incumbent/bound gap falls
	// below this value (default 1e-6; the paper quotes < 0.1%).
	RelGap float64
	// Workers is the number of concurrent branch-and-bound workers
	// (0 = GOMAXPROCS). Objective and Status are deterministic across
	// worker counts when the search runs to proven optimality; with a
	// loose RelGap or a binding MaxNodes the early-stop point depends on
	// timing, so use Workers: 1 where exact reproducibility of early
	// stops matters.
	Workers int
	// Context, when non-nil, cancels the search early. The simplex
	// engines poll it at pivot intervals, so cancellation aborts even in
	// the middle of one long LP: a MIP solve returns LimitReached with
	// the best incumbent so far, and a pure-LP solve returns IterLimit
	// (the point is phase-feasible but carries no certificate).
	Context context.Context
	// Branching selects the branch-variable rule (default
	// BranchPseudocost). Objective and Status at proven optimality are
	// identical for every rule; node counts differ, and with Workers > 1
	// pseudocost scores depend on the order workers report results, so
	// the explored node count may vary run to run.
	Branching BranchRule
	// Pricing selects the dual-simplex pricing rule (default PricingDevex).
	// Objective and Status at proven optimality are identical for every
	// rule; pivot counts differ. Ignored under DenseSimplex, which always
	// prices by largest violation (Dantzig).
	Pricing PricingRule
	// NoWarmStart disables dual-simplex warm starts: every node
	// relaxation is solved cold with the two-phase primal simplex, as
	// before warm starts existed. For ablation and debugging.
	NoWarmStart bool
	// NoPresolve disables the presolve/postsolve layer: the search runs on
	// the model exactly as built, as before presolve existed. For ablation
	// and debugging; mirrors NoWarmStart.
	NoPresolve bool
	// DenseSimplex switches every LP solve back to the dense-tableau
	// two-phase simplex the solver used before the revised engine existed.
	// Memory is O(rows·cols) instead of nonzero-proportional, so it only
	// scales to a few thousand columns; kept as an escape hatch and for
	// differential testing against the revised path.
	DenseSimplex bool
	// EtaFileUpdates switches the revised engine's basis maintenance back
	// to the product-form eta file (one eta per pivot, refactorization
	// every 64 etas) instead of the default Forrest–Tomlin updates. For
	// ablation and differential testing; ignored under DenseSimplex.
	EtaFileUpdates bool
	// NoNodePresolve disables per-node presolve: the bound-propagation pass
	// that pushes each node's branching decisions through the constraint
	// activity bounds before its LP solve, fixing or tightening additional
	// integer variables and pruning propagation-infeasible nodes without a
	// solve. For ablation and debugging; mirrors NoWarmStart/NoPresolve.
	NoNodePresolve bool
	// MaxLPIter caps simplex pivots per LP solve call, cumulative across
	// everything the call runs: both dense two-phase passes, warm-start
	// basis re-installation, and a revised→dense fallback (the dense
	// engine only gets whatever budget the revised attempt left unspent).
	// 0 means the size-derived default. A solve that exhausts the cap
	// returns IterLimit instead of claiming optimality.
	MaxLPIter int
	// MaxVars is the variable-count guard model builders (plan, restore)
	// enforce before constructing an exact MIP for these options; the
	// solver itself never refuses a model. 0 means the engine default —
	// see MaxBuildVars.
	MaxVars int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
}

// Default MaxVars guards per engine: the revised simplex stores the
// constraint matrix sparsely and its basis factored, so it scales to far
// more columns than the dense tableau, whose memory is quadratic in the
// standard-form size.
const (
	DefaultMaxVars      = 250000
	DefaultDenseMaxVars = 8000
)

// MaxBuildVars returns the effective variable cap for these options:
// MaxVars when set, otherwise the default for the selected LP engine.
func (o Options) MaxBuildVars() int {
	if o.MaxVars > 0 {
		return o.MaxVars
	}
	if o.DenseSimplex {
		return DefaultDenseMaxVars
	}
	return DefaultMaxVars
}

func (o Options) withDefaults() (Options, error) {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.RelGap == 0 {
		o.RelGap = 1e-6
	}
	switch o.Branching {
	case "":
		o.Branching = BranchPseudocost
	case BranchPseudocost, BranchMostFractional:
	default:
		return o, fmt.Errorf("solver: unknown branching rule %q (want %q or %q)",
			o.Branching, BranchPseudocost, BranchMostFractional)
	}
	switch o.Pricing {
	case "":
		o.Pricing = PricingDevex
	case PricingDantzig, PricingDevex, PricingSteepestEdge:
	default:
		return o, fmt.Errorf("solver: unknown pricing rule %q (want %q, %q, or %q)",
			o.Pricing, PricingDantzig, PricingDevex, PricingSteepestEdge)
	}
	return o, nil
}
