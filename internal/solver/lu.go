package solver

import "math"

// Basis-factorization tolerances and policy.
const (
	// luSingTol is the pivot magnitude below which a basis column is
	// declared singular and factorization fails (the caller falls back).
	luSingTol = 1e-11
	// luEtaTol is the spike-pivot magnitude below which a pivot triggers a
	// fresh factorization instead of a basis update: dividing by a tiny
	// w_p amplifies error through every later FTRAN/BTRAN.
	luEtaTol = 1e-7
	// luMaxEtas bounds the legacy product-form eta file before a periodic
	// refactorization: each eta adds O(nnz(w)) work to every solve, so past
	// this point refactorizing is both cheaper and more accurate. Only the
	// eta-file mode (Options.EtaFileUpdates) uses it; Forrest–Tomlin mode
	// refactorizes on measured fill growth instead.
	luMaxEtas = 64
	// luDriftTol is the relative disagreement allowed between the
	// Forrest–Tomlin diagonal identity d_new = w_p·d_old and the value the
	// row elimination actually produces before the factorization is declared
	// numerically degraded and rebuilt.
	luDriftTol = 1e-6
)

// uStore holds the Forrest–Tomlin-maintained U factor as 2m sparse lines —
// one per column (above-diagonal entries, keyed by row) and one per row
// (off-diagonal entries, keyed by column) — packed into one index/value
// pool. Lines get slack room on placement; an append past a line's room
// relocates the line to the pool tail (marking the old span dead), and the
// pool compacts itself when growth would otherwise reallocate over mostly
// dead space. Everything is retained across factorizations, so steady-state
// updates allocate nothing.
type uStore struct {
	idx   []int32
	val   []float64
	start []int32
	count []int32
	room  []int32
	used  int
	dead  int
}

// reset prepares the store for lines sparse lines totalling about nnz live
// entries, reusing the pool when it is big enough.
func (s *uStore) reset(lines, nnz int) {
	s.start = growInt32(s.start, lines)
	s.count = growInt32(s.count, lines)
	s.room = growInt32(s.room, lines)
	if need := nnz + 4*lines; len(s.idx) < need {
		s.idx = make([]int32, need+need/2)
		s.val = make([]float64, len(s.idx))
	}
	s.used, s.dead = 0, 0
}

// place opens line with room for n entries at the pool tail. Only valid
// during the post-factorization load, where total room is pre-counted.
func (s *uStore) place(line, n int) {
	s.start[line] = int32(s.used)
	s.count[line] = 0
	s.room[line] = int32(n)
	s.used += n
}

// push appends (i, v) to a line that is known to have room.
func (s *uStore) push(line int, i int32, v float64) {
	at := int(s.start[line] + s.count[line])
	s.idx[at], s.val[at] = i, v
	s.count[line]++
}

// entries returns line's live index and value slices.
func (s *uStore) entries(line int) ([]int32, []float64) {
	lo, n := int(s.start[line]), int(s.count[line])
	return s.idx[lo : lo+n], s.val[lo : lo+n]
}

// append adds (i, v) to line, relocating the line to the pool tail when it
// is out of room.
func (s *uStore) append(line int, i int32, v float64) {
	if s.count[line] == s.room[line] {
		s.relocate(line)
	}
	s.push(line, i, v)
}

// relocate moves line to the pool tail with doubled room, growing (and
// compacting) the pool if the tail is exhausted.
func (s *uStore) relocate(line int) {
	n := int(s.count[line])
	room := 2*n + 4
	if s.used+room > len(s.idx) {
		s.grow(room)
	}
	lo, at := int(s.start[line]), s.used
	copy(s.idx[at:at+n], s.idx[lo:lo+n])
	copy(s.val[at:at+n], s.val[lo:lo+n])
	s.dead += int(s.room[line])
	s.start[line] = int32(at)
	s.room[line] = int32(room)
	s.used += room
}

// grow compacts every line into a fresh pool with at least need free
// entries at the tail. Dead space is dropped and each line gets modest
// fresh slack, so repeated relocation of a hot line stays amortized O(1).
func (s *uStore) grow(need int) {
	total := need
	for l := range s.start {
		total += int(s.count[l]) + 2
	}
	size := total + total/2
	if size < len(s.idx) {
		size = len(s.idx) // never shrink: the pool is retained scratch
	}
	idx := make([]int32, size)
	val := make([]float64, size)
	used := 0
	for l := range s.start {
		n := int(s.count[l])
		lo := int(s.start[l])
		copy(idx[used:used+n], s.idx[lo:lo+n])
		copy(val[used:used+n], s.val[lo:lo+n])
		s.start[l] = int32(used)
		s.room[l] = int32(n + 2)
		used += n + 2
	}
	s.idx, s.val = idx, val
	s.used, s.dead = used, 0
}

// removeWhere deletes the entry with index i from line (swap-remove; line
// order is not meaningful). Missing entries are ignored — the caller may
// have dropped an exact-zero value on insert.
func (s *uStore) removeWhere(line int, i int32) {
	lo, n := int(s.start[line]), int(s.count[line])
	for t := lo; t < lo+n; t++ {
		if s.idx[t] == i {
			last := lo + n - 1
			s.idx[t], s.val[t] = s.idx[last], s.val[last]
			s.count[line]--
			return
		}
	}
}

// clear empties line, keeping its room.
func (s *uStore) clear(line int) { s.count[line] = 0 }

// luFactor is an LU factorization of the simplex basis B (the constraint
// columns of the basic variables) with partial pivoting,
//
//	P·B₀ = L·U        (left-looking sparse LU, unit-diagonal L)
//
// maintained across pivots in one of two modes:
//
//   - Forrest–Tomlin (ft=true, the default): U is kept as a dynamic sparse
//     permuted-triangular factor (uStore rows+columns plus a sequence
//     order). Each pivot replaces one U column with the partially
//     transformed spike and restores triangularity with a single row
//     elimination recorded as a row eta R = I − e_p·rᵀ sitting between L
//     and U. Refactorization is adaptive: measured fill growth or numerical
//     drift against the determinant identity d_new = w_p·d_old.
//   - product-form eta file (ft=false, Options.EtaFileUpdates): each pivot
//     appends E = I + (w−e_p)e_pᵀ after U, with a fixed refactorization
//     cap of luMaxEtas.
//
// FTRAN solves B·w = a; BTRAN solves Bᵀ·v = c. L rows are indexed in
// original constraint-row space, U in pivot order (which equals basis
// position), etas in basis-position space. All buffers are retained across
// factorizations, so a branch-and-bound worker refactorizing thousands of
// times allocates only on growth.
type luFactor struct {
	m    int
	ft   bool    // Forrest–Tomlin mode (vs legacy product-form eta file)
	perm []int32 // pivot order k → original row
	pinv []int32 // original row → pivot order

	lPtr []int32 // len m+1; L column k occupies [lPtr[k], lPtr[k+1])
	lIdx []int32 // original-row index of each below-diagonal L entry
	lVal []float64

	uPtr  []int32 // len m+1; static U column j (above-diagonal) entries
	uIdx  []int32 // pivot-order index k < j
	uVal  []float64
	udiag []float64 // U diagonal per column (live in both modes)

	// Eta storage. In ft mode these are the row etas R_e = I − e_p·rᵀ
	// applied between L and U (etaPiv unused); in eta-file mode the
	// product-form etas applied after U, with etaPiv the spike pivot.
	etaPos []int32
	etaPiv []float64
	etaPtr []int32 // len nEtas+1; offsets into etaIdx/etaVal
	etaIdx []int32
	etaVal []float64

	// Forrest–Tomlin state: the dynamic U store, the triangularity
	// sequence (order[t] = basis position at sequence slot t), the spike
	// captured by the most recent ftran, and the row-elimination scratch.
	us       uStore
	order    []int32
	seqPos   []int32
	vbuf     []float64 // pre-U-solve spike from the last ftran
	work     []float64 // row-elimination accumulator (zero between updates)
	wmark    []bool
	rowCnt   []int32 // loadFT scratch: row populations of the static U
	uLive    int     // live off-diagonal entries in the dynamic U
	baseFill int     // uLive + m right after the last factorization

	mark  []bool  // factorization scratch: row touched this column
	touch []int32 // factorization scratch: touched-row list

	// Health counters, cumulative over the factor's lifetime (one factor
	// per branch-and-bound worker engine).
	nFactor  int // full factorizations
	nUpdate  int // in-place basis updates (FT or eta append)
	nFtran   int
	nBtran   int
	peakFill int // peak of U nnz (diag included) + eta nnz
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func (f *luFactor) nEtas() int { return len(f.etaPos) }

// factorize computes P·B = L·U for the basis given as one column index
// per row position (structural column, or cols+r for row r's slack), and
// clears the eta file. In Forrest–Tomlin mode the fresh U is then loaded
// into the dynamic store. Returns false when the basis is numerically
// singular. The caller's dense work vectors must be zero on entry; x is
// used as the dense accumulation column and is zero again on return.
func (f *luFactor) factorize(basis []int32, csc *cscMatrix, x []float64) bool {
	m := csc.rows
	f.m = m
	f.perm = growInt32(f.perm, m)
	f.pinv = growInt32(f.pinv, m)
	f.udiag = growFloats(f.udiag, m)
	f.lPtr = growInt32(f.lPtr, m+1)
	f.uPtr = growInt32(f.uPtr, m+1)
	f.lIdx, f.lVal = f.lIdx[:0], f.lVal[:0]
	f.uIdx, f.uVal = f.uIdx[:0], f.uVal[:0]
	f.etaPos, f.etaPiv = f.etaPos[:0], f.etaPiv[:0]
	f.etaIdx, f.etaVal = f.etaIdx[:0], f.etaVal[:0]
	f.etaPtr = append(f.etaPtr[:0], 0)
	f.mark = growBools(f.mark, m)
	if cap(f.touch) < m {
		f.touch = make([]int32, 0, m)
	}
	for r := 0; r < m; r++ {
		f.pinv[r] = -1
		f.mark[r] = false
	}
	f.lPtr[0], f.uPtr[0] = 0, 0

	for j := 0; j < m; j++ {
		// Scatter basis column j into the dense work vector.
		touch := f.touch[:0]
		col := basis[j]
		if int(col) >= csc.cols {
			r := col - int32(csc.cols)
			x[r] = 1
			f.mark[r] = true
			touch = append(touch, r)
		} else {
			for k := csc.colPtr[col]; k < csc.colPtr[col+1]; k++ {
				r := csc.rowIdx[k]
				x[r] = csc.val[k]
				f.mark[r] = true
				touch = append(touch, r)
			}
		}
		// Left-looking elimination: columns k < j in pivot order. A prior
		// pivot row's value is fixed once its column is passed (later L
		// columns touch only still-unpivoted rows), so the ascending scan
		// sees every fill-in exactly once.
		for k := 0; k < j; k++ {
			pr := f.perm[k]
			xk := x[pr]
			if xk == 0 {
				continue
			}
			f.uIdx = append(f.uIdx, int32(k))
			f.uVal = append(f.uVal, xk)
			for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
				i := f.lIdx[t]
				if !f.mark[i] {
					f.mark[i] = true
					touch = append(touch, i)
				}
				x[i] -= xk * f.lVal[t]
			}
		}
		f.uPtr[j+1] = int32(len(f.uIdx))
		// Partial pivoting over the unpivoted touched rows.
		piv, pivAbs := int32(-1), luSingTol
		for _, i := range touch {
			if f.pinv[i] < 0 {
				if a := math.Abs(x[i]); a > pivAbs {
					pivAbs, piv = a, i
				}
			}
		}
		if piv < 0 {
			// Singular: clean up the work vector before failing.
			for _, i := range touch {
				x[i] = 0
				f.mark[i] = false
			}
			f.touch = touch[:0]
			return false
		}
		f.perm[j] = piv
		f.pinv[piv] = int32(j)
		d := x[piv]
		f.udiag[j] = d
		for _, i := range touch {
			if f.pinv[i] < 0 && x[i] != 0 {
				f.lIdx = append(f.lIdx, i)
				f.lVal = append(f.lVal, x[i]/d)
			}
			x[i] = 0
			f.mark[i] = false
		}
		f.lPtr[j+1] = int32(len(f.lIdx))
		f.touch = touch[:0]
	}
	f.nFactor++
	if f.ft {
		f.loadFT()
	}
	if fill := len(f.uIdx) + m; fill > f.peakFill {
		f.peakFill = fill
	}
	return true
}

// loadFT converts the freshly factorized static U into the dynamic
// row+column store and resets the update sequence to the identity.
func (f *luFactor) loadFT() {
	m := f.m
	nnz := len(f.uIdx)
	f.rowCnt = growInt32(f.rowCnt, m)
	for k := 0; k < m; k++ {
		f.rowCnt[k] = 0
	}
	for _, k := range f.uIdx {
		f.rowCnt[k]++
	}
	st := &f.us
	st.reset(2*m, 2*nnz+4*m)
	for j := 0; j < m; j++ {
		st.place(j, int(f.uPtr[j+1]-f.uPtr[j])+2)
	}
	for k := 0; k < m; k++ {
		st.place(m+k, int(f.rowCnt[k])+2)
	}
	for j := 0; j < m; j++ {
		for t := f.uPtr[j]; t < f.uPtr[j+1]; t++ {
			k, v := f.uIdx[t], f.uVal[t]
			st.push(j, k, v)
			st.push(m+int(k), int32(j), v)
		}
	}
	f.uLive = nnz
	f.baseFill = nnz + m
	f.order = growInt32(f.order, m)
	f.seqPos = growInt32(f.seqPos, m)
	for t := 0; t < m; t++ {
		f.order[t], f.seqPos[t] = int32(t), int32(t)
	}
	f.vbuf = growFloats(f.vbuf, m)
	f.work = growFloats(f.work, m)
	f.wmark = growBools(f.wmark, m)
	for i := 0; i < m; i++ {
		f.work[i] = 0
		f.wmark[i] = false
	}
}

// needRefactor reports whether the accumulated update fill has outgrown
// the factorization: live U entries plus eta entries past twice the
// post-factorization baseline (plus slack), or an eta count far beyond
// anything useful (garbage backstop). Only meaningful in ft mode; the
// eta-file mode uses the fixed luMaxEtas cap instead.
func (f *luFactor) needRefactor() bool {
	if len(f.etaPos) >= 2*f.m+64 {
		return true
	}
	return f.uLive+f.m+len(f.etaIdx) > 2*f.baseFill+64
}

// ftran solves B·out = x. x is dense in original-row space and is zeroed
// on return; out is dense in basis-position space and fully overwritten.
// In ft mode the pre-U-solve vector (the Forrest–Tomlin spike) is captured
// in vbuf for a possible ftUpdate of this column.
func (f *luFactor) ftran(x, out []float64) {
	f.nFtran++
	// L solve in place (original-row space, pivot order).
	for k := 0; k < f.m; k++ {
		xk := x[f.perm[k]]
		if xk != 0 {
			for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
				x[f.lIdx[t]] -= xk * f.lVal[t]
			}
		}
	}
	// Gather to pivot order, restoring the zero invariant on x.
	for k := 0; k < f.m; k++ {
		out[k] = x[f.perm[k]]
		x[f.perm[k]] = 0
	}
	if f.ft {
		// Row etas in creation order: (R·z)[p] = z[p] − rᵀz.
		for e := 0; e < len(f.etaPos); e++ {
			p := f.etaPos[e]
			dot := 0.0
			for t := f.etaPtr[e]; t < f.etaPtr[e+1]; t++ {
				dot += f.etaVal[t] * out[f.etaIdx[t]]
			}
			out[p] -= dot
		}
		copy(f.vbuf[:f.m], out[:f.m])
		// Permuted U solve, backward in sequence order: every column entry
		// sits at an earlier sequence position than its column.
		for t := f.m - 1; t >= 0; t-- {
			j := int(f.order[t])
			v := out[j] / f.udiag[j]
			out[j] = v
			if v != 0 {
				ci, cv := f.us.entries(j)
				for q, k := range ci {
					out[k] -= v * cv[q]
				}
			}
		}
		return
	}
	// U solve (backward; pivot order equals basis position for columns).
	for j := f.m - 1; j >= 0; j-- {
		v := out[j] / f.udiag[j]
		out[j] = v
		if v != 0 {
			for t := f.uPtr[j]; t < f.uPtr[j+1]; t++ {
				out[f.uIdx[t]] -= v * f.uVal[t]
			}
		}
	}
	// Eta file in creation order: E⁻¹z scales position p then updates the
	// spike's other nonzeros.
	for e := 0; e < len(f.etaPos); e++ {
		p := f.etaPos[e]
		zp := out[p] / f.etaPiv[e]
		out[p] = zp
		if zp != 0 {
			for t := f.etaPtr[e]; t < f.etaPtr[e+1]; t++ {
				out[f.etaIdx[t]] -= zp * f.etaVal[t]
			}
		}
	}
}

// saveSpike copies the pending Forrest–Tomlin spike — the pre-U-solve
// vector the most recent ftran captured for ftUpdate — into dst, so a
// caller can run another ftran against the factor (which overwrites the
// capture) and then restoreSpike before the update. Only meaningful in ft
// mode; dst must have length ≥ m.
func (f *luFactor) saveSpike(dst []float64) { copy(dst[:f.m], f.vbuf[:f.m]) }

// restoreSpike restores a spike saved by saveSpike as the pending
// Forrest–Tomlin update vector.
func (f *luFactor) restoreSpike(src []float64) { copy(f.vbuf[:f.m], src[:f.m]) }

// btran solves Bᵀ·out = c. c is dense in basis-position space and is
// zeroed on return; out is dense in original-row space and fully
// overwritten.
func (f *luFactor) btran(c, out []float64) {
	f.nBtran++
	if f.ft {
		// Permuted Uᵀ solve, forward in sequence order (in place).
		for t := 0; t < f.m; t++ {
			j := int(f.order[t])
			s := c[j]
			ci, cv := f.us.entries(j)
			for q, k := range ci {
				s -= cv[q] * c[k]
			}
			c[j] = s / f.udiag[j]
		}
		// Row-eta transposes in reverse creation order: Rᵀ = I − r·e_pᵀ
		// scatters −r·c[p] into the eliminated columns.
		for e := len(f.etaPos) - 1; e >= 0; e-- {
			cp := c[f.etaPos[e]]
			if cp != 0 {
				for t := f.etaPtr[e]; t < f.etaPtr[e+1]; t++ {
					c[f.etaIdx[t]] -= f.etaVal[t] * cp
				}
			}
		}
	} else {
		// Eta transposes in reverse creation order: only position p changes.
		for e := len(f.etaPos) - 1; e >= 0; e-- {
			p := f.etaPos[e]
			dot := 0.0
			for t := f.etaPtr[e]; t < f.etaPtr[e+1]; t++ {
				dot += f.etaVal[t] * c[f.etaIdx[t]]
			}
			c[p] = (c[p] - dot) / f.etaPiv[e]
		}
		// Uᵀ solve (forward, in place): t_j = (c_j − Σ_{k<j} U[k,j]·t_k)/U[j,j].
		for j := 0; j < f.m; j++ {
			s := c[j]
			for t := f.uPtr[j]; t < f.uPtr[j+1]; t++ {
				s -= f.uVal[t] * c[f.uIdx[t]]
			}
			c[j] = s / f.udiag[j]
		}
	}
	// Lᵀ solve (backward, in place): s_k = t_k − Σ_{i} L[i,k]·s_{pinv[i]}.
	for k := f.m - 1; k >= 0; k-- {
		s := c[k]
		for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
			s -= f.lVal[t] * c[f.pinv[f.lIdx[t]]]
		}
		c[k] = s
	}
	// Scatter to original-row space, restoring the zero invariant on c.
	for k := 0; k < f.m; k++ {
		out[f.perm[k]] = c[k]
		c[k] = 0
	}
}

// appendEta records the pivot at basis position p with spike w (the
// FTRAN'd entering column) as a product-form eta. Eta-file mode only.
func (f *luFactor) appendEta(p int, w []float64) {
	f.etaPos = append(f.etaPos, int32(p))
	f.etaPiv = append(f.etaPiv, w[p])
	for i, v := range w {
		if i != p && v != 0 {
			f.etaIdx = append(f.etaIdx, int32(i))
			f.etaVal = append(f.etaVal, v)
		}
	}
	f.etaPtr = append(f.etaPtr, int32(len(f.etaIdx)))
	f.nUpdate++
	if fill := len(f.uIdx) + f.m + len(f.etaIdx); fill > f.peakFill {
		f.peakFill = fill
	}
}

// ftUpdate replaces basis position p's column of U with the spike captured
// by the most recent ftran (the entering column, partially transformed
// through L and the prior row etas) and restores permuted triangularity
// the Forrest–Tomlin way: position p moves to the end of the sequence and
// its U row is eliminated against the rows now sequenced before it,
// recording the multipliers as one row eta R = I − e_p·rᵀ. alphaP is the
// fully transformed spike's pivot entry w_p, giving the exact-arithmetic
// prediction d_new = w_p·d_old for the new diagonal; disagreement beyond
// luDriftTol means the factorization has degraded. Returns false when the
// update is unsafe — the caller must refactorize (the store may be
// half-mutated then, which the rebuild discards).
func (f *luFactor) ftUpdate(p int, alphaP float64) bool {
	m := f.m
	dPred := alphaP * f.udiag[p]
	if math.Abs(dPred) < luSingTol {
		return false // pre-mutation: the factorization is still intact
	}
	st := &f.us
	// Drop column p: its entries also live in the row lines.
	ci, _ := st.entries(p)
	for _, k := range ci {
		st.removeWhere(m+int(k), int32(p))
	}
	f.uLive -= int(st.count[p])
	st.clear(p)
	// Scatter row p's off-diagonals into the elimination accumulator and
	// drop them from the column lines.
	ri, rv := st.entries(m + p)
	for q, j := range ri {
		f.work[j] = rv[q]
		f.wmark[j] = true
		st.removeWhere(int(j), int32(p))
	}
	f.uLive -= int(st.count[m+p])
	st.clear(m + p)
	// Insert the spike as the new column p. In the updated sequence p is
	// last, so every off-diagonal spike entry is above-diagonal.
	d := f.vbuf[p]
	for k := 0; k < m; k++ {
		v := f.vbuf[k]
		if k == p || v == 0 {
			continue
		}
		st.append(p, int32(k), v)
		st.append(m+k, int32(p), v)
		f.uLive++
	}
	// Move p to the end of the sequence, shifting the tail down one slot.
	t0 := int(f.seqPos[p])
	for t := t0; t < m-1; t++ {
		f.order[t] = f.order[t+1]
		f.seqPos[f.order[t]] = int32(t)
	}
	f.order[m-1] = int32(p)
	f.seqPos[p] = int32(m - 1)
	// Eliminate row p over the sequence positions ahead of it. Fill-in from
	// row j lands only at positions after j (triangularity), so one forward
	// scan visits every entry — including the spike's column-p entries,
	// which fold into the new diagonal d.
	etaStart := len(f.etaIdx)
	for t := t0; t < m-1; t++ {
		j := int(f.order[t])
		if !f.wmark[j] {
			continue
		}
		cj := f.work[j]
		f.work[j] = 0
		f.wmark[j] = false
		if cj == 0 {
			continue
		}
		r := cj / f.udiag[j]
		f.etaIdx = append(f.etaIdx, int32(j))
		f.etaVal = append(f.etaVal, r)
		rj, rjv := st.entries(m + j)
		for q, k := range rj {
			if int(k) == p {
				d -= r * rjv[q]
			} else if f.wmark[k] {
				f.work[k] -= r * rjv[q]
			} else {
				f.wmark[k] = true
				f.work[k] = -r * rjv[q]
			}
		}
	}
	if math.Abs(d) < luSingTol ||
		math.Abs(d-dPred) > luDriftTol*math.Max(1, math.Max(math.Abs(d), math.Abs(dPred))) {
		// Numerical drift: orphan the multipliers and have the caller
		// rebuild from the (already updated) basis.
		f.etaIdx = f.etaIdx[:etaStart]
		f.etaVal = f.etaVal[:etaStart]
		return false
	}
	f.udiag[p] = d
	if len(f.etaIdx) > etaStart {
		f.etaPos = append(f.etaPos, int32(p))
		f.etaPtr = append(f.etaPtr, int32(len(f.etaIdx)))
	}
	f.nUpdate++
	if fill := f.uLive + m + len(f.etaIdx); fill > f.peakFill {
		f.peakFill = fill
	}
	return true
}
