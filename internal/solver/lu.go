package solver

import "math"

// Basis-factorization tolerances and policy.
const (
	// luSingTol is the pivot magnitude below which a basis column is
	// declared singular and factorization fails (the caller falls back).
	luSingTol = 1e-11
	// luEtaTol is the spike-pivot magnitude below which a pivot triggers a
	// fresh factorization instead of an eta update: dividing by a tiny
	// w_p amplifies error through every later FTRAN/BTRAN.
	luEtaTol = 1e-7
	// luMaxEtas bounds the eta file before a periodic refactorization:
	// each eta adds O(nnz(w)) work to every solve, so past this point
	// refactorizing is both cheaper and more accurate.
	luMaxEtas = 64
)

// luFactor is an LU factorization of the simplex basis B (the constraint
// columns of the basic variables) with partial pivoting, plus a
// product-form eta file appended per pivot:
//
//	P·B₀ = L·U        (left-looking sparse LU, unit-diagonal L)
//	B_k  = B₀·E₁⋯E_k  (E_i = I + (w−e_p)e_pᵀ, w the FTRAN'd entering column)
//
// FTRAN solves B_k·w = a (apply L,U solves then the etas in creation
// order); BTRAN solves B_kᵀ·v = c (etas transposed in reverse, then
// Uᵀ,Lᵀ). L rows are indexed in original constraint-row space, U in pivot
// order, etas in basis-position space. All buffers are retained across
// factorizations, so a branch-and-bound worker refactorizing thousands of
// times allocates only on growth.
type luFactor struct {
	m    int
	perm []int32 // pivot order k → original row
	pinv []int32 // original row → pivot order

	lPtr []int32 // len m+1; L column k occupies [lPtr[k], lPtr[k+1])
	lIdx []int32 // original-row index of each below-diagonal L entry
	lVal []float64

	uPtr  []int32 // len m+1; U column j (above-diagonal) entries
	uIdx  []int32 // pivot-order index k < j
	uVal  []float64
	udiag []float64 // U diagonal per column

	etaPos []int32   // pivot basis-position per eta
	etaPiv []float64 // spike value at the pivot position
	etaPtr []int32   // len nEtas+1; offsets into etaIdx/etaVal
	etaIdx []int32   // basis positions i ≠ p with nonzero spike value
	etaVal []float64

	mark  []bool  // factorization scratch: row touched this column
	touch []int32 // factorization scratch: touched-row list
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func (f *luFactor) nEtas() int { return len(f.etaPos) }

// factorize computes P·B = L·U for the basis given as one column index
// per row position (structural column, or cols+r for row r's slack), and
// clears the eta file. Returns false when the basis is numerically
// singular. The caller's dense work vectors must be zero on entry; x is
// used as the dense accumulation column and is zero again on return.
func (f *luFactor) factorize(basis []int32, csc *cscMatrix, x []float64) bool {
	m := csc.rows
	f.m = m
	f.perm = growInt32(f.perm, m)
	f.pinv = growInt32(f.pinv, m)
	f.udiag = growFloats(f.udiag, m)
	f.lPtr = growInt32(f.lPtr, m+1)
	f.uPtr = growInt32(f.uPtr, m+1)
	f.lIdx, f.lVal = f.lIdx[:0], f.lVal[:0]
	f.uIdx, f.uVal = f.uIdx[:0], f.uVal[:0]
	f.etaPos, f.etaPiv = f.etaPos[:0], f.etaPiv[:0]
	f.etaIdx, f.etaVal = f.etaIdx[:0], f.etaVal[:0]
	f.etaPtr = append(f.etaPtr[:0], 0)
	f.mark = growBools(f.mark, m)
	if cap(f.touch) < m {
		f.touch = make([]int32, 0, m)
	}
	for r := 0; r < m; r++ {
		f.pinv[r] = -1
		f.mark[r] = false
	}
	f.lPtr[0], f.uPtr[0] = 0, 0

	for j := 0; j < m; j++ {
		// Scatter basis column j into the dense work vector.
		touch := f.touch[:0]
		col := basis[j]
		if int(col) >= csc.cols {
			r := col - int32(csc.cols)
			x[r] = 1
			f.mark[r] = true
			touch = append(touch, r)
		} else {
			for k := csc.colPtr[col]; k < csc.colPtr[col+1]; k++ {
				r := csc.rowIdx[k]
				x[r] = csc.val[k]
				f.mark[r] = true
				touch = append(touch, r)
			}
		}
		// Left-looking elimination: columns k < j in pivot order. A prior
		// pivot row's value is fixed once its column is passed (later L
		// columns touch only still-unpivoted rows), so the ascending scan
		// sees every fill-in exactly once.
		for k := 0; k < j; k++ {
			pr := f.perm[k]
			xk := x[pr]
			if xk == 0 {
				continue
			}
			f.uIdx = append(f.uIdx, int32(k))
			f.uVal = append(f.uVal, xk)
			for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
				i := f.lIdx[t]
				if !f.mark[i] {
					f.mark[i] = true
					touch = append(touch, i)
				}
				x[i] -= xk * f.lVal[t]
			}
		}
		f.uPtr[j+1] = int32(len(f.uIdx))
		// Partial pivoting over the unpivoted touched rows.
		piv, pivAbs := int32(-1), luSingTol
		for _, i := range touch {
			if f.pinv[i] < 0 {
				if a := math.Abs(x[i]); a > pivAbs {
					pivAbs, piv = a, i
				}
			}
		}
		if piv < 0 {
			// Singular: clean up the work vector before failing.
			for _, i := range touch {
				x[i] = 0
				f.mark[i] = false
			}
			f.touch = touch[:0]
			return false
		}
		f.perm[j] = piv
		f.pinv[piv] = int32(j)
		d := x[piv]
		f.udiag[j] = d
		for _, i := range touch {
			if f.pinv[i] < 0 && x[i] != 0 {
				f.lIdx = append(f.lIdx, i)
				f.lVal = append(f.lVal, x[i]/d)
			}
			x[i] = 0
			f.mark[i] = false
		}
		f.lPtr[j+1] = int32(len(f.lIdx))
		f.touch = touch[:0]
	}
	return true
}

// ftran solves B·out = x. x is dense in original-row space and is zeroed
// on return; out is dense in basis-position space and fully overwritten.
func (f *luFactor) ftran(x, out []float64) {
	// L solve in place (original-row space, pivot order).
	for k := 0; k < f.m; k++ {
		xk := x[f.perm[k]]
		if xk != 0 {
			for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
				x[f.lIdx[t]] -= xk * f.lVal[t]
			}
		}
	}
	// Gather to pivot order, restoring the zero invariant on x.
	for k := 0; k < f.m; k++ {
		out[k] = x[f.perm[k]]
		x[f.perm[k]] = 0
	}
	// U solve (backward; pivot order equals basis position for columns).
	for j := f.m - 1; j >= 0; j-- {
		v := out[j] / f.udiag[j]
		out[j] = v
		if v != 0 {
			for t := f.uPtr[j]; t < f.uPtr[j+1]; t++ {
				out[f.uIdx[t]] -= v * f.uVal[t]
			}
		}
	}
	// Eta file in creation order: E⁻¹z scales position p then updates the
	// spike's other nonzeros.
	for e := 0; e < len(f.etaPos); e++ {
		p := f.etaPos[e]
		zp := out[p] / f.etaPiv[e]
		out[p] = zp
		if zp != 0 {
			for t := f.etaPtr[e]; t < f.etaPtr[e+1]; t++ {
				out[f.etaIdx[t]] -= zp * f.etaVal[t]
			}
		}
	}
}

// btran solves Bᵀ·out = c. c is dense in basis-position space and is
// zeroed on return; out is dense in original-row space and fully
// overwritten.
func (f *luFactor) btran(c, out []float64) {
	// Eta transposes in reverse creation order: only position p changes.
	for e := len(f.etaPos) - 1; e >= 0; e-- {
		p := f.etaPos[e]
		dot := 0.0
		for t := f.etaPtr[e]; t < f.etaPtr[e+1]; t++ {
			dot += f.etaVal[t] * c[f.etaIdx[t]]
		}
		c[p] = (c[p] - dot) / f.etaPiv[e]
	}
	// Uᵀ solve (forward, in place): t_j = (c_j − Σ_{k<j} U[k,j]·t_k)/U[j,j].
	for j := 0; j < f.m; j++ {
		s := c[j]
		for t := f.uPtr[j]; t < f.uPtr[j+1]; t++ {
			s -= f.uVal[t] * c[f.uIdx[t]]
		}
		c[j] = s / f.udiag[j]
	}
	// Lᵀ solve (backward, in place): s_k = t_k − Σ_{i} L[i,k]·s_{pinv[i]}.
	for k := f.m - 1; k >= 0; k-- {
		s := c[k]
		for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
			s -= f.lVal[t] * c[f.pinv[f.lIdx[t]]]
		}
		c[k] = s
	}
	// Scatter to original-row space, restoring the zero invariant on c.
	for k := 0; k < f.m; k++ {
		out[f.perm[k]] = c[k]
		c[k] = 0
	}
}

// appendEta records the pivot at basis position p with spike w (the
// FTRAN'd entering column) as a product-form eta.
func (f *luFactor) appendEta(p int, w []float64) {
	f.etaPos = append(f.etaPos, int32(p))
	f.etaPiv = append(f.etaPiv, w[p])
	for i, v := range w {
		if i != p && v != 0 {
			f.etaIdx = append(f.etaIdx, int32(i))
			f.etaVal = append(f.etaVal, v)
		}
	}
	f.etaPtr = append(f.etaPtr, int32(len(f.etaIdx)))
}
