package solver

import (
	"context"
	"math"
	"sort"
)

// Artificial-box policy for dual-infeasible columns at cold start (see
// placeNonbasic): a column whose cost sign demands a bound the model does
// not have gets a temporary box at ±rxBigBound; if the optimum lands on
// that box the solve retries once with the box enlarged by rxBigGrow, and
// gives up to the dense engine if it still binds (the problem is unbounded
// or near it, which the dense two-phase decides exactly).
const (
	rxBigBound = 1e7
	rxBigGrow  = 1e4
)

// rxPivotSafety is the minimum spike-pivot magnitude accepted for a basis
// change. A column can price as eligible (|ρ·a_j| > pivotTol) while the
// FTRAN'd value of the same quantity lands orders of magnitude smaller on
// highly degenerate models; pivoting on such a value produces a
// near-singular next basis whose refactorization then fails. Columns under
// this threshold are numerically ineligible for the current leaving row
// and are excluded from the ratio test instead of pivoted on. Skipping a
// column with |α| < rxPivotSafety perturbs its reduced cost by at most
// θ·|α| per pivot, well inside feasTol for the step sizes these models
// produce.
const rxPivotSafety = 1e-7

// Pricing-weight guards: rxWeightFloor keeps the weighted leaving-row
// score finite when an updated weight has drifted toward zero, and
// rxDevexCap bounds devex reference-weight growth — a weight past the cap
// means the reference framework is long gone and the recurrence is only
// amplifying noise, so the framework resets.
const (
	rxWeightFloor = 1e-10
	rxDevexCap    = 1e7
)

// rxStatus is a column's role relative to the current basis.
type rxStatus int8

const (
	rxAtLower rxStatus = iota // nonbasic at its lower bound
	rxAtUpper                 // nonbasic at its upper bound
	rxBasic
	rxFree // nonbasic at value 0, both bounds infinite
)

// rxSnap is the revised engine's per-node basis snapshot: the basis and
// every column's status at the parent's optimum. Unlike the dense
// basisSnap it carries no row-orientation data — the revised engine works
// on the model rows directly, so nothing about the snapshot depends on
// rhs signs, and bound changes never alter its shape (bounds live in
// vectors, not in tableau rows). Immutable after creation; shared by both
// children.
type rxSnap struct {
	rows, cols int
	basis      []int32
	status     []rxStatus
}

// rxResult is the internal outcome of a dual-simplex run.
type rxResult int

const (
	rxOptimal rxResult = iota
	rxInfeasible
	rxIterLimit
	rxGiveUp // numerical trouble: the caller falls back to the dense engine
)

// rxScratch is the revised simplex's per-worker state: the shared
// read-only CSC matrix, bound/status/basis vectors sized by columns and
// rows (never rows×cols), the LU factorization of the basis, and a
// handful of dense work vectors of length rows. Standard form is
//
//	min c·x   s.t.  A·x + s = b,  lb ≤ x ≤ ub,
//
// with one implicit unit slack column per row whose bounds encode the
// relation. Bounded variables are handled natively — a nonbasic column
// sits at its lower or upper bound — so finite upper bounds cost nothing,
// where the dense tableau spends a full row on each. A scratch must not
// be shared between concurrent solves; each branch-and-bound worker owns
// one.
type rxScratch struct {
	m     *Model
	csc   *cscMatrix
	nRows int
	nCols int // structural columns; slack j for row r is nCols+r
	nTot  int
	sign  float64 // +1 Minimize, −1 Maximize

	cost   []float64 // per column, sign-scaled (slacks 0)
	lb, ub []float64 // effective bounds for this solve (slack part fixed)
	status []rxStatus
	basis  []int32   // per row position, the basic column
	xB     []float64 // basic variable values, by row position

	lu     luFactor
	excl   []uint64 // per-column exclusion epoch for the tiny-pivot retry
	exclEp uint64
	alphaC []float64 // cached ρ·a_j per admissible column for the ratio test
	dC     []float64 // cached reduced cost per admissible column
	admis  []int32   // admissible columns of the current ratio test
	cand   rxCands   // ratio-sorted candidate walk of the long-step ratio test
	colBuf []float64 // dense original-row scratch (FTRAN input; zero between uses)
	w      []float64 // FTRAN output: the spike B⁻¹a_enter
	rho    []float64 // BTRAN(e_p), original-row space
	y      []float64 // BTRAN(c_B), original-row space
	posBuf []float64 // BTRAN input scratch, position space (zero between uses)

	pricing   PricingRule // normalized leaving-row rule (never "")
	weightsOK bool        // rowW valid; false falls row selection back to Dantzig
	rowW      []float64   // per-row pricing weight (DSE: ‖B⁻ᵀe_i‖²; devex: reference weight)
	tau       []float64   // DSE: τ = B⁻¹ρ_p, the extra FTRAN per pivot
	flipJ     []int32     // columns the current ratio test bound-flips
	flipW     []float64   // FTRAN output for the aggregated flip column
	spikeSave []float64   // FT spike saved across the flip FTRAN

	values []float64 // model-variable extraction buffer (aliased by Solutions)

	artLBCols []int32 // columns whose lb is currently an artificial box
	artUBCols []int32 // columns whose ub is currently an artificial box

	maxIter    int             // per-solve pivot cap (0 = size-derived default)
	ctx        context.Context // cancellation observed every ctxCheckMask+1 pivots (nil = never)
	lastPivots int
	usedArt    bool // solve placed artificial boxes: no snapshot, no fixings

	nBoundFlips   int // cumulative over the scratch lifetime
	nWeightResets int
}

// rxCands is the sorted candidate list of the long-step dual ratio test:
// admissible columns ordered by (ratio, column index), walked in order so
// boxed candidates whose ratio is passed can be flipped bound-to-bound.
// Lives in the scratch and is re-sliced per iteration; sorting allocates
// nothing.
type rxCands struct {
	j     []int32
	ratio []float64
}

func (c *rxCands) Len() int { return len(c.j) }
func (c *rxCands) Less(a, b int) bool {
	if c.ratio[a] != c.ratio[b] {
		return c.ratio[a] < c.ratio[b]
	}
	return c.j[a] < c.j[b]
}
func (c *rxCands) Swap(a, b int) {
	c.j[a], c.j[b] = c.j[b], c.j[a]
	c.ratio[a], c.ratio[b] = c.ratio[b], c.ratio[a]
}

// newRxScratch builds a revised-simplex scratch for m. etaFile selects the
// legacy product-form eta file for basis maintenance instead of the default
// Forrest–Tomlin updates (Options.EtaFileUpdates; kept for ablation and
// differential testing).
func newRxScratch(m *Model, etaFile bool) *rxScratch {
	csc := m.cscMatrixOf()
	rx := &rxScratch{
		m:     m,
		csc:   csc,
		nRows: csc.rows,
		nCols: csc.cols,
		nTot:  csc.cols + csc.rows,
		sign:  1,
	}
	rx.lu.ft = !etaFile
	if m.sense == Maximize {
		rx.sign = -1
	}
	rx.cost = make([]float64, rx.nTot)
	for i := range m.vars {
		rx.cost[i] = rx.sign * m.vars[i].obj
	}
	rx.lb = make([]float64, rx.nTot)
	rx.ub = make([]float64, rx.nTot)
	rx.status = make([]rxStatus, rx.nTot)
	rx.basis = make([]int32, rx.nRows)
	rx.xB = make([]float64, rx.nRows)
	rx.excl = make([]uint64, rx.nTot)
	rx.alphaC = make([]float64, rx.nTot)
	rx.dC = make([]float64, rx.nTot)
	rx.admis = make([]int32, 0, rx.nTot)
	rx.colBuf = make([]float64, rx.nRows)
	rx.w = make([]float64, rx.nRows)
	rx.rho = make([]float64, rx.nRows)
	rx.y = make([]float64, rx.nRows)
	rx.posBuf = make([]float64, rx.nRows)
	rx.values = make([]float64, rx.nCols)
	rx.pricing = PricingDevex
	rx.rowW = make([]float64, rx.nRows)
	rx.tau = make([]float64, rx.nRows)
	rx.flipJ = make([]int32, 0, 16)
	rx.flipW = make([]float64, rx.nRows)
	rx.spikeSave = make([]float64, rx.nRows)
	rx.cand.j = make([]int32, 0, rx.nTot)
	rx.cand.ratio = make([]float64, 0, rx.nTot)
	// Slack bounds are fixed by the row relations; set once.
	for r := 0; r < rx.nRows; r++ {
		j := rx.nCols + r
		switch csc.rel[r] {
		case LE:
			rx.lb[j], rx.ub[j] = 0, math.Inf(1)
		case GE:
			rx.lb[j], rx.ub[j] = math.Inf(-1), 0
		case EQ:
			rx.lb[j], rx.ub[j] = 0, 0
		}
	}
	return rx
}

// setPricing installs the leaving-row rule, normalizing the zero value to
// the devex default so direct SolveLP callers get the same engine the
// validated MILP path does.
func (rx *rxScratch) setPricing(p PricingRule) {
	if p == "" {
		p = PricingDevex
	}
	rx.pricing = p
}

// resetWeights reinstalls the unit reference framework. For the all-slack
// basis this is exact for steepest-edge too: B = I, so every row of B⁻ᵀ is
// a unit vector and ‖B⁻ᵀe_i‖² = 1. For any other basis it is the standard
// approximate restart — pricing quality degrades for a few pivots, never
// correctness. counted selects whether the reset shows up in the
// WeightResets counter (mid-solve resets do; per-solve initialization does
// not).
func (rx *rxScratch) resetWeights(counted bool) {
	for i := range rx.rowW {
		rx.rowW[i] = 1
	}
	rx.weightsOK = true
	if counted {
		rx.nWeightResets++
	}
}

// resolveBounds loads the model bounds tightened by the node's bound-change
// chain into the structural part of lb/ub.
func (rx *rxScratch) resolveBounds(chain *boundChange) {
	for i := range rx.m.vars {
		rx.lb[i], rx.ub[i] = rx.m.vars[i].lb, rx.m.vars[i].ub
	}
	for c := chain; c != nil; c = c.parent {
		if c.upper {
			if c.val < rx.ub[c.v] {
				rx.ub[c.v] = c.val
			}
		} else if c.val > rx.lb[c.v] {
			rx.lb[c.v] = c.val
		}
	}
}

// nonbasicValue returns the value a nonbasic column currently sits at.
func (rx *rxScratch) nonbasicValue(j int) float64 {
	switch rx.status[j] {
	case rxAtLower:
		return rx.lb[j]
	case rxAtUpper:
		return rx.ub[j]
	}
	return 0 // rxFree (and rxBasic, whose value lives in xB)
}

// scatterCol writes column j (structural or slack) into the dense
// original-row vector x, which must be zero on entry.
func (rx *rxScratch) scatterCol(j int, x []float64) {
	if j >= rx.nCols {
		x[j-rx.nCols] = 1
		return
	}
	for k := rx.csc.colPtr[j]; k < rx.csc.colPtr[j+1]; k++ {
		x[rx.csc.rowIdx[k]] = rx.csc.val[k]
	}
}

// computeXB recomputes the basic values xB = B⁻¹(b − N·x_N) from scratch.
// Called after every (re)factorization so accumulated update error in xB
// is flushed along with the eta file.
func (rx *rxScratch) computeXB() {
	x := rx.colBuf
	copy(x, rx.csc.rhs)
	for j := 0; j < rx.nCols; j++ {
		if rx.status[j] == rxBasic {
			continue
		}
		v := rx.nonbasicValue(j)
		if v == 0 {
			continue
		}
		for k := rx.csc.colPtr[j]; k < rx.csc.colPtr[j+1]; k++ {
			x[rx.csc.rowIdx[k]] -= rx.csc.val[k] * v
		}
	}
	for r := 0; r < rx.nRows; r++ {
		j := rx.nCols + r
		if rx.status[j] != rxBasic {
			x[r] -= rx.nonbasicValue(j)
		}
	}
	rx.lu.ftran(x, rx.xB)
}

// refactor factorizes the current basis and recomputes xB. Returns false
// on a singular basis.
func (rx *rxScratch) refactor() bool {
	if !rx.lu.factorize(rx.basis, rx.csc, rx.colBuf) {
		return false
	}
	rx.computeXB()
	return true
}

// priceCol returns α_j = ρ·a_j and d_j = c_j − y·a_j for column j in one
// pass over its nonzeros.
func (rx *rxScratch) priceCol(j int) (alpha, d float64) {
	if j >= rx.nCols {
		r := j - rx.nCols
		return rx.rho[r], rx.cost[j] - rx.y[r]
	}
	var yd float64
	for k := rx.csc.colPtr[j]; k < rx.csc.colPtr[j+1]; k++ {
		r := rx.csc.rowIdx[k]
		alpha += rx.csc.val[k] * rx.rho[r]
		yd += rx.csc.val[k] * rx.y[r]
	}
	return alpha, rx.cost[j] - yd
}

// dualIterate runs bounded-variable dual simplex pivots from the current
// (dual-feasible) basis until primal feasibility (rxOptimal), a violated
// row whose full long-step walk cannot absorb the violation
// (rxInfeasible), the pivot budget (rxIterLimit), or numerical trouble
// (rxGiveUp). The pivot budget is cumulative per solve: iterations already
// recorded in lastPivots (by an earlier attempt of the same solve) count
// against maxIter, so a cold solve retrying with an enlarged artificial
// box cannot spend the cap twice.
//
// Row selection is weighted by the pricing rule — violation²/weight under
// devex or steepest-edge, largest violation under Dantzig or when the
// weights have gone stale — and switches to first-violated-index after a
// Bland-style threshold. The entering column comes from a long-step ratio
// test: admissible columns are walked in (ratio, index) order, and a boxed
// candidate whose ratio is passed while the remaining violation still
// exceeds feasTol is flipped to its opposite bound instead of pivoted on.
// The walk stops at the first candidate it cannot flip past, and the
// entering column is the max-|α| member of that candidate's feasTol ratio
// tie group — the same discriminator as before the long step existed —
// so the pivot sequence stays deterministic.
func (rx *rxScratch) dualIterate() rxResult {
	maxIter := rx.maxIter
	if maxIter <= 0 {
		maxIter = 100*(rx.nRows+rx.nTot) + 2000
	}
	budget := maxIter - rx.lastPivots
	blandAfter := 20 * (rx.nRows + rx.nTot)
	for iter := 0; iter < budget; iter++ {
		if iter&ctxCheckMask == 0 && rx.ctx != nil && rx.ctx.Err() != nil {
			return rxIterLimit
		}
		// Leaving row; sigma is the violation direction (+1 above ub, −1
		// below lb). Weighted rules score violation²/weight — steepest
		// edge's ‖B⁻ᵀe_i‖² normalizes the violation by the length of the
		// dual ray the pivot would move along, devex approximates the same
		// quantity — which is what breaks the degeneracy oscillation:
		// Dantzig keeps re-picking rows whose large violation moves along a
		// near-parallel ray, weighted pricing discounts exactly those.
		p, sigma, worst := -1, 1.0, feasTol
		if rx.pricing != PricingDantzig && rx.weightsOK && iter < blandAfter {
			best := 0.0
			for r := 0; r < rx.nRows; r++ {
				bc := rx.basis[r]
				xr := rx.xB[r]
				v, s := rx.lb[bc]-xr, -1.0
				if v <= feasTol {
					if v = xr - rx.ub[bc]; v <= feasTol {
						continue
					}
					s = 1
				}
				wr := rx.rowW[r]
				if wr < rxWeightFloor {
					wr = rxWeightFloor
				}
				if score := v * v / wr; score > best {
					best, p, sigma, worst = score, r, s, v
				}
			}
		} else {
			for r := 0; r < rx.nRows; r++ {
				bc := rx.basis[r]
				xr := rx.xB[r]
				if v := rx.lb[bc] - xr; v > worst {
					worst, p, sigma = v, r, -1
					if iter >= blandAfter {
						break
					}
				} else if v := xr - rx.ub[bc]; v > worst {
					worst, p, sigma = v, r, 1
					if iter >= blandAfter {
						break
					}
				}
			}
		}
		if p < 0 {
			return rxOptimal
		}
		leave := int(rx.basis[p])

		// Price: ρ = B⁻ᵀe_p gives the leaving row of B⁻¹A; y = B⁻ᵀc_B
		// gives reduced costs. Both recomputed fresh — no incremental cost
		// row to drift.
		rx.posBuf[p] = 1
		rx.lu.btran(rx.posBuf, rx.rho)
		for r := 0; r < rx.nRows; r++ {
			rx.posBuf[r] = rx.cost[rx.basis[r]]
		}
		rx.lu.btran(rx.posBuf, rx.y)

		// Steepest edge needs β_p = ρ·ρ — the exact current weight of row
		// p, which anchors the Forrest–Goldfarb update against stored-weight
		// drift — and τ = B⁻¹ρ, the one extra FTRAN each pivot costs. τ must
		// run now, BEFORE the entering-column FTRANs, so the Forrest–Tomlin
		// spike capture those leave behind is the one ftUpdate consumes.
		betaP := 0.0
		dse := rx.pricing == PricingSteepestEdge && rx.weightsOK
		if dse {
			for i := 0; i < rx.nRows; i++ {
				betaP += rx.rho[i] * rx.rho[i]
			}
			copy(rx.colBuf, rx.rho)
			rx.lu.ftran(rx.colBuf, rx.tau)
		}

		// Dual ratio test: among nonbasic columns whose movement pushes
		// xB[p] toward its violated bound, the entering column must be one
		// whose reduced cost hits zero first. One pricing pass caches every
		// admissible column's (α, d); the winner is then chosen among the
		// columns whose ratio ties the minimum within feasTol as the one
		// with the LARGEST |α|. The tie-break is the load-bearing part: on
		// massively degenerate models (near-parallel columns after
		// coefficient tightening) most ratios are exactly zero, and always
		// taking the smallest index walks into a sequence of tiny pivots
		// whose huge steps blow up the basic values until the basis goes
		// numerically singular. Preferring the biggest pivot keeps steps —
		// and the basis condition number — bounded.
		rx.admis = rx.admis[:0]
		for j := 0; j < rx.nTot; j++ {
			st := rx.status[j]
			if st == rxBasic || rx.lb[j] == rx.ub[j] {
				continue // fixed columns cannot move; their d is unconstrained
			}
			alpha, d := rx.priceCol(j)
			switch st {
			case rxAtLower:
				if sigma*alpha <= pivotTol {
					continue
				}
			case rxAtUpper:
				if sigma*alpha >= -pivotTol {
					continue
				}
			default: // rxFree: d ≈ 0, either direction admissible
				if math.Abs(alpha) <= pivotTol {
					continue
				}
			}
			ratio := d / (sigma * alpha)
			if ratio < 0 {
				ratio = 0 // roundoff pushed d marginally past its bound
			}
			rx.admis = append(rx.admis, int32(j))
			rx.alphaC[j], rx.dC[j] = alpha, ratio
		}
		// Sort the candidates by (ratio, index) once; the tiny-pivot
		// exclusion retry below redoes the walk, not the sort.
		rx.cand.j = append(rx.cand.j[:0], rx.admis...)
		rx.cand.ratio = rx.cand.ratio[:0]
		for _, j32 := range rx.admis {
			rx.cand.ratio = append(rx.cand.ratio, rx.dC[j32])
		}
		sort.Sort(&rx.cand)

		// The walk retries with the chosen column excluded whenever its
		// FTRAN'd spike pivot comes out below rxPivotSafety — pivoting on a
		// tiny α would hand the next refactorization a near-singular basis
		// (see the constant's comment).
		rx.exclEp++
		excluded := 0
		enter := -1
		var alphaP float64
		for {
			// Long-step walk in ratio order: δ is the dual-objective slope —
			// the remaining violation of row p — which flipping a boxed
			// candidate bound-to-bound shrinks by width·|α|. A candidate is
			// passed (marked for flipping, applied only after the entering
			// pivot survives the safety check) while δ stays above feasTol;
			// the walk stops at the first candidate it cannot flip past —
			// pivoting there lands the leaving variable exactly on its
			// bound. Free and unboxed columns have infinite width and always
			// stop the walk, so models without boxed columns behave exactly
			// as before.
			rx.flipJ = rx.flipJ[:0]
			delta := worst
			stop := -1
			for ci := 0; ci < len(rx.cand.j); ci++ {
				j := int(rx.cand.j[ci])
				if rx.excl[j] == rx.exclEp {
					continue
				}
				if drop := (rx.ub[j] - rx.lb[j]) * math.Abs(rx.alphaC[j]); delta-drop > feasTol {
					rx.flipJ = append(rx.flipJ, int32(j))
					delta -= drop
					continue
				}
				stop = ci
				break
			}
			if stop < 0 {
				if excluded > 0 {
					// Tiny-pivot exclusions ate the walk: too
					// ill-conditioned to certify infeasibility here. The
					// dense two-phase decides.
					return rxGiveUp
				}
				// Walking (and flipping) every admissible column leaves row
				// p violated: the dual objective improves along this ray
				// without bound, so no feasible point exists under these
				// bounds. (With no admissible columns at all this is the
				// classic dual-unbounded row certificate.)
				return rxInfeasible
			}
			// Only candidates whose ratio the dual step STRICTLY passes stay
			// flipped. A candidate in the stop's feasTol tie group keeps its
			// bound: its reduced cost is ≈0 at the new dual point, so either
			// bound is dual-feasible — and flipping it would move the primal
			// point across a degenerate (θ ≈ 0) step with no dual progress,
			// which is exactly the cycling the dual simplex is otherwise
			// immune to. With the filter, any iteration that flips has
			// θ > feasTol and strictly improves the dual objective, so flip
			// sequences terminate.
			stopRatio := rx.cand.ratio[stop]
			keep := rx.flipJ[:0]
			for _, j32 := range rx.flipJ {
				if rx.dC[j32] < stopRatio-feasTol {
					keep = append(keep, j32)
				}
			}
			rx.flipJ = keep
			// Entering column: max |α| within the stop's feasTol ratio tie
			// group, including tie-group members the filter just unflipped.
			enter = -1
			bestAbs := 0.0
			for ci := 0; ci < len(rx.cand.j); ci++ {
				if rx.cand.ratio[ci] > stopRatio+feasTol {
					break
				}
				j := int(rx.cand.j[ci])
				if rx.excl[j] == rx.exclEp || rx.cand.ratio[ci] < stopRatio-feasTol {
					continue
				}
				if a := math.Abs(rx.alphaC[j]); a > bestAbs {
					bestAbs = a
					enter = j
				}
			}

			// Spike: w = B⁻¹a_enter.
			rx.scatterCol(enter, rx.colBuf)
			rx.lu.ftran(rx.colBuf, rx.w)
			alphaP = rx.w[p]
			if math.Abs(alphaP) > rxPivotSafety {
				break
			}
			rx.excl[enter] = rx.exclEp
			excluded++
		}

		// Apply the flips: every flipped column moves to its opposite bound
		// in its admissible direction. One aggregated FTRAN updates the
		// basic values for all of them together; the Forrest–Tomlin spike
		// of the entering column is saved around it so ftUpdate still
		// consumes the right vector.
		if len(rx.flipJ) > 0 {
			for _, j32 := range rx.flipJ {
				j := int(j32)
				dv := rx.ub[j] - rx.lb[j]
				if rx.status[j] == rxAtUpper {
					dv = -dv
					rx.status[j] = rxAtLower
				} else {
					rx.status[j] = rxAtUpper
				}
				if j >= rx.nCols {
					rx.colBuf[j-rx.nCols] += dv
				} else {
					for k := rx.csc.colPtr[j]; k < rx.csc.colPtr[j+1]; k++ {
						rx.colBuf[rx.csc.rowIdx[k]] += dv * rx.csc.val[k]
					}
				}
			}
			if rx.lu.ft {
				rx.lu.saveSpike(rx.spikeSave)
			}
			rx.lu.ftran(rx.colBuf, rx.flipW)
			if rx.lu.ft {
				rx.lu.restoreSpike(rx.spikeSave)
			}
			for i := 0; i < rx.nRows; i++ {
				rx.xB[i] -= rx.flipW[i]
			}
		}

		// Primal step: the leaving variable lands exactly on its violated
		// bound; the entering variable absorbs the (post-flip) step.
		target := rx.ub[leave]
		if sigma < 0 {
			target = rx.lb[leave]
		}
		step := (rx.xB[p] - target) / alphaP
		enterVal := rx.nonbasicValue(enter) + step
		if step != 0 {
			for i := 0; i < rx.nRows; i++ {
				rx.xB[i] -= step * rx.w[i]
			}
		}
		enterPrev := rx.status[enter]
		rx.xB[p] = enterVal
		if sigma > 0 {
			rx.status[leave] = rxAtUpper
		} else {
			rx.status[leave] = rxAtLower
		}
		rx.status[enter] = rxBasic
		rx.basis[p] = int32(enter)
		rx.lastPivots++

		// Factor update. Forrest–Tomlin mode updates U in place unless the
		// spike pivot is tiny, fill has outgrown the factorization, or the
		// update itself detects numerical drift — all of which refactorize
		// instead. Eta-file mode appends a product-form eta with the fixed
		// luMaxEtas refactorization cap.
		var updated bool
		if rx.lu.ft {
			updated = math.Abs(alphaP) >= luEtaTol && !rx.lu.needRefactor() && rx.lu.ftUpdate(p, alphaP)
		} else if rx.lu.nEtas() < luMaxEtas && math.Abs(alphaP) >= luEtaTol {
			rx.lu.appendEta(p, rx.w)
			updated = true
		}
		if !updated {
			if !rx.refactor() {
				// The factorization had drifted far enough that the pivot we
				// just made was priced from bad numbers and produced a
				// numerically dependent basis. Undo the pivot AND the flips
				// (a flipped column's status is only dual-consistent across
				// the step the rollback cancels), rebuild fresh factors for
				// the previous basis (which was valid), and redo the
				// iteration with accurate pricing. The weights were not yet
				// updated, so they still describe the restored basis.
				rx.basis[p] = int32(leave)
				rx.status[leave] = rxBasic
				rx.status[enter] = enterPrev
				for _, j32 := range rx.flipJ {
					j := int(j32)
					if rx.status[j] == rxAtUpper {
						rx.status[j] = rxAtLower
					} else {
						rx.status[j] = rxAtUpper
					}
				}
				rx.lastPivots--
				if !rx.refactor() {
					return rxGiveUp
				}
				continue
			}
			// A successful refactorization invalidates the devex reference
			// framework (devex weights are relative to the framework
			// installed at the last reset); steepest-edge weights are basis
			// properties and survive.
			if rx.pricing == PricingDevex && rx.weightsOK {
				rx.resetWeights(true)
				rx.nBoundFlips += len(rx.flipJ)
				continue
			}
		}
		rx.nBoundFlips += len(rx.flipJ)

		// Pricing-weight maintenance, all in terms of pre-pivot quantities:
		// spike α = B⁻¹a_enter (rx.w), τ = B⁻¹ρ_p, and β_p = ρ·ρ — row p's
		// exact pre-pivot weight, used instead of the stored rowW[p] so one
		// drifted stored weight cannot poison the whole framework.
		if dse {
			// Forrest–Goldfarb: w_i' = w_i − 2(α_i/α_p)τ_i + (α_i/α_p)²β_p
			// for rows the spike touches, and w_p' = β_p/α_p² for the row
			// the entering column now owns (ρ' of row p is ρ/α_p).
			ok := true
			for i := 0; i < rx.nRows; i++ {
				if i == p {
					continue
				}
				if ai := rx.w[i]; ai != 0 {
					r := ai / alphaP
					nw := rx.rowW[i] - 2*r*rx.tau[i] + r*r*betaP
					if math.IsNaN(nw) || math.IsInf(nw, 0) {
						ok = false
						break
					}
					if nw < rxWeightFloor {
						nw = rxWeightFloor
					}
					rx.rowW[i] = nw
				}
			}
			wp := betaP / (alphaP * alphaP)
			if math.IsNaN(wp) || math.IsInf(wp, 0) {
				ok = false
			}
			if !ok {
				// Stale weights: fall back to Dantzig row selection until
				// the next solve reinitializes the framework.
				rx.weightsOK = false
				rx.nWeightResets++
			} else {
				if wp < rxWeightFloor {
					wp = rxWeightFloor
				}
				rx.rowW[p] = wp
			}
		} else if rx.pricing == PricingDevex && rx.weightsOK {
			// Devex recurrence against the pre-update reference weight γ_p:
			// γ_i' = max(γ_i, (α_i/α_p)²γ_p), γ_p' = max(γ_p/α_p², 1).
			gp := rx.rowW[p]
			inv := 1 / (alphaP * alphaP)
			maxW := 1.0
			for i := 0; i < rx.nRows; i++ {
				if i == p {
					continue
				}
				if ai := rx.w[i]; ai != 0 {
					if cw := ai * ai * inv * gp; cw > rx.rowW[i] {
						rx.rowW[i] = cw
					}
					if rx.rowW[i] > maxW {
						maxW = rx.rowW[i]
					}
				}
			}
			gpNew := gp * inv
			if gpNew < 1 {
				gpNew = 1
			}
			rx.rowW[p] = gpNew
			if gpNew > maxW {
				maxW = gpNew
			}
			if math.IsNaN(maxW) || math.IsInf(maxW, 0) {
				rx.weightsOK = false
				rx.nWeightResets++
			} else if maxW > rxDevexCap {
				// The reference framework has decayed past usefulness:
				// restart it rather than keep amplifying one direction.
				rx.resetWeights(true)
			}
		}
	}
	return rxIterLimit
}

// placeNonbasic assigns every structural column a dual-feasible nonbasic
// status for the all-slack basis: positive cost at lower, negative at
// upper, zero wherever a finite bound exists (free otherwise). A column
// whose cost sign demands a bound the problem does not have gets an
// artificial box at ±big (previous boxes are dissolved first). Returns
// whether any box was placed.
func (rx *rxScratch) placeNonbasic(big float64) bool {
	for _, j := range rx.artLBCols {
		rx.lb[j] = math.Inf(-1)
	}
	for _, j := range rx.artUBCols {
		rx.ub[j] = math.Inf(1)
	}
	rx.artLBCols = rx.artLBCols[:0]
	rx.artUBCols = rx.artUBCols[:0]
	for j := 0; j < rx.nCols; j++ {
		l, u, c := rx.lb[j], rx.ub[j], rx.cost[j]
		lInf, uInf := math.IsInf(l, -1), math.IsInf(u, 1)
		switch {
		case c > feasTol:
			if lInf {
				rx.lb[j] = -big
				rx.artLBCols = append(rx.artLBCols, int32(j))
			}
			rx.status[j] = rxAtLower
		case c < -feasTol:
			if uInf {
				rx.ub[j] = big
				rx.artUBCols = append(rx.artUBCols, int32(j))
			}
			rx.status[j] = rxAtUpper
		default:
			switch {
			case !lInf:
				rx.status[j] = rxAtLower
			case !uInf:
				rx.status[j] = rxAtUpper
			default:
				rx.status[j] = rxFree
			}
		}
	}
	art := len(rx.artLBCols)+len(rx.artUBCols) > 0
	rx.usedArt = rx.usedArt || art
	return art
}

// colValue returns column j's current value, basic or not.
func (rx *rxScratch) colValue(j int) float64 {
	if rx.status[j] == rxBasic {
		for r, b := range rx.basis {
			if int(b) == j {
				return rx.xB[r]
			}
		}
	}
	return rx.nonbasicValue(j)
}

// artBoundActive reports whether any artificially boxed column's optimal
// value sits on its box — in which case the box, not the problem, shaped
// the optimum.
func (rx *rxScratch) artBoundActive() bool {
	for _, j := range rx.artLBCols {
		if rx.colValue(int(j)) <= rx.lb[j]+1e-6*math.Abs(rx.lb[j]) {
			return true
		}
	}
	for _, j := range rx.artUBCols {
		if rx.colValue(int(j)) >= rx.ub[j]-1e-6*math.Abs(rx.ub[j]) {
			return true
		}
	}
	return false
}

// extract maps the current basic point back to model variables. The
// returned Values alias rx.values: callers that keep a solution across
// solves must copy first.
func (rx *rxScratch) extract() Solution {
	for j := 0; j < rx.nCols; j++ {
		rx.values[j] = rx.nonbasicValue(j)
	}
	for r := 0; r < rx.nRows; r++ {
		if b := int(rx.basis[r]); b < rx.nCols {
			rx.values[b] = rx.xB[r]
		}
	}
	obj := 0.0
	for j := 0; j < rx.nCols; j++ {
		obj += rx.m.vars[j].obj * rx.values[j]
	}
	return Solution{Status: Optimal, Objective: obj, Values: rx.values}
}

// solveCold solves from the all-slack basis under the bounds loaded by
// resolveBounds. ok=false means the engine could not certify the outcome
// (singular basis, numerical trouble, or an artificial box kept binding)
// and the caller must decide with the dense two-phase engine.
func (rx *rxScratch) solveCold() (Solution, bool) {
	rx.lastPivots = 0
	rx.usedArt = false
	for j := 0; j < rx.nCols; j++ {
		if rx.lb[j] > rx.ub[j]+feasTol {
			return Solution{Status: Infeasible}, true
		}
	}
	big := rxBigBound
	for attempt := 0; ; attempt++ {
		art := rx.placeNonbasic(big)
		for r := 0; r < rx.nRows; r++ {
			j := rx.nCols + r
			rx.basis[r] = int32(j)
			rx.status[j] = rxBasic
		}
		if !rx.refactor() {
			return Solution{}, false
		}
		// Unit weights are exact for the all-slack basis (B = I), so
		// steepest edge starts from a true reference framework here.
		rx.resetWeights(false)
		switch rx.dualIterate() {
		case rxOptimal:
			if !art || !rx.artBoundActive() {
				return rx.extract(), true
			}
		case rxInfeasible:
			if !art {
				return Solution{Status: Infeasible}, true
			}
			// Infeasible under artificial boxes is not a certificate for
			// the real problem — the boxes shrink the feasible region.
		case rxIterLimit:
			return Solution{Status: IterLimit}, true
		default:
			return Solution{}, false
		}
		if attempt > 0 {
			return Solution{}, false // enlarged box still decisive: dense decides
		}
		big *= rxBigGrow
	}
}

// dualFeasible verifies every nonbasic column prices out on the right side
// for its status, using the y already in rx.y.
func (rx *rxScratch) dualFeasible() bool {
	for j := 0; j < rx.nTot; j++ {
		st := rx.status[j]
		if st == rxBasic || rx.lb[j] == rx.ub[j] {
			continue
		}
		var yd float64
		if j >= rx.nCols {
			yd = rx.y[j-rx.nCols]
		} else {
			for k := rx.csc.colPtr[j]; k < rx.csc.colPtr[j+1]; k++ {
				yd += rx.csc.val[k] * rx.y[rx.csc.rowIdx[k]]
			}
		}
		d := rx.cost[j] - yd
		switch st {
		case rxAtLower:
			if d < -feasTol {
				return false
			}
		case rxAtUpper:
			if d > feasTol {
				return false
			}
		default:
			if math.Abs(d) > feasTol {
				return false
			}
		}
	}
	return true
}

// finishDual runs the dual simplex and converts the outcome. ok=false
// sends the caller down the fallback ladder (warm → cold → dense) —
// except on cancellation, where re-solving would only re-abort after
// redundant factorization work, so IterLimit surfaces directly.
func (rx *rxScratch) finishDual() (Solution, bool) {
	switch rx.dualIterate() {
	case rxOptimal:
		return rx.extract(), true
	case rxInfeasible:
		return Solution{Status: Infeasible}, true
	case rxIterLimit:
		if rx.ctx != nil && rx.ctx.Err() != nil {
			return Solution{Status: IterLimit}, true
		}
		return Solution{}, false
	default:
		return Solution{}, false
	}
}

// solveWarm re-optimizes under the bounds loaded by resolveBounds starting
// from a parent snapshot: install statuses and basis, factorize once,
// verify dual feasibility (costs are unchanged, so the parent's optimal
// basis should price out clean — refuse on roundoff rather than risk a
// dual loop), then repair primal feasibility with the dual simplex.
// ok=false means fall back to solveCold.
func (rx *rxScratch) solveWarm(snap *rxSnap) (Solution, bool) {
	rx.lastPivots = 0
	rx.usedArt = false
	if snap == nil || snap.rows != rx.nRows || snap.cols != rx.nCols {
		return Solution{}, false
	}
	for j := 0; j < rx.nCols; j++ {
		if rx.lb[j] > rx.ub[j]+feasTol {
			return Solution{Status: Infeasible}, true
		}
	}
	copy(rx.basis, snap.basis)
	copy(rx.status, snap.status)
	// A nonbasic-at-bound status needs that bound finite. Snapshots are
	// only taken from solves without artificial boxes and branching only
	// tightens bounds, so this never fires; keep as a cheap invariant.
	for j := 0; j < rx.nTot; j++ {
		switch rx.status[j] {
		case rxAtLower:
			if math.IsInf(rx.lb[j], -1) {
				return Solution{}, false
			}
		case rxAtUpper:
			if math.IsInf(rx.ub[j], 1) {
				return Solution{}, false
			}
		}
	}
	if !rx.refactor() {
		return Solution{}, false
	}
	for r := 0; r < rx.nRows; r++ {
		rx.posBuf[r] = rx.cost[rx.basis[r]]
	}
	rx.lu.btran(rx.posBuf, rx.y)
	if !rx.dualFeasible() {
		return Solution{}, false
	}
	// The parent's basis is not all-slack, so unit weights are only the
	// standard approximate restart — fine for pricing, which only has to
	// rank rows, and warm-started repairs are short anyway.
	rx.resetWeights(false)
	return rx.finishDual()
}

// solveDive re-optimizes in place after tightening bounds on the parent's
// optimal state still sitting in the scratch — no refactorization at all.
// A tightened bound on a basic variable changes nothing until the dual
// repair; on a nonbasic variable at that bound it shifts the column's
// value, moving xB by −δ·B⁻¹a_j — one FTRAN against the factorization
// already in place. This is the factorization-reuse analogue of the dense
// engine's O(rows) rhs-update dive. ok=false means re-solve via
// resolveBounds + solveWarm/solveCold.
func (rx *rxScratch) solveDive(changes []*boundChange) (Solution, bool) {
	rx.lastPivots = 0
	// The dive continues from the parent's final basis, which the weights
	// still describe — keep them unless the parent solve left them stale.
	if !rx.weightsOK {
		rx.resetWeights(false)
	}
	for _, c := range changes {
		j := int(c.v)
		if c.upper {
			newUb := math.Min(rx.ub[j], c.val)
			if newUb < rx.lb[j]-feasTol {
				return Solution{Status: Infeasible}, true
			}
			delta := newUb - rx.ub[j]
			rx.ub[j] = newUb
			switch rx.status[j] {
			case rxAtUpper:
				if delta != 0 {
					rx.shiftNonbasic(j, delta)
				}
			case rxFree:
				if newUb < 0 {
					rx.status[j] = rxAtUpper
					rx.shiftNonbasic(j, newUb)
				}
			}
		} else {
			newLb := math.Max(rx.lb[j], c.val)
			if newLb > rx.ub[j]+feasTol {
				return Solution{Status: Infeasible}, true
			}
			delta := newLb - rx.lb[j]
			rx.lb[j] = newLb
			switch rx.status[j] {
			case rxAtLower:
				if delta != 0 {
					rx.shiftNonbasic(j, delta)
				}
			case rxFree:
				if newLb > 0 {
					rx.status[j] = rxAtLower
					rx.shiftNonbasic(j, newLb)
				}
			}
		}
	}
	return rx.finishDual()
}

// shiftNonbasic moves nonbasic column j's value by delta, updating the
// basic values: xB ← xB − δ·B⁻¹a_j.
func (rx *rxScratch) shiftNonbasic(j int, delta float64) {
	rx.scatterCol(j, rx.colBuf)
	rx.lu.ftran(rx.colBuf, rx.w)
	for i := 0; i < rx.nRows; i++ {
		rx.xB[i] -= delta * rx.w[i]
	}
}

// snapshot captures the basis and statuses of the most recent Optimal
// solve, or nil when the solve used artificial boxes (children must not
// inherit statuses pinned to bounds that do not exist).
func (rx *rxScratch) snapshot() *rxSnap {
	if rx.usedArt {
		return nil
	}
	return &rxSnap{
		rows:   rx.nRows,
		cols:   rx.nCols,
		basis:  append([]int32(nil), rx.basis...),
		status: append([]rxStatus(nil), rx.status...),
	}
}

// fixings derives reduced-cost bound tightenings from the optimal basis in
// the scratch: an integer column nonbasic at a bound with reduced cost d
// degrades the objective by |d| per unit it moves inward, so once the
// incumbent is within budget, its range shrinks to ⌊budget/|d|⌋. Same
// logic as the dense engine's reducedCostFixings, priced through BTRAN.
func (rx *rxScratch) fixings(obj, inc float64, chain *boundChange) *boundChange {
	if rx.usedArt {
		return chain // artificial boxes make the dual prices unreliable
	}
	zMin, incMin := rx.sign*obj, rx.sign*inc
	budget := incMin - zMin + 1e-6*math.Max(1, math.Abs(incMin))
	if budget < 0 {
		return chain
	}
	for r := 0; r < rx.nRows; r++ {
		rx.posBuf[r] = rx.cost[rx.basis[r]]
	}
	rx.lu.btran(rx.posBuf, rx.y)
	for i := range rx.m.vars {
		if !rx.m.vars[i].integer {
			continue
		}
		st := rx.status[i]
		if st != rxAtLower && st != rxAtUpper {
			continue
		}
		width := rx.ub[i] - rx.lb[i]
		if width < 1 {
			continue
		}
		var yd float64
		for k := rx.csc.colPtr[i]; k < rx.csc.colPtr[i+1]; k++ {
			yd += rx.csc.val[k] * rx.y[rx.csc.rowIdx[k]]
		}
		d := rx.cost[i] - yd
		if st == rxAtLower && d > feasTol {
			if maxT := math.Floor(budget / d); maxT < width {
				chain = &boundChange{parent: chain, v: VarID(i), upper: true, val: rx.lb[i] + maxT}
			}
		} else if st == rxAtUpper && d < -feasTol {
			if maxT := math.Floor(budget / -d); maxT < width {
				chain = &boundChange{parent: chain, v: VarID(i), upper: false, val: rx.ub[i] - maxT}
			}
		}
	}
	return chain
}
