package solver

import (
	"context"
	"math"
	"testing"
)

// hardKnapsack builds a MIP with enough branching to keep several workers
// busy: a 2-constraint knapsack over 14 binaries with correlated weights,
// whose LP relaxation is fractional almost everywhere. The profits are
// deliberately non-integral and non-uniform so the objective bound
// rounding cannot lift the LP bounds — the limit and concurrency tests
// below need the full tree, not the shortcut.
func hardKnapsack(t *testing.T) *Model {
	t.Helper()
	m := NewModel("hard-knapsack", Maximize)
	profits := []float64{9.1, 11.4, 13.2, 15.3, 8.6, 12.1, 6.3, 7.2, 14.6, 10.3, 5.1, 16.4, 4.2, 3.1}
	w1 := []float64{6, 7, 8, 9, 5, 7, 4, 5, 9, 6, 3, 10, 3, 2}
	w2 := []float64{3, 5, 4, 7, 6, 2, 5, 3, 4, 7, 2, 6, 4, 1}
	vars := make([]VarID, len(profits))
	for i, p := range profits {
		vars[i] = m.AddBinVar("x", p)
	}
	t1 := make([]Term, len(vars))
	t2 := make([]Term, len(vars))
	for i, v := range vars {
		t1[i] = Term{Var: v, Coef: w1[i]}
		t2[i] = Term{Var: v, Coef: w2[i]}
	}
	mustCon(t, m, "cap1", t1, LE, 40)
	mustCon(t, m, "cap2", t2, LE, 28)
	return m
}

// TestWorkersDeterministicObjective asserts identical Objective and Status
// for Workers ∈ {1, 2, 8} when the search runs to proven optimality. Run
// under -race in CI, this also exercises the shared-frontier locking.
func TestWorkersDeterministicObjective(t *testing.T) {
	ref := mustSolveOpts(t, hardKnapsack(t), Options{Workers: 1})
	if ref.Status != Optimal {
		t.Fatalf("reference solve status = %v, want optimal", ref.Status)
	}
	if ref.Workers != 1 {
		t.Errorf("reference Solution.Workers = %d, want 1", ref.Workers)
	}
	if ref.Nodes <= 1 {
		t.Fatalf("reference solve explored %d nodes; instance too easy to exercise concurrency", ref.Nodes)
	}
	for _, w := range []int{2, 8} {
		s := mustSolveOpts(t, hardKnapsack(t), Options{Workers: w})
		if s.Status != ref.Status {
			t.Errorf("Workers=%d status = %v, want %v", w, s.Status, ref.Status)
		}
		if s.Objective != ref.Objective {
			t.Errorf("Workers=%d objective = %v, want %v", w, s.Objective, ref.Objective)
		}
		if s.Workers != w {
			t.Errorf("Workers=%d Solution.Workers = %d", w, s.Workers)
		}
		if s.Gap != 0 {
			t.Errorf("Workers=%d proven-optimal Gap = %v, want 0", w, s.Gap)
		}
	}
}

// TestWorkersCanonicalTieBreak: when two workers discover equal-objective
// incumbents in either order, the canonical rule (lexicographically
// smaller Values) picks the same winner, so the reported point does not
// depend on which worker got there first.
func TestWorkersCanonicalTieBreak(t *testing.T) {
	a := Solution{Status: Optimal, Objective: 1, Values: []float64{0, 1}}
	b := Solution{Status: Optimal, Objective: 1, Values: []float64{1, 0}}
	for name, order := range map[string][2]Solution{"a-first": {a, b}, "b-first": {b, a}} {
		s := &bbSearch{m: NewModel("tie", Maximize), min: false}
		s.acceptIncumbentLocked(order[0])
		s.acceptIncumbentLocked(order[1])
		if got := s.incumbent.Values; got[0] != 0 || got[1] != 1 {
			t.Errorf("%s: incumbent values = %v, want canonical [0 1]", name, got)
		}
	}
	// A strictly better objective always displaces the incumbent, lex
	// order notwithstanding.
	s := &bbSearch{m: NewModel("tie", Maximize), min: false}
	s.acceptIncumbentLocked(a)
	if !s.acceptIncumbentLocked(Solution{Status: Optimal, Objective: 2, Values: []float64{1, 1}}) {
		t.Error("strictly better incumbent rejected")
	}
	if s.incumbent.Objective != 2 {
		t.Errorf("incumbent objective = %v, want 2", s.incumbent.Objective)
	}
}

// TestWorkersCancellation: a pre-cancelled context stops the search at the
// first node boundary with LimitReached and no nodes expanded.
func TestWorkersCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		s := mustSolveOpts(t, hardKnapsack(t), Options{Workers: w, Context: ctx})
		if s.Status != LimitReached {
			t.Errorf("Workers=%d cancelled status = %v, want limit-reached", w, s.Status)
		}
		if s.Nodes != 0 {
			t.Errorf("Workers=%d cancelled search expanded %d nodes, want 0", w, s.Nodes)
		}
	}
}

// TestWorkersNodeLimit: MaxNodes stops a parallel search with LimitReached
// and a finite proven gap when an incumbent exists, without exceeding the
// budget by more than the number of in-flight workers.
func TestWorkersNodeLimit(t *testing.T) {
	for _, w := range []int{1, 4} {
		s := mustSolveOpts(t, hardKnapsack(t), Options{Workers: w, MaxNodes: 5})
		if s.Status != LimitReached {
			t.Errorf("Workers=%d status = %v, want limit-reached", w, s.Status)
		}
		// The budget check happens before each pop, so at most (w-1)
		// already-in-flight nodes can push the count past MaxNodes.
		if s.Nodes < 1 || s.Nodes > 5+w-1 {
			t.Errorf("Workers=%d nodes = %d, want within [1, %d]", w, s.Nodes, 5+w-1)
		}
		if s.Values != nil && math.IsNaN(s.Gap) {
			t.Errorf("Workers=%d incumbent with NaN gap", w)
		}
	}
}

// TestWorkersDefault: Workers ≤ 0 resolves to GOMAXPROCS and is reported
// on the solution.
func TestWorkersDefault(t *testing.T) {
	s := mustSolveOpts(t, hardKnapsack(t), Options{})
	if s.Workers < 1 {
		t.Errorf("default Solution.Workers = %d, want ≥ 1", s.Workers)
	}
	if s.Status != Optimal {
		t.Errorf("status = %v, want optimal", s.Status)
	}
}
