package solver

import "math"

// npMaxRowChecks caps the rows one node's propagation worklist may
// process. Propagation is monotone (integer bounds only ever tighten onto
// the grid), so it always terminates, but a pathological chain of long
// rows could still make a single node expensive; past the cap the pass
// simply stops tightening, which is always sound.
const npMaxRowChecks = 20000

// npState is a branch-and-bound worker's node-presolve scratch: working
// bound vectors kept in sync with the node under examination through an
// undo stack, plus a row worklist. Before each node's LP solve, run
// propagates the node's bound-change chain through the constraint activity
// bounds — the same integer-only tightening the global presolve's
// propagate pass applies, under the same tolerances — and emits every
// additional tightening as new boundChange links for the node, so the LP
// and the reduced-cost fixing machinery both see them. A node whose chain
// is propagation-infeasible is pruned without solving its LP at all.
//
// Cost per node is O(chain length + rows touched), not O(vars): the bound
// vectors persist across nodes and the undo stack rewinds exactly the
// entries the previous node wrote, which keeps the dive path's economics
// intact. A state must not be shared between concurrent workers.
type npState struct {
	m   *Model
	csc *cscMatrix

	lb, ub []float64 // working bounds; model bounds whenever undo is empty

	undoV   []int32
	undoUp  []bool
	undoOld []float64

	inQ   []bool
	queue []int32
}

func newNpState(m *Model) *npState {
	np := &npState{m: m, csc: m.cscMatrixOf()}
	nv := len(m.vars)
	np.lb = make([]float64, nv)
	np.ub = make([]float64, nv)
	for i := range m.vars {
		np.lb[i], np.ub[i] = m.vars[i].lb, m.vars[i].ub
	}
	np.inQ = make([]bool, len(m.cons))
	return np
}

// setBound records the old value on the undo stack and writes the new one.
func (np *npState) setBound(v int32, upper bool, val float64) {
	np.undoV = append(np.undoV, v)
	np.undoUp = append(np.undoUp, upper)
	if upper {
		np.undoOld = append(np.undoOld, np.ub[v])
		np.ub[v] = val
	} else {
		np.undoOld = append(np.undoOld, np.lb[v])
		np.lb[v] = val
	}
}

// rewind restores the working bounds to the model bounds by popping the
// undo stack in reverse.
func (np *npState) rewind() {
	for i := len(np.undoV) - 1; i >= 0; i-- {
		v := np.undoV[i]
		if np.undoUp[i] {
			np.ub[v] = np.undoOld[i]
		} else {
			np.lb[v] = np.undoOld[i]
		}
	}
	np.undoV = np.undoV[:0]
	np.undoUp = np.undoUp[:0]
	np.undoOld = np.undoOld[:0]
}

// enqueueVarRows adds every row containing v to the worklist.
func (np *npState) enqueueVarRows(v int32) {
	for k := np.csc.colPtr[v]; k < np.csc.colPtr[v+1]; k++ {
		r := np.csc.rowIdx[k]
		if !np.inQ[r] {
			np.inQ[r] = true
			np.queue = append(np.queue, r)
		}
	}
}

// run propagates chain through the constraint activity bounds. It returns
// the chain extended with one boundChange per propagated tightening (the
// original chain when nothing propagated), the number of tightenings, and
// whether the node's bounds are propagation-infeasible — in which case the
// caller prunes the node without an LP solve. The extended links are valid
// for the whole subtree: descendants only tighten further.
func (np *npState) run(chain *boundChange) (*boundChange, int, bool) {
	np.rewind()
	np.queue = np.queue[:0]
	for c := chain; c != nil; c = c.parent {
		v := int32(c.v)
		if c.upper {
			if c.val < np.ub[v] {
				np.setBound(v, true, c.val)
				np.enqueueVarRows(v)
			}
		} else if c.val > np.lb[v] {
			np.setBound(v, false, c.val)
			np.enqueueVarRows(v)
		}
	}
	nChain := len(np.undoV)
	infeasible := false
	checked := 0
	for qi := 0; qi < len(np.queue); qi++ {
		r := np.queue[qi]
		np.inQ[r] = false
		if infeasible || checked >= npMaxRowChecks {
			continue // drain the queue flags without further work
		}
		checked++
		if np.propagateRow(int(r)) == preInfeasible {
			infeasible = true
		}
	}
	if infeasible {
		return chain, len(np.undoV) - nChain, true
	}
	// Emit the propagated tightenings as chain links, newest first so a
	// variable tightened twice on one side contributes only its final
	// (tightest) value; earlier entries for the same side are skipped.
	extra := chain
	n := 0
	for i := len(np.undoV) - 1; i >= nChain; i-- {
		v, up := np.undoV[i], np.undoUp[i]
		dup := false
		for k := i + 1; k < len(np.undoV); k++ {
			if np.undoV[k] == v && np.undoUp[k] == up {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		val := np.lb[v]
		if up {
			val = np.ub[v]
		}
		extra = &boundChange{parent: extra, v: VarID(v), upper: up, val: val}
		n++
	}
	return extra, n, false
}

// propagateRow applies the activity-bound tightening of one row to the
// working bounds, mirroring the global presolve's reduceRow propagation:
// integer variables only, same preFeasTol/preIntTol tolerances, both
// directions for EQ rows. Newly tightened variables re-enqueue their rows.
func (np *npState) propagateRow(r int) preOutcome {
	c := &np.m.cons[r]
	minAct, maxAct, minInf, maxInf := rowActivity(c.terms, np.lb, np.ub)
	tol := preFeasTol * math.Max(1, math.Abs(c.rhs))
	switch c.rel {
	case LE:
		if minInf == 0 && minAct > c.rhs+tol {
			return preInfeasible
		}
	case GE:
		if maxInf == 0 && maxAct < c.rhs-tol {
			return preInfeasible
		}
	case EQ:
		if (minInf == 0 && minAct > c.rhs+tol) || (maxInf == 0 && maxAct < c.rhs-tol) {
			return preInfeasible
		}
	}
	out := preNone
	if c.rel != GE { // LE and EQ propagate the ≤ direction
		switch np.propagateDir(c.terms, c.rhs, 1, minAct, minInf) {
		case preInfeasible:
			return preInfeasible
		case preChanged:
			out = preChanged
		}
	}
	if c.rel != LE { // GE and EQ propagate the ≥ direction as −a·x ≤ −b
		switch np.propagateDir(c.terms, -c.rhs, -1, -maxAct, maxInf) {
		case preInfeasible:
			return preInfeasible
		case preChanged:
			out = preChanged
		}
	}
	return out
}

// propagateDir tightens integer-variable bounds from sign·(a·x) ≤ sign·rhs
// using the minimum activity of the remaining terms, writing through
// setBound so the changes are undoable and emitted to the node's chain.
func (np *npState) propagateDir(terms []Term, rhs, sign, minAct float64, minInf int) preOutcome {
	if minInf > 1 {
		return preNone
	}
	out := preNone
	for _, t := range terms {
		v := int32(t.Var)
		if !np.m.vars[v].integer {
			continue
		}
		coef := sign * t.Coef
		l, u := np.lb[v], np.ub[v]
		contrib, contribInf := 0.0, false
		if coef > 0 {
			if math.IsInf(l, -1) {
				contribInf = true
			} else {
				contrib = coef * l
			}
		} else {
			if math.IsInf(u, 1) {
				contribInf = true
			} else {
				contrib = coef * u
			}
		}
		var rest float64
		if contribInf {
			if minInf != 1 {
				continue
			}
			rest = minAct
		} else {
			if minInf != 0 {
				continue
			}
			rest = minAct - contrib
		}
		limit := (rhs - rest) / coef
		if coef > 0 {
			nb := math.Floor(limit + preIntTol)
			if math.IsInf(u, 1) || nb < u {
				if nb < l-preFeasTol {
					return preInfeasible
				}
				np.setBound(v, true, nb)
				np.enqueueVarRows(v)
				out = preChanged
			}
		} else {
			nb := math.Ceil(limit - preIntTol)
			if math.IsInf(l, -1) || nb > l {
				if nb > u+preFeasTol {
					return preInfeasible
				}
				np.setBound(v, false, nb)
				np.enqueueVarRows(v)
				out = preChanged
			}
		}
	}
	return out
}
