package solver

import (
	"context"
	"testing"
)

// transportLP builds a pure LP (no integer variables) dense enough that
// solving it takes real pivot work: an n×n transportation problem with
// varied arc costs, supply LE rows, and demand GE rows. Its relaxation
// is the whole problem, so a solve routes through solveRelaxation and
// any cancellation must be observed inside a single LP — there are no
// node boundaries to stop at.
func transportLP(t *testing.T, n int) *Model {
	t.Helper()
	m := NewModel("transport-lp", Minimize)
	vars := make([][]VarID, n)
	for i := range vars {
		vars[i] = make([]VarID, n)
		for j := range vars[i] {
			cost := float64((i*7+j*11)%13 + 1)
			vars[i][j] = m.AddVar("x", 0, 50, cost)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]Term, n)
		for j := 0; j < n; j++ {
			row[j] = Term{Var: vars[i][j], Coef: 1}
		}
		mustCon(t, m, "supply", row, LE, float64(20+i))
	}
	for j := 0; j < n; j++ {
		col := make([]Term, n)
		for i := 0; i < n; i++ {
			col[i] = Term{Var: vars[i][j], Coef: 1}
		}
		mustCon(t, m, "demand", col, GE, float64(10+j))
	}
	return m
}

// TestLPCancellationMidSolve: a canceled context aborts inside a single
// LP solve. The model is a pure LP, so the only place the context can be
// observed is the pivot loop itself; before the pivot-interval check was
// added, a canceled context was ignored entirely for pure-LP solves and
// this returned Optimal. Both engines must honor it.
func TestLPCancellationMidSolve(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, dense := range []bool{false, true} {
		m := transportLP(t, 12)
		// Sanity: without a context the LP solves to optimality and
		// needs pivots (i.e. the instance is not presolved away).
		ref := mustSolveOpts(t, transportLP(t, 12), Options{DenseSimplex: dense})
		if ref.Status != Optimal {
			t.Fatalf("dense=%v reference status = %v, want optimal", dense, ref.Status)
		}
		if ref.SimplexIters == 0 {
			t.Fatalf("dense=%v reference solve took 0 pivots; instance too easy to prove mid-LP cancellation", dense)
		}
		s := mustSolveOpts(t, m, Options{DenseSimplex: dense, Context: ctx})
		if s.Status != IterLimit {
			t.Errorf("dense=%v cancelled LP status = %v, want iteration-limit", dense, s.Status)
		}
		if s.Status == Optimal {
			t.Errorf("dense=%v cancelled LP claimed optimality", dense)
		}
		// The check fires on the first pivot interval: a pre-cancelled
		// context must not allow a full solve's worth of pivots.
		if s.SimplexIters >= ref.SimplexIters {
			t.Errorf("dense=%v cancelled LP performed %d pivots (uncancelled: %d)", dense, s.SimplexIters, ref.SimplexIters)
		}
	}
}

// TestMIPCancellationMidLP: with a pre-cancelled context a MIP solve
// still reports the established LimitReached status (not the engine's
// internal IterLimit), even though the abort now happens inside the root
// LP rather than at a node boundary.
func TestMIPCancellationMidLP(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, dense := range []bool{false, true} {
		s := mustSolveOpts(t, hardKnapsack(t), Options{DenseSimplex: dense, Context: ctx})
		if s.Status != LimitReached {
			t.Errorf("dense=%v cancelled MIP status = %v, want limit-reached", dense, s.Status)
		}
		if s.Nodes != 0 {
			t.Errorf("dense=%v cancelled MIP expanded %d nodes, want 0", dense, s.Nodes)
		}
	}
}
