package solver

import (
	"math"
	"math/rand"
	"testing"
)

// presolveOn and presolveOff are the paired configurations the ablation
// tests compare: identical search settings, presolve toggled.
var (
	presolveOn  = Options{Workers: 1}
	presolveOff = Options{Workers: 1, NoPresolve: true}
)

// TestPresolveSingletonFold: a one-term row folds into the variable's
// bound and disappears; the optimum and reported value are unchanged.
func TestPresolveSingletonFold(t *testing.T) {
	m := NewModel("singleton", Maximize)
	x := m.AddIntVar("x", 0, 10, 1)
	mustCon(t, m, "cap", []Term{{x, 1}}, LE, 4)
	sol := mustSolveOpts(t, m, presolveOn)
	if sol.Status != Optimal || sol.Objective != 4 {
		t.Fatalf("status=%v obj=%v, want optimal 4", sol.Status, sol.Objective)
	}
	if sol.Value(x) != 4 {
		t.Errorf("x = %v, want 4", sol.Value(x))
	}
	if sol.PresolveRows != 1 {
		t.Errorf("PresolveRows = %d, want 1 (singleton row folded)", sol.PresolveRows)
	}
}

// TestPresolveRedundantRow: a row satisfied by the bounds alone is
// removed; the feasible set and optimum are untouched.
func TestPresolveRedundantRow(t *testing.T) {
	m := NewModel("redundant", Maximize)
	x := m.AddIntVar("x", 0, 3, 2)
	y := m.AddIntVar("y", 0, 3, 1)
	mustCon(t, m, "slack", []Term{{x, 1}, {y, 1}}, LE, 100)
	mustCon(t, m, "tight", []Term{{x, 1}, {y, 2}}, LE, 7)
	sol := mustSolveOpts(t, m, presolveOn)
	ref := mustSolveOpts(t, m, presolveOff)
	if sol.Status != Optimal || sol.Objective != ref.Objective {
		t.Fatalf("presolve obj=%v status=%v, no-presolve obj=%v", sol.Objective, sol.Status, ref.Objective)
	}
	if sol.PresolveRows < 1 {
		t.Errorf("PresolveRows = %d, want ≥ 1 (redundant row dropped)", sol.PresolveRows)
	}
	if ref.PresolveRows != 0 || ref.PresolveCols != 0 {
		t.Errorf("NoPresolve counters = %d/%d, want 0/0", ref.PresolveRows, ref.PresolveCols)
	}
}

// TestPresolveDominatedRow: with continuous variables (so bound
// propagation cannot shrink the box first), x+2y ≤ 9 is dominated by
// x+y ≤ 3 over [0,5]² — satisfied by every point the tighter row admits
// — and is removed even though its own max activity (15) exceeds 9.
func TestPresolveDominatedRow(t *testing.T) {
	m := NewModel("dominated", Maximize)
	x := m.AddVar("x", 0, 5, 2)
	y := m.AddVar("y", 0, 5, 1)
	mustCon(t, m, "tight", []Term{{x, 1}, {y, 1}}, LE, 3)
	mustCon(t, m, "loose", []Term{{x, 1}, {y, 2}}, LE, 9)
	sol := mustSolveOpts(t, m, presolveOn)
	ref := mustSolveOpts(t, m, presolveOff)
	if sol.Status != Optimal || sol.Objective != ref.Objective {
		t.Fatalf("presolve obj=%v status=%v, no-presolve obj=%v", sol.Objective, sol.Status, ref.Objective)
	}
	if sol.PresolveRows != 1 {
		t.Errorf("PresolveRows = %d, want 1 (dominated row dropped)", sol.PresolveRows)
	}
}

// TestPresolveIntegerBoundRounding: fractional bounds on integer
// variables snap to the integer grid in presolve, and the optimum
// matches the branch-and-bound answer without presolve.
func TestPresolveIntegerBoundRounding(t *testing.T) {
	m := NewModel("rounding", Maximize)
	m.AddIntVar("x", 0.4, 2.6, 1)
	sol := mustSolveOpts(t, m, presolveOn)
	ref := mustSolveOpts(t, m, presolveOff)
	if sol.Status != Optimal || sol.Objective != 2 {
		t.Fatalf("status=%v obj=%v, want optimal 2", sol.Status, sol.Objective)
	}
	if ref.Objective != sol.Objective || ref.Status != sol.Status {
		t.Errorf("no-presolve disagrees: obj=%v status=%v", ref.Objective, ref.Status)
	}
}

// TestPresolveDualFix: a minimized variable with positive cost and no
// constraint pushing it up sits at its lower bound; presolve fixes and
// removes it before any simplex runs.
func TestPresolveDualFix(t *testing.T) {
	m := NewModel("dualfix", Minimize)
	x := m.AddVar("x", 1, 5, 3)
	y := m.AddIntVar("y", 0, 4, 1)
	mustCon(t, m, "need", []Term{{y, 1}}, GE, 2)
	sol := mustSolveOpts(t, m, presolveOn)
	if sol.Status != Optimal || sol.Objective != 5 { // 3·1 + 1·2
		t.Fatalf("status=%v obj=%v, want optimal 5", sol.Status, sol.Objective)
	}
	if sol.Value(x) != 1 {
		t.Errorf("x = %v, want fixed at lower bound 1", sol.Value(x))
	}
	if sol.PresolveCols < 1 {
		t.Errorf("PresolveCols = %d, want ≥ 1 (dual fix)", sol.PresolveCols)
	}
}

// TestPresolveFixedSubstitution: a variable with collapsed bounds is
// substituted out of every row, and postsolve reports its forced value
// at the original index.
func TestPresolveFixedSubstitution(t *testing.T) {
	m := NewModel("fixed", Maximize)
	x := m.AddVar("x", 2, 2, 1)
	y := m.AddIntVar("y", 0, 10, 1)
	mustCon(t, m, "cap", []Term{{x, 1}, {y, 1}}, LE, 5)
	sol := mustSolveOpts(t, m, presolveOn)
	if sol.Status != Optimal || sol.Objective != 5 { // x=2, y=3
		t.Fatalf("status=%v obj=%v, want optimal 5", sol.Status, sol.Objective)
	}
	if sol.Value(x) != 2 || sol.Value(y) != 3 {
		t.Errorf("values x=%v y=%v, want 2 and 3", sol.Value(x), sol.Value(y))
	}
	if sol.PresolveCols < 1 {
		t.Errorf("PresolveCols = %d, want ≥ 1 (fixed variable removed)", sol.PresolveCols)
	}
}

// TestPresolveDuplicateColumnMerge: two columns identical in every row,
// the objective, and integrality merge into one variable over summed
// bounds; postsolve splits the merged value back lexicographically
// minimally against the original bounds.
func TestPresolveDuplicateColumnMerge(t *testing.T) {
	m := NewModel("dupcol", Maximize)
	x := m.AddIntVar("x", 0, 3, 1)
	y := m.AddIntVar("y", 0, 3, 1)
	mustCon(t, m, "cap", []Term{{x, 1}, {y, 1}}, LE, 4)
	sol := mustSolveOpts(t, m, presolveOn)
	if sol.Status != Optimal || sol.Objective != 4 {
		t.Fatalf("status=%v obj=%v, want optimal 4", sol.Status, sol.Objective)
	}
	// Lex-min split of the merged value 4: x takes max(0, 4−3) = 1, y
	// takes the rest.
	if sol.Value(x) != 1 || sol.Value(y) != 3 {
		t.Errorf("split x=%v y=%v, want lex-min 1 and 3", sol.Value(x), sol.Value(y))
	}
	if sol.PresolveCols < 1 {
		t.Errorf("PresolveCols = %d, want ≥ 1 (duplicate column merged)", sol.PresolveCols)
	}
}

// TestPresolveDetectsInfeasible: contradictory bound implications are
// caught in presolve — Infeasible with zero nodes and zero pivots, no
// search ever launched.
func TestPresolveDetectsInfeasible(t *testing.T) {
	m := NewModel("infeasible", Maximize)
	x := m.AddIntVar("x", 0, 5, 1)
	mustCon(t, m, "need", []Term{{x, 1}}, GE, 7)
	sol := mustSolveOpts(t, m, presolveOn)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
	if sol.Nodes != 0 || sol.SimplexIters != 0 {
		t.Errorf("nodes=%d pivots=%d, want 0/0 (detected before any solve)", sol.Nodes, sol.SimplexIters)
	}
	ref := mustSolveOpts(t, m, presolveOff)
	if ref.Status != Infeasible {
		t.Errorf("no-presolve status = %v, want infeasible", ref.Status)
	}
}

// TestPresolveUnboundedPreserved: dual fixing must not fix a variable at
// an infinite bound — an unbounded model stays visibly unbounded.
func TestPresolveUnboundedPreserved(t *testing.T) {
	m := NewModel("unbounded", Maximize)
	x := m.AddVar("x", 0, math.Inf(1), 1)
	y := m.AddVar("y", 0, 4, 1)
	mustCon(t, m, "cap", []Term{{y, 1}}, LE, 3)
	sol := mustSolveOpts(t, m, presolveOn)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded (x has no upper bound)", sol.Status)
	}
	_ = x
}

// checkFeasible verifies a solution's values against the ORIGINAL model:
// within bounds, integral where required, and satisfying every
// constraint. This is the postsolve rehydration contract.
func checkFeasible(t *testing.T, m *Model, sol Solution, label string) {
	t.Helper()
	if len(sol.Values) != len(m.vars) {
		t.Fatalf("%s: %d values for %d original variables", label, len(sol.Values), len(m.vars))
	}
	const tol = 1e-6
	for i, v := range m.vars {
		x := sol.Values[i]
		if x < v.lb-tol || x > v.ub+tol {
			t.Errorf("%s: %s = %v outside [%v, %v]", label, v.name, x, v.lb, v.ub)
		}
		if v.integer && math.Abs(x-math.Round(x)) > tol {
			t.Errorf("%s: %s = %v not integral", label, v.name, x)
		}
	}
	for _, c := range m.cons {
		act := 0.0
		for _, term := range c.terms {
			act += term.Coef * sol.Values[term.Var]
		}
		rtol := tol * math.Max(1, math.Abs(c.rhs))
		switch c.rel {
		case LE:
			if act > c.rhs+rtol {
				t.Errorf("%s: row %s activity %v > rhs %v", label, c.name, act, c.rhs)
			}
		case GE:
			if act < c.rhs-rtol {
				t.Errorf("%s: row %s activity %v < rhs %v", label, c.name, act, c.rhs)
			}
		case EQ:
			if math.Abs(act-c.rhs) > rtol {
				t.Errorf("%s: row %s activity %v ≠ rhs %v", label, c.name, act, c.rhs)
			}
		}
	}
}

// TestPresolveMatchesNoPresolveProperty is the presolve correctness
// property: on randomized pure-integer programs, presolve on and off
// agree exactly on status and objective (integer data makes the optimum
// exactly representable), and the rehydrated values are feasible for the
// original constraints. Run under -race in CI.
func TestPresolveMatchesNoPresolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 40; trial++ {
		m := randomMILP(rng, false)
		on := mustSolveOpts(t, m, presolveOn)
		off := mustSolveOpts(t, m, presolveOff)
		if on.Status != off.Status {
			t.Fatalf("trial %d: presolve status %v, no-presolve %v", trial, on.Status, off.Status)
		}
		if on.Status != Optimal {
			continue
		}
		if on.Objective != off.Objective {
			t.Fatalf("trial %d: presolve objective %v != no-presolve %v (diff %g)",
				trial, on.Objective, off.Objective, on.Objective-off.Objective)
		}
		checkFeasible(t, m, on, "presolve on")
		checkFeasible(t, m, off, "presolve off")
	}
}

// TestPresolveMatchesNoPresolveMixedProperty is the same sweep on models
// with continuous variables, compared within a 1e-9 relative tolerance
// (alternate optimal vertices differ in ulps on the continuous part).
func TestPresolveMatchesNoPresolveMixedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		m := randomMILP(rng, true)
		on := mustSolveOpts(t, m, presolveOn)
		off := mustSolveOpts(t, m, presolveOff)
		if on.Status != off.Status {
			t.Fatalf("trial %d: presolve status %v, no-presolve %v", trial, on.Status, off.Status)
		}
		if on.Status != Optimal {
			continue
		}
		diff := math.Abs(on.Objective - off.Objective)
		if diff > 1e-9*math.Max(1, math.Abs(off.Objective)) {
			t.Fatalf("trial %d: presolve objective %v != no-presolve %v (diff %g)",
				trial, on.Objective, off.Objective, diff)
		}
		checkFeasible(t, m, on, "presolve on")
	}
}

// TestUnknownBranchingRuleError: an unrecognized Options.Branching is an
// explicit error from SolveWithOptions, not a silent coercion.
func TestUnknownBranchingRuleError(t *testing.T) {
	m := NewModel("badrule", Maximize)
	m.AddIntVar("x", 0, 1, 1)
	_, err := m.SolveWithOptions(Options{Branching: BranchRule("strong")})
	if err == nil {
		t.Fatal("unknown branching rule accepted")
	}
	for _, rule := range []BranchRule{BranchPseudocost, BranchMostFractional, ""} {
		if _, err := m.SolveWithOptions(Options{Branching: rule}); err != nil {
			t.Errorf("valid rule %q rejected: %v", rule, err)
		}
	}
}
