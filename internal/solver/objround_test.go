package solver

import (
	"math"
	"testing"
)

// TestObjRounderGCDLift: with all-integer coefficients on integer
// variables, bounds round to the coefficient gcd — up for minimization,
// down for maximization.
func TestObjRounderGCDLift(t *testing.T) {
	min := NewModel("gcd-min", Minimize)
	min.AddIntVar("x", 0, 10, 6)
	min.AddIntVar("y", 0, 10, 10)
	rmin := newObjRounder(min)
	if rmin.g != 2 {
		t.Fatalf("gcd = %v, want 2", rmin.g)
	}
	if got := rmin.lift(7.3); got != 8 {
		t.Errorf("min lift(7.3) = %v, want 8", got)
	}
	// A bound an ulp below a multiple rounds to it, not past it (the
	// 1e-9 slack), and one already past it is never weakened back.
	if got := rmin.lift(math.Nextafter(8, 7)); got != 8 {
		t.Errorf("min lift(8-ulp) = %v, want 8", got)
	}
	past := math.Nextafter(8, 9)
	if got := rmin.lift(past); got != past {
		t.Errorf("min lift(8+ulp) = %v, want unchanged %v", got, past)
	}

	max := NewModel("gcd-max", Maximize)
	max.AddIntVar("x", 0, 10, 6)
	max.AddIntVar("y", 0, 10, 10)
	rmax := newObjRounder(max)
	if got := rmax.lift(7.3); got != 6 {
		t.Errorf("max lift(7.3) = %v, want 6", got)
	}
}

// TestObjRounderCardinalityLift: near-uniform positive costs on integer
// variables bracket the objective by the activity count, lifting bounds
// the gcd cannot touch. This is the lift that prunes the planning MIP's
// tied frontier (costs 1+ε·spacing, bound 1.79 → 2·cmin).
func TestObjRounderCardinalityLift(t *testing.T) {
	m := NewModel("card-min", Minimize)
	m.AddIntVar("x", 0, 5, 1.075)
	m.AddIntVar("y", 0, 5, 1.1)
	r := newObjRounder(m)
	if r.g != 0 {
		t.Fatalf("fractional coefficients should disable the gcd lift, got g=%v", r.g)
	}
	if !r.card || r.cmin != 1.075 || r.cmax != 1.1 {
		t.Fatalf("cardinality lift not detected: %+v", r)
	}
	// z=1.79 needs T ≥ ceil(1.79/1.1) = 2 units, costing ≥ 2·1.075.
	if got, want := r.lift(1.79), 2*1.075; got != want {
		t.Errorf("lift(1.79) = %v, want %v", got, want)
	}
	// An attainable bound stays put.
	if got := r.lift(2 * 1.075); got != 2*1.075 {
		t.Errorf("lift(2.15) = %v, want unchanged", got)
	}

	max := NewModel("card-max", Maximize)
	max.AddIntVar("x", 0, 5, 1.075)
	max.AddIntVar("y", 0, 5, 1.1)
	rx := newObjRounder(max)
	// z=2.3 allows T ≤ floor(2.3/1.075) = 2 units, worth ≤ 2·1.1.
	if got, want := rx.lift(2.3), 2*1.1; got != want {
		t.Errorf("max lift(2.3) = %v, want %v", got, want)
	}
}

// TestObjRounderInapplicable: a continuous variable with objective mass
// disables every lift; negative coefficients disable the cardinality
// lift but not the gcd lift.
func TestObjRounderInapplicable(t *testing.T) {
	cont := NewModel("cont", Minimize)
	cont.AddIntVar("x", 0, 10, 3)
	cont.AddVar("y", 0, 10, 2)
	r := newObjRounder(cont)
	if r.g != 0 || r.card {
		t.Fatalf("continuous objective variable should disable lifts: %+v", r)
	}
	if got := r.lift(7.3); got != 7.3 {
		t.Errorf("inapplicable lift changed the bound: %v", got)
	}

	neg := NewModel("neg", Minimize)
	neg.AddIntVar("x", 0, 10, 6)
	neg.AddIntVar("y", 0, 10, -10)
	rn := newObjRounder(neg)
	if rn.card {
		t.Error("negative coefficient should disable the cardinality lift")
	}
	if rn.g != 2 {
		t.Errorf("gcd lift should survive negative coefficients, got g=%v", rn.g)
	}
	if got := rn.lift(-7.5); got != -6 {
		t.Errorf("min lift(-7.5) = %v, want -6", got)
	}

	// Zero-coefficient variables are ignored entirely — a continuous var
	// with no objective mass must not disable the lifts.
	free := NewModel("free", Minimize)
	free.AddIntVar("x", 0, 10, 4)
	free.AddVar("slack", 0, 100, 0)
	rf := newObjRounder(free)
	if rf.g != 4 || !rf.card {
		t.Errorf("zero-coefficient continuous var disabled lifts: %+v", rf)
	}
}

// TestObjRounderInfNaN: infinite and NaN bounds pass through untouched.
func TestObjRounderInfNaN(t *testing.T) {
	m := NewModel("inf", Minimize)
	m.AddIntVar("x", 0, 10, 3)
	r := newObjRounder(m)
	for _, z := range []float64{math.Inf(1), math.Inf(-1)} {
		if got := r.lift(z); got != z {
			t.Errorf("lift(%v) = %v, want unchanged", z, got)
		}
	}
	if got := r.lift(math.NaN()); !math.IsNaN(got) {
		t.Errorf("lift(NaN) = %v, want NaN", got)
	}
}
