package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-5 }

func TestLPBasicMaximize(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0.
	// Classic: optimum 36 at (2, 6).
	m := NewModel("lp1", Maximize)
	x := m.AddVar("x", 0, math.Inf(1), 3)
	y := m.AddVar("y", 0, math.Inf(1), 5)
	mustCon(t, m, "c1", []Term{{x, 1}}, LE, 4)
	mustCon(t, m, "c2", []Term{{y, 2}}, LE, 12)
	mustCon(t, m, "c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 36) || !approx(s.Value(x), 2) || !approx(s.Value(y), 6) {
		t.Errorf("got obj %v at (%v, %v), want 36 at (2, 6)", s.Objective, s.Value(x), s.Value(y))
	}
}

func TestLPBasicMinimize(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≥ 2, y ≥ 3. Optimum 23 at (7, 3)?
	// 2·7+3·3 = 23; check (2,8): 4+24=28. So (7,3) with cost 23.
	m := NewModel("lp2", Minimize)
	x := m.AddVar("x", 2, math.Inf(1), 2)
	y := m.AddVar("y", 3, math.Inf(1), 3)
	mustCon(t, m, "cover", []Term{{x, 1}, {y, 1}}, GE, 10)
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 23) {
		t.Errorf("objective = %v, want 23", s.Objective)
	}
}

func TestLPEquality(t *testing.T) {
	// min x + y s.t. x + 2y = 8, x − y = 2  ⇒ y = 2, x = 4, obj 6.
	m := NewModel("lpeq", Minimize)
	x := m.AddVar("x", 0, math.Inf(1), 1)
	y := m.AddVar("y", 0, math.Inf(1), 1)
	mustCon(t, m, "e1", []Term{{x, 1}, {y, 2}}, EQ, 8)
	mustCon(t, m, "e2", []Term{{x, 1}, {y, -1}}, EQ, 2)
	s := m.Solve()
	if s.Status != Optimal || !approx(s.Value(x), 4) || !approx(s.Value(y), 2) {
		t.Errorf("got %v at (%v, %v), want 6 at (4, 2); status %v", s.Objective, s.Value(x), s.Value(y), s.Status)
	}
}

func TestLPInfeasible(t *testing.T) {
	m := NewModel("inf", Minimize)
	x := m.AddVar("x", 0, 10, 1)
	mustCon(t, m, "lo", []Term{{x, 1}}, GE, 5)
	mustCon(t, m, "hi", []Term{{x, 1}}, LE, 3)
	if s := m.Solve(); s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
	// Contradictory bounds detected even without constraints.
	m2 := NewModel("inf2", Minimize)
	m2.AddVar("x", 5, 3, 1)
	if s := m2.Solve(); s.Status != Infeasible {
		t.Errorf("bound contradiction status = %v", s.Status)
	}
}

func TestLPUnbounded(t *testing.T) {
	m := NewModel("unb", Maximize)
	x := m.AddVar("x", 0, math.Inf(1), 1)
	y := m.AddVar("y", 0, math.Inf(1), 0)
	mustCon(t, m, "c", []Term{{x, 1}, {y, -1}}, LE, 1)
	if s := m.Solve(); s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestLPNegativeRHS(t *testing.T) {
	// min x s.t. −x ≤ −5 (i.e. x ≥ 5).
	m := NewModel("neg", Minimize)
	x := m.AddVar("x", 0, math.Inf(1), 1)
	mustCon(t, m, "c", []Term{{x, -1}}, LE, -5)
	s := m.Solve()
	if s.Status != Optimal || !approx(s.Value(x), 5) {
		t.Errorf("got %v at %v, want 5", s.Status, s.Value(x))
	}
}

func TestLPFreeVariable(t *testing.T) {
	// min |style| free var: min y s.t. y ≥ x − 3, y ≥ 3 − x, x free.
	// Optimum y = 0 at x = 3.
	m := NewModel("free", Minimize)
	x := m.AddVar("x", math.Inf(-1), math.Inf(1), 0)
	y := m.AddVar("y", 0, math.Inf(1), 1)
	mustCon(t, m, "c1", []Term{{y, 1}, {x, -1}}, GE, -3)
	mustCon(t, m, "c2", []Term{{y, 1}, {x, 1}}, GE, 3)
	s := m.Solve()
	if s.Status != Optimal || !approx(s.Objective, 0) || !approx(s.Value(x), 3) {
		t.Errorf("got %v obj %v x %v, want 0 at x=3", s.Status, s.Objective, s.Value(x))
	}
}

func TestLPShiftedBounds(t *testing.T) {
	// Variables with nonzero lower bounds must be shifted correctly.
	// min x + y, x ∈ [−2, 10], y ∈ [4, 10], x + y ≥ 5 ⇒ x = 1? No:
	// x can go to −2, then y ≥ 7 ⇒ obj 5. Or y = 4, x = 1 ⇒ 5. Obj 5.
	m := NewModel("shift", Minimize)
	x := m.AddVar("x", -2, 10, 1)
	y := m.AddVar("y", 4, 10, 1)
	mustCon(t, m, "c", []Term{{x, 1}, {y, 1}}, GE, 5)
	s := m.Solve()
	if s.Status != Optimal || !approx(s.Objective, 5) {
		t.Errorf("got %v obj %v, want 5", s.Status, s.Objective)
	}
	if s.Value(x) < -2-1e-6 || s.Value(y) < 4-1e-6 {
		t.Errorf("bounds violated: x=%v y=%v", s.Value(x), s.Value(y))
	}
}

func TestDuplicateTermsAccumulate(t *testing.T) {
	// x + x ≤ 10 must behave as 2x ≤ 10.
	m := NewModel("dup", Maximize)
	x := m.AddVar("x", 0, math.Inf(1), 1)
	mustCon(t, m, "c", []Term{{x, 1}, {x, 1}}, LE, 10)
	s := m.Solve()
	if !approx(s.Value(x), 5) {
		t.Errorf("x = %v, want 5", s.Value(x))
	}
}

func TestConstraintValidation(t *testing.T) {
	m := NewModel("bad", Minimize)
	if err := m.AddConstraint("c", []Term{{VarID(3), 1}}, LE, 1); err == nil {
		t.Error("constraint over unknown variable accepted")
	}
}

func TestMIPKnapsack(t *testing.T) {
	// Classic 0/1 knapsack: values 60,100,120; weights 10,20,30; cap 50.
	// Optimum 220 (items 2 and 3).
	m := NewModel("knap", Maximize)
	x1 := m.AddBinVar("x1", 60)
	x2 := m.AddBinVar("x2", 100)
	x3 := m.AddBinVar("x3", 120)
	mustCon(t, m, "w", []Term{{x1, 10}, {x2, 20}, {x3, 30}}, LE, 50)
	s := m.Solve()
	if s.Status != Optimal || !approx(s.Objective, 220) {
		t.Fatalf("got %v obj %v, want 220", s.Status, s.Objective)
	}
	if s.IntValue(x1) != 0 || s.IntValue(x2) != 1 || s.IntValue(x3) != 1 {
		t.Errorf("selection = (%d,%d,%d), want (0,1,1)", s.IntValue(x1), s.IntValue(x2), s.IntValue(x3))
	}
}

func TestMIPIntegerRounding(t *testing.T) {
	// max x + y s.t. 2x + 2y ≤ 7, integers ⇒ LP gives 3.5, MIP 3.
	m := NewModel("round", Maximize)
	x := m.AddIntVar("x", 0, 10, 1)
	y := m.AddIntVar("y", 0, 10, 1)
	mustCon(t, m, "c", []Term{{x, 2}, {y, 2}}, LE, 7)
	lp := m.SolveLP()
	if !approx(lp.Objective, 3.5) {
		t.Errorf("LP relaxation = %v, want 3.5", lp.Objective)
	}
	s := m.Solve()
	if s.Status != Optimal || !approx(s.Objective, 3) {
		t.Errorf("MIP = %v obj %v, want 3", s.Status, s.Objective)
	}
}

func TestMIPInfeasible(t *testing.T) {
	// 2x = 3 with x integer has no solution.
	m := NewModel("mipinf", Minimize)
	x := m.AddIntVar("x", 0, 10, 1)
	mustCon(t, m, "c", []Term{{x, 2}}, EQ, 3)
	if s := m.Solve(); s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestMIPCoveringProblem(t *testing.T) {
	// min 5a + 4b + 3c s.t. a+b ≥ 1, b+c ≥ 1, a+c ≥ 1, binary.
	// Optimal: b + c = 7 (covers all three).
	m := NewModel("cover", Minimize)
	a := m.AddBinVar("a", 5)
	b := m.AddBinVar("b", 4)
	c := m.AddBinVar("c", 3)
	mustCon(t, m, "ab", []Term{{a, 1}, {b, 1}}, GE, 1)
	mustCon(t, m, "bc", []Term{{b, 1}, {c, 1}}, GE, 1)
	mustCon(t, m, "ac", []Term{{a, 1}, {c, 1}}, GE, 1)
	s := m.Solve()
	if s.Status != Optimal || !approx(s.Objective, 7) {
		t.Errorf("got %v obj %v, want 7", s.Status, s.Objective)
	}
}

func TestMIPGeneralInteger(t *testing.T) {
	// min 3x + 4y s.t. 2x + y ≥ 10, x + 3y ≥ 15, x,y ≥ 0 integer.
	// LP optimum at intersection (3, 4): obj 25 — integral already.
	m := NewModel("gi", Minimize)
	x := m.AddIntVar("x", 0, 100, 3)
	y := m.AddIntVar("y", 0, 100, 4)
	mustCon(t, m, "c1", []Term{{x, 2}, {y, 1}}, GE, 10)
	mustCon(t, m, "c2", []Term{{x, 1}, {y, 3}}, GE, 15)
	s := m.Solve()
	if s.Status != Optimal || !approx(s.Objective, 25) {
		t.Errorf("got %v obj %v, want 25", s.Status, s.Objective)
	}
}

func TestMIPNodeLimit(t *testing.T) {
	// A model needing branching with MaxNodes=1 must report LimitReached.
	m := NewModel("lim", Maximize)
	var terms []Term
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 12; i++ {
		v := m.AddBinVar("x", float64(1+rng.Intn(20)))
		terms = append(terms, Term{v, float64(1 + rng.Intn(10))})
	}
	mustCon(t, m, "w", terms, LE, 17)
	s := mustSolveOpts(t, m, Options{MaxNodes: 1})
	if s.Status != LimitReached {
		t.Errorf("status = %v, want limit-reached", s.Status)
	}
}

func TestMIPEqualityWithIntegers(t *testing.T) {
	// Exact-cover style equality: x + y + z = 2, min x + 2y + 3z over
	// binaries ⇒ x = y = 1, obj 3.
	m := NewModel("eq", Minimize)
	x := m.AddBinVar("x", 1)
	y := m.AddBinVar("y", 2)
	z := m.AddBinVar("z", 3)
	mustCon(t, m, "sum", []Term{{x, 1}, {y, 1}, {z, 1}}, EQ, 2)
	s := m.Solve()
	if s.Status != Optimal || !approx(s.Objective, 3) {
		t.Errorf("got %v obj %v, want 3", s.Status, s.Objective)
	}
}

// bruteForceKnapsack enumerates all subsets.
func bruteForceKnapsack(values, weights []int, cap int) int {
	n := len(values)
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		v, w := 0, 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= cap && v > best {
			best = v
		}
	}
	return best
}

// Property: branch-and-bound matches brute force on random knapsacks.
func TestMIPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		values := make([]int, n)
		weights := make([]int, n)
		m := NewModel("bf", Maximize)
		var terms []Term
		for i := 0; i < n; i++ {
			values[i] = 1 + rng.Intn(50)
			weights[i] = 1 + rng.Intn(20)
			v := m.AddBinVar("x", float64(values[i]))
			terms = append(terms, Term{v, float64(weights[i])})
		}
		cap := 5 + rng.Intn(60)
		if err := m.AddConstraint("w", terms, LE, float64(cap)); err != nil {
			return false
		}
		s := m.Solve()
		if s.Status != Optimal {
			return false
		}
		want := bruteForceKnapsack(values, weights, cap)
		return approx(s.Objective, float64(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: LP relaxation always bounds the MIP optimum from the
// optimistic side.
func TestRelaxationBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		m := NewModel("rb", Maximize)
		var terms []Term
		for i := 0; i < n; i++ {
			v := m.AddBinVar("x", float64(1+rng.Intn(30)))
			terms = append(terms, Term{v, float64(1 + rng.Intn(15))})
		}
		if err := m.AddConstraint("w", terms, LE, float64(10+rng.Intn(40))); err != nil {
			return false
		}
		lp := m.SolveLP()
		ip := m.Solve()
		if lp.Status != Optimal || ip.Status != Optimal {
			return false
		}
		return lp.Objective >= ip.Objective-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolutionAccessors(t *testing.T) {
	s := Solution{Values: []float64{1.4, 2.6}}
	if s.IntValue(0) != 1 || s.IntValue(1) != 3 {
		t.Errorf("IntValue rounding wrong: %d, %d", s.IntValue(0), s.IntValue(1))
	}
	if !math.IsNaN(s.Value(VarID(5))) {
		t.Error("out-of-range Value should be NaN")
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", LimitReached: "limit-reached",
		GapLimit: "gap-limit", IterLimit: "iteration-limit",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %s", s, s.String())
		}
	}
	if Minimize.String() != "minimize" || Maximize.String() != "maximize" {
		t.Error("Sense strings wrong")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Rel strings wrong")
	}
}

// TestMIPRelGapStop forces the RelGap early exit: max 1.3x + 0.7y subject
// to 2x + 2y ≤ 3 over binaries has LP bound 1.95 but integer optimum 1.3,
// a proven 50% gap at the first incumbent. (Non-integral, non-uniform
// coefficients keep the objective bound rounding from lifting the LP
// bounds and closing the gap early.) A loose RelGap must stop there and
// report GapLimit — not claim the incumbent Optimal — while the default
// tight gap must prove optimality with Gap 0.
func TestMIPRelGapStop(t *testing.T) {
	build := func() *Model {
		m := NewModel("relgap", Maximize)
		x := m.AddBinVar("x", 1.3)
		y := m.AddBinVar("y", 0.7)
		mustCon(t, m, "pack", []Term{{x, 2}, {y, 2}}, LE, 3)
		return m
	}

	// Workers: 1 — a loose-RelGap stop is an early exit whose trigger
	// point depends on worker timing; pin one worker so the GapLimit
	// status is deterministic.
	s := mustSolveOpts(t, build(), Options{RelGap: 0.6, Workers: 1})
	if s.Status != GapLimit {
		t.Fatalf("RelGap-stopped search status = %v, want gap-limit", s.Status)
	}
	if !approx(s.Objective, 1.3) {
		t.Errorf("incumbent objective = %v, want 1.3", s.Objective)
	}
	if s.Gap <= intTol || s.Gap > 0.6 {
		t.Errorf("proven gap = %v, want within (%v, 0.6]", s.Gap, intTol)
	}

	// Default options run the search to an optimality proof.
	s = mustSolveOpts(t, build(), Options{})
	if s.Status != Optimal {
		t.Fatalf("full search status = %v, want optimal", s.Status)
	}
	if !approx(s.Objective, 1.3) {
		t.Errorf("optimal objective = %v, want 1.3", s.Objective)
	}
	if s.Gap > intTol {
		t.Errorf("proven-optimal Gap = %v, want 0", s.Gap)
	}
}

func mustCon(t *testing.T, m *Model, name string, terms []Term, rel Rel, rhs float64) {
	t.Helper()
	if err := m.AddConstraint(name, terms, rel, rhs); err != nil {
		t.Fatal(err)
	}
}

// mustSolveOpts solves with options, failing the test on an options error.
func mustSolveOpts(t *testing.T, m *Model, opts Options) Solution {
	t.Helper()
	sol, err := m.SolveWithOptions(opts)
	if err != nil {
		t.Fatalf("SolveWithOptions: %v", err)
	}
	return sol
}

// TestLPDegenerateCycling: a classic degenerate LP (Beale's example) that
// cycles under naive Dantzig pivoting; the Bland fallback must terminate
// with the optimum.
func TestLPDegenerateCycling(t *testing.T) {
	// min −0.75x4 + 150x5 − 0.02x6 + 6x7
	// s.t. 0.25x4 − 60x5 − 0.04x6 + 9x7 ≤ 0
	//      0.5x4 − 90x5 − 0.02x6 + 3x7 ≤ 0
	//      x6 ≤ 1
	// Optimum −0.05 at x6 = 1, x4 = ... (objective value −1/20).
	m := NewModel("beale", Minimize)
	x4 := m.AddVar("x4", 0, math.Inf(1), -0.75)
	x5 := m.AddVar("x5", 0, math.Inf(1), 150)
	x6 := m.AddVar("x6", 0, math.Inf(1), -0.02)
	x7 := m.AddVar("x7", 0, math.Inf(1), 6)
	mustCon(t, m, "c1", []Term{{x4, 0.25}, {x5, -60}, {x6, -0.04}, {x7, 9}}, LE, 0)
	mustCon(t, m, "c2", []Term{{x4, 0.5}, {x5, -90}, {x6, -0.02}, {x7, 3}}, LE, 0)
	mustCon(t, m, "c3", []Term{{x6, 1}}, LE, 1)
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, -0.05) {
		t.Errorf("objective = %v, want -0.05", s.Objective)
	}
}

// TestLPDenseRandomAgainstBounds: random dense LPs must return objective
// values consistent with feasibility (spot-check with a verifier).
func TestLPDenseRandomAgainstBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		nVars := 5 + rng.Intn(10)
		nCons := 3 + rng.Intn(8)
		m := NewModel("rand", Maximize)
		obj := make([]float64, nVars)
		vars := make([]VarID, nVars)
		for i := range vars {
			obj[i] = rng.Float64() * 10
			vars[i] = m.AddVar("x", 0, 5+rng.Float64()*10, obj[i])
		}
		rows := make([][]float64, nCons)
		rhs := make([]float64, nCons)
		for r := 0; r < nCons; r++ {
			terms := make([]Term, 0, nVars)
			rows[r] = make([]float64, nVars)
			for i := range vars {
				c := rng.Float64() * 4
				rows[r][i] = c
				terms = append(terms, Term{vars[i], c})
			}
			rhs[r] = 10 + rng.Float64()*40
			mustCon(t, m, "c", terms, LE, rhs[r])
		}
		s := m.Solve()
		if s.Status != Optimal {
			t.Fatalf("trial %d status %v", trial, s.Status)
		}
		// Verify primal feasibility and objective consistency.
		got := 0.0
		for i, v := range vars {
			x := s.Value(v)
			if x < -1e-6 {
				t.Fatalf("trial %d: negative x", trial)
			}
			got += obj[i] * x
		}
		if !approx(got, s.Objective) {
			t.Fatalf("trial %d: objective mismatch %v vs %v", trial, got, s.Objective)
		}
		for r := 0; r < nCons; r++ {
			lhs := 0.0
			for i, v := range vars {
				lhs += rows[r][i] * s.Value(v)
			}
			if lhs > rhs[r]+1e-5 {
				t.Fatalf("trial %d: constraint %d violated (%v > %v)", trial, r, lhs, rhs[r])
			}
		}
	}
}

// TestMIPBoundedIntegers: general integers with two-sided bounds.
func TestMIPBoundedIntegers(t *testing.T) {
	// max 7x + 2y s.t. 3x + y ≤ 10, x ∈ [0,2] int, y ∈ [1,5] int.
	// x=2 → y ≤ 4 → obj 14+8=22.
	m := NewModel("bi", Maximize)
	x := m.AddIntVar("x", 0, 2, 7)
	y := m.AddIntVar("y", 1, 5, 2)
	mustCon(t, m, "c", []Term{{x, 3}, {y, 1}}, LE, 10)
	s := m.Solve()
	if s.Status != Optimal || !approx(s.Objective, 22) {
		t.Errorf("got %v obj %v, want 22", s.Status, s.Objective)
	}
	if s.IntValue(x) != 2 || s.IntValue(y) != 4 {
		t.Errorf("x=%d y=%d, want 2, 4", s.IntValue(x), s.IntValue(y))
	}
}
