package solver

import "context"

// lpEngine is the per-worker LP interface branch-and-bound drives: load a
// node's bounds, solve (cold, warm from a parent snapshot, or diving on
// the engine's retained parent state), snapshot the optimal basis for the
// children, and derive reduced-cost fixings. Two implementations exist —
// the revised simplex with LU-factorized basis (default) and the dense
// two-phase tableau (Options.DenseSimplex, also the revised engine's
// fallback). Snapshots are opaque (any): each engine recognizes only its
// own type and a worker hands whatever it is given back to solveWarm,
// which makes mixed-engine trees (a dense-fallback node's children under
// revised siblings) safe by construction.
type lpEngine interface {
	// applyBounds loads the model bounds tightened by chain. Must be
	// called before solveCold/solveWarm (solveDive instead continues from
	// the engine's retained state).
	applyBounds(chain *boundChange)
	// solveCold solves from scratch. The returned Values alias engine
	// scratch; copy before the next solve on this engine.
	solveCold() Solution
	// solveWarm re-optimizes from a parent snapshot; ok=false means fall
	// back to solveCold.
	solveWarm(snap any) (Solution, bool)
	// solveDive re-optimizes the engine's retained parent state after
	// tightening bounds; ok=false means re-solve via applyBounds.
	solveDive(changes []*boundChange) (Solution, bool)
	// snapshot captures the most recent Optimal solve's basis for warm
	// starts, or nil when the solve does not support one.
	snapshot() any
	// fixings extends chain with reduced-cost bound tightenings read off
	// the most recent Optimal solve.
	fixings(obj, inc float64, chain *boundChange) *boundChange
	// pivots reports the simplex pivots of the most recent solve call.
	pivots() int
	// stats reports cumulative basis-maintenance health counters for this
	// engine's lifetime (zero for the dense engine, which keeps no LU).
	stats() lpStats
}

// lpStats aggregates LU/basis health over an engine's lifetime: full
// refactorizations, in-place basis updates (Forrest–Tomlin or eta append),
// FTRAN/BTRAN solve counts, the peak U-plus-eta fill, and how many solves
// the revised engine handed to the dense fallback.
type lpStats struct {
	factorizations int
	updates        int
	ftrans         int
	btrans         int
	peakFill       int
	denseFallbacks int
	boundFlips     int
	weightResets   int
}

// merge folds o into s (sums, except peak fill which takes the max).
func (s *lpStats) merge(o lpStats) {
	s.factorizations += o.factorizations
	s.updates += o.updates
	s.ftrans += o.ftrans
	s.btrans += o.btrans
	if o.peakFill > s.peakFill {
		s.peakFill = o.peakFill
	}
	s.denseFallbacks += o.denseFallbacks
	s.boundFlips += o.boundFlips
	s.weightResets += o.weightResets
}

// addTo copies the counters into a Solution's exported stats fields.
func (s lpStats) addTo(sol *Solution) {
	sol.Refactorizations = s.factorizations
	sol.BasisUpdates = s.updates
	sol.FTRANCount = s.ftrans
	sol.BTRANCount = s.btrans
	sol.PeakUFill = s.peakFill
	sol.DenseFallbacks = s.denseFallbacks
	sol.BoundFlips = s.boundFlips
	sol.WeightResets = s.weightResets
}

// newLPEngine builds the per-worker engine these options select.
func newLPEngine(m *Model, opts Options) lpEngine {
	if opts.DenseSimplex {
		return newDenseEngine(m, opts.MaxLPIter, opts.Context)
	}
	return newRevisedEngine(m, opts)
}

// solveRelaxation solves the LP relaxation (integrality dropped) with a
// fresh engine for opts, detaching Values from the engine scratch.
func (m *Model) solveRelaxation(opts Options) Solution {
	eng := newLPEngine(m, opts)
	eng.applyBounds(nil)
	sol := eng.solveCold()
	sol.SimplexIters = eng.pivots()
	sol.Pricing = opts.EffectivePricing()
	st := eng.stats()
	st.addTo(&sol)
	if st.denseFallbacks > 0 && opts.Logf != nil {
		opts.Logf("solver: root LP fell back to the dense engine")
	}
	if sol.Values != nil {
		sol.Values = append([]float64(nil), sol.Values...)
	}
	return sol
}

// denseEngine adapts the dense-tableau two-phase simplex (lpScratch and
// friends) to the engine interface.
type denseEngine struct {
	m  *Model
	sc *lpScratch
}

func newDenseEngine(m *Model, maxIter int, ctx context.Context) *denseEngine {
	return &denseEngine{m: m, sc: &lpScratch{maxIter: maxIter, ctx: ctx}}
}

func (e *denseEngine) applyBounds(chain *boundChange) { applyBounds(e.m, chain, e.sc) }

func (e *denseEngine) solveCold() Solution { return e.m.solveLPBounds(e.sc) }

func (e *denseEngine) solveWarm(snap any) (Solution, bool) {
	bs, ok := snap.(*basisSnap)
	if !ok {
		return Solution{}, false
	}
	return e.m.solveLPWarm(e.sc, bs)
}

func (e *denseEngine) solveDive(changes []*boundChange) (Solution, bool) {
	return e.m.solveLPDive(e.sc, changes)
}

func (e *denseEngine) snapshot() any { return e.sc.snapshot() }

func (e *denseEngine) fixings(obj, inc float64, chain *boundChange) *boundChange {
	return e.m.reducedCostFixings(e.sc, obj, inc, chain)
}

func (e *denseEngine) pivots() int { return e.sc.lastPivots }

func (e *denseEngine) stats() lpStats { return lpStats{} }

// revisedEngine drives the revised simplex, falling back to a lazily
// built dense engine on the rare solves the revised path cannot certify
// (singular basis, numerical trouble, a binding artificial box). The
// fallback is per-solve: the next node tries the revised path again.
// lastDense tracks which engine produced the most recent solve so that
// snapshot/fixings/solveDive read the matching state.
type revisedEngine struct {
	m  *Model
	rx *rxScratch

	fall      *denseEngine // lazily allocated on first fallback
	chain     *boundChange // bounds of the current node (for the fallback)
	lastDense bool
	last      int // pivots of the most recent solve (both engines)
	fallbacks int // solves handed to the dense engine (see solveCold)
}

func newRevisedEngine(m *Model, opts Options) *revisedEngine {
	rx := newRxScratch(m, opts.EtaFileUpdates)
	rx.setPricing(opts.Pricing)
	rx.maxIter = opts.MaxLPIter
	rx.ctx = opts.Context
	return &revisedEngine{m: m, rx: rx}
}

// EffectivePricing is the pricing rule these options actually run: the
// dense tableau knows only Dantzig-style selection, and an unset rule
// normalizes to the devex default.
func (o Options) EffectivePricing() PricingRule {
	if o.DenseSimplex {
		return PricingDantzig
	}
	if o.Pricing == "" {
		return PricingDevex
	}
	return o.Pricing
}

func (e *revisedEngine) dense() *denseEngine {
	if e.fall == nil {
		e.fall = newDenseEngine(e.m, e.rx.maxIter, e.rx.ctx)
	}
	return e.fall
}

func (e *revisedEngine) applyBounds(chain *boundChange) {
	e.chain = chain
	e.rx.resolveBounds(chain)
}

func (e *revisedEngine) solveCold() Solution {
	e.lastDense = false
	sol, ok := e.rx.solveCold()
	e.last = e.rx.lastPivots
	if ok {
		return sol
	}
	// The revised path could not certify this solve (singular basis,
	// numerical giveup, or an artificial box that kept binding): count the
	// handoff so it shows up in SolveStats instead of vanishing silently.
	// The dense engine only gets the pivot budget the revised attempt left
	// unspent — MaxLPIter caps the solve call, not each engine it visits —
	// and if nothing remains the call reports IterLimit without a dense
	// solve at all.
	e.fallbacks++
	e.lastDense = true
	d := e.dense()
	if e.rx.maxIter > 0 {
		rem := e.rx.maxIter - e.rx.lastPivots
		if rem <= 0 {
			e.fall.sc.lastPivots = 0
			return Solution{Status: IterLimit}
		}
		d.sc.maxIter = rem
	}
	d.applyBounds(e.chain)
	sol = d.solveCold()
	e.last += d.sc.lastPivots
	return sol
}

func (e *revisedEngine) solveWarm(snap any) (Solution, bool) {
	switch s := snap.(type) {
	case *rxSnap:
		e.lastDense = false
		sol, ok := e.rx.solveWarm(s)
		e.last = e.rx.lastPivots
		return sol, ok
	case *basisSnap:
		// A dense-fallback parent's snapshot: warm-start its children on
		// the dense engine too, preserving the basis-reuse rate across the
		// engine boundary. This is a fresh solve call, so the dense scratch
		// gets the full configured budget back (a prior fallback may have
		// left it shrunk to that call's remainder).
		e.lastDense = true
		d := e.dense()
		d.sc.maxIter = e.rx.maxIter
		d.applyBounds(e.chain)
		sol, ok := d.solveWarm(s)
		e.last = d.sc.lastPivots
		return sol, ok
	}
	return Solution{}, false
}

func (e *revisedEngine) solveDive(changes []*boundChange) (Solution, bool) {
	// The caller dives only when the engine still holds the parent's
	// optimal state; lastDense records which scratch that is.
	if e.lastDense {
		d := e.dense()
		d.sc.maxIter = e.rx.maxIter // fresh solve call: full budget
		sol, ok := d.solveDive(changes)
		e.last = e.fall.sc.lastPivots
		return sol, ok
	}
	sol, ok := e.rx.solveDive(changes)
	e.last = e.rx.lastPivots
	return sol, ok
}

func (e *revisedEngine) snapshot() any {
	if e.lastDense {
		return e.fall.snapshot()
	}
	if s := e.rx.snapshot(); s != nil {
		return s
	}
	return nil // untyped nil: a typed-nil *rxSnap would defeat snap != nil checks
}

func (e *revisedEngine) fixings(obj, inc float64, chain *boundChange) *boundChange {
	if e.lastDense {
		return e.fall.fixings(obj, inc, chain)
	}
	return e.rx.fixings(obj, inc, chain)
}

func (e *revisedEngine) pivots() int { return e.last }

func (e *revisedEngine) stats() lpStats {
	lu := &e.rx.lu
	return lpStats{
		factorizations: lu.nFactor,
		updates:        lu.nUpdate,
		ftrans:         lu.nFtran,
		btrans:         lu.nBtran,
		peakFill:       lu.peakFill,
		denseFallbacks: e.fallbacks,
		boundFlips:     e.rx.nBoundFlips,
		weightResets:   e.rx.nWeightResets,
	}
}
