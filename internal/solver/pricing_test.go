package solver

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestPricingRuleObjectiveIdentity is the pricing differential property:
// Dantzig, devex, and steepest-edge row selection must agree on status
// and (when optimal) objective for random MILPs, with the dense tableau
// as the arbiter — the pricing rule chooses the pivot ORDER, never the
// answer. Incumbents are checked feasible in the original model.
func TestPricingRuleObjectiveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	trials := 200
	if testing.Short() {
		trials = 50
	}
	rules := []PricingRule{PricingDantzig, PricingDevex, PricingSteepestEdge}
	for trial := 0; trial < trials; trial++ {
		m := randomMILP(rng, true)
		dense := mustSolveOpts(t, m, Options{Workers: 1, DenseSimplex: true})
		for _, rule := range rules {
			sol := mustSolveOpts(t, m, Options{Workers: 1, Pricing: rule})
			label := fmt.Sprintf("trial %d pricing=%s", trial, rule)
			if sol.Status != dense.Status {
				t.Fatalf("%s: status %v, dense arbiter %v", label, sol.Status, dense.Status)
			}
			if sol.Pricing != rule {
				t.Fatalf("%s: Solution.Pricing = %q", label, sol.Pricing)
			}
			if sol.Status != Optimal {
				continue
			}
			tol := 1e-6 * math.Max(1, math.Abs(dense.Objective))
			if math.Abs(sol.Objective-dense.Objective) > tol {
				t.Fatalf("%s: objective %v, dense arbiter %v", label, sol.Objective, dense.Objective)
			}
			checkFeasible(t, m, sol, label)
		}
	}
}

// TestPricingRuleLPProperty runs the same differential on pure LP
// relaxations (no branching), sweeping presolve so the weighted pricing
// paths see both raw and tightened rows.
func TestPricingRuleLPProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	trials := 150
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		m := randomMILP(rng, true)
		dense := m.solveRelaxation(Options{DenseSimplex: true})
		for _, rule := range []PricingRule{PricingDantzig, PricingDevex, PricingSteepestEdge} {
			sol := m.solveRelaxation(Options{Pricing: rule})
			label := fmt.Sprintf("trial %d pricing=%s", trial, rule)
			if sol.Status != dense.Status {
				t.Fatalf("%s: LP status %v, dense %v", label, sol.Status, dense.Status)
			}
			if sol.Status != Optimal {
				continue
			}
			if diff := math.Abs(sol.Objective - dense.Objective); diff > 1e-6*math.Max(1, math.Abs(dense.Objective)) {
				t.Fatalf("%s: LP objective %v, dense %v (diff %g)", label, sol.Objective, dense.Objective, diff)
			}
		}
	}
}

// TestSteepestEdgeWeightsMatchBtranNorms is the unit test of the
// Forrest–Goldfarb update algebra: after a steepest-edge solve, every
// maintained reference weight must equal the brute-force recomputed
// ‖B⁻ᵀe_i‖² of the final basis (the quantity the updates track
// incrementally), to within accumulated-roundoff tolerance. Trials whose
// framework went stale (weight reset) carry no exact invariant and are
// skipped; the test requires that most trials keep it.
func TestSteepestEdgeWeightsMatchBtranNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	checked := 0
	for trial := 0; trial < 120; trial++ {
		m := randomMILP(rng, true)
		eng := newRevisedEngine(m, Options{Pricing: PricingSteepestEdge})
		sol := eng.solveCold()
		rx := eng.rx
		if sol.Status != Optimal || eng.fallbacks > 0 || !rx.weightsOK || rx.nWeightResets > 0 {
			continue
		}
		e := make([]float64, rx.nRows)
		rho := make([]float64, rx.nRows)
		for i := 0; i < rx.nRows; i++ {
			e[i] = 1
			rx.lu.btran(e, rho)
			want := 0.0
			for r := 0; r < rx.nRows; r++ {
				want += rho[r] * rho[r]
				e[r] = 0 // btran may not restore the unit input
			}
			if want < rxWeightFloor {
				want = rxWeightFloor
			}
			got := rx.rowW[i]
			if math.Abs(got-want) > 1e-6*math.Max(1, want) {
				t.Fatalf("trial %d row %d: maintained DSE weight %v, brute-force ‖B⁻ᵀe_i‖² = %v (after %d pivots)",
					trial, i, got, want, rx.lastPivots)
			}
		}
		checked++
	}
	if checked < 40 {
		t.Fatalf("only %d/120 trials reached an optimal basis with a live weight framework", checked)
	}
}

// TestDevexWeightsStayBounded: the devex recurrence only grows weights
// between resets, so after any solve the framework must either be live
// with all weights in [1, rxDevexCap·(growth of one update)] or have
// been reset — it must never carry NaN/Inf into row selection.
func TestDevexWeightsStayBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 120; trial++ {
		m := randomMILP(rng, true)
		eng := newRevisedEngine(m, Options{Pricing: PricingDevex})
		sol := eng.solveCold()
		rx := eng.rx
		if sol.Status != Optimal || !rx.weightsOK {
			continue
		}
		for i := 0; i < rx.nRows; i++ {
			w := rx.rowW[i]
			if math.IsNaN(w) || math.IsInf(w, 0) || w < rxWeightFloor {
				t.Fatalf("trial %d row %d: devex weight %v with a live framework", trial, i, w)
			}
		}
	}
}

// TestBoundFlipRatioTest exercises the long-step dual ratio test on the
// instance it exists for: a cheap boxed variable whose breakpoint the
// dual step passes. min x₁ + 10x₂ with x₁ ∈ [0,2], x₂ ∈ [0,100], and
// x₁ + x₂ ≥ 10: the first dual pivot's walk flips x₁ bound-to-bound
// (ratio 1, width 2 — absorbing 2 of the violation of 10) and pivots on
// x₂ (ratio 10). The flip must land x₁ EXACTLY on its opposite bound —
// bound flips copy the bound, they do not step towards it — and every
// pricing rule must produce the identical optimum x₁=2, x₂=8, cost 82.
func TestBoundFlipRatioTest(t *testing.T) {
	for _, rule := range []PricingRule{PricingDantzig, PricingDevex, PricingSteepestEdge} {
		m := NewModel("flip", Minimize)
		x1 := m.AddVar("x1", 0, 2, 1)
		x2 := m.AddVar("x2", 0, 100, 10)
		mustCon(t, m, "cover", []Term{{x1, 1}, {x2, 1}}, GE, 10)
		sol := mustSolveOpts(t, m, Options{Workers: 1, NoPresolve: true, Pricing: rule})
		if sol.Status != Optimal {
			t.Fatalf("pricing=%s: status %v", rule, sol.Status)
		}
		if math.Abs(sol.Objective-82) > 1e-9 {
			t.Fatalf("pricing=%s: objective %v, want 82", rule, sol.Objective)
		}
		if sol.Values[x1] != 2 {
			t.Fatalf("pricing=%s: flipped variable x1 = %v, want exactly 2 (its opposite bound)", rule, sol.Values[x1])
		}
		if math.Abs(sol.Values[x2]-8) > 1e-9 {
			t.Fatalf("pricing=%s: x2 = %v, want 8", rule, sol.Values[x2])
		}
		if sol.BoundFlips < 1 {
			t.Fatalf("pricing=%s: BoundFlips = %d, want >= 1", rule, sol.BoundFlips)
		}
		dense := mustSolveOpts(t, m, Options{Workers: 1, NoPresolve: true, DenseSimplex: true})
		if math.Abs(dense.Objective-sol.Objective) > 1e-9 {
			t.Fatalf("pricing=%s: objective %v differs from dense %v", rule, sol.Objective, dense.Objective)
		}
	}
}

// TestBoundFlipsLandOnBounds is the property version: on random bounded
// MILPs, any solve that reports bound flips must still return an optimal
// point where every variable respects its (boxed) bounds and matches the
// dense arbiter's objective — flips change the path, never the polytope.
// The trial set must actually exercise flips for the test to mean
// anything.
func TestBoundFlipsLandOnBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	flipped := 0
	for trial := 0; trial < 300; trial++ {
		m := randomMILP(rng, true)
		sol := mustSolveOpts(t, m, Options{Workers: 1})
		if sol.BoundFlips > 0 {
			flipped++
		}
		if sol.Status != Optimal {
			continue
		}
		dense := mustSolveOpts(t, m, Options{Workers: 1, DenseSimplex: true})
		tol := 1e-6 * math.Max(1, math.Abs(dense.Objective))
		if math.Abs(sol.Objective-dense.Objective) > tol {
			t.Fatalf("trial %d (%d flips): objective %v, dense %v", trial, sol.BoundFlips, sol.Objective, dense.Objective)
		}
		checkFeasible(t, m, sol, fmt.Sprintf("trial %d", trial))
	}
	if flipped == 0 {
		t.Fatal("no trial exercised a bound flip; the property never ran")
	}
}

// TestPricingUnknownRuleRejected mirrors the branching-rule validation.
func TestPricingUnknownRuleRejected(t *testing.T) {
	m := NewModel("bad", Minimize)
	m.AddVar("x", 0, 1, 1)
	if _, err := m.SolveWithOptions(Options{Pricing: "newton"}); err == nil {
		t.Fatal("unknown pricing rule accepted")
	}
}

// TestIterBudgetSpansDenseFallback: Options.MaxLPIter is a budget for the
// WHOLE solve of each LP — when the revised engine burns pivots against
// the artificial box and then hands off to the dense tableau, the dense
// phase must inherit only the remaining budget, not a fresh one. The ray
// model below always takes the fallback path; at small caps the solve
// must surface IterLimit with total pivots within the cap, and at a
// generous cap it must still reach the proven optimum.
func TestIterBudgetSpansDenseFallback(t *testing.T) {
	build := func() *Model {
		m := NewModel("fallback-budget", Minimize)
		x := m.AddVar("x", 0, math.Inf(1), 1)
		y := m.AddVar("y", 0, math.Inf(1), -1)
		z := m.AddIntVar("z", 0, 5, 1)
		mustCon(t, m, "ray", []Term{{y, 1}, {x, -1}}, LE, 3)
		mustCon(t, m, "zmin", []Term{{z, 2}}, GE, 1)
		return m
	}
	// Establish that the model takes the fallback and how many pivots the
	// unconstrained solve spends.
	full := mustSolveOpts(t, build(), Options{Workers: 1, NoPresolve: true})
	if full.Status != Optimal {
		t.Fatalf("uncapped status = %v", full.Status)
	}
	if full.DenseFallbacks == 0 {
		t.Fatal("model no longer exercises the dense fallback; the budget property needs it")
	}
	for cap := 1; cap <= 6; cap++ {
		sol := mustSolveOpts(t, build(), Options{Workers: 1, NoPresolve: true, MaxLPIter: cap})
		if sol.Status == Optimal {
			// A tiny budget may still suffice on this model; what it must
			// never do is claim optimality while overspending.
			if sol.SimplexIters > cap {
				t.Fatalf("cap %d: claimed Optimal after %d pivots", cap, sol.SimplexIters)
			}
			continue
		}
		if sol.Status != IterLimit {
			t.Fatalf("cap %d: status %v, want %v or %v", cap, sol.Status, IterLimit, Optimal)
		}
		if sol.SimplexIters > cap {
			t.Fatalf("cap %d: %d pivots spent — the dense fallback got a fresh budget instead of the remainder",
				cap, sol.SimplexIters)
		}
	}
	big := mustSolveOpts(t, build(), Options{Workers: 1, NoPresolve: true, MaxLPIter: 100000})
	if big.Status != Optimal || math.Abs(big.Objective-full.Objective) > 1e-9 {
		t.Fatalf("generous cap: status %v objective %v, want Optimal %v", big.Status, big.Objective, full.Objective)
	}
}
