package solver

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomMILP builds a small random integer program with integer data: a
// mix of knapsack-style (≤) and covering-style (≥) rows over bounded
// integer variables — plus, when allowCont is set, an occasional
// continuous variable. With pure integer variables and integer
// coefficients the optimal objective is exactly representable, so solver
// variants can be compared with ==; continuous variables inject LP
// roundoff (alternate optimal bases differ in ulps), so mixed models are
// compared within tolerance instead.
func randomMILP(rng *rand.Rand, allowCont bool) *Model {
	sense := Minimize
	if rng.Intn(2) == 0 {
		sense = Maximize
	}
	m := NewModel("prop", sense)
	n := 4 + rng.Intn(9) // 4..12 variables
	vars := make([]VarID, n)
	for i := 0; i < n; i++ {
		obj := float64(rng.Intn(19) - 9)
		ub := float64(1 + rng.Intn(4))
		if allowCont && rng.Intn(5) == 0 {
			vars[i] = m.AddVar(fmt.Sprintf("c%d", i), 0, ub, obj)
		} else {
			vars[i] = m.AddIntVar(fmt.Sprintf("x%d", i), 0, ub, obj)
		}
	}
	rows := 2 + rng.Intn(4) // 2..5 constraints
	for r := 0; r < rows; r++ {
		terms := make([]Term, 0, n)
		sum := 0.0
		for i := 0; i < n; i++ {
			c := float64(rng.Intn(7) - 2) // -2..4, zeros dropped by AddConstraint
			if c != 0 {
				terms = append(terms, Term{Var: vars[i], Coef: c})
				sum += c
			}
		}
		if len(terms) == 0 {
			continue
		}
		rel := LE
		// Keep ≥ rows satisfiable at reasonable levels and ≤ rows binding.
		rhs := float64(rng.Intn(10) + 1)
		if rng.Intn(3) == 0 && sum > 0 {
			rel = GE
			rhs = float64(rng.Intn(int(sum) + 1))
		}
		if err := m.AddConstraint(fmt.Sprintf("r%d", r), terms, rel, rhs); err != nil {
			panic(err)
		}
	}
	return m
}

// TestWarmStartMatchesColdProperty is the warm-start correctness property:
// on randomized small pure-integer programs, every (branching rule ×
// worker count × warm vs cold) configuration must return the exact same
// status and the bit-identical objective as the serial, cold,
// most-fractional reference — incumbent objectives are recomputed from
// integer-snapped values, so with integer data they are exact. Run with
// -race to also exercise the shared pseudocost bookkeeping.
func TestWarmStartMatchesColdProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 25; trial++ {
		m := randomMILP(rng, false)
		warmVsColdProperty(t, m, trial, 0)
	}
}

// TestWarmStartMatchesColdMixedProperty is the same sweep on models with
// continuous variables. The continuous part of the objective is subject
// to LP roundoff (warm and cold solves can land on different but
// equal-objective vertices), so objectives are compared within a 1e-9
// relative tolerance instead of bitwise.
func TestWarmStartMatchesColdMixedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		m := randomMILP(rng, true)
		warmVsColdProperty(t, m, trial, 1e-9)
	}
}

func warmVsColdProperty(t *testing.T, m *Model, trial int, tol float64) {
	t.Helper()
	ref := mustSolveOpts(t, m, Options{
		Workers: 1, NoWarmStart: true, Branching: BranchMostFractional,
	})
	for _, rule := range []BranchRule{BranchMostFractional, BranchPseudocost} {
		for _, workers := range []int{1, 3} {
			for _, noWarm := range []bool{false, true} {
				got := mustSolveOpts(t, m, Options{
					Workers: workers, NoWarmStart: noWarm, Branching: rule,
				})
				if got.Status != ref.Status {
					t.Fatalf("trial %d rule=%s workers=%d noWarm=%v: status %v, reference %v",
						trial, rule, workers, noWarm, got.Status, ref.Status)
				}
				if ref.Status != Optimal {
					continue
				}
				diff := math.Abs(got.Objective - ref.Objective)
				limit := tol * math.Max(1, math.Abs(ref.Objective))
				if diff > limit {
					t.Fatalf("trial %d rule=%s workers=%d noWarm=%v: objective %v != reference %v (diff %g)",
						trial, rule, workers, noWarm, got.Objective, ref.Objective, got.Objective-ref.Objective)
				}
			}
		}
	}
}

// branchyMIP is a knapsack-style model that forces real branching, so the
// warm-start and pseudocost paths are actually exercised.
func branchyMIP() *Model {
	m := NewModel("branchy", Maximize)
	weights := []float64{5, 7, 9, 11, 13, 15, 17, 19, 21, 23}
	values := []float64{8, 11, 13, 16, 19, 21, 24, 27, 29, 32}
	terms := make([]Term, len(weights))
	for i := range weights {
		v := m.AddIntVar(fmt.Sprintf("x%d", i), 0, 3, values[i])
		terms[i] = Term{Var: v, Coef: weights[i]}
	}
	if err := m.AddConstraint("cap", terms, LE, 67); err != nil {
		panic(err)
	}
	return m
}

func TestWarmStartStatsRecorded(t *testing.T) {
	m := branchyMIP()
	sol := mustSolveOpts(t, m, Options{Workers: 1})
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Nodes <= 1 {
		t.Fatalf("expected real branching, got %d nodes", sol.Nodes)
	}
	if sol.SimplexIters <= 0 {
		t.Errorf("SimplexIters = %d, want > 0", sol.SimplexIters)
	}
	if sol.WarmStartHits <= 0 {
		t.Errorf("WarmStartHits = %d, want > 0 on a branching MIP", sol.WarmStartHits)
	}
	if sol.WarmStartHits >= sol.Nodes {
		t.Errorf("WarmStartHits = %d not below Nodes = %d (root is always cold)",
			sol.WarmStartHits, sol.Nodes)
	}
	if sol.Branching != BranchPseudocost {
		t.Errorf("default Branching = %q, want %q", sol.Branching, BranchPseudocost)
	}

	cold := mustSolveOpts(t, m, Options{Workers: 1, NoWarmStart: true})
	if cold.WarmStartHits != 0 {
		t.Errorf("NoWarmStart WarmStartHits = %d, want 0", cold.WarmStartHits)
	}
	if cold.Objective != sol.Objective {
		t.Errorf("NoWarmStart objective %v != warm objective %v", cold.Objective, sol.Objective)
	}
}

func TestBranchingRulesAgreeOnObjective(t *testing.T) {
	m := branchyMIP()
	mf := mustSolveOpts(t, m, Options{Workers: 1, Branching: BranchMostFractional})
	pc := mustSolveOpts(t, m, Options{Workers: 1, Branching: BranchPseudocost})
	if mf.Status != Optimal || pc.Status != Optimal {
		t.Fatalf("statuses: mf=%v pc=%v", mf.Status, pc.Status)
	}
	if mf.Objective != pc.Objective {
		t.Fatalf("rules disagree: most-fractional %v, pseudocost %v", mf.Objective, pc.Objective)
	}
	if mf.Branching != BranchMostFractional || pc.Branching != BranchPseudocost {
		t.Errorf("Branching echo wrong: mf=%q pc=%q", mf.Branching, pc.Branching)
	}
}

func TestLPReportsSimplexIters(t *testing.T) {
	m := NewModel("lp", Maximize)
	x := m.AddVar("x", 0, 10, 3)
	y := m.AddVar("y", 0, 10, 5)
	if err := m.AddConstraint("c", []Term{{x, 1}, {y, 2}}, LE, 14); err != nil {
		t.Fatal(err)
	}
	sol := m.SolveLP()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.SimplexIters <= 0 {
		t.Errorf("SimplexIters = %d, want > 0", sol.SimplexIters)
	}
	if sol.WarmStartHits != 0 {
		t.Errorf("WarmStartHits = %d on an LP, want 0", sol.WarmStartHits)
	}
}
