package solver

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestDenseVsRevisedMILPProperty is the engine differential property: the
// dense tableau and the revised simplex must agree on status and (when
// optimal) objective for random MILPs, and both incumbents must be
// feasible in the original model. Swept across presolve on/off and worker
// counts so the warm-start and dive paths of both engines are exercised.
// Feasibility of both incumbents is checked against the original model
// with checkFeasible (shared with the presolve rehydration tests).
func TestDenseVsRevisedMILPProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 120
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		m := randomMILP(rng, trial%2 == 0)
		for _, noPresolve := range []bool{false, true} {
			for _, workers := range []int{1, 3} {
				base := Options{Workers: workers, NoPresolve: noPresolve}
				dOpts, rOpts := base, base
				dOpts.DenseSimplex = true
				dense := mustSolveOpts(t, m, dOpts)
				revised := mustSolveOpts(t, m, rOpts)
				label := fmt.Sprintf("trial %d presolve=%v workers=%d", trial, !noPresolve, workers)
				if dense.Status != revised.Status {
					t.Fatalf("%s: dense status %v, revised status %v", label, dense.Status, revised.Status)
				}
				if dense.Status != Optimal {
					continue
				}
				diff := math.Abs(dense.Objective - revised.Objective)
				if diff > 1e-6*math.Max(1, math.Abs(dense.Objective)) {
					t.Fatalf("%s: dense objective %v, revised %v (diff %g)",
						label, dense.Objective, revised.Objective, diff)
				}
				checkFeasible(t, m, dense, label+" dense")
				checkFeasible(t, m, revised, label+" revised")
			}
		}
	}
}

// TestDenseVsRevisedLPProperty runs the same differential on pure LP
// relaxations (SolveLP path, no branching): status, objective, and
// feasibility of the returned point.
func TestDenseVsRevisedLPProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trials := 150
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		m := randomMILP(rng, true)
		dense := m.solveRelaxation(Options{DenseSimplex: true})
		revised := m.solveRelaxation(Options{})
		label := fmt.Sprintf("trial %d", trial)
		if dense.Status != revised.Status {
			t.Fatalf("%s: dense LP status %v, revised %v", label, dense.Status, revised.Status)
		}
		if dense.Status != Optimal {
			continue
		}
		diff := math.Abs(dense.Objective - revised.Objective)
		if diff > 1e-6*math.Max(1, math.Abs(dense.Objective)) {
			t.Fatalf("%s: dense LP objective %v, revised %v (diff %g)",
				label, dense.Objective, revised.Objective, diff)
		}
		// LP relaxation: bounds and rows must hold; skip integrality.
		for i, v := range m.vars {
			for _, sol := range []Solution{dense, revised} {
				x := sol.Values[i]
				if x < v.lb-1e-6 || x > v.ub+1e-6 {
					t.Fatalf("%s: var %s = %v outside [%v, %v]", label, v.name, x, v.lb, v.ub)
				}
			}
		}
	}
}

// TestRevisedUnboundedFallsBackToDense: the revised engine never declares
// Unbounded itself (artificial boxes make that certificate unsound); the
// dense fallback must still surface the correct status.
func TestRevisedUnboundedFallsBackToDense(t *testing.T) {
	m := NewModel("unbounded", Maximize)
	x := m.AddVar("x", 0, math.Inf(1), 1)
	y := m.AddVar("y", 0, math.Inf(1), 1)
	if err := m.AddConstraint("c", []Term{{x, 1}, {y, -1}}, LE, 5); err != nil {
		t.Fatal(err)
	}
	sol := m.SolveLP()
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want %v", sol.Status, Unbounded)
	}
}

// TestRevisedFreeVariables: free (two-sided infinite) variables go through
// the artificial-box machinery; the optimum here is finite and must be
// found exactly.
func TestRevisedFreeVariables(t *testing.T) {
	// min x + 2y with x + y = 4 and x − y = −2: the equality rows pin the
	// unique point (1, 3), objective 7, with both variables free.
	m := NewModel("free", Minimize)
	x := m.AddVar("x", math.Inf(-1), math.Inf(1), 1)
	y := m.AddVar("y", math.Inf(-1), math.Inf(1), 2)
	if err := m.AddConstraint("e1", []Term{{x, 1}, {y, 1}}, EQ, 4); err != nil {
		t.Fatal(err)
	}
	if err := m.AddConstraint("e2", []Term{{x, 1}, {y, -1}}, EQ, -2); err != nil {
		t.Fatal(err)
	}
	sol := m.SolveLP()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// Unique point x=1, y=3 → objective 7.
	if math.Abs(sol.Objective-7) > 1e-6 {
		t.Fatalf("objective = %v, want 7", sol.Objective)
	}
	if math.Abs(sol.Values[x]-1) > 1e-6 || math.Abs(sol.Values[y]-3) > 1e-6 {
		t.Fatalf("point = (%v, %v), want (1, 3)", sol.Values[x], sol.Values[y])
	}
}

// TestMaxLPIterSurfacesIterLimit: a tiny per-LP pivot budget must surface
// IterLimit instead of silently reporting Optimal — the bug this PR fixes.
func TestMaxLPIterSurfacesIterLimit(t *testing.T) {
	m := branchyMIP()
	sol, err := m.SolveWithOptions(Options{MaxLPIter: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("status = %v, want %v", sol.Status, IterLimit)
	}
	// Both engines must agree on the surfaced status.
	sol, err = m.SolveWithOptions(Options{MaxLPIter: 1, Workers: 1, DenseSimplex: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("dense status = %v, want %v", sol.Status, IterLimit)
	}
}

// TestRevisedRefactorization forces enough pivots on a single LP to cross
// the eta-file refactorization threshold (luMaxEtas) so the periodic
// refactor path runs, and checks the optimum against the dense engine.
func TestRevisedRefactorization(t *testing.T) {
	// A staircase LP with ~3·luMaxEtas rows: each dual pivot adds an eta,
	// so the solve must refactor at least twice.
	n := 3 * luMaxEtas
	m := NewModel("staircase", Minimize)
	vars := make([]VarID, n)
	for i := 0; i < n; i++ {
		vars[i] = m.AddVar(fmt.Sprintf("x%d", i), 0, 100, 1)
	}
	for i := 0; i < n; i++ {
		terms := []Term{{vars[i], 1}}
		if i > 0 {
			terms = append(terms, Term{vars[i-1], 0.5})
		}
		if err := m.AddConstraint(fmt.Sprintf("r%d", i), terms, GE, float64(1+i%7)); err != nil {
			t.Fatal(err)
		}
	}
	revised := m.solveRelaxation(Options{})
	dense := m.solveRelaxation(Options{DenseSimplex: true})
	if revised.Status != Optimal || dense.Status != Optimal {
		t.Fatalf("status: revised %v, dense %v", revised.Status, dense.Status)
	}
	if math.Abs(revised.Objective-dense.Objective) > 1e-6*math.Max(1, math.Abs(dense.Objective)) {
		t.Fatalf("objective: revised %v, dense %v", revised.Objective, dense.Objective)
	}
	if revised.SimplexIters < luMaxEtas {
		t.Fatalf("SimplexIters = %d, want >= %d (refactor path not exercised)", revised.SimplexIters, luMaxEtas)
	}
}
