package solver

// cscMatrix is the constraint matrix A in compressed-sparse-column form:
// one column per structural (model) variable over the model's constraint
// rows. Slack columns are not stored — every row r carries an implicit
// unit slack column with index cols+r whose bounds encode the relation
// (LE: [0,∞), GE: (−∞,0], EQ: [0,0]) — so the memory footprint is exactly
// nonzero-proportional. Built once per model on first use and shared
// read-only by every branch-and-bound worker; the revised simplex never
// forms a dense row or column of it.
type cscMatrix struct {
	rows, cols int
	colPtr     []int32 // len cols+1; column j occupies [colPtr[j], colPtr[j+1])
	rowIdx     []int32 // constraint row of each stored nonzero
	val        []float64
	rhs        []float64 // per-row right-hand side
	rel        []Rel     // per-row relation (fixes the slack bounds)
}

// cscBuild constructs the CSC matrix from the model's constraints.
// AddConstraint already merged duplicate variables and dropped zero
// coefficients, so every stored entry is a true nonzero.
func cscBuild(m *Model) *cscMatrix {
	rows, cols := len(m.cons), len(m.vars)
	nnz := 0
	for ci := range m.cons {
		nnz += len(m.cons[ci].terms)
	}
	c := &cscMatrix{
		rows:   rows,
		cols:   cols,
		colPtr: make([]int32, cols+1),
		rowIdx: make([]int32, nnz),
		val:    make([]float64, nnz),
		rhs:    make([]float64, rows),
		rel:    make([]Rel, rows),
	}
	// Count per column, prefix-sum into colPtr, then fill. Row order within
	// a column is ascending because constraints are scanned in order.
	for ci := range m.cons {
		for _, t := range m.cons[ci].terms {
			c.colPtr[t.Var+1]++
		}
	}
	for j := 0; j < cols; j++ {
		c.colPtr[j+1] += c.colPtr[j]
	}
	fill := make([]int32, cols)
	copy(fill, c.colPtr[:cols])
	for ci := range m.cons {
		con := &m.cons[ci]
		c.rhs[ci] = con.rhs
		c.rel[ci] = con.rel
		for _, t := range con.terms {
			k := fill[t.Var]
			c.rowIdx[k] = int32(ci)
			c.val[k] = t.Coef
			fill[t.Var]++
		}
	}
	return c
}

// cscMatrixOf returns the model's cached CSC matrix, building it on first
// use. Safe for concurrent callers; the result is immutable.
func (m *Model) cscMatrixOf() *cscMatrix {
	m.cscOnce.Do(func() { m.csc = cscBuild(m) })
	return m.csc
}
