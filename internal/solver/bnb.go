package solver

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
)

// intTol is the tolerance under which a relaxation value counts as integral.
const intTol = 1e-6

// Solve solves the model exactly: as an LP when it has no integer
// variables, otherwise with LP-relaxation branch-and-bound.
func (m *Model) Solve() Solution {
	return m.SolveWithOptions(Options{})
}

// SolveWithOptions solves with explicit search limits. Branch-and-bound
// nodes are explored by Options.Workers concurrent workers (default
// GOMAXPROCS) sharing a best-first frontier.
func (m *Model) SolveWithOptions(opts Options) Solution {
	opts = opts.withDefaults()
	hasInt := false
	for _, v := range m.vars {
		if v.integer {
			hasInt = true
			break
		}
	}
	if !hasInt {
		return m.SolveLP()
	}
	return m.branchAndBound(opts)
}

// boundChange is one copy-on-branch bound tightening. A bbNode's bounds
// are the chain of changes back to the root instead of per-node map
// clones; since branching only ever tightens, the chain can be applied in
// any order by taking the max of lower bounds and min of upper bounds.
type boundChange struct {
	parent *boundChange
	v      VarID
	upper  bool // true: ub ← min(ub, val); false: lb ← max(lb, val)
	val    float64
}

// applyBounds resolves the model bounds into sc.lb/sc.ub, then tightens
// them with the chain.
func applyBounds(m *Model, c *boundChange, sc *lpScratch) {
	sc.resolveModelBounds(m)
	for ; c != nil; c = c.parent {
		if c.upper {
			if c.val < sc.ub[c.v] {
				sc.ub[c.v] = c.val
			}
		} else {
			if c.val > sc.lb[c.v] {
				sc.lb[c.v] = c.val
			}
		}
	}
}

// bbNode is one subproblem: the root LP plus a chain of bound tightenings.
type bbNode struct {
	bounds *boundChange
	bound  float64 // relaxation objective of the parent (optimistic)
	depth  int
}

// nodeQueue is a best-first priority queue. For minimization the smallest
// bound is most promising; for maximization the largest.
type nodeQueue struct {
	nodes []*bbNode
	min   bool
}

func (q nodeQueue) Len() int { return len(q.nodes) }
func (q nodeQueue) Less(i, j int) bool {
	if q.min {
		return q.nodes[i].bound < q.nodes[j].bound
	}
	return q.nodes[i].bound > q.nodes[j].bound
}
func (q nodeQueue) Swap(i, j int)       { q.nodes[i], q.nodes[j] = q.nodes[j], q.nodes[i] }
func (q *nodeQueue) Push(x interface{}) { q.nodes = append(q.nodes, x.(*bbNode)) }
func (q *nodeQueue) Pop() interface{} {
	old := q.nodes
	n := len(old)
	item := old[n-1]
	old[n-1] = nil // release the node (and its bound chain) to the GC
	q.nodes = old[:n-1]
	return item
}

// bbSearch is the shared state of one concurrent branch-and-bound run.
// The mutex guards everything below it; workers block on cond when the
// frontier is empty but siblings still have nodes in flight.
type bbSearch struct {
	m    *Model
	opts Options
	min  bool

	mu   sync.Mutex
	cond *sync.Cond

	queue    *nodeQueue
	inFlight int       // nodes popped but not yet fully processed
	active   []float64 // per-worker bound of the in-flight node (NaN = idle)
	nodes    int       // nodes expanded so far (LP relaxations solved)

	incumbent *Solution // best integral solution; Values owned (copied)

	stop      bool    // some worker decided the search is over
	limitHit  bool    // MaxNodes exhausted before completion
	cancelled bool    // Options.Context cancelled
	gapStop   bool    // RelGap early stop
	stopBound float64 // proven bound at the early stop
}

func (m *Model) branchAndBound(opts Options) Solution {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	root := m.solveLPWithBounds(nil, nil)
	if root.Status != Optimal {
		root.Workers = workers
		return root
	}

	s := &bbSearch{
		m:      m,
		opts:   opts,
		min:    m.sense == Minimize,
		queue:  &nodeQueue{min: m.sense == Minimize},
		active: make([]float64, workers),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.active {
		s.active[i] = math.NaN()
	}
	heap.Push(s.queue, &bbNode{bound: root.Objective})

	if workers == 1 {
		s.worker(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func(id int) {
				defer wg.Done()
				s.worker(id)
			}(i)
		}
		wg.Wait()
	}
	return s.finish(workers)
}

// betterObj reports whether objective a improves on b.
func (s *bbSearch) betterObj(a, b float64) bool {
	if s.min {
		return a < b
	}
	return a > b
}

// globalBoundLocked returns the most optimistic bound over the candidate
// node, every in-flight node, and the head of the frontier: the proven
// bound on the true optimum at this instant. Requires s.mu held.
func (s *bbSearch) globalBoundLocked(candidate float64) float64 {
	best := candidate
	improve := func(b float64) {
		if math.IsNaN(b) {
			return
		}
		if math.IsNaN(best) || s.betterObj(b, best) {
			best = b
		}
	}
	for _, b := range s.active {
		improve(b)
	}
	if s.queue.Len() > 0 {
		improve(s.queue.nodes[0].bound)
	}
	return best
}

// worker is one branch-and-bound worker loop. It owns a private lpScratch
// and pops nodes from the shared frontier until the search terminates.
func (s *bbSearch) worker(id int) {
	sc := &lpScratch{}
	ctx := s.opts.Context
	s.mu.Lock()
	for {
		if s.stop {
			break
		}
		if s.queue.Len() == 0 {
			if s.inFlight == 0 {
				// Frontier exhausted with nothing in flight: done.
				s.stop = true
				s.cond.Broadcast()
				break
			}
			// Siblings may still push children; wait for them.
			s.cond.Wait()
			continue
		}
		if ctx != nil && ctx.Err() != nil {
			s.stop, s.cancelled = true, true
			s.stopBound = s.globalBoundLocked(math.NaN())
			s.cond.Broadcast()
			break
		}
		if s.nodes >= s.opts.MaxNodes {
			s.stop, s.limitHit = true, true
			s.stopBound = s.globalBoundLocked(math.NaN())
			s.cond.Broadcast()
			break
		}
		node := heap.Pop(s.queue).(*bbNode)
		if s.incumbent != nil {
			if !s.betterObj(node.bound, s.incumbent.Objective) {
				// Not better than the incumbent: discard. (Unlike the
				// sequential solver we cannot conclude the whole frontier
				// is pruned — an in-flight sibling may still improve the
				// incumbent — so just drop this node and keep looping.)
				continue
			}
			if relGap(s.incumbent.Objective, s.globalBoundLocked(node.bound)) <= s.opts.RelGap {
				s.stop, s.gapStop = true, true
				s.stopBound = s.globalBoundLocked(node.bound)
				s.cond.Broadcast()
				break
			}
		}
		s.nodes++
		s.inFlight++
		s.active[id] = node.bound
		s.mu.Unlock()

		applyBounds(s.m, node.bounds, sc)
		sol := s.m.solveLPBounds(sc)

		s.mu.Lock()
		s.inFlight--
		s.active[id] = math.NaN()
		s.processLocked(node, sol)
		// Wake idle siblings: children may have been pushed, or this was
		// the last in-flight node and the frontier is now empty.
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// processLocked handles one solved relaxation: prune, record an incumbent,
// or branch. Requires s.mu held. sol.Values aliases the worker's scratch.
func (s *bbSearch) processLocked(node *bbNode, sol Solution) {
	if sol.Status != Optimal {
		return // infeasible subtree
	}
	if s.incumbent != nil && !s.betterObj(sol.Objective, s.incumbent.Objective) {
		return
	}
	// Find the most fractional integer variable.
	branchVar := VarID(-1)
	worstFrac := intTol
	for i, v := range s.m.vars {
		if !v.integer {
			continue
		}
		x := sol.Values[i]
		frac := math.Abs(x - math.Round(x))
		if frac > worstFrac {
			worstFrac = frac
			branchVar = VarID(i)
		}
	}
	if branchVar < 0 {
		// Integral: candidate incumbent. Snap values to exact integers and
		// copy them out of the worker scratch.
		values := append([]float64(nil), sol.Values...)
		for i, v := range s.m.vars {
			if v.integer {
				values[i] = math.Round(values[i])
			}
		}
		sol.Values = values
		if s.acceptIncumbentLocked(sol) && s.opts.Logf != nil {
			s.opts.Logf("solver: incumbent %.6g at node %d", sol.Objective, s.nodes)
		}
		return
	}
	// Branch: two children sharing the parent chain copy-on-branch.
	x := sol.Values[branchVar]
	heap.Push(s.queue, &bbNode{
		bounds: &boundChange{parent: node.bounds, v: branchVar, upper: true, val: math.Floor(x)},
		bound:  sol.Objective,
		depth:  node.depth + 1,
	})
	heap.Push(s.queue, &bbNode{
		bounds: &boundChange{parent: node.bounds, v: branchVar, upper: false, val: math.Ceil(x)},
		bound:  sol.Objective,
		depth:  node.depth + 1,
	})
}

// acceptIncumbentLocked installs sol as the incumbent if it is strictly
// better, or if it ties the current objective and is canonically smaller
// (lexicographically smaller Values). The tie-break makes the reported
// Values independent of which worker finds an equal-objective solution
// first. Requires s.mu held; sol.Values must be owned by sol.
func (s *bbSearch) acceptIncumbentLocked(sol Solution) bool {
	if s.incumbent != nil {
		if !s.betterObj(sol.Objective, s.incumbent.Objective) {
			if !objEqual(sol.Objective, s.incumbent.Objective) || !lexLess(sol.Values, s.incumbent.Values) {
				return false
			}
		}
	}
	s.incumbent = &sol
	return true
}

// objEqual reports whether two objective values tie within relative
// tolerance (the canonical-tie-break window).
func objEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// lexLess reports whether a precedes b lexicographically.
func lexLess(a, b []float64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// finish assembles the Solution after all workers have returned.
func (s *bbSearch) finish(workers int) Solution {
	switch {
	case s.cancelled || s.limitHit:
		if s.incumbent == nil {
			return Solution{Status: LimitReached, Nodes: s.nodes, Workers: workers}
		}
		out := *s.incumbent
		out.Status = LimitReached
		out.Nodes = s.nodes
		out.Workers = workers
		if !math.IsNaN(s.stopBound) {
			out.Gap = relGap(out.Objective, s.stopBound)
		} else {
			// Frontier and in-flight set were both empty at the stop: the
			// incumbent bound is all that remains.
			out.Gap = 0
		}
		return out
	case s.gapStop:
		out := *s.incumbent
		out.Nodes = s.nodes
		out.Workers = workers
		out.Gap = relGap(out.Objective, s.stopBound)
		if out.Gap <= intTol {
			out.Status = Optimal
		} else {
			out.Status = GapLimit
		}
		return out
	default:
		// Frontier exhausted (including pruned-to-empty): optimality is
		// proven, or the model is integer-infeasible.
		if s.incumbent == nil {
			return Solution{Status: Infeasible, Nodes: s.nodes, Workers: workers}
		}
		out := *s.incumbent
		out.Status = Optimal
		out.Gap = 0
		out.Nodes = s.nodes
		out.Workers = workers
		return out
	}
}

// relGap is the relative distance between the incumbent objective and the
// proven bound.
func relGap(obj, bound float64) float64 {
	return math.Abs(obj-bound) / math.Max(1, math.Abs(obj))
}
