package solver

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
)

// intTol is the tolerance under which a relaxation value counts as integral.
const intTol = 1e-6

// Solve solves the model exactly: as an LP when it has no integer
// variables, otherwise with LP-relaxation branch-and-bound. Default
// options are always valid, so unlike SolveWithOptions no error is
// possible.
func (m *Model) Solve() Solution {
	sol, _ := m.SolveWithOptions(Options{})
	return sol
}

// SolveWithOptions solves with explicit search limits. Branch-and-bound
// nodes are explored by Options.Workers concurrent workers (default
// GOMAXPROCS) sharing a best-first frontier. Unless Options.NoPresolve is
// set, the model is first reduced by the presolve layer (bound
// propagation, substitution, redundant-row and duplicate-column removal)
// and the solution is rehydrated against the original VarIDs afterwards.
// An error is returned on invalid options (e.g. an unrecognized
// Options.Branching rule) without starting a search.
func (m *Model) SolveWithOptions(opts Options) (Solution, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return Solution{}, err
	}
	if opts.NoPresolve {
		return m.solveReduced(opts), nil
	}
	p := m.presolve(opts.Logf)
	if p.infeasible {
		return Solution{
			Status:       Infeasible,
			Branching:    opts.Branching,
			Pricing:      opts.EffectivePricing(),
			PresolveRows: p.rowsRemoved,
			PresolveCols: p.colsRemoved,
		}, nil
	}
	sol := p.reduced.solveReduced(opts)
	return p.postsolve(sol), nil
}

// solveReduced runs the actual search on m as-is: as an LP when it has no
// integer variables, otherwise with LP-relaxation branch-and-bound. opts
// must already carry defaults.
func (m *Model) solveReduced(opts Options) Solution {
	hasInt := false
	for _, v := range m.vars {
		if v.integer {
			hasInt = true
			break
		}
	}
	if !hasInt {
		return m.solveRelaxation(opts)
	}
	return m.branchAndBound(opts)
}

// boundChange is one copy-on-branch bound tightening. A bbNode's bounds
// are the chain of changes back to the root instead of per-node map
// clones; since branching only ever tightens, the chain can be applied in
// any order by taking the max of lower bounds and min of upper bounds.
type boundChange struct {
	parent *boundChange
	v      VarID
	upper  bool // true: ub ← min(ub, val); false: lb ← max(lb, val)
	val    float64
}

// applyBounds resolves the model bounds into sc.lb/sc.ub, then tightens
// them with the chain.
func applyBounds(m *Model, c *boundChange, sc *lpScratch) {
	sc.resolveModelBounds(m)
	for ; c != nil; c = c.parent {
		if c.upper {
			if c.val < sc.ub[c.v] {
				sc.ub[c.v] = c.val
			}
		} else {
			if c.val > sc.lb[c.v] {
				sc.lb[c.v] = c.val
			}
		}
	}
}

// objRounder lifts fractional LP bounds onto values an integer solution
// can actually attain, so nodes whose subtree provably cannot beat the
// incumbent are pruned without ever solving their relaxations. Two sound
// lifts, detected once per model:
//
//   - gcd: when every variable with a nonzero objective coefficient is
//     integer and every coefficient is an integer, any integer point's
//     objective is a multiple of g = gcd(|c_j|); a minimization bound z
//     rounds up to the next multiple of g (down for maximization).
//   - cardinality: when additionally every such coefficient and lower
//     bound is nonnegative, obj = Σ c_j·x_j brackets the positive-cost
//     activity T = Σ x_j by cmin·T ≤ obj ≤ cmax·T with T integer, so a
//     minimization bound z implies T ≥ ⌈z/cmax⌉ and obj ≥ cmin·⌈z/cmax⌉
//     (and obj ≤ cmax·⌊z/cmin⌋ for maximization).
//
// The cardinality lift is what collapses near-uniform covering objectives
// (like the planning MIP's 1+ε·spacing costs): a bound of 1.79 means two
// wavelengths are unavoidable, which costs at least 2·cmin — often the
// incumbent objective exactly, pruning the entire tied frontier.
type objRounder struct {
	min  bool
	g    float64 // coefficient gcd; 0 when the gcd lift is inapplicable
	card bool    // cardinality lift applicable
	cmin float64 // smallest positive objective coefficient
	cmax float64 // largest objective coefficient
}

func newObjRounder(m *Model) objRounder {
	r := objRounder{min: m.sense == Minimize, card: true}
	var g int64
	gcdOK := true
	for i := range m.vars {
		v := &m.vars[i]
		c := v.obj
		if c == 0 {
			continue
		}
		if !v.integer {
			// A continuous variable contributes arbitrary objective mass:
			// no integral structure to exploit.
			return objRounder{min: r.min}
		}
		if c < 0 || v.lb < 0 {
			r.card = false
		} else {
			if r.cmin == 0 || c < r.cmin {
				r.cmin = c
			}
			if c > r.cmax {
				r.cmax = c
			}
		}
		if a := math.Abs(c); a == math.Trunc(a) && a < 1e15 {
			g = gcd64(g, int64(a))
		} else {
			gcdOK = false
		}
	}
	if gcdOK && g > 0 {
		r.g = float64(g)
	}
	if r.cmax <= 0 {
		r.card = false
	}
	return r
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// lift returns the strongest valid bound implied by z. The 1e-9 relative
// slack before rounding keeps values that are an ulp past an attainable
// objective from being lifted over it.
func (r objRounder) lift(z float64) float64 {
	if math.IsInf(z, 0) || math.IsNaN(z) {
		return z
	}
	round := func(q float64) float64 {
		tol := 1e-9 * math.Max(1, math.Abs(q))
		if r.min {
			return math.Ceil(q - tol)
		}
		return math.Floor(q + tol)
	}
	if r.card {
		var l float64
		if r.min {
			l = r.cmin * math.Max(0, round(z/r.cmax))
		} else {
			l = r.cmax * math.Max(0, round(z/r.cmin))
		}
		if r.betterBound(l, z) {
			z = l
		}
	}
	if r.g > 0 {
		if l := r.g * round(z/r.g); r.betterBound(l, z) {
			z = l
		}
	}
	return z
}

// betterBound reports whether a is a tighter bound than b (larger for
// minimization, smaller for maximization).
func (r objRounder) betterBound(a, b float64) bool {
	if r.min {
		return a > b
	}
	return a < b
}

// bbNode is one subproblem: the root LP plus a chain of bound tightenings.
type bbNode struct {
	bounds *boundChange
	bound  float64 // relaxation objective of the parent (optimistic)
	depth  int

	// snap is the parent's optimal basis snapshot (engine-specific:
	// *rxSnap or *basisSnap); both children share one immutable snapshot
	// and try a dual-simplex warm start from it before falling back to a
	// cold solve. nil at the root.
	snap any
	// fracStep is how far the branch moved the branched variable: the
	// down-fraction for an ub child, the up-fraction for an lb child.
	// Pseudocost updates divide the observed objective degradation by it.
	fracStep float64
}

// nodeQueue is a best-first priority queue. For minimization the smallest
// bound is most promising; for maximization the largest.
type nodeQueue struct {
	nodes []*bbNode
	min   bool
}

func (q nodeQueue) Len() int { return len(q.nodes) }
func (q nodeQueue) Less(i, j int) bool {
	a, b := q.nodes[i], q.nodes[j]
	if a.bound != b.bound {
		if q.min {
			return a.bound < b.bound
		}
		return a.bound > b.bound
	}
	// Equal bounds: deepest first (best-bound with plunging). Diving on
	// ties finds incumbents sooner, keeps the frontier small, and pops a
	// just-pushed child right after its parent — which is what lets the
	// dual-simplex dive path reuse the parent tableau still sitting in the
	// worker's scratch.
	return a.depth > b.depth
}
func (q nodeQueue) Swap(i, j int)       { q.nodes[i], q.nodes[j] = q.nodes[j], q.nodes[i] }
func (q *nodeQueue) Push(x interface{}) { q.nodes = append(q.nodes, x.(*bbNode)) }
func (q *nodeQueue) Pop() interface{} {
	old := q.nodes
	n := len(old)
	item := old[n-1]
	old[n-1] = nil // release the node (and its bound chain) to the GC
	q.nodes = old[:n-1]
	return item
}

// bbSearch is the shared state of one concurrent branch-and-bound run.
// The mutex guards everything below it; workers block on cond when the
// frontier is empty but siblings still have nodes in flight.
type bbSearch struct {
	m       *Model
	opts    Options
	min     bool
	workers int
	round   objRounder

	mu   sync.Mutex
	cond *sync.Cond

	queue    *nodeQueue
	inFlight int       // nodes popped but not yet fully processed
	active   []float64 // per-worker bound of the in-flight node (NaN = idle)
	nodes    int       // nodes expanded so far (LP relaxations solved)
	ramped   bool      // frontier has (or had) ≥ workers nodes; go wide

	incumbent *Solution // best integral solution; Values owned (copied)

	simplexIters int     // total pivots across all workers (incl. root solve)
	warmHits     int     // nodes resolved by a dual-simplex warm start
	lu           lpStats // basis health summed over root + worker engines
	npFixings    int     // node-presolve bound tightenings across all nodes

	// Pseudocost bookkeeping (nil slices unless Branching is pseudocost).
	// Guarded by mu like everything else: updates happen in processLocked
	// when a child's relaxation is reported, reads in selectBranchLocked.
	// pcDown* is the ub-tightened (floor) side, pcUp* the lb-raised (ceil)
	// side; the Tot* aggregates provide the reliability fallback for
	// variables with no observations of their own yet.
	pcDownSum, pcUpSum       []float64
	pcDownN, pcUpN           []int
	pcDownTotSum, pcUpTotSum float64
	pcDownTotN, pcUpTotN     int

	stop      bool    // some worker decided the search is over
	limitHit  bool    // MaxNodes exhausted before completion
	cancelled bool    // Options.Context cancelled
	gapStop   bool    // RelGap early stop
	stopBound float64 // proven bound at the early stop
}

func (m *Model) branchAndBound(opts Options) Solution {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	root := m.solveRelaxation(opts)
	if root.Status != Optimal {
		if root.Status == IterLimit && opts.Context != nil && opts.Context.Err() != nil {
			// The root LP was aborted by the caller's context, not a pivot
			// budget: report the same LimitReached a between-node
			// cancellation does, so MIP callers see one cancel status.
			root.Status = LimitReached
		}
		root.Workers = workers
		root.Branching = opts.Branching
		return root
	}

	s := &bbSearch{
		m:       m,
		opts:    opts,
		min:     m.sense == Minimize,
		workers: workers,
		round:   newObjRounder(m),
		queue:   &nodeQueue{min: m.sense == Minimize},
		active:  make([]float64, workers),
		// A single worker is always "ramped": the gate only matters when
		// there is someone to share the frontier with.
		ramped:       workers <= 1,
		simplexIters: root.SimplexIters,
		lu: lpStats{
			factorizations: root.Refactorizations,
			updates:        root.BasisUpdates,
			ftrans:         root.FTRANCount,
			btrans:         root.BTRANCount,
			peakFill:       root.PeakUFill,
			denseFallbacks: root.DenseFallbacks,
			boundFlips:     root.BoundFlips,
			weightResets:   root.WeightResets,
		},
	}
	if opts.Branching == BranchPseudocost {
		nv := len(m.vars)
		s.pcDownSum = make([]float64, nv)
		s.pcUpSum = make([]float64, nv)
		s.pcDownN = make([]int, nv)
		s.pcUpN = make([]int, nv)
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.active {
		s.active[i] = math.NaN()
	}
	heap.Push(s.queue, &bbNode{bound: s.round.lift(root.Objective)})

	if workers == 1 {
		s.worker(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func(id int) {
				defer wg.Done()
				s.worker(id)
			}(i)
		}
		wg.Wait()
	}
	return s.finish(workers)
}

// betterObj reports whether objective a improves on b.
func (s *bbSearch) betterObj(a, b float64) bool {
	if s.min {
		return a < b
	}
	return a > b
}

// globalBoundLocked returns the most optimistic bound over the candidate
// node, every in-flight node, and the head of the frontier: the proven
// bound on the true optimum at this instant. Requires s.mu held.
func (s *bbSearch) globalBoundLocked(candidate float64) float64 {
	best := candidate
	improve := func(b float64) {
		if math.IsNaN(b) {
			return
		}
		if math.IsNaN(best) || s.betterObj(b, best) {
			best = b
		}
	}
	for _, b := range s.active {
		improve(b)
	}
	if s.queue.Len() > 0 {
		improve(s.queue.nodes[0].bound)
	}
	return best
}

// worker is one branch-and-bound worker loop. It owns a private LP engine
// and pops nodes from the shared frontier until the search terminates.
func (s *bbSearch) worker(id int) {
	eng := newLPEngine(s.m, s.opts)
	ctx := s.opts.Context
	// tabOwner/tabBounds identify whose optimal state the engine currently
	// retains: the basis snapshot created from that solve and the bound
	// chain it was solved under. When the next popped node descends
	// directly from exactly that solve, solveDive re-optimizes the retained
	// state in place instead of rebuilding anything.
	var tabOwner any
	var tabBounds *boundChange
	var diveChanges []*boundChange
	var np *npState
	if !s.opts.NoNodePresolve {
		np = newNpState(s.m)
	}
	fellBack := 0 // dense fallbacks already logged for this worker
	s.mu.Lock()
	for {
		if s.stop {
			break
		}
		if s.queue.Len() == 0 {
			if s.inFlight == 0 {
				// Frontier exhausted with nothing in flight: done.
				s.stop = true
				s.cond.Broadcast()
				break
			}
			// Siblings may still push children; wait for them.
			s.cond.Wait()
			continue
		}
		if !s.ramped {
			// Ramp-up: near the root the frontier is tiny and several
			// workers hammering one or two nodes only buy lock contention
			// and duplicated bounding work. Stay effectively serial — one
			// node in flight at a time — until the frontier is wide enough
			// to feed every worker, then open up for good.
			if s.queue.Len() >= s.workers {
				s.ramped = true
			} else if s.inFlight > 0 {
				s.cond.Wait()
				continue
			}
		}
		if ctx != nil && ctx.Err() != nil {
			s.stop, s.cancelled = true, true
			s.stopBound = s.globalBoundLocked(math.NaN())
			s.cond.Broadcast()
			break
		}
		if s.nodes >= s.opts.MaxNodes {
			s.stop, s.limitHit = true, true
			s.stopBound = s.globalBoundLocked(math.NaN())
			s.cond.Broadcast()
			break
		}
		node := heap.Pop(s.queue).(*bbNode)
		hasInc := s.incumbent != nil
		incObj := 0.0
		if hasInc {
			incObj = s.incumbent.Objective
			if !s.betterObj(node.bound, incObj) {
				// Not better than the incumbent: discard. (Unlike the
				// sequential solver we cannot conclude the whole frontier
				// is pruned — an in-flight sibling may still improve the
				// incumbent — so just drop this node and keep looping.)
				continue
			}
			if relGap(incObj, s.globalBoundLocked(node.bound)) <= s.opts.RelGap {
				s.stop, s.gapStop = true, true
				s.stopBound = s.globalBoundLocked(node.bound)
				s.cond.Broadcast()
				break
			}
		}
		s.nodes++
		s.inFlight++
		s.active[id] = node.bound
		s.mu.Unlock()

		// Node presolve: push the node's branching decisions (and inherited
		// fixings) through the constraint activity bounds before solving.
		// Propagated tightenings extend the node's chain — the LP, the dive
		// path, and reduced-cost fixing all see them — and a chain proven
		// infeasible by propagation prunes the node with no LP solve at all.
		nFix := 0
		if np != nil && node.bounds != nil {
			extra, n, infeas := np.run(node.bounds)
			nFix = n
			if infeas {
				s.mu.Lock()
				s.inFlight--
				s.active[id] = math.NaN()
				s.npFixings += nFix
				s.processLocked(node, Solution{Status: Infeasible}, nil, node.bounds)
				s.cond.Broadcast()
				continue
			}
			node.bounds = extra
		}

		var sol Solution
		warm, dove := false, false
		iters := 0
		if !s.opts.NoWarmStart && node.snap != nil && node.snap == tabOwner {
			// Dive path: the engine still holds this node's parent's
			// optimal state. Collect the bound changes separating the node
			// from that solve (its branching plus any reduced-cost fixings)
			// and apply them in place, then repair with dual simplex — no
			// rebuild, no refactorization.
			diveChanges = diveChanges[:0]
			c := node.bounds
			for c != nil && c != tabBounds && len(diveChanges) < 64 {
				diveChanges = append(diveChanges, c)
				c = c.parent
			}
			if c == tabBounds && len(diveChanges) > 0 {
				ws, ok := eng.solveDive(diveChanges)
				iters += eng.pivots()
				dove = true
				if ok {
					sol, warm = ws, true
				}
			}
		}
		if !warm {
			eng.applyBounds(node.bounds)
			if !s.opts.NoWarmStart && node.snap != nil && !dove {
				ws, ok := eng.solveWarm(node.snap)
				iters += eng.pivots()
				if ok {
					sol, warm = ws, true
				}
			}
			if !warm {
				sol = eng.solveCold()
				iters += eng.pivots()
			}
		}
		// Snapshot the optimal basis outside the lock while the engine
		// still holds it — but only when this node will actually branch —
		// and tighten the children's bound chain with reduced-cost fixings
		// against the incumbent read at pop time (a stale incumbent is only
		// weaker, so the fixings stay valid).
		var snap any
		fixBase := node.bounds
		if sol.Status == Optimal && s.hasFracInt(sol.Values) {
			snap = eng.snapshot()
			if hasInc {
				fixBase = eng.fixings(sol.Objective, incObj, node.bounds)
			}
		}
		tabOwner, tabBounds = snap, fixBase

		s.mu.Lock()
		s.inFlight--
		s.active[id] = math.NaN()
		s.simplexIters += iters
		s.npFixings += nFix
		if warm {
			s.warmHits++
		}
		if fb := eng.stats().denseFallbacks; fb > fellBack {
			fellBack = fb
			if s.opts.Logf != nil {
				s.opts.Logf("solver: node LP fell back to the dense engine (%d on this worker)", fb)
			}
		}
		s.processLocked(node, sol, snap, fixBase)
		// Wake idle siblings: children may have been pushed, or this was
		// the last in-flight node and the frontier is now empty.
		s.cond.Broadcast()
	}
	s.lu.merge(eng.stats())
	s.mu.Unlock()
}

// hasFracInt reports whether any integer variable is fractional in values.
func (s *bbSearch) hasFracInt(values []float64) bool {
	for i, v := range s.m.vars {
		if !v.integer {
			continue
		}
		x := values[i]
		if math.Abs(x-math.Round(x)) > intTol {
			return true
		}
	}
	return false
}

// reducedCostFixings extends chain with bound tightenings justified by the
// node's optimal reduced costs. For any feasible point of this subtree,
// obj = z + Σ c̄_j·x_j over the stored (shifted, nonnegative) columns with
// every c̄_j ≥ 0 at optimality, so moving an integer variable t units off
// the bound it is nonbasic at costs at least t·c̄ — and once that exceeds
// the incumbent gap, those values cannot hold a better-or-tied solution
// and are tightened away. The 1e-6 relative margin keeps every solution
// within roundoff of the incumbent objective alive, so equal-objective
// optima — and with them the canonical lexicographic tie-break — survive.
// Reads the worker's own scratch right after its optimal solve; no lock.
func (m *Model) reducedCostFixings(sc *lpScratch, obj, inc float64, chain *boundChange) *boundChange {
	zMin, incMin := obj, inc
	if m.sense == Maximize {
		zMin, incMin = -obj, -inc
	}
	budget := incMin - zMin + 1e-6*math.Max(1, math.Abs(incMin))
	if budget < 0 {
		return chain
	}
	ur := len(m.cons) // rolling row index of the next finite-ub row
	for i := range m.vars {
		v := &m.vars[i]
		r := -1
		if !math.IsInf(sc.ub[i], 1) {
			r = ur
			ur++
		}
		if !v.integer || sc.negCol[i] >= 0 {
			continue
		}
		width := sc.ub[i] - sc.lb[i]
		if width < 1 {
			continue // no whole integer step left to exclude
		}
		// Down side: a positive reduced cost on the structural column means
		// the variable sits nonbasic at its lower bound; raising it t units
		// costs ≥ t·c̄.
		if cr := sc.cost[sc.col[i]]; cr > feasTol {
			if maxT := math.Floor(budget / cr); maxT < width {
				chain = &boundChange{parent: chain, v: VarID(i), upper: true, val: sc.lb[i] + maxT}
				width = maxT
			}
		}
		// Up side: a positive reduced cost on the ub row's slack means the
		// variable sits nonbasic at its upper bound; lowering it t units
		// costs ≥ t·c̄ of that slack.
		if r >= 0 && width >= 1 {
			if scol := sc.slackOf[r]; scol >= 0 {
				if cr := sc.cost[scol]; cr > feasTol {
					if maxT := math.Floor(budget / cr); maxT < width {
						chain = &boundChange{parent: chain, v: VarID(i), upper: false, val: sc.ub[i] - maxT}
					}
				}
			}
		}
	}
	return chain
}

// processLocked handles one solved relaxation: prune, record an incumbent,
// or branch. Requires s.mu held. sol.Values aliases the worker's scratch;
// snap is the node's own optimal basis and fixBase its bound chain
// extended with reduced-cost fixings (== node.bounds when there are none;
// both unused when the node does not branch).
func (s *bbSearch) processLocked(node *bbNode, sol Solution, snap any, fixBase *boundChange) {
	// Feed the pseudocosts before any pruning: the degradation this child
	// observed is real information about its branch variable either way.
	s.observePseudocostLocked(node, sol)
	if sol.Status == IterLimit {
		// The node LP ran out of pivots without an optimality certificate:
		// it can be neither pruned nor soundly branched (its bound is
		// unproven). Stop the search like a node-budget stop and report
		// LimitReached with the incumbent so far.
		if !s.stop {
			s.stop, s.limitHit = true, true
			s.stopBound = s.globalBoundLocked(node.bound)
		}
		return
	}
	if sol.Status != Optimal {
		return // infeasible subtree
	}
	// Lift the relaxation value onto the integral objective grid: the
	// subtree's true optimum is ≥ the lift (≤ for max), so prune and push
	// children against the lifted bound. This is what finally caps the
	// tied frontier on degenerate covering instances, where hundreds of
	// nodes share a fractional bound strictly below — but a lifted bound
	// exactly at — the incumbent objective.
	lifted := s.round.lift(sol.Objective)
	if s.incumbent != nil && !s.betterObj(lifted, s.incumbent.Objective) {
		return
	}
	branchVar := s.selectBranchLocked(sol.Values)
	if branchVar < 0 {
		// Integral: candidate incumbent. Snap values to exact integers,
		// copy them out of the worker scratch, and recompute the objective
		// from the snapped values — for integer-coefficient models this
		// makes the incumbent objective exact, hence bit-identical across
		// branching rules, worker counts, and warm/cold solve paths.
		values := append([]float64(nil), sol.Values...)
		obj := 0.0
		for i, v := range s.m.vars {
			if v.integer {
				values[i] = math.Round(values[i])
			}
			obj += v.obj * values[i]
		}
		sol.Values = values
		sol.Objective = obj
		if s.acceptIncumbentLocked(sol) && s.opts.Logf != nil {
			s.opts.Logf("solver: incumbent %.6g at node %d", sol.Objective, s.nodes)
		}
		return
	}
	// Branch: two children sharing the parent chain (plus this node's
	// reduced-cost fixings) copy-on-branch, and the parent's basis
	// snapshot for their warm starts.
	x := sol.Values[branchVar]
	heap.Push(s.queue, &bbNode{
		bounds:   &boundChange{parent: fixBase, v: branchVar, upper: true, val: math.Floor(x)},
		bound:    lifted,
		depth:    node.depth + 1,
		snap:     snap,
		fracStep: x - math.Floor(x),
	})
	heap.Push(s.queue, &bbNode{
		bounds:   &boundChange{parent: fixBase, v: branchVar, upper: false, val: math.Ceil(x)},
		bound:    lifted,
		depth:    node.depth + 1,
		snap:     snap,
		fracStep: math.Ceil(x) - x,
	})
}

// observePseudocostLocked records the objective degradation this node's
// relaxation exhibited relative to its parent's bound, attributed to the
// branching that created the node. An infeasible child is the extreme
// degradation — its branch killed the subproblem outright — and is
// recorded as an observation an order of magnitude above the tree-wide
// average, so variables whose branchings cause infeasibility score high
// and get branched early. On degenerate instances where every feasible
// child ties its parent's bound, this is the only pseudocost signal there
// is. Requires s.mu held.
func (s *bbSearch) observePseudocostLocked(node *bbNode, sol Solution) {
	if s.pcDownSum == nil || node.bounds == nil || node.fracStep <= intTol {
		return
	}
	var per float64
	switch sol.Status {
	case Optimal:
		degr := sol.Objective - node.bound
		if !s.min {
			degr = node.bound - sol.Objective
		}
		if degr < 0 {
			degr = 0 // roundoff: a child cannot beat its parent's bound
		}
		per = degr / node.fracStep
	case Infeasible:
		n := s.pcDownTotN + s.pcUpTotN
		avg := 0.0
		if n > 0 {
			avg = (s.pcDownTotSum + s.pcUpTotSum) / float64(n)
		}
		per = 10 * (1 + avg)
	default:
		return // limit/unbounded: no usable information
	}
	v := node.bounds.v
	if node.bounds.upper {
		s.pcDownSum[v] += per
		s.pcDownN[v]++
		s.pcDownTotSum += per
		s.pcDownTotN++
	} else {
		s.pcUpSum[v] += per
		s.pcUpN[v]++
		s.pcUpTotSum += per
		s.pcUpTotN++
	}
}

// pcEst is the reliability-initialized pseudocost estimate for variable i
// on one side: its own average once it has an observation, else the
// tree-wide average for that side, else 1 (which degenerates the score to
// plain fractionality until any branching has been observed at all).
func pcEst(sum []float64, n []int, totSum float64, totN int, i int) float64 {
	if n[i] > 0 {
		return sum[i] / float64(n[i])
	}
	if totN > 0 {
		return totSum / float64(totN)
	}
	return 1
}

// selectBranchLocked picks the integer variable to branch on, or -1 when
// the point is integral. Requires s.mu held (pseudocost reads).
func (s *bbSearch) selectBranchLocked(values []float64) VarID {
	if s.pcDownSum == nil {
		// Most-fractional rule.
		branchVar := VarID(-1)
		worstFrac := intTol
		for i, v := range s.m.vars {
			if !v.integer {
				continue
			}
			x := values[i]
			frac := math.Abs(x - math.Round(x))
			if frac > worstFrac {
				worstFrac = frac
				branchVar = VarID(i)
			}
		}
		return branchVar
	}
	// Pseudocost product score. The 1e-6 floor is applied to each side's
	// estimate, not to the estimate·fractionality product: on heavily
	// degenerate instances every observed degradation is 0, and flooring
	// the product would collapse all scores to one constant — turning the
	// rule into lowest-index branching. Flooring the estimates keeps the
	// score proportional to fDown·fUp, so a zero-information pseudocost
	// rule degenerates to most-fractional instead. Strict > keeps the
	// first index on ties, making the pick deterministic given the same
	// bookkeeping state.
	best := VarID(-1)
	bestScore := -1.0
	for i, v := range s.m.vars {
		if !v.integer {
			continue
		}
		x := values[i]
		fDown := x - math.Floor(x)
		fUp := math.Ceil(x) - x
		if fDown < intTol || fUp < intTol {
			continue // integral within tolerance
		}
		down := pcEst(s.pcDownSum, s.pcDownN, s.pcDownTotSum, s.pcDownTotN, i)
		up := pcEst(s.pcUpSum, s.pcUpN, s.pcUpTotSum, s.pcUpTotN, i)
		score := math.Max(down, 1e-6) * fDown * math.Max(up, 1e-6) * fUp
		if score > bestScore {
			bestScore = score
			best = VarID(i)
		}
	}
	return best
}

// acceptIncumbentLocked installs sol as the incumbent if it is strictly
// better, or if it ties the current objective and is canonically smaller
// (lexicographically smaller Values). The tie-break makes the reported
// Values independent of which worker finds an equal-objective solution
// first. Requires s.mu held; sol.Values must be owned by sol.
func (s *bbSearch) acceptIncumbentLocked(sol Solution) bool {
	if s.incumbent != nil {
		if !s.betterObj(sol.Objective, s.incumbent.Objective) {
			if !objEqual(sol.Objective, s.incumbent.Objective) || !lexLess(sol.Values, s.incumbent.Values) {
				return false
			}
		}
	}
	s.incumbent = &sol
	return true
}

// objEqual reports whether two objective values tie within relative
// tolerance (the canonical-tie-break window).
func objEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// lexLess reports whether a precedes b lexicographically.
func lexLess(a, b []float64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// finish assembles the Solution after all workers have returned.
func (s *bbSearch) finish(workers int) Solution {
	var out Solution
	switch {
	case s.cancelled || s.limitHit:
		if s.incumbent == nil {
			out = Solution{Status: LimitReached}
		} else {
			out = *s.incumbent
			out.Status = LimitReached
			if !math.IsNaN(s.stopBound) {
				out.Gap = relGap(out.Objective, s.stopBound)
			} else {
				// Frontier and in-flight set were both empty at the stop:
				// the incumbent bound is all that remains.
				out.Gap = 0
			}
		}
	case s.gapStop:
		out = *s.incumbent
		out.Gap = relGap(out.Objective, s.stopBound)
		if out.Gap <= intTol {
			out.Status = Optimal
		} else {
			out.Status = GapLimit
		}
	default:
		// Frontier exhausted (including pruned-to-empty): optimality is
		// proven, or the model is integer-infeasible.
		if s.incumbent == nil {
			out = Solution{Status: Infeasible}
		} else {
			out = *s.incumbent
			out.Status = Optimal
			out.Gap = 0
		}
	}
	out.Nodes = s.nodes
	out.Workers = workers
	out.SimplexIters = s.simplexIters
	out.WarmStartHits = s.warmHits
	out.Branching = s.opts.Branching
	out.Pricing = s.opts.EffectivePricing()
	s.lu.addTo(&out)
	out.NodePresolveFixings = s.npFixings
	return out
}

// relGap is the relative distance between the incumbent objective and the
// proven bound.
func relGap(obj, bound float64) float64 {
	return math.Abs(obj-bound) / math.Max(1, math.Abs(obj))
}
