package solver

import (
	"container/heap"
	"math"
)

// intTol is the tolerance under which a relaxation value counts as integral.
const intTol = 1e-6

// Solve solves the model exactly: as an LP when it has no integer
// variables, otherwise with LP-relaxation branch-and-bound.
func (m *Model) Solve() Solution {
	return m.SolveWithOptions(Options{})
}

// SolveWithOptions solves with explicit search limits.
func (m *Model) SolveWithOptions(opts Options) Solution {
	opts = opts.withDefaults()
	hasInt := false
	for _, v := range m.vars {
		if v.integer {
			hasInt = true
			break
		}
	}
	if !hasInt {
		return m.SolveLP()
	}
	return m.branchAndBound(opts)
}

// bbNode is one subproblem: the root LP plus bound tightenings.
type bbNode struct {
	lb, ub map[VarID]float64
	bound  float64 // relaxation objective (optimistic)
	depth  int
}

// nodeQueue is a best-first priority queue. For minimization the smallest
// bound is most promising; for maximization the largest.
type nodeQueue struct {
	nodes []*bbNode
	min   bool
}

func (q nodeQueue) Len() int { return len(q.nodes) }
func (q nodeQueue) Less(i, j int) bool {
	if q.min {
		return q.nodes[i].bound < q.nodes[j].bound
	}
	return q.nodes[i].bound > q.nodes[j].bound
}
func (q nodeQueue) Swap(i, j int)       { q.nodes[i], q.nodes[j] = q.nodes[j], q.nodes[i] }
func (q *nodeQueue) Push(x interface{}) { q.nodes = append(q.nodes, x.(*bbNode)) }
func (q *nodeQueue) Pop() interface{} {
	old := q.nodes
	n := len(old)
	item := old[n-1]
	q.nodes = old[:n-1]
	return item
}

func (m *Model) branchAndBound(opts Options) Solution {
	minimize := m.sense == Minimize
	betterObj := func(a, b float64) bool {
		if minimize {
			return a < b
		}
		return a > b
	}

	root := m.solveLPWithBounds(nil, nil)
	if root.Status != Optimal {
		return root
	}

	var incumbent *Solution
	queue := &nodeQueue{min: minimize}
	heap.Push(queue, &bbNode{bound: root.Objective})
	nodes := 0
	bestBound := root.Objective
	// provenOptimal distinguishes the two early exits below: pruning
	// against the incumbent proves optimality, while the RelGap stop
	// only proves the incumbent is within the requested gap.
	provenOptimal := true

	for queue.Len() > 0 {
		if nodes >= opts.MaxNodes {
			if incumbent != nil {
				incumbent.Status = LimitReached
				incumbent.Nodes = nodes
				incumbent.Gap = relGap(incumbent.Objective, bestBound)
				return *incumbent
			}
			return Solution{Status: LimitReached, Nodes: nodes}
		}
		node := heap.Pop(queue).(*bbNode)
		bestBound = node.bound
		// Prune against the incumbent.
		if incumbent != nil {
			if !betterObj(node.bound, incumbent.Objective) {
				// Best-first order: every remaining node is no better,
				// so the incumbent is optimal.
				bestBound = incumbent.Objective
				break
			}
			if relGap(incumbent.Objective, node.bound) <= opts.RelGap {
				provenOptimal = false
				break
			}
		}
		nodes++
		sol := m.solveLPWithBounds(node.lb, node.ub)
		if sol.Status != Optimal {
			continue // infeasible subtree
		}
		if incumbent != nil && !betterObj(sol.Objective, incumbent.Objective) {
			continue
		}
		// Find the most fractional integer variable.
		branchVar := VarID(-1)
		worstFrac := intTol
		for i, v := range m.vars {
			if !v.integer {
				continue
			}
			x := sol.Values[i]
			frac := math.Abs(x - math.Round(x))
			if frac > worstFrac {
				worstFrac = frac
				branchVar = VarID(i)
			}
		}
		if branchVar < 0 {
			// Integral: new incumbent. Snap values to exact integers.
			for i, v := range m.vars {
				if v.integer {
					sol.Values[i] = math.Round(sol.Values[i])
				}
			}
			s := sol
			incumbent = &s
			if opts.Logf != nil {
				opts.Logf("solver: incumbent %.6g at node %d (bound %.6g)", s.Objective, nodes, bestBound)
			}
			continue
		}
		// Branch.
		x := sol.Values[branchVar]
		down := &bbNode{
			lb:    copyBounds(node.lb),
			ub:    copyBounds(node.ub),
			bound: sol.Objective,
			depth: node.depth + 1,
		}
		down.ub[branchVar] = math.Floor(x)
		up := &bbNode{
			lb:    copyBounds(node.lb),
			ub:    copyBounds(node.ub),
			bound: sol.Objective,
			depth: node.depth + 1,
		}
		up.lb[branchVar] = math.Ceil(x)
		heap.Push(queue, down)
		heap.Push(queue, up)
	}

	if incumbent == nil {
		return Solution{Status: Infeasible, Nodes: nodes}
	}
	incumbent.Nodes = nodes
	if provenOptimal {
		// Queue exhausted or every remaining bound no better than the
		// incumbent: optimality is proven regardless of bestBound.
		incumbent.Gap = 0
		incumbent.Status = Optimal
	} else {
		// RelGap stop: bestBound (the last popped, most promising bound)
		// is all the search proved.
		incumbent.Gap = relGap(incumbent.Objective, bestBound)
		if incumbent.Gap <= intTol {
			incumbent.Status = Optimal
		} else {
			incumbent.Status = GapLimit
		}
	}
	return *incumbent
}

func copyBounds(b map[VarID]float64) map[VarID]float64 {
	out := make(map[VarID]float64, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// relGap is the relative distance between the incumbent objective and the
// proven bound.
func relGap(obj, bound float64) float64 {
	return math.Abs(obj-bound) / math.Max(1, math.Abs(obj))
}
