package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds:
//
//	A --1(100)-- B --3(100)-- D
//	A --2(150)-- C --4(150)-- D
//	B --5(50)--- C
func diamond(t *testing.T) *Optical {
	t.Helper()
	g := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddFiber("1", "A", "B", 100))
	must(g.AddFiber("2", "A", "C", 150))
	must(g.AddFiber("3", "B", "D", 100))
	must(g.AddFiber("4", "C", "D", 150))
	must(g.AddFiber("5", "B", "C", 50))
	return g
}

func TestAddFiberValidation(t *testing.T) {
	g := New()
	if err := g.AddFiber("", "A", "B", 10); err == nil {
		t.Error("empty fiber ID accepted")
	}
	if err := g.AddFiber("x", "A", "A", 10); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddFiber("x", "A", "B", 0); err == nil {
		t.Error("zero length accepted")
	}
	if err := g.AddFiber("x", "A", "B", 10); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFiber("x", "B", "C", 10); err == nil {
		t.Error("duplicate fiber ID accepted")
	}
	if g.NumNodes() != 2 || g.NumFibers() != 1 {
		t.Errorf("graph has %d nodes, %d fibers; want 2, 1", g.NumNodes(), g.NumFibers())
	}
}

func TestFiberOther(t *testing.T) {
	f := Fiber{ID: "1", A: "X", B: "Y"}
	if n, ok := f.Other("X"); !ok || n != "Y" {
		t.Errorf("Other(X) = %v, %v", n, ok)
	}
	if n, ok := f.Other("Y"); !ok || n != "X" {
		t.Errorf("Other(Y) = %v, %v", n, ok)
	}
	if _, ok := f.Other("Z"); ok {
		t.Error("Other(Z) should fail")
	}
}

func TestShortestPath(t *testing.T) {
	g := diamond(t)
	p, ok := g.ShortestPath("A", "D")
	if !ok {
		t.Fatal("no path A→D")
	}
	if p.LengthKm != 200 {
		t.Errorf("shortest A→D = %v km, want 200", p.LengthKm)
	}
	wantFibers := []string{"1", "3"}
	for i, f := range wantFibers {
		if p.Fibers[i] != f {
			t.Errorf("fiber %d = %s, want %s", i, p.Fibers[i], f)
		}
	}
	if p.Src() != "A" || p.Dst() != "D" || p.Hops() != 2 {
		t.Errorf("path endpoints/hops wrong: %v", p)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := diamond(t)
	p, ok := g.ShortestPath("A", "A")
	if !ok || p.LengthKm != 0 || p.Hops() != 0 {
		t.Errorf("self path = %v, %v", p, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := diamond(t)
	g.AddNode("Z")
	if _, ok := g.ShortestPath("A", "Z"); ok {
		t.Error("path to isolated node found")
	}
	if _, ok := g.ShortestPath("A", "missing"); ok {
		t.Error("path to missing node found")
	}
}

func TestParallelFibers(t *testing.T) {
	g := New()
	if err := g.AddFiber("long", "A", "B", 200); err != nil {
		t.Fatal(err)
	}
	if err := g.AddFiber("short", "A", "B", 100); err != nil {
		t.Fatal(err)
	}
	p, ok := g.ShortestPath("A", "B")
	if !ok || p.LengthKm != 100 || p.Fibers[0] != "short" {
		t.Errorf("multigraph shortest = %v (fibers %v)", p, p.Fibers)
	}
	// KSP must see both parallel fibers as distinct paths.
	paths := g.KShortestPaths("A", "B", 3)
	if len(paths) != 2 {
		t.Fatalf("KSP over parallel fibers = %d paths, want 2", len(paths))
	}
	if paths[0].Fibers[0] != "short" || paths[1].Fibers[0] != "long" {
		t.Errorf("KSP order wrong: %v", paths)
	}
}

func TestKShortestPathsDiamond(t *testing.T) {
	g := diamond(t)
	paths := g.KShortestPaths("A", "D", 4)
	if len(paths) != 4 {
		t.Fatalf("got %d paths, want 4", len(paths))
	}
	wantLens := []float64{200, 300, 300, 300}
	for i, p := range paths {
		if p.LengthKm != wantLens[i] {
			t.Errorf("path %d length = %v, want %v (%v)", i, p.LengthKm, wantLens[i], p)
		}
		// Loopless check.
		seen := map[NodeID]bool{}
		for _, n := range p.Nodes {
			if seen[n] {
				t.Errorf("path %d revisits node %s", i, n)
			}
			seen[n] = true
		}
	}
	// All paths distinct.
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if paths[i].Equal(paths[j]) {
				t.Errorf("paths %d and %d identical", i, j)
			}
		}
	}
}

func TestKShortestPathsEdges(t *testing.T) {
	g := diamond(t)
	if got := g.KShortestPaths("A", "D", 0); got != nil {
		t.Error("k=0 returned paths")
	}
	if got := g.KShortestPaths("A", "missing", 3); got != nil {
		t.Error("missing dst returned paths")
	}
	// Request more paths than exist.
	paths := g.KShortestPaths("A", "D", 100)
	if len(paths) == 0 || len(paths) > 10 {
		t.Errorf("k=100 returned %d paths", len(paths))
	}
}

func TestWithout(t *testing.T) {
	g := diamond(t)
	cut := g.Without("1")
	if cut.NumFibers() != 4 {
		t.Errorf("Without left %d fibers, want 4", cut.NumFibers())
	}
	p, ok := cut.ShortestPath("A", "D")
	if !ok {
		t.Fatal("no restoration path after cut")
	}
	if p.LengthKm != 300 {
		// A-C(150)-D(150) or A-C-B-D = 150+50+100 = 300; both length 300.
		t.Errorf("post-cut shortest = %v km, want 300", p.LengthKm)
	}
	// Original untouched.
	if g.NumFibers() != 5 {
		t.Errorf("Without mutated the original: %d fibers", g.NumFibers())
	}
	// Cutting everything disconnects.
	iso := g.Without("1", "2")
	if _, ok := iso.ShortestPath("A", "D"); ok {
		t.Error("path found after cutting all fibers out of A")
	}
}

func TestDiameter(t *testing.T) {
	g := diamond(t)
	if d := g.Diameter(); d != 200 {
		t.Errorf("diameter = %v, want 200 (A↔D)", d)
	}
	g.AddNode("isolated")
	if d := g.Diameter(); !math.IsInf(d, 1) {
		t.Errorf("diameter of disconnected graph = %v, want +Inf", d)
	}
}

func TestIPTopology(t *testing.T) {
	var ip IPTopology
	if err := ip.AddLink(IPLink{ID: "e1", A: "A", B: "B", DemandGbps: 400}); err != nil {
		t.Fatal(err)
	}
	if err := ip.AddLink(IPLink{ID: "e1", A: "A", B: "C", DemandGbps: 100}); err == nil {
		t.Error("duplicate link ID accepted")
	}
	if err := ip.AddLink(IPLink{ID: "e2", A: "A", B: "A", DemandGbps: 100}); err == nil {
		t.Error("self-loop accepted")
	}
	if err := ip.AddLink(IPLink{ID: "e3", A: "A", B: "C", DemandGbps: 0}); err == nil {
		t.Error("zero demand accepted")
	}
	if err := ip.AddLink(IPLink{ID: "", A: "A", B: "C", DemandGbps: 5}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := ip.AddLink(IPLink{ID: "e4", A: "B", B: "C", DemandGbps: 600}); err != nil {
		t.Fatal(err)
	}
	if got := ip.TotalDemandGbps(); got != 1000 {
		t.Errorf("total demand = %d, want 1000", got)
	}
	scaled := ip.Scale(2.5)
	if got := scaled.TotalDemandGbps(); got != 2500 {
		t.Errorf("scaled demand = %d, want 2500", got)
	}
	if ip.TotalDemandGbps() != 1000 {
		t.Error("Scale mutated the original")
	}
}

// randomGraph builds a connected random graph: a ring plus chords.
func randomGraph(rng *rand.Rand, n int) *Optical {
	g := New()
	id := 0
	addFiber := func(a, b NodeID, l float64) {
		id++
		_ = g.AddFiber(nodeName(id), a, b, l)
	}
	names := make([]NodeID, n)
	for i := range names {
		names[i] = NodeID(rune('A' + i))
	}
	for i := 0; i < n; i++ {
		addFiber(names[i], names[(i+1)%n], 50+rng.Float64()*500)
	}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			addFiber(names[a], names[b], 50+rng.Float64()*500)
		}
	}
	return g
}

func nodeName(i int) string {
	return "f" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// Property: Yen's paths are sorted by length, loopless, distinct, start
// and end correctly, and the first equals Dijkstra's answer.
func TestKSPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(5)
		g := randomGraph(rng, n)
		src, dst := NodeID('A'), NodeID(rune('A'+n-1))
		paths := g.KShortestPaths(src, dst, 5)
		if len(paths) == 0 {
			return false // ring guarantees connectivity
		}
		sp, _ := g.ShortestPath(src, dst)
		if math.Abs(paths[0].LengthKm-sp.LengthKm) > 1e-9 {
			return false
		}
		for i, p := range paths {
			if p.Src() != src || p.Dst() != dst {
				return false
			}
			if i > 0 && p.LengthKm < paths[i-1].LengthKm-1e-9 {
				return false
			}
			seen := map[NodeID]bool{}
			for _, nd := range p.Nodes {
				if seen[nd] {
					return false
				}
				seen[nd] = true
			}
			// Fiber sequence must connect the node sequence.
			total := 0.0
			for h, fid := range p.Fibers {
				fb, ok := g.Fiber(fid)
				if !ok {
					return false
				}
				next, ok := fb.Other(p.Nodes[h])
				if !ok || next != p.Nodes[h+1] {
					return false
				}
				total += fb.LengthKm
			}
			if math.Abs(total-p.LengthKm) > 1e-6 {
				return false
			}
			for j := i + 1; j < len(paths); j++ {
				if p.Equal(paths[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: removing a fiber never shortens a shortest path.
func TestWithoutMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 6)
		fibers := g.Fibers()
		cut := fibers[rng.Intn(len(fibers))].ID
		h := g.Without(cut)
		before, okB := g.ShortestPath("A", "F")
		after, okA := h.ShortestPath("A", "F")
		if !okB {
			return false
		}
		if !okA {
			return true // disconnection is a valid outcome
		}
		return after.LengthKm >= before.LengthKm-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
