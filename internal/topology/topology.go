// Package topology models the two layers of a WAN backbone: the optical
// topology (ROADM sites connected by fiber segments) and the IP topology
// (router pairs with bandwidth-capacity demands riding on optical paths).
//
// Algorithm 1 of the FlexWAN paper takes both graphs as input and
// pre-computes, per IP link, the K shortest optical paths (§5, "we use K
// shortest path (KSP) algorithm to find the K optimal optical paths").
// This package provides those primitives: an undirected multigraph with
// fiber lengths, Dijkstra shortest paths, and Yen's loopless K shortest
// paths, plus failure projection (removing cut fibers) for the
// restoration algorithm (§8).
package topology

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// NodeID names a ROADM site (equivalently a region; the paper maps each
// IP node to the region's optical site).
type NodeID string

// Fiber is one fiber segment between two ROADM sites. Fibers are
// undirected: a wavelength can be added/dropped in either direction.
type Fiber struct {
	ID       string
	A, B     NodeID
	LengthKm float64
}

// Other returns the far end of the fiber from n, and false if n is not an
// endpoint.
func (f Fiber) Other(n NodeID) (NodeID, bool) {
	switch n {
	case f.A:
		return f.B, true
	case f.B:
		return f.A, true
	default:
		return "", false
	}
}

// Optical is the optical-layer topology G_o(V_o, E_o): ROADMs and fibers.
// It is a multigraph — parallel fibers between the same sites are common
// in production. The zero value is empty and ready to use via New.
type Optical struct {
	nodes  map[NodeID]struct{}
	fibers map[string]Fiber
	adj    map[NodeID][]string // node → incident fiber IDs, insertion order
}

// New returns an empty optical topology.
func New() *Optical {
	return &Optical{
		nodes:  make(map[NodeID]struct{}),
		fibers: make(map[string]Fiber),
		adj:    make(map[NodeID][]string),
	}
}

// AddNode inserts a ROADM site. Adding an existing node is a no-op.
func (g *Optical) AddNode(id NodeID) {
	g.nodes[id] = struct{}{}
}

// HasNode reports whether the site exists.
func (g *Optical) HasNode(id NodeID) bool {
	_, ok := g.nodes[id]
	return ok
}

// AddFiber inserts a fiber segment, creating endpoints as needed.
func (g *Optical) AddFiber(id string, a, b NodeID, lengthKm float64) error {
	if id == "" {
		return fmt.Errorf("topology: empty fiber ID")
	}
	if a == b {
		return fmt.Errorf("topology: fiber %s is a self-loop at %s", id, a)
	}
	if lengthKm <= 0 {
		return fmt.Errorf("topology: fiber %s has nonpositive length %v", id, lengthKm)
	}
	if _, dup := g.fibers[id]; dup {
		return fmt.Errorf("topology: duplicate fiber ID %s", id)
	}
	g.AddNode(a)
	g.AddNode(b)
	g.fibers[id] = Fiber{ID: id, A: a, B: b, LengthKm: lengthKm}
	g.adj[a] = append(g.adj[a], id)
	g.adj[b] = append(g.adj[b], id)
	return nil
}

// Fiber returns the fiber with the given ID.
func (g *Optical) Fiber(id string) (Fiber, bool) {
	f, ok := g.fibers[id]
	return f, ok
}

// Nodes returns all sites in sorted order.
func (g *Optical) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fibers returns all fibers sorted by ID.
func (g *Optical) Fibers() []Fiber {
	out := make([]Fiber, 0, len(g.fibers))
	for _, f := range g.fibers {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumNodes returns the site count.
func (g *Optical) NumNodes() int { return len(g.nodes) }

// NumFibers returns the fiber count.
func (g *Optical) NumFibers() int { return len(g.fibers) }

// Without returns a copy of the topology with the given fibers removed —
// the post-failure topology G'_o of a fiber-cut scenario (§8).
func (g *Optical) Without(cut ...string) *Optical {
	cutSet := make(map[string]struct{}, len(cut))
	for _, id := range cut {
		cutSet[id] = struct{}{}
	}
	out := New()
	for n := range g.nodes {
		out.AddNode(n)
	}
	// Preserve insertion order of adjacency for determinism.
	seen := make(map[string]struct{})
	for _, n := range g.Nodes() {
		for _, fid := range g.adj[n] {
			if _, isCut := cutSet[fid]; isCut {
				continue
			}
			if _, dup := seen[fid]; dup {
				continue
			}
			seen[fid] = struct{}{}
			f := g.fibers[fid]
			if err := out.AddFiber(f.ID, f.A, f.B, f.LengthKm); err != nil {
				// Cannot happen: we copy validated fibers exactly once.
				panic(err)
			}
		}
	}
	return out
}

// Path is a loopless walk through the optical topology: the node sequence
// and the fiber chosen for each hop. LengthKm is the total fiber length —
// the transmission distance that the optical reach must cover.
type Path struct {
	Nodes    []NodeID
	Fibers   []string
	LengthKm float64
}

// Src returns the first node of the path.
func (p Path) Src() NodeID { return p.Nodes[0] }

// Dst returns the last node of the path.
func (p Path) Dst() NodeID { return p.Nodes[len(p.Nodes)-1] }

// Hops returns the number of fiber segments.
func (p Path) Hops() int { return len(p.Fibers) }

// Equal reports whether two paths use the identical fiber sequence.
func (p Path) Equal(q Path) bool {
	if len(p.Fibers) != len(q.Fibers) {
		return false
	}
	for i := range p.Fibers {
		if p.Fibers[i] != q.Fibers[i] {
			return false
		}
	}
	return true
}

func (p Path) String() string {
	return fmt.Sprintf("%v (%.0f km)", p.Nodes, p.LengthKm)
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// ShortestPath runs Dijkstra from src to dst over fiber lengths. The
// second return is false when dst is unreachable. Ties are broken
// deterministically by fiber ID.
func (g *Optical) ShortestPath(src, dst NodeID) (Path, bool) {
	return g.shortestPathAvoiding(src, dst, nil, nil)
}

// shortestPathAvoiding is Dijkstra with banned fibers and banned nodes —
// the spur computation Yen's algorithm needs.
func (g *Optical) shortestPathAvoiding(src, dst NodeID, bannedFibers map[string]struct{}, bannedNodes map[NodeID]struct{}) (Path, bool) {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return Path{}, false
	}
	if src == dst {
		return Path{Nodes: []NodeID{src}}, true
	}
	dist := map[NodeID]float64{src: 0}
	prevFiber := map[NodeID]string{}
	prevNode := map[NodeID]NodeID{}
	done := map[NodeID]struct{}{}
	frontier := &pq{{node: src, dist: 0}}
	for frontier.Len() > 0 {
		cur := heap.Pop(frontier).(pqItem)
		if _, ok := done[cur.node]; ok {
			continue
		}
		done[cur.node] = struct{}{}
		if cur.node == dst {
			break
		}
		for _, fid := range g.adj[cur.node] {
			if bannedFibers != nil {
				if _, banned := bannedFibers[fid]; banned {
					continue
				}
			}
			f := g.fibers[fid]
			next, _ := f.Other(cur.node)
			if bannedNodes != nil {
				if _, banned := bannedNodes[next]; banned {
					continue
				}
			}
			nd := cur.dist + f.LengthKm
			old, seen := dist[next]
			// Deterministic tie-break: keep the lexicographically
			// smaller predecessor fiber on exact ties.
			if !seen || nd < old || (nd == old && fid < prevFiber[next]) {
				dist[next] = nd
				prevFiber[next] = fid
				prevNode[next] = cur.node
				heap.Push(frontier, pqItem{node: next, dist: nd})
			}
		}
	}
	if _, ok := done[dst]; !ok {
		return Path{}, false
	}
	// Reconstruct.
	var nodes []NodeID
	var fibers []string
	for n := dst; n != src; n = prevNode[n] {
		nodes = append(nodes, n)
		fibers = append(fibers, prevFiber[n])
	}
	nodes = append(nodes, src)
	reverseNodes(nodes)
	reverseStrings(fibers)
	return Path{Nodes: nodes, Fibers: fibers, LengthKm: dist[dst]}, true
}

func reverseNodes(s []NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseStrings(s []string) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// KShortestPaths returns up to k loopless shortest paths from src to dst
// in nondecreasing length order (Yen's algorithm). Fewer than k paths are
// returned when the graph does not contain k distinct loopless paths.
func (g *Optical) KShortestPaths(src, dst NodeID, k int) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := g.ShortestPath(src, dst)
	if !ok {
		return nil
	}
	paths := []Path{first}
	// Candidate pool, deduplicated by fiber sequence.
	var candidates []Path
	seen := map[string]struct{}{pathKey(first): {}}

	for len(paths) < k {
		last := paths[len(paths)-1]
		// Each node of the previous path except the terminal is a
		// potential spur node.
		for i := 0; i < len(last.Nodes)-1; i++ {
			spur := last.Nodes[i]
			rootNodes := last.Nodes[:i+1]
			rootFibers := last.Fibers[:i]
			rootLen := 0.0
			for _, fid := range rootFibers {
				rootLen += g.fibers[fid].LengthKm
			}
			// Ban the next fiber of every accepted path sharing this root.
			bannedFibers := make(map[string]struct{})
			for _, p := range paths {
				if len(p.Fibers) > i && sameRoot(p, rootNodes, rootFibers) {
					bannedFibers[p.Fibers[i]] = struct{}{}
				}
			}
			// Ban root nodes (except the spur) to keep paths loopless.
			bannedNodes := make(map[NodeID]struct{})
			for _, n := range rootNodes[:i] {
				bannedNodes[n] = struct{}{}
			}
			spurPath, ok := g.shortestPathAvoiding(spur, dst, bannedFibers, bannedNodes)
			if !ok {
				continue
			}
			total := Path{
				Nodes:    append(append([]NodeID{}, rootNodes...), spurPath.Nodes[1:]...),
				Fibers:   append(append([]string{}, rootFibers...), spurPath.Fibers...),
				LengthKm: rootLen + spurPath.LengthKm,
			}
			key := pathKey(total)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			candidates = append(candidates, total)
		}
		if len(candidates) == 0 {
			break
		}
		// Take the shortest candidate (stable tie-break by fiber key).
		sort.Slice(candidates, func(i, j int) bool {
			if candidates[i].LengthKm != candidates[j].LengthKm {
				return candidates[i].LengthKm < candidates[j].LengthKm
			}
			return pathKey(candidates[i]) < pathKey(candidates[j])
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func sameRoot(p Path, rootNodes []NodeID, rootFibers []string) bool {
	if len(p.Nodes) < len(rootNodes) || len(p.Fibers) < len(rootFibers) {
		return false
	}
	for i, n := range rootNodes {
		if p.Nodes[i] != n {
			return false
		}
	}
	for i, f := range rootFibers {
		if p.Fibers[i] != f {
			return false
		}
	}
	return true
}

func pathKey(p Path) string {
	key := ""
	for _, f := range p.Fibers {
		key += f + "|"
	}
	return key
}

// Diameter returns the longest shortest-path distance between any two
// sites, or +Inf if the graph is disconnected. Useful for sanity checks
// on generated topologies.
func (g *Optical) Diameter() float64 {
	nodes := g.Nodes()
	worst := 0.0
	for i, a := range nodes {
		for _, b := range nodes[i+1:] {
			p, ok := g.ShortestPath(a, b)
			if !ok {
				return math.Inf(1)
			}
			if p.LengthKm > worst {
				worst = p.LengthKm
			}
		}
	}
	return worst
}

// IPLink is one IP-layer link e ∈ E: a router pair with a bandwidth
// capacity demand c_e, provisioned over optical paths between the same
// regions.
type IPLink struct {
	ID         string
	A, B       NodeID
	DemandGbps int
}

// IPTopology is the IP layer G(V, E): the demand set the planner must
// satisfy. Links are kept in insertion order.
type IPTopology struct {
	Links []IPLink
}

// AddLink appends an IP link. It rejects duplicates and nonpositive
// demands.
func (t *IPTopology) AddLink(l IPLink) error {
	if l.ID == "" {
		return fmt.Errorf("topology: empty IP link ID")
	}
	if l.A == l.B {
		return fmt.Errorf("topology: IP link %s is a self-loop", l.ID)
	}
	if l.DemandGbps <= 0 {
		return fmt.Errorf("topology: IP link %s has nonpositive demand %d", l.ID, l.DemandGbps)
	}
	for _, e := range t.Links {
		if e.ID == l.ID {
			return fmt.Errorf("topology: duplicate IP link ID %s", l.ID)
		}
	}
	t.Links = append(t.Links, l)
	return nil
}

// TotalDemandGbps sums all link demands.
func (t *IPTopology) TotalDemandGbps() int {
	total := 0
	for _, l := range t.Links {
		total += l.DemandGbps
	}
	return total
}

// Scale returns a copy with every demand multiplied by factor, rounding
// up — the paper's "bandwidth capacity scale" sweep (Fig. 12).
func (t *IPTopology) Scale(factor float64) *IPTopology {
	out := &IPTopology{Links: make([]IPLink, len(t.Links))}
	for i, l := range t.Links {
		l.DemandGbps = int(math.Ceil(float64(l.DemandGbps) * factor))
		out.Links[i] = l
	}
	return out
}
