package traffic

import (
	"testing"

	"flexwan/internal/plan"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// star: hub H with leaves X, Y, Z; plus a Y–Z shortcut.
func starLinks() []LinkSpec {
	return []LinkSpec{
		{ID: "hx", A: "H", B: "X"},
		{ID: "hy", A: "H", B: "Y"},
		{ID: "hz", A: "H", B: "Z"},
		{ID: "yz", A: "Y", B: "Z"},
	}
}

func TestDeriveBasic(t *testing.T) {
	m := Matrix{
		{A: "X", B: "Y", Gbps: 120}, // routes X–H–Y (2 hops) vs nothing shorter
		{A: "Y", B: "Z", Gbps: 80},  // routes over the direct yz link (1 hop)
		{A: "H", B: "X", Gbps: 50},
	}
	ip, err := Derive(starLinks(), m, Options{Headroom: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"hx": 200, // 120+50 = 170 → ceil to 200
		"hy": 200, // 120 → 200? no: 120 → ceil(120/100)=2 → 200
		"yz": 100, // 80 → 100
	}
	got := map[string]int{}
	for _, l := range ip.Links {
		got[l.ID] = l.DemandGbps
	}
	for id, demand := range want {
		if got[id] != demand {
			t.Errorf("link %s demand = %d, want %d", id, got[id], demand)
		}
	}
	if _, ok := got["hz"]; ok {
		t.Error("unused link hz was provisioned")
	}
}

func TestDeriveHeadroom(t *testing.T) {
	m := Matrix{{A: "H", B: "X", Gbps: 100}}
	// 100 × 1.5 = 150 rounds up to the next 100G grain.
	ip, err := Derive(starLinks(), m, Options{Headroom: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if ip.Links[0].DemandGbps != 200 {
		t.Errorf("demand = %d, want 200 (150 → 100G grain)", ip.Links[0].DemandGbps)
	}
	// A finer grain keeps the exact value.
	ip, err = Derive(starLinks(), m, Options{Headroom: 1.5, GrainGbps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if ip.Links[0].DemandGbps != 150 {
		t.Errorf("50G-grain demand = %d, want 150", ip.Links[0].DemandGbps)
	}
	// Default headroom (1.5) applies when zero.
	ip, err = Derive(starLinks(), m, Options{GrainGbps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if ip.Links[0].DemandGbps != 150 {
		t.Errorf("default headroom demand = %d, want 150", ip.Links[0].DemandGbps)
	}
}

func TestDeriveValidation(t *testing.T) {
	m := Matrix{{A: "H", B: "X", Gbps: 100}}
	if _, err := Derive(nil, m, Options{}); err == nil {
		t.Error("no links accepted")
	}
	if _, err := Derive([]LinkSpec{{ID: "", A: "A", B: "B"}}, m, Options{}); err == nil {
		t.Error("empty link ID accepted")
	}
	if _, err := Derive([]LinkSpec{{ID: "x", A: "A", B: "A"}}, m, Options{}); err == nil {
		t.Error("self-loop accepted")
	}
	dup := []LinkSpec{{ID: "x", A: "A", B: "B"}, {ID: "x", A: "B", B: "C"}}
	if _, err := Derive(dup, m, Options{}); err == nil {
		t.Error("duplicate link ID accepted")
	}
	// Unroutable demand.
	if _, err := Derive(starLinks(), Matrix{{A: "X", B: "nowhere", Gbps: 10}}, Options{}); err == nil {
		t.Error("unroutable demand accepted")
	}
	// Nonpositive demand.
	if _, err := Derive(starLinks(), Matrix{{A: "H", B: "X", Gbps: 0}}, Options{}); err == nil {
		t.Error("zero demand accepted")
	}
	// Distance weighting without optical topology.
	if _, err := Derive(starLinks(), m, Options{DistanceWeighted: true}); err == nil {
		t.Error("distance weighting without optical accepted")
	}
}

func TestDeriveDistanceWeighted(t *testing.T) {
	// Optical layer where the "short" 2-hop route beats a long direct
	// link: X–A–Y is 200 km total; the direct X–Y IP link rides a
	// 900 km optical path.
	g := topology.New()
	for _, f := range []struct {
		id   string
		a, b topology.NodeID
		km   float64
	}{
		{"f1", "X", "A", 100},
		{"f2", "A", "Y", 100},
		{"f3", "X", "Y", 900},
	} {
		if err := g.AddFiber(f.id, f.a, f.b, f.km); err != nil {
			t.Fatal(err)
		}
	}
	links := []LinkSpec{
		{ID: "xa", A: "X", B: "A"},
		{ID: "ay", A: "A", B: "Y"},
		{ID: "xy", A: "X", B: "Y"},
	}
	m := Matrix{{A: "X", B: "Y", Gbps: 100}}

	// Hop-count routing prefers the direct xy link.
	ip, err := Derive(links, m, Options{Headroom: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ip.Links) != 1 || ip.Links[0].ID != "xy" {
		t.Errorf("hop routing used %v, want xy", ip.Links)
	}
	// Distance-weighted routing takes the two short links.
	ip, err = Derive(links, m, Options{Headroom: 1, DistanceWeighted: true, Optical: g})
	if err != nil {
		t.Fatal(err)
	}
	used := map[string]bool{}
	for _, l := range ip.Links {
		used[l.ID] = true
	}
	if !used["xa"] || !used["ay"] || used["xy"] {
		t.Errorf("distance routing used %v, want xa+ay", ip.Links)
	}
}

func TestDeriveFeedsPlanner(t *testing.T) {
	// End-to-end: matrix → demands → plan.
	g := topology.New()
	for _, f := range []struct {
		id   string
		a, b topology.NodeID
		km   float64
	}{
		{"f1", "H", "X", 150},
		{"f2", "H", "Y", 250},
		{"f3", "X", "Y", 350},
	} {
		if err := g.AddFiber(f.id, f.a, f.b, f.km); err != nil {
			t.Fatal(err)
		}
	}
	links := []LinkSpec{
		{ID: "hx", A: "H", B: "X"},
		{ID: "hy", A: "H", B: "Y"},
	}
	m := Matrix{
		{A: "H", B: "X", Gbps: 700},
		{A: "X", B: "Y", Gbps: 300}, // routes X–H–Y over both links
	}
	ip, err := Derive(links, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := plan.Solve(plan.Problem{
		Optical: g, IP: ip, Catalog: transponder.SVT(), Grid: spectrum.DefaultGrid(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Errorf("derived demands unplannable: %v", r.Unserved)
	}
	if m.Total() != 1000 {
		t.Errorf("matrix total = %v", m.Total())
	}
}
