// Package traffic derives IP-link bandwidth-capacity demands from a
// region-level traffic matrix — the input side of FlexWAN's IP TopoMgr.
//
// The paper takes per-link capacities as given ("we use the bandwidth
// capacity of each IP link provided by network operators according to
// their experience", §4.4) and cites the capacity-provisioning
// literature ([10] hose-model planning, [46]) for how operators produce
// them. This package implements the standard derivation those operators
// use: route the region-to-region traffic matrix over the IP topology,
// sum the load each IP link carries, apply an over-provisioning headroom
// for surges and failures, and round up to the 100G client-rate grain.
package traffic

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"flexwan/internal/topology"
)

// Demand is one entry of the traffic matrix: average offered load
// between two regions, in Gbps. Direction is ignored (WAN links are
// provisioned symmetrically).
type Demand struct {
	A, B topology.NodeID
	Gbps float64
}

// Matrix is a region-to-region traffic matrix.
type Matrix []Demand

// Total returns the sum of offered load.
func (m Matrix) Total() float64 {
	t := 0.0
	for _, d := range m {
		t += d.Gbps
	}
	return t
}

// LinkSpec declares one IP link's endpoints (capacity to be derived).
type LinkSpec struct {
	ID   string
	A, B topology.NodeID
}

// Options tune the derivation.
type Options struct {
	// Headroom multiplies routed load before rounding (operators
	// over-provision for surges and failures; 1.3–2.0 is typical).
	// Zero means DefaultHeadroom.
	Headroom float64
	// GrainGbps is the capacity granularity (client rate). Zero means
	// 100.
	GrainGbps int
	// DistanceWeighted routes over IP-link lengths (derived from the
	// optical shortest path between the link's endpoints) instead of hop
	// count.
	DistanceWeighted bool
	// Optical supplies link lengths for distance-weighted routing.
	Optical *topology.Optical
}

// DefaultHeadroom is the default over-provisioning factor.
const DefaultHeadroom = 1.5

// Derive routes every matrix entry over the IP-link graph by shortest
// path and returns the IP topology with derived per-link demands. Matrix
// entries between regions with no IP-layer route are reported as an
// error — an operator would add links, not silently drop traffic.
func Derive(links []LinkSpec, m Matrix, opts Options) (*topology.IPTopology, error) {
	if opts.Headroom <= 0 {
		opts.Headroom = DefaultHeadroom
	}
	if opts.GrainGbps <= 0 {
		opts.GrainGbps = 100
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("traffic: no IP links declared")
	}
	// Build the IP-layer graph: nodes are regions, edges are links.
	adj := make(map[topology.NodeID][]ipEdge)
	seen := make(map[string]bool, len(links))
	for i, l := range links {
		if l.ID == "" || l.A == l.B {
			return nil, fmt.Errorf("traffic: invalid link spec %+v", l)
		}
		if seen[l.ID] {
			return nil, fmt.Errorf("traffic: duplicate link ID %s", l.ID)
		}
		seen[l.ID] = true
		w := 1.0
		if opts.DistanceWeighted {
			if opts.Optical == nil {
				return nil, fmt.Errorf("traffic: DistanceWeighted needs Options.Optical")
			}
			p, ok := opts.Optical.ShortestPath(l.A, l.B)
			if !ok {
				return nil, fmt.Errorf("traffic: link %s endpoints not connected optically", l.ID)
			}
			w = p.LengthKm
		}
		adj[l.A] = append(adj[l.A], ipEdge{linkIdx: i, to: l.B, weight: w})
		adj[l.B] = append(adj[l.B], ipEdge{linkIdx: i, to: l.A, weight: w})
	}

	load := make([]float64, len(links))
	for _, d := range m {
		if d.Gbps <= 0 {
			return nil, fmt.Errorf("traffic: nonpositive demand %v between %s and %s", d.Gbps, d.A, d.B)
		}
		path, ok := shortestLinkPath(adj, d.A, d.B)
		if !ok {
			return nil, fmt.Errorf("traffic: no IP route between %s and %s", d.A, d.B)
		}
		for _, li := range path {
			load[li] += d.Gbps
		}
	}

	ip := &topology.IPTopology{}
	for i, l := range links {
		if load[i] == 0 {
			continue // unused link: no capacity provisioned
		}
		grain := float64(opts.GrainGbps)
		demand := int(math.Ceil(load[i]*opts.Headroom/grain)) * opts.GrainGbps
		if err := ip.AddLink(topology.IPLink{ID: l.ID, A: l.A, B: l.B, DemandGbps: demand}); err != nil {
			return nil, err
		}
	}
	if len(ip.Links) == 0 {
		return nil, fmt.Errorf("traffic: matrix routed over no links")
	}
	return ip, nil
}

// ipEdge is one IP link as seen from a region in the routing graph.
type ipEdge struct {
	linkIdx int
	to      topology.NodeID
	weight  float64
}

type tqItem struct {
	node topology.NodeID
	dist float64
}

type tq []tqItem

func (q tq) Len() int            { return len(q) }
func (q tq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q tq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *tq) Push(x interface{}) { *q = append(*q, x.(tqItem)) }
func (q *tq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// shortestLinkPath runs Dijkstra over the IP-link graph, returning the
// traversed link indices in order. Deterministic tie-breaking by link
// index.
func shortestLinkPath(adj map[topology.NodeID][]ipEdge, src, dst topology.NodeID) ([]int, bool) {
	if src == dst {
		return nil, true
	}
	// Sort adjacency for determinism.
	for n := range adj {
		es := adj[n]
		sort.Slice(es, func(i, j int) bool { return es[i].linkIdx < es[j].linkIdx })
		adj[n] = es
	}
	dist := map[topology.NodeID]float64{src: 0}
	prevLink := map[topology.NodeID]int{}
	prevNode := map[topology.NodeID]topology.NodeID{}
	done := map[topology.NodeID]bool{}
	frontier := &tq{{node: src}}
	for frontier.Len() > 0 {
		cur := heap.Pop(frontier).(tqItem)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == dst {
			break
		}
		for _, e := range adj[cur.node] {
			nd := cur.dist + e.weight
			old, seen := dist[e.to]
			if !seen || nd < old || (nd == old && e.linkIdx < prevLink[e.to]) {
				dist[e.to] = nd
				prevLink[e.to] = e.linkIdx
				prevNode[e.to] = cur.node
				heap.Push(frontier, tqItem{node: e.to, dist: nd})
			}
		}
	}
	if !done[dst] {
		return nil, false
	}
	var path []int
	for n := dst; n != src; n = prevNode[n] {
		path = append(path, prevLink[n])
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, true
}
