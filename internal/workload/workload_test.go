package workload

import (
	"math"
	"sort"
	"testing"

	"flexwan/internal/plan"
	"flexwan/internal/spectrum"
	"flexwan/internal/transponder"
)

func TestTBackboneDeterministic(t *testing.T) {
	a, b := TBackbone(1), TBackbone(1)
	if a.Optical.NumFibers() != b.Optical.NumFibers() || a.IP.TotalDemandGbps() != b.IP.TotalDemandGbps() {
		t.Error("same seed produced different networks")
	}
	c := TBackbone(2)
	if a.IP.TotalDemandGbps() == c.IP.TotalDemandGbps() {
		t.Error("different seeds produced identical demands (suspicious)")
	}
}

func TestTBackboneShape(t *testing.T) {
	n := TBackbone(1)
	if n.Optical.NumNodes() != 24 {
		t.Errorf("nodes = %d, want 24 (8 clusters × 3)", n.Optical.NumNodes())
	}
	if n.Optical.NumFibers() != 36 {
		t.Errorf("fibers = %d, want 36 (24 metro + 12 core)", n.Optical.NumFibers())
	}
	if len(n.IP.Links) != 38 {
		t.Errorf("IP links = %d, want 38", len(n.IP.Links))
	}
	// Connectivity: every IP link has an optical path.
	lengths := n.PathLengthsKm()
	if len(lengths) != len(n.IP.Links) {
		t.Fatalf("only %d/%d links have optical paths", len(lengths), len(n.IP.Links))
	}
	// Fig. 2a shape: ~half the paths under 200 km, tail beyond 2000 km.
	sort.Float64s(lengths)
	under200 := 0
	for _, l := range lengths {
		if l < 200 {
			under200++
		}
	}
	frac := float64(under200) / float64(len(lengths))
	if frac < 0.4 || frac > 0.7 {
		t.Errorf("fraction of paths < 200 km = %.2f, want ≈ 0.5 (Fig. 2a)", frac)
	}
	if lengths[len(lengths)-1] < 2000 {
		t.Errorf("longest path = %v km, want > 2000 (Fig. 2a tail)", lengths[len(lengths)-1])
	}
	if lengths[0] < 30 || lengths[0] > 250 {
		t.Errorf("shortest path = %v km, want metro-scale", lengths[0])
	}
}

func TestTBackbonePlannable(t *testing.T) {
	n := TBackbone(1)
	for _, cat := range []transponder.Catalog{transponder.Fixed100G(), transponder.RADWAN(), transponder.SVT()} {
		r, err := plan.Solve(plan.Problem{
			Optical: n.Optical, IP: n.IP, Catalog: cat, Grid: spectrum.DefaultGrid(),
		})
		if err != nil {
			t.Fatalf("%s: %v", cat.Name, err)
		}
		if !r.Feasible() {
			t.Errorf("%s infeasible at scale 1: unserved %v", cat.Name, r.Unserved)
		}
	}
}

func TestTBackboneScale(t *testing.T) {
	n := TBackbone(1)
	s := n.Scale(3)
	if s.IP.TotalDemandGbps() != 3*n.IP.TotalDemandGbps() {
		t.Errorf("scale 3: demand %d, want %d", s.IP.TotalDemandGbps(), 3*n.IP.TotalDemandGbps())
	}
	if n.Name != s.Name || s.Optical != n.Optical {
		t.Error("Scale should preserve name and optical topology")
	}
}

func TestWeightedPathLengths(t *testing.T) {
	n := TBackbone(1)
	lengths, weights := n.WeightedPathLengthsKm()
	if len(lengths) != len(weights) || len(lengths) == 0 {
		t.Fatalf("weighted lengths: %d lengths, %d weights", len(lengths), len(weights))
	}
	for i := range weights {
		if weights[i] <= 0 {
			t.Errorf("weight %d = %v", i, weights[i])
		}
	}
}

func TestCernetShape(t *testing.T) {
	n := Cernet(1)
	if n.Optical.NumNodes() != len(cernetCities) {
		t.Errorf("nodes = %d, want %d", n.Optical.NumNodes(), len(cernetCities))
	}
	if n.Optical.NumFibers() != len(cernetEdges) {
		t.Errorf("fibers = %d, want %d", n.Optical.NumFibers(), len(cernetEdges))
	}
	// Connected: a diameter exists.
	if d := n.Optical.Diameter(); math.IsInf(d, 1) {
		t.Fatal("CERNET topology disconnected")
	}
	// All IP links routable.
	if got := len(n.PathLengthsKm()); got != len(n.IP.Links) {
		t.Errorf("routable links = %d of %d", got, len(n.IP.Links))
	}
	// Sanity on embedded distances: Beijing–Tianjin ≈ 110 km geodesic
	// ×1.3 ≈ 140; Lanzhou–Urumqi is ~1600 km geodesic ×1.3 ≈ 2100.
	for _, f := range n.Optical.Fibers() {
		if f.LengthKm < 50 || f.LengthKm > 3000 {
			t.Errorf("fiber %s (%s–%s) length %v km implausible", f.ID, f.A, f.B, f.LengthKm)
		}
	}
}

func TestCernetLongerThanTBackbone(t *testing.T) {
	// Fig. 13a: the capacity-weighted median path of CERNET is much
	// longer than the T-backbone's.
	tb, ce := TBackbone(1), Cernet(1)
	if m1, m2 := weightedMedian(tb.WeightedPathLengthsKm()), weightedMedian(ce.WeightedPathLengthsKm()); m1 >= m2 {
		t.Errorf("weighted median: T-backbone %v ≥ Cernet %v", m1, m2)
	}
}

func TestCernetPlannable(t *testing.T) {
	n := Cernet(1)
	r, err := plan.Solve(plan.Problem{
		Optical: n.Optical, IP: n.IP, Catalog: transponder.SVT(), Grid: spectrum.DefaultGrid(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Errorf("CERNET infeasible at scale 1: %v", r.Unserved)
	}
}

func TestHaversine(t *testing.T) {
	// Beijing–Shanghai ≈ 1070 km great circle.
	d := haversineKm(39.90, 116.40, 31.23, 121.47)
	if d < 1000 || d > 1150 {
		t.Errorf("Beijing–Shanghai = %v km, want ≈ 1070", d)
	}
	if haversineKm(10, 20, 10, 20) != 0 {
		t.Error("zero distance expected for identical points")
	}
}

func weightedMedian(lengths, weights []float64) float64 {
	type lw struct{ l, w float64 }
	items := make([]lw, len(lengths))
	total := 0.0
	for i := range lengths {
		items[i] = lw{lengths[i], weights[i]}
		total += weights[i]
	}
	sort.Slice(items, func(i, j int) bool { return items[i].l < items[j].l })
	acc := 0.0
	for _, it := range items {
		acc += it.w
		if acc >= total/2 {
			return it.l
		}
	}
	return 0
}
