package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"flexwan/internal/topology"
)

// networkJSON is the on-disk network format consumed by the CLI tools:
//
//	{
//	  "name": "my-wan",
//	  "fibers": [{"id": "f1", "a": "SEA", "b": "PDX", "km": 280}, ...],
//	  "links":  [{"id": "e1", "a": "SEA", "b": "PDX", "gbps": 1600}, ...]
//	}
type networkJSON struct {
	Name   string      `json:"name"`
	Fibers []fiberJSON `json:"fibers"`
	Links  []linkJSON  `json:"links"`
}

type fiberJSON struct {
	ID string  `json:"id"`
	A  string  `json:"a"`
	B  string  `json:"b"`
	Km float64 `json:"km"`
}

type linkJSON struct {
	ID   string `json:"id"`
	A    string `json:"a"`
	B    string `json:"b"`
	Gbps int    `json:"gbps"`
}

// ReadNetwork parses a network from JSON, validating it through the same
// topology constructors the generators use.
func ReadNetwork(r io.Reader) (Network, error) {
	var doc networkJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return Network{}, fmt.Errorf("workload: parsing network: %w", err)
	}
	if len(doc.Fibers) == 0 {
		return Network{}, fmt.Errorf("workload: network %q has no fibers", doc.Name)
	}
	g := topology.New()
	for _, f := range doc.Fibers {
		if err := g.AddFiber(f.ID, topology.NodeID(f.A), topology.NodeID(f.B), f.Km); err != nil {
			return Network{}, fmt.Errorf("workload: %w", err)
		}
	}
	ip := &topology.IPTopology{}
	for _, l := range doc.Links {
		if err := ip.AddLink(topology.IPLink{
			ID: l.ID, A: topology.NodeID(l.A), B: topology.NodeID(l.B), DemandGbps: l.Gbps,
		}); err != nil {
			return Network{}, fmt.Errorf("workload: %w", err)
		}
	}
	name := doc.Name
	if name == "" {
		name = "network"
	}
	return Network{Name: name, Optical: g, IP: ip}, nil
}

// WriteNetwork serializes a network to indented JSON.
func WriteNetwork(w io.Writer, n Network) error {
	doc := networkJSON{Name: n.Name}
	for _, f := range n.Optical.Fibers() {
		doc.Fibers = append(doc.Fibers, fiberJSON{ID: f.ID, A: string(f.A), B: string(f.B), Km: f.LengthKm})
	}
	for _, l := range n.IP.Links {
		doc.Links = append(doc.Links, linkJSON{ID: l.ID, A: string(l.A), B: string(l.B), Gbps: l.DemandGbps})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
