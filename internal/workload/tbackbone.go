// Package workload generates the evaluation inputs of the FlexWAN paper:
// a synthetic production-like backbone ("T-backbone") whose optical path
// length distribution matches the published measurements (§3.1: roughly
// half of all optical paths are shorter than 200 km, with a tail past
// 2000 km), the public CERNET topology the paper uses as its second
// network (§7.2), and demand generation for both.
//
// The real T-backbone demands and layout are confidential; this generator
// reproduces the only property the paper's results depend on — the
// distribution of optical path lengths and the relative demand weights —
// deterministically from a seed. See DESIGN.md for the substitution
// rationale.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"flexwan/internal/topology"
)

// Network bundles the two topology layers of one evaluation input.
type Network struct {
	Name    string
	Optical *topology.Optical
	IP      *topology.IPTopology
}

// site is a ROADM location on a synthetic plane (coordinates in km).
type site struct {
	id   topology.NodeID
	x, y float64
}

func dist(a, b site) float64 {
	return math.Hypot(a.x-b.x, a.y-b.y)
}

// routingFactor inflates straight-line distance to fiber-route distance
// (real fiber follows roads and rail, not geodesics).
const routingFactor = 1.3

// TBackbone generates the synthetic production backbone: metro clusters
// of closely spaced sites (providing the dominant population of short
// optical paths) linked by a long-haul core. The same seed always yields
// the same network.
//
// Shape targets, calibrated against the paper's Figure 2(a)/13(a):
//   - ≈ half of the IP links' primary optical paths are under 200 km;
//   - path lengths range from ~100 km to beyond 2000 km;
//   - demand is skewed toward short metro links (the capacity-weighted
//     distribution of Fig. 13a sits well left of CERNET's).
func TBackbone(seed int64) Network {
	rng := rand.New(rand.NewSource(seed))
	g := topology.New()
	ip := &topology.IPTopology{}

	// Eight metro clusters on a rough 2300×1400 km plane. The extent is
	// sized so the longest routed optical path stays within 100G-WAN's
	// 3000 km reach (every scheme serves scale 1, as in the paper) while
	// the tail still crosses 2000 km (Fig. 2a).
	centers := []site{
		{"c0", 200, 330},
		{"c1", 600, 200},
		{"c2", 1000, 400},
		{"c3", 1460, 270},
		{"c4", 1930, 460},
		{"c5", 730, 930},
		{"c6", 1330, 1060},
		{"c7", 1870, 1270},
	}
	// Each cluster hosts three sites 40–110 km from its center.
	var clusters [][]site
	fiberSeq := 0
	addFiber := func(a, b site) {
		fiberSeq++
		d := dist(a, b) * routingFactor
		// Fibers have a practical floor (~30 km metro spans).
		if d < 30 {
			d = 30
		}
		id := fmt.Sprintf("fib%03d", fiberSeq)
		if err := g.AddFiber(id, a.id, b.id, math.Round(d)); err != nil {
			panic(err) // generator bug: IDs are sequential, nodes distinct
		}
	}
	for ci, c := range centers {
		var cluster []site
		for si := 0; si < 3; si++ {
			angle := rng.Float64() * 2 * math.Pi
			radius := 40 + rng.Float64()*70
			s := site{
				id: topology.NodeID(fmt.Sprintf("m%d-%d", ci, si)),
				x:  c.x + radius*math.Cos(angle),
				y:  c.y + radius*math.Sin(angle),
			}
			cluster = append(cluster, s)
		}
		// Intra-cluster ring: three short metro fibers.
		addFiber(cluster[0], cluster[1])
		addFiber(cluster[1], cluster[2])
		addFiber(cluster[2], cluster[0])
		clusters = append(clusters, cluster)
	}
	// Long-haul core: a ring over the clusters plus two cross chords,
	// attaching at each cluster's first site.
	core := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 7}, {7, 6}, {6, 5}, {5, 0},
		{2, 5}, {3, 6}, {1, 5}, {4, 6},
	}
	for _, e := range core {
		addFiber(clusters[e[0]][0], clusters[e[1]][0])
	}

	// Demands. Production WANs are metro-heavy: every intra-cluster pair
	// carries a large demand; adjacent core clusters carry medium ones; a
	// sample of distant pairs carries long-haul demand.
	linkSeq := 0
	addLink := func(a, b topology.NodeID, demand100G int) {
		linkSeq++
		if err := ip.AddLink(topology.IPLink{
			ID: fmt.Sprintf("e%03d", linkSeq), A: a, B: b, DemandGbps: demand100G * 100,
		}); err != nil {
			panic(err)
		}
	}
	for _, cluster := range clusters {
		// Three metro pairs per cluster, 16–40 × 100G each: metro links
		// dominate production demand, which is what makes the
		// capacity-weighted path distribution short (Fig. 13a) and puts
		// the spectrum bottleneck on short fibers.
		addLink(cluster[0].id, cluster[1].id, 10+rng.Intn(16))
		addLink(cluster[1].id, cluster[2].id, 10+rng.Intn(16))
		addLink(cluster[2].id, cluster[0].id, 10+rng.Intn(16))
	}
	for _, e := range core[:8] { // ring neighbours: medium demand
		addLink(clusters[e[0]][1].id, clusters[e[1]][1].id, 2+rng.Intn(4))
	}
	// Long-haul: six distant cluster pairs, lighter demand.
	longPairs := [][2]int{{0, 3}, {0, 4}, {1, 7}, {2, 7}, {0, 6}, {1, 4}}
	for _, e := range longPairs {
		addLink(clusters[e[0]][2].id, clusters[e[1]][2].id, 1+rng.Intn(3))
	}

	return Network{Name: "T-backbone", Optical: g, IP: ip}
}

// PathLengthsKm returns the primary (shortest) optical path length of
// every IP link — the population plotted in Fig. 2(a).
func (n Network) PathLengthsKm() []float64 {
	out := make([]float64, 0, len(n.IP.Links))
	for _, l := range n.IP.Links {
		if p, ok := n.Optical.ShortestPath(l.A, l.B); ok {
			out = append(out, p.LengthKm)
		}
	}
	return out
}

// WeightedPathLengthsKm returns (length, demand) pairs — the
// capacity-weighted population of Fig. 13(a).
func (n Network) WeightedPathLengthsKm() ([]float64, []float64) {
	lengths := make([]float64, 0, len(n.IP.Links))
	weights := make([]float64, 0, len(n.IP.Links))
	for _, l := range n.IP.Links {
		if p, ok := n.Optical.ShortestPath(l.A, l.B); ok {
			lengths = append(lengths, p.LengthKm)
			weights = append(weights, float64(l.DemandGbps))
		}
	}
	return lengths, weights
}

// Scale returns the network with demands multiplied by factor.
func (n Network) Scale(factor float64) Network {
	return Network{Name: n.Name, Optical: n.Optical, IP: n.IP.Scale(factor)}
}
