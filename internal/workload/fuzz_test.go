package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadNetwork drives the JSON network parser with arbitrary input:
// it must never panic, and anything it accepts must round-trip through
// WriteNetwork into an equivalent network.
func FuzzReadNetwork(f *testing.F) {
	f.Add(`{"name":"x","fibers":[{"id":"f1","a":"A","b":"B","km":10}],"links":[{"id":"e1","a":"A","b":"B","gbps":100}]}`)
	f.Add(`{"fibers":[{"id":"f","a":"A","b":"B","km":1}]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"name":"y","fibers":[{"id":"f","a":"A","b":"B","km":-5}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		n, err := ReadNetwork(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Accepted networks are well-formed and serializable.
		if n.Optical == nil || n.IP == nil || n.Optical.NumFibers() == 0 {
			t.Fatalf("accepted malformed network: %+v", n)
		}
		var buf bytes.Buffer
		if err := WriteNetwork(&buf, n); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadNetwork(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Optical.NumFibers() != n.Optical.NumFibers() || len(back.IP.Links) != len(n.IP.Links) {
			t.Fatal("round trip changed the network")
		}
	})
}
