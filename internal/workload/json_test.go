package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadNetwork(t *testing.T) {
	doc := `{
	  "name": "tiny",
	  "fibers": [
	    {"id": "f1", "a": "X", "b": "Y", "km": 120},
	    {"id": "f2", "a": "Y", "b": "Z", "km": 340}
	  ],
	  "links": [
	    {"id": "e1", "a": "X", "b": "Z", "gbps": 400}
	  ]
	}`
	n, err := ReadNetwork(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "tiny" || n.Optical.NumFibers() != 2 || len(n.IP.Links) != 1 {
		t.Errorf("parsed network = %s, %d fibers, %d links", n.Name, n.Optical.NumFibers(), len(n.IP.Links))
	}
	p, ok := n.Optical.ShortestPath("X", "Z")
	if !ok || p.LengthKm != 460 {
		t.Errorf("path X→Z = %v, %v", p, ok)
	}
}

func TestReadNetworkValidation(t *testing.T) {
	cases := map[string]string{
		"empty fibers":   `{"name": "x", "fibers": [], "links": []}`,
		"bad fiber":      `{"fibers": [{"id": "", "a": "X", "b": "Y", "km": 1}]}`,
		"self loop":      `{"fibers": [{"id": "f", "a": "X", "b": "X", "km": 1}]}`,
		"bad link":       `{"fibers": [{"id": "f", "a": "X", "b": "Y", "km": 1}], "links": [{"id": "e", "a": "X", "b": "Y", "gbps": 0}]}`,
		"unknown field":  `{"fibers": [{"id": "f", "a": "X", "b": "Y", "km": 1}], "frobnicate": 7}`,
		"malformed json": `{`,
	}
	for name, doc := range cases {
		if _, err := ReadNetwork(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNetworkRoundTrip(t *testing.T) {
	orig := TBackbone(1)
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name {
		t.Errorf("name = %q", back.Name)
	}
	if back.Optical.NumFibers() != orig.Optical.NumFibers() || back.Optical.NumNodes() != orig.Optical.NumNodes() {
		t.Errorf("topology changed: %d/%d fibers, %d/%d nodes",
			back.Optical.NumFibers(), orig.Optical.NumFibers(),
			back.Optical.NumNodes(), orig.Optical.NumNodes())
	}
	if back.IP.TotalDemandGbps() != orig.IP.TotalDemandGbps() {
		t.Errorf("demand changed: %d vs %d", back.IP.TotalDemandGbps(), orig.IP.TotalDemandGbps())
	}
	// Path lengths survive.
	a, b := orig.PathLengthsKm(), back.PathLengthsKm()
	if len(a) != len(b) {
		t.Fatalf("path count changed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("path %d length %v vs %v", i, a[i], b[i])
		}
	}
}
