package workload

import (
	"fmt"
	"math"
	"math/rand"

	"flexwan/internal/topology"
)

// cernetCity is one CERNET point of presence with its coordinates.
type cernetCity struct {
	name     string
	lat, lon float64
}

// cernetCities approximates the CERNET national backbone nodes (the
// public education-and-research network the paper evaluates as its
// second topology, §7.2). Coordinates are the host cities'.
var cernetCities = []cernetCity{
	{"beijing", 39.90, 116.40},
	{"tianjin", 39.34, 117.36},
	{"shijiazhuang", 38.04, 114.51},
	{"taiyuan", 37.87, 112.55},
	{"hohhot", 40.84, 111.75},
	{"shenyang", 41.80, 123.43},
	{"changchun", 43.82, 125.32},
	{"harbin", 45.80, 126.53},
	{"dalian", 38.91, 121.61},
	{"jinan", 36.65, 117.00},
	{"qingdao", 36.07, 120.38},
	{"zhengzhou", 34.75, 113.62},
	{"wuhan", 30.59, 114.31},
	{"changsha", 28.23, 112.94},
	{"nanchang", 28.68, 115.86},
	{"hefei", 31.82, 117.23},
	{"nanjing", 32.06, 118.80},
	{"shanghai", 31.23, 121.47},
	{"hangzhou", 30.27, 120.16},
	{"fuzhou", 26.07, 119.30},
	{"xiamen", 24.48, 118.09},
	{"guangzhou", 23.13, 113.26},
	{"shenzhen", 22.54, 114.06},
	{"nanning", 22.82, 108.32},
	{"haikou", 20.04, 110.34},
	{"guiyang", 26.65, 106.63},
	{"kunming", 24.88, 102.83},
	{"chengdu", 30.57, 104.07},
	{"chongqing", 29.56, 106.55},
	{"xian", 34.34, 108.94},
	{"lanzhou", 36.06, 103.83},
	{"xining", 36.62, 101.78},
	{"yinchuan", 38.49, 106.23},
	{"urumqi", 43.83, 87.62},
}

// cernetEdges lists the backbone fiber segments (city name pairs).
var cernetEdges = [][2]string{
	{"beijing", "tianjin"},
	{"beijing", "shijiazhuang"},
	{"shijiazhuang", "taiyuan"},
	{"beijing", "hohhot"},
	{"beijing", "shenyang"},
	{"shenyang", "changchun"},
	{"changchun", "harbin"},
	{"shenyang", "dalian"},
	{"beijing", "jinan"},
	{"jinan", "qingdao"},
	{"jinan", "zhengzhou"},
	{"zhengzhou", "wuhan"},
	{"zhengzhou", "xian"},
	{"xian", "lanzhou"},
	{"lanzhou", "xining"},
	{"lanzhou", "yinchuan"},
	{"lanzhou", "urumqi"},
	{"xian", "chengdu"},
	{"chengdu", "chongqing"},
	{"chongqing", "guiyang"},
	{"guiyang", "kunming"},
	{"kunming", "nanning"},
	{"wuhan", "changsha"},
	{"changsha", "guangzhou"},
	{"guangzhou", "shenzhen"},
	{"guangzhou", "nanning"},
	{"guangzhou", "haikou"},
	{"nanning", "haikou"},
	{"wuhan", "hefei"},
	{"hefei", "nanjing"},
	{"nanjing", "shanghai"},
	{"nanjing", "qingdao"},
	{"shanghai", "hangzhou"},
	{"hangzhou", "nanchang"},
	{"nanchang", "changsha"},
	{"nanchang", "fuzhou"},
	{"fuzhou", "xiamen"},
	{"xiamen", "shenzhen"},
	{"beijing", "zhengzhou"},
	{"wuhan", "nanchang"},
	{"chengdu", "kunming"},
	{"taiyuan", "xian"},
}

// haversineKm is the great-circle distance between two coordinates.
func haversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(a))
}

// Cernet builds the CERNET optical topology and, following the paper,
// generates the IP topology and bandwidth demands over it ("we assume
// Cernet operates a point-to-point optical backbone and use
// distributions in [49] to generate the IP topology and bandwidth
// capacity"). IP links are the optical adjacencies plus a deterministic
// sample of multi-hop city pairs; demands are drawn in 100 Gbps units
// from a heavy-tailed distribution. The same seed yields the same
// network.
func Cernet(seed int64) Network {
	rng := rand.New(rand.NewSource(seed))
	g := topology.New()
	ip := &topology.IPTopology{}
	pos := make(map[string]cernetCity, len(cernetCities))
	for _, c := range cernetCities {
		pos[c.name] = c
	}
	for i, e := range cernetEdges {
		a, b := pos[e[0]], pos[e[1]]
		d := math.Round(haversineKm(a.lat, a.lon, b.lat, b.lon) * routingFactor)
		if err := g.AddFiber(fmt.Sprintf("cfib%03d", i), topology.NodeID(e[0]), topology.NodeID(e[1]), d); err != nil {
			panic(err)
		}
	}

	linkSeq := 0
	addLink := func(a, b string, demand100G int) {
		linkSeq++
		if err := ip.AddLink(topology.IPLink{
			ID: fmt.Sprintf("ce%03d", linkSeq), A: topology.NodeID(a), B: topology.NodeID(b),
			DemandGbps: demand100G * 100,
		}); err != nil {
			panic(err)
		}
	}
	// Point-to-point: every adjacency is an IP link. Demand 2–12 ×100G,
	// heavy-tailed (most links light, a few heavy).
	demand := func() int {
		d := 2 + int(math.Floor(math.Abs(rng.NormFloat64())*4))
		if d > 12 {
			d = 12
		}
		return d
	}
	for _, e := range cernetEdges {
		addLink(e[0], e[1], demand())
	}
	// Long-haul IP links between major hubs (multi-hop optical paths).
	// Pairs beyond 2800 km of routed fiber are skipped: no single-hop
	// optical service is offered past the longest commercial reach, as
	// in the paper's point-to-point assumption.
	hubs := []string{"beijing", "shanghai", "guangzhou", "wuhan", "chengdu", "xian", "shenyang"}
	for i := 0; i < len(hubs); i++ {
		for j := i + 1; j < len(hubs); j++ {
			p, ok := g.ShortestPath(topology.NodeID(hubs[i]), topology.NodeID(hubs[j]))
			if !ok || p.LengthKm > 2800 {
				continue
			}
			addLink(hubs[i], hubs[j], demand())
		}
	}
	return Network{Name: "Cernet", Optical: g, IP: ip}
}
