// Package transponder models optical transponders and their operating
// modes: the fixed-rate 100G transponder of traditional WANs, the
// bandwidth-variable transponder (BVT) of RADWAN, and FlexWAN's
// spacing-variable transponder (SVT).
//
// A transponder mode is one (data rate, channel spacing, optical reach)
// operating point, realized inside the device by a combination of baud
// rate, constellation, and FEC overhead (§4.2 of the paper). The SVT
// catalog is Table 2 of the paper verbatim — the specifications measured
// on the production-level testbed (§6) — which is exactly what the
// paper's planning and restoration algorithms consume.
package transponder

import (
	"fmt"
	"math"
	"sort"

	"flexwan/internal/phy"
	"flexwan/internal/spectrum"
)

// rolloffFactor maps channel spacing to symbol rate: the signal's baud is
// 75% of the spacing, leaving room for pulse-shaping roll-off and guard
// bands. A 50 GHz channel carries the paper's 37.5 GBd example signal.
const rolloffFactor = 0.75

// Mode is one operating point of a transponder.
type Mode struct {
	// DataRateGbps is the net (post-FEC) client data rate.
	DataRateGbps int
	// SpacingGHz is the channel spacing the wavelength occupies.
	SpacingGHz float64
	// ReachKm is the maximum error-free transmission distance.
	ReachKm float64
	// Modulation is the DSP constellation realizing the mode.
	Modulation phy.Modulation
	// BaudGBd is the symbol rate.
	BaudGBd float64
	// FEC is the forward-error-correction configuration.
	FEC phy.FEC
}

// newMode derives the DSP parameters (baud, FEC, constellation) for a
// (rate, spacing, reach) operating point. Long-reach modes use the
// stronger 27% FEC; short-reach modes the lighter 15% code.
func newMode(rateGbps int, spacingGHz, reachKm float64) Mode {
	baud := spacingGHz * rolloffFactor
	fec := phy.FEC15
	if reachKm > 1000 {
		fec = phy.FEC27
	}
	bits := float64(rateGbps) * (1 + fec.Overhead) / baud
	return Mode{
		DataRateGbps: rateGbps,
		SpacingGHz:   spacingGHz,
		ReachKm:      reachKm,
		Modulation:   nearestModulation(bits),
		BaudGBd:      baud,
		FEC:          fec,
	}
}

// nearestModulation labels a bits-per-symbol working point with the
// standard constellation that realizes it, or a PCS format when the
// point falls between square constellations.
func nearestModulation(bitsPerSymbol float64) phy.Modulation {
	standard := []phy.Modulation{phy.BPSK, phy.QPSK, phy.QAM8, phy.QAM16, phy.QAM32, phy.QAM64, phy.QAM256}
	for _, m := range standard {
		if math.Abs(m.BitsPerSymbol-bitsPerSymbol) < 0.25 {
			return m
		}
	}
	return phy.PCS(bitsPerSymbol)
}

// Pixels returns the number of grid pixels the mode's channel occupies.
func (m Mode) Pixels(g spectrum.Grid) int {
	n, err := g.PixelsFor(m.SpacingGHz)
	if err != nil {
		// Catalog modes are validated against the default grid at
		// construction; a failure here means a caller-supplied grid
		// cannot hold the channel at all.
		return g.Pixels + 1
	}
	return n
}

// Feasible reports whether the mode can carry a signal over distKm.
func (m Mode) Feasible(distKm float64) bool { return m.ReachKm >= distKm }

// SpectralEfficiency returns data rate per spectrum width (bps/Hz), the
// paper's link spectral efficiency metric (Fig. 14b).
func (m Mode) SpectralEfficiency() float64 {
	return float64(m.DataRateGbps) / m.SpacingGHz
}

// RequiredOSNRdB returns the minimum received OSNR for error-free
// decoding, derived by inverting the link model at the measured reach.
// This is how the simulated hardware turns Table 2 into datasheet
// thresholds (see internal/phy).
func (m Mode) RequiredOSNRdB(link phy.LinkModel) float64 {
	return link.RequiredOSNRForReach(m.ReachKm)
}

func (m Mode) String() string {
	return fmt.Sprintf("%dG@%.1fGHz/%.0fkm(%s)", m.DataRateGbps, m.SpacingGHz, m.ReachKm, m.Modulation.Name)
}

// Catalog is the set of operating modes one transponder family offers.
type Catalog struct {
	Name  string
	Modes []Mode
}

// Fixed100G returns the fixed-rate WAN transponder used by traditional
// backbones (§2, "100G-WAN" benchmark): 100 Gbps on a 50 GHz grid with
// 3000 km reach.
func Fixed100G() Catalog {
	return Catalog{
		Name:  "100G-WAN",
		Modes: []Mode{newMode(100, 50, 3000)},
	}
}

// RADWAN returns the bandwidth-variable transponder of RADWAN adapted to
// the paper's setting (§2): BPSK/QPSK/8QAM at a fixed 75 GHz spacing.
func RADWAN() Catalog {
	return Catalog{
		Name: "RADWAN",
		Modes: []Mode{
			newMode(100, 75, 5000),
			newMode(200, 75, 2000),
			newMode(300, 75, 1100),
		},
	}
}

// SVT returns FlexWAN's spacing-variable transponder catalog — Table 2 of
// the paper, measured on the production testbed. Entries marked "/" in
// the table (not recommended) are absent.
func SVT() Catalog {
	type row struct {
		spacing float64
		reach   map[int]float64 // data rate Gbps → reach km
	}
	rows := []row{
		{50, map[int]float64{100: 3000, 200: 1000}},
		{62.5, map[int]float64{200: 1500}},
		{75, map[int]float64{100: 5000, 200: 2000, 300: 1100, 400: 600}},
		{87.5, map[int]float64{300: 1500, 400: 1000, 500: 600, 600: 300}},
		{100, map[int]float64{300: 2000, 400: 1500, 500: 900, 600: 400, 700: 200}},
		{112.5, map[int]float64{400: 1600, 500: 1100, 600: 500, 700: 300, 800: 150}},
		{125, map[int]float64{400: 1700, 500: 1200, 600: 600, 700: 350, 800: 200}},
		{137.5, map[int]float64{400: 1800, 500: 1300, 600: 700, 700: 450, 800: 250}},
		{150, map[int]float64{400: 1900, 500: 1400, 600: 800, 700: 500, 800: 300}},
	}
	var modes []Mode
	for _, r := range rows {
		rates := make([]int, 0, len(r.reach))
		for rate := range r.reach {
			rates = append(rates, rate)
		}
		sort.Ints(rates)
		for _, rate := range rates {
			modes = append(modes, newMode(rate, r.spacing, r.reach[rate]))
		}
	}
	return Catalog{Name: "FlexWAN", Modes: modes}
}

// FeasibleModes returns the modes whose reach covers distKm, preserving
// catalog order.
func (c Catalog) FeasibleModes(distKm float64) []Mode {
	var out []Mode
	for _, m := range c.Modes {
		if m.Feasible(distKm) {
			out = append(out, m)
		}
	}
	return out
}

// MaxRateAt returns the highest data rate any mode supports at distKm,
// or 0 when the distance exceeds every mode's reach (Fig. 2b).
func (c Catalog) MaxRateAt(distKm float64) int {
	best := 0
	for _, m := range c.Modes {
		if m.Feasible(distKm) && m.DataRateGbps > best {
			best = m.DataRateGbps
		}
	}
	return best
}

// BestModeAt returns the preferred mode for a path of distKm: the highest
// feasible data rate, breaking ties by the narrowest channel spacing and
// then by the tightest reach (least over-provisioned margin). The second
// return is false when no mode reaches.
func (c Catalog) BestModeAt(distKm float64) (Mode, bool) {
	var best Mode
	found := false
	for _, m := range c.Modes {
		if !m.Feasible(distKm) {
			continue
		}
		if !found || better(m, best) {
			best, found = m, true
		}
	}
	return best, found
}

func better(a, b Mode) bool {
	if a.DataRateGbps != b.DataRateGbps {
		return a.DataRateGbps > b.DataRateGbps
	}
	if a.SpacingGHz != b.SpacingGHz {
		return a.SpacingGHz < b.SpacingGHz
	}
	return a.ReachKm < b.ReachKm
}

// MaxReachKm returns the longest reach of any mode in the catalog.
func (c Catalog) MaxReachKm() float64 {
	best := 0.0
	for _, m := range c.Modes {
		if m.ReachKm > best {
			best = m.ReachKm
		}
	}
	return best
}

// Provision is a multiset of modes provisioning one demand: Counts[i]
// transponder pairs operating in Modes[i].
type Provision struct {
	Modes  []Mode
	Counts []int
}

// Transponders returns the total number of transponder pairs.
func (p Provision) Transponders() int {
	total := 0
	for _, c := range p.Counts {
		total += c
	}
	return total
}

// CapacityGbps returns the total data rate of the provision.
func (p Provision) CapacityGbps() int {
	total := 0
	for i, c := range p.Counts {
		total += c * p.Modes[i].DataRateGbps
	}
	return total
}

// SpectrumGHz returns the total channel spacing of the provision.
func (p Provision) SpectrumGHz() float64 {
	total := 0.0
	for i, c := range p.Counts {
		total += float64(c) * p.Modes[i].SpacingGHz
	}
	return total
}

// MinProvision computes the cheapest way to carry capacityGbps over a
// path of distKm with this catalog: primarily the fewest transponder
// pairs, secondarily the least spectrum (the planning objective of
// Algorithm 1 applied to a single demand, as in the Fig. 3 cost study).
// It returns false when no mode reaches distKm or capacity is 0.
//
// The search is an exact dynamic program over capacity in gcd-of-rates
// steps; catalogs are small (≤ 40 modes), demands are ≤ tens of Tbps, so
// this stays trivially fast.
func (c Catalog) MinProvision(capacityGbps int, distKm float64) (Provision, bool) {
	if capacityGbps <= 0 {
		return Provision{}, false
	}
	feasible := c.FeasibleModes(distKm)
	if len(feasible) == 0 {
		return Provision{}, false
	}
	step := feasible[0].DataRateGbps
	maxRate := 0
	for _, m := range feasible {
		step = gcd(step, m.DataRateGbps)
		if m.DataRateGbps > maxRate {
			maxRate = m.DataRateGbps
		}
	}
	// dp[u] = best (transponders, spectrum) to provide at least u·step Gbps.
	// Cap the table one max-rate beyond the demand: overshoot past that
	// can never help.
	units := (capacityGbps + step - 1) / step
	limit := units + maxRate/step
	type cell struct {
		count    int
		spectrum float64
		mode     int // index into feasible of the last mode added
	}
	const unset = math.MaxInt32
	dp := make([]cell, limit+1)
	for i := 1; i <= limit; i++ {
		dp[i] = cell{count: unset}
	}
	for u := 1; u <= limit; u++ {
		for mi, m := range feasible {
			prev := u - m.DataRateGbps/step
			if prev < 0 {
				prev = 0
			}
			if dp[prev].count == unset {
				continue
			}
			cand := cell{count: dp[prev].count + 1, spectrum: dp[prev].spectrum + m.SpacingGHz, mode: mi}
			if cand.count < dp[u].count || (cand.count == dp[u].count && cand.spectrum < dp[u].spectrum) {
				dp[u] = cand
			}
		}
	}
	// The optimum may overshoot the demand; scan all states ≥ units.
	best := -1
	for u := units; u <= limit; u++ {
		if dp[u].count == unset {
			continue
		}
		if best < 0 || dp[u].count < dp[best].count ||
			(dp[u].count == dp[best].count && dp[u].spectrum < dp[best].spectrum) {
			best = u
		}
	}
	if best < 0 {
		return Provision{}, false
	}
	// Reconstruct the multiset.
	counts := make(map[int]int)
	for u := best; u > 0 && dp[u].count > 0; {
		mi := dp[u].mode
		counts[mi]++
		u -= feasible[mi].DataRateGbps / step
		if u < 0 {
			u = 0
		}
	}
	var p Provision
	for mi, n := range counts {
		p.Modes = append(p.Modes, feasible[mi])
		p.Counts = append(p.Counts, n)
	}
	sort.Slice(p.Modes, func(i, j int) bool {
		if p.Modes[i].DataRateGbps != p.Modes[j].DataRateGbps {
			return p.Modes[i].DataRateGbps > p.Modes[j].DataRateGbps
		}
		return p.Modes[i].SpacingGHz < p.Modes[j].SpacingGHz
	})
	// Re-pair counts with the sorted modes.
	// (Rebuild from the map keyed by mode value to keep pairing correct.)
	countByMode := make(map[string]int)
	for mi, n := range counts {
		countByMode[feasible[mi].String()] = n
	}
	p.Counts = p.Counts[:0]
	for _, m := range p.Modes {
		p.Counts = append(p.Counts, countByMode[m.String()])
	}
	return p, true
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// WithReaches returns a copy of the catalog under a new name with every
// mode's optical reach replaced by fn(mode); modes for which fn returns
// a nonpositive reach are dropped. This supports sensitivity studies —
// e.g. re-planning with GN-model-predicted reaches instead of the
// testbed-measured Table 2 — without touching the planning code.
func (c Catalog) WithReaches(name string, fn func(Mode) float64) Catalog {
	out := Catalog{Name: name}
	for _, m := range c.Modes {
		r := fn(m)
		if r <= 0 {
			continue
		}
		m.ReachKm = r
		out.Modes = append(out.Modes, m)
	}
	return out
}
