package transponder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexwan/internal/phy"
	"flexwan/internal/spectrum"
)

func TestCatalogSizes(t *testing.T) {
	if n := len(Fixed100G().Modes); n != 1 {
		t.Errorf("100G-WAN modes = %d, want 1", n)
	}
	if n := len(RADWAN().Modes); n != 3 {
		t.Errorf("RADWAN modes = %d, want 3", n)
	}
	// Table 2 has 2+1+4+4+5+5+5+5+5 = 36 recommended entries.
	if n := len(SVT().Modes); n != 36 {
		t.Errorf("SVT modes = %d, want 36", n)
	}
}

func TestTable2SpotChecks(t *testing.T) {
	svt := SVT()
	find := func(rate int, spacing float64) (Mode, bool) {
		for _, m := range svt.Modes {
			if m.DataRateGbps == rate && m.SpacingGHz == spacing {
				return m, true
			}
		}
		return Mode{}, false
	}
	tests := []struct {
		rate    int
		spacing float64
		reach   float64
	}{
		{100, 50, 3000},
		{100, 75, 5000},
		{200, 62.5, 1500},
		{300, 75, 1100},
		{400, 75, 600},
		{400, 112.5, 1600},
		{500, 125, 1200},
		{600, 150, 800},
		{700, 100, 200},
		{800, 112.5, 150},
		{800, 150, 300},
	}
	for _, tt := range tests {
		m, ok := find(tt.rate, tt.spacing)
		if !ok {
			t.Errorf("SVT missing %dG @ %v GHz", tt.rate, tt.spacing)
			continue
		}
		if m.ReachKm != tt.reach {
			t.Errorf("SVT %dG@%vGHz reach = %v, want %v", tt.rate, tt.spacing, m.ReachKm, tt.reach)
		}
	}
	// "/" entries must be absent.
	for _, absent := range []struct {
		rate    int
		spacing float64
	}{{300, 50}, {800, 75}, {100, 100}, {800, 100}, {200, 87.5}} {
		if _, ok := find(absent.rate, absent.spacing); ok {
			t.Errorf("SVT has %dG @ %v GHz, Table 2 marks it '/'", absent.rate, absent.spacing)
		}
	}
}

func TestTable2Monotonicity(t *testing.T) {
	// Within a spacing, higher rate → shorter (or equal) reach; within a
	// rate, wider spacing → longer (or equal) reach. Both hold in Table 2
	// and both are physical necessities the catalog must preserve.
	svt := SVT()
	for _, a := range svt.Modes {
		for _, b := range svt.Modes {
			if a.SpacingGHz == b.SpacingGHz && a.DataRateGbps < b.DataRateGbps && a.ReachKm < b.ReachKm {
				t.Errorf("at %v GHz: %dG reaches %v but %dG reaches %v",
					a.SpacingGHz, a.DataRateGbps, a.ReachKm, b.DataRateGbps, b.ReachKm)
			}
			if a.DataRateGbps == b.DataRateGbps && a.SpacingGHz < b.SpacingGHz && a.ReachKm > b.ReachKm {
				t.Errorf("at %dG: %v GHz reaches %v but %v GHz reaches %v",
					a.DataRateGbps, a.SpacingGHz, a.ReachKm, b.SpacingGHz, b.ReachKm)
			}
		}
	}
}

func TestMaxRateAt(t *testing.T) {
	svt, bvt, fixed := SVT(), RADWAN(), Fixed100G()
	tests := []struct {
		dist                  float64
		svtWant, bvtWant, fxd int
	}{
		{100, 800, 300, 100},  // short path: SVT hits 800G, BVT capped at 300G
		{150, 800, 300, 100},  // 800G@112.5 reaches exactly 150
		{300, 800, 300, 100},  // 800G@150 reaches exactly 300
		{301, 700, 300, 100},  // beyond every 800G reach
		{600, 600, 300, 100},  // 600G@150 reaches 800
		{900, 500, 300, 100},  // 500G@100 at 900
		{1100, 500, 300, 100}, // 500G@112.5 reaches exactly 1100
		{1200, 500, 200, 100}, // BVT drops to QPSK beyond 1100
		{1500, 400, 200, 100}, // Fig. 4's example regime
		{1900, 400, 200, 100}, // 400G@150 reaches 1900
		{2000, 300, 200, 100}, // 300G@100 reaches 2000
		{2500, 100, 100, 100}, // Table 2's longest 200G reach is 2000 km
		{3000, 100, 100, 100}, // fixed 100G reaches exactly 3000
		{3500, 100, 100, 0},   // fixed-grid 100G exhausted
		{5000, 100, 100, 0},   // BPSK limit
		{5001, 0, 0, 0},       // beyond everything
	}
	for _, tt := range tests {
		if got := svt.MaxRateAt(tt.dist); got != tt.svtWant {
			t.Errorf("SVT MaxRateAt(%v) = %d, want %d", tt.dist, got, tt.svtWant)
		}
		if got := bvt.MaxRateAt(tt.dist); got != tt.bvtWant {
			t.Errorf("RADWAN MaxRateAt(%v) = %d, want %d", tt.dist, got, tt.bvtWant)
		}
		if got := fixed.MaxRateAt(tt.dist); got != tt.fxd {
			t.Errorf("100G-WAN MaxRateAt(%v) = %d, want %d", tt.dist, got, tt.fxd)
		}
	}
}

func TestBestModeAt(t *testing.T) {
	svt := SVT()
	// At 100 km, the best mode is 800G at the narrowest spacing offering
	// it with reach ≥ 100 (112.5 GHz reaches 150).
	m, ok := svt.BestModeAt(100)
	if !ok {
		t.Fatal("no mode at 100 km")
	}
	if m.DataRateGbps != 800 || m.SpacingGHz != 112.5 {
		t.Errorf("BestModeAt(100) = %v, want 800G@112.5GHz", m)
	}
	// The §8 example: a 1200 km path is served at 500G/125 GHz.
	m, ok = svt.BestModeAt(1200)
	if !ok {
		t.Fatal("no mode at 1200 km")
	}
	if m.DataRateGbps != 500 || m.SpacingGHz != 125 {
		t.Errorf("BestModeAt(1200) = %v, want 500G@125GHz (paper §8 example)", m)
	}
	if _, ok := svt.BestModeAt(6000); ok {
		t.Error("BestModeAt(6000) should fail")
	}
}

func TestFeasibleModes(t *testing.T) {
	bvt := RADWAN()
	if got := len(bvt.FeasibleModes(1500)); got != 2 {
		t.Errorf("RADWAN feasible at 1500 km = %d modes, want 2 (BPSK, QPSK)", got)
	}
	if got := len(bvt.FeasibleModes(500)); got != 3 {
		t.Errorf("RADWAN feasible at 500 km = %d, want 3", got)
	}
	if got := bvt.FeasibleModes(5001); got != nil {
		t.Errorf("RADWAN feasible at 5001 km = %v, want none", got)
	}
}

func TestModePixels(t *testing.T) {
	g := spectrum.DefaultGrid()
	m := Mode{SpacingGHz: 100}
	if got := m.Pixels(g); got != 8 {
		t.Errorf("100 GHz mode pixels = %d, want 8", got)
	}
	wide := Mode{SpacingGHz: 99999}
	if got := wide.Pixels(g); got <= g.Pixels {
		t.Errorf("oversized mode pixels = %d, should exceed grid", got)
	}
}

func TestSpectralEfficiency(t *testing.T) {
	// 100G-WAN is fixed at 2.0 b/s/Hz (Fig. 14b).
	m := Fixed100G().Modes[0]
	if se := m.SpectralEfficiency(); se != 2.0 {
		t.Errorf("100G-WAN spectral efficiency = %v, want 2.0", se)
	}
	// SVT's 800G@112.5 reaches 7.1 b/s/Hz.
	if se := (Mode{DataRateGbps: 800, SpacingGHz: 112.5}).SpectralEfficiency(); se < 7 {
		t.Errorf("800G@112.5 spectral efficiency = %v, want > 7", se)
	}
}

func TestMinProvisionFig3(t *testing.T) {
	// Fig. 3: provisioning 800 Gbps. At ≤ 300 km one pair of SVTs
	// suffices versus three pairs of BVTs; at 1800 km SVT uses half the
	// BVT count. Spectrum: ≤ 300 km BVT burns 225 GHz, SVT ≤ 150 GHz.
	svt, bvt := SVT(), RADWAN()

	p, ok := svt.MinProvision(800, 250)
	if !ok {
		t.Fatal("SVT cannot provision 800G at 250 km")
	}
	if p.Transponders() != 1 {
		t.Errorf("SVT transponders at 250 km = %d, want 1", p.Transponders())
	}
	if p.SpectrumGHz() > 150 {
		t.Errorf("SVT spectrum at 250 km = %v GHz, want ≤ 150", p.SpectrumGHz())
	}

	p, ok = bvt.MinProvision(800, 250)
	if !ok {
		t.Fatal("BVT cannot provision 800G at 250 km")
	}
	if p.Transponders() != 3 {
		t.Errorf("BVT transponders at 250 km = %d, want 3 (3×300G)", p.Transponders())
	}
	if p.SpectrumGHz() != 225 {
		t.Errorf("BVT spectrum at 250 km = %v GHz, want 225", p.SpectrumGHz())
	}

	pS, okS := svt.MinProvision(800, 1800)
	pB, okB := bvt.MinProvision(800, 1800)
	if !okS || !okB {
		t.Fatal("cannot provision 800G at 1800 km")
	}
	if pS.Transponders()*2 != pB.Transponders() {
		t.Errorf("at 1800 km SVT uses %d, BVT %d transponders; paper says half",
			pS.Transponders(), pB.Transponders())
	}
}

func TestMinProvisionEdges(t *testing.T) {
	svt := SVT()
	if _, ok := svt.MinProvision(0, 100); ok {
		t.Error("MinProvision(0) succeeded")
	}
	if _, ok := svt.MinProvision(-100, 100); ok {
		t.Error("MinProvision(-100) succeeded")
	}
	if _, ok := svt.MinProvision(400, 9000); ok {
		t.Error("MinProvision beyond max reach succeeded")
	}
	// Demand not a multiple of any rate still gets covered.
	p, ok := svt.MinProvision(150, 100)
	if !ok || p.CapacityGbps() < 150 {
		t.Errorf("MinProvision(150) = %+v, ok=%v", p, ok)
	}
}

func TestMinProvisionCoversDemand(t *testing.T) {
	f := func(rawCap uint16, rawDist uint16) bool {
		capacity := 100 + int(rawCap%80)*100 // 100..8000 Gbps
		dist := 50 + float64(rawDist%100)*50 // 50..5000 km
		for _, cat := range []Catalog{Fixed100G(), RADWAN(), SVT()} {
			p, ok := cat.MinProvision(capacity, dist)
			if !ok {
				if len(cat.FeasibleModes(dist)) != 0 {
					return false // feasible modes existed but provisioning failed
				}
				continue
			}
			if p.CapacityGbps() < capacity {
				return false
			}
			for _, m := range p.Modes {
				if !m.Feasible(dist) {
					return false
				}
			}
			// Count must not beat the trivial lower bound.
			maxRate := cat.MaxRateAt(dist)
			lower := (capacity + maxRate - 1) / maxRate
			if p.Transponders() < lower {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MinProvision with SVT never uses more transponders or more
// spectrum than with RADWAN — the SVT catalog is a strict superset of
// capability at every distance within RADWAN's reach.
func TestSVTDominatesRADWAN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	svt, bvt := SVT(), RADWAN()
	for i := 0; i < 200; i++ {
		capacity := (1 + rng.Intn(60)) * 100
		dist := 50 + rng.Float64()*4950
		pB, okB := bvt.MinProvision(capacity, dist)
		if !okB {
			continue
		}
		pS, okS := svt.MinProvision(capacity, dist)
		if !okS {
			t.Fatalf("SVT failed where RADWAN succeeded: %dG at %.0f km", capacity, dist)
		}
		if pS.Transponders() > pB.Transponders() {
			t.Errorf("%dG at %.0f km: SVT %d transponders > RADWAN %d",
				capacity, dist, pS.Transponders(), pB.Transponders())
		}
	}
}

func TestModeDSPParameters(t *testing.T) {
	// Every catalog mode must have coherent DSP parameters: positive
	// baud, a constellation dense enough for the net rate after FEC,
	// and ≤ 16 bits per dual-pol symbol (DP-256QAM ceiling — beyond it
	// the mode would be unphysical).
	for _, cat := range []Catalog{Fixed100G(), RADWAN(), SVT()} {
		for _, m := range cat.Modes {
			if m.BaudGBd <= 0 {
				t.Errorf("%s %v: nonpositive baud", cat.Name, m)
			}
			if m.Modulation.BitsPerSymbol <= 0 || m.Modulation.BitsPerSymbol > 16.5 {
				t.Errorf("%s %v: bits/symbol %v out of range", cat.Name, m, m.Modulation.BitsPerSymbol)
			}
			gross := m.BaudGBd * m.Modulation.BitsPerSymbol
			net := gross / (1 + m.FEC.Overhead)
			if net < float64(m.DataRateGbps)*0.95 {
				t.Errorf("%s %v: DSP carries only %.0f Gbps net", cat.Name, m, net)
			}
		}
	}
}

func TestRequiredOSNRConsistent(t *testing.T) {
	// Modes with longer reach require less OSNR; the threshold must be
	// met at the mode's reach and violated beyond it.
	link := phy.DefaultLink()
	for _, m := range SVT().Modes {
		req := m.RequiredOSNRdB(link)
		if link.OSNRdB(m.ReachKm) < req {
			t.Errorf("%v: OSNR at reach below own threshold", m)
		}
		if link.OSNRdB(m.ReachKm+2*link.SpanKm) >= req {
			t.Errorf("%v: OSNR two spans past reach still meets threshold", m)
		}
	}
}

func TestProvisionAccessorsEmpty(t *testing.T) {
	var p Provision
	if p.Transponders() != 0 || p.CapacityGbps() != 0 || p.SpectrumGHz() != 0 {
		t.Error("zero Provision should report zero totals")
	}
}

func TestWithReaches(t *testing.T) {
	svt := SVT()
	halved := svt.WithReaches("half", func(m Mode) float64 { return m.ReachKm / 2 })
	if halved.Name != "half" || len(halved.Modes) != len(svt.Modes) {
		t.Fatalf("halved catalog = %s with %d modes", halved.Name, len(halved.Modes))
	}
	for i, m := range halved.Modes {
		if m.ReachKm != svt.Modes[i].ReachKm/2 {
			t.Errorf("mode %d reach = %v", i, m.ReachKm)
		}
		if m.DataRateGbps != svt.Modes[i].DataRateGbps {
			t.Errorf("mode %d rate changed", i)
		}
	}
	// Original untouched.
	if svt.Modes[0].ReachKm != 3000 {
		t.Error("WithReaches mutated the source catalog")
	}
	// Nonpositive reaches drop the mode.
	dropped := svt.WithReaches("none", func(m Mode) float64 {
		if m.DataRateGbps >= 800 {
			return 0
		}
		return m.ReachKm
	})
	for _, m := range dropped.Modes {
		if m.DataRateGbps >= 800 {
			t.Errorf("800G mode survived: %v", m)
		}
	}
}
